/**
 * @file
 * Tests for the HNSW index (recall against brute force, generic-metric
 * search) and the black-box tuner baselines.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "annsearch/hnsw.hpp"
#include "annsearch/tuners.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

TEST(Hnsw, RecallAgainstBruteForce)
{
    Rng rng(1);
    const u32 dim = 8, n = 400;
    std::vector<std::vector<float>> points(n, std::vector<float>(dim));
    Hnsw index(dim, 12, 80);
    for (auto& p : points) {
        for (auto& x : p)
            x = static_cast<float>(rng.normal());
        index.add(p.data());
    }
    u32 hits = 0, total = 0;
    for (int q = 0; q < 20; ++q) {
        std::vector<float> query(dim);
        for (auto& x : query)
            x = static_cast<float>(rng.normal());
        // Brute-force top-5.
        std::vector<std::pair<double, u32>> bf;
        for (u32 i = 0; i < n; ++i) {
            double d = 0.0;
            for (u32 c = 0; c < dim; ++c) {
                double diff = points[i][c] - query[c];
                d += diff * diff;
            }
            bf.push_back({d, i});
        }
        std::sort(bf.begin(), bf.end());
        auto got = index.searchKnn(query.data(), 5, 64);
        for (const auto& hit : got) {
            for (int t = 0; t < 5; ++t)
                hits += (bf[t].second == hit.id);
        }
        total += 5;
    }
    EXPECT_GT(static_cast<double>(hits) / total, 0.8); // high recall
}

TEST(Hnsw, GenericSearchFindsLowCostNode)
{
    Rng rng(2);
    const u32 dim = 4, n = 300;
    Hnsw index(dim, 12, 64);
    std::vector<std::vector<float>> points(n, std::vector<float>(dim));
    for (auto& p : points) {
        for (auto& x : p)
            x = static_cast<float>(rng.normal());
        index.add(p.data());
    }
    // Generic cost: distance to a hidden target vector. The graph walk
    // should find a node close to the global minimum.
    std::vector<float> target(dim, 0.7f);
    auto score = [&](u32 id) {
        double d = 0.0;
        for (u32 c = 0; c < dim; ++c) {
            double diff = points[id][c] - target[c];
            d += diff * diff;
        }
        return d;
    };
    u64 evals = 0;
    auto hits = index.searchGeneric(score, 3, 32, &evals);
    ASSERT_FALSE(hits.empty());
    double global_best = 1e30;
    for (u32 i = 0; i < n; ++i)
        global_best = std::min(global_best, score(i));
    EXPECT_LT(hits.front().dist, global_best * 4.0 + 0.5);
    EXPECT_GT(evals, 0u);
    EXPECT_LT(evals, n); // visits a subset, not everything
}

/** Synthetic schedule cost with a known sweet spot, shared by tuner tests. */
double
syntheticCost(const SuperSchedule& s)
{
    double c = 1.0;
    c += std::abs(static_cast<double>(log2Floor(s.splits[1])) - 4.0);
    c += std::abs(static_cast<double>(log2Floor(s.ompChunk)) - 3.0);
    c += s.numThreads == 48 ? 0.0 : 0.5;
    c += concordance(s) < 1.0 ? 2.0 : 0.0;
    return c;
}

class TunerBehaviour : public ::testing::TestWithParam<int> {};

TEST_P(TunerBehaviour, BeatsFirstSampleAndTracksBestSoFar)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 1024, 1024);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    std::unique_ptr<Tuner> tuner;
    switch (GetParam()) {
      case 0: tuner = std::make_unique<RandomSearch>(); break;
      case 1: tuner = std::make_unique<TpeTuner>(); break;
      default: tuner = std::make_unique<BanditEnsembleTuner>(); break;
    }
    auto result = tuner->search(space, syntheticCost, 300, 9);
    EXPECT_EQ(result.trials, 300u);
    ASSERT_EQ(result.bestSoFar.size(), 300u);
    for (std::size_t i = 1; i < result.bestSoFar.size(); ++i)
        EXPECT_LE(result.bestSoFar[i], result.bestSoFar[i - 1]);
    EXPECT_LE(result.bestCost, result.bestSoFar.front());
    EXPECT_LE(result.bestCost, 3.5); // near the sweet spot
    EXPECT_GE(result.evalSeconds, 0.0);
    EXPECT_LE(result.evalSeconds, result.totalSeconds + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllTuners, TunerBehaviour, ::testing::Range(0, 3));

TEST(Tuners, GuidedBeatsRandomOnStructuredCost)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 4096);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    RandomSearch rnd;
    TpeTuner tpe;
    double rnd_avg = 0.0, tpe_avg = 0.0;
    for (u64 seed = 0; seed < 3; ++seed) {
        rnd_avg += rnd.search(space, syntheticCost, 250, seed).bestCost;
        tpe_avg += tpe.search(space, syntheticCost, 250, seed).bestCost;
    }
    EXPECT_LE(tpe_avg, rnd_avg + 0.75); // guided search is competitive
}

} // namespace
} // namespace waco
