/**
 * @file
 * Tests of the learned cost model: embedding determinism, prediction
 * plumbing, and that a small model actually learns to rank schedules for a
 * toy dataset (loss decreases, ranking accuracy beats chance).
 */
#include <gtest/gtest.h>

#include "core/dataset.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "model/waco_model.hpp"

namespace waco {
namespace {

ExtractorConfig
tinyConfig()
{
    ExtractorConfig cfg;
    cfg.channels = 8;
    cfg.numLayers = 4;
    cfg.featureDim = 32;
    return cfg;
}

TEST(WacoModel, EmbeddingsDeterministicAndDistinct)
{
    WacoCostModel model(Algorithm::SpMM, "waconet", tinyConfig(), 1);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 64, 64);
    Rng rng(2);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    auto a = space.sample(rng);
    auto b = space.sample(rng);
    ASSERT_NE(a.key(), b.key());
    auto e1 = model.programEmbeddings({a, b});
    auto e2 = model.programEmbeddings({a, b});
    EXPECT_EQ(e1.v, e2.v);
    double diff = 0.0;
    for (u32 c = 0; c < e1.cols; ++c)
        diff += std::abs(e1.at(0, c) - e1.at(1, c));
    EXPECT_GT(diff, 1e-6); // different schedules embed differently
}

TEST(WacoModel, PredictMatchesEmbeddingFastPath)
{
    WacoCostModel model(Algorithm::SpMV, "human", tinyConfig(), 3);
    Rng rng(4);
    auto m = genUniform(64, 64, 400, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 64, 64);
    SuperScheduleSpace space(Algorithm::SpMV, shape);
    std::vector<SuperSchedule> batch = {space.sample(rng), space.sample(rng)};
    auto feature = model.extractFeature(PatternInput::fromMatrix(m));
    auto direct = model.predict(feature, batch);
    auto emb = model.programEmbeddings(batch);
    auto fast = model.predictFromEmbeddings(feature, emb);
    ASSERT_EQ(direct.rows, fast.rows);
    for (u32 n = 0; n < direct.rows; ++n)
        EXPECT_FLOAT_EQ(direct.at(n, 0), fast.at(n, 0));
}

TEST(WacoModel, LearnsToRankToyDataset)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    CorpusOptions copt;
    copt.count = 6;
    copt.minDim = 256;
    copt.maxDim = 512;
    copt.minNnz = 500;
    copt.maxNnz = 2000;
    auto corpus = makeCorpus(copt, 11);
    auto ds = buildDataset(Algorithm::SpMV, corpus, oracle, 16, 12);

    WacoCostModel model(Algorithm::SpMV, "waconet", tinyConfig(), 13);
    TrainOptions topt;
    topt.epochs = 20;
    topt.batchSchedules = 12;
    auto history = trainCostModel(model, ds, topt);
    ASSERT_EQ(history.size(), 20u);
    EXPECT_LT(history.back().trainLoss, history.front().trainLoss);
    EXPECT_GT(history.back().valOrderAccuracy, 0.55);
}

TEST(WacoModel, SaveLoadPreservesPredictions)
{
    WacoCostModel a(Algorithm::SpMM, "human", tinyConfig(), 21);
    WacoCostModel b(Algorithm::SpMM, "human", tinyConfig(), 22);
    Rng rng(23);
    auto m = genUniform(64, 64, 300, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 64, 64);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    std::vector<SuperSchedule> batch = {space.sample(rng), space.sample(rng)};
    std::string path = ::testing::TempDir() + "/waco_model.bin";
    a.save(path);
    b.load(path);
    auto in = PatternInput::fromMatrix(m);
    auto fa = a.extractFeature(in);
    auto fb = b.extractFeature(in);
    auto pa = a.predict(fa, batch);
    auto pb = b.predict(fb, batch);
    for (u32 n = 0; n < pa.rows; ++n)
        EXPECT_FLOAT_EQ(pa.at(n, 0), pb.at(n, 0));
    std::remove(path.c_str());
}

TEST(Dataset, BuildsSplitsAndDedups)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    CorpusOptions copt;
    copt.count = 5;
    copt.minDim = 128;
    copt.maxDim = 256;
    copt.minNnz = 200;
    copt.maxNnz = 800;
    auto corpus = makeCorpus(copt, 31);
    auto ds = buildDataset(Algorithm::SpMM, corpus, oracle, 8, 32);
    EXPECT_EQ(ds.entries.size(), 5u);
    EXPECT_GE(ds.trainIds.size(), 1u);
    EXPECT_GE(ds.valIds.size(), 1u);
    EXPECT_EQ(ds.trainIds.size() + ds.valIds.size(), ds.entries.size());
    for (const auto& e : ds.entries) {
        EXPECT_GE(e.samples.size(), 2u);
        for (const auto& s : e.samples) {
            EXPECT_TRUE(std::isfinite(s.runtime));
            EXPECT_GT(s.runtime, 0.0);
        }
    }
    auto all = ds.allSchedules();
    std::set<std::string> keys;
    for (const auto& s : all)
        keys.insert(s.key());
    EXPECT_EQ(keys.size(), all.size()); // dedup by key
}

TEST(Dataset, ThreeDimensionalPath)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    CorpusOptions copt;
    copt.count = 3;
    copt.minDim = 64;
    copt.maxDim = 128;
    copt.minNnz = 300;
    copt.maxNnz = 900;
    auto corpus = makeCorpus3d(copt, 41);
    auto ds = buildDataset3d(Algorithm::MTTKRP, corpus, oracle, 6, 42);
    EXPECT_EQ(ds.entries.size(), 3u);
    EXPECT_TRUE(ds.entries[0].is3d);
    EXPECT_EQ(ds.entries[0].pattern.dim, 3u);
}

} // namespace
} // namespace waco
