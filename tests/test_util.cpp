/**
 * @file
 * Tests for the utility layer: statistics, RNG determinism, timer, logging
 * levels, and error helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "util/common.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace waco {
namespace {

TEST(UtilStats, MeanVarianceGeomean)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(variance(xs), 1.25);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(geomean({1.0, -1.0}), FatalError);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(UtilStats, PercentileAndMedian)
{
    std::vector<double> xs = {5, 1, 3, 2, 4};
    EXPECT_DOUBLE_EQ(median(xs), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_THROW(percentile({}, 50), FatalError);
}

TEST(UtilStats, GiniMeasuresSkew)
{
    EXPECT_NEAR(gini({1, 1, 1, 1}), 0.0, 1e-12);
    double skewed = gini({0, 0, 0, 100});
    EXPECT_GT(skewed, 0.7);
    EXPECT_GT(skewed, gini({10, 20, 30, 40}));
}

TEST(UtilStats, RunningStatMatchesBatch)
{
    RunningStat rs;
    std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : xs)
        rs.add(x);
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(UtilRng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(UtilRng, PermutationIsValid)
{
    Rng rng(5);
    auto p = rng.permutation(50);
    std::vector<bool> seen(50, false);
    for (u32 v : p) {
        ASSERT_LT(v, 50u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(UtilRng, WeightedIndexFollowsWeights)
{
    Rng rng(6);
    std::vector<double> w = {0.0, 9.0, 1.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 2000; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_GT(counts[1], counts[2] * 4);
}

TEST(UtilCommon, HelpersAndErrors)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_THROW(fatal("x"), FatalError);
    EXPECT_THROW(panic("y"), PanicError);
    EXPECT_NO_THROW(fatalIf(false, "no"));
}

TEST(UtilTimer, MeasuresElapsed)
{
    Timer t;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += std::sqrt(static_cast<double>(i));
    EXPECT_GT(t.seconds(), 0.0);
    double a = t.millis();
    double b = t.millis();
    EXPECT_LE(a, b); // monotone
    t.reset();
    EXPECT_LT(t.millis(), b);
}

TEST(UtilLogging, LevelsSuppress)
{
    auto saved = logLevel();
    setLogLevel(LogLevel::Off);
    logInfo("should not appear");
    logWarn("should not appear");
    LogLine(LogLevel::Warn) << "also suppressed " << 42;
    setLogLevel(saved);
    SUCCEED();
}

} // namespace
} // namespace waco
