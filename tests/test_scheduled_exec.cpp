/**
 * @file
 * Tests for the scheduled (threaded) executor: results must match the
 * serial format-generic kernels for any format and parallel configuration,
 * and reduction-major storage must be detected and handled serially.
 */
#include <gtest/gtest.h>

#include "exec/reference.hpp"
#include "exec/scheduled.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

SparseMatrix
randomMatrix(u32 rows, u32 cols, u32 nnz, Rng& rng)
{
    std::vector<Triplet> t;
    for (u32 n = 0; n < nnz; ++n) {
        t.push_back({static_cast<u32>(rng.index(rows)),
                     static_cast<u32>(rng.index(cols)),
                     static_cast<float>(rng.uniformInt(1, 5))});
    }
    return SparseMatrix(rows, cols, t);
}

TEST(ScheduledExec, DetectsParallelizableStorage)
{
    Rng rng(1);
    auto m = randomMatrix(32, 32, 100, rng);
    auto csr = HierSparseTensor::build(FormatDescriptor::csr(32, 32), m);
    auto csc = HierSparseTensor::build(FormatDescriptor::csc(32, 32), m);
    // CSR is row (=output index i) major: parallel-safe for SpMV/SpMM.
    EXPECT_TRUE(parallelizableTopLevel(Algorithm::SpMV, csr));
    // CSC is k-major; k reduces in SpMV: unsafe.
    EXPECT_FALSE(parallelizableTopLevel(Algorithm::SpMV, csc));
    // For SDDMM both dimensions are safe.
    EXPECT_TRUE(parallelizableTopLevel(Algorithm::SDDMM, csc));
}

class ScheduledExecConfig
    : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(ScheduledExecConfig, SpmvMatchesSerialAcrossFormats)
{
    auto [threads, chunk] = GetParam();
    Rng rng(7);
    auto m = randomMatrix(96, 64, 500, rng);
    DenseVector b(64);
    b.randomize(rng);
    auto want = spmvReference(m, b);
    for (const auto& desc :
         {FormatDescriptor::csr(96, 64), FormatDescriptor::bcsr(96, 64, 4, 4),
          FormatDescriptor::ucu(96, 64, 8),
          FormatDescriptor::csc(96, 64)}) {
        auto t = HierSparseTensor::build(desc, m);
        auto got = spmvScheduled(t, b, {threads, chunk});
        EXPECT_LT(maxAbsDiff(want, got), 1e-4) << desc.name();
    }
}

TEST_P(ScheduledExecConfig, SpmmMatchesSerial)
{
    auto [threads, chunk] = GetParam();
    Rng rng(8);
    auto m = randomMatrix(64, 48, 400, rng);
    DenseMatrix b(48, 8);
    b.randomize(rng);
    auto want = spmmReference(m, b);
    auto t = HierSparseTensor::build(FormatDescriptor::csr(64, 48), m);
    EXPECT_LT(maxAbsDiff(want, spmmScheduled(t, b, {threads, chunk})), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadChunk, ScheduledExecConfig,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 7u, 64u)));

TEST(ScheduledExec, MttkrpMatchesReference)
{
    Rng rng(9);
    std::vector<Quad> q;
    for (int n = 0; n < 300; ++n) {
        q.push_back({static_cast<u32>(rng.index(24)),
                     static_cast<u32>(rng.index(18)),
                     static_cast<u32>(rng.index(12)),
                     static_cast<float>(rng.uniformInt(1, 4))});
    }
    Sparse3Tensor t3(24, 18, 12, q);
    DenseMatrix b(18, 8), c(12, 8);
    b.randomize(rng);
    c.randomize(rng);
    auto want = mttkrpReference(t3, b, c);
    auto csf = HierSparseTensor::build(FormatDescriptor::csf3d(24, 18, 12),
                                       t3);
    EXPECT_LT(maxAbsDiff(want, mttkrpScheduled(csf, b, c, {3, 4})), 1e-3);
}

TEST(ScheduledExec, TopRangeCoversExactlyOnce)
{
    Rng rng(10);
    auto m = randomMatrix(40, 40, 200, rng);
    auto t = HierSparseTensor::build(FormatDescriptor::csr(40, 40), m);
    u64 total = t.topLevelSize();
    // Split the top level into 3 arbitrary ranges: union must equal the
    // full stored set exactly once.
    u64 count = 0;
    double sum = 0.0;
    for (auto [b, e] : {std::pair<u64, u64>{0, 13},
                        std::pair<u64, u64>{13, 29},
                        std::pair<u64, u64>{29, total}}) {
        t.forEachStoredInTopRange(
            b, e, [&](const std::array<u32, 3>&, float v, bool ok) {
                if (ok) {
                    ++count;
                    sum += v;
                }
            });
    }
    double all = 0.0;
    u64 all_count = 0;
    t.forEachStored([&](const std::array<u32, 3>&, float v, bool ok) {
        if (ok) {
            ++all_count;
            all += v;
        }
    });
    EXPECT_EQ(count, all_count);
    EXPECT_DOUBLE_EQ(sum, all);
}

} // namespace
} // namespace waco
