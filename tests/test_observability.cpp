/**
 * @file
 * Differential and invariant tests of the observability layer
 * (util/trace.hpp + util/metrics.hpp) and its integration into the tuner
 * pipeline:
 *
 *  - span-tree invariants: balanced begin/end, parent/child containment,
 *    monotone timestamps, unique ids, thread attribution across ThreadPool
 *    tasks (cross-thread parent handoff);
 *  - counter/gauge/histogram exactness against a serial reference when
 *    updated from four pool workers;
 *  - Chrome trace JSON schema round-trip: emit -> parse -> re-emit is
 *    byte-identical;
 *  - deterministic end-to-end smoke: tune() with tracing on produces the
 *    expected phase spans AND a bitwise-identical outcome to tracing off;
 *  - RulebookCache hit/miss/eviction counters through the registry under a
 *    tight gather-pair budget.
 *
 * The ObservabilityTsan fixture is the concurrency hammer the build-tsan
 * tree runs via the `observability_tsan` ctest target (label "tsan").
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "nn/sparse_conv.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace waco {
namespace {

/** Spans indexed by id, for parent lookups. */
std::map<u64, trace::SpanRecord>
byId(const std::vector<trace::SpanRecord>& spans)
{
    std::map<u64, trace::SpanRecord> m;
    for (const auto& s : spans)
        m[s.id] = s;
    return m;
}

std::vector<trace::SpanRecord>
named(const std::vector<trace::SpanRecord>& spans, const std::string& name)
{
    std::vector<trace::SpanRecord> out;
    for (const auto& s : spans)
        if (s.name == name)
            out.push_back(s);
    return out;
}

/** Structural well-formedness every recorded span list must satisfy. */
void
checkSpanInvariants(const std::vector<trace::SpanRecord>& spans)
{
    auto ids = byId(spans);
    ASSERT_EQ(ids.size(), spans.size()) << "span ids must be unique";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const auto& s = spans[i];
        EXPECT_NE(s.id, 0u);
        EXPECT_GE(s.endNs, s.startNs) << s.name;
        if (i > 0) {
            // snapshot() contract: sorted by (startNs, id).
            EXPECT_TRUE(spans[i - 1].startNs < s.startNs ||
                        (spans[i - 1].startNs == s.startNs &&
                         spans[i - 1].id < s.id));
        }
        if (s.parent != 0) {
            auto p = ids.find(s.parent);
            ASSERT_NE(p, ids.end()) << s.name << " has a dangling parent";
            // A child runs inside its parent's lifetime, even when the
            // parent was adopted from another thread.
            EXPECT_GE(s.startNs, p->second.startNs) << s.name;
            EXPECT_LE(s.endNs, p->second.endNs) << s.name;
        }
    }
}

/** Skip a test whose assertions need the WACO_* macros compiled in. */
#if WACO_OBSERVABILITY
#define WACO_REQUIRE_MACROS() ((void)0)
#else
#define WACO_REQUIRE_MACROS() \
    GTEST_SKIP() << "observability macros compiled out"
#endif

class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogLevel(LogLevel::Off);
        trace::setEnabled(false);
        trace::clear();
        metrics::setEnabled(false);
    }

    void
    TearDown() override
    {
        trace::setEnabled(false);
        trace::clear();
        metrics::setEnabled(false);
        setLogLevel(LogLevel::Info);
    }
};

TEST_F(ObservabilityTest, SpanTreeInvariantsSingleThread)
{
    WACO_REQUIRE_MACROS();
    trace::setEnabled(true);
    EXPECT_EQ(trace::activeSpanCount(), 0u);
    {
        WACO_SPAN("t.a");
        EXPECT_EQ(trace::activeSpanCount(), 1u);
        {
            WACO_SPAN("t.b");
            {
                WACO_SPAN("t.c");
                EXPECT_EQ(trace::activeSpanCount(), 3u);
            }
            EXPECT_EQ(trace::activeSpanCount(), 2u);
        }
        WACO_SPAN("t.b2");
    }
    EXPECT_EQ(trace::activeSpanCount(), 0u) << "begin/end must balance";
    trace::setEnabled(false);

    auto spans = trace::snapshot();
    ASSERT_EQ(spans.size(), 4u);
    checkSpanInvariants(spans);

    auto a = named(spans, "t.a"), b = named(spans, "t.b"),
         c = named(spans, "t.c"), b2 = named(spans, "t.b2");
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    ASSERT_EQ(c.size(), 1u);
    ASSERT_EQ(b2.size(), 1u);
    EXPECT_EQ(a[0].parent, 0u);
    EXPECT_EQ(b[0].parent, a[0].id);
    EXPECT_EQ(c[0].parent, b[0].id);
    EXPECT_EQ(b2[0].parent, a[0].id);
    // Single-threaded: every span carries the caller's thread id.
    for (const auto& s : spans)
        EXPECT_EQ(s.tid, trace::currentThreadId());
    // Siblings opened one after the other have monotone start times.
    EXPECT_LE(b[0].endNs, b2[0].startNs);
}

TEST_F(ObservabilityTest, DisabledRecordsNothing)
{
    ASSERT_FALSE(trace::enabled());
    {
        WACO_SPAN("t.invisible");
        EXPECT_EQ(WACO_CURRENT_SPAN(), 0u);
    }
    EXPECT_TRUE(trace::snapshot().empty());
    EXPECT_EQ(trace::activeSpanCount(), 0u);

    ASSERT_FALSE(metrics::enabled());
    WACO_COUNT("t.never_created", 5);
    auto counters = metrics::MetricsRegistry::instance().counters();
    EXPECT_EQ(counters.count("t.never_created"), 0u)
        << "a disabled WACO_COUNT must not even register the metric";

#if WACO_OBSERVABILITY
    metrics::setEnabled(true);
    WACO_COUNT("t.created_when_enabled", 5);
    counters = metrics::MetricsRegistry::instance().counters();
    ASSERT_EQ(counters.count("t.created_when_enabled"), 1u);
    EXPECT_GE(counters["t.created_when_enabled"], 5u);
#endif
}

TEST_F(ObservabilityTest, ThreadAttributionAcrossPool)
{
    WACO_REQUIRE_MACROS();
    trace::setEnabled(true);
    ThreadPool pool(4);
    const u32 caller_tid = trace::currentThreadId();
    const u64 kChunks = 64;
    std::atomic<u64> ran{0};
    {
        WACO_SPAN("t.root");
        pool.parallelFor(kChunks, 1, 5, [&](u64 b, u64 e) {
            WACO_SPAN("t.chunk");
            ran.fetch_add(e - b);
            // Enough dwell time that the four workers reliably join in.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        });
    }
    trace::setEnabled(false);
    EXPECT_EQ(ran.load(), kChunks);

    auto spans = trace::snapshot();
    checkSpanInvariants(spans);

    auto root = named(spans, "t.root");
    auto jobs = named(spans, "pool.job");
    auto workers = named(spans, "pool.worker");
    auto chunks = named(spans, "t.chunk");
    ASSERT_EQ(root.size(), 1u);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].parent, root[0].id);
    EXPECT_EQ(jobs[0].tid, caller_tid);

    // Cross-thread handoff: every worker span adopted the caller's
    // pool.job span as parent, from a different thread.
    ASSERT_GE(workers.size(), 1u);
    for (const auto& w : workers) {
        EXPECT_EQ(w.parent, jobs[0].id);
        EXPECT_NE(w.tid, caller_tid);
    }

    // Every chunk spans nests under either a worker span (worker thread)
    // or directly under pool.job (the caller participates too).
    EXPECT_EQ(chunks.size(), kChunks);
    std::map<u64, u32> parent_tid;
    for (const auto& w : workers)
        parent_tid[w.id] = w.tid;
    parent_tid[jobs[0].id] = jobs[0].tid;
    for (const auto& c : chunks) {
        auto it = parent_tid.find(c.parent);
        ASSERT_NE(it, parent_tid.end())
            << "chunk span must attach to pool.job or a pool.worker";
        EXPECT_EQ(c.tid, it->second)
            << "a span's thread is the thread that opened it";
    }
}

TEST_F(ObservabilityTest, CounterAndHistogramMatchSerialReference)
{
    auto& reg = metrics::MetricsRegistry::instance();
    auto& counter = reg.counter("t.exact_counter");
    auto& hist = reg.histogram("t.exact_hist");
    counter.reset();
    hist.reset();

    const u64 kN = 20000;
    auto value_of = [](u64 i) { return (i * 2654435761ull) % 100000; };

    // Serial reference.
    u64 ref_count_total = 0, ref_hist_count = 0, ref_hist_sum = 0;
    u64 ref_min = ~u64{0}, ref_max = 0;
    std::array<u64, metrics::kHistBuckets> ref_buckets{};
    for (u64 i = 0; i < kN; ++i) {
        u64 v = value_of(i);
        ref_count_total += v % 7 + 1;
        ++ref_hist_count;
        ref_hist_sum += v;
        ref_buckets[metrics::Histogram::bucketOf(v)] += 1;
        ref_min = std::min(ref_min, v);
        ref_max = std::max(ref_max, v);
    }

    ThreadPool pool(4);
    pool.parallelFor(kN, 64, 5, [&](u64 b, u64 e) {
        for (u64 i = b; i < e; ++i) {
            u64 v = value_of(i);
            counter.add(v % 7 + 1);
            hist.record(v);
        }
    });

    // parallelFor blocked until every chunk ran: writers have quiesced, so
    // the merged shard totals are exact, not approximate.
    EXPECT_EQ(counter.total(), ref_count_total);
    auto snap = hist.read();
    EXPECT_EQ(snap.count, ref_hist_count);
    EXPECT_EQ(snap.sum, ref_hist_sum);
    EXPECT_EQ(snap.min, ref_min);
    EXPECT_EQ(snap.max, ref_max);
    for (u32 bkt = 0; bkt < metrics::kHistBuckets; ++bkt)
        EXPECT_EQ(snap.buckets[bkt], ref_buckets[bkt]) << "bucket " << bkt;

    counter.reset();
    hist.reset();
    EXPECT_EQ(counter.total(), 0u);
    EXPECT_EQ(hist.read().count, 0u);
    EXPECT_EQ(hist.read().min, 0u);
}

TEST_F(ObservabilityTest, GaugeAndBucketEdges)
{
    auto& g = metrics::MetricsRegistry::instance().gauge("t.gauge");
    g.set(3.25);
    EXPECT_EQ(g.value(), 3.25);
    g.set(-1e-9);
    EXPECT_EQ(g.value(), -1e-9);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);

    using metrics::Histogram;
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(u64{1} << 46), metrics::kHistBuckets - 1);
    EXPECT_EQ(Histogram::bucketOf(~u64{0}), metrics::kHistBuckets - 1);
}

TEST_F(ObservabilityTest, MetricsJsonExport)
{
    auto& reg = metrics::MetricsRegistry::instance();
    reg.counter("t.json_counter").reset();
    reg.counter("t.json_counter").add(42);
    reg.gauge("t.json_gauge").set(2.5);
    reg.histogram("t.json_hist").reset();
    reg.histogram("t.json_hist").record(9);

    std::string json = reg.exportJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"t.json_counter\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"t.json_gauge\": 2.5"), std::string::npos);
    EXPECT_NE(json.find("\"t.json_hist\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"sum\": 9"), std::string::npos);
}

TEST_F(ObservabilityTest, ChromeTraceRoundTripIsByteIdentical)
{
    WACO_REQUIRE_MACROS();
    trace::setEnabled(true);
    ThreadPool pool(2);
    {
        WACO_SPAN("t.rt_root");
        pool.parallelFor(8, 1, 3, [&](u64, u64) {
            WACO_SPAN("t.rt_chunk");
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        });
        WACO_SPAN("t.rt_tail");
    }
    trace::setEnabled(false);

    auto spans = trace::snapshot();
    ASSERT_GE(spans.size(), 4u);
    std::string json = trace::serializeChromeTrace(spans);
    // Minimal schema: a trace_event document of complete events.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"t.rt_root\""), std::string::npos);

    auto parsed = trace::parseChromeTrace(json);
    ASSERT_EQ(parsed.size(), spans.size());
    std::string json2 = trace::serializeChromeTrace(parsed);
    EXPECT_EQ(json, json2) << "emit -> parse -> re-emit must be bytewise "
                              "stable";

    // Everything except the (rebased) absolute time base survives the trip.
    i64 base = spans.front().startNs;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(parsed[i].id, spans[i].id);
        EXPECT_EQ(parsed[i].parent, spans[i].parent);
        EXPECT_EQ(parsed[i].name, spans[i].name);
        EXPECT_EQ(parsed[i].tid, spans[i].tid);
        EXPECT_EQ(parsed[i].startNs, spans[i].startNs - base);
        EXPECT_EQ(parsed[i].endNs - parsed[i].startNs,
                  spans[i].endNs - spans[i].startNs);
    }
}

TEST_F(ObservabilityTest, ChromeTraceRoundTripHandcraftedEdgeCases)
{
    // Tied start times (sorted by id), zero-length span, large values.
    std::vector<trace::SpanRecord> spans;
    spans.push_back({1, 0, "root", 0, 1000, 5000000});
    spans.push_back({2, 1, "tie_a", 0, 2000, 2000});
    spans.push_back({3, 1, "tie_b", 1, 2000, 4999999});
    spans.push_back({4, 3, "late", 1, 4000000, 4000001});
    std::string json = trace::serializeChromeTrace(spans);
    auto parsed = trace::parseChromeTrace(json);
    ASSERT_EQ(parsed.size(), spans.size());
    EXPECT_EQ(trace::serializeChromeTrace(parsed), json);
    EXPECT_EQ(parsed[1].endNs, parsed[1].startNs);
    EXPECT_EQ(parsed[3].endNs - parsed[3].startNs, 1);
}

TEST_F(ObservabilityTest, TunePipelineTracedVsUntracedIsIdentical)
{
    // Fixed-seed tiny end-to-end run. Train once, then tune the same
    // matrix with observability off and on: the phase spans must appear,
    // and the outcome must not change in any way (tracing is passive).
    WACO_REQUIRE_MACROS();
    CorpusOptions copt;
    copt.count = 6;
    copt.minDim = 256;
    copt.maxDim = 512;
    copt.minNnz = 800;
    copt.maxNnz = 3000;
    auto corpus = makeCorpus(copt, 51);

    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 4;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 12;
    opt.train.epochs = 3;
    opt.train.batchSchedules = 10;
    opt.topK = 5;
    opt.efSearch = 16;
    WacoTuner tuner(Algorithm::SpMM, MachineConfig::intel24(), opt);
    tuner.train(corpus);

    Rng rng(52);
    auto matrix = genDenseBlocks(384, 384, 8, 48, 0.9, rng);

    auto plain = tuner.tune(matrix);

    auto& reg = metrics::MetricsRegistry::instance();
    u64 tune_calls0 = reg.counter("tune.calls").total();
    u64 cost_evals0 = reg.counter("tune.cost_evals").total();
    u64 measure_calls0 = reg.counter("measure.calls").total();
    trace::clear();
    trace::setEnabled(true);
    metrics::setEnabled(true);
    auto traced = tuner.tune(matrix);
    trace::setEnabled(false);
    metrics::setEnabled(false);

    // Differential check: identical decisions and measurements.
    EXPECT_EQ(traced.best, plain.best);
    EXPECT_EQ(traced.best.describe(), plain.best.describe());
    EXPECT_EQ(traced.bestMeasured.seconds, plain.bestMeasured.seconds);
    EXPECT_EQ(traced.bestMeasured.valid, plain.bestMeasured.valid);
    EXPECT_EQ(traced.costEvaluations, plain.costEvaluations);
    EXPECT_EQ(traced.fellBack, plain.fellBack);
    ASSERT_EQ(traced.topK.size(), plain.topK.size());
    for (std::size_t i = 0; i < plain.topK.size(); ++i) {
        EXPECT_EQ(traced.topK[i], plain.topK[i]);
        EXPECT_EQ(traced.topKMeasured[i].seconds,
                  plain.topKMeasured[i].seconds);
    }

    // The traced run must produce the documented phase tree:
    // tune -> {tune.extract, tune.search, tune.measure}, in that order.
    auto spans = trace::snapshot();
    checkSpanInvariants(spans);
    auto tune_spans = named(spans, "tune");
    auto extract = named(spans, "tune.extract");
    auto search = named(spans, "tune.search");
    auto measure = named(spans, "tune.measure");
    ASSERT_EQ(tune_spans.size(), 1u);
    ASSERT_EQ(extract.size(), 1u);
    ASSERT_EQ(search.size(), 1u);
    ASSERT_EQ(measure.size(), 1u);
    EXPECT_EQ(tune_spans[0].parent, 0u);
    EXPECT_EQ(extract[0].parent, tune_spans[0].id);
    EXPECT_EQ(search[0].parent, tune_spans[0].id);
    EXPECT_EQ(measure[0].parent, tune_spans[0].id);
    EXPECT_LE(extract[0].endNs, search[0].startNs);
    EXPECT_LE(search[0].endNs, measure[0].startNs);

    // Nested layers surfaced too: the extractor under tune.extract, the
    // robust measurer under tune.measure.
    auto model_extract = named(spans, "model.extract");
    ASSERT_EQ(model_extract.size(), 1u);
    EXPECT_EQ(model_extract[0].parent, extract[0].id);
    auto measure_calls = named(spans, "measure.call");
    ASSERT_GE(measure_calls.size(), 1u);
    for (const auto& mc : measure_calls)
        EXPECT_EQ(mc.parent, measure[0].id);

    // And the metrics registry saw exactly this one tune.
    EXPECT_EQ(reg.counter("tune.calls").total() - tune_calls0, 1u);
    EXPECT_EQ(reg.counter("tune.cost_evals").total() - cost_evals0,
              traced.costEvaluations);
    EXPECT_EQ(reg.counter("measure.calls").total() - measure_calls0,
              traced.topK.size() + (traced.fellBack ? 1u : 0u));

    // The serialized trace of a real pipeline run must round-trip.
    std::string json = trace::serializeChromeTrace(spans);
    EXPECT_EQ(trace::serializeChromeTrace(trace::parseChromeTrace(json)),
              json);
}

TEST_F(ObservabilityTest, RulebookCacheEvictionCounters)
{
    ASSERT_TRUE(nn::rulebookCacheEnabled());
    metrics::setEnabled(true);
    auto& reg = metrics::MetricsRegistry::instance();
    u64 hits0 = reg.counter("rulebook.hits").total();
    u64 misses0 = reg.counter("rulebook.misses").total();
    u64 evict0 = reg.counter("rulebook.evictions").total();

    Rng rng(5);
    std::vector<nn::SparseConv> convs;
    convs.emplace_back(2u, 3u, 1u, 1u, 4u, rng);
    convs.emplace_back(2u, 3u, 2u, 4u, 4u, rng);

    auto coords_of = [](u64 seed) {
        Rng r(seed);
        auto m = genUniform(64, 64, 200, r);
        return PatternInput::fromMatrix(m).coords;
    };
    auto c0 = coords_of(1), c1 = coords_of(2);

    nn::RulebookCache cache;
    EXPECT_EQ(cache.pairBudget(), nn::RulebookCache::kMaxPairEntries);
    cache.chain(c0, convs); // miss, cached
    cache.chain(c0, convs); // hit
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);

    // A 1-pair budget can never hold two chains: each new insertion evicts
    // the resident one (but never itself — the newest entry survives).
    cache.setPairBudget(1);
    cache.chain(c1, convs); // miss, evicts c0's chain
    cache.chain(c0, convs); // miss again (was evicted), evicts c1's chain
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.evictions(), 2u);

    // The same events flowed into the process-wide registry.
#if WACO_OBSERVABILITY
    EXPECT_EQ(reg.counter("rulebook.hits").total() - hits0, cache.hits());
    EXPECT_EQ(reg.counter("rulebook.misses").total() - misses0,
              cache.misses());
    EXPECT_EQ(reg.counter("rulebook.evictions").total() - evict0,
              cache.evictions());
#else
    (void)hits0;
    (void)misses0;
    (void)evict0;
#endif
}

/**
 * Concurrency hammers for the ThreadSanitizer tree (`ctest -L tsan` in
 * build-tsan runs exactly this fixture). Four forced pool workers update
 * sharded metrics and nested spans while a reader thread concurrently
 * snapshots; after quiescence the merged totals must equal the serial sum.
 */
class ObservabilityTsan : public ObservabilityTest
{
};

TEST_F(ObservabilityTsan, MetricsHammerWithConcurrentReader)
{
    auto& reg = metrics::MetricsRegistry::instance();
    auto& counter = reg.counter("t.tsan_counter");
    auto& hist = reg.histogram("t.tsan_hist");
    auto& gauge = reg.gauge("t.tsan_gauge");
    counter.reset();
    hist.reset();

    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            auto counters = reg.counters();
            auto hsnap = hist.read();
            std::string json = reg.exportJson();
            (void)counters;
            (void)hsnap;
            (void)json;
        }
    });

    const u64 kN = 50000;
    ThreadPool pool(4);
    pool.parallelFor(kN, 16, 5, [&](u64 b, u64 e) {
        for (u64 i = b; i < e; ++i) {
            counter.add(2);
            hist.record(i % 1024);
            gauge.set(static_cast<double>(i));
        }
    });
    stop.store(true);
    reader.join();

    EXPECT_EQ(counter.total(), 2 * kN);
    auto snap = hist.read();
    EXPECT_EQ(snap.count, kN);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 1023u);
}

TEST_F(ObservabilityTsan, NestedSpansFromPoolWorkers)
{
    WACO_REQUIRE_MACROS();
    trace::setEnabled(true);
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            auto spans = trace::snapshot();
            u64 active = trace::activeSpanCount();
            (void)spans;
            (void)active;
        }
    });

    const u64 kChunks = 256;
    ThreadPool pool(4);
    {
        WACO_SPAN("t.tsan_root");
        pool.parallelFor(kChunks, 1, 5, [&](u64, u64) {
            WACO_SPAN("t.tsan_outer");
            {
                WACO_SPAN("t.tsan_inner");
                WACO_COUNT("t.tsan_span_bodies", 1);
            }
        });
    }
    stop.store(true);
    reader.join();
    trace::setEnabled(false);

    EXPECT_EQ(trace::activeSpanCount(), 0u);
    auto spans = trace::snapshot();
    checkSpanInvariants(spans);
    EXPECT_EQ(named(spans, "t.tsan_outer").size(), kChunks);
    EXPECT_EQ(named(spans, "t.tsan_inner").size(), kChunks);
    // Every inner span is the child of an outer span on the same thread.
    auto ids = byId(spans);
    for (const auto& s : named(spans, "t.tsan_inner")) {
        ASSERT_NE(ids.count(s.parent), 0u);
        EXPECT_EQ(ids[s.parent].name, "t.tsan_outer");
        EXPECT_EQ(ids[s.parent].tid, s.tid);
    }
}

} // namespace
} // namespace waco
