/**
 * @file
 * Cross-shape robustness: KNN-graph schedules are sampled on training
 * matrices but applied to arbitrary test matrices, so any schedule must
 * remain valid (splits clamp to extents) on any same-algorithm shape.
 * Also covers the wellKnownFormatSchedules family used as dataset anchors
 * and BestFormat candidates.
 */
#include <gtest/gtest.h>

#include "analysis/schedule_verifier.hpp"

#include <set>

#include "ir/schedule.hpp"
#include "perfmodel/cost_model.hpp"
#include "tensor/coo.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

TEST(WellKnownFormats, FiveDistinctValidFamilies)
{
    for (Algorithm alg : {Algorithm::SpMV, Algorithm::SpMM,
                          Algorithm::SDDMM}) {
        auto shape = ProblemShape::forMatrix(alg, 300, 200);
        auto fams = wellKnownFormatSchedules(shape);
        ASSERT_EQ(fams.size(), 5u) << algorithmName(alg);
        std::set<std::string> fmt_names;
        for (const auto& s : fams) {
            EXPECT_FALSE(analysis::verifySchedule(s, shape).hasErrors());
            fmt_names.insert(formatOf(s, shape).name());
        }
        EXPECT_EQ(fmt_names.size(), 5u) << algorithmName(alg);
    }
}

TEST(WellKnownFormats, RejectsTensors)
{
    auto shape = ProblemShape::forTensor3(Algorithm::MTTKRP, 8, 8, 8);
    EXPECT_THROW(wellKnownFormatSchedules(shape), FatalError);
}

TEST(ScheduleTransfer, BigScheduleAppliesToTinyShape)
{
    // Sample schedules on a large shape, apply on a tiny one: slotExtent
    // and formatOf clamp splits, and the oracle must accept them.
    Rng rng(1);
    auto big = ProblemShape::forMatrix(Algorithm::SpMM, 65536, 65536);
    auto tiny = ProblemShape::forMatrix(Algorithm::SpMM, 12, 9);
    SuperScheduleSpace space(Algorithm::SpMM, big);
    SparseMatrix m(12, 9, {{0, 0, 1.f}, {5, 3, 2.f}, {11, 8, 3.f}});
    RuntimeOracle oracle(MachineConfig::intel24());
    for (int n = 0; n < 30; ++n) {
        auto s = space.sample(rng);
        EXPECT_FALSE(analysis::verifySchedule(s, tiny).hasErrors())
            << s.key();
        auto fmt = formatOf(s, tiny);
        auto t = HierSparseTensor::build(fmt, m);
        EXPECT_EQ(t.toSparseMatrix(), m) << s.key();
        auto r = oracle.measure(m, tiny, s);
        EXPECT_TRUE(r.valid) << s.key();
        EXPECT_GT(r.seconds, 0.0);
    }
}

TEST(ScheduleTransfer, SlotExtentClampsSplits)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 10, 10);
    auto s = defaultSchedule(shape);
    s.splits[0] = 4096; // far larger than the dimension
    EXPECT_EQ(slotExtent(s, shape, innerSlot(0)), 10u); // clamped
    EXPECT_EQ(slotExtent(s, shape, outerSlot(0)), 1u);
}

TEST(OracleThreads, MoreThreadsNeverCatastrophicallyWorse)
{
    Rng rng(2);
    std::vector<Triplet> t;
    for (int n = 0; n < 30000; ++n) {
        t.push_back({static_cast<u32>(rng.index(4096)),
                     static_cast<u32>(rng.index(4096)), 1.0f});
    }
    SparseMatrix m(4096, 4096, t);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 4096);
    RuntimeOracle oracle(MachineConfig::intel24());
    auto s24 = defaultSchedule(shape);
    s24.numThreads = 24;
    auto s48 = defaultSchedule(shape);
    s48.numThreads = 48;
    auto r24 = oracle.measure(m, shape, s24);
    auto r48 = oracle.measure(m, shape, s48);
    // SMT gives a modest boost on compute-bound uniform work; it must not
    // blow up in either direction.
    EXPECT_LT(r48.seconds, r24.seconds * 1.5);
    EXPECT_GT(r48.seconds, r24.seconds * 0.3);
}

TEST(OracleDiagnostics, BreakdownConsistent)
{
    Rng rng(3);
    std::vector<Triplet> t;
    for (int n = 0; n < 5000; ++n) {
        t.push_back({static_cast<u32>(rng.index(1024)),
                     static_cast<u32>(rng.index(1024)), 1.0f});
    }
    SparseMatrix m(1024, 1024, t);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 1024, 1024);
    RuntimeOracle oracle(MachineConfig::intel24());
    auto r = oracle.measure(m, shape, defaultSchedule(shape));
    ASSERT_TRUE(r.valid);
    // Total = max(compute, memory) + fixed launch overhead.
    EXPECT_GE(r.seconds,
              std::max(r.computeSeconds, r.memorySeconds));
    EXPECT_GE(r.computeSeconds, r.serialSeconds);
    EXPECT_GE(r.imbalance, 1.0);
    EXPECT_GT(r.missBytes, 0.0);
    EXPECT_GE(r.storedValues, m.nnz());
    EXPECT_GT(r.formatBytes, 0u);
}

} // namespace
} // namespace waco
