/**
 * @file
 * Regression tests pinning the oracle behaviours the paper-reproduction
 * benches rely on. If a cost-model change silently breaks one of these,
 * the corresponding table/figure would lose its shape, so they are
 * asserted here at reduced scale.
 */
#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "perfmodel/cost_model.hpp"

namespace waco {
namespace {

class OracleShapes : public ::testing::Test
{
  protected:
    RuntimeOracle oracle{MachineConfig::intel24()};

    Measurement
    run(const SparseMatrix& m, const SuperSchedule& s)
    {
        auto shape =
            ProblemShape::forMatrix(Algorithm::SpMM, m.rows(), m.cols());
        return oracle.measure(m, shape, s);
    }
};

TEST_F(OracleShapes, SparseBlockTilingBeatsCsrOnWideScatteredMatrix)
{
    // The sparsine/Table-6 "Sparse Block" effect: on a matrix whose dense
    // operand misses the LLC, UUC column tiling cuts memory traffic.
    Rng rng(1);
    auto m = genUniform(4096, 65536, 200000, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 65536);
    auto wk = wellKnownFormatSchedules(shape);
    auto csr = run(m, wk[0]);
    auto uuc = run(m, wk[4]);
    ASSERT_TRUE(csr.valid);
    ASSERT_TRUE(uuc.valid);
    EXPECT_LT(uuc.seconds, csr.seconds * 0.7);
    EXPECT_LT(uuc.missBytes, csr.missBytes * 0.7);
}

TEST_F(OracleShapes, BcsrBeatsCsrOnWideBlockMatrix)
{
    Rng rng(2);
    // Wide enough that the dense operand misses the LLC (~50k distinct
    // columns); block structure then lets BCSR amortize row fetches.
    auto m = genDenseBlocks(16384, 131072, 16, 4000, 0.95, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 16384, 131072);
    auto wk = wellKnownFormatSchedules(shape);
    auto csr = run(m, wk[0]);
    auto bcsr = run(m, wk[2]);
    ASSERT_TRUE(csr.valid);
    ASSERT_TRUE(bcsr.valid);
    EXPECT_LT(bcsr.seconds, csr.seconds * 0.8);
}

TEST_F(OracleShapes, FormatsTieWhenOperandIsCacheResident)
{
    // With a small, LLC-resident dense operand there is little headroom:
    // blocked formats must not be predicted to win big (keeps Fig. 13's
    // "auto-tuners tie on easy matrices" region honest).
    Rng rng(3);
    auto m = genUniform(4096, 4096, 60000, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 4096);
    auto wk = wellKnownFormatSchedules(shape);
    auto csr = run(m, wk[0]);
    auto uuc = run(m, wk[4]);
    EXPECT_GT(uuc.seconds, csr.seconds * 0.85);
}

TEST_F(OracleShapes, ParallelizingInnerLoopIsExpensive)
{
    // CSC-with-inner-parallel (wellKnown[1] for SpMM) relaunches the
    // parallel region per outer iteration — the oracle must charge it.
    Rng rng(4);
    auto m = genUniform(4096, 4096, 60000, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 4096);
    auto wk = wellKnownFormatSchedules(shape);
    auto csr = run(m, wk[0]);
    auto csc = run(m, wk[1]);
    EXPECT_GT(csc.seconds, csr.seconds * 2.0);
    EXPECT_GT(csc.serialSeconds, csr.serialSeconds);
}

TEST_F(OracleShapes, LinearCountingTracksTrueTraffic)
{
    // Doubling nnz on the same shape must increase modelled miss bytes
    // noticeably when streaming-bound (sanity for the approximate
    // distinct counting).
    Rng rng(5);
    auto m1 = genUniform(4096, 65536, 120000, rng);
    auto m2 = genUniform(4096, 65536, 240000, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 65536);
    auto s = defaultSchedule(shape);
    auto r1 = oracle.measure(m1, shape, s);
    auto r2 = oracle.measure(m2, shape, s);
    EXPECT_GT(r2.missBytes, r1.missBytes * 1.5);
}

} // namespace
} // namespace waco
