/**
 * @file
 * Tests of the from-scratch NN stack: numerical gradient checks for every
 * layer type, optimizer convergence on a toy problem, ranking-loss
 * semantics, and sparse-conv structural behaviour (submanifold vs strided).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "nn/sparse_conv.hpp"

namespace waco::nn {
namespace {

/** Central-difference gradient check for a scalar-valued function of a
 *  parameter, against the analytic gradient accumulated by backward(). */
template <typename FwdBwd>
void
checkParamGradient(Param& p, FwdBwd&& run, double tol = 2e-2)
{
    p.zeroGrad();
    run(); // accumulate analytic gradients
    Mat analytic = p.g;
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < std::min<std::size_t>(p.w.v.size(), 12); ++i) {
        float saved = p.w.v[i];
        p.w.v[i] = saved + eps;
        p.zeroGrad();
        double up = run();
        p.w.v[i] = saved - eps;
        p.zeroGrad();
        double down = run();
        p.w.v[i] = saved;
        double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(analytic.v[i], numeric,
                    tol * std::max(1.0, std::abs(numeric)))
            << "param element " << i;
    }
}

TEST(NnMat, MatmulAgainstHand)
{
    Mat a(2, 3);
    Mat b(3, 2);
    for (u32 i = 0; i < 6; ++i) {
        a.v[i] = static_cast<float>(i + 1);
        b.v[i] = static_cast<float>(6 - i);
    }
    Mat c;
    matmul(a, b, c);
    // a = [1 2 3; 4 5 6], b = [6 5; 4 3; 2 1]
    EXPECT_FLOAT_EQ(c.at(0, 0), 20.f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 14.f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 56.f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 41.f);
}

TEST(NnLinear, GradientCheck)
{
    Rng rng(1);
    Linear lin(4, 3, rng);
    Mat x(5, 4);
    for (auto& v : x.v)
        v = static_cast<float>(rng.normal());
    std::vector<Param*> ps;
    lin.collectParams(ps);
    auto run = [&]() {
        Mat y = lin.forward(x);
        // Loss = sum of squares / 2 so dL/dy = y.
        double loss = 0.0;
        for (auto v : y.v)
            loss += 0.5 * v * v;
        lin.backward(y);
        return loss;
    };
    for (Param* p : ps)
        checkParamGradient(*p, run);
}

TEST(NnMlp, GradientCheckThroughReLU)
{
    Rng rng(2);
    MLP mlp({3, 8, 1}, rng);
    Mat x(6, 3);
    for (auto& v : x.v)
        v = static_cast<float>(rng.normal());
    std::vector<Param*> ps;
    mlp.collectParams(ps);
    auto run = [&]() {
        Mat y = mlp.forward(x);
        double loss = 0.0;
        for (auto v : y.v)
            loss += 0.5 * v * v;
        mlp.backward(y);
        return loss;
    };
    checkParamGradient(*ps.front(), run);
    checkParamGradient(*ps.back(), run);
}

TEST(NnEmbedding, GatherScatter)
{
    Rng rng(3);
    Embedding emb(10, 4, rng);
    Mat y = emb.forward({3, 3, 7});
    EXPECT_EQ(y.rows, 3u);
    Mat dy(3, 4, 1.0f);
    emb.backward(dy);
    std::vector<Param*> ps;
    emb.collectParams(ps);
    // Row 3 received two unit gradients, row 7 one, others none.
    EXPECT_FLOAT_EQ(ps[0]->g.at(3, 0), 2.0f);
    EXPECT_FLOAT_EQ(ps[0]->g.at(7, 0), 1.0f);
    EXPECT_FLOAT_EQ(ps[0]->g.at(0, 0), 0.0f);
}

TEST(NnAdam, ConvergesOnLeastSquares)
{
    Rng rng(4);
    Linear lin(2, 1, rng);
    std::vector<Param*> ps;
    lin.collectParams(ps);
    Adam opt(ps, 5e-2);
    // Fit y = 2 x0 - x1 + 0.5.
    Mat x(16, 2);
    std::vector<float> target(16);
    for (u32 r = 0; r < 16; ++r) {
        x.at(r, 0) = static_cast<float>(rng.normal());
        x.at(r, 1) = static_cast<float>(rng.normal());
        target[r] = 2.f * x.at(r, 0) - x.at(r, 1) + 0.5f;
    }
    double last = 1e9;
    for (int epoch = 0; epoch < 400; ++epoch) {
        Mat y = lin.forward(x);
        Mat d(16, 1);
        double loss = 0.0;
        for (u32 r = 0; r < 16; ++r) {
            float diff = y.at(r, 0) - target[r];
            loss += 0.5 * diff * diff;
            d.at(r, 0) = diff;
        }
        lin.backward(d);
        opt.step();
        last = loss;
    }
    EXPECT_LT(last, 1e-3);
}

TEST(NnLoss, HingeRanksCorrectly)
{
    Mat pred(3, 1);
    pred.at(0, 0) = 0.0f; // truth: fastest
    pred.at(1, 0) = 5.0f; // truth: middle
    pred.at(2, 0) = 9.0f; // truth: slowest
    std::vector<double> truth = {1.0, 2.0, 3.0};
    auto good = pairwiseHingeLoss(pred, truth);
    EXPECT_DOUBLE_EQ(good.loss, 0.0); // margins all > 1
    EXPECT_DOUBLE_EQ(pairwiseOrderAccuracy(pred, truth), 1.0);

    std::vector<double> reversed = {3.0, 2.0, 1.0};
    auto bad = pairwiseHingeLoss(pred, reversed);
    EXPECT_GT(bad.loss, 1.0);
    EXPECT_DOUBLE_EQ(pairwiseOrderAccuracy(pred, reversed), 0.0);
    // dL/dpred: descent (-grad) raises the prediction of the truly-slow
    // schedule predicted fast, and lowers the truly-fast one predicted slow.
    EXPECT_LT(bad.dPred.at(0, 0), 0.0f);
    EXPECT_GT(bad.dPred.at(2, 0), 0.0f);
}

TEST(NnSparseConv, SubmanifoldKeepsSites)
{
    Rng rng(5);
    SparseConv conv(2, 3, 1, 1, 4, rng);
    SparseMap in;
    in.dim = 2;
    in.coords = {{0, 0, 0}, {0, 1, 0}, {5, 5, 0}};
    in.feats = Mat(3, 1, 1.0f);
    auto out = conv.forward(in);
    EXPECT_EQ(out.numSites(), 3u);
    EXPECT_EQ(out.coords, in.coords);
    EXPECT_EQ(out.feats.cols, 4u);
}

TEST(NnSparseConv, IsolatedSitesDoNotPropagate)
{
    // The Figure 8 pathology: with stride 1, distant nonzeros never
    // exchange information — each output depends only on its own site.
    Rng rng(6);
    SparseConv conv(2, 3, 1, 1, 2, rng);
    SparseMap in;
    in.dim = 2;
    in.coords = {{0, 0, 0}, {100, 100, 0}};
    in.feats = Mat(2, 1);
    in.feats.at(0, 0) = 1.0f;
    in.feats.at(1, 0) = 1.0f;
    auto base = conv.forward(in);
    in.feats.at(1, 0) = 42.0f; // perturb the distant site
    auto perturbed = conv.forward(in);
    EXPECT_FLOAT_EQ(base.feats.at(0, 0), perturbed.feats.at(0, 0));
    EXPECT_NE(base.feats.at(1, 0), perturbed.feats.at(1, 0));
}

TEST(NnSparseConv, Stride2CoarsensAndMerges)
{
    Rng rng(7);
    SparseConv conv(2, 3, 2, 1, 2, rng);
    SparseMap in;
    in.dim = 2;
    in.coords = {{0, 0, 0}, {1, 1, 0}, {8, 8, 0}};
    in.feats = Mat(3, 1, 1.0f);
    auto out = conv.forward(in);
    // Sites (0,0) and (1,1) fall into nearby coarse cells; count shrinks
    // relative to repeated application.
    EXPECT_GT(out.numSites(), 0u);
    // Repeated striding eventually merges everything near the origin.
    SparseMap cur = in;
    SparseConv c2(2, 3, 2, 1, 1, rng);
    for (int l = 0; l < 6; ++l) {
        cur = c2.forward(cur);
        cur.feats = Mat(cur.numSites(), 1, 1.0f);
    }
    EXPECT_LE(cur.numSites(), 3u);
    EXPECT_GE(cur.numSites(), 1u);
}

TEST(NnSparseConv, GradientCheck)
{
    Rng rng(8);
    SparseConv conv(2, 3, 2, 2, 3, rng);
    SparseMap in;
    in.dim = 2;
    in.coords = {{0, 0, 0}, {1, 0, 0}, {3, 2, 0}, {4, 4, 0}};
    in.feats = Mat(4, 2);
    for (auto& v : in.feats.v)
        v = static_cast<float>(rng.normal());
    std::vector<Param*> ps;
    conv.collectParams(ps);
    auto run = [&]() {
        auto out = conv.forward(in);
        double loss = 0.0;
        for (auto v : out.feats.v)
            loss += 0.5 * v * v;
        conv.backward(out.feats);
        return loss;
    };
    checkParamGradient(*ps[4], run); // one filter offset
    checkParamGradient(*ps.back(), run); // bias
}

TEST(NnPool, AverageAndBackward)
{
    SparseMap in;
    in.dim = 2;
    in.coords = {{0, 0, 0}, {1, 1, 0}};
    in.feats = Mat(2, 2);
    in.feats.at(0, 0) = 2.0f;
    in.feats.at(1, 0) = 4.0f;
    in.feats.at(0, 1) = -2.0f;
    in.feats.at(1, 1) = 2.0f;
    GlobalAvgPool pool;
    Mat y = pool.forward(in);
    EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
    Mat dy(1, 2, 1.0f);
    Mat dx = pool.backward(dy);
    EXPECT_FLOAT_EQ(dx.at(0, 0), 0.5f);
    EXPECT_FLOAT_EQ(dx.at(1, 1), 0.5f);
}

TEST(NnSerialize, SaveLoadRoundTrip)
{
    Rng rng(9);
    MLP a({4, 6, 2}, rng);
    MLP b({4, 6, 2}, rng);
    std::vector<Param*> pa, pb;
    a.collectParams(pa);
    b.collectParams(pb);
    std::string path = ::testing::TempDir() + "/waco_params.bin";
    saveParams(pa, path);
    loadParams(pb, path);
    Mat x(2, 4, 0.5f);
    Mat ya = a.forward(x);
    Mat yb = b.forward(x);
    for (std::size_t i = 0; i < ya.v.size(); ++i)
        EXPECT_FLOAT_EQ(ya.v[i], yb.v[i]);
    std::remove(path.c_str());
    MLP c({4, 7, 2}, rng);
    std::vector<Param*> pc;
    c.collectParams(pc);
    saveParams(pa, path);
    EXPECT_THROW(loadParams(pc, path), FatalError);
    std::remove(path.c_str());
}

TEST(NnSerialize, RejectsTruncatedAndOverlongFiles)
{
    Rng rng(11);
    MLP a({3, 5, 1}, rng);
    std::vector<Param*> pa;
    a.collectParams(pa);
    std::string path = ::testing::TempDir() + "/waco_params_corrupt.bin";
    saveParams(pa, path);

    // Read the intact bytes once.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    MLP b({3, 5, 1}, rng);
    std::vector<Param*> pb;
    b.collectParams(pb);

    // Truncation at several byte offsets must raise, never half-load.
    for (std::size_t keep :
         {bytes.size() - 1, bytes.size() - 7, bytes.size() / 2,
          std::size_t(9)}) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(keep));
        out.close();
        EXPECT_THROW(loadParams(pb, path), FatalError) << "keep=" << keep;
    }

    // Trailing garbage (an over-long file) must raise too.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        out.put('\x42');
        out.close();
        EXPECT_THROW(loadParams(pb, path), FatalError);
    }

    // The intact file still loads after all that.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        out.close();
        EXPECT_NO_THROW(loadParams(pb, path));
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace waco::nn
