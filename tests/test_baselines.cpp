/**
 * @file
 * Tests for the four baselines: contract checks (supported algorithms,
 * valid measurements) and sanity of their tuning behaviour (the inspector
 * never loses to its own naive mode on its chosen metric, the format
 * classifier separates obviously-different patterns).
 */
#include <gtest/gtest.h>

#include "analysis/schedule_verifier.hpp"

#include "baselines/baselines.hpp"
#include "data/generators.hpp"

namespace waco {
namespace {

class BaselineTest : public ::testing::Test
{
  protected:
    RuntimeOracle oracle{MachineConfig::intel24()};
};

TEST_F(BaselineTest, FixedCsrMeasuresDefaults)
{
    Rng rng(1);
    auto m = genUniform(512, 512, 4000, rng);
    auto r = fixedCsr(oracle, m, Algorithm::SpMM);
    EXPECT_TRUE(r.measured.valid);
    EXPECT_GT(r.measured.seconds, 0.0);
    EXPECT_EQ(r.schedule.ompChunk, 32u);
    EXPECT_GT(r.convertSeconds, 0.0);
    auto rv = fixedCsr(oracle, m, Algorithm::SpMV);
    EXPECT_EQ(rv.schedule.ompChunk, 128u);
}

TEST_F(BaselineTest, FixedCsfForTensors)
{
    Rng rng(2);
    auto t = genTensor3(200, 150, 100, 3000, rng);
    auto r = fixedCsf(oracle, t);
    EXPECT_TRUE(r.measured.valid);
    EXPECT_GT(r.measured.seconds, 0.0);
}

TEST_F(BaselineTest, MklTunesScheduleOnly)
{
    Rng rng(3);
    auto m = genPowerLawRows(4096, 4096, 60000, 1.3, rng);
    MklLike mkl(oracle);
    EXPECT_TRUE(mkl.supports(Algorithm::SpMV));
    EXPECT_FALSE(mkl.supports(Algorithm::SDDMM));
    auto tuned = mkl.tune(m, Algorithm::SpMM);
    auto naive = mkl.naive(m, Algorithm::SpMM);
    EXPECT_TRUE(tuned.measured.valid);
    // The inspector explored the naive point's neighborhood, so it can
    // never be slower than the best config it tried.
    EXPECT_LE(tuned.measured.seconds, naive.measured.seconds * 1.01);
    EXPECT_GT(tuned.tuningSeconds, 0.0);
    EXPECT_EQ(tuned.convertSeconds, 0.0); // format pinned to CSR
    // Format must still be CSR.
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 4096);
    EXPECT_EQ(formatOf(tuned.schedule, shape),
              FormatDescriptor::csr(4096, 4096));
}

TEST_F(BaselineTest, BestFormatCandidatesAreValidAndDistinct)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 1024, 1024);
    BestFormat bf(oracle);
    auto cands = bf.candidates(shape);
    ASSERT_EQ(cands.size(), 5u);
    std::set<std::string> keys;
    for (const auto& c : cands) {
        EXPECT_FALSE(analysis::verifySchedule(c, shape).hasErrors())
            << c.key();
        keys.insert(formatOf(c, shape).name());
    }
    EXPECT_EQ(keys.size(), 5u) << "all five formats distinct";
}

TEST_F(BaselineTest, BestFormatSeparatesBlockyFromScattered)
{
    // Train on a corpus with obvious structure, check it classifies a
    // held-out blocky matrix differently from a scattered one.
    Rng rng(4);
    std::vector<SparseMatrix> corpus;
    for (int i = 0; i < 6; ++i) {
        corpus.push_back(genBlockDiagonal(512 + 64 * i, 16, rng));
        corpus.push_back(genUniform(512 + 64 * i, 512 + 64 * i, 3000, rng));
    }
    BestFormat bf(oracle);
    bf.train(Algorithm::SpMM, corpus);
    auto blocky = genBlockDiagonal(768, 16, rng);
    auto r = bf.tune(blocky);
    EXPECT_TRUE(r.measured.valid);
    EXPECT_GT(r.measured.seconds, 0.0);
    EXPECT_GT(r.convertSeconds, 0.0);
    // The chosen format should not lose badly to plain CSR on its pick.
    auto csr = fixedCsr(oracle, blocky, Algorithm::SpMM);
    EXPECT_LT(r.measured.seconds, csr.measured.seconds * 2.0);
}

TEST_F(BaselineTest, AsptSplitsDenseAndSparse)
{
    Rng rng(5);
    // Half dense blocks, half scattered: ASpT should produce a finite
    // two-phase measurement and a real inspection cost.
    auto blocks = genDenseBlocks(2048, 2048, 16, 300, 0.95, rng);
    Aspt aspt(oracle);
    EXPECT_TRUE(aspt.supports(Algorithm::SpMM));
    EXPECT_FALSE(aspt.supports(Algorithm::SpMV));
    auto r = aspt.tune(blocks, Algorithm::SpMM);
    EXPECT_TRUE(r.measured.valid);
    EXPECT_GT(r.measured.seconds, 0.0);
    EXPECT_GT(r.tuningSeconds, 0.0);
}

} // namespace
} // namespace waco
