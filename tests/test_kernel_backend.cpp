/**
 * @file
 * Tests for the compiled-kernel backend (codegen/kernel_backend.hpp):
 * LRU cache semantics, the compiler-discovery/compile-failure fallback
 * ladder, memoization (zero recompiles on repeat keys), bitwise
 * equivalence of JIT'd kernels with the interpreter, and concurrent
 * cache access (the CompiledKernelTsan suite re-runs under tsan).
 *
 * Every test that needs a real compiler GTEST_SKIPs when the host has
 * none — the `codegen` ctest label must degrade gracefully, never fail,
 * on compiler-less machines.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "codegen/emit.hpp"
#include "codegen/kernel_backend.hpp"
#include "exec/reference.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

SparseMatrix
intMatrix(u32 rows, u32 cols, u32 nnz, Rng& rng)
{
    std::vector<Triplet> t;
    for (u32 n = 0; n < nnz; ++n) {
        t.push_back({static_cast<u32>(rng.index(rows)),
                     static_cast<u32>(rng.index(cols)),
                     static_cast<float>(rng.uniformInt(1, 4))});
    }
    return SparseMatrix(rows, cols, t);
}

void
fillInt(DenseMatrix& m, Rng& rng)
{
    for (auto& x : m.data())
        x = static_cast<float>(rng.uniformInt(1, 3));
}

/** A fresh backend with an isolated temp dir is not needed — the default
 *  per-process dir is shared safely — but tests that tweak options build
 *  their own instance so they never pollute the global backend's stats. */
CompiledBackendOptions
defaultOpts()
{
    return {};
}

// ---------------------------------------------------------------------------
// KernelCache unit tests (no compiler involved; entries via forTesting).
// ---------------------------------------------------------------------------

void
dummyKernel(const WacoKernelArgs*, std::int64_t, std::int64_t, float*)
{
}

TEST(KernelCache, LruEvictionOrder)
{
    KernelCache cache(2);
    cache.put("a", CompiledKernel::forTesting(&dummyKernel));
    cache.put("b", CompiledKernel::forTesting(&dummyKernel));
    EXPECT_EQ(cache.size(), 2u);

    // Touch "a" so "b" becomes LRU; inserting "c" must evict "b".
    EXPECT_NE(cache.get("a"), nullptr);
    cache.put("c", CompiledKernel::forTesting(&dummyKernel));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.get("a"), nullptr);
    EXPECT_NE(cache.get("c"), nullptr);
    EXPECT_EQ(cache.get("b"), nullptr);

    auto st = cache.stats();
    EXPECT_EQ(st.insertions, 3u);
    EXPECT_EQ(st.evictions, 1u);
}

TEST(KernelCache, CapacityZeroNeverRetains)
{
    KernelCache cache(0);
    cache.put("a", CompiledKernel::forTesting(&dummyKernel));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.get("a"), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(KernelCache, ShrinkingCapacityEvicts)
{
    KernelCache cache(4);
    for (const char* k : {"a", "b", "c", "d"})
        cache.put(k, CompiledKernel::forTesting(&dummyKernel));
    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 1u);
    // The survivor is the most recently used entry.
    EXPECT_NE(cache.get("d"), nullptr);
    EXPECT_EQ(cache.capacity(), 1u);
}

TEST(KernelCache, ReplacingKeyKeepsSize)
{
    KernelCache cache(2);
    cache.put("a", CompiledKernel::forTesting(&dummyKernel));
    cache.put("a", CompiledKernel::forTesting(&dummyKernel));
    EXPECT_EQ(cache.size(), 1u);
    // An evicted handle must stay alive while someone holds the pointer.
    auto held = cache.get("a");
    cache.setCapacity(0);
    EXPECT_EQ(cache.size(), 0u);
    ASSERT_NE(held, nullptr);
    EXPECT_NE(held->fn(), nullptr);
}

// ---------------------------------------------------------------------------
// Cache-key structure: what must and must not affect compiled identity.
// ---------------------------------------------------------------------------

TEST(KernelCacheKey, ParallelAnnotationDoesNotChangeKey)
{
    // Parallelism is host-driven, so two schedules differing only in the
    // parallel/chunk annotation share one compiled kernel.
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 64, 48, 8);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    Rng rng(42);
    SuperSchedule s = space.sample(rng);
    SuperSchedule t = s;
    t.ompChunk = s.ompChunk == 32 ? 64 : 32;
    t.numThreads = s.numThreads == 48 ? 24 : 48;
    EXPECT_EQ(kernelCacheKey(lower(s, shape), {true}, true),
              kernelCacheKey(lower(t, shape), {true}, true));
}

TEST(KernelCacheKey, StructuralChangesChangeKey)
{
    auto nest = lowerStorageOrder(Algorithm::SpMV,
                                  FormatDescriptor::csr(64, 48));
    auto key = kernelCacheKey(nest, {}, true);
    // Different format half.
    auto csc = lowerStorageOrder(Algorithm::SpMV,
                                 FormatDescriptor::csc(64, 48));
    EXPECT_NE(key, kernelCacheKey(csc, {}, true));
    // Different emitter pass configuration.
    EXPECT_NE(key, kernelCacheKey(nest, {}, false));
    // Different shape class.
    auto small = lowerStorageOrder(Algorithm::SpMV,
                                   FormatDescriptor::csr(32, 48));
    EXPECT_NE(key, kernelCacheKey(small, {}, true));
}

TEST(KernelCacheKey, DenseLayoutChangesKey)
{
    auto nest = lowerStorageOrder(Algorithm::SpMM,
                                  FormatDescriptor::csr(64, 48), 8);
    EXPECT_NE(kernelCacheKey(nest, {true}, true),
              kernelCacheKey(nest, {false}, true));
}

// ---------------------------------------------------------------------------
// Fallback ladder.
// ---------------------------------------------------------------------------

TEST(CompiledBackendFallback, MissingCompilerFallsBackToInterpreter)
{
    auto opt = defaultOpts();
    opt.compiler = "/nonexistent/waco-cc-that-is-not-here";
    CompiledBackend backend(opt);
    EXPECT_FALSE(backend.compilerAvailable());
    EXPECT_EQ(backend.compilerPath(), "");

    Rng rng(7);
    auto m = intMatrix(32, 24, 120, rng);
    auto t = HierSparseTensor::build(FormatDescriptor::csr(32, 24), m);
    DenseVector b(24);
    for (u64 i = 0; i < b.size(); ++i)
        b[i] = static_cast<float>(rng.uniformInt(1, 3));
    auto nest = lowerStorageOrder(Algorithm::SpMV,
                                  FormatDescriptor::csr(32, 24));

    LoopNestArgs args;
    args.a = &t;
    args.vecB = &b;
    auto got = backend.execute(nest, args);
    EXPECT_EQ(0.0, maxAbsDiff(spmvReference(m, b), got.vec));

    auto st = backend.stats();
    EXPECT_EQ(st.compiles, 0u);
    EXPECT_GE(st.fallbacks, 1u);
    EXPECT_EQ(st.launches, 0u);
}

TEST(CompiledBackendFallback, CompileFailureFallsBackAndQuarantines)
{
    if (!compiledBackend().compilerAvailable())
        GTEST_SKIP() << "no system C compiler on this host";

    auto opt = defaultOpts();
    // The probe compiles clean; every kernel compile then dies on an
    // unknown flag — exercising the failure rung past a good probe.
    opt.extraFlags = "--waco-definitely-not-a-flag";
    opt.maxConsecutiveFailures = 2;
    CompiledBackend backend(opt);
    EXPECT_TRUE(backend.compilerAvailable());

    Rng rng(8);
    auto m = intMatrix(32, 24, 120, rng);
    auto t = HierSparseTensor::build(FormatDescriptor::csr(32, 24), m);
    DenseMatrix b(24, 4);
    fillInt(b, rng);
    auto want = spmmReference(m, b);

    LoopNestArgs args;
    args.a = &t;
    args.matB = &b;
    auto nest = lowerStorageOrder(Algorithm::SpMM,
                                  FormatDescriptor::csr(32, 24), 4);
    for (int run = 0; run < 4; ++run) {
        auto got = backend.execute(nest, args);
        EXPECT_EQ(0.0, maxAbsDiff(want, got.mat));
    }
    auto st = backend.stats();
    EXPECT_EQ(st.compiles, 0u);
    // Quarantine kicks in after maxConsecutiveFailures: 4 executions but
    // only 2 compiler invocations.
    EXPECT_EQ(st.compileFailures, 2u);
    EXPECT_EQ(st.fallbacks, 4u);
    EXPECT_FALSE(backend.lastError().empty());
}

TEST(CompiledBackendFallback, BogusWacoCcEnvIsHandled)
{
    // $WACO_CC pointing at a non-compiler must downgrade gracefully.
    ::setenv("WACO_CC", "/bin/false", 1);
    CompiledBackend backend; // fresh instance probes the env override
    EXPECT_FALSE(backend.compilerAvailable());
    ::unsetenv("WACO_CC");
}

// ---------------------------------------------------------------------------
// Real compilation: correctness, memoization, artifact hygiene.
// ---------------------------------------------------------------------------

TEST(CompiledBackend, SpmvMatchesInterpreterBitwise)
{
    if (!compiledBackend().compilerAvailable())
        GTEST_SKIP() << "no system C compiler on this host";
    CompiledBackend backend;

    Rng rng(11);
    auto m = intMatrix(48, 40, 300, rng);
    DenseVector b(40);
    for (u64 i = 0; i < b.size(); ++i)
        b[i] = static_cast<float>(rng.uniformInt(1, 3));
    LoopNestArgs args;
    args.vecB = &b;
    for (const auto& desc :
         {FormatDescriptor::csr(48, 40), FormatDescriptor::csc(48, 40),
          FormatDescriptor::bcsr(48, 40, 4, 4)}) {
        auto t = HierSparseTensor::build(desc, m);
        args.a = &t;
        auto nest = lowerStorageOrder(Algorithm::SpMV, desc);
        auto want = executeLoopNest(nest, args);
        auto got = backend.execute(nest, args);
        ASSERT_EQ(want.vec.size(), got.vec.size()) << desc.name();
        for (u64 i = 0; i < want.vec.size(); ++i)
            EXPECT_EQ(want.vec[i], got.vec[i]) << desc.name();
    }
    EXPECT_EQ(backend.stats().fallbacks, 0u);
    EXPECT_EQ(backend.stats().launches, 3u);
}

TEST(CompiledBackend, SecondExecutionHitsCacheWithZeroRecompiles)
{
    if (!compiledBackend().compilerAvailable())
        GTEST_SKIP() << "no system C compiler on this host";
    CompiledBackend backend;

    Rng rng(12);
    auto m = intMatrix(40, 32, 200, rng);
    auto t = HierSparseTensor::build(FormatDescriptor::csr(40, 32), m);
    DenseMatrix b(32, 8);
    fillInt(b, rng);
    LoopNestArgs args;
    args.a = &t;
    args.matB = &b;
    auto nest = lowerStorageOrder(Algorithm::SpMM,
                                  FormatDescriptor::csr(40, 32), 8);

    // The acceptance-criterion counter: repeat fingerprints must perform
    // zero compiler invocations, observable via codegen.compiles.
    auto& compiles =
        metrics::MetricsRegistry::instance().counter("codegen.compiles");
    auto& hits =
        metrics::MetricsRegistry::instance().counter("codegen.cache_hits");
    compiles.reset();
    hits.reset();
    metrics::setEnabled(true);
    auto first = backend.execute(nest, args);
    EXPECT_EQ(backend.stats().compiles, 1u);
    auto again = backend.execute(nest, args, {2, 16});
    metrics::setEnabled(false);
    EXPECT_EQ(backend.stats().compiles, 1u);
    EXPECT_GE(backend.stats().cacheHits, 1u);
    for (u64 i = 0; i < first.mat.data().size(); ++i)
        EXPECT_EQ(first.mat.data()[i], again.mat.data()[i]);
    EXPECT_EQ(compiles.total(), 1u);
    EXPECT_GE(hits.total(), 1u);
}

TEST(CompiledBackend, EmittedSourceContainsAbiEntrypoint)
{
    auto nest = lowerStorageOrder(Algorithm::SpMM,
                                  FormatDescriptor::csr(16, 16), 4);
    KernelEmitOptions eo;
    eo.inputRowMajor = {true};
    std::string src = emitKernelC(nest, eo);
    EXPECT_NE(src.find("waco_kernel(const waco_args_t* args"),
              std::string::npos)
        << src;
    EXPECT_NE(src.find("int64_t waco_begin"), std::string::npos) << src;
}

// ---------------------------------------------------------------------------
// Concurrent cache access — re-registered under the tsan ctest label.
// ---------------------------------------------------------------------------

TEST(CompiledKernelTsan, ConcurrentExecutionsCompileOnceAndAgree)
{
    if (!compiledBackend().compilerAvailable())
        GTEST_SKIP() << "no system C compiler on this host";
    CompiledBackend backend;

    Rng rng(13);
    auto m = intMatrix(48, 40, 300, rng);
    auto csr = HierSparseTensor::build(FormatDescriptor::csr(48, 40), m);
    auto csc = HierSparseTensor::build(FormatDescriptor::csc(48, 40), m);
    DenseMatrix b(40, 8);
    fillInt(b, rng);
    auto nestR = lowerStorageOrder(Algorithm::SpMM,
                                   FormatDescriptor::csr(48, 40), 8);
    auto nestC = lowerStorageOrder(Algorithm::SpMM,
                                   FormatDescriptor::csc(48, 40), 8);
    LoopNestArgs argsR, argsC;
    argsR.a = &csr;
    argsR.matB = &b;
    argsC.a = &csc;
    argsC.matB = &b;
    auto want = executeLoopNest(nestR, argsR);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
        threads.emplace_back([&, w] {
            // Half the threads race on the same key, half on another.
            const LoopNest& nest = (w % 2 != 0) ? nestC : nestR;
            const LoopNestArgs& args = (w % 2 != 0) ? argsC : argsR;
            for (int run = 0; run < 3; ++run) {
                auto got = backend.execute(nest, args, {2, 16});
                for (u64 i = 0; i < want.mat.data().size(); ++i) {
                    if (got.mat.data()[i] != want.mat.data()[i]) {
                        mismatches.fetch_add(1);
                        break;
                    }
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(mismatches.load(), 0);
    // Two distinct keys -> exactly two compiles despite 12 executions.
    EXPECT_EQ(backend.stats().compiles, 2u);
    EXPECT_EQ(backend.stats().fallbacks, 0u);
}

// ---------------------------------------------------------------------------
// Backend selection plumbing.
// ---------------------------------------------------------------------------

TEST(KernelBackendSelect, NamesParse)
{
    KernelBackendKind kind;
    EXPECT_TRUE(kernelBackendFromName("interp", kind));
    EXPECT_EQ(kind, KernelBackendKind::Interpreter);
    EXPECT_TRUE(kernelBackendFromName("compiled", kind));
    EXPECT_EQ(kind, KernelBackendKind::Compiled);
    EXPECT_FALSE(kernelBackendFromName("cuda", kind));
}

TEST(KernelBackendSelect, ActiveBackendDefaultsToInterpreter)
{
    EXPECT_EQ(activeKernelBackendKind(), KernelBackendKind::Interpreter);
    EXPECT_EQ(activeKernelBackend().name(), "interp");
    setActiveKernelBackend(KernelBackendKind::Compiled);
    EXPECT_EQ(activeKernelBackend().name(), "compiled");
    setActiveKernelBackend(KernelBackendKind::Interpreter);
    EXPECT_EQ(activeKernelBackend().name(), "interp");
}

} // namespace
} // namespace waco
