/**
 * @file
 * Unit + property tests for the TACO-style format abstraction: level
 * construction, dense-block padding, round trips, and budget guards.
 */
#include <gtest/gtest.h>

#include "tensor/format.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

SparseMatrix
smallMatrix()
{
    // 4x6 with a 2x2 dense block at (0,0) and scattered entries.
    return SparseMatrix(4, 6,
                        {{0, 0, 1.f},
                         {0, 1, 2.f},
                         {1, 0, 3.f},
                         {1, 1, 4.f},
                         {2, 4, 5.f},
                         {3, 2, 6.f},
                         {3, 5, 7.f}});
}

TEST(Format, CsrLevelArrays)
{
    auto m = smallMatrix();
    auto t = HierSparseTensor::build(FormatDescriptor::csr(4, 6), m);
    ASSERT_EQ(t.levels().size(), 2u);
    const auto& top = t.levels()[0];
    EXPECT_EQ(top.fmt, LevelFormat::Uncompressed);
    EXPECT_EQ(top.numPositions, 4u);
    const auto& bot = t.levels()[1];
    EXPECT_EQ(bot.fmt, LevelFormat::Compressed);
    EXPECT_EQ(bot.pos, (std::vector<u64>{0, 2, 4, 5, 7}));
    EXPECT_EQ(bot.crd, (std::vector<u32>{0, 1, 0, 1, 4, 2, 5}));
    EXPECT_EQ(t.storedValues(), m.nnz());
}

TEST(Format, CscMatchesTransposedCsr)
{
    auto m = smallMatrix();
    auto csc = HierSparseTensor::build(FormatDescriptor::csc(4, 6), m);
    // Values in CSC order are the values of the transposed matrix in CSR order.
    auto mt = m.transposed();
    auto csr_t = HierSparseTensor::build(FormatDescriptor::csr(6, 4), mt);
    EXPECT_EQ(csc.values(), csr_t.values());
    EXPECT_EQ(csc.toSparseMatrix(), m);
}

TEST(Format, BcsrPadsDenseBlocks)
{
    auto m = smallMatrix();
    auto t = HierSparseTensor::build(FormatDescriptor::bcsr(4, 6, 2, 2), m);
    // Occupied 2x2 blocks: (0,0), (1,2), (1,1), (1,2)... -> (0,0),(1,1),(1,2)
    // block (0,0) holds 4 nnz, blocks (1,1),(1,2) hold the rest with padding.
    EXPECT_EQ(t.storedValues() % 4, 0u);
    EXPECT_GT(t.storedValues(), m.nnz());
    EXPECT_EQ(t.toSparseMatrix(), m);
}

TEST(Format, DenseStoresEveryEntry)
{
    auto m = smallMatrix();
    auto t = HierSparseTensor::build(FormatDescriptor::dense2d(4, 6), m);
    EXPECT_EQ(t.storedValues(), 24u);
    EXPECT_EQ(t.toSparseMatrix(), m);
}

TEST(Format, UcuAndUucRoundTrip)
{
    auto m = smallMatrix();
    auto ucu = HierSparseTensor::build(FormatDescriptor::ucu(4, 6, 2), m);
    EXPECT_EQ(ucu.toSparseMatrix(), m);
    auto uuc = HierSparseTensor::build(FormatDescriptor::uuc(4, 6, 2), m);
    EXPECT_EQ(uuc.toSparseMatrix(), m);
}

TEST(Format, Csf3dRoundTripCounts)
{
    Sparse3Tensor t3(3, 4, 5,
                     {{0, 0, 0, 1.f}, {0, 0, 3, 2.f}, {2, 1, 1, 3.f},
                      {2, 3, 4, 4.f}});
    auto t = HierSparseTensor::build(FormatDescriptor::csf3d(3, 4, 5), t3);
    ASSERT_EQ(t.levels().size(), 3u);
    EXPECT_EQ(t.levels()[0].crd, (std::vector<u32>{0, 2})); // i fibers
    EXPECT_EQ(t.storedValues(), 4u);
    u64 count = 0;
    t.forEachNonzero([&](const std::array<u32, 3>& c, float v) {
        ++count;
        EXPECT_LT(c[0], 3u);
        EXPECT_LT(c[1], 4u);
        EXPECT_LT(c[2], 5u);
        EXPECT_NE(v, 0.0f);
    });
    EXPECT_EQ(count, 4u);
}

TEST(Format, BudgetGuardThrows)
{
    // A huge dense level must trip the storage budget, like the paper
    // dropping pathological schedules.
    SparseMatrix m(100000, 100000, {{0, 0, 1.f}, {99999, 99999, 2.f}});
    EXPECT_THROW(
        HierSparseTensor::build(FormatDescriptor::dense2d(100000, 100000), m,
                                1024 * 1024),
        FormatTooLarge);
}

TEST(Format, ValidationRejectsBadDescriptors)
{
    // Dimension appearing twice as Full.
    EXPECT_THROW(FormatDescriptor(2, {4, 4, 0}, {1, 1, 1},
                                  {{0, LevelPart::Full,
                                    LevelFormat::Uncompressed},
                                   {0, LevelPart::Full,
                                    LevelFormat::Compressed}}),
                 FatalError);
    // Split dimension missing its inner level.
    EXPECT_THROW(FormatDescriptor(2, {4, 4, 0}, {2, 1, 1},
                                  {{0, LevelPart::Outer,
                                    LevelFormat::Uncompressed},
                                   {1, LevelPart::Full,
                                    LevelFormat::Compressed}}),
                 FatalError);
}

/** Property: any mix of level formats/orders/splits round-trips. */
class FormatRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(FormatRoundTrip, RandomDescriptorsPreserveContents)
{
    Rng rng(GetParam());
    // Random 40x28 matrix with ~120 nonzeros.
    std::vector<Triplet> trip;
    for (int n = 0; n < 120; ++n) {
        trip.push_back({static_cast<u32>(rng.index(40)),
                        static_cast<u32>(rng.index(28)),
                        static_cast<float>(rng.uniformInt(1, 9))});
    }
    SparseMatrix m(40, 28, trip);

    // Random splits, level order and formats.
    std::array<u32, 3> splits = {
        static_cast<u32>(1u << rng.uniformInt(0, 3)),
        static_cast<u32>(1u << rng.uniformInt(0, 3)), 1};
    std::vector<LevelSpec> levels;
    for (u32 d = 0; d < 2; ++d) {
        if (splits[d] == 1) {
            levels.push_back({d, LevelPart::Full, LevelFormat::Compressed});
        } else {
            levels.push_back({d, LevelPart::Outer, LevelFormat::Compressed});
            levels.push_back({d, LevelPart::Inner, LevelFormat::Compressed});
        }
    }
    rng.shuffle(levels);
    for (auto& ls : levels) {
        if (rng.bernoulli(0.5))
            ls.fmt = LevelFormat::Uncompressed;
    }
    FormatDescriptor desc(2, {40, 28, 0}, splits, levels);
    auto t = HierSparseTensor::build(desc, m);
    EXPECT_EQ(t.toSparseMatrix(), m) << desc.name();
    EXPECT_GE(t.storedValues(), m.nnz()) << desc.name();
    EXPECT_GT(t.bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatRoundTrip, ::testing::Range<u64>(0, 40));

} // namespace
} // namespace waco
