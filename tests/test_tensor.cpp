/**
 * @file
 * Unit tests for the canonical COO types and CSR conversion.
 */
#include <gtest/gtest.h>

#include "tensor/coo.hpp"
#include "tensor/csr.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

TEST(SparseMatrix, SortsAndDeduplicates)
{
    SparseMatrix m(3, 3,
                   {{2, 1, 1.0f}, {0, 0, 2.0f}, {2, 1, 3.0f}, {1, 2, 4.0f}});
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_EQ(m.rowIndices(), (std::vector<u32>{0, 1, 2}));
    EXPECT_EQ(m.colIndices(), (std::vector<u32>{0, 2, 1}));
    EXPECT_FLOAT_EQ(m.values()[2], 4.0f); // 1 + 3 summed
}

TEST(SparseMatrix, RejectsOutOfBounds)
{
    EXPECT_THROW(SparseMatrix(2, 2, {{2, 0, 1.0f}}), FatalError);
}

TEST(SparseMatrix, DensityAndCounts)
{
    SparseMatrix m(2, 4, {{0, 0, 1.f}, {0, 1, 1.f}, {1, 3, 1.f}});
    EXPECT_DOUBLE_EQ(m.density(), 3.0 / 8.0);
    EXPECT_EQ(m.rowNnz(), (std::vector<u32>{2, 1}));
    EXPECT_EQ(m.colNnz(), (std::vector<u32>{1, 1, 0, 1}));
}

TEST(SparseMatrix, TransposeRoundTrip)
{
    SparseMatrix m(3, 5, {{0, 4, 1.f}, {2, 1, 2.f}, {1, 1, 3.f}});
    SparseMatrix t = m.transposed();
    EXPECT_EQ(t.rows(), 5u);
    EXPECT_EQ(t.cols(), 3u);
    SparseMatrix tt = t.transposed();
    EXPECT_EQ(tt.rowIndices(), m.rowIndices());
    EXPECT_EQ(tt.colIndices(), m.colIndices());
    EXPECT_EQ(tt.values(), m.values());
}

TEST(SparseMatrix, ResizePreservesNnzUpperBound)
{
    Rng rng(7);
    std::vector<Triplet> t;
    for (int n = 0; n < 200; ++n) {
        t.push_back({static_cast<u32>(rng.index(100)),
                     static_cast<u32>(rng.index(100)), 1.0f});
    }
    SparseMatrix m(100, 100, t);
    SparseMatrix r = m.resized(37, 211);
    EXPECT_EQ(r.rows(), 37u);
    EXPECT_EQ(r.cols(), 211u);
    EXPECT_LE(r.nnz(), m.nnz());
    EXPECT_GT(r.nnz(), 0u);
}

TEST(Csr, MatchesCoo)
{
    SparseMatrix m(3, 4, {{0, 1, 1.f}, {0, 3, 2.f}, {2, 0, 3.f}});
    Csr csr(m);
    EXPECT_EQ(csr.rowPtr(), (std::vector<u64>{0, 2, 2, 3}));
    EXPECT_EQ(csr.colIdx(), (std::vector<u32>{1, 3, 0}));
    EXPECT_FLOAT_EQ(csr.values()[2], 3.0f);
}

TEST(Sparse3Tensor, SortsAndDeduplicates)
{
    Sparse3Tensor t(2, 2, 2,
                    {{1, 1, 1, 1.f}, {0, 0, 0, 2.f}, {1, 1, 1, 1.f}});
    EXPECT_EQ(t.nnz(), 2u);
    EXPECT_FLOAT_EQ(t.values()[1], 2.0f);
    EXPECT_EQ(t.iIndices()[0], 0u);
}

} // namespace
} // namespace waco
