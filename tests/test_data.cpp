/**
 * @file
 * Tests for the synthetic pattern generators: each family must actually
 * exhibit the structural property that motivates it, because the whole
 * evaluation leans on pattern-dependent behaviour.
 */
#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "tensor/pattern_stats.hpp"

namespace waco {
namespace {

TEST(Generators, UniformHasLowSkew)
{
    Rng rng(1);
    auto m = genUniform(1000, 1000, 20000, rng);
    auto s = computePatternStats(m);
    EXPECT_LT(s.rowSkew, 0.35);
    EXPECT_NEAR(s.density, 0.02, 0.005);
}

TEST(Generators, PowerLawIsSkewed)
{
    Rng rng(2);
    auto uni = genUniform(2000, 2000, 30000, rng);
    auto pl = genPowerLawRows(2000, 2000, 30000, 1.4, rng);
    EXPECT_GT(computePatternStats(pl).rowSkew,
              computePatternStats(uni).rowSkew + 0.2);
}

TEST(Generators, BandedHasSmallBandwidth)
{
    Rng rng(3);
    auto banded = genBanded(2000, 2000, 8, 0.6, rng);
    auto uni = genUniform(2000, 2000, banded.nnz(), rng);
    EXPECT_LT(computePatternStats(banded).normalizedBandwidth, 0.01);
    EXPECT_GT(computePatternStats(uni).normalizedBandwidth, 0.1);
}

TEST(Generators, BlockDiagonalIsPerfectlyBlocky)
{
    Rng rng(4);
    auto m = genBlockDiagonal(512, 8, rng);
    auto s = computePatternStats(m);
    EXPECT_GT(s.fillForBlock(8), 0.95); // 8x8 blocks fully filled
    EXPECT_GT(s.rowNeighborFrac, 0.8);
}

TEST(Generators, DenseBlocksFillMatchesRequest)
{
    Rng rng(5);
    auto m = genDenseBlocks(1024, 1024, 16, 60, 0.9, rng);
    auto s = computePatternStats(m);
    EXPECT_GT(s.fillForBlock(16), 0.5);
}

TEST(Generators, KroneckerShapeAndSelfSimilarity)
{
    Rng rng(6);
    auto m = genKronecker(10, rng);
    EXPECT_EQ(m.rows(), 1024u);
    auto s = computePatternStats(m);
    EXPECT_GT(s.rowSkew, 0.3); // heavy-tailed degree distribution
}

TEST(Generators, CorpusIsDiverseAndDeterministic)
{
    CorpusOptions opt;
    opt.count = 16;
    opt.minDim = 256;
    opt.maxDim = 1024;
    opt.minNnz = 500;
    opt.maxNnz = 5000;
    auto a = makeCorpus(opt, 77);
    auto b = makeCorpus(opt, 77);
    ASSERT_EQ(a.size(), 16u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "corpus must be seed-deterministic";
        EXPECT_GT(a[i].nnz(), 0u);
    }
    // At least 3 distinct skew levels across families.
    std::set<int> skew_buckets;
    for (const auto& m : a) {
        skew_buckets.insert(
            static_cast<int>(computePatternStats(m).rowSkew * 5));
    }
    EXPECT_GE(skew_buckets.size(), 3u);
}

TEST(Generators, MotivationStandInsHaveDocumentedTraits)
{
    auto tsopf = tsopfLike();
    auto sparsine = sparsineLike();
    auto pli = pliLike();
    auto st = computePatternStats(tsopf);
    auto ss = computePatternStats(sparsine);
    auto sp = computePatternStats(pli);
    // TSOPF: dense blocks; sparsine: scattered (low block fill, low
    // neighbor fraction); pli: in between.
    EXPECT_GT(st.fillForBlock(16), ss.fillForBlock(16) * 4);
    EXPECT_LT(ss.rowNeighborFrac, 0.02);
    EXPECT_GT(sp.nnz, 100000u);
    EXPECT_GT(sparsine.cols(), 60000u); // big enough to stress the LLC
}

TEST(Generators, Tensor3Valid)
{
    Rng rng(7);
    auto t = genTensor3(100, 80, 60, 5000, rng);
    EXPECT_EQ(t.dimI(), 100u);
    EXPECT_GT(t.nnz(), 1000u);
    for (u64 n = 0; n < t.nnz(); ++n) {
        EXPECT_LT(t.iIndices()[n], 100u);
        EXPECT_LT(t.kIndices()[n], 80u);
        EXPECT_LT(t.lIndices()[n], 60u);
    }
}

} // namespace
} // namespace waco
