/**
 * @file
 * Tests for the C emitter and the dataset (de)serialization.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "codegen/emit.hpp"
#include "core/dataset_io.hpp"
#include "data/generators.hpp"
#include "perfmodel/cost_model.hpp"

namespace waco {
namespace {

TEST(Codegen, DefaultSpmmLooksLikeCsr)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 128, 96);
    auto code = emitC(defaultSchedule(shape), shape);
    // CSR: dense i loop, compressed k loop, dense j loop, OpenMP pragma.
    EXPECT_NE(code.find("for (int i = 0; i < 128"), std::string::npos) << code;
    EXPECT_NE(code.find("A1_pos"), std::string::npos) << code;
    EXPECT_NE(code.find("A1_crd"), std::string::npos) << code;
    EXPECT_NE(code.find("for (int j = 0; j < 256"), std::string::npos);
    EXPECT_NE(code.find("schedule(dynamic, 32)"), std::string::npos);
    EXPECT_NE(code.find("C[i * J + j] += A_vals[pA] * B[k * J + j];"),
              std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(code.begin(), code.end(), '{'),
              std::count(code.begin(), code.end(), '}'));
}

TEST(Codegen, SplitEmitsReconstruction)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 64, 64);
    auto s = defaultSchedule(shape);
    s.splits[1] = 8;
    s.sparseLevelOrder = {outerSlot(0), innerSlot(0), outerSlot(1),
                          innerSlot(1)};
    s.sparseLevelFormats = {LevelFormat::Uncompressed, LevelFormat::Compressed,
                            LevelFormat::Compressed,
                            LevelFormat::Uncompressed};
    auto code = emitC(s, shape);
    EXPECT_NE(code.find("int k = k1 * 8 + k0;"), std::string::npos) << code;
    EXPECT_NE(code.find("k0"), std::string::npos);
}

TEST(Codegen, DiscordantOrderIsAnnotated)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 64, 64);
    auto s = defaultSchedule(shape);
    // k before i while A is stored row-major.
    s.loopOrder = {outerSlot(1), innerSlot(1), outerSlot(0), innerSlot(0)};
    auto code = emitC(s, shape);
    EXPECT_NE(code.find("discordant"), std::string::npos) << code;
    EXPECT_NE(code.find("binary search"), std::string::npos) << code;
}

TEST(DatasetIo, ScheduleRoundTrip)
{
    Rng rng(1);
    auto shape = ProblemShape::forMatrix(Algorithm::SDDMM, 512, 256);
    SuperScheduleSpace space(Algorithm::SDDMM, shape);
    for (int n = 0; n < 10; ++n) {
        auto s = space.sample(rng);
        std::stringstream buf;
        writeSchedule(buf, s);
        auto back = readSchedule(buf);
        EXPECT_EQ(back.key(), s.key());
    }
}

TEST(DatasetIo, DatasetRoundTrip)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    CorpusOptions copt;
    copt.count = 3;
    copt.minDim = 128;
    copt.maxDim = 256;
    copt.minNnz = 200;
    copt.maxNnz = 600;
    auto corpus = makeCorpus(copt, 71);
    auto ds = buildDataset(Algorithm::SpMM, corpus, oracle, 6, 72);
    std::string path = ::testing::TempDir() + "/waco_ds.bin";
    saveDataset(ds, path);
    auto back = loadDataset(path);
    ASSERT_EQ(back.entries.size(), ds.entries.size());
    EXPECT_EQ(back.alg, ds.alg);
    EXPECT_EQ(back.trainIds, ds.trainIds);
    EXPECT_EQ(back.valIds, ds.valIds);
    for (std::size_t e = 0; e < ds.entries.size(); ++e) {
        EXPECT_EQ(back.entries[e].matrix, ds.entries[e].matrix);
        ASSERT_EQ(back.entries[e].samples.size(),
                  ds.entries[e].samples.size());
        for (std::size_t x = 0; x < ds.entries[e].samples.size(); ++x) {
            EXPECT_EQ(back.entries[e].samples[x].schedule.key(),
                      ds.entries[e].samples[x].schedule.key());
            EXPECT_DOUBLE_EQ(back.entries[e].samples[x].runtime,
                             ds.entries[e].samples[x].runtime);
        }
    }
    std::remove(path.c_str());
}

TEST(DatasetIo, DatasetRoundTrip3d)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    CorpusOptions copt;
    copt.count = 2;
    copt.minDim = 64;
    copt.maxDim = 128;
    copt.minNnz = 200;
    copt.maxNnz = 500;
    auto corpus = makeCorpus3d(copt, 73);
    auto ds = buildDataset3d(Algorithm::MTTKRP, corpus, oracle, 5, 74);
    std::string path = ::testing::TempDir() + "/waco_ds3.bin";
    saveDataset(ds, path);
    auto back = loadDataset(path);
    ASSERT_EQ(back.entries.size(), ds.entries.size());
    EXPECT_TRUE(back.entries[0].is3d);
    EXPECT_EQ(back.entries[0].tensor.nnz(), ds.entries[0].tensor.nnz());
    std::remove(path.c_str());
}

TEST(DatasetIo, RejectsGarbage)
{
    std::string path = ::testing::TempDir() + "/waco_bad.bin";
    std::ofstream(path) << "this is not a dataset";
    EXPECT_THROW(loadDataset(path), FatalError);
    std::remove(path.c_str());
    EXPECT_THROW(loadDataset("/nonexistent/x.bin"), FatalError);
}

} // namespace
} // namespace waco
