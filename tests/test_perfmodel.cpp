/**
 * @file
 * Behavioural tests of the runtime oracle: the analytical machine model
 * must reproduce the qualitative effects the paper attributes speedups to
 * (Table 6, Figure 14) and be deterministic.
 */
#include <gtest/gtest.h>

#include "perfmodel/cost_model.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

SparseMatrix
uniformRandom(u32 rows, u32 cols, u32 nnz, u64 seed)
{
    Rng rng(seed);
    std::vector<Triplet> t;
    for (u32 n = 0; n < nnz; ++n) {
        t.push_back({static_cast<u32>(rng.index(rows)),
                     static_cast<u32>(rng.index(cols)), 1.0f});
    }
    return SparseMatrix(rows, cols, t);
}

/** Rows with wildly skewed nonzero counts (power-law-ish). */
SparseMatrix
skewedRows(u32 rows, u32 cols, u64 seed)
{
    Rng rng(seed);
    std::vector<Triplet> t;
    for (u32 r = 0; r < rows; ++r) {
        u32 count = r < rows / 50 ? cols / 2 : 2; // 2% heavy rows
        for (u32 n = 0; n < count; ++n) {
            t.push_back({r, static_cast<u32>(rng.index(cols)), 1.0f});
        }
    }
    return SparseMatrix(rows, cols, t);
}

/** Matrix made of fully dense b x b blocks on a block diagonal. */
SparseMatrix
blockDiagonal(u32 rows, u32 b)
{
    std::vector<Triplet> t;
    for (u32 r = 0; r < rows; ++r) {
        u32 blk = r / b;
        for (u32 c = blk * b; c < std::min(rows, (blk + 1) * b); ++c)
            t.push_back({r, c, 1.0f});
    }
    return SparseMatrix(rows, rows, t);
}

class PerfModelTest : public ::testing::Test
{
  protected:
    RuntimeOracle oracle{MachineConfig::intel24()};
};

TEST_F(PerfModelTest, Deterministic)
{
    auto m = uniformRandom(500, 500, 4000, 1);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 500, 500, 32);
    auto s = defaultSchedule(shape);
    auto a = oracle.measure(m, shape, s);
    auto b = oracle.measure(m, shape, s);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_TRUE(a.valid);
    EXPECT_GT(a.seconds, 0.0);
}

TEST_F(PerfModelTest, MoreWorkTakesLonger)
{
    auto small = uniformRandom(400, 400, 2000, 2);
    auto large = uniformRandom(400, 400, 20000, 2);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 400, 400);
    auto s = defaultSchedule(shape);
    EXPECT_LT(oracle.measure(small, shape, s).seconds,
              oracle.measure(large, shape, s).seconds);
}

TEST_F(PerfModelTest, WiderDenseOperandTakesLonger)
{
    auto m = uniformRandom(400, 400, 4000, 3);
    auto s32 = ProblemShape::forMatrix(Algorithm::SpMM, 400, 400, 32);
    auto s256 = ProblemShape::forMatrix(Algorithm::SpMM, 400, 400, 256);
    EXPECT_LT(oracle.measure(m, s32, defaultSchedule(s32)).seconds,
              oracle.measure(m, s256, defaultSchedule(s256)).seconds);
}

TEST_F(PerfModelTest, OversizedFormatIsInvalid)
{
    RuntimeOracle tight(MachineConfig::intel24(), 1024 * 1024);
    SparseMatrix m(60000, 60000, {{0, 0, 1.f}, {59999, 59999, 1.f}});
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 60000, 60000);
    auto s = defaultSchedule(shape);
    // Force a dense format through the level formats.
    for (auto& f : s.sparseLevelFormats)
        f = LevelFormat::Uncompressed;
    auto r = tight.measure(m, shape, s);
    EXPECT_FALSE(r.valid);
    EXPECT_TRUE(std::isinf(r.seconds));
}

TEST_F(PerfModelTest, SimdCliffAtBlockSixteen)
{
    // Figure 14: with the UCU format, icc only vectorizes the inner dense
    // block loop once b >= 16. Crossing the threshold must show a visible
    // per-flop improvement even though the padded work grows.
    auto m = blockDiagonal(4096, 16);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 4096, 4096);
    SuperSchedule s = defaultSchedule(shape);
    s.splits[1] = 8; // UCU with b = 8: below the icc threshold
    s.sparseLevelOrder = {outerSlot(0), outerSlot(1), innerSlot(1),
                          innerSlot(0)};
    s.sparseLevelFormats = {LevelFormat::Uncompressed, LevelFormat::Compressed,
                            LevelFormat::Uncompressed, LevelFormat::Compressed};
    s.loopOrder = {outerSlot(0), innerSlot(0), outerSlot(1), innerSlot(1)};
    auto below = oracle.measure(m, shape, s);
    ASSERT_TRUE(below.valid);
    EXPECT_FALSE(below.simdUsed);

    s.splits[1] = 16;
    auto at = oracle.measure(m, shape, s);
    ASSERT_TRUE(at.valid);
    EXPECT_TRUE(at.simdUsed);
}

TEST_F(PerfModelTest, SkewPrefersSmallChunks)
{
    auto m = skewedRows(4096, 4096, 5);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 4096, 4096, 256);
    auto fine = defaultSchedule(shape, 1);
    auto coarse = defaultSchedule(shape, 256);
    auto mf = oracle.measure(m, shape, fine);
    auto mcm = oracle.measure(m, shape, coarse);
    // Dynamic scheduling with giant chunks on skewed rows loses to fine
    // chunks (Table 6's dominant factor).
    EXPECT_LT(mf.seconds, mcm.seconds);
    EXPECT_GT(mcm.imbalance, mf.imbalance);
}

TEST_F(PerfModelTest, UniformToleratesCoarseChunks)
{
    auto m = uniformRandom(4096, 4096, 80000, 6);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 4096, 4096);
    auto fine = defaultSchedule(shape, 1);
    auto coarse = defaultSchedule(shape, 64);
    // With uniform rows, tiny chunks pay dispatch overhead for nothing.
    EXPECT_GT(oracle.measure(m, shape, fine).seconds,
              oracle.measure(m, shape, coarse).seconds);
}

TEST_F(PerfModelTest, DiscordantLoopOrderIsPenalized)
{
    auto m = uniformRandom(2048, 2048, 40000, 7);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 2048, 2048);
    auto s = defaultSchedule(shape);
    auto concordant = oracle.measure(m, shape, s);
    auto d = s;
    // k before i while A is stored row-major: searches required.
    d.loopOrder = {outerSlot(1), innerSlot(1), outerSlot(0), innerSlot(0)};
    auto discordant = oracle.measure(m, shape, d);
    EXPECT_GT(discordant.seconds, concordant.seconds * 1.5);
}

TEST_F(PerfModelTest, MachinesDisagreeOnOptimalSchedules)
{
    // The same (pattern, schedule) pair gets different times on the two
    // machine presets — the premise of the Table 7 experiment.
    auto m = uniformRandom(1024, 1024, 30000, 8);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 1024, 1024, 64);
    auto s = defaultSchedule(shape);
    RuntimeOracle amd(MachineConfig::amd8());
    EXPECT_NE(oracle.measure(m, shape, s).seconds,
              amd.measure(m, shape, s).seconds);
}

TEST_F(PerfModelTest, ConversionCostGrowsWithNnz)
{
    EXPECT_LT(oracle.conversionSeconds(1000, 1000),
              oracle.conversionSeconds(1000000, 1000000));
}

TEST_F(PerfModelTest, MttkrpMeasurable)
{
    Rng rng(9);
    std::vector<Quad> q;
    for (int n = 0; n < 3000; ++n) {
        q.push_back({static_cast<u32>(rng.index(300)),
                     static_cast<u32>(rng.index(200)),
                     static_cast<u32>(rng.index(100)), 1.0f});
    }
    Sparse3Tensor t(300, 200, 100, q);
    auto shape = ProblemShape::forTensor3(Algorithm::MTTKRP, 300, 200, 100);
    auto r = RuntimeOracle(MachineConfig::intel24())
                 .measure(t, shape, defaultSchedule(shape));
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.seconds, 0.0);
}

} // namespace
} // namespace waco
