/**
 * @file
 * Differential tests for the batched cost-model inference engine:
 *
 *  - blocked vs naive GEMM kernels (exact on integer-valued floats, where
 *    every product and partial sum is representable regardless of
 *    summation order),
 *  - cached-rulebook sparse-conv forward vs the legacy fresh-forward path,
 *  - batched vs scalar generic HNSW search (identical hit sets),
 *  - the float-lane l2 kernel vs the double-precision reference, with a
 *    recall pin,
 *  - the hoisted-feature batched predictor vs the training-path
 *    predictFromEmbeddings.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "annsearch/hnsw.hpp"
#include "ir/schedule.hpp"
#include "model/waco_model.hpp"
#include "nn/sparse_conv.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

using nn::GemmKind;
using nn::Mat;

/** Fill with integer-valued floats in [-4, 4]: exact under any order. */
void
fillInts(Mat& m, Rng& rng)
{
    for (auto& v : m.v)
        v = static_cast<float>(static_cast<int>(rng.index(9)) - 4);
}

TEST(GemmDifferential, BlockedMatchesNaiveExactlyOnIntegerFloats)
{
    Rng rng(11);
    // Shapes straddling every blocking boundary: the 4-row panels, the
    // 8-lane dot product, remainders, and degenerate sizes.
    struct Shape { u32 m, k, n; };
    for (Shape s : {Shape{1, 1, 1}, Shape{3, 5, 7}, Shape{4, 8, 4},
                    Shape{17, 33, 9}, Shape{64, 64, 64}, Shape{130, 70, 50},
                    Shape{2, 200, 3}}) {
        Mat a(s.m, s.k), b(s.k, s.n), bt(s.n, s.k), at(s.k, s.m);
        fillInts(a, rng);
        fillInts(b, rng);
        fillInts(bt, rng);
        fillInts(at, rng);

        Mat c_blocked, c_naive;
        nn::matmul(a, b, c_blocked);
        nn::naive::matmul(a, b, c_naive);
        ASSERT_EQ(c_blocked.v, c_naive.v) << "matmul " << s.m;

        nn::matmulNT(a, bt, c_blocked);
        nn::naive::matmulNT(a, bt, c_naive);
        ASSERT_EQ(c_blocked.v, c_naive.v) << "matmulNT " << s.m;

        nn::matmulTN(at, b, c_blocked);
        nn::naive::matmulTN(at, b, c_naive);
        ASSERT_EQ(c_blocked.v, c_naive.v) << "matmulTN " << s.m;

        Mat acc1(s.m, s.n), acc2(s.m, s.n);
        fillInts(acc1, rng);
        acc2 = acc1;
        nn::matmulAcc(a, b, acc1);
        nn::naive::matmulAcc(a, b, acc2);
        ASSERT_EQ(acc1.v, acc2.v) << "matmulAcc " << s.m;

        Mat acc3(s.m, s.n);
        acc3.zero();
        nn::matmulAccSerial(a, b, acc3);
        Mat ref(s.m, s.n);
        nn::naive::matmulAcc(a, b, ref);
        ASSERT_EQ(acc3.v, ref.v) << "matmulAccSerial " << s.m;
    }
}

TEST(GemmDifferential, GemmKindSwitchRoutesToNaive)
{
    Rng rng(12);
    Mat a(6, 10), b(10, 3);
    for (auto& v : a.v)
        v = static_cast<float>(rng.normal());
    for (auto& v : b.v)
        v = static_cast<float>(rng.normal());
    nn::setGemmKind(GemmKind::Naive);
    Mat c_switched;
    nn::matmul(a, b, c_switched);
    nn::setGemmKind(GemmKind::Blocked);
    Mat c_naive;
    nn::naive::matmul(a, b, c_naive);
    EXPECT_EQ(c_switched.v, c_naive.v);
}

/** Random 2D coordinate cloud without duplicates. */
std::vector<std::array<i32, 3>>
randomCoords(u32 n, i32 extent, Rng& rng)
{
    std::vector<std::array<i32, 3>> coords;
    std::vector<std::vector<bool>> seen(extent,
                                        std::vector<bool>(extent, false));
    while (coords.size() < n) {
        i32 r = static_cast<i32>(rng.index(extent));
        i32 c = static_cast<i32>(rng.index(extent));
        if (seen[r][c])
            continue;
        seen[r][c] = true;
        coords.push_back({r, c, 0});
    }
    return coords;
}

/** Overwrite a layer's params with integer-valued floats. */
void
quantizeParams(std::vector<nn::Param*>& ps, Rng& rng)
{
    for (nn::Param* p : ps)
        for (auto& v : p->w.v)
            v = static_cast<float>(static_cast<int>(rng.index(5)) - 2);
}

TEST(Rulebook, CachedForwardMatchesLegacyFreshForwardExactly)
{
    Rng rng(21);
    for (u32 stride : {1u, 2u}) {
        nn::SparseConv conv(2, 3, stride, 2, 3, rng);
        std::vector<nn::Param*> ps;
        conv.collectParams(ps);
        quantizeParams(ps, rng);

        nn::SparseMap in;
        in.dim = 2;
        in.coords = randomCoords(120, 40, rng);
        in.feats = Mat(in.numSites(), 2);
        fillInts(in.feats, rng);

        // Legacy path: fresh rulebook + the original per-pair saxpy loops.
        nn::setGemmKind(GemmKind::Naive);
        auto legacy = conv.forward(in);
        nn::setGemmKind(GemmKind::Blocked);

        // New path: prebuilt rulebook + gather->GEMM->scatter.
        auto rb = conv.buildRulebook(in.coords);
        auto fast = conv.forward(in, rb);

        ASSERT_EQ(fast.coords, legacy.coords) << "stride " << stride;
        ASSERT_EQ(fast.feats.v, legacy.feats.v) << "stride " << stride;
    }
}

TEST(Rulebook, CacheReturnsIdenticalChainsAndCountsHits)
{
    Rng rng(22);
    std::vector<nn::SparseConv> stack;
    stack.emplace_back(2, 5, 1, 1, 4, rng);
    stack.emplace_back(2, 3, 2, 4, 4, rng);
    stack.emplace_back(2, 3, 2, 4, 4, rng);

    auto coords_a = randomCoords(90, 32, rng);
    auto coords_b = randomCoords(70, 32, rng);

    nn::RulebookCache cache;
    auto snapshot = [](const std::vector<nn::Rulebook>& chain) {
        std::vector<std::vector<std::pair<u32, u32>>> flat;
        for (const auto& rb : chain)
            for (const auto& p : rb.pairs)
                flat.push_back(p);
        return flat;
    };
    auto first_a = snapshot(cache.chain(coords_a, stack));
    auto first_b = snapshot(cache.chain(coords_b, stack));
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 0u);

    // Re-querying either pattern is a hit and returns the same geometry.
    EXPECT_EQ(snapshot(cache.chain(coords_a, stack)), first_a);
    EXPECT_EQ(snapshot(cache.chain(coords_b, stack)), first_b);
    EXPECT_EQ(cache.hits(), 2u);

    // Disabled cache rebuilds fresh chains with identical geometry.
    nn::setRulebookCacheEnabled(false);
    nn::RulebookCache cold;
    EXPECT_EQ(snapshot(cold.chain(coords_a, stack)), first_a);
    EXPECT_EQ(cold.hits(), 0u);
    nn::setRulebookCacheEnabled(true);
}

TEST(HnswBatched, ReturnsIdenticalHitsAndEvalsToScalarSearch)
{
    Rng rng(31);
    const u32 dim = 12, n = 600;
    Hnsw index(dim, 12, 70);
    std::vector<float> buf(dim);
    for (u32 i = 0; i < n; ++i) {
        for (auto& x : buf)
            x = static_cast<float>(rng.normal());
        index.add(buf.data());
    }
    // Deterministic pseudo-random score, same values for both walks.
    auto value = [](u32 id) {
        double x = std::sin(0.37 * id) + std::cos(1.13 * id + 0.5);
        return x * x;
    };
    for (u32 ef : {8u, 32u, 64u}) {
        u64 scalar_evals = 0, batched_evals = 0;
        auto scalar = index.searchGeneric(
            [&](u32 id) { return value(id); }, 10, ef, &scalar_evals);
        auto batched = index.searchGenericBatched(
            [&](const u32* ids, u32 count, double* out) {
                for (u32 i = 0; i < count; ++i)
                    out[i] = value(ids[i]);
            },
            10, ef, &batched_evals);
        ASSERT_EQ(scalar.size(), batched.size()) << "ef " << ef;
        for (std::size_t i = 0; i < scalar.size(); ++i) {
            EXPECT_EQ(scalar[i].id, batched[i].id) << "ef " << ef;
            EXPECT_EQ(scalar[i].dist, batched[i].dist) << "ef " << ef;
        }
        EXPECT_EQ(scalar_evals, batched_evals) << "ef " << ef;
        EXPECT_GT(scalar_evals, 0u);
        EXPECT_LT(scalar_evals, n);
    }
}

TEST(HnswL2, FloatLanesTrackDoubleReferenceAndPinRecall)
{
    Rng rng(32);
    const u32 dim = 37; // odd width exercises the remainder loop
    std::vector<float> a(dim), b(dim);
    for (int trial = 0; trial < 200; ++trial) {
        for (u32 i = 0; i < dim; ++i) {
            a[i] = static_cast<float>(rng.normal());
            b[i] = static_cast<float>(rng.normal());
        }
        double ref = Hnsw::l2Reference(a.data(), b.data(), dim);
        double fast = Hnsw::l2Distance(a.data(), b.data(), dim);
        EXPECT_NEAR(fast, ref, 1e-4 * std::max(1.0, ref));
    }

    // Recall pin: the float-lane index must still recover the
    // double-precision brute-force top-5 at high recall.
    const u32 n = 400, qdim = 16;
    std::vector<std::vector<float>> points(n, std::vector<float>(qdim));
    Hnsw index(qdim, 12, 80);
    for (auto& p : points) {
        for (auto& x : p)
            x = static_cast<float>(rng.normal());
        index.add(p.data());
    }
    u32 hits = 0, total = 0;
    for (int q = 0; q < 25; ++q) {
        std::vector<float> query(qdim);
        for (auto& x : query)
            x = static_cast<float>(rng.normal());
        std::vector<std::pair<double, u32>> bf;
        for (u32 i = 0; i < n; ++i)
            bf.push_back(
                {Hnsw::l2Reference(points[i].data(), query.data(), qdim), i});
        std::sort(bf.begin(), bf.end());
        auto got = index.searchKnn(query.data(), 5, 64);
        for (const auto& hit : got)
            for (int t = 0; t < 5; ++t)
                hits += (bf[t].second == hit.id);
        total += 5;
    }
    EXPECT_GT(static_cast<double>(hits) / total, 0.85);
}

TEST(PredictorBatch, ScoreEmbeddingsMatchesTrainingPathAndBatchSplits)
{
    ExtractorConfig cfg;
    cfg.channels = 8;
    cfg.numLayers = 4;
    cfg.featureDim = 32;
    WacoCostModel model(Algorithm::SpMM, "waconet", cfg, 77);

    Rng rng(33);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 512, 512);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    std::vector<SuperSchedule> batch;
    for (int i = 0; i < 24; ++i)
        batch.push_back(space.sample(rng));

    PatternInput in;
    in.dim = 2;
    in.shape = {64, 64, 0};
    in.coords = randomCoords(50, 64, rng);

    Mat feature = model.extractFeature(in);
    Mat emb = model.programEmbeddings(batch);
    Mat train_path = model.predictFromEmbeddings(feature, emb);

    auto query = model.beginQuery(feature);
    Mat batched = model.scoreEmbeddings(query, emb, nullptr, emb.rows);
    ASSERT_EQ(batched.rows, train_path.rows);
    for (u32 n = 0; n < batched.rows; ++n) {
        EXPECT_NEAR(batched.at(n, 0), train_path.at(n, 0),
                    1e-4 * std::max(1.0f, std::abs(train_path.at(n, 0))));
    }

    // Scoring ids one at a time must be bitwise-identical to one batch —
    // the property that makes batched and scalar graph walks agree.
    for (u32 n = 0; n < emb.rows; ++n) {
        u32 id = n;
        Mat one = model.scoreEmbeddings(query, emb, &id, 1);
        EXPECT_EQ(one.at(0, 0), batched.at(n, 0)) << "row " << n;
    }
}

} // namespace
} // namespace waco
