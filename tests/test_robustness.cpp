/**
 * @file
 * Fault-tolerance tests: seeded fault injection determinism, bounded retry
 * + median-of-k denoising, NaN-safe training with best-checkpoint rollback,
 * resumable corpus labeling (kill + resume == uninterrupted), checksummed
 * dataset files, and tuner fallback when every top-k candidate faults.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/dataset_io.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "perfmodel/faulty_oracle.hpp"
#include "perfmodel/robust_measure.hpp"

namespace waco {
namespace {

ExtractorConfig
tinyConfig()
{
    ExtractorConfig cfg;
    cfg.channels = 8;
    cfg.numLayers = 4;
    cfg.featureDim = 32;
    return cfg;
}

std::vector<SparseMatrix>
smallCorpus(u64 seed, u32 count = 6)
{
    CorpusOptions copt;
    copt.count = count;
    copt.minDim = 128;
    copt.maxDim = 256;
    copt.minNnz = 200;
    copt.maxNnz = 800;
    return makeCorpus(copt, seed);
}

std::string
fileBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeBytes(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** One observed FaultyOracle outcome, comparable across replays. */
struct Observed
{
    bool threw = false;
    bool valid = false;
    double seconds = 0.0;
    std::string reason;

    bool
    operator==(const Observed& o) const
    {
        return threw == o.threw && valid == o.valid &&
               seconds == o.seconds && reason == o.reason;
    }
};

Observed
observe(const MeasurementBackend& b, const SparseMatrix& m,
        const ProblemShape& shape, const SuperSchedule& s)
{
    Observed o;
    try {
        Measurement r = b.measure(m, shape, s);
        o.valid = r.valid;
        o.seconds = r.seconds;
        o.reason = r.invalidReason;
    } catch (const MeasurementError&) {
        o.threw = true;
    }
    return o;
}

TEST(FaultyOracle, SeededFaultSequenceIsDeterministic)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    Rng rng(5);
    auto m = genUniform(128, 128, 600, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 128, 128);
    auto s = defaultSchedule(shape);

    FaultConfig cfg;
    cfg.failProb = 0.3;
    cfg.noiseSigma = 0.2;
    cfg.seed = 99;
    FaultyOracle a(oracle, cfg);
    FaultyOracle b(oracle, cfg);
    cfg.seed = 100;
    FaultyOracle c(oracle, cfg);

    u32 diffs_same_seed = 0, diffs_other_seed = 0, faults = 0;
    for (int i = 0; i < 60; ++i) {
        Observed oa = observe(a, m, shape, s);
        Observed ob = observe(b, m, shape, s);
        Observed oc = observe(c, m, shape, s);
        diffs_same_seed += !(oa == ob);
        diffs_other_seed += !(oa == oc);
        faults += oa.threw || !oa.valid;
    }
    EXPECT_EQ(diffs_same_seed, 0u);  // same seed => identical fault stream
    EXPECT_GT(diffs_other_seed, 0u); // different seed => different stream
    EXPECT_GT(faults, 0u);           // 30% failure rate actually fires
    EXPECT_LT(faults, 60u);          // ... but not always
    EXPECT_EQ(a.stats().calls, 60u);
    EXPECT_EQ(a.stats().faults(), a.stats().thrown + a.stats().invalid);
}

TEST(FaultyOracle, TimeoutBudgetKillsSlowSchedules)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    Rng rng(6);
    auto m = genUniform(128, 128, 600, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 128, 128);
    auto s = defaultSchedule(shape);

    double truth = oracle.measure(m, shape, s).seconds;
    FaultConfig cfg;
    cfg.timeoutSeconds = truth / 2.0; // budget below the true runtime
    FaultyOracle slow(oracle, cfg);
    auto r = slow.measure(m, shape, s);
    EXPECT_FALSE(r.valid);
    EXPECT_EQ(r.invalidReason, "timeout");
    // The reported time is clamped to the budget (the wall clock actually
    // burned before the kill), not +inf: aggregate stats stay finite.
    EXPECT_TRUE(std::isfinite(r.seconds));
    EXPECT_DOUBLE_EQ(r.seconds, cfg.timeoutSeconds);
    EXPECT_EQ(slow.stats().timeouts, 1u);

    cfg.timeoutSeconds = truth * 2.0; // generous budget: passes through
    FaultyOracle fast(oracle, cfg);
    auto ok = fast.measure(m, shape, s);
    EXPECT_TRUE(ok.valid);
    EXPECT_DOUBLE_EQ(ok.seconds, truth);
}

TEST(RobustMeasurer, RetryStatsAndRecovery)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    Rng rng(7);
    auto m = genUniform(128, 128, 600, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 128, 128);
    auto s = defaultSchedule(shape);

    FaultConfig cfg;
    cfg.failProb = 0.5;
    cfg.seed = 17;
    FaultyOracle flaky(oracle, cfg);
    RetryPolicy policy;
    policy.maxAttempts = 6;
    policy.medianOf = 3;
    RobustMeasurer robust(flaky, policy);

    double truth = oracle.measure(m, shape, s).seconds;
    for (int i = 0; i < 10; ++i) {
        auto r = robust.measure(m, shape, s);
        ASSERT_TRUE(r.valid) << "call " << i;
        EXPECT_DOUBLE_EQ(r.seconds, truth); // no noise => exact median
    }
    const auto& st = robust.stats();
    EXPECT_EQ(st.calls, 10u);
    EXPECT_EQ(st.discarded, 0u);
    EXPECT_GE(st.attempts, 30u); // 3 samples per call minimum
    EXPECT_GT(st.retries, 0u);   // 50% failure rate forced retries
    EXPECT_GT(st.faults + st.invalid, 0u);
    EXPECT_GT(st.backoffUnits, 0u);
    EXPECT_EQ(st.attempts, 30u + st.retries); // every extra attempt retried
}

TEST(RobustMeasurer, MedianOfKDenoisesNoisyBackend)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    Rng rng(8);
    auto m = genUniform(128, 128, 600, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 128, 128);
    auto s = defaultSchedule(shape);
    double truth = oracle.measure(m, shape, s).seconds;

    FaultConfig cfg;
    cfg.noiseSigma = 0.5;
    cfg.seed = 23;
    FaultyOracle noisy_raw(oracle, cfg);
    FaultyOracle noisy_for_median(oracle, cfg); // same noise distribution
    RetryPolicy policy;
    policy.medianOf = 5;
    RobustMeasurer denoised(noisy_for_median, policy);

    double raw_err = 0.0, med_err = 0.0;
    constexpr int kTrials = 30;
    for (int i = 0; i < kTrials; ++i) {
        raw_err += std::abs(
            std::log(noisy_raw.measure(m, shape, s).seconds / truth));
        med_err += std::abs(
            std::log(denoised.measure(m, shape, s).seconds / truth));
    }
    // Median-of-5 must shrink the average log error of a sigma=0.5
    // log-normal noise substantially (test is deterministic by seed).
    EXPECT_LT(med_err, raw_err * 0.75);
}

TEST(RobustMeasurer, DiscardsAfterExhaustingRetries)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    Rng rng(9);
    auto m = genUniform(128, 128, 600, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 128, 128);
    auto s = defaultSchedule(shape);

    FaultConfig cfg;
    cfg.failProb = 1.0; // permanently failing backend
    FaultyOracle dead(oracle, cfg);
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.medianOf = 2;
    RobustMeasurer robust(dead, policy);

    auto r = robust.measure(m, shape, s);
    EXPECT_FALSE(r.valid);
    EXPECT_FALSE(r.invalidReason.empty());
    const auto& st = robust.stats();
    EXPECT_EQ(st.discarded, 1u);
    // The first sample exhausts its 3 attempts and the call gives up
    // without burning attempts on the second sample.
    EXPECT_EQ(st.attempts, 3u);
    EXPECT_EQ(st.retries, 2u);
    EXPECT_EQ(st.backoffUnits, 3u); // 1 + 2
}

TEST(RobustMeasurer, JitteredBackoffIsSeededAndBounded)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    Rng rng(10);
    auto m = genUniform(128, 128, 600, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 128, 128);
    auto s = defaultSchedule(shape);

    FaultConfig cfg;
    cfg.failProb = 0.6;
    cfg.seed = 31;
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.medianOf = 2;
    policy.backoffJitter = 0.5;
    policy.backoffSeed = 400;

    auto run = [&](RetryPolicy p) {
        FaultyOracle flaky(oracle, cfg); // fresh fault stream per run
        RobustMeasurer robust(flaky, p);
        for (int i = 0; i < 20; ++i)
            robust.measure(m, shape, s);
        return robust.stats();
    };

    auto a = run(policy);
    auto b = run(policy);
    ASSERT_GT(a.retries, 0u);
    // Same jitter seed => bit-identical accrued backoff; different seed
    // over the identical retry sequence => a different draw.
    EXPECT_DOUBLE_EQ(a.backoffAccrued, b.backoffAccrued);
    RetryPolicy other = policy;
    other.backoffSeed = 401;
    auto c = run(other);
    EXPECT_EQ(a.retries, c.retries); // identical fault/retry sequence
    EXPECT_NE(a.backoffAccrued, c.backoffAccrued);
    // Jitter is bounded: total accrued within +/-50% of the scheduled sum,
    // and never exactly on the unjittered schedule with 50% jitter.
    double scheduled = static_cast<double>(a.backoffUnits);
    EXPECT_GE(a.backoffAccrued, scheduled * 0.5);
    EXPECT_LE(a.backoffAccrued, scheduled * 1.5);
    EXPECT_NE(a.backoffAccrued, scheduled);

    // Jitter off reproduces the exact 1, 2, 4, ... accounting.
    RetryPolicy plain = policy;
    plain.backoffJitter = 0.0;
    auto d = run(plain);
    EXPECT_DOUBLE_EQ(d.backoffAccrued, static_cast<double>(d.backoffUnits));
}

/** Validation loss computed exactly the way trainCostModel computes it. */
double
valLossOf(WacoCostModel& model, const CostDataset& ds, const TrainOptions& opt)
{
    Rng val_rng(opt.seed + 1);
    std::vector<SuperSchedule> schedules;
    std::vector<double> runtimes;
    double loss = 0.0;
    for (u32 id : ds.valIds) {
        const auto& e = ds.entries[id];
        schedules.clear();
        runtimes.clear();
        u32 n = std::min<u32>(opt.batchSchedules,
                              static_cast<u32>(e.samples.size()));
        auto perm = val_rng.permutation(static_cast<u32>(e.samples.size()));
        for (u32 i = 0; i < n; ++i) {
            schedules.push_back(e.samples[perm[i]].schedule);
            runtimes.push_back(e.samples[perm[i]].runtime);
        }
        loss += model.evalLoss(e.pattern, schedules, runtimes, opt.useL2);
    }
    return ds.valIds.empty() ? 0.0 : loss / ds.valIds.size();
}

TEST(Trainer, SkipsNonFiniteStepsAndStaysFinite)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    auto corpus = smallCorpus(41);
    auto ds = buildDataset(Algorithm::SpMV, corpus, oracle, 8, 42);

    // Poison every sample of one *training* entry with +inf runtimes: the
    // L2 log-loss target becomes log(inf), so that entry's loss is
    // non-finite from epoch 0 onward. (NaN would be swallowed by the
    // log-clamp's std::max, whose NaN comparison keeps the clamp value.)
    u32 poisoned = ds.trainIds.front();
    for (auto& s : ds.entries[poisoned].samples)
        s.runtime = std::numeric_limits<double>::infinity();

    WacoCostModel model(Algorithm::SpMV, "waconet", tinyConfig(), 43);
    TrainOptions opt;
    opt.epochs = 4;
    opt.batchSchedules = 8;
    opt.useL2 = true;
    opt.clipNorm = 10.0;
    auto history = trainCostModel(model, ds, opt);

    ASSERT_EQ(history.size(), 4u);
    for (const auto& e : history) {
        EXPECT_EQ(e.skippedSteps, 1u) << "epoch " << e.epoch;
        EXPECT_TRUE(std::isfinite(e.trainLoss));
    }
    EXPECT_TRUE(model.paramsFinite());
    EXPECT_TRUE(std::isfinite(valLossOf(model, ds, opt)));
}

TEST(Trainer, DivergenceRollsBackToBestCheckpoint)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    auto corpus = smallCorpus(51);
    auto ds = buildDataset(Algorithm::SpMV, corpus, oracle, 8, 52);

    // An absurd learning rate makes L2 training blow up after the first
    // epochs; divergence detection must restore the best epoch's weights.
    WacoCostModel model(Algorithm::SpMV, "waconet", tinyConfig(), 53,
                        /*lr=*/0.5);
    TrainOptions opt;
    opt.epochs = 12;
    opt.batchSchedules = 8;
    opt.useL2 = true;
    opt.divergeFactor = 3.0;
    auto history = trainCostModel(model, ds, opt);

    ASSERT_FALSE(history.empty());
    ASSERT_TRUE(history.back().rolledBack)
        << "expected lr=0.5 L2 training to diverge";
    EXPECT_LT(history.size(), 12u); // stopped early
    EXPECT_TRUE(model.paramsFinite());

    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : history) {
        if (!e.rolledBack && std::isfinite(e.valLoss))
            best = std::min(best, e.valLoss);
    }
    // The restored parameters reproduce the best epoch's validation loss.
    EXPECT_NEAR(valLossOf(model, ds, opt), best, 1e-9 + best * 1e-6);
}

TEST(Trainer, RestoreBestRecoversBestEpochParams)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    auto corpus = smallCorpus(61);
    auto ds = buildDataset(Algorithm::SpMV, corpus, oracle, 8, 62);

    WacoCostModel model(Algorithm::SpMV, "waconet", tinyConfig(), 63);
    TrainOptions opt;
    opt.epochs = 6;
    opt.batchSchedules = 8;
    opt.restoreBest = true;
    opt.checkpointPath = ::testing::TempDir() + "/waco_best_ckpt.bin";
    auto history = trainCostModel(model, ds, opt);

    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : history)
        best = std::min(best, e.valLoss);
    EXPECT_NEAR(valLossOf(model, ds, opt), best, 1e-9 + best * 1e-6);
    std::remove(opt.checkpointPath.c_str());
}

/** Backend that dies with a *non-transient* error after a call budget —
 *  simulates the labeling process being killed. */
class KillSwitch : public MeasurementBackend
{
  public:
    KillSwitch(const MeasurementBackend& inner, u64 budget)
        : inner_(inner), budget_(budget)
    {}

    struct Killed
    {};

    Measurement
    measure(const SparseMatrix& m, const ProblemShape& shape,
            const SuperSchedule& s) const override
    {
        if (++calls_ > budget_)
            throw Killed{};
        return inner_.measure(m, shape, s);
    }
    Measurement
    measure(const Sparse3Tensor& t, const ProblemShape& shape,
            const SuperSchedule& s) const override
    {
        if (++calls_ > budget_)
            throw Killed{};
        return inner_.measure(t, shape, s);
    }
    u64 measurementCount() const override { return calls_; }

  private:
    const MeasurementBackend& inner_;
    u64 budget_;
    mutable u64 calls_ = 0;
};

TEST(Dataset, KilledLabelingResumesBitIdentical)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    auto corpus = smallCorpus(71);

    LabelingOptions lopt;
    lopt.schedulesPerMatrix = 8;
    lopt.seed = 72;

    // Ground truth: uninterrupted labeling, no checkpoint file at all.
    auto uninterrupted = buildDatasetResumable(Algorithm::SpMM, corpus,
                                               oracle, lopt);
    std::string ref_path = ::testing::TempDir() + "/waco_ds_ref.bin";
    saveDataset(uninterrupted, ref_path);

    // Interrupted run: the backend dies partway through the corpus; the
    // checkpoint keeps the flushed prefix.
    std::string ckpt = ::testing::TempDir() + "/waco_label_ckpt.bin";
    std::remove(ckpt.c_str());
    lopt.checkpointPath = ckpt;
    lopt.flushEvery = 1;
    KillSwitch dying(oracle, 60); // enough for ~2 matrices, then death
    EXPECT_THROW(
        buildDatasetResumable(Algorithm::SpMM, corpus, dying, lopt),
        KillSwitch::Killed);

    // Resume against the healthy oracle and compare byte-for-byte.
    auto resumed = buildDatasetResumable(Algorithm::SpMM, corpus, oracle,
                                         lopt);
    std::string res_path = ::testing::TempDir() + "/waco_ds_res.bin";
    saveDataset(resumed, res_path);
    EXPECT_EQ(fileBytes(ref_path), fileBytes(res_path));

    // Resuming with a different corpus/options fingerprint fails loudly.
    lopt.seed = 73;
    EXPECT_THROW(
        buildDatasetResumable(Algorithm::SpMM, corpus, oracle, lopt),
        FatalError);

    std::remove(ref_path.c_str());
    std::remove(res_path.c_str());
    std::remove(ckpt.c_str());
}

TEST(DatasetIo, ChecksumFooterDetectsCorruption)
{
    RuntimeOracle oracle(MachineConfig::intel24());
    auto corpus = smallCorpus(81, 3);
    auto ds = buildDataset(Algorithm::SpMV, corpus, oracle, 6, 82);
    std::string path = ::testing::TempDir() + "/waco_ds_corrupt.bin";
    saveDataset(ds, path);
    std::string bytes = fileBytes(path);

    EXPECT_NO_THROW(loadDataset(path)); // intact file loads

    // Truncation.
    writeBytes(path, bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(loadDataset(path), FatalError);

    // Single flipped payload byte.
    std::string flipped = bytes;
    flipped[flipped.size() / 3] ^= 0x40;
    writeBytes(path, flipped);
    EXPECT_THROW(loadDataset(path), FatalError);

    // Trailing garbage after the footer.
    writeBytes(path, bytes + "junk");
    EXPECT_THROW(loadDataset(path), FatalError);

    writeBytes(path, bytes);
    EXPECT_NO_THROW(loadDataset(path));
    std::remove(path.c_str());
}

WacoOptions
smallTunerOptions()
{
    WacoOptions opt;
    opt.extractorConfig = tinyConfig();
    opt.schedulesPerMatrix = 8;
    opt.train.epochs = 3;
    opt.topK = 5;
    opt.efSearch = 20;
    return opt;
}

TEST(WacoTuner, FallsBackToDefaultWhenAllTopKFault)
{
    auto opt = smallTunerOptions();
    WacoTuner tuner(Algorithm::SpMV, MachineConfig::intel24(), opt);
    tuner.train(smallCorpus(91));

    Rng rng(92);
    auto m = genUniform(200, 200, 1200, rng);
    FaultConfig cfg;
    cfg.failProb = 1.0; // remeasurement can never succeed
    FaultyOracle dead(tuner.oracle(), cfg);
    tuner.setMeasurementBackend(dead);

    auto out = tuner.tune(m);
    EXPECT_TRUE(out.fellBack);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 200, 200);
    EXPECT_EQ(out.best.key(), defaultSchedule(shape).key());
    for (const auto& mm : out.topKMeasured)
        EXPECT_FALSE(mm.valid);
    EXPECT_GT(out.remeasureStats.discarded, 0u);
    // The degraded winner is still a *good* schedule on the real oracle.
    auto truth = tuner.oracle().measure(m, shape, out.best);
    EXPECT_TRUE(truth.valid);
}

TEST(WacoTuner, EndToEndTuneSurvivesFaultsWithin2x)
{
    auto opt = smallTunerOptions();
    opt.retry.maxAttempts = 4;
    opt.retry.medianOf = 3;
    WacoTuner tuner(Algorithm::SpMM, MachineConfig::intel24(), opt);
    tuner.train(smallCorpus(101));

    Rng rng(102);
    auto m = genPowerLawRows(256, 256, 2500, 0.8, rng, false);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 256, 256);

    // Fault-free reference tune.
    auto clean = tuner.tune(m);
    ASSERT_TRUE(clean.bestMeasured.valid);
    EXPECT_FALSE(clean.fellBack);
    double clean_truth = tuner.oracle().measure(m, shape, clean.best).seconds;

    // Same tuner, 20% transient failures + 10% noise on every measurement.
    // Three fault seeds: every winner must stay within 2x of the fault-free
    // winner, and across the seeds retries/faults must actually fire (any
    // single 15-call remeasurement pass has a few-percent chance of drawing
    // zero faults; three passes make that astronomically unlikely).
    std::vector<std::unique_ptr<FaultyOracle>> backends;
    u64 total_faults = 0, total_retries = 0, total_calls = 0;
    for (u64 seed : {103, 104, 105}) {
        FaultConfig cfg;
        cfg.failProb = 0.2;
        cfg.noiseSigma = 0.1;
        cfg.seed = seed;
        backends.push_back(
            std::make_unique<FaultyOracle>(tuner.oracle(), cfg));
        tuner.setMeasurementBackend(*backends.back());
        auto noisy = tuner.tune(m);

        auto truth = tuner.oracle().measure(m, shape, noisy.best);
        ASSERT_TRUE(truth.valid) << "seed " << seed;
        EXPECT_LE(truth.seconds, 2.0 * clean_truth) << "seed " << seed;
        total_faults += noisy.remeasureStats.faults +
                        noisy.remeasureStats.invalid +
                        noisy.remeasureStats.timeouts;
        total_retries += noisy.remeasureStats.retries;
        total_calls += backends.back()->stats().calls;
    }
    EXPECT_GT(total_calls, 0u)
        << "tune() did not route through the injected backend";
    EXPECT_GT(total_faults, 0u);
    EXPECT_GT(total_retries, 0u);
}

} // namespace
} // namespace waco
