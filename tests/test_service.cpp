/**
 * @file
 * Tests of the tuning-as-a-service layer: cooperative cancellation,
 * journal torn-write recovery, the persistent result cache, the
 * measurement circuit breaker, admission control / load shedding, the
 * degradation ladder, and a seeded fault-injection soak (ServiceTsan.*,
 * also registered under the tsan ctest label).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "analysis/schedule_verifier.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "perfmodel/faulty_oracle.hpp"
#include "service/circuit_breaker.hpp"
#include "service/journal.hpp"
#include "service/result_cache.hpp"
#include "service/tuner_service.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace waco::service {
namespace {

// ------------------------------------------------------------ shared tuner

WacoOptions
tinyOptions()
{
    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 4;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 8;
    opt.train.epochs = 3;
    opt.train.batchSchedules = 8;
    opt.topK = 4;
    opt.efSearch = 12;
    return opt;
}

/** One trained tuner shared by every service test (training is the
 *  expensive part; the service serializes tuner access anyway). Tests that
 *  swap the measurement backend MUST restore it before returning. */
WacoTuner&
sharedTuner()
{
    static WacoTuner* tuner = [] {
        setLogLevel(LogLevel::Off);
        auto* t =
            new WacoTuner(Algorithm::SpMV, MachineConfig::intel24(),
                          tinyOptions());
        CorpusOptions copt;
        copt.count = 6;
        copt.minDim = 128;
        copt.maxDim = 512;
        copt.minNnz = 500;
        copt.maxNnz = 2000;
        t->train(makeCorpus(copt, 91));
        setLogLevel(LogLevel::Info);
        return t;
    }();
    return *tuner;
}

SparseMatrix
testMatrix(u64 seed)
{
    Rng rng(seed);
    return genUniform(256, 256, 1200, rng);
}

std::string
tmpPath(const std::string& stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

/** A non-Shed response must always carry a parseable, verifier-clean
 *  schedule — the service's "never garbage" contract. */
void
expectValidResponse(const TuneResponse& r, const SparseMatrix& m)
{
    ASSERT_FALSE(r.scheduleKey.empty());
    SuperSchedule s = SuperSchedule::parseKey(r.scheduleKey);
    auto shape =
        ProblemShape::forMatrix(Algorithm::SpMV, m.rows(), m.cols());
    EXPECT_FALSE(analysis::verifySchedule(s, shape).hasErrors())
        << "schedule " << r.scheduleKey << " from rung " << rungName(r.rung);
}

class ServiceTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogLevel(LogLevel::Off); }
    void TearDown() override { setLogLevel(LogLevel::Info); }
};

// ------------------------------------------------------------- CancelToken

TEST(CancelToken, CancelAndDeadlineSemantics)
{
    CancelToken t;
    EXPECT_FALSE(t.stopRequested());
    EXPECT_TRUE(std::isinf(t.remainingSeconds()));

    t.setDeadline(0.0);
    EXPECT_TRUE(t.expired());
    EXPECT_TRUE(t.stopRequested());
    EXPECT_FALSE(t.cancelled()); // deadline expiry is not a client cancel
    EXPECT_LE(t.remainingSeconds(), 0.0);

    t.clearDeadline();
    EXPECT_FALSE(t.stopRequested());

    t.setDeadline(std::numeric_limits<double>::infinity()); // = no deadline
    EXPECT_FALSE(t.expired());

    t.cancel();
    EXPECT_TRUE(t.cancelled());
    EXPECT_TRUE(t.stopRequested());
}

// ----------------------------------------------------------------- Journal

TEST(Journal, RoundTripAndEmptyRecovery)
{
    std::string path = tmpPath("waco_journal_roundtrip.bin");
    std::filesystem::remove(path);

    // Missing file: clean empty recovery.
    JournalRecovery rec = recoverJournal(path);
    EXPECT_TRUE(rec.records.empty());
    EXPECT_EQ(rec.droppedBytes, 0u);

    JournalWriter w;
    w.open(path);
    w.append("alpha");
    w.append(std::string("binary\0payload", 14)); // embedded NUL survives
    w.append("");                                 // empty payload is legal
    w.close();

    rec = recoverJournal(path);
    ASSERT_EQ(rec.records.size(), 3u);
    EXPECT_EQ(rec.records[0], "alpha");
    EXPECT_EQ(rec.records[1], std::string("binary\0payload", 14));
    EXPECT_EQ(rec.records[2], "");
    EXPECT_EQ(rec.droppedBytes, 0u);
    std::filesystem::remove(path);
}

TEST(Journal, TornTailRecoveryAtEveryByteOffset)
{
    // Build a clean 3-record journal and remember each record's end offset.
    std::string base = tmpPath("waco_journal_base.bin");
    std::filesystem::remove(base);
    JournalWriter w;
    w.open(base);
    const std::vector<std::string> payloads = {"alpha", "bravo-bravo", "c"};
    std::vector<u64> ends;
    for (const auto& p : payloads) {
        w.append(p);
        ends.push_back(static_cast<u64>(std::filesystem::file_size(base)));
    }
    w.close();
    std::string bytes;
    {
        std::ifstream in(base, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_EQ(bytes.size(), ends.back());

    // A writer can die at ANY byte offset; recovery must keep exactly the
    // records whose final checksum byte landed, and an append after
    // recovery must extend a clean file.
    std::string path = tmpPath("waco_journal_torn.bin");
    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        std::filesystem::remove(path);
        {
            std::ofstream out(path, std::ios::binary);
            out.write(bytes.data(), static_cast<std::streamsize>(cut));
        }
        std::size_t expect = 0;
        while (expect < ends.size() && ends[expect] <= cut)
            ++expect;

        JournalRecovery rec = recoverJournal(path);
        ASSERT_EQ(rec.records.size(), expect) << "cut at byte " << cut;
        for (std::size_t i = 0; i < expect; ++i)
            EXPECT_EQ(rec.records[i], payloads[i]);
        EXPECT_EQ(rec.validBytes, expect == 0 ? 0 : ends[expect - 1]);
        EXPECT_EQ(rec.droppedBytes, cut - rec.validBytes);

        JournalWriter w2;
        w2.open(path); // truncates the torn tail
        w2.append("appended-after-crash");
        w2.close();
        JournalRecovery after = recoverJournal(path);
        ASSERT_EQ(after.records.size(), expect + 1) << "cut at byte " << cut;
        EXPECT_EQ(after.records.back(), "appended-after-crash");
        EXPECT_EQ(after.droppedBytes, 0u);
    }
    std::filesystem::remove(base);
    std::filesystem::remove(path);
}

TEST(Journal, CorruptMiddleRecordStopsReplay)
{
    std::string path = tmpPath("waco_journal_corrupt.bin");
    std::filesystem::remove(path);
    JournalWriter w;
    w.open(path);
    w.append("first");
    w.append("second");
    w.close();

    // Flip one payload byte of record 2: its checksum no longer closes, so
    // replay keeps record 1 and drops everything from the corruption on
    // (an append-only journal has no way to resync past bad bytes).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    u64 second_start = 8 + 5 + 8;
    f.seekp(static_cast<std::streamoff>(second_start + 8));
    char c = 'X';
    f.write(&c, 1);
    f.close();

    JournalRecovery rec = recoverJournal(path);
    ASSERT_EQ(rec.records.size(), 1u);
    EXPECT_EQ(rec.records[0], "first");
    EXPECT_GT(rec.droppedBytes, 0u);
    std::filesystem::remove(path);
}

// ------------------------------------------------------------- ResultCache

TEST(ResultCache, InMemoryLookupAndOverwrite)
{
    ResultCache cache;
    EXPECT_FALSE(cache.persistent());
    CachedResult out;
    EXPECT_FALSE(cache.lookup(7, Algorithm::SpMV, &out));

    cache.put(7, Algorithm::SpMV, {"key-a", 1.0});
    ASSERT_TRUE(cache.lookup(7, Algorithm::SpMV, &out));
    EXPECT_EQ(out.scheduleKey, "key-a");

    // Same fingerprint, different algorithm: distinct entry.
    EXPECT_FALSE(cache.lookup(7, Algorithm::SpMM, &out));

    cache.put(7, Algorithm::SpMV, {"key-b", 2.0});
    ASSERT_TRUE(cache.lookup(7, Algorithm::SpMV, &out));
    EXPECT_EQ(out.scheduleKey, "key-b");
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, PersistsAcrossReopenWithLastWriterWins)
{
    std::string path = tmpPath("waco_result_cache.bin");
    std::filesystem::remove(path);
    {
        ResultCache cache(path);
        EXPECT_TRUE(cache.persistent());
        cache.put(1, Algorithm::SpMV, {"one", 0.25});
        cache.put(2, Algorithm::SpMV, {"two", 0.5});
        cache.put(1, Algorithm::SpMV, {"one-v2", 0.125}); // re-tuned
    }
    ResultCache cache(path);
    EXPECT_EQ(cache.recoveredRecords(), 3u); // journal keeps every append
    EXPECT_EQ(cache.size(), 2u);             // replay is last-writer-wins
    CachedResult out;
    ASSERT_TRUE(cache.lookup(1, Algorithm::SpMV, &out));
    EXPECT_EQ(out.scheduleKey, "one-v2");
    EXPECT_DOUBLE_EQ(out.seconds, 0.125);
    ASSERT_TRUE(cache.lookup(2, Algorithm::SpMV, &out));
    EXPECT_EQ(out.scheduleKey, "two");
    std::filesystem::remove(path);
}

// ---------------------------------------------------------- CircuitBreaker

TEST(CircuitBreaker, OpensProbesAndCloses)
{
    CircuitBreaker b({/*failureThreshold=*/2, /*probeAfter=*/3});
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_TRUE(b.allowMeasure());

    b.recordFailure();
    EXPECT_EQ(b.state(), BreakerState::Closed); // 1 < threshold
    b.recordSuccess();
    b.recordFailure();
    EXPECT_EQ(b.state(), BreakerState::Closed); // success reset the streak
    b.recordFailure();
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.timesOpened(), 1u);

    // Two degraded requests, then the third is the half-open probe.
    EXPECT_FALSE(b.allowMeasure());
    EXPECT_FALSE(b.allowMeasure());
    EXPECT_TRUE(b.allowMeasure());
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    EXPECT_FALSE(b.allowMeasure()); // probe in flight: still degrade

    b.recordSuccess();
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_EQ(b.timesClosed(), 1u);

    // A failed probe re-opens immediately and restarts the cooldown.
    b.recordFailure();
    b.recordFailure();
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_FALSE(b.allowMeasure());
    EXPECT_FALSE(b.allowMeasure());
    EXPECT_TRUE(b.allowMeasure());
    b.recordFailure();
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.timesOpened(), 3u);
    EXPECT_EQ(b.timesHalfOpened(), 2u);
}

// ----------------------------------------------------- TunerService ladder

TEST_F(ServiceTest, DifferentialMatchesDirectTune)
{
    WacoTuner& tuner = sharedTuner();
    SparseMatrix m = testMatrix(101);
    TuneOutcome direct = tuner.tune(m);

    TunerService service(tuner);
    auto ticket = service.submit(m);
    EXPECT_EQ(ticket->admission(), ServiceStatus::Accepted);
    const TuneResponse& r = ticket->wait();

    // With no faults, no deadline, and a closed breaker the service is a
    // pass-through: bitwise the same winner as calling the tuner directly.
    EXPECT_EQ(r.status, ServiceStatus::Ok);
    EXPECT_EQ(r.rung, DegradationRung::FullSearch);
    EXPECT_TRUE(r.measured);
    EXPECT_EQ(r.scheduleKey, direct.best.key());
    EXPECT_DOUBLE_EQ(r.expectedSeconds, direct.bestMeasured.seconds);
    EXPECT_GT(r.latencySeconds, 0.0);
    expectValidResponse(r, m);
}

TEST_F(ServiceTest, ShedsWhenQueueFull)
{
    WacoTuner& tuner = sharedTuner();
    ServiceConfig cfg;
    cfg.maxQueue = 0; // every cache-missing request sheds, deterministically
    TunerService service(tuner, cfg);
    auto ticket = service.submit(testMatrix(102));
    EXPECT_EQ(ticket->admission(), ServiceStatus::Shed);
    EXPECT_TRUE(ticket->done());
    EXPECT_EQ(ticket->wait().status, ServiceStatus::Shed);
    EXPECT_EQ(ticket->wait().detail, "queue full");
    EXPECT_EQ(service.stats().shed, 1u);
    EXPECT_EQ(service.stats().completed, 0u); // shed != served
}

TEST_F(ServiceTest, ShedsOverTenantInflightCap)
{
    WacoTuner& tuner = sharedTuner();
    ServiceConfig cfg;
    cfg.maxQueue = 16;
    cfg.maxInflightPerTenant = 1;
    TunerService service(tuner, cfg);
    service.pause(); // keep everything queued so counts are deterministic

    auto a = service.submit(testMatrix(103), "tenant-a");
    auto b = service.submit(testMatrix(104), "tenant-a"); // over the cap
    auto c = service.submit(testMatrix(105), "tenant-b"); // other tenant ok
    EXPECT_EQ(a->admission(), ServiceStatus::Accepted);
    EXPECT_EQ(b->admission(), ServiceStatus::Shed);
    EXPECT_EQ(b->wait().detail, "tenant in-flight cap");
    EXPECT_EQ(c->admission(), ServiceStatus::Accepted);
    EXPECT_EQ(service.queueDepth(), 2u);

    service.resume();
    EXPECT_EQ(a->wait().status, ServiceStatus::Ok);
    EXPECT_EQ(c->wait().status, ServiceStatus::Ok);

    // The slot freed: the same tenant is admitted again.
    auto d = service.submit(testMatrix(106), "tenant-a");
    EXPECT_EQ(d->admission(), ServiceStatus::Accepted);
    EXPECT_NE(d->wait().status, ServiceStatus::Shed);
}

TEST_F(ServiceTest, ExpiredDeadlineReturnsTypedDefault)
{
    WacoTuner& tuner = sharedTuner();
    TunerService service(tuner);
    SparseMatrix m = testMatrix(107);
    auto ticket = service.submit(m, "default", /*deadline_seconds=*/0.0);
    const TuneResponse& r = ticket->wait();
    EXPECT_EQ(r.status, ServiceStatus::DeadlineExceeded);
    EXPECT_EQ(r.rung, DegradationRung::DefaultSchedule);
    EXPECT_FALSE(r.measured);
    expectValidResponse(r, m); // the floor answer is still a real schedule
}

TEST_F(ServiceTest, CancelledTicketReturnsTypedDefault)
{
    WacoTuner& tuner = sharedTuner();
    TunerService service(tuner);
    service.pause();
    SparseMatrix m = testMatrix(108);
    auto ticket = service.submit(m);
    ticket->cancel();
    service.resume();
    const TuneResponse& r = ticket->wait();
    EXPECT_EQ(r.status, ServiceStatus::Cancelled);
    EXPECT_EQ(r.rung, DegradationRung::DefaultSchedule);
    expectValidResponse(r, m);
}

TEST_F(ServiceTest, ShutdownDrainsQueueAsCancelled)
{
    WacoTuner& tuner = sharedTuner();
    auto service = std::make_unique<TunerService>(tuner);
    service->pause();
    auto a = service->submit(testMatrix(109));
    auto b = service->submit(testMatrix(110));
    service->shutdown(); // queued work answered, never silently dropped
    EXPECT_EQ(a->wait().status, ServiceStatus::Cancelled);
    EXPECT_EQ(b->wait().detail, "service shutdown");
    auto late = service->submit(testMatrix(111));
    EXPECT_EQ(late->admission(), ServiceStatus::Shed);
    EXPECT_EQ(late->wait().detail, "service shutting down");
}

/**
 * Deterministic mid-tune cancellation: fire the stop predicate at exactly
 * the k-th checkpoint for every k until a run completes unstopped. Every
 * stop point must yield either a typed CancelledError (no candidate
 * existed yet) or a degraded-but-valid outcome — never garbage.
 */
TEST_F(ServiceTest, CancellationAtEveryCheckpointDegradesCleanly)
{
    WacoTuner& tuner = sharedTuner();
    SparseMatrix m = testMatrix(112);
    TuneOutcome clean = tuner.tune(m);
    auto shape =
        ProblemShape::forMatrix(Algorithm::SpMV, m.rows(), m.cols());

    u32 degraded_outcomes = 0;
    u32 cancelled_throws = 0;
    for (u64 k = 0;; ++k) {
        u64 checkpoint = 0;
        bool fired = false;
        TuneControl ctl;
        ctl.stopHook = [&] {
            if (checkpoint++ >= k) {
                fired = true;
                return true;
            }
            return false;
        };
        try {
            TuneOutcome out = tuner.tune(m, ctl);
            if (!fired) {
                // The hook never fired: this run IS the uncontrolled
                // protocol and must reproduce it bitwise.
                EXPECT_EQ(out.best.key(), clean.best.key());
                EXPECT_DOUBLE_EQ(out.bestMeasured.seconds,
                                 clean.bestMeasured.seconds);
                break;
            }
            EXPECT_TRUE(out.truncated || out.modelOnly || out.fellBack)
                << "stopped at checkpoint " << k
                << " but outcome claims the full protocol ran";
            EXPECT_FALSE(
                analysis::verifySchedule(out.best, shape).hasErrors())
                << "checkpoint " << k;
            ++degraded_outcomes;
        } catch (const CancelledError&) {
            ++cancelled_throws; // pre-candidate stop: typed, not garbage
        }
        ASSERT_LT(k, 10000u) << "stop hook never stopped firing";
    }
    EXPECT_GT(cancelled_throws, 0u);  // early checkpoints exist
    EXPECT_GT(degraded_outcomes, 2u); // and so do mid-search/measure ones
}

TEST_F(ServiceTest, BreakerOpensDegradesToModelOnlyAndHeals)
{
    WacoTuner& tuner = sharedTuner();
    FaultConfig fc;
    fc.failProb = 1.0; // the backend is dead: every measurement fails
    fc.seed = 313;
    FaultyOracle dead(tuner.oracle(), fc);
    tuner.setMeasurementBackend(dead);

    ServiceConfig cfg;
    cfg.breaker.failureThreshold = 2;
    cfg.breaker.probeAfter = 2;
    TunerService service(tuner, cfg);
    auto ask = [&](u64 seed) -> TuneResponse {
        return service.submit(testMatrix(seed))->wait();
    };

    // Two all-measurements-failed tunes trip the breaker. Each one still
    // answers with the default-schedule rung, not an error.
    for (u64 s : {200u, 201u}) {
        TuneResponse r = ask(s);
        EXPECT_EQ(r.status, ServiceStatus::Degraded);
        EXPECT_EQ(r.rung, DegradationRung::DefaultSchedule);
    }
    EXPECT_EQ(service.breaker().state(), BreakerState::Open);

    // While open: model-only ranking, zero backend traffic.
    u64 count_before = dead.measurementCount();
    TuneResponse r = ask(202);
    EXPECT_EQ(r.status, ServiceStatus::Degraded);
    EXPECT_EQ(r.rung, DegradationRung::ModelOnly);
    EXPECT_FALSE(r.measured);
    EXPECT_EQ(dead.measurementCount(), count_before);

    // The next request is the half-open probe; the backend is still dead,
    // so it fails and the breaker re-opens.
    r = ask(203);
    EXPECT_EQ(r.rung, DegradationRung::DefaultSchedule);
    EXPECT_EQ(service.breaker().state(), BreakerState::Open);

    // Heal the backend; one degraded request, then a healthy probe closes.
    tuner.setMeasurementBackend(tuner.oracle());
    r = ask(204);
    EXPECT_EQ(r.rung, DegradationRung::ModelOnly);
    r = ask(205);
    EXPECT_EQ(r.status, ServiceStatus::Ok);
    EXPECT_EQ(r.rung, DegradationRung::FullSearch);
    EXPECT_EQ(service.breaker().state(), BreakerState::Closed);

    // Fully recovered: requests measure again.
    r = ask(206);
    EXPECT_EQ(r.status, ServiceStatus::Ok);
    EXPECT_TRUE(r.measured);
    EXPECT_GE(service.breaker().timesOpened(), 2u);
    EXPECT_EQ(service.breaker().timesClosed(), 1u);
}

TEST_F(ServiceTest, CacheHitSkipsSearchAndMeasurement)
{
    WacoTuner& tuner = sharedTuner();
    TunerService service(tuner);
    SparseMatrix m = testMatrix(120);

    auto first = service.submit(m)->wait();
    ASSERT_EQ(first.status, ServiceStatus::Ok);
    ASSERT_EQ(first.rung, DegradationRung::FullSearch);

    u64 count_before = tuner.backend().measurementCount();
    metrics::setEnabled(true); // metric counters gate on the runtime switch
    u64 hits_before =
        metrics::MetricsRegistry::instance().counters()["service.cache.hits"];
    auto ticket = service.submit(m);
    EXPECT_EQ(ticket->admission(), ServiceStatus::Ok); // done inside submit
    auto second = ticket->wait();
    EXPECT_EQ(second.status, ServiceStatus::Ok);
    EXPECT_EQ(second.rung, DegradationRung::CacheHit);
    EXPECT_EQ(second.scheduleKey, first.scheduleKey);
    EXPECT_DOUBLE_EQ(second.expectedSeconds, first.expectedSeconds);
    EXPECT_EQ(tuner.backend().measurementCount(), count_before);
    EXPECT_GE(metrics::MetricsRegistry::instance()
                  .counters()["service.cache.hits"],
              hits_before + 1);
    metrics::setEnabled(false);
    EXPECT_EQ(service.stats().cacheHits, 1u);

    // A different pattern does not hit.
    auto third = service.submit(testMatrix(121))->wait();
    EXPECT_EQ(third.rung, DegradationRung::FullSearch);
}

TEST_F(ServiceTest, KillAndRestartRecoversCacheFromTornJournal)
{
    WacoTuner& tuner = sharedTuner();
    std::string path = tmpPath("waco_service_journal.bin");
    std::filesystem::remove(path);
    SparseMatrix m = testMatrix(130);
    std::string first_key;
    {
        ServiceConfig cfg;
        cfg.cacheJournalPath = path;
        TunerService service(tuner, cfg);
        auto r = service.submit(m)->wait();
        ASSERT_EQ(r.status, ServiceStatus::Ok);
        first_key = r.scheduleKey;
    } // "crash": the service dies with the journal on disk

    // Simulate a torn final append: garbage bytes after the good records.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.write("torn-write-garbage", 18);
    }

    ServiceConfig cfg;
    cfg.cacheJournalPath = path;
    TunerService service(tuner, cfg);
    EXPECT_GE(service.cache().recoveredRecords(), 1u);
    EXPECT_GT(service.cache().droppedBytes(), 0u);

    u64 count_before = tuner.backend().measurementCount();
    auto r = service.submit(m)->wait();
    EXPECT_EQ(r.status, ServiceStatus::Ok);
    EXPECT_EQ(r.rung, DegradationRung::CacheHit);
    EXPECT_EQ(r.scheduleKey, first_key);
    EXPECT_EQ(tuner.backend().measurementCount(), count_before)
        << "a recovered cache hit must not re-measure";
    EXPECT_GE(service.stats().cacheHits, 1u);
    std::filesystem::remove(path);
}

// ------------------------------------------------------------ soak (tsan)

/**
 * Seeded fault-injection soak, also registered under the `tsan` ctest
 * label: 4 client threads x 60 requests against a flaky backend with
 * random deadlines and random client cancellations. The service must
 * answer every request with a typed status and a verifier-clean schedule —
 * zero Failed, zero garbage.
 */
TEST(ServiceTsan, ConcurrentSoakUnderFaultsAndCancellations)
{
    setLogLevel(LogLevel::Off);
    WacoTuner& tuner = sharedTuner();
    FaultConfig fc;
    fc.failProb = 0.15;
    fc.noiseSigma = 0.1;
    fc.seed = 777;
    FaultyOracle flaky(tuner.oracle(), fc);
    tuner.setMeasurementBackend(flaky);

    ServiceConfig cfg;
    cfg.maxQueue = 2; // small on purpose: shedding is part of the soak
    cfg.maxInflightPerTenant = 8;
    cfg.breaker.failureThreshold = 3;
    cfg.breaker.probeAfter = 2;
    auto service = std::make_unique<TunerService>(tuner, cfg);

    constexpr u32 kThreads = 4;
    constexpr u32 kPerThread = 60;
    std::vector<SparseMatrix> pool;
    for (u64 s = 0; s < 6; ++s)
        pool.push_back(testMatrix(500 + s));
    const double deadlines[] = {
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity(), 0.05, 0.002, 0.0};

    struct Answer
    {
        TuneResponse response;
        u32 matrix;
    };
    std::vector<std::vector<Answer>> answers(kThreads);
    std::vector<std::thread> clients;
    for (u32 c = 0; c < kThreads; ++c) {
        clients.emplace_back([&, c] {
            Rng rng(9000 + c);
            std::string tenant = "tenant-" + std::to_string(c % 2);
            for (u32 i = 0; i < kPerThread; ++i) {
                u32 mi = static_cast<u32>(rng.uniformInt(0, 5));
                double dl = deadlines[rng.uniformInt(0, 4)];
                TicketPtr t = service->submit(pool[mi], tenant, dl);
                if (rng.bernoulli(0.15))
                    t->cancel();
                answers[c].push_back({t->wait(), mi});
            }
        });
    }
    for (auto& c : clients)
        c.join();

    u64 total = 0, failed = 0, shed = 0;
    for (u32 c = 0; c < kThreads; ++c) {
        for (const Answer& a : answers[c]) {
            ++total;
            const TuneResponse& r = a.response;
            if (r.status == ServiceStatus::Failed)
                ++failed;
            if (r.status == ServiceStatus::Shed) {
                ++shed;
                continue;
            }
            // Typed, and never garbage: every served response carries a
            // parseable, verifier-clean schedule.
            EXPECT_TRUE(r.status == ServiceStatus::Ok ||
                        r.status == ServiceStatus::Degraded ||
                        r.status == ServiceStatus::Cancelled ||
                        r.status == ServiceStatus::DeadlineExceeded)
                << serviceStatusName(r.status);
            expectValidResponse(r, pool[a.matrix]);
        }
    }
    EXPECT_EQ(total, u64{kThreads} * kPerThread);
    EXPECT_GE(total, 200u);
    EXPECT_EQ(failed, 0u);

    ServiceStats stats = service->stats();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.completed + stats.shed, stats.submitted);
    EXPECT_EQ(stats.shed, shed);
    u64 rung_total = 0;
    for (u32 r = 0; r < 4; ++r)
        rung_total += stats.rungCounts[r];
    EXPECT_EQ(rung_total, stats.completed);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_FALSE(stats.toJson().empty());

    service.reset(); // join the worker before restoring the backend
    tuner.setMeasurementBackend(tuner.oracle());
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace waco::service
