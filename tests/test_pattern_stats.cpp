/**
 * @file
 * Pattern-statistics tests: the features feeding HumanFeature, BestFormat
 * and the machine model must be correct on hand-checkable patterns.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/pattern_stats.hpp"

namespace waco {
namespace {

TEST(PatternStats, DiagonalMatrix)
{
    std::vector<Triplet> t;
    for (u32 i = 0; i < 16; ++i)
        t.push_back({i, i, 1.0f});
    auto s = computePatternStats(SparseMatrix(16, 16, t));
    EXPECT_EQ(s.nnz, 16u);
    EXPECT_DOUBLE_EQ(s.nnzPerRowMean, 1.0);
    EXPECT_DOUBLE_EQ(s.nnzPerRowStd, 0.0);
    EXPECT_DOUBLE_EQ(s.rowSkew, 0.0);
    EXPECT_DOUBLE_EQ(s.normalizedBandwidth, 0.0);
    EXPECT_DOUBLE_EQ(s.symmetryFrac, 1.0);
    EXPECT_DOUBLE_EQ(s.rowNeighborFrac, 0.0);
    // Each 2x2 block holds exactly one diagonal nonzero.
    EXPECT_EQ(s.blockFills[0].occupiedBlocks, 8u);
    EXPECT_DOUBLE_EQ(s.blockFills[0].fill, 16.0 / (8 * 4));
}

TEST(PatternStats, FullyDenseBlock)
{
    std::vector<Triplet> t;
    for (u32 i = 0; i < 8; ++i)
        for (u32 j = 0; j < 8; ++j)
            t.push_back({i, j, 1.0f});
    auto s = computePatternStats(SparseMatrix(8, 8, t));
    EXPECT_DOUBLE_EQ(s.density, 1.0);
    EXPECT_DOUBLE_EQ(s.fillForBlock(2), 1.0);
    EXPECT_DOUBLE_EQ(s.fillForBlock(8), 1.0);
    EXPECT_DOUBLE_EQ(s.symmetryFrac, 1.0);
    // All interior nonzeros have right/below neighbors: 7/8 of columns.
    EXPECT_DOUBLE_EQ(s.rowNeighborFrac, 7.0 / 8.0);
}

TEST(PatternStats, EmptyRowsAndSkew)
{
    // One dense row, many empty ones.
    std::vector<Triplet> t;
    for (u32 j = 0; j < 32; ++j)
        t.push_back({0, j, 1.0f});
    auto s = computePatternStats(SparseMatrix(16, 32, t));
    EXPECT_DOUBLE_EQ(s.emptyRowFrac, 15.0 / 16.0);
    EXPECT_GT(s.rowSkew, 0.9);
    EXPECT_EQ(s.nnzPerRowMax, 32u);
}

TEST(PatternStats, AsymmetricPattern)
{
    SparseMatrix m(4, 4, {{0, 3, 1.f}, {1, 2, 1.f}});
    auto s = computePatternStats(m);
    EXPECT_DOUBLE_EQ(s.symmetryFrac, 0.0);
    EXPECT_GT(s.normalizedBandwidth, 0.0);
}

TEST(PatternStats, FeatureVectorShape)
{
    SparseMatrix m(4, 4, {{0, 0, 1.f}});
    auto s = computePatternStats(m);
    auto f = s.toFeatureVector();
    auto names = PatternStats::featureNames();
    EXPECT_EQ(f.size(), names.size());
    for (float v : f)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(PatternStats, FillForBlockInterpolatesToNearest)
{
    std::vector<Triplet> t;
    for (u32 i = 0; i < 4; ++i)
        for (u32 j = 0; j < 4; ++j)
            t.push_back({i, j, 1.0f});
    auto s = computePatternStats(SparseMatrix(64, 64, t));
    // One fully dense 4x4 block.
    EXPECT_DOUBLE_EQ(s.fillForBlock(4), 1.0);
    // Requesting b=6 falls back to the nearest measured size (4).
    EXPECT_DOUBLE_EQ(s.fillForBlock(6), 1.0);
    EXPECT_EQ(s.occupiedBlocksFor(4), 1u);
}

} // namespace
} // namespace waco
