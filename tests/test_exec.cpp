/**
 * @file
 * Correctness of the execution engine: format-generic kernels must agree
 * with the dense references for every format a sampled SuperSchedule can
 * describe, and the fast CSR/CSF kernels must agree under any parallel
 * configuration.
 */
#include <gtest/gtest.h>

#include "exec/kernels.hpp"
#include "exec/reference.hpp"
#include "ir/schedule.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

SparseMatrix
randomMatrix(u32 rows, u32 cols, u32 nnz, Rng& rng)
{
    std::vector<Triplet> t;
    for (u32 n = 0; n < nnz; ++n) {
        t.push_back({static_cast<u32>(rng.index(rows)),
                     static_cast<u32>(rng.index(cols)),
                     static_cast<float>(rng.uniformInt(1, 5))});
    }
    return SparseMatrix(rows, cols, t);
}

TEST(ExecReference, TinySpmvByHand)
{
    SparseMatrix a(2, 3, {{0, 0, 1.f}, {0, 2, 2.f}, {1, 1, 3.f}});
    DenseVector b(3);
    b[0] = 1.f; b[1] = 2.f; b[2] = 3.f;
    auto c = spmvReference(a, b);
    EXPECT_FLOAT_EQ(c[0], 7.f);
    EXPECT_FLOAT_EQ(c[1], 6.f);
}

TEST(ExecHier, SpmvMatchesReferenceOnStandardFormats)
{
    Rng rng(11);
    auto m = randomMatrix(50, 40, 150, rng);
    DenseVector b(40);
    b.randomize(rng);
    auto want = spmvReference(m, b);
    for (const auto& desc :
         {FormatDescriptor::csr(50, 40), FormatDescriptor::csc(50, 40),
          FormatDescriptor::bcsr(50, 40, 4, 4),
          FormatDescriptor::ucu(50, 40, 8), FormatDescriptor::uuc(50, 40, 8),
          FormatDescriptor::dense2d(50, 40),
          FormatDescriptor::coo2d(50, 40)}) {
        auto t = HierSparseTensor::build(desc, m);
        auto got = spmvHier(t, b);
        EXPECT_LT(maxAbsDiff(want, got), 1e-4) << desc.name();
    }
}

TEST(ExecCsr, ParallelConfigsAgree)
{
    Rng rng(13);
    auto m = randomMatrix(80, 70, 400, rng);
    Csr csr(m);
    DenseVector b(70);
    b.randomize(rng);
    auto serial = spmvCsr(csr, b);
    for (u32 threads : {2u, 4u}) {
        for (u32 chunk : {1u, 8u, 256u}) {
            auto par = spmvCsr(csr, b, {threads, chunk});
            EXPECT_LT(maxAbsDiff(serial, par), 1e-5);
        }
    }
    DenseMatrix bm(70, 8);
    bm.randomize(rng);
    auto smm = spmmCsr(csr, bm);
    auto pmm = spmmCsr(csr, bm, {4, 16});
    EXPECT_LT(maxAbsDiff(smm, pmm), 1e-5);
    EXPECT_LT(maxAbsDiff(smm, spmmReference(m, bm)), 1e-4);
}

TEST(ExecCsr, SddmmMatchesReference)
{
    Rng rng(17);
    auto m = randomMatrix(30, 25, 90, rng);
    DenseMatrix b(30, 12);
    DenseMatrix c(12, 25, Layout::ColMajor);
    b.randomize(rng);
    c.randomize(rng);
    auto want = sddmmReference(m, b, c);
    auto got = sddmmCsr(m, b, c, {3, 4});
    ASSERT_EQ(want.nnz(), got.nnz());
    for (u64 n = 0; n < want.nnz(); ++n)
        EXPECT_NEAR(want.values()[n], got.values()[n], 1e-3);
}

TEST(ExecCsf, MttkrpMatchesReference)
{
    Rng rng(19);
    std::vector<Quad> q;
    for (int n = 0; n < 200; ++n) {
        q.push_back({static_cast<u32>(rng.index(20)),
                     static_cast<u32>(rng.index(15)),
                     static_cast<u32>(rng.index(10)),
                     static_cast<float>(rng.uniformInt(1, 4))});
    }
    Sparse3Tensor t(20, 15, 10, q);
    DenseMatrix b(15, 8), c(10, 8);
    b.randomize(rng);
    c.randomize(rng);
    auto want = mttkrpReference(t, b, c);
    EXPECT_LT(maxAbsDiff(want, mttkrpCsf(t, b, c, {2, 4})), 1e-3);
    auto csf = HierSparseTensor::build(FormatDescriptor::csf3d(20, 15, 10), t);
    EXPECT_LT(maxAbsDiff(want, mttkrpHier(csf, b, c)), 1e-3);
}

/**
 * Property: for any sampled SuperSchedule, building its format and running
 * the format-generic kernel reproduces the reference result. This is the
 * end-to-end guarantee that the whole search space is executable.
 */
class ScheduleExecution : public ::testing::TestWithParam<u64> {};

TEST_P(ScheduleExecution, SpmmCorrectUnderSampledFormats)
{
    Rng rng(GetParam() * 7919 + 3);
    auto m = randomMatrix(48, 36, 140, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 48, 36, 8);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    DenseMatrix b(36, 8);
    b.randomize(rng);
    auto want = spmmReference(m, b);
    for (int n = 0; n < 6; ++n) {
        auto s = space.sample(rng);
        HierSparseTensor t = [&] {
            try {
                return HierSparseTensor::build(formatOf(s, shape), m);
            } catch (const FormatTooLarge&) {
                return HierSparseTensor::build(
                    FormatDescriptor::csr(48, 36), m);
            }
        }();
        auto got = spmmHier(t, b);
        EXPECT_LT(maxAbsDiff(want, got), 1e-3) << s.key();
    }
}

TEST_P(ScheduleExecution, SddmmCorrectUnderSampledFormats)
{
    Rng rng(GetParam() * 104729 + 11);
    auto m = randomMatrix(32, 40, 100, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SDDMM, 32, 40, 8);
    SuperScheduleSpace space(Algorithm::SDDMM, shape);
    DenseMatrix b(32, 8);
    DenseMatrix c(8, 40, Layout::ColMajor);
    b.randomize(rng);
    c.randomize(rng);
    auto want = sddmmReference(m, b, c);
    for (int n = 0; n < 4; ++n) {
        auto s = space.sample(rng);
        HierSparseTensor t = [&] {
            try {
                return HierSparseTensor::build(formatOf(s, shape), m);
            } catch (const FormatTooLarge&) {
                return HierSparseTensor::build(
                    FormatDescriptor::csr(32, 40), m);
            }
        }();
        auto got = sddmmHier(t, b, c);
        ASSERT_EQ(got.nnz(), want.nnz()) << s.key();
        for (u64 e = 0; e < want.nnz(); ++e)
            EXPECT_NEAR(want.values()[e], got.values()[e], 1e-3) << s.key();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleExecution,
                         ::testing::Range<u64>(0, 10));

TEST(ExecMeasure, MedianWallClockIsPositive)
{
    Rng rng(23);
    auto m = randomMatrix(64, 64, 300, rng);
    auto t = HierSparseTensor::build(FormatDescriptor::csr(64, 64), m);
    double sec = measureHierKernel(Algorithm::SpMV, t, 0, 3);
    EXPECT_GT(sec, 0.0);
    EXPECT_LT(sec, 1.0);
}

} // namespace
} // namespace waco
