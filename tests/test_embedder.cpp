/**
 * @file
 * Program-embedder tests: sensitivity to every SuperSchedule parameter
 * group, batching consistency, and a numerical gradient check through the
 * full embedder.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "model/program_embedder.hpp"

namespace waco {
namespace {

double
rowDiff(const nn::Mat& e, u32 a, u32 b)
{
    double d = 0.0;
    for (u32 c = 0; c < e.cols; ++c)
        d += std::abs(static_cast<double>(e.at(a, c)) - e.at(b, c));
    return d;
}

TEST(ProgramEmbedder, SensitiveToEveryParameterGroup)
{
    Rng rng(1);
    ProgramEmbedder emb(Algorithm::SpMM, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 256, 256);
    auto base = defaultSchedule(shape);

    auto chunk = base;
    chunk.ompChunk = 128;
    auto threads = base;
    threads.numThreads = 24;
    auto split = base;
    split.splits[0] = 16;
    auto loop = base;
    std::swap(loop.loopOrder[0], loop.loopOrder[2]);
    auto fmt = base;
    fmt.sparseLevelFormats[0] = LevelFormat::Compressed;
    auto lvl = base;
    std::swap(lvl.sparseLevelOrder[0], lvl.sparseLevelOrder[2]);

    auto e = emb.forward({base, chunk, threads, split, loop, fmt, lvl});
    for (u32 v = 1; v < e.rows; ++v)
        EXPECT_GT(rowDiff(e, 0, v), 1e-6) << "variant " << v;
}

TEST(ProgramEmbedder, BatchingMatchesSingle)
{
    Rng rng(2);
    ProgramEmbedder emb(Algorithm::SpMV, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 128, 128);
    SuperScheduleSpace space(Algorithm::SpMV, shape);
    Rng srng(3);
    auto a = space.sample(srng);
    auto b = space.sample(srng);
    auto batch = emb.forward({a, b});
    auto ea = emb.forward({a});
    auto eb = emb.forward({b});
    for (u32 c = 0; c < batch.cols; ++c) {
        EXPECT_FLOAT_EQ(batch.at(0, c), ea.at(0, c));
        EXPECT_FLOAT_EQ(batch.at(1, c), eb.at(0, c));
    }
}

TEST(ProgramEmbedder, GradientCheck)
{
    Rng rng(4);
    ProgramEmbedder emb(Algorithm::SpMV, rng);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 64, 64);
    SuperScheduleSpace space(Algorithm::SpMV, shape);
    Rng srng(5);
    std::vector<SuperSchedule> batch = {space.sample(srng),
                                        space.sample(srng)};
    std::vector<nn::Param*> params;
    emb.collectParams(params);

    auto run = [&]() {
        auto y = emb.forward(batch);
        double loss = 0.0;
        for (auto v : y.v)
            loss += 0.5 * v * v;
        emb.backward(y);
        return loss;
    };

    // Check a lookup table and the head MLP's first weight matrix.
    for (nn::Param* p : {params.front(), params.back()}) {
        p->zeroGrad();
        run();
        nn::Mat analytic = p->g;
        const float eps = 1e-3f;
        int checked = 0;
        for (std::size_t i = 0; i < p->w.v.size() && checked < 8; ++i) {
            if (analytic.v[i] == 0.0f)
                continue; // untouched table rows have no gradient
            ++checked;
            float saved = p->w.v[i];
            p->w.v[i] = saved + eps;
            p->zeroGrad();
            double up = run();
            p->w.v[i] = saved - eps;
            p->zeroGrad();
            double down = run();
            p->w.v[i] = saved;
            double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(analytic.v[i], numeric,
                        2e-2 * std::max(1.0, std::abs(numeric)));
        }
        EXPECT_GT(checked, 0);
    }
}

TEST(ProgramEmbedder, WorksForAllAlgorithms)
{
    for (Algorithm alg : allAlgorithms()) {
        Rng rng(6);
        ProgramEmbedder emb(alg, rng);
        ProblemShape shape = algorithmInfo(alg).sparseOrder == 3
            ? ProblemShape::forTensor3(alg, 32, 32, 32)
            : ProblemShape::forMatrix(alg, 64, 64);
        auto e = emb.forward({defaultSchedule(shape)});
        EXPECT_EQ(e.rows, 1u);
        EXPECT_EQ(e.cols, emb.outDim());
        for (float v : e.v)
            EXPECT_TRUE(std::isfinite(v));
    }
}

} // namespace
} // namespace waco
