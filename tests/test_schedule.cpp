/**
 * @file
 * Tests for the SuperSchedule template: sampling validity, degeneration of
 * split-1 slots, format derivation, concordance, and the default schedules.
 */
#include <gtest/gtest.h>

#include "analysis/schedule_verifier.hpp"
#include "ir/schedule.hpp"

namespace waco {
namespace {

TEST(Algorithm, StaticDescriptions)
{
    const auto& spmm = algorithmInfo(Algorithm::SpMM);
    EXPECT_EQ(spmm.numIndices, 3u);
    EXPECT_EQ(spmm.sparseOrder, 2u);
    EXPECT_TRUE(spmm.isReduction[1]); // k
    EXPECT_EQ(spmm.denseExtent[2], 256u);

    const auto& sddmm = algorithmInfo(Algorithm::SDDMM);
    EXPECT_FALSE(sddmm.isReduction[0]);
    EXPECT_FALSE(sddmm.isReduction[1]); // j parallelizable (Section 5.2.1)
    EXPECT_TRUE(sddmm.isReduction[2]);

    const auto& mttkrp = algorithmInfo(Algorithm::MTTKRP);
    EXPECT_EQ(mttkrp.sparseOrder, 3u);
    EXPECT_EQ(mttkrp.denseExtent[3], 16u);

    const auto& fused = algorithmInfo(Algorithm::FusedSDDMMSpMM);
    EXPECT_EQ(fused.numIndices, 4u);
    EXPECT_EQ(fused.sparseOrder, 2u);
    EXPECT_TRUE(fused.isReduction[1]);  // j: reduced into E
    EXPECT_TRUE(fused.isReduction[2]);  // k: reduced into the workspace
    EXPECT_FALSE(fused.isReduction[3]); // m
    EXPECT_TRUE(fused.usesWorkspace);
    EXPECT_EQ(fused.workspaceIndex, 1u); // w is indexed by j
    EXPECT_TRUE(fused.scopeIndex[0]);    // workspace private per row i
    EXPECT_FALSE(fused.scopeIndex[1]);
    EXPECT_TRUE(fused.producerIndex[2]); // producer reduces over k
    EXPECT_FALSE(fused.producerIndex[3]);
    EXPECT_TRUE(fused.consumerIndex[3]); // consumer expands along m
    EXPECT_FALSE(fused.consumerIndex[2]);

    // Single-expression kernels never declare a workspace.
    for (Algorithm alg :
         {Algorithm::SpMV, Algorithm::SpMM, Algorithm::SDDMM,
          Algorithm::MTTKRP}) {
        EXPECT_FALSE(algorithmInfo(alg).usesWorkspace)
            << algorithmName(alg);
    }

    // Name round trip (the tune_cli --alg surface).
    for (Algorithm alg : allAlgorithms()) {
        Algorithm back;
        EXPECT_TRUE(algorithmFromName(algorithmName(alg), back));
        EXPECT_EQ(back, alg);
    }
    Algorithm fused_alg;
    EXPECT_TRUE(algorithmFromName("fused_sddmm_spmm", fused_alg));
    EXPECT_EQ(fused_alg, Algorithm::FusedSDDMMSpMM);
    EXPECT_FALSE(algorithmFromName("no_such_kernel", fused_alg));
}

TEST(SuperSchedule, DefaultIsCsrConcordant)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 100, 80);
    auto s = defaultSchedule(shape);
    EXPECT_EQ(s.ompChunk, 32u);
    EXPECT_DOUBLE_EQ(concordance(s), 1.0);
    auto fmt = formatOf(s, shape);
    EXPECT_EQ(fmt, FormatDescriptor::csr(100, 80));
}

TEST(SuperSchedule, DefaultSpmvChunkIs128)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 100, 80);
    EXPECT_EQ(defaultSchedule(shape).ompChunk, 128u);
}

TEST(SuperSchedule, DefaultMttkrpIsCsf)
{
    auto shape = ProblemShape::forTensor3(Algorithm::MTTKRP, 10, 20, 30);
    auto s = defaultSchedule(shape);
    EXPECT_EQ(formatOf(s, shape), FormatDescriptor::csf3d(10, 20, 30));
}

TEST(SuperSchedule, SplitOneDegenerates)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 64, 64);
    auto s = defaultSchedule(shape);
    EXPECT_EQ(s.loopOrder.size(), 4u);       // i1 i0 k1 k0 in the template
    EXPECT_EQ(activeLoopOrder(s).size(), 2u); // i, k after degeneration
}

TEST(SuperSchedule, SplitRestoresBcsrFormat)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 64, 64);
    auto s = defaultSchedule(shape);
    s.splits[0] = 4;
    s.splits[1] = 8;
    s.sparseLevelOrder = {outerSlot(0), outerSlot(1), innerSlot(0),
                          innerSlot(1)};
    s.sparseLevelFormats = {LevelFormat::Uncompressed, LevelFormat::Compressed,
                            LevelFormat::Uncompressed,
                            LevelFormat::Uncompressed};
    EXPECT_EQ(formatOf(s, shape), FormatDescriptor::bcsr(64, 64, 4, 8));
}

TEST(SuperSchedule, ConcordanceDetectsInvertedLoops)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 64, 64);
    auto s = defaultSchedule(shape);
    // Reverse the loop order: k before i while A is stored i-major.
    std::reverse(s.loopOrder.begin(), s.loopOrder.end());
    EXPECT_LT(concordance(s), 1.0);
}

TEST(SuperSchedule, KeyDistinguishesParameters)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 64, 64);
    auto a = defaultSchedule(shape);
    auto b = a;
    EXPECT_EQ(a.key(), b.key());
    b.ompChunk = 64;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.sparseLevelFormats[3] = LevelFormat::Uncompressed;
    EXPECT_NE(a.key(), b.key());
}

TEST(SuperSchedule, ValidateRejectsParallelReduction)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 64, 64);
    auto s = defaultSchedule(shape);
    s.parallelSlot = outerSlot(1); // k is the reduction index of SpMM
    // The diagnostics API names the exact violation...
    auto diags = analysis::verifySchedule(s, shape);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(analysis::DiagCode::S009_ParallelReduction));
    // ...and the legacy throwing wrapper still rejects.
    EXPECT_THROW(validateSchedule(s, shape), FatalError);
}

TEST(SuperScheduleSpace, TableThreeParameterRanges)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 100000, 100000);
    SuperScheduleSpace space(Algorithm::SpMV, shape);
    // split in [1, 32768] powers of two
    EXPECT_EQ(space.splitOptions(0).front(), 1u);
    EXPECT_EQ(space.splitOptions(0).back(), 32768u);
    // threads in {24, 48}; chunk in [1, 256] powers of two
    EXPECT_EQ(space.threadOptions(), (std::vector<u32>{24, 48}));
    EXPECT_EQ(space.chunkOptions().back(), 256u);
    // parallelizable: i1 and i0 only (k is a reduction)
    EXPECT_EQ(space.parallelOptions(),
              (std::vector<u32>{outerSlot(0), innerSlot(0)}));
    EXPECT_GT(space.log10Size(), 6.0); // an enormous space
}

class SampledSchedules
    : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(SampledSchedules, AlwaysValid)
{
    Algorithm alg = static_cast<Algorithm>(std::get<0>(GetParam()));
    Rng rng(std::get<1>(GetParam()));
    ProblemShape shape = algorithmInfo(alg).sparseOrder == 3
        ? ProblemShape::forTensor3(alg, 50, 40, 30)
        : ProblemShape::forMatrix(alg, 120, 90);
    SuperScheduleSpace space(alg, shape);
    for (int n = 0; n < 25; ++n) {
        auto s = space.sample(rng);
        EXPECT_FALSE(analysis::verifySchedule(s, shape).hasErrors())
            << s.key();
        auto mutated = space.mutate(s, rng);
        EXPECT_FALSE(analysis::verifySchedule(mutated, shape).hasErrors())
            << mutated.key();
        // The format half must always be constructible as a descriptor.
        EXPECT_NO_THROW(formatOf(s, shape)) << s.key();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SampledSchedules,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1u, 2u, 3u)));

} // namespace
} // namespace waco
