/**
 * @file
 * Tests of the static-analysis subsystem (src/analysis): the diagnostics
 * engine, the SuperSchedule verifier, the LoopNest verifier + race-hazard
 * pass, canonicalization, and the tuner's verifier-driven pruning.
 *
 * The core harness is a mutation-fuzz differential: schedules sampled from
 * SuperScheduleSpace are corrupted one field-class at a time, and
 *
 *  - every error-class corruption must be REJECTED with its expected
 *    stable diagnostic code (>= 95% rejection asserted; it is 100%);
 *  - every schedule the verifier ACCEPTS (clean samples and warning-class
 *    mutants) must lower and execute bit-identically to the dense COO
 *    reference — zero false accepts, with the same integer-valued-input
 *    trick as test_loopnest.cpp.
 *
 * LoopNest invariants are fuzzed from the other side: valid nests from
 * lower() are disassembled, corrupted via LoopNest::fromRaw, and each
 * corruption class must surface its WACO-L/R code.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>

#include "analysis/diagnostics.hpp"
#include "analysis/loopnest_verifier.hpp"
#include "analysis/schedule_verifier.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "exec/loopnest_exec.hpp"
#include "exec/reference.hpp"
#include "ir/loopnest.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

using analysis::DiagCode;
using analysis::DiagnosticBag;
using analysis::Severity;

// ---------------------------------------------------------------------------
// Diagnostics engine
// ---------------------------------------------------------------------------

TEST(Diagnostics, StableCodeNames)
{
    EXPECT_EQ(analysis::diagCodeName(DiagCode::S001_LoopOrderSize),
              "WACO-S001");
    EXPECT_EQ(analysis::diagCodeName(DiagCode::S009_ParallelReduction),
              "WACO-S009");
    EXPECT_EQ(analysis::diagCodeName(DiagCode::S103_ParallelDegenerate),
              "WACO-S103");
    EXPECT_EQ(analysis::diagCodeName(DiagCode::S203_StridedVectorAccess),
              "WACO-S203");
    EXPECT_EQ(analysis::diagCodeName(DiagCode::L001_SlotBoundTwice),
              "WACO-L001");
    EXPECT_EQ(analysis::diagCodeName(DiagCode::L010_LevelSlotMismatch),
              "WACO-L010");
    EXPECT_EQ(analysis::diagCodeName(DiagCode::R001_ParallelReductionRace),
              "WACO-R001");
    EXPECT_EQ(analysis::diagCodeName(DiagCode::R003_ParallelChunkZero),
              "WACO-R003");
}

TEST(Diagnostics, SeverityByNamespace)
{
    EXPECT_EQ(analysis::diagSeverity(DiagCode::S009_ParallelReduction),
              Severity::Error);
    EXPECT_EQ(analysis::diagSeverity(DiagCode::S101_SplitNotPow2),
              Severity::Warning);
    EXPECT_EQ(analysis::diagSeverity(DiagCode::S201_DiscordantBinarySearch),
              Severity::PerfNote);
    EXPECT_EQ(analysis::diagSeverity(DiagCode::L005_LocateSlotUnbound),
              Severity::Error);
    EXPECT_EQ(analysis::diagSeverity(DiagCode::R001_ParallelReductionRace),
              Severity::Error);
    EXPECT_EQ(analysis::diagSeverity(DiagCode::R002_NestedParallelIgnored),
              Severity::Warning);
    EXPECT_EQ(analysis::severityName(Severity::PerfNote), "perf-note");
}

TEST(Diagnostics, BagCountsFormatAndMerge)
{
    DiagnosticBag bag;
    EXPECT_TRUE(bag.empty());
    EXPECT_FALSE(bag.hasErrors());
    EXPECT_EQ(bag.firstError(), nullptr);

    bag.add(DiagCode::S009_ParallelReduction, "reduction parallelized", 1);
    bag.add(DiagCode::S101_SplitNotPow2, "odd split", 0);
    bag.add(DiagCode::S201_DiscordantBinarySearch, "slow locate", 1, 1);

    EXPECT_EQ(bag.size(), 3u);
    EXPECT_EQ(bag.errorCount(), 1u);
    EXPECT_EQ(bag.warningCount(), 1u);
    EXPECT_EQ(bag.noteCount(), 1u);
    EXPECT_TRUE(bag.hasErrors());
    EXPECT_TRUE(bag.has(DiagCode::S101_SplitNotPow2));
    EXPECT_FALSE(bag.has(DiagCode::S010_SplitZero));
    ASSERT_NE(bag.firstError(), nullptr);
    EXPECT_EQ(bag.firstError()->code, DiagCode::S009_ParallelReduction);

    std::string text = bag.format();
    EXPECT_NE(text.find("WACO-S009"), std::string::npos);
    EXPECT_NE(text.find("error"), std::string::npos);
    EXPECT_NE(text.find("reduction parallelized"), std::string::npos);

    DiagnosticBag other;
    other.add(DiagCode::L003_LevelUnresolved, "level dropped", -1, 0);
    bag.merge(other);
    EXPECT_EQ(bag.size(), 4u);
    EXPECT_EQ(bag.errorCount(), 2u);
}

TEST(Diagnostics, ThrowIfErrors)
{
    DiagnosticBag clean;
    clean.add(DiagCode::S101_SplitNotPow2, "warning only");
    EXPECT_NO_THROW(clean.throwIfErrors("ctx"));

    DiagnosticBag bad;
    bad.add(DiagCode::S010_SplitZero, "split is 0", 2);
    try {
        bad.throwIfErrors("myContext");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("myContext"), std::string::npos);
        EXPECT_NE(msg.find("WACO-S010"), std::string::npos);
    }
}

TEST(Diagnostics, JsonExportAndFile)
{
    DiagnosticBag bag;
    bag.add(DiagCode::S014_AlgorithmMismatch, "quote \" slash \\ nl \n end");
    bag.add(DiagCode::S102_SplitExceedsExtent, "big split", 0);

    std::string json = bag.exportJson();
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
    EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
    EXPECT_NE(json.find("\"code\":\"WACO-S014\""), std::string::npos);
    EXPECT_NE(json.find("\\\""), std::string::npos);
    EXPECT_NE(json.find("\\\\"), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    // Raw control characters must not survive into the JSON text.
    EXPECT_EQ(json.find('\n'), std::string::npos);

    const std::string path = "test_analysis_diag_out.json";
    analysis::writeDiagnosticsJson(bag, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), json);
    in.close();
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Schedule mutation fuzz
// ---------------------------------------------------------------------------

/** One corruption class: mutates a sampled schedule and names the stable
 *  diagnostic code the verifier must answer with. */
struct Mutation
{
    const char* name;
    DiagCode expect;
    bool isError; ///< Error-class (must reject) vs warning-class (accept).
    /** Returns false when the mutation does not apply to this algorithm. */
    std::function<bool(SuperSchedule&, Rng&)> apply;
};

std::vector<Mutation>
errorMutations(Algorithm alg)
{
    const AlgorithmInfo& info = algorithmInfo(alg);
    const u32 ni = info.numIndices;
    std::vector<Mutation> out = {
        {"truncate-loop-order", DiagCode::S001_LoopOrderSize, true,
         [](SuperSchedule& s, Rng&) {
             s.loopOrder.pop_back();
             return true;
         }},
        {"slot-out-of-range", DiagCode::S002_SlotOutOfRange, true,
         [ni](SuperSchedule& s, Rng& rng) {
             s.loopOrder[rng.index(s.loopOrder.size())] = 2 * ni + 5;
             return true;
         }},
        {"duplicate-slot", DiagCode::S003_DuplicateSlot, true,
         [](SuperSchedule& s, Rng&) {
             s.loopOrder[0] = s.loopOrder[1];
             return true;
         }},
        {"truncate-level-order", DiagCode::S004_LevelOrderSize, true,
         [](SuperSchedule& s, Rng&) {
             s.sparseLevelOrder.pop_back();
             s.sparseLevelFormats.pop_back();
             return true;
         }},
        {"dense-index-in-level-order", DiagCode::S005_LevelOrderDenseIndex,
         true,
         [&info, ni](SuperSchedule& s, Rng&) {
             for (u32 idx = 0; idx < ni; ++idx) {
                 if (info.sparseDim[idx] < 0) {
                     s.sparseLevelOrder[0] = outerSlot(idx);
                     return true;
                 }
             }
             return false; // SpMV: every index is sparse
         }},
        {"duplicate-level-slot", DiagCode::S006_LevelOrderDuplicate, true,
         [](SuperSchedule& s, Rng&) {
             s.sparseLevelOrder[0] = s.sparseLevelOrder[1];
             return true;
         }},
        {"format-count-mismatch", DiagCode::S007_LevelFormatMisaligned, true,
         [](SuperSchedule& s, Rng&) {
             s.sparseLevelFormats.pop_back();
             return true;
         }},
        {"parallel-slot-out-of-range", DiagCode::S008_ParallelSlotRange, true,
         [ni](SuperSchedule& s, Rng&) {
             s.parallelSlot = 2 * ni + 3;
             return true;
         }},
        {"parallel-reduction", DiagCode::S009_ParallelReduction, true,
         [&info, ni](SuperSchedule& s, Rng&) {
             for (u32 idx = 0; idx < ni; ++idx) {
                 if (info.isReduction[idx]) {
                     s.parallelSlot = outerSlot(idx);
                     return true;
                 }
             }
             return false;
         }},
        {"split-zero", DiagCode::S010_SplitZero, true,
         [ni](SuperSchedule& s, Rng& rng) {
             s.splits[rng.index(ni)] = 0;
             return true;
         }},
        {"layout-count-mismatch", DiagCode::S012_DenseLayoutMisaligned, true,
         [](SuperSchedule& s, Rng&) {
             s.denseRowMajor.push_back(true);
             return true;
         }},
    };
    return out;
}

std::vector<Mutation>
warningMutations(Algorithm alg)
{
    const AlgorithmInfo& info = algorithmInfo(alg);
    const u32 ni = info.numIndices;
    std::vector<Mutation> out = {
        {"split-non-pow2", DiagCode::S101_SplitNotPow2, false,
         [](SuperSchedule& s, Rng&) {
             s.splits[0] = 3;
             return true;
         }},
        {"split-exceeds-extent", DiagCode::S102_SplitExceedsExtent, false,
         [](SuperSchedule& s, Rng&) {
             s.splits[0] = 1u << 20; // both formatOf and lower clamp it
             return true;
         }},
        {"parallel-degenerate", DiagCode::S103_ParallelDegenerate, false,
         [&info, ni](SuperSchedule& s, Rng&) {
             for (u32 idx = 0; idx < ni; ++idx) {
                 if (!info.isReduction[idx]) {
                     s.splits[idx] = 1;
                     s.parallelSlot = innerSlot(idx);
                     return true;
                 }
             }
             return false;
         }},
    };
    return out;
}

SparseMatrix
intMatrix(u32 rows, u32 cols, u32 nnz, Rng& rng)
{
    std::vector<Triplet> t;
    for (u32 n = 0; n < nnz; ++n) {
        t.push_back({static_cast<u32>(rng.index(rows)),
                     static_cast<u32>(rng.index(cols)),
                     static_cast<float>(rng.uniformInt(1, 4))});
    }
    return SparseMatrix(rows, cols, t);
}

void
fillInt(DenseMatrix& m, Rng& rng)
{
    for (auto& x : m.data())
        x = static_cast<float>(rng.uniformInt(1, 3));
}

/**
 * The differential core: corrupted SpMM schedules either get rejected with
 * the expected stable code, or — when accepted — must execute bit-identical
 * to the dense reference. Integer-valued operands make float accumulation
 * exact in any order, so the comparison demands equality.
 */
TEST(AnalysisMutationFuzz, SpmmDifferential)
{
    Rng rng(515);
    const u32 rows = 48, cols = 40, J = 8;
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, rows, cols, J);
    SuperScheduleSpace space(Algorithm::SpMM, shape);
    auto m = intMatrix(rows, cols, 400, rng);
    DenseMatrix b(cols, J);
    fillInt(b, rng);
    DenseMatrix want = spmmReference(m, b);

    auto errs = errorMutations(Algorithm::SpMM);
    auto warns = warningMutations(Algorithm::SpMM);

    u32 illegal_total = 0, illegal_rejected = 0, accepted_executed = 0;
    const u32 rounds_per_mutation = 4;
    auto run_one = [&](const Mutation& mu) {
        SuperSchedule v = space.sample(rng);
        if (!mu.apply(v, rng))
            return;
        if (mu.isError)
            ++illegal_total;
        auto diags = analysis::verifySchedule(v, shape);
        if (diags.hasErrors()) {
            EXPECT_TRUE(mu.isError)
                << mu.name << " is warning-class but was rejected:\n"
                << diags.format();
            EXPECT_TRUE(diags.has(mu.expect))
                << mu.name << " rejected without its stable code:\n"
                << diags.format();
            if (mu.isError)
                ++illegal_rejected;
            return;
        }
        // Accepted: the verifier claims this schedule is legal. Prove it by
        // execution — any mis-execution here is a false accept.
        EXPECT_FALSE(mu.isError)
            << "FALSE ACCEPT of " << mu.name << ": " << v.key();
        if (mu.isError)
            return;
        EXPECT_TRUE(diags.has(mu.expect))
            << mu.name << " accepted without its warning code:\n"
            << diags.format();
        std::optional<HierSparseTensor> t;
        try {
            t = HierSparseTensor::build(formatOf(v, shape), m);
        } catch (const FormatTooLarge&) {
            return;
        }
        LoopNest nest = lower(v, shape);
        auto nest_diags = analysis::verifyLoopNest(nest);
        EXPECT_FALSE(nest_diags.hasErrors()) << nest_diags.format();
        LoopNestArgs args;
        args.a = &*t;
        args.matB = &b;
        ParallelConfig par = (accepted_executed % 2) ? ParallelConfig{4, 7}
                                                     : ParallelConfig{1, 128};
        auto got = executeLoopNest(nest, args, par);
        EXPECT_EQ(0.0, maxAbsDiff(want, got.mat)) << v.key();
        ++accepted_executed;
    };
    for (u32 round = 0; round < rounds_per_mutation; ++round) {
        for (const Mutation& mu : errs)
            run_one(mu);
        for (const Mutation& mu : warns)
            run_one(mu);
    }
    // Also feed unmutated samples through the accept path.
    for (u32 n = 0; n < 8; ++n) {
        Mutation identity{"identity", DiagCode::S001_LoopOrderSize, false,
                          [](SuperSchedule&, Rng&) { return true; }};
        SuperSchedule v = space.sample(rng);
        auto diags = analysis::verifySchedule(v, shape);
        EXPECT_FALSE(diags.hasErrors())
            << "sampled schedule rejected: " << v.key() << "\n"
            << diags.format();
    }

    ASSERT_GT(illegal_total, 0u);
    // The acceptance bar is >= 95%; the verifier actually rejects 100%.
    EXPECT_GE(illegal_rejected * 100, illegal_total * 95)
        << illegal_rejected << "/" << illegal_total
        << " illegal mutants rejected";
    EXPECT_GT(accepted_executed, 0u)
        << "no accepted mutant reached the execution differential";
}

/** Error-class mutants must carry their stable code on every algorithm. */
TEST(AnalysisMutationFuzz, AllAlgorithmsRejectWithStableCodes)
{
    struct Case
    {
        Algorithm alg;
        ProblemShape shape;
    };
    std::vector<Case> cases = {
        {Algorithm::SpMV, ProblemShape::forMatrix(Algorithm::SpMV, 48, 40)},
        {Algorithm::SpMM,
         ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8)},
        {Algorithm::SDDMM,
         ProblemShape::forMatrix(Algorithm::SDDMM, 48, 40, 6)},
        {Algorithm::MTTKRP,
         ProblemShape::forTensor3(Algorithm::MTTKRP, 16, 12, 10, 8)},
    };
    for (const auto& c : cases) {
        Rng rng(700 + static_cast<u64>(c.alg));
        SuperScheduleSpace space(c.alg, c.shape);
        u32 total = 0, rejected = 0;
        for (const Mutation& mu : errorMutations(c.alg)) {
            for (u32 round = 0; round < 3; ++round) {
                SuperSchedule v = space.sample(rng);
                if (!mu.apply(v, rng))
                    continue;
                ++total;
                auto diags = analysis::verifySchedule(v, c.shape);
                if (diags.hasErrors())
                    ++rejected;
                EXPECT_TRUE(diags.has(mu.expect))
                    << algorithmName(c.alg) << " " << mu.name << ":\n"
                    << diags.format();
            }
        }
        ASSERT_GT(total, 0u);
        EXPECT_GE(rejected * 100, total * 95) << algorithmName(c.alg);
    }
}

// ---------------------------------------------------------------------------
// Targeted schedule checks not reachable by field mutation
// ---------------------------------------------------------------------------

TEST(ScheduleVerifier, DefaultSchedulesHaveNoErrors)
{
    std::vector<ProblemShape> shapes = {
        ProblemShape::forMatrix(Algorithm::SpMV, 100, 80),
        ProblemShape::forMatrix(Algorithm::SpMM, 100, 80, 16),
        ProblemShape::forMatrix(Algorithm::SDDMM, 100, 80, 16),
        ProblemShape::forTensor3(Algorithm::MTTKRP, 30, 20, 10, 8),
    };
    for (const auto& shape : shapes) {
        auto diags = analysis::verifySchedule(defaultSchedule(shape), shape);
        EXPECT_FALSE(diags.hasErrors()) << diags.format();
    }
}

TEST(ScheduleVerifier, ZeroExtentShapeIsS011)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8);
    auto s = defaultSchedule(shape);
    shape.indexExtent[0] = 0;
    auto diags = analysis::verifySchedule(s, shape);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::S011_ShapeExtentZero));
}

TEST(ScheduleVerifier, AlgorithmShapeMismatchIsS014)
{
    auto spmv = ProblemShape::forMatrix(Algorithm::SpMV, 48, 40);
    auto spmm = ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8);
    auto diags = analysis::verifySchedule(defaultSchedule(spmv), spmm);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::S014_AlgorithmMismatch));
}

TEST(ScheduleVerifier, StructureOnlyOverloadSkipsShapeChecks)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 48, 40);
    auto s = defaultSchedule(shape);
    s.splits[0] = 1u << 20; // would be S102 against this shape
    auto diags = analysis::verifySchedule(s);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_FALSE(diags.has(DiagCode::S102_SplitExceedsExtent));
    EXPECT_TRUE(
        analysis::verifySchedule(s, shape).has(
            DiagCode::S102_SplitExceedsExtent));
}

TEST(ScheduleVerifier, RandomInsertCapabilityIsS013)
{
    // No shipped kernel random-inserts (requiredAccess is empty for all
    // five), so the capability check is exercised with a synthetic
    // requirement, the way a future scatter-style kernel would state it.
    for (Algorithm alg : allAlgorithms()) {
        auto req = analysis::requiredAccess(alg);
        EXPECT_FALSE(req.randomInsert);
        EXPECT_FALSE(req.locate);
    }

    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 48, 40);
    auto csr = defaultSchedule(shape); // U row level, C column level
    analysis::AccessRequirements need_insert;
    need_insert.randomInsert = true;

    DiagnosticBag bag;
    analysis::checkAccessCapabilities(csr, need_insert, bag);
    EXPECT_TRUE(bag.hasErrors());
    EXPECT_TRUE(bag.has(DiagCode::S013_CompressedRandomInsert));

    auto dense = csr;
    for (auto& f : dense.sparseLevelFormats)
        f = LevelFormat::Uncompressed;
    DiagnosticBag ok;
    analysis::checkAccessCapabilities(dense, need_insert, ok);
    EXPECT_TRUE(ok.empty());
}

TEST(ScheduleVerifier, WorkspaceScopeNotOutermostIsS015)
{
    auto shape =
        ProblemShape::forMatrix(Algorithm::FusedSDDMMSpMM, 48, 40, 6);
    auto s = defaultSchedule(shape);
    EXPECT_FALSE(analysis::verifySchedule(s, shape).hasErrors());

    // Swap the leading scope (i) slot with the first non-scope slot: the
    // workspace's fission point no longer dominates both phases.
    const auto& info = algorithmInfo(Algorithm::FusedSDDMMSpMM);
    std::size_t first_scope = s.loopOrder.size(), first_other = s.loopOrder.size();
    for (std::size_t n = 0; n < s.loopOrder.size(); ++n) {
        bool scope = info.scopeIndex[slotIndex(s.loopOrder[n])];
        if (scope && first_scope == s.loopOrder.size())
            first_scope = n;
        if (!scope && first_other == s.loopOrder.size())
            first_other = n;
    }
    ASSERT_LT(first_scope, s.loopOrder.size());
    ASSERT_LT(first_other, s.loopOrder.size());
    std::swap(s.loopOrder[first_scope], s.loopOrder[first_other]);
    auto diags = analysis::verifySchedule(s, shape);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::S015_WorkspaceScopeOrder))
        << diags.format();

    // Non-workspace algorithms can order loops freely: never S015.
    auto spmm_shape = ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8);
    auto sp = defaultSchedule(spmm_shape);
    std::swap(sp.loopOrder[0], sp.loopOrder[1]);
    EXPECT_FALSE(
        analysis::verifySchedule(sp, spmm_shape).has(
            DiagCode::S015_WorkspaceScopeOrder));
}

TEST(ScheduleVerifier, PerfNotesSurfaceSectionThreeOneCosts)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 48, 40);
    auto csr = defaultSchedule(shape);
    // CSR SpMV iterates the compressed column level innermost: S202.
    auto diags = analysis::verifySchedule(csr, shape);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::S202_InnerLoopNotVectorizable));
    EXPECT_FALSE(diags.has(DiagCode::S201_DiscordantBinarySearch));

    // Swapping i and k outer loops makes the traversal discordant: the
    // compressed k level is then resolved by binary search per row — S201.
    auto disc = csr;
    for (auto& slot : disc.loopOrder) {
        if (slot == outerSlot(0))
            slot = outerSlot(1);
        else if (slot == outerSlot(1))
            slot = outerSlot(0);
    }
    auto ddiags = analysis::verifySchedule(disc, shape);
    EXPECT_FALSE(ddiags.hasErrors());
    EXPECT_TRUE(ddiags.has(DiagCode::S201_DiscordantBinarySearch))
        << ddiags.format();
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

/** A degenerate-bookkeeping permutation of @p s: same measurement class,
 *  different raw key. Empty when @p s has no degenerate slot to move. */
std::optional<SuperSchedule>
degenerateTwin(const SuperSchedule& s)
{
    SuperSchedule v = s;
    int pos = -1;
    for (std::size_t p = 0; p < v.loopOrder.size(); ++p) {
        if (slotDegenerate(v, v.loopOrder[p])) {
            pos = static_cast<int>(p);
            break;
        }
    }
    if (pos < 0)
        return std::nullopt;
    u32 slot = v.loopOrder[pos];
    v.loopOrder.erase(v.loopOrder.begin() + pos);
    v.loopOrder.insert(v.loopOrder.begin(), slot);
    for (std::size_t l = 0; l < v.sparseLevelOrder.size(); ++l) {
        if (slotDegenerate(v, v.sparseLevelOrder[l])) {
            v.sparseLevelFormats[l] =
                v.sparseLevelFormats[l] == LevelFormat::Uncompressed
                    ? LevelFormat::Compressed
                    : LevelFormat::Uncompressed;
            break;
        }
    }
    if (v.key() == s.key())
        return std::nullopt;
    return v;
}

TEST(Canonicalization, DegenerateTwinsShareTheCanonicalKey)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8);
    auto s = defaultSchedule(shape); // unsplit: every inner slot degenerate
    auto twin = degenerateTwin(s);
    ASSERT_TRUE(twin.has_value());

    EXPECT_NE(twin->key(), s.key());
    EXPECT_FALSE(analysis::verifySchedule(*twin, shape).hasErrors());
    EXPECT_EQ(analysis::canonicalKey(*twin), analysis::canonicalKey(s));

    // Same measurement class means the same lowered nest and format.
    EXPECT_EQ(lower(*twin, shape).describe(), lower(s, shape).describe());
    EXPECT_TRUE(formatOf(*twin, shape) == formatOf(s, shape));
}

TEST(Canonicalization, IsIdempotentAndPreservesActiveOrders)
{
    Rng rng(901);
    auto shape = ProblemShape::forMatrix(Algorithm::SDDMM, 48, 40, 6);
    SuperScheduleSpace space(Algorithm::SDDMM, shape);
    for (u32 n = 0; n < 20; ++n) {
        SuperSchedule s = space.sample(rng);
        SuperSchedule c = analysis::canonicalizeSchedule(s);
        EXPECT_EQ(analysis::canonicalizeSchedule(c).key(), c.key());
        EXPECT_FALSE(analysis::verifySchedule(c, shape).hasErrors());
        EXPECT_EQ(activeLoopOrder(c), activeLoopOrder(s));
        EXPECT_EQ(activeSparseLevelOrder(c), activeSparseLevelOrder(s));
        EXPECT_EQ(activeSparseLevelFormats(c), activeSparseLevelFormats(s));
        EXPECT_EQ(c.splits, s.splits);
        EXPECT_EQ(c.parallelSlot, s.parallelSlot);
        EXPECT_EQ(c.numThreads, s.numThreads);
        EXPECT_EQ(c.ompChunk, s.ompChunk);
    }
}

TEST(Canonicalization, NormalizesFixedLayoutFlags)
{
    // SpMM fixes both dense layouts; a flipped flag is dead state that
    // every consumer overrides, so canonicalization folds it back.
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8);
    auto s = defaultSchedule(shape);
    auto flipped = s;
    ASSERT_FALSE(flipped.denseRowMajor.empty());
    flipped.denseRowMajor[0] = !flipped.denseRowMajor[0];
    EXPECT_NE(flipped.key(), s.key());
    EXPECT_EQ(analysis::canonicalKey(flipped), analysis::canonicalKey(s));
    // And the flip never produces a strided-tail note: fixed layouts are
    // analyzed under the paper's choice, exactly like the cost model.
    EXPECT_FALSE(analysis::verifySchedule(flipped, shape)
                     .has(DiagCode::S203_StridedVectorAccess));
}

TEST(Canonicalization, MalformedSchedulesPassThroughUnchanged)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 48, 40);
    auto s = defaultSchedule(shape);
    s.loopOrder.pop_back(); // S001
    EXPECT_EQ(analysis::canonicalizeSchedule(s).key(), s.key());
}

TEST(Canonicalization, DistinctClassesKeepDistinctKeys)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 48, 40);
    auto a = defaultSchedule(shape);
    auto b = a;
    b.ompChunk = a.ompChunk * 2;
    EXPECT_NE(analysis::canonicalKey(a), analysis::canonicalKey(b));
    auto c = a;
    c.numThreads = 24;
    EXPECT_NE(analysis::canonicalKey(a), analysis::canonicalKey(c));
}

// ---------------------------------------------------------------------------
// key() round trip
// ---------------------------------------------------------------------------

TEST(ParseKey, RoundTripsSampledSchedules)
{
    // Every registered algorithm — a sixth kernel added without a key
    // round trip fails here, not in production logs.
    for (Algorithm alg : allAlgorithms()) {
        const auto& info = algorithmInfo(alg);
        ProblemShape shape =
            info.sparseOrder == 3
                ? ProblemShape::forTensor3(alg, 16, 12, 10, 8)
                : ProblemShape::forMatrix(alg, 48, 40, 6);
        Rng rng(42 + static_cast<u64>(alg));
        SuperScheduleSpace space(alg, shape);
        for (u32 n = 0; n < 10; ++n) {
            SuperSchedule s = space.sample(rng);
            EXPECT_EQ(SuperSchedule::parseKey(s.key()).key(), s.key())
                << algorithmName(alg);
        }
        auto d = defaultSchedule(shape);
        EXPECT_EQ(SuperSchedule::parseKey(d.key()).key(), d.key())
            << algorithmName(alg);
    }
}

TEST(ParseKey, RejectsMalformedKeys)
{
    EXPECT_THROW(SuperSchedule::parseKey(""), FatalError);
    EXPECT_THROW(SuperSchedule::parseKey("SpMM"), FatalError);
    EXPECT_THROW(SuperSchedule::parseKey("NoSuchAlg|s=1|lo=0|p=0:1:1|slo=0|"
                                         "lf=U|dl=r"),
                 FatalError);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8);
    std::string k = defaultSchedule(shape).key();
    std::string bad = k;
    auto at = bad.find("|lo=");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 4, "|xx=");
    EXPECT_THROW(SuperSchedule::parseKey(bad), FatalError);
}

// ---------------------------------------------------------------------------
// LoopNest corruption via fromRaw
// ---------------------------------------------------------------------------

/** Disassembled nest, mutable, reassembled through LoopNest::fromRaw. */
struct NestParts
{
    Algorithm alg;
    ProblemShape shape;
    std::array<u32, 4> splits;
    std::vector<LoopNode> loops;
    ComputeLeaf leaf;
    std::vector<u32> levelSlots;
    std::vector<LevelFormat> levelFormats;
    std::vector<bool> levelConcordant;

    LoopNest build() const
    {
        return LoopNest::fromRaw(alg, shape, splits, loops, leaf, levelSlots,
                                 levelFormats, levelConcordant);
    }
};

NestParts
partsOf(const LoopNest& n)
{
    NestParts p;
    p.alg = n.alg();
    p.shape = n.shape();
    p.splits = {n.splitOf(0), n.splitOf(1), n.splitOf(2), n.splitOf(3)};
    p.loops = n.loops();
    p.leaf = n.leaf();
    for (u32 l = 0; l < n.numLevels(); ++l) {
        p.levelSlots.push_back(n.levelSlot(l));
        p.levelFormats.push_back(n.levelFormat(l));
        p.levelConcordant.push_back(n.levelConcordant(l));
    }
    return p;
}

class LoopNestCorruption : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        shape_ = ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8);
        base_ = partsOf(lower(defaultSchedule(shape_), shape_));
        // Discordant SpMV (k outer, i inner): its nest carries a
        // binary-search locate step for the compressed k level.
        spmv_shape_ = ProblemShape::forMatrix(Algorithm::SpMV, 48, 40);
        auto disc = defaultSchedule(spmv_shape_);
        for (auto& slot : disc.loopOrder) {
            if (slot == outerSlot(0))
                slot = outerSlot(1);
            else if (slot == outerSlot(1))
                slot = outerSlot(0);
        }
        disc_ = partsOf(lower(disc, spmv_shape_));
        bool found = false;
        for (const auto& n : disc_.loops)
            for (const auto& loc : n.locates)
                found |= loc.binarySearch;
        ASSERT_TRUE(found) << "discordant base nest has no locate step";
    }

    ProblemShape shape_, spmv_shape_;
    NestParts base_, disc_;
};

TEST_F(LoopNestCorruption, RoundTripOfValidNestsVerifiesClean)
{
    EXPECT_FALSE(analysis::verifyLoopNest(base_.build()).hasErrors());
    EXPECT_FALSE(analysis::verifyLoopNest(disc_.build()).hasErrors());
}

TEST_F(LoopNestCorruption, DuplicateLoopIsL001)
{
    auto p = base_;
    p.loops.push_back(p.loops.back());
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L001_SlotBoundTwice)) << diags.format();
}

TEST_F(LoopNestCorruption, MissingLoopIsL002)
{
    auto p = base_;
    p.loops.pop_back();
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L002_ActiveSlotUnbound))
        << diags.format();
}

TEST_F(LoopNestCorruption, UnresolvedLevelIsL003)
{
    auto p = base_;
    ASSERT_EQ(p.loops[1].kind, LoopKind::Sparse);
    p.loops[1].kind = LoopKind::Dense;
    p.loops[1].level = -1;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L003_LevelUnresolved)) << diags.format();
}

TEST_F(LoopNestCorruption, LocateOnDenseCarrierIsL004)
{
    auto p = base_;
    ASSERT_EQ(p.loops[2].kind, LoopKind::Dense);
    p.loops[2].locates.push_back({1, p.levelSlots[1], true});
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L004_SparseParentNotDominated))
        << diags.format();
}

TEST_F(LoopNestCorruption, LocateBeforeItsCoordinateBindsIsL005)
{
    auto p = disc_;
    // Swap the discordant dense k loop under the sparse i loop: the locate
    // now consumes k's coordinate before the k loop binds it.
    ASSERT_GE(p.loops.size(), 2u);
    std::swap(p.loops[0], p.loops[1]);
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L005_LocateSlotUnbound))
        << diags.format();
}

TEST_F(LoopNestCorruption, WrongExtentIsL006)
{
    auto p = base_;
    p.loops[0].extent += 3;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L006_SplitReconstruction))
        << diags.format();
}

TEST_F(LoopNestCorruption, DoubleResolutionIsL007)
{
    auto p = base_;
    ASSERT_EQ(p.loops[1].kind, LoopKind::Sparse);
    p.loops[1].locates.push_back({0, p.levelSlots[0], false});
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L007_LevelResolvedTwice))
        << diags.format();
}

TEST_F(LoopNestCorruption, LocateKindContradictsFormatIsL008)
{
    auto p = disc_;
    for (auto& n : p.loops)
        for (auto& loc : n.locates)
            loc.binarySearch = !loc.binarySearch;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L008_LocateKindMismatch))
        << diags.format();
}

TEST_F(LoopNestCorruption, LeafMetadataMismatchIsL009)
{
    auto p = base_;
    p.leaf.vectorIndex = 0; // the tail is over j, not i
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L009_VectorLeafMismatch))
        << diags.format();

    auto q = base_;
    q.leaf.alg = Algorithm::SpMV;
    auto adiags = analysis::verifyLoopNest(q.build());
    EXPECT_TRUE(adiags.has(DiagCode::L009_VectorLeafMismatch));
}

TEST_F(LoopNestCorruption, LevelSlotBookkeepingIsL010)
{
    auto p = base_;
    ASSERT_GE(p.levelSlots.size(), 2u);
    p.levelSlots[1] = p.levelSlots[0];
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L010_LevelSlotMismatch))
        << diags.format();
}

TEST_F(LoopNestCorruption, ParallelReductionIsR001Error)
{
    auto p = base_;
    ASSERT_EQ(slotIndex(p.loops[1].slot), 1u); // k, the reduction index
    p.loops[1].parallel = true;
    p.loops[1].chunk = 32;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::R001_ParallelReductionRace))
        << diags.format();
}

TEST_F(LoopNestCorruption, NestedParallelIsR002Warning)
{
    auto p = base_;
    p.loops[2].parallel = true; // j: safe index, but not outermost
    p.loops[2].chunk = 16;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_FALSE(diags.hasErrors()) << diags.format();
    EXPECT_TRUE(diags.has(DiagCode::R002_NestedParallelIgnored));
}

TEST_F(LoopNestCorruption, ChunkZeroIsR003Warning)
{
    auto p = base_;
    ASSERT_TRUE(p.loops[0].parallel);
    p.loops[0].chunk = 0;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_FALSE(diags.hasErrors()) << diags.format();
    EXPECT_TRUE(diags.has(DiagCode::R003_ParallelChunkZero));
}

// ---------------------------------------------------------------------------
// Fused (workspace) nest corruption via fromRawFused
// ---------------------------------------------------------------------------

/** FusedNestParts: NestParts plus the consumer phase and the workspace. */
struct FusedNestParts
{
    Algorithm alg;
    ProblemShape shape;
    std::array<u32, 4> splits;
    std::vector<LoopNode> loops;
    ComputeLeaf leaf;
    std::vector<u32> levelSlots;
    std::vector<LevelFormat> levelFormats;
    std::vector<bool> levelConcordant;
    std::vector<LoopNode> consumerLoops;
    ComputeLeaf consumerLeaf;
    WorkspaceDecl workspace;

    LoopNest build() const
    {
        return LoopNest::fromRawFused(alg, shape, splits, loops, leaf,
                                      levelSlots, levelFormats,
                                      levelConcordant, consumerLoops,
                                      consumerLeaf, workspace);
    }
};

FusedNestParts
fusedPartsOf(const LoopNest& n)
{
    FusedNestParts p;
    p.alg = n.alg();
    p.shape = n.shape();
    p.splits = {n.splitOf(0), n.splitOf(1), n.splitOf(2), n.splitOf(3)};
    p.loops = n.loops();
    p.leaf = n.leaf();
    for (u32 l = 0; l < n.numLevels(); ++l) {
        p.levelSlots.push_back(n.levelSlot(l));
        p.levelFormats.push_back(n.levelFormat(l));
        p.levelConcordant.push_back(n.levelConcordant(l));
    }
    p.consumerLoops = n.consumerLoops();
    p.consumerLeaf = n.consumerLeaf();
    p.workspace = n.workspace();
    return p;
}

class FusedNestCorruption : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        shape_ =
            ProblemShape::forMatrix(Algorithm::FusedSDDMMSpMM, 48, 40, 6);
        auto nest = lower(defaultSchedule(shape_), shape_);
        ASSERT_TRUE(nest.fused());
        base_ = fusedPartsOf(nest);
        ASSERT_GE(base_.workspace.scopeDepth, 1u);
        ASSERT_GT(base_.loops.size(), base_.workspace.scopeDepth);
        ASSERT_FALSE(base_.consumerLoops.empty());
    }

    ProblemShape shape_;
    FusedNestParts base_;
};

TEST_F(FusedNestCorruption, RoundTripOfValidFusedNestVerifiesClean)
{
    auto diags = analysis::verifyLoopNest(base_.build());
    EXPECT_FALSE(diags.hasErrors()) << diags.format();
    EXPECT_FALSE(diags.has(DiagCode::R004_ParallelWorkspaceWrite));
    EXPECT_FALSE(diags.has(DiagCode::R005_ParallelWorkspaceConsume));
}

TEST_F(FusedNestCorruption, WorkspaceExtentMismatchIsL011)
{
    auto p = base_;
    p.workspace.extent += 3; // no longer covers index j
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L011_WorkspaceScopeInvalid))
        << diags.format();
}

TEST_F(FusedNestCorruption, ScopeDepthPastNestIsL011)
{
    auto p = base_;
    p.workspace.scopeDepth = static_cast<u32>(p.loops.size()) + 1;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L011_WorkspaceScopeInvalid))
        << diags.format();
}

TEST_F(FusedNestCorruption, NonScopeLoopInsidePrefixIsL011)
{
    auto p = base_;
    // Pull a producer loop up into the scope prefix: the workspace is now
    // declared under a loop that only the producer phase iterates.
    std::swap(p.loops[p.workspace.scopeDepth - 1],
              p.loops[p.workspace.scopeDepth]);
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L011_WorkspaceScopeInvalid))
        << diags.format();
}

TEST_F(FusedNestCorruption, MissingWorkspaceDeclIsL012)
{
    auto p = base_;
    p.workspace = WorkspaceDecl{}; // kernel fuses, nest says it doesn't
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L012_WorkspaceInitBeforeUse))
        << diags.format();
}

TEST_F(FusedNestCorruption, MissingConsumerPhaseIsL012)
{
    auto p = base_;
    p.consumerLoops.clear(); // accumulated but never consumed
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L012_WorkspaceInitBeforeUse))
        << diags.format();
}

TEST_F(FusedNestCorruption, WorkspaceOnSingleExpressionNestIsL012)
{
    // The dual corruption: a non-workspace kernel whose nest smuggles in
    // a consumer phase.
    auto spmm_shape = ProblemShape::forMatrix(Algorithm::SpMM, 48, 40, 8);
    auto spmm = fusedPartsOf(lower(defaultSchedule(spmm_shape), spmm_shape));
    spmm.workspace = base_.workspace;
    spmm.consumerLoops = base_.consumerLoops;
    spmm.consumerLeaf = base_.consumerLeaf;
    auto diags = analysis::verifyLoopNest(spmm.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::L012_WorkspaceInitBeforeUse))
        << diags.format();
}

TEST_F(FusedNestCorruption, ParallelProducerLoopIsR004)
{
    auto p = base_;
    // Parallelize a producer-phase loop: every thread of that loop
    // accumulates into the scratch vector of the same scope iteration.
    auto& n = p.loops[p.workspace.scopeDepth];
    n.parallel = true;
    n.chunk = 8;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::R004_ParallelWorkspaceWrite))
        << diags.format();
}

TEST_F(FusedNestCorruption, ParallelScopeLoopBelowScopeIsR005)
{
    auto p = base_;
    // Declare the workspace *above* every loop (scope depth 0): the
    // parallel scope loop now runs both phases against one shared scratch
    // vector — producer writes race consumer reads.
    p.workspace.scopeDepth = 0;
    p.loops[0].parallel = true;
    if (p.loops[0].chunk == 0)
        p.loops[0].chunk = 8;
    auto diags = analysis::verifyLoopNest(p.build());
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_TRUE(diags.has(DiagCode::R005_ParallelWorkspaceConsume))
        << diags.format();
}

TEST(VerifyLowered, MergesBothPassesAndShortCircuitsOnErrors)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 48, 40);
    auto s = defaultSchedule(shape);
    auto clean = analysis::verifyLowered(s, shape);
    EXPECT_FALSE(clean.hasErrors());

    s.loopOrder.pop_back();
    auto bad = analysis::verifyLowered(s, shape);
    EXPECT_TRUE(bad.hasErrors());
    EXPECT_TRUE(bad.has(DiagCode::S001_LoopOrderSize));
}

// ---------------------------------------------------------------------------
// Tuner pruning: same winner, strictly fewer measurements
// ---------------------------------------------------------------------------

class TunerPruning : public ::testing::Test
{
  protected:
    void SetUp() override { setLogLevel(LogLevel::Off); }
    void TearDown() override { setLogLevel(LogLevel::Info); }
};

TEST_F(TunerPruning, SameBestScheduleWithStrictlyFewerMeasurements)
{
    CorpusOptions copt;
    copt.count = 3;
    copt.minDim = 256;
    copt.maxDim = 512;
    copt.minNnz = 800;
    copt.maxNnz = 3000;
    auto corpus = makeCorpus(copt, 81);

    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 4;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 6;
    // topK larger than the whole node set: every graph schedule lands in
    // the remeasurement pass, so the injected canonical duplicates are
    // guaranteed to be among the candidates.
    opt.topK = 128;
    opt.efSearch = 160;
    opt.pruneCandidates = true;
    // Isolate the canonicalization/dedup stage: the stage-0 asymptotic
    // dominance filter would drop candidates unmeasured and break the
    // exact attempts+reused accounting below. Its own same-winner A/B
    // lives in test_asymptotic.cpp.
    opt.asymFilter = false;
    auto opt_off = opt;
    opt_off.pruneCandidates = false;

    // Both tuners share the seed, so their untrained models, embeddings,
    // and HNSW graphs are identical; only the pruning flag differs.
    WacoTuner pruned(Algorithm::SpMM, MachineConfig::intel24(), opt);
    WacoTuner unpruned(Algorithm::SpMM, MachineConfig::intel24(), opt_off);

    auto ds = buildDataset(Algorithm::SpMM, corpus, pruned.oracle(),
                           opt.schedulesPerMatrix, 82);
    // Inject measurement-equivalent twins: degenerate-slot permutations
    // with the oracle's runtime for the original (they lower identically).
    u32 injected = 0;
    for (auto& e : ds.entries) {
        std::vector<ScheduleSample> twins;
        for (const auto& smp : e.samples) {
            if (auto twin = degenerateTwin(smp.schedule)) {
                twins.push_back({*twin, smp.runtime});
                ++injected;
            }
        }
        e.samples.insert(e.samples.end(), twins.begin(), twins.end());
    }
    ASSERT_GT(injected, 0u) << "corpus produced no degenerate schedules";

    pruned.attachDataset(ds);
    unpruned.attachDataset(ds);
    ASSERT_EQ(pruned.graphSchedules().size(), unpruned.graphSchedules().size());
    ASSERT_LE(pruned.graphSchedules().size(), static_cast<std::size_t>(opt.topK));

    Rng rng(83);
    auto m = genUniform(256, 256, 2000, rng);
    auto with = pruned.tune(m);
    auto without = unpruned.tune(m);

    // Identical winner — pruning only dedupes, it never changes the search.
    EXPECT_EQ(with.best.key(), without.best.key());
    EXPECT_EQ(with.bestMeasured.seconds, without.bestMeasured.seconds);
    EXPECT_EQ(with.topK.size(), without.topK.size());

    // Strictly fewer oracle calls: every canonical duplicate is served
    // from the measurement cache.
    EXPECT_EQ(with.verifierRejected, 0u);
    EXPECT_EQ(without.measurementsReused, 0u);
    EXPECT_GT(with.measurementsReused, 0u);
    EXPECT_GT(with.candidatesCanonicalized, 0u);
    EXPECT_LT(with.remeasureStats.attempts, without.remeasureStats.attempts);
    EXPECT_EQ(with.remeasureStats.attempts + with.measurementsReused,
              without.remeasureStats.attempts);
}

TEST_F(TunerPruning, GraphBuildDropsMalformedSchedules)
{
    CorpusOptions copt;
    copt.count = 2;
    copt.minDim = 256;
    copt.maxDim = 384;
    copt.minNnz = 600;
    copt.maxNnz = 1500;
    auto corpus = makeCorpus(copt, 91);

    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 4;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 4;
    opt.pruneCandidates = true;
    WacoTuner tuner(Algorithm::SpMV, MachineConfig::intel24(), opt);

    auto ds = buildDataset(Algorithm::SpMV, corpus, tuner.oracle(),
                           opt.schedulesPerMatrix, 92);
    std::size_t before = ds.allSchedules().size();
    // A dataset loaded from a corrupt checkpoint or built by an external
    // tool can contain garbage; the graph build must reject it.
    auto broken = defaultSchedule(ds.entries[0].shape);
    broken.loopOrder.pop_back();
    broken.ompChunk = 7777; // distinct key
    ds.entries[0].samples.push_back({broken, 1.0});
    ASSERT_EQ(ds.allSchedules().size(), before + 1);

    tuner.attachDataset(ds);
    EXPECT_EQ(tuner.graphSchedules().size(), before);
    for (const auto& s : tuner.graphSchedules())
        EXPECT_FALSE(analysis::verifySchedule(s).hasErrors()) << s.key();
}

} // namespace
} // namespace waco
