/**
 * @file
 * Differential fuzzing of the lowered loop-nest IR and its three consumers.
 *
 * ~240 seeded random (SuperSchedule, Algorithm, input) triples are sampled
 * from SuperScheduleSpace; for each one the schedule is lowered, the input
 * is built in the schedule's format, and the generic interpreter
 * (executeLoopNest) must *bit-match* the dense COO references in
 * exec/reference.cpp — operands are integer-valued so float accumulation is
 * exact in any order and the comparison can demand equality, not tolerance.
 * The same loop asserts the unified C emitter names every loop of the
 * lowered nest, and that the sample set exercises discordant (binary-search
 * locate) traversals and parallel execution over the persistent pool.
 *
 * Also here: unit tests of the ThreadPool runtime (full coverage, the
 * chunk-count participation cap that fixes the old dynamicTopLevel
 * oversubscription, reuse across calls) and the guarantee that every
 * kernel entry point dispatches through the single generic executor.
 */
#include <gtest/gtest.h>

#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "analysis/loopnest_verifier.hpp"
#include "codegen/emit.hpp"
#include "codegen/kernel_backend.hpp"
#include "exec/loopnest_exec.hpp"
#include "exec/reference.hpp"
#include "exec/scheduled.hpp"
#include "ir/loopnest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace waco {
namespace {

// ---------------------------------------------------------------------------
// Integer-valued inputs: every product/sum below stays far inside the range
// where IEEE float arithmetic is exact, so "matches the reference" means
// bitwise equality regardless of accumulation order or thread count.
// ---------------------------------------------------------------------------

SparseMatrix
intMatrix(u32 rows, u32 cols, u32 nnz, Rng& rng)
{
    std::vector<Triplet> t;
    for (u32 n = 0; n < nnz; ++n) {
        t.push_back({static_cast<u32>(rng.index(rows)),
                     static_cast<u32>(rng.index(cols)),
                     static_cast<float>(rng.uniformInt(1, 4))});
    }
    return SparseMatrix(rows, cols, t);
}

Sparse3Tensor
intTensor(u32 di, u32 dk, u32 dl, u32 nnz, Rng& rng)
{
    std::vector<Quad> q;
    for (u32 n = 0; n < nnz; ++n) {
        q.push_back({static_cast<u32>(rng.index(di)),
                     static_cast<u32>(rng.index(dk)),
                     static_cast<u32>(rng.index(dl)),
                     static_cast<float>(rng.uniformInt(1, 4))});
    }
    return Sparse3Tensor(di, dk, dl, q);
}

void
fillInt(DenseVector& v, Rng& rng)
{
    for (u64 i = 0; i < v.size(); ++i)
        v[i] = static_cast<float>(rng.uniformInt(1, 3));
}

void
fillInt(DenseMatrix& m, Rng& rng)
{
    for (auto& x : m.data())
        x = static_cast<float>(rng.uniformInt(1, 3));
}

/** True when the nest resolves any discordant level by binary search. */
bool
hasBinarySearchLocate(const LoopNest& nest)
{
    for (const LoopNode& n : nest.loops())
        for (const LocateStep& ls : n.locates)
            if (ls.binarySearch)
                return true;
    return false;
}

/** Assert the emitter names every loop variable of the lowered nest. */
void
expectEmitNamesEveryLoop(const SuperSchedule& s, const LoopNest& nest)
{
    std::string code = emitC(s, nest.shape());
    for (u32 d = 0; d < nest.loops().size(); ++d) {
        std::string binding = "int " + nest.varName(d) + " =";
        EXPECT_NE(code.find(binding), std::string::npos)
            << "emitC output does not bind loop variable '" << nest.varName(d)
            << "'\nschedule: " << s.key() << "\n" << code;
    }
}

/** Cycle through serial, lightly- and heavily-chunked parallel configs. */
ParallelConfig
parFor(u32 n)
{
    switch (n % 3) {
      case 0: return {1, 128};
      case 1: return {2, 16};
      default: return {4, 7};
    }
}

/**
 * Compiled-backend differential: re-run @p nest through the JIT backend
 * and demand the result be bitwise identical to the interpreter's.
 * Sampled (every 4th triple) to bound compiler invocations; silently a
 * no-op on hosts without a system C compiler (the codegen-label tests
 * cover the skip reporting).
 */
void
expectCompiledBitMatches(const LoopNest& nest, const LoopNestArgs& args,
                         const ParallelConfig& par,
                         const LoopNestResult& want, const std::string& key)
{
    static const bool available = compiledBackend().compilerAvailable();
    if (!available)
        return;
    auto before = compiledBackend().stats().fallbacks;
    auto got = compiledBackend().execute(nest, args, par);
    EXPECT_EQ(compiledBackend().stats().fallbacks, before)
        << "compiled backend fell back to the interpreter for " << key
        << "\n" << compiledBackend().lastError();

    ASSERT_EQ(want.vec.size(), got.vec.size()) << key;
    for (u64 i = 0; i < want.vec.size(); ++i)
        EXPECT_EQ(want.vec[i], got.vec[i]) << key;
    ASSERT_EQ(want.mat.data().size(), got.mat.data().size()) << key;
    for (u64 i = 0; i < want.mat.data().size(); ++i)
        EXPECT_EQ(want.mat.data()[i], got.mat.data()[i]) << key;
    ASSERT_EQ(want.sparse.nnz(), got.sparse.nnz()) << key;
    for (u64 n = 0; n < want.sparse.nnz(); ++n)
        EXPECT_EQ(want.sparse.values()[n], got.sparse.values()[n]) << key;
}

struct FuzzStats
{
    u32 executed = 0;
    u32 skipped = 0;    ///< Sampled formats over the storage budget.
    u32 discordant = 0; ///< Nests with a binary-search locate step.
};

/** Run @p target sampled schedules of a 2D algorithm against the dense
 *  reference; bitwise equality required. */
FuzzStats
fuzz2d(Algorithm alg, u32 target, u64 seed)
{
    Rng rng(seed);
    FuzzStats st;

    const u32 rows = 48, cols = 40;
    const u32 dense_extent = alg == Algorithm::SpMM ? 8
                             : alg == Algorithm::SDDMM ? 6
                                                       : 0;
    auto shape = ProblemShape::forMatrix(alg, rows, cols, dense_extent);
    SuperScheduleSpace space(alg, shape);

    auto m = intMatrix(rows, cols, 400, rng);
    DenseVector vb(cols);
    fillInt(vb, rng);
    DenseMatrix spmm_b(cols, dense_extent ? dense_extent : 1);
    fillInt(spmm_b, rng);
    DenseMatrix sd_b(rows, dense_extent ? dense_extent : 1);
    DenseMatrix sd_c(dense_extent ? dense_extent : 1, cols, Layout::ColMajor);
    fillInt(sd_b, rng);
    fillInt(sd_c, rng);

    DenseVector want_v;
    DenseMatrix want_m;
    SparseMatrix want_s;
    switch (alg) {
      case Algorithm::SpMV: want_v = spmvReference(m, vb); break;
      case Algorithm::SpMM: want_m = spmmReference(m, spmm_b); break;
      case Algorithm::SDDMM: want_s = sddmmReference(m, sd_b, sd_c); break;
      default: ADD_FAILURE() << "fuzz2d: not a 2D algorithm"; return st;
    }

    u32 attempts = 0;
    while (st.executed < target && attempts < 20 * target) {
        ++attempts;
        SuperSchedule s = space.sample(rng);
        std::optional<HierSparseTensor> t;
        try {
            t = HierSparseTensor::build(formatOf(s, shape), m);
        } catch (const FormatTooLarge&) {
            ++st.skipped;
            continue;
        }

        LoopNest nest = lower(s, shape);
        // Verifier as differential oracle: everything this harness executes
        // (and bit-matches below) must verify error-free — a false reject
        // here is exactly as much a bug as a false accept in test_analysis.
        auto diags = analysis::verifyLowered(s, shape);
        EXPECT_FALSE(diags.hasErrors()) << s.key() << "\n" << diags.format();
        if (hasBinarySearchLocate(nest))
            ++st.discordant;
        expectEmitNamesEveryLoop(s, nest);

        LoopNestArgs args;
        args.a = &*t;
        ParallelConfig par = parFor(st.executed);
        switch (alg) {
          case Algorithm::SpMV: {
            args.vecB = &vb;
            auto got = executeLoopNest(nest, args, par);
            EXPECT_EQ(0.0, maxAbsDiff(want_v, got.vec)) << s.key();
            if (st.executed % 4 == 0)
                expectCompiledBitMatches(nest, args, par, got, s.key());
            break;
          }
          case Algorithm::SpMM: {
            args.matB = &spmm_b;
            auto got = executeLoopNest(nest, args, par);
            EXPECT_EQ(0.0, maxAbsDiff(want_m, got.mat)) << s.key();
            if (st.executed % 4 == 0)
                expectCompiledBitMatches(nest, args, par, got, s.key());
            break;
          }
          default: {
            args.matB = &sd_b;
            args.matC = &sd_c;
            auto got = executeLoopNest(nest, args, par);
            EXPECT_EQ(want_s.nnz(), got.sparse.nnz()) << s.key();
            if (want_s.nnz() == got.sparse.nnz()) {
                for (u64 n = 0; n < want_s.nnz(); ++n) {
                    EXPECT_EQ(want_s.values()[n], got.sparse.values()[n])
                        << s.key();
                }
            }
            if (st.executed % 4 == 0)
                expectCompiledBitMatches(nest, args, par, got, s.key());
            break;
          }
        }
        ++st.executed;
    }
    EXPECT_EQ(st.executed, target) << "too many sampled formats skipped";
    return st;
}

FuzzStats
fuzzMttkrp(u32 target, u64 seed)
{
    Rng rng(seed);
    FuzzStats st;

    const u32 di = 16, dk = 12, dl = 10, J = 8;
    auto shape = ProblemShape::forTensor3(Algorithm::MTTKRP, di, dk, dl, J);
    SuperScheduleSpace space(Algorithm::MTTKRP, shape);

    auto t3 = intTensor(di, dk, dl, 250, rng);
    DenseMatrix b(dk, J), c(dl, J);
    fillInt(b, rng);
    fillInt(c, rng);
    DenseMatrix want = mttkrpReference(t3, b, c);

    u32 attempts = 0;
    while (st.executed < target && attempts < 20 * target) {
        ++attempts;
        SuperSchedule s = space.sample(rng);
        std::optional<HierSparseTensor> t;
        try {
            t = HierSparseTensor::build(formatOf(s, shape), t3);
        } catch (const FormatTooLarge&) {
            ++st.skipped;
            continue;
        }

        LoopNest nest = lower(s, shape);
        // Verifier as differential oracle: everything this harness executes
        // (and bit-matches below) must verify error-free — a false reject
        // here is exactly as much a bug as a false accept in test_analysis.
        auto diags = analysis::verifyLowered(s, shape);
        EXPECT_FALSE(diags.hasErrors()) << s.key() << "\n" << diags.format();
        if (hasBinarySearchLocate(nest))
            ++st.discordant;
        expectEmitNamesEveryLoop(s, nest);

        LoopNestArgs args;
        args.a = &*t;
        args.matB = &b;
        args.matC = &c;
        auto got = executeLoopNest(nest, args, parFor(st.executed));
        EXPECT_EQ(0.0, maxAbsDiff(want, got.mat)) << s.key();
        if (st.executed % 4 == 0)
            expectCompiledBitMatches(nest, args, parFor(st.executed), got,
                                     s.key());
        ++st.executed;
    }
    EXPECT_EQ(st.executed, target) << "too many sampled formats skipped";
    return st;
}

/** Fused SDDMM→SpMM: sampled schedules carry a workspace and a consumer
 *  phase; both walks must be emitted, verify clean, and bit-match the
 *  dense fused reference (serial and parallel — chunks own private
 *  workspaces, and integer inputs make float accumulation exact). */
FuzzStats
fuzzFused(u32 target, u64 seed)
{
    Rng rng(seed);
    FuzzStats st;

    const u32 rows = 48, cols = 40, dense_extent = 6;
    auto shape = ProblemShape::forMatrix(Algorithm::FusedSDDMMSpMM, rows,
                                         cols, dense_extent);
    SuperScheduleSpace space(Algorithm::FusedSDDMMSpMM, shape);

    auto m = intMatrix(rows, cols, 400, rng);
    DenseMatrix b(rows, dense_extent);
    DenseMatrix c(dense_extent, cols, Layout::ColMajor);
    DenseMatrix f(cols, dense_extent);
    fillInt(b, rng);
    fillInt(c, rng);
    fillInt(f, rng);
    DenseMatrix want = fusedSddmmSpmmReference(m, b, c, f);

    u32 attempts = 0;
    while (st.executed < target && attempts < 20 * target) {
        ++attempts;
        SuperSchedule s = space.sample(rng);
        std::optional<HierSparseTensor> t;
        try {
            t = HierSparseTensor::build(formatOf(s, shape), m);
        } catch (const FormatTooLarge&) {
            ++st.skipped;
            continue;
        }

        LoopNest nest = lower(s, shape);
        EXPECT_TRUE(nest.fused()) << s.key();
        if (!nest.fused())
            return st;
        EXPECT_EQ(nest.workspace().extent, cols) << s.key();
        // Verifier as differential oracle, exactly as in fuzz2d.
        auto diags = analysis::verifyLowered(s, shape);
        EXPECT_FALSE(diags.hasErrors()) << s.key() << "\n" << diags.format();
        if (hasBinarySearchLocate(nest))
            ++st.discordant;

        // The emitter must name every loop of BOTH walks and print the
        // workspace's init/producer/consumer statements.
        std::string code = emitC(s, shape);
        for (const LoopNode& n : nest.loops()) {
            std::string binding = "int " + nest.slotVarName(n.slot) + " =";
            EXPECT_NE(code.find(binding), std::string::npos)
                << "producer walk misses '" << nest.slotVarName(n.slot)
                << "'\n" << s.key() << "\n" << code;
        }
        for (const LoopNode& n : nest.consumerLoops()) {
            std::string binding = "int " + nest.slotVarName(n.slot) + " =";
            EXPECT_NE(code.find(binding), std::string::npos)
                << "consumer walk misses '" << nest.slotVarName(n.slot)
                << "'\n" << s.key() << "\n" << code;
        }
        EXPECT_NE(code.find("float w["), std::string::npos) << code;
        EXPECT_NE(code.find("w[_w] = 0.0f;"), std::string::npos) << code;
        EXPECT_NE(code.find("w[j] += B[i * K + k] * C[k * J + j];"),
                  std::string::npos)
            << code;
        EXPECT_NE(code.find("E[i * M + m] += A_vals[pA] * w[j] * "
                            "F[j * M + m];"),
                  std::string::npos)
            << code;

        LoopNestArgs args;
        args.a = &*t;
        args.matB = &b;
        args.matC = &c;
        args.matF = &f;
        auto got = executeLoopNest(nest, args, parFor(st.executed));
        EXPECT_EQ(0.0, maxAbsDiff(want, got.mat)) << s.key();
        if (st.executed % 4 == 0)
            expectCompiledBitMatches(nest, args, parFor(st.executed), got,
                                     s.key());
        ++st.executed;
    }
    EXPECT_EQ(st.executed, target) << "too many sampled formats skipped";
    return st;
}

// 240 triples total across the five algorithms. Each test also checks that
// the sample actually covered discordant (locate) traversals — a fuzz run
// that never hits binary search would not be testing the hard path.

TEST(LoopNestFuzz, SpmvBitMatchesReference)
{
    auto st = fuzz2d(Algorithm::SpMV, 60, 101);
    EXPECT_GT(st.discordant, 0u);
}

TEST(LoopNestFuzz, SpmmBitMatchesReference)
{
    auto st = fuzz2d(Algorithm::SpMM, 60, 202);
    EXPECT_GT(st.discordant, 0u);
}

TEST(LoopNestFuzz, SddmmBitMatchesReference)
{
    auto st = fuzz2d(Algorithm::SDDMM, 40, 303);
    EXPECT_GT(st.discordant, 0u);
}

TEST(LoopNestFuzz, MttkrpBitMatchesReference)
{
    auto st = fuzzMttkrp(40, 404);
    EXPECT_GT(st.discordant, 0u);
}

TEST(LoopNestFuzz, FusedSddmmSpmmBitMatchesReference)
{
    auto st = fuzzFused(40, 505);
    EXPECT_GT(st.discordant, 0u);
}

// ---------------------------------------------------------------------------
// Every kernel entry point dispatches through the one generic executor.
// ---------------------------------------------------------------------------

TEST(LoopNestDispatch, AllFiveAlgorithmsUseExecuteLoopNest)
{
    Rng rng(7);
    auto m = intMatrix(32, 24, 150, rng);
    auto csr = HierSparseTensor::build(FormatDescriptor::csr(32, 24), m);
    DenseVector vb(24);
    fillInt(vb, rng);
    DenseMatrix mb(24, 4), sb(32, 4), sc(4, 24, Layout::ColMajor), fb(24, 4);
    fillInt(mb, rng);
    fillInt(sb, rng);
    fillInt(sc, rng);
    fillInt(fb, rng);
    auto t3 = intTensor(12, 10, 8, 80, rng);
    auto csf = HierSparseTensor::build(FormatDescriptor::csf3d(12, 10, 8),
                                       t3);
    DenseMatrix kb(10, 4), kc(8, 4);
    fillInt(kb, rng);
    fillInt(kc, rng);

    u64 before = loopNestExecutionCount();
    spmvHier(csr, vb);
    spmmHier(csr, mb);
    sddmmHier(csr, sb, sc);
    mttkrpHier(csf, kb, kc);
    fusedSddmmSpmmHier(csr, sb, sc, fb);
    spmvScheduled(csr, vb, {2, 8});
    spmmScheduled(csr, mb, {2, 8});
    sddmmScheduled(csr, sb, sc, {2, 8});
    mttkrpScheduled(csf, kb, kc, {2, 8});
    fusedSddmmSpmmScheduled(csr, sb, sc, fb, {2, 8});
    EXPECT_EQ(loopNestExecutionCount() - before, 10u);
}

/** SDDMM now has a parallel path (it used to be serial-only). */
TEST(LoopNestDispatch, SddmmScheduledMatchesReferenceInParallel)
{
    Rng rng(13);
    auto m = intMatrix(64, 48, 500, rng);
    DenseMatrix b(64, 6), c(6, 48, Layout::ColMajor);
    fillInt(b, rng);
    fillInt(c, rng);
    auto want = sddmmReference(m, b, c);
    for (const auto& desc :
         {FormatDescriptor::csr(64, 48), FormatDescriptor::csc(64, 48)}) {
        auto t = HierSparseTensor::build(desc, m);
        auto got = sddmmScheduled(t, b, c, {4, 8});
        ASSERT_EQ(want.nnz(), got.nnz()) << desc.name();
        for (u64 n = 0; n < want.nnz(); ++n)
            EXPECT_EQ(want.values()[n], got.values()[n]) << desc.name();
    }
}

// ---------------------------------------------------------------------------
// Fused workspace nests under parallel execution. Registered under the
// `tsan` ctest label too (tests/CMakeLists.txt): ThreadSanitizer proves the
// per-chunk workspace privatization makes the producer/consumer phases
// race-free, and bitwise equality with the serial run proves the chunks
// never share accumulation state.
// ---------------------------------------------------------------------------

TEST(FusedWorkspaceTsan, ParallelChunksUsePrivateWorkspaces)
{
    Rng rng(29);
    auto m = intMatrix(96, 80, 1200, rng);
    DenseMatrix b(96, 6), c(6, 80, Layout::ColMajor), f(80, 6);
    fillInt(b, rng);
    fillInt(c, rng);
    fillInt(f, rng);
    auto want = fusedSddmmSpmmReference(m, b, c, f);
    for (const auto& desc :
         {FormatDescriptor::csr(96, 80), FormatDescriptor::csc(96, 80)}) {
        auto t = HierSparseTensor::build(desc, m);
        auto serial = fusedSddmmSpmmScheduled(t, b, c, f, {1, 16});
        EXPECT_EQ(0.0, maxAbsDiff(want, serial)) << desc.name();
        // Repeated heavily-chunked parallel runs: any cross-chunk workspace
        // sharing would race (tsan) and break bitwise equality.
        for (u32 run = 0; run < 4; ++run) {
            auto par = fusedSddmmSpmmScheduled(t, b, c, f, {4, 3});
            EXPECT_EQ(0.0, maxAbsDiff(want, par))
                << desc.name() << " run " << run;
        }
    }
}

// ---------------------------------------------------------------------------
// ThreadPool runtime.
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIterationExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<u32> marks(1000, 0);
    pool.parallelFor(1000, 7, 4, [&](u64 b, u64 e) {
        for (u64 i = b; i < e; ++i)
            ++marks[i];
    });
    for (u64 i = 0; i < marks.size(); ++i)
        ASSERT_EQ(marks[i], 1u) << "iteration " << i;
}

TEST(ThreadPool, ParticipantsCappedByChunkCount)
{
    // The old dynamicTopLevel woke par.threads workers regardless of how
    // many chunks existed. The pool must never use more threads than
    // chunks: a single-chunk job runs on the caller alone.
    ThreadPool pool(8);
    std::mutex mu;
    std::set<std::thread::id> ids;
    auto record = [&](u64, u64) {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
    };
    pool.parallelFor(10, 10, 8, record);
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());

    ids.clear();
    pool.parallelFor(25, 10, 8, record); // 3 chunks -> at most 3 threads.
    EXPECT_LE(ids.size(), 3u);
    EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPool, SerialWhenOneThreadRequested)
{
    ThreadPool pool(4);
    std::set<std::thread::id> ids;
    pool.parallelFor(100, 8, 1, [&](u64, u64) {
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, PersistsAcrossManyCalls)
{
    ThreadPool pool(0);
    pool.ensureWorkers(3);
    EXPECT_EQ(pool.workers(), 3u);
    u64 sum = 0;
    std::mutex mu;
    for (int call = 0; call < 64; ++call) {
        pool.parallelFor(97, 5, 4, [&](u64 b, u64 e) {
            std::lock_guard<std::mutex> lock(mu);
            sum += e - b;
        });
    }
    EXPECT_EQ(sum, 64u * 97u);
    EXPECT_EQ(pool.workers(), 3u); // grown once, reused ever after
    pool.ensureWorkers(2);
    EXPECT_EQ(pool.workers(), 3u); // never shrinks
}

TEST(ThreadPool, GlobalPoolIsShared)
{
    ThreadPool& a = globalPool();
    ThreadPool& b = globalPool();
    EXPECT_EQ(&a, &b);
}

} // namespace
} // namespace waco
