/**
 * @file
 * Tests of the asymptotic-cost pass and the tuner's stage-0 dominance
 * filter (src/analysis/asymptotic_cost.*) — the soundness harness is a
 * first-class deliverable here, because an unsound pruner silently
 * degrades every downstream result:
 *
 *  - unit checks of the polynomial partial order and of the bound
 *    profiles of known schedules (CSR SpMV must come out O(nnz) with
 *    zero search cost, the fused default must price its workspace);
 *  - PROPERTY tests: dominance is a strict partial order — irreflexive,
 *    antisymmetric, transitive — over >= 500 sampled schedule pairs per
 *    algorithm, and the Pareto filter keeps every non-dominated profile
 *    (no dominated survivor, no incomparable casualty);
 *  - a SOUNDNESS DIFFERENTIAL extending PR 5's A/B pattern to the
 *    analytic stage: seeded tuner runs on all five algorithms must pick
 *    the identical measured winner with strictly fewer measurements when
 *    the filter is on;
 *  - an ORACLE-AGREEMENT test: whenever dominates(a, b) holds, the
 *    perfmodel never ranks b more than epsilon better than a on matched
 *    shapes (the filter's soundness assumption, checked empirically).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/asymptotic_cost.hpp"
#include "analysis/schedule_verifier.hpp"
#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "ir/loopnest.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

using analysis::AsymPoly;
using analysis::AsymptoticBounds;
using analysis::AsymSym;
using analysis::PolyOrder;

// ---------------------------------------------------------------------------
// Polynomial partial order
// ---------------------------------------------------------------------------

TEST(AsymPolyOrder, BasicRelations2d)
{
    AsymPoly n = AsymPoly::sym(AsymSym::N);
    AsymPoly m = AsymPoly::sym(AsymSym::M);
    AsymPoly nnz = AsymPoly::nnz();
    AsymPoly nm = n * m;

    // Every symbol is >= 1: N <= N * nnz_row.
    EXPECT_EQ(comparePoly(n, nnz, false), PolyOrder::Less);
    // nnz <= N * M (every row has at most M stored columns).
    EXPECT_EQ(comparePoly(nnz, nm, false), PolyOrder::Less);
    // nnz_row <= M.
    EXPECT_EQ(comparePoly(AsymPoly::sym(AsymSym::NnzRow), m, false),
              PolyOrder::Less);
    // Distinct dimensions are incomparable.
    EXPECT_EQ(comparePoly(n, m, false), PolyOrder::Incomparable);
    // So are nnz and a single foreign dimension.
    EXPECT_EQ(comparePoly(nnz, m, false), PolyOrder::Incomparable);
    // The log factor compares against nothing but itself.
    EXPECT_EQ(comparePoly(AsymPoly::sym(AsymSym::Log), n, false),
              PolyOrder::Incomparable);
    EXPECT_EQ(comparePoly(n, n * AsymPoly::sym(AsymSym::Log), false),
              PolyOrder::Less);
    // Zero is the bottom element; every class equals itself.
    EXPECT_EQ(comparePoly(AsymPoly(), nnz, false), PolyOrder::Less);
    EXPECT_EQ(comparePoly(nnz, nnz, false), PolyOrder::Equal);
    // Sums: nnz + N collapses onto nnz (absorption).
    EXPECT_EQ(comparePoly(nnz + n, nnz, false), PolyOrder::Equal);
    // Greater is Less mirrored.
    EXPECT_EQ(comparePoly(nm, nnz, false), PolyOrder::Greater);
}

TEST(AsymPolyOrder, NnzRowSideConditionIs3dAware)
{
    AsymPoly nnz = AsymPoly::nnz();
    AsymPoly nm = AsymPoly::sym(AsymSym::N) * AsymPoly::sym(AsymSym::M);
    AsymPoly nml = nm * AsymPoly::sym(AsymSym::L);

    // 2D: nnz <= N * M. 3D: a fiber can hold M * L coordinates, so only
    // nnz <= N * M * L is sound and nnz vs N * M must stay incomparable.
    EXPECT_EQ(comparePoly(nnz, nm, false), PolyOrder::Less);
    EXPECT_EQ(comparePoly(nnz, nm, true), PolyOrder::Incomparable);
    EXPECT_EQ(comparePoly(nnz, nml, true), PolyOrder::Less);
}

// ---------------------------------------------------------------------------
// Bound profiles of known schedules
// ---------------------------------------------------------------------------

TEST(AsymBounds, CsrSpmvIsLinearWithNoSearch)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 1000, 800);
    AsymptoticBounds b = analysis::asymptoticBounds(defaultSchedule(shape),
                                                    shape);
    EXPECT_EQ(b.iterations().str(), "nnz");
    EXPECT_TRUE(b.searchCost().isZero());
    EXPECT_EQ(b.names[2], "traffic:A");
    EXPECT_EQ(b.bounds[2].str(), "nnz");
}

TEST(AsymBounds, DiscordantStorageOrderIsDominatedByCsr)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 1000, 800);
    SuperSchedule csr = defaultSchedule(shape);
    // Same row-major loop order over column-major (CSC-like) storage:
    // every level resolves by search, every bound is at least CSR's.
    SuperSchedule csc = csr;
    csc.sparseLevelOrder = {outerSlot(1), innerSlot(1), outerSlot(0),
                            innerSlot(0)};
    ASSERT_FALSE(analysis::verifySchedule(csc, shape).hasErrors());

    AsymptoticBounds a = analysis::asymptoticBounds(csr, shape);
    AsymptoticBounds b = analysis::asymptoticBounds(csc, shape);
    EXPECT_TRUE(analysis::dominates(a, b));
    EXPECT_FALSE(analysis::dominates(b, a));
    EXPECT_NE(analysis::explainDomination(a, b), "");
}

TEST(AsymBounds, FusedNestPricesWorkspaceInitAndTraffic)
{
    auto shape =
        ProblemShape::forMatrix(Algorithm::FusedSDDMMSpMM, 300, 200);
    AsymptoticBounds b =
        analysis::asymptoticBounds(defaultSchedule(shape), shape);
    ASSERT_EQ(b.names.back(), "traffic:w");
    // The init phase alone zeroes N * M workspace slots.
    EXPECT_EQ(comparePoly(b.bounds.back(),
                          AsymPoly::sym(AsymSym::N) *
                              AsymPoly::sym(AsymSym::M),
                          false),
              PolyOrder::Equal);
    // ... and the init loop entries are part of the iteration bound.
    EXPECT_TRUE(polyLeq(AsymPoly::sym(AsymSym::N) *
                            AsymPoly::sym(AsymSym::M),
                        b.iterations(), false));
}

TEST(AsymBounds, LooseBoundsNeverJustifyPruning)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 1000, 800);
    SuperSchedule csr = defaultSchedule(shape);
    AsymptoticBounds a = analysis::asymptoticBounds(csr, shape);
    EXPECT_TRUE(a.tight); // Concordant CSR: every clamp is comparable.

    // All-compressed column-major storage: the leading column level clamps
    // M against nnz, which are incomparable — the position estimate keeps
    // the coordinate product and may overshoot the true stored count, so
    // the profile loses its tightness claim.
    SuperSchedule csc = csr;
    csc.sparseLevelOrder = {outerSlot(1), innerSlot(1), outerSlot(0),
                            innerSlot(0)};
    csc.sparseLevelFormats = {LevelFormat::Compressed,
                              LevelFormat::Compressed,
                              LevelFormat::Compressed,
                              LevelFormat::Compressed};
    ASSERT_FALSE(analysis::verifySchedule(csc, shape).hasErrors());
    AsymptoticBounds b = analysis::asymptoticBounds(csc, shape);
    EXPECT_FALSE(b.tight);

    // Dominance (the pure order) may hold, but the filter relation must
    // refuse: a loose-bounded schedule could run far below its bounds.
    EXPECT_TRUE(analysis::dominates(a, b));
    EXPECT_FALSE(analysis::prunes(a, b));
    EXPECT_EQ(analysis::prunes(a, b),
              analysis::dominates(a, b) && b.tight);
}

TEST(AsymBounds, PerfNotesExplainDomination)
{
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 1000, 800);
    SuperSchedule csr = defaultSchedule(shape);

    analysis::DiagnosticBag clean;
    analysis::asymptoticPerfNotes(csr, shape, clean);
    EXPECT_FALSE(clean.has(analysis::DiagCode::S301_AsymptoticallyDominated));

    SuperSchedule csc = csr;
    csc.sparseLevelOrder = {outerSlot(1), innerSlot(1), outerSlot(0),
                            innerSlot(0)};
    analysis::DiagnosticBag bag;
    analysis::asymptoticPerfNotes(csc, shape, bag);
    EXPECT_TRUE(bag.has(analysis::DiagCode::S301_AsymptoticallyDominated));
    EXPECT_TRUE(bag.has(analysis::DiagCode::S304_AsymSearchBound));
    EXPECT_FALSE(bag.hasErrors()); // S3xx are notes, never errors.
    EXPECT_GT(bag.noteCount(), 0u);

    // Stable code table: S3xx encode above the R range but print as S.
    EXPECT_EQ(analysis::diagCodeName(
                  analysis::DiagCode::S301_AsymptoticallyDominated),
              "WACO-S301");
    EXPECT_EQ(analysis::diagSeverity(
                  analysis::DiagCode::S302_AsymIterationBound),
              analysis::Severity::PerfNote);

    // An illegal schedule gets no asymptotic notes (bounds undefined).
    SuperSchedule broken = csr;
    broken.loopOrder.pop_back();
    analysis::DiagnosticBag none;
    analysis::asymptoticPerfNotes(broken, shape, none);
    EXPECT_TRUE(none.empty());
}

// ---------------------------------------------------------------------------
// Property: dominance is a strict partial order
// ---------------------------------------------------------------------------

ProblemShape
shapeFor(Algorithm alg)
{
    return algorithmInfo(alg).sparseOrder == 3
               ? ProblemShape::forTensor3(alg, 300, 240, 180)
               : ProblemShape::forMatrix(alg, 1000, 800);
}

std::vector<AsymptoticBounds>
sampledBounds(Algorithm alg, u32 count, u64 seed)
{
    ProblemShape shape = shapeFor(alg);
    SuperScheduleSpace space(alg, shape);
    Rng rng(seed);
    std::vector<AsymptoticBounds> out;
    while (out.size() < count) {
        SuperSchedule s = space.sample(rng);
        if (analysis::verifySchedule(s, shape).hasErrors())
            continue; // Sampler invariant; guard anyway.
        out.push_back(analysis::asymptoticBounds(s, shape));
    }
    return out;
}

TEST(AsymDominanceProperty, StrictPartialOrderPerAlgorithm)
{
    for (Algorithm alg : allAlgorithms()) {
        SCOPED_TRACE(algorithmName(alg));
        // 32 profiles -> 32*31 = 992 ordered pairs per algorithm, well
        // past the ~500-pair floor the property needs to be meaningful.
        auto bounds = sampledBounds(alg, 32, 0xA57 + static_cast<u64>(alg));
        const std::size_t n = bounds.size();

        std::vector<std::vector<bool>> dom(n, std::vector<bool>(n, false));
        std::size_t edges = 0;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                dom[i][j] = analysis::dominates(bounds[i], bounds[j]);
                edges += dom[i][j];
            }
        }
        // Irreflexive.
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_FALSE(dom[i][i]) << "profile " << i << " dominates itself";
        // Antisymmetric.
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                EXPECT_FALSE(dom[i][j] && dom[j][i])
                    << "mutual domination between " << i << " and " << j;
            }
        }
        // Transitive.
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (!dom[i][j])
                    continue;
                for (std::size_t k = 0; k < n; ++k) {
                    if (dom[j][k]) {
                        EXPECT_TRUE(dom[i][k])
                            << i << " dom " << j << " dom " << k
                            << " but not " << i << " dom " << k;
                    }
                }
            }
        }
        // The relation must not be vacuous on a random sample: the space
        // is full of discordant orders a concordant sibling beats.
        EXPECT_GT(edges, 0u) << "no dominated pair in the whole sample";
    }
}

TEST(AsymDominanceProperty, ParetoFilterKeepsExactlyTheNonDominated)
{
    for (Algorithm alg : allAlgorithms()) {
        SCOPED_TRACE(algorithmName(alg));
        auto bounds = sampledBounds(alg, 32, 0xBEE + static_cast<u64>(alg));
        auto kept = analysis::paretoFilter(bounds);

        std::vector<bool> isKept(bounds.size(), false);
        for (std::size_t i : kept) {
            ASSERT_LT(i, bounds.size());
            isKept[i] = true;
        }
        for (std::size_t i = 0; i < bounds.size(); ++i) {
            bool dominated = false;
            std::size_t by = 0;
            for (std::size_t j = 0; j < bounds.size(); ++j) {
                if (j != i && analysis::dominates(bounds[j], bounds[i])) {
                    dominated = true;
                    by = j;
                    break;
                }
            }
            if (isKept[i]) {
                // No dominated element survives the filter.
                EXPECT_FALSE(dominated)
                    << "kept profile " << i << " is dominated by " << by;
            } else {
                // No incomparable element is dropped: every casualty has a
                // dominator, and (dominance being transitive and acyclic)
                // one of its dominators is itself kept.
                EXPECT_TRUE(dominated)
                    << "non-dominated profile " << i << " was dropped";
                bool keptDominator = false;
                for (std::size_t j : kept)
                    keptDominator = keptDominator ||
                                    analysis::dominates(bounds[j], bounds[i]);
                EXPECT_TRUE(keptDominator)
                    << "dropped profile " << i << " has no kept dominator";
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Soundness differential: same winner, strictly fewer measurements
// ---------------------------------------------------------------------------

class AsymFilterAB : public ::testing::Test
{
  protected:
    void SetUp() override { setLogLevel(LogLevel::Off); }
    void TearDown() override { setLogLevel(LogLevel::Info); }

    static WacoOptions
    smallOptions(bool filter)
    {
        WacoOptions opt;
        opt.extractorConfig.channels = 8;
        opt.extractorConfig.numLayers = 4;
        opt.extractorConfig.featureDim = 32;
        opt.schedulesPerMatrix = 10;
        // topK past the node count: every graph schedule reaches the
        // remeasurement pass, so the filter sees the full candidate set.
        opt.topK = 128;
        opt.efSearch = 160;
        opt.pruneCandidates = true;
        opt.asymFilter = filter;
        return opt;
    }

    /** Seeded A/B on @p alg: identical tuners except for asymFilter. */
    static void
    runAB(Algorithm alg)
    {
        bool threeD = algorithmInfo(alg).sparseOrder == 3;
        WacoTuner with(alg, MachineConfig::intel24(), smallOptions(true));
        WacoTuner without(alg, MachineConfig::intel24(),
                          smallOptions(false));

        CorpusOptions copt;
        copt.count = 3;
        copt.minDim = 192;
        copt.maxDim = 320;
        copt.minNnz = 800;
        copt.maxNnz = 2500;
        u64 seed = 0xAB0 + static_cast<u64>(alg);
        CostDataset ds;
        if (threeD) {
            auto corpus = makeCorpus3d(copt, seed);
            ds = buildDataset3d(alg, corpus, with.oracle(), 10, seed + 1);
        } else {
            auto corpus = makeCorpus(copt, seed);
            ds = buildDataset(alg, corpus, with.oracle(), 10, seed + 1);
        }
        // Same dataset + same seed: both tuners hold identical graphs.
        with.attachDataset(ds);
        without.attachDataset(ds);
        ASSERT_EQ(with.graphSchedules().size(),
                  without.graphSchedules().size());
        ASSERT_LE(with.graphSchedules().size(),
                  static_cast<std::size_t>(smallOptions(true).topK));

        Rng rng(seed + 2);
        TuneOutcome a, b;
        if (threeD) {
            auto t = genTensor3(200, 160, 120, 3000, rng);
            a = with.tune3d(t);
            b = without.tune3d(t);
        } else {
            auto m = genUniform(256, 256, 2000, rng);
            a = with.tune(m);
            b = without.tune(m);
        }

        // Identical measured winner...
        EXPECT_EQ(a.best.key(), b.best.key());
        EXPECT_EQ(a.bestMeasured.seconds, b.bestMeasured.seconds);
        EXPECT_FALSE(a.fellBack);
        // ...with strictly fewer backend measurements: the filter found
        // dominated candidates and none of them reached the backend.
        EXPECT_GT(a.asymRejected, 0u) << "no dominated candidate in top-k";
        EXPECT_GT(a.asymKept, 0u);
        EXPECT_EQ(b.asymRejected, 0u);
        EXPECT_EQ(b.asymKept, 0u);
        EXPECT_LT(a.remeasureStats.attempts, b.remeasureStats.attempts);
        // The filtered run measured exactly the kept candidates (minus
        // canonical-duplicate reuse, identical in both runs).
        EXPECT_EQ(a.topK.size() + a.asymRejected, b.topK.size());
    }
};

TEST_F(AsymFilterAB, SpMV) { runAB(Algorithm::SpMV); }
TEST_F(AsymFilterAB, SpMM) { runAB(Algorithm::SpMM); }
TEST_F(AsymFilterAB, SDDMM) { runAB(Algorithm::SDDMM); }
TEST_F(AsymFilterAB, MTTKRP) { runAB(Algorithm::MTTKRP); }
TEST_F(AsymFilterAB, FusedSDDMMSpMM)
{
    runAB(Algorithm::FusedSDDMMSpMM);
}

// ---------------------------------------------------------------------------
// Oracle agreement: pruning decisions respect the measured order up to eps
// ---------------------------------------------------------------------------

TEST_F(AsymFilterAB, PrunedCandidateNeverBeatsWinnerByMoreThanEpsilon)
{
    // The filter's soundness assumption, checked WHERE THE FILTER ACTS:
    // over the measured (unfiltered) top-k population of a real tuner
    // run, every candidate the stage-0 relation would drop measures no
    // better than (1 - eps) x the unfiltered winner — so dropping it
    // unmeasured can never displace the winner by more than eps. A
    // pairwise epsilon bound at one fixed small shape would instead be
    // dominated by the constants the asymptotic model deliberately
    // ignores (split sizes alone span 1..256, thread/chunk choices more),
    // which is why the claim is stated over pruning decisions, not over
    // arbitrary dominance pairs.
    constexpr double kEpsilon = 0.25;

    for (Algorithm alg : allAlgorithms()) {
        SCOPED_TRACE(algorithmName(alg));
        bool threeD = algorithmInfo(alg).sparseOrder == 3;
        WacoTuner without(alg, MachineConfig::intel24(),
                          smallOptions(false));

        CorpusOptions copt;
        copt.count = 3;
        copt.minDim = 192;
        copt.maxDim = 320;
        copt.minNnz = 800;
        copt.maxNnz = 2500;
        u64 seed = 0xAB0 + static_cast<u64>(alg);
        CostDataset ds;
        if (threeD) {
            auto corpus = makeCorpus3d(copt, seed);
            ds = buildDataset3d(alg, corpus, without.oracle(), 10, seed + 1);
        } else {
            auto corpus = makeCorpus(copt, seed);
            ds = buildDataset(alg, corpus, without.oracle(), 10, seed + 1);
        }
        without.attachDataset(ds);

        Rng rng(seed + 2);
        TuneOutcome b;
        ProblemShape shape;
        if (threeD) {
            auto t = genTensor3(200, 160, 120, 3000, rng);
            shape = ProblemShape::forTensor3(alg, t.dimI(), t.dimK(),
                                             t.dimL());
            b = without.tune3d(t);
        } else {
            auto m = genUniform(256, 256, 2000, rng);
            shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
            b = without.tune(m);
        }
        ASSERT_FALSE(b.fellBack);
        ASSERT_GT(b.topK.size(), 0u);

        // Replay the stage-0 filter over the measured candidate list, in
        // order, exactly as the tuner would have run it.
        std::vector<AsymptoticBounds> kept;
        std::size_t dropped = 0;
        for (std::size_t i = 0; i < b.topK.size(); ++i) {
            AsymptoticBounds bd =
                analysis::asymptoticBounds(b.topK[i], shape);
            bool pruned = false;
            for (const auto& k : kept) {
                if (analysis::prunes(k, bd)) {
                    pruned = true;
                    break;
                }
            }
            if (!pruned) {
                kept.push_back(std::move(bd));
                continue;
            }
            ++dropped;
            if (i < b.topKMeasured.size() && b.topKMeasured[i].valid) {
                EXPECT_GE(b.topKMeasured[i].seconds,
                          b.bestMeasured.seconds * (1.0 - kEpsilon))
                    << "pruning " << b.topK[i].key() << " ("
                    << b.topKMeasured[i].seconds
                    << "s) would displace the winner " << b.best.key()
                    << " (" << b.bestMeasured.seconds << "s)";
            }
        }
        // The agreement claim must not pass vacuously.
        EXPECT_GT(dropped, 0u) << "filter replay dropped no candidate";
    }
}

} // namespace
} // namespace waco
