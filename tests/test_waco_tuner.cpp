/**
 * @file
 * End-to-end integration tests of the WacoTuner pipeline: dataset ->
 * training -> KNN graph -> ANNS search -> top-k re-measurement, for both
 * 2D kernels and MTTKRP, on deliberately tiny configurations.
 */
#include <gtest/gtest.h>

#include "core/waco_tuner.hpp"
#include "data/generators.hpp"
#include "util/logging.hpp"

namespace waco {
namespace {

WacoOptions
tinyOptions()
{
    WacoOptions opt;
    opt.extractorConfig.channels = 8;
    opt.extractorConfig.numLayers = 4;
    opt.extractorConfig.featureDim = 32;
    opt.schedulesPerMatrix = 12;
    opt.train.epochs = 4;
    opt.train.batchSchedules = 10;
    opt.topK = 5;
    opt.efSearch = 16;
    return opt;
}

class WacoTunerTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogLevel(LogLevel::Off); }
    void TearDown() override { setLogLevel(LogLevel::Info); }
};

TEST_F(WacoTunerTest, EndToEndSpmm)
{
    CorpusOptions copt;
    copt.count = 8;
    copt.minDim = 256;
    copt.maxDim = 1024;
    copt.minNnz = 800;
    copt.maxNnz = 4000;
    auto corpus = makeCorpus(copt, 51);

    WacoTuner tuner(Algorithm::SpMM, MachineConfig::intel24(), tinyOptions());
    auto history = tuner.train(corpus);
    EXPECT_EQ(history.size(), 4u);
    EXPECT_GT(tuner.graphSchedules().size(), 20u);

    Rng rng(52);
    auto test_matrix = genDenseBlocks(512, 512, 8, 60, 0.9, rng);
    auto outcome = tuner.tune(test_matrix);
    EXPECT_TRUE(outcome.bestMeasured.valid);
    EXPECT_GT(outcome.bestMeasured.seconds, 0.0);
    EXPECT_LE(outcome.topK.size(), 5u);
    EXPECT_GE(outcome.topK.size(), 1u);
    EXPECT_GT(outcome.costEvaluations, 0u);
    EXPECT_GT(outcome.featureSeconds, 0.0);
    EXPECT_GT(outcome.tuningSeconds(), 0.0);
    EXPECT_GT(outcome.convertSeconds, 0.0);

    // The winner must beat (or at worst match) the slowest top-k candidate
    // it was re-measured against — otherwise "fastest of top-k" is broken.
    for (const auto& m : outcome.topKMeasured) {
        if (m.valid) {
            EXPECT_LE(outcome.bestMeasured.seconds, m.seconds + 1e-12);
        }
    }
}

/** The fused workspace kernel rides the identical pipeline: dataset
 *  sampling gates on the schedule verifier (S015 keeps scope loops
 *  outermost), the oracle walks fused nests, and tune() re-measures the
 *  top-k — a full tune→measure→train cycle over FusedSDDMMSpMM. */
TEST_F(WacoTunerTest, EndToEndFusedSddmmSpmm)
{
    CorpusOptions copt;
    copt.count = 8;
    copt.minDim = 256;
    copt.maxDim = 1024;
    copt.minNnz = 800;
    copt.maxNnz = 4000;
    auto corpus = makeCorpus(copt, 53);

    WacoTuner tuner(Algorithm::FusedSDDMMSpMM, MachineConfig::intel24(),
                    tinyOptions());
    auto history = tuner.train(corpus);
    EXPECT_EQ(history.size(), 4u);
    EXPECT_GT(tuner.graphSchedules().size(), 20u);

    Rng rng(54);
    auto test_matrix = genDenseBlocks(512, 512, 8, 60, 0.9, rng);
    auto outcome = tuner.tune(test_matrix);
    EXPECT_TRUE(outcome.bestMeasured.valid);
    EXPECT_GT(outcome.bestMeasured.seconds, 0.0);
    EXPECT_LE(outcome.topK.size(), 5u);
    EXPECT_GE(outcome.topK.size(), 1u);
    EXPECT_GT(outcome.costEvaluations, 0u);
    for (const auto& m : outcome.topKMeasured) {
        if (m.valid) {
            EXPECT_LE(outcome.bestMeasured.seconds, m.seconds + 1e-12);
        }
    }
}

TEST_F(WacoTunerTest, EndToEndMttkrp)
{
    CorpusOptions copt;
    copt.count = 4;
    copt.minDim = 128;
    copt.maxDim = 256;
    copt.minNnz = 500;
    copt.maxNnz = 1500;
    auto corpus = makeCorpus3d(copt, 61);

    WacoTuner tuner(Algorithm::MTTKRP, MachineConfig::intel24(),
                    tinyOptions());
    tuner.train3d(corpus);

    Rng rng(62);
    auto t = genTensor3(100, 90, 80, 900, rng);
    auto outcome = tuner.tune3d(t);
    EXPECT_TRUE(outcome.bestMeasured.valid);
    EXPECT_GT(outcome.bestMeasured.seconds, 0.0);
}

TEST_F(WacoTunerTest, TuneBeforeTrainThrows)
{
    WacoTuner tuner(Algorithm::SpMV, MachineConfig::intel24(), tinyOptions());
    Rng rng(63);
    auto m = genUniform(128, 128, 500, rng);
    EXPECT_THROW(tuner.tune(m), FatalError);
}

TEST_F(WacoTunerTest, TunedScheduleIsCompetitiveWithDefault)
{
    // On a pattern family present in training, WACO's pick should not be
    // drastically worse than the fixed default — and usually better.
    CorpusOptions copt;
    copt.count = 8;
    copt.minDim = 512;
    copt.maxDim = 1024;
    copt.minNnz = 2000;
    copt.maxNnz = 8000;
    auto corpus = makeCorpus(copt, 71);
    auto opt = tinyOptions();
    opt.train.epochs = 6;
    WacoTuner tuner(Algorithm::SpMV, MachineConfig::intel24(), opt);
    tuner.train(corpus);

    Rng rng(72);
    auto m = genPowerLawRows(1024, 1024, 8000, 1.3, rng);
    auto outcome = tuner.tune(m);
    auto shape = ProblemShape::forMatrix(Algorithm::SpMV, 1024, 1024);
    auto def = tuner.oracle().measure(m, shape, defaultSchedule(shape));
    EXPECT_LT(outcome.bestMeasured.seconds, def.seconds * 1.5);
}

} // namespace
} // namespace waco
