/**
 * @file
 * MatrixMarket I/O tests: parsing the format variants SuiteSparse uses
 * (real/pattern, general/symmetric), round-tripping, and error handling.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "tensor/mmio.hpp"
#include "util/rng.hpp"

namespace waco {
namespace {

TEST(Mmio, ParsesRealGeneral)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "3 4 3\n"
        "1 1 1.5\n"
        "2 3 -2.0\n"
        "3 4 0.25\n");
    auto m = readMatrixMarket(in, "t");
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_FLOAT_EQ(m.values()[0], 1.5f);
    EXPECT_EQ(m.name(), "t");
}

TEST(Mmio, ParsesPatternSymmetric)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "3 3 2\n"
        "2 1\n"
        "3 3\n");
    auto m = readMatrixMarket(in);
    // (2,1) mirrored to (1,2); diagonal (3,3) not duplicated.
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_FLOAT_EQ(m.values()[0], 1.0f);
}

TEST(Mmio, RejectsMalformed)
{
    std::istringstream bad1("not a banner\n1 1 0\n");
    EXPECT_THROW(readMatrixMarket(bad1), FatalError);
    std::istringstream bad2(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n"); // out of bounds
    EXPECT_THROW(readMatrixMarket(bad2), FatalError);
    std::istringstream bad3(
        "%%MatrixMarket matrix array real general\n2 2\n");
    EXPECT_THROW(readMatrixMarket(bad3), FatalError);
}

TEST(Mmio, RejectsGarbageSizeLine)
{
    // Before hardening this silently parsed as entries=0 -> empty matrix.
    std::istringstream bad(
        "%%MatrixMarket matrix coordinate real general\n"
        "not numbers at all\n");
    EXPECT_THROW(readMatrixMarket(bad), FatalError);
    std::istringstream partial(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 4\n"); // entry count missing
    EXPECT_THROW(readMatrixMarket(partial), FatalError);
}

TEST(Mmio, RejectsNonFiniteValues)
{
    for (const char* v : {"nan", "inf", "-inf"}) {
        std::istringstream in(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 1 " + std::string(v) + "\n");
        EXPECT_THROW(readMatrixMarket(in), FatalError) << v;
    }
}

TEST(Mmio, RejectsMissingValueField)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1\n"); // real field but no value
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(Mmio, RejectsDimensionOverflow)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "5000000000 2 1\n"
        "1 1 1.0\n"); // rows > u32 max
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(Mmio, RejectsUnparseableEntryLine)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "one one 1.0\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(Mmio, WriteReadRoundTrip)
{
    Rng rng(3);
    std::vector<Triplet> t;
    for (int n = 0; n < 50; ++n) {
        t.push_back({static_cast<u32>(rng.index(20)),
                     static_cast<u32>(rng.index(30)),
                     static_cast<float>(rng.uniformInt(1, 100)) / 4.0f});
    }
    SparseMatrix m(20, 30, t);
    std::ostringstream out;
    writeMatrixMarket(m, out);
    std::istringstream in(out.str());
    auto back = readMatrixMarket(in);
    EXPECT_EQ(back, m);
}

TEST(Mmio, FileRoundTripAndNameExtraction)
{
    SparseMatrix m(2, 2, {{0, 1, 3.0f}});
    std::string path = ::testing::TempDir() + "/waco_case.mtx";
    writeMatrixMarketFile(m, path);
    auto back = readMatrixMarketFile(path);
    EXPECT_EQ(back.name(), "waco_case");
    EXPECT_EQ(back.nnz(), 1u);
    std::remove(path.c_str());
    EXPECT_THROW(readMatrixMarketFile("/nonexistent/nope.mtx"), FatalError);
}

} // namespace
} // namespace waco
