/**
 * @file
 * Black-box SuperSchedule tuners compared against ANNS in Figure 16:
 *
 *  - RandomSearch       — uniform sampling baseline.
 *  - TpeTuner           — a Tree-structured Parzen Estimator in the style
 *                         of HyperOpt [6]: candidates are scored by the
 *                         good/bad density ratio of their parameters, and
 *                         the surrogate bookkeeping dominates the runtime,
 *                         exactly the overhead the paper measures.
 *  - BanditEnsembleTuner— an OpenTuner-style [3] multi-armed-bandit
 *                         ensemble of search operators (random, mutate
 *                         elite, crossover).
 *
 * All tuners minimize an arbitrary cost function over a SuperScheduleSpace
 * and report how much of their wall time was spent inside the cost function
 * versus on their own metadata (the Section 4.2 proportion argument).
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/schedule.hpp"
#include "util/timer.hpp"

namespace waco {

/** Cost callback: predicted runtime of a schedule (lower is better). */
using CostFn = std::function<double(const SuperSchedule&)>;

/** Outcome of one tuning run. */
struct TuneResult
{
    SuperSchedule best;
    double bestCost = 0.0;
    u64 trials = 0;              ///< Cost-function evaluations.
    double totalSeconds = 0.0;   ///< Whole search wall time.
    double evalSeconds = 0.0;    ///< Time inside the cost function.
    std::vector<double> bestSoFar; ///< Best cost after each trial (Fig 16a).

    /** Fraction of time spent evaluating costs (higher = leaner tuner). */
    double
    evalProportion() const
    {
        return totalSeconds > 0.0 ? evalSeconds / totalSeconds : 0.0;
    }
};

/** Interface for black-box tuners. */
class Tuner
{
  public:
    virtual ~Tuner() = default;
    virtual std::string name() const = 0;

    /** Minimize @p cost with at most @p trials evaluations. */
    virtual TuneResult search(const SuperScheduleSpace& space,
                              const CostFn& cost, u64 trials, u64 seed) = 0;
};

/** Uniform random sampling. */
class RandomSearch final : public Tuner
{
  public:
    std::string name() const override { return "Random"; }
    TuneResult search(const SuperScheduleSpace& space, const CostFn& cost,
                      u64 trials, u64 seed) override;
};

/** HyperOpt-style TPE. */
class TpeTuner final : public Tuner
{
  public:
    explicit TpeTuner(double gamma = 0.25, u32 candidates_per_step = 24)
        : gamma_(gamma), candidates_(candidates_per_step)
    {}

    std::string name() const override { return "HyperOpt(TPE)"; }
    TuneResult search(const SuperScheduleSpace& space, const CostFn& cost,
                      u64 trials, u64 seed) override;

  private:
    double gamma_;
    u32 candidates_;
};

/** OpenTuner-style bandit ensemble. */
class BanditEnsembleTuner final : public Tuner
{
  public:
    std::string name() const override { return "OpenTuner(bandit)"; }
    TuneResult search(const SuperScheduleSpace& space, const CostFn& cost,
                      u64 trials, u64 seed) override;
};

} // namespace waco
