#include "annsearch/tuners.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

namespace waco {

namespace {

/** Shared bookkeeping: evaluate, time, and track the best-so-far curve. */
struct Recorder
{
    const CostFn& cost;
    TuneResult& result;

    double
    eval(const SuperSchedule& s)
    {
        Timer t;
        double c = cost(s);
        result.evalSeconds += t.seconds();
        ++result.trials;
        if (result.bestSoFar.empty() || c < result.bestCost) {
            result.bestCost = c;
            result.best = s;
        }
        result.bestSoFar.push_back(result.bestCost);
        return c;
    }
};

/** Flatten the tunable parameters of a schedule into small integer tokens
 *  (one per parameter group) for the TPE density estimate. */
std::vector<u32>
tokenize(const SuperSchedule& s)
{
    std::vector<u32> t;
    for (u32 idx = 0; idx < 4; ++idx)
        t.push_back(log2Floor(std::max<u32>(1, s.splits[idx])));
    t.push_back(s.parallelSlot);
    t.push_back(s.numThreads);
    t.push_back(log2Floor(std::max<u32>(1, s.ompChunk)));
    for (u32 slot : s.loopOrder)
        t.push_back(slot);
    for (u32 slot : s.sparseLevelOrder)
        t.push_back(slot);
    for (auto f : s.sparseLevelFormats)
        t.push_back(f == LevelFormat::Compressed ? 1 : 0);
    for (bool rm : s.denseRowMajor)
        t.push_back(rm ? 1 : 0);
    return t;
}

} // namespace

TuneResult
RandomSearch::search(const SuperScheduleSpace& space, const CostFn& cost,
                     u64 trials, u64 seed)
{
    TuneResult result;
    Recorder rec{cost, result};
    Rng rng(seed);
    Timer total;
    for (u64 n = 0; n < trials; ++n)
        rec.eval(space.sample(rng));
    result.totalSeconds = total.seconds();
    return result;
}

TuneResult
TpeTuner::search(const SuperScheduleSpace& space, const CostFn& cost,
                 u64 trials, u64 seed)
{
    TuneResult result;
    Recorder rec{cost, result};
    Rng rng(seed);
    Timer total;

    struct Observation
    {
        SuperSchedule s;
        std::vector<u32> tokens;
        double cost;
    };
    std::vector<Observation> history;

    u64 warmup = std::min<u64>(trials, 16);
    for (u64 n = 0; n < warmup; ++n) {
        auto s = space.sample(rng);
        history.push_back({s, tokenize(s), rec.eval(s)});
    }

    while (result.trials < trials) {
        // Surrogate update: split history into good (lowest gamma fraction)
        // and bad, and build per-position token frequency tables. This is
        // the "metadata" cost that makes Bayesian tuners slow (Fig. 16).
        std::sort(history.begin(), history.end(),
                  [](const Observation& a, const Observation& b) {
                      return a.cost < b.cost;
                  });
        std::size_t n_good = std::max<std::size_t>(
            2, static_cast<std::size_t>(gamma_ * history.size()));
        n_good = std::min(n_good, history.size());
        std::size_t n_tokens = history.front().tokens.size();
        std::vector<std::map<u32, double>> good(n_tokens), bad(n_tokens);
        for (std::size_t h = 0; h < history.size(); ++h) {
            auto& tables = h < n_good ? good : bad;
            for (std::size_t p = 0; p < n_tokens; ++p)
                tables[p][history[h].tokens[p]] += 1.0;
        }
        auto log_ratio = [&](const std::vector<u32>& tokens) {
            double lr = 0.0;
            for (std::size_t p = 0; p < n_tokens; ++p) {
                double g = 1.0, b = 1.0; // Laplace smoothing
                if (auto it = good[p].find(tokens[p]); it != good[p].end())
                    g += it->second;
                if (auto it = bad[p].find(tokens[p]); it != bad[p].end())
                    b += it->second;
                lr += std::log(g / static_cast<double>(n_good + 1)) -
                      std::log(b / static_cast<double>(history.size() -
                                                       n_good + 1));
            }
            return lr;
        };

        // Generate candidates near good observations + fresh samples, pick
        // the one maximizing the good/bad density ratio.
        SuperSchedule best_cand = space.sample(rng);
        double best_lr = log_ratio(tokenize(best_cand));
        for (u32 c = 1; c < candidates_; ++c) {
            SuperSchedule cand = rng.bernoulli(0.3)
                ? space.sample(rng)
                : space.mutate(history[rng.index(n_good)].s, rng);
            double lr = log_ratio(tokenize(cand));
            if (lr > best_lr) {
                best_lr = lr;
                best_cand = cand;
            }
        }
        history.push_back({best_cand, tokenize(best_cand),
                           rec.eval(best_cand)});
    }
    result.totalSeconds = total.seconds();
    return result;
}

TuneResult
BanditEnsembleTuner::search(const SuperScheduleSpace& space, const CostFn& cost,
                            u64 trials, u64 seed)
{
    TuneResult result;
    Recorder rec{cost, result};
    Rng rng(seed);
    Timer total;

    struct Elite
    {
        SuperSchedule s;
        double cost;
    };
    std::vector<Elite> elites;
    auto remember = [&](const SuperSchedule& s, double c) {
        elites.push_back({s, c});
        std::sort(elites.begin(), elites.end(),
                  [](const Elite& a, const Elite& b) {
                      return a.cost < b.cost;
                  });
        if (elites.size() > 12)
            elites.resize(12);
    };

    constexpr u32 kArms = 3; // random / mutate-elite / crossover
    std::array<double, kArms> reward = {1.0, 1.0, 1.0};
    std::array<double, kArms> pulls = {1.0, 1.0, 1.0};

    for (u64 n = 0; n < trials; ++n) {
        // UCB1 arm selection (OpenTuner's bandit over operators).
        u32 arm = 0;
        double best_ucb = -1.0;
        for (u32 a = 0; a < kArms; ++a) {
            double ucb = reward[a] / pulls[a] +
                         std::sqrt(2.0 * std::log(static_cast<double>(n + 2)) /
                                   pulls[a]);
            if (ucb > best_ucb) {
                best_ucb = ucb;
                arm = a;
            }
        }
        SuperSchedule cand;
        if (arm == 0 || elites.empty()) {
            cand = space.sample(rng);
        } else if (arm == 1) {
            cand = space.mutate(elites[rng.index(elites.size())].s, rng);
        } else {
            // Crossover: take the compute half from one elite, the format
            // half from another.
            const auto& a = elites[rng.index(elites.size())].s;
            const auto& b = elites[rng.index(elites.size())].s;
            cand = a;
            cand.sparseLevelOrder = b.sparseLevelOrder;
            cand.sparseLevelFormats = b.sparseLevelFormats;
            cand.denseRowMajor = b.denseRowMajor;
        }
        double before = result.bestSoFar.empty() ? 1e30 : result.bestCost;
        double c = rec.eval(cand);
        pulls[arm] += 1.0;
        if (c < before)
            reward[arm] += 1.0;
        remember(cand, c);
    }
    result.totalSeconds = total.seconds();
    return result;
}

} // namespace waco
