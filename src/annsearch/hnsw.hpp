/**
 * @file
 * Hierarchical Navigable Small World graphs (Malkov & Yashunin [31]), the
 * ANNS index WACO builds over program embeddings (Section 4.2.2).
 *
 * The index is built with the l2 metric between embeddings. At query time
 * WACO does NOT query with a vector: it walks the same graph greedily under
 * a *generic* distance — the cost model's predicted runtime — which the KNN
 * graph's small-world property supports (Tan et al. [44]). searchGeneric()
 * implements that walk; searchGenericBatched() is the same walk but scores
 * each expanded node's unvisited neighbors in ONE callback, so a learned
 * scorer can amortize its MLP into a real batched GEMM instead of
 * batch-size-1 calls. Both walks visit nodes in the same order and return
 * identical hits. searchKnn() is the classic vector query (used by tests
 * and the graph-quality diagnostics).
 *
 * Queries share an epoch-stamped visited array instead of building an
 * unordered_set per call, so the index is NOT safe for concurrent queries
 * from multiple threads (match the rest of the tuner, which queries from
 * one thread).
 */
#pragma once

#include <functional>
#include <vector>

#include "nn/mat.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace waco {

/** One search hit: node id + its distance/score. */
struct HnswHit
{
    u32 id;
    double dist;
};

/** HNSW index over fixed-width float vectors. */
class Hnsw
{
  public:
    /**
     * @param dim vector width
     * @param m max neighbors per node per layer (M)
     * @param ef_construction beam width during insertion
     */
    Hnsw(u32 dim, u32 m = 16, u32 ef_construction = 100, u64 seed = 99);

    /** Insert one vector; returns its node id. */
    u32 add(const float* v);

    /** Number of indexed vectors. */
    u32 size() const { return static_cast<u32>(levels_.size()); }

    /** Classic KNN query with the l2 metric. */
    std::vector<HnswHit> searchKnn(const float* q, u32 k, u32 ef = 64) const;

    /**
     * Greedy beam search under an arbitrary scoring function
     * score(node id) -> double (lower is better). This is WACO's
     * search phase: score is the predicted runtime of the node's schedule.
     *
     * @param score generic distance; evaluated lazily and memoized by the
     *        caller if desired
     * @param k number of results
     * @param ef beam width
     * @param evals incremented once per score() call (for Fig. 16 stats)
     */
    std::vector<HnswHit> searchGeneric(
        const std::function<double(u32)>& score, u32 k, u32 ef,
        u64* evals = nullptr) const;

    /**
     * Batched scorer: fill out[0..count) with the scores of ids[0..count).
     * Called once per expanded node with all its unvisited neighbors.
     */
    using BatchScoreFn =
        std::function<void(const u32* ids, u32 count, double* out)>;

    /** Cooperative-stop poll: checked once per frontier expansion. */
    using StopFn = std::function<bool()>;

    /**
     * searchGeneric with frontier-batched scoring: every expansion collects
     * the popped node's unvisited neighbors and issues a single score call
     * for the whole set. Visit order, eval count, and returned hits are
     * identical to searchGeneric with a pointwise scorer computing the
     * same values.
     *
     * @param should_stop polled before each frontier expansion; when it
     *        returns true the walk stops and returns the best hits found so
     *        far (a valid, bounded-quality prefix of the full search — the
     *        entry point is always scored, so the result is never empty on
     *        a non-empty index). Empty function = never stop.
     */
    std::vector<HnswHit> searchGenericBatched(
        const BatchScoreFn& score, u32 k, u32 ef, u64* evals = nullptr,
        const StopFn& should_stop = {}) const;

    /** Layer-0 adjacency of a node (for diagnostics/tests). */
    const std::vector<u32>& neighbors(u32 id) const
    {
        return links_[0][id];
    }

    /**
     * Squared l2 accumulated in float lanes with a single final reduction
     * (the SIMD-friendly kernel the index uses everywhere). Exposed so
     * tests can pin its recall against l2Reference.
     */
    static double l2Distance(const float* a, const float* b, u32 dim);

    /** Element-by-element double-precision reference distance. */
    static double l2Reference(const float* a, const float* b, u32 dim);

  private:
    double
    l2(const float* a, const float* b) const
    {
        return l2Distance(a, b, dim_);
    }
    const float* vec(u32 id) const { return data_.data() + static_cast<std::size_t>(id) * dim_; }

    /** Greedy descent to the closest node at a layer. @p evals counts the
     *  l2 evaluations performed (flushed to the metrics registry by the
     *  public entry points). */
    u32 greedyAt(const float* q, u32 entry, u32 layer, u64* evals) const;

    /** Beam search at one layer; returns up to ef closest. */
    std::vector<HnswHit> beamAt(const float* q, u32 entry, u32 layer,
                                u32 ef, u64* evals) const;

    /** Start a fresh visited epoch (resets lazily via stamping). */
    void beginVisit() const;

    /** Mark a node visited; false when already visited this epoch. */
    bool tryVisit(u32 id) const;

    u32 dim_;
    u32 m_;
    u32 efc_;
    Rng rng_;
    std::vector<float> data_;
    std::vector<u32> levels_;                       ///< Top layer per node.
    std::vector<std::vector<std::vector<u32>>> links_; ///< [layer][node] -> nbrs.
    u32 entry_ = 0;
    u32 max_level_ = 0;

    // Epoch-stamped visited set shared across queries: visited iff
    // stamp[id] == epoch. Avoids an unordered_set allocation per query.
    mutable std::vector<u32> visitStamp_;
    mutable u32 visitEpoch_ = 0;
};

} // namespace waco
