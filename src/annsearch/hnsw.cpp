#include "annsearch/hnsw.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

namespace waco {

namespace {

/** Max-heap entry ordered by distance (farthest on top). */
struct FarFirst
{
    bool
    operator()(const HnswHit& a, const HnswHit& b) const
    {
        return a.dist < b.dist;
    }
};

/** Min-heap entry ordered by distance (closest on top). */
struct NearFirst
{
    bool
    operator()(const HnswHit& a, const HnswHit& b) const
    {
        return a.dist > b.dist;
    }
};

} // namespace

Hnsw::Hnsw(u32 dim, u32 m, u32 ef_construction, u64 seed)
    : dim_(dim), m_(m), efc_(ef_construction), rng_(seed)
{
}

double
Hnsw::l2(const float* a, const float* b) const
{
    double s = 0.0;
    for (u32 i = 0; i < dim_; ++i) {
        double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return s;
}

u32
Hnsw::greedyAt(const float* q, u32 entry, u32 layer) const
{
    u32 cur = entry;
    double cur_d = l2(q, vec(cur));
    bool improved = true;
    while (improved) {
        improved = false;
        for (u32 nb : links_[layer][cur]) {
            double d = l2(q, vec(nb));
            if (d < cur_d) {
                cur_d = d;
                cur = nb;
                improved = true;
            }
        }
    }
    return cur;
}

std::vector<HnswHit>
Hnsw::beamAt(const float* q, u32 entry, u32 layer, u32 ef) const
{
    std::priority_queue<HnswHit, std::vector<HnswHit>, NearFirst> candidates;
    std::priority_queue<HnswHit, std::vector<HnswHit>, FarFirst> results;
    std::unordered_set<u32> visited;
    double d0 = l2(q, vec(entry));
    candidates.push({entry, d0});
    results.push({entry, d0});
    visited.insert(entry);
    while (!candidates.empty()) {
        HnswHit c = candidates.top();
        candidates.pop();
        if (c.dist > results.top().dist && results.size() >= ef)
            break;
        for (u32 nb : links_[layer][c.id]) {
            if (!visited.insert(nb).second)
                continue;
            double d = l2(q, vec(nb));
            if (results.size() < ef || d < results.top().dist) {
                candidates.push({nb, d});
                results.push({nb, d});
                if (results.size() > ef)
                    results.pop();
            }
        }
    }
    std::vector<HnswHit> out;
    while (!results.empty()) {
        out.push_back(results.top());
        results.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
}

u32
Hnsw::add(const float* v)
{
    u32 id = size();
    data_.insert(data_.end(), v, v + dim_);
    // Exponentially-distributed level, as in the paper (mL = 1/ln(M)).
    double ml = 1.0 / std::log(static_cast<double>(std::max<u32>(2, m_)));
    u32 level = static_cast<u32>(
        -std::log(std::max(1e-12, rng_.uniformReal())) * ml);
    levels_.push_back(level);
    while (links_.size() <= level)
        links_.emplace_back();
    for (auto& layer : links_)
        layer.resize(size());

    if (id == 0) {
        entry_ = 0;
        max_level_ = level;
        return id;
    }

    u32 cur = entry_;
    for (u32 l = max_level_; l > level && l > 0; --l)
        cur = greedyAt(v, cur, l);

    for (u32 l = std::min(level, max_level_);; --l) {
        auto beam = beamAt(v, cur, l, efc_);
        u32 links = l == 0 ? 2 * m_ : m_;
        u32 take = std::min<u32>(links, static_cast<u32>(beam.size()));
        for (u32 t = 0; t < take; ++t) {
            u32 nb = beam[t].id;
            links_[l][id].push_back(nb);
            links_[l][nb].push_back(id);
            // Prune the neighbor's list to the closest `links` entries.
            if (links_[l][nb].size() > links) {
                auto& lst = links_[l][nb];
                std::sort(lst.begin(), lst.end(), [&](u32 a, u32 b) {
                    return l2(vec(nb), vec(a)) < l2(vec(nb), vec(b));
                });
                lst.resize(links);
            }
        }
        cur = beam.empty() ? cur : beam.front().id;
        if (l == 0)
            break;
    }

    if (level > max_level_) {
        max_level_ = level;
        entry_ = id;
    }
    return id;
}

std::vector<HnswHit>
Hnsw::searchKnn(const float* q, u32 k, u32 ef) const
{
    if (size() == 0)
        return {};
    u32 cur = entry_;
    for (u32 l = max_level_; l > 0; --l)
        cur = greedyAt(q, cur, l);
    auto beam = beamAt(q, cur, 0, std::max(ef, k));
    if (beam.size() > k)
        beam.resize(k);
    return beam;
}

std::vector<HnswHit>
Hnsw::searchGeneric(const std::function<double(u32)>& score, u32 k, u32 ef,
                    u64* evals) const
{
    if (size() == 0)
        return {};
    auto eval = [&](u32 id) {
        if (evals)
            ++(*evals);
        return score(id);
    };
    // Start from the global entry point and walk layer 0 under the generic
    // distance with a beam of width ef.
    std::priority_queue<HnswHit, std::vector<HnswHit>, NearFirst> candidates;
    std::priority_queue<HnswHit, std::vector<HnswHit>, FarFirst> results;
    std::unordered_set<u32> visited;
    double d0 = eval(entry_);
    candidates.push({entry_, d0});
    results.push({entry_, d0});
    visited.insert(entry_);
    while (!candidates.empty()) {
        HnswHit c = candidates.top();
        candidates.pop();
        if (results.size() >= ef && c.dist > results.top().dist)
            break;
        for (u32 nb : links_[0][c.id]) {
            if (!visited.insert(nb).second)
                continue;
            double d = eval(nb);
            if (results.size() < ef || d < results.top().dist) {
                candidates.push({nb, d});
                results.push({nb, d});
                if (results.size() > ef)
                    results.pop();
            }
        }
    }
    std::vector<HnswHit> out;
    while (!results.empty()) {
        out.push_back(results.top());
        results.pop();
    }
    std::reverse(out.begin(), out.end());
    if (out.size() > k)
        out.resize(k);
    return out;
}

} // namespace waco
