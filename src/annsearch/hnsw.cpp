#include "annsearch/hnsw.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/metrics.hpp"

namespace waco {

namespace {

/** Max-heap entry ordered by distance (farthest on top). */
struct FarFirst
{
    bool
    operator()(const HnswHit& a, const HnswHit& b) const
    {
        return a.dist < b.dist;
    }
};

/** Min-heap entry ordered by distance (closest on top). */
struct NearFirst
{
    bool
    operator()(const HnswHit& a, const HnswHit& b) const
    {
        return a.dist > b.dist;
    }
};

} // namespace

Hnsw::Hnsw(u32 dim, u32 m, u32 ef_construction, u64 seed)
    : dim_(dim), m_(m), efc_(ef_construction), rng_(seed)
{
}

double
Hnsw::l2Distance(const float* a, const float* b, u32 dim)
{
    // Accumulate in independent float lanes and reduce once: the loop
    // carries no serial dependence, so it vectorizes without reassociating
    // a scalar reduction.
    float l0 = 0, l1 = 0, l2 = 0, l3 = 0;
    u32 i = 0;
    for (; i + 4 <= dim; i += 4) {
        float d0 = a[i + 0] - b[i + 0];
        float d1 = a[i + 1] - b[i + 1];
        float d2 = a[i + 2] - b[i + 2];
        float d3 = a[i + 3] - b[i + 3];
        l0 += d0 * d0;
        l1 += d1 * d1;
        l2 += d2 * d2;
        l3 += d3 * d3;
    }
    float s = (l0 + l2) + (l1 + l3);
    for (; i < dim; ++i) {
        float d = a[i] - b[i];
        s += d * d;
    }
    return static_cast<double>(s);
}

double
Hnsw::l2Reference(const float* a, const float* b, u32 dim)
{
    double s = 0.0;
    for (u32 i = 0; i < dim; ++i) {
        double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return s;
}

void
Hnsw::beginVisit() const
{
    if (visitStamp_.size() < levels_.size())
        visitStamp_.resize(levels_.size(), visitEpoch_);
    ++visitEpoch_;
    if (visitEpoch_ == 0) {
        // u32 wrap: every stale stamp could alias the new epoch, so clear.
        std::fill(visitStamp_.begin(), visitStamp_.end(), 0u);
        visitEpoch_ = 1;
    }
}

bool
Hnsw::tryVisit(u32 id) const
{
    if (visitStamp_[id] == visitEpoch_)
        return false;
    visitStamp_[id] = visitEpoch_;
    return true;
}

u32
Hnsw::greedyAt(const float* q, u32 entry, u32 layer, u64* evals) const
{
    u32 cur = entry;
    double cur_d = l2(q, vec(cur));
    ++*evals;
    bool improved = true;
    while (improved) {
        improved = false;
        for (u32 nb : links_[layer][cur]) {
            double d = l2(q, vec(nb));
            ++*evals;
            if (d < cur_d) {
                cur_d = d;
                cur = nb;
                improved = true;
            }
        }
    }
    return cur;
}

std::vector<HnswHit>
Hnsw::beamAt(const float* q, u32 entry, u32 layer, u32 ef, u64* evals) const
{
    std::priority_queue<HnswHit, std::vector<HnswHit>, NearFirst> candidates;
    std::priority_queue<HnswHit, std::vector<HnswHit>, FarFirst> results;
    beginVisit();
    double d0 = l2(q, vec(entry));
    ++*evals;
    candidates.push({entry, d0});
    results.push({entry, d0});
    tryVisit(entry);
    while (!candidates.empty()) {
        HnswHit c = candidates.top();
        candidates.pop();
        if (c.dist > results.top().dist && results.size() >= ef)
            break;
        for (u32 nb : links_[layer][c.id]) {
            if (!tryVisit(nb))
                continue;
            double d = l2(q, vec(nb));
            ++*evals;
            if (results.size() < ef || d < results.top().dist) {
                candidates.push({nb, d});
                results.push({nb, d});
                if (results.size() > ef)
                    results.pop();
            }
        }
    }
    std::vector<HnswHit> out;
    while (!results.empty()) {
        out.push_back(results.top());
        results.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
}

u32
Hnsw::add(const float* v)
{
    u32 id = size();
    data_.insert(data_.end(), v, v + dim_);
    // Exponentially-distributed level, as in the paper (mL = 1/ln(M)).
    double ml = 1.0 / std::log(static_cast<double>(std::max<u32>(2, m_)));
    u32 level = static_cast<u32>(
        -std::log(std::max(1e-12, rng_.uniformReal())) * ml);
    levels_.push_back(level);
    while (links_.size() <= level)
        links_.emplace_back();
    // Lazy link-table growth: layer l is only indexed by nodes that exist
    // at layer l, so it only needs to cover ids up to the newest such node
    // — not be resized for every insert at every layer (O(L*N) churn).
    for (u32 l = 0; l <= level; ++l) {
        if (links_[l].size() <= id)
            links_[l].resize(id + 1);
    }

    if (id == 0) {
        entry_ = 0;
        max_level_ = level;
        return id;
    }

    u64 evals = 0;
    u32 cur = entry_;
    for (u32 l = max_level_; l > level && l > 0; --l)
        cur = greedyAt(v, cur, l, &evals);

    for (u32 l = std::min(level, max_level_);; --l) {
        auto beam = beamAt(v, cur, l, efc_, &evals);
        u32 links = l == 0 ? 2 * m_ : m_;
        u32 take = std::min<u32>(links, static_cast<u32>(beam.size()));
        for (u32 t = 0; t < take; ++t) {
            u32 nb = beam[t].id;
            links_[l][id].push_back(nb);
            links_[l][nb].push_back(id);
            // Prune the neighbor's list to the closest `links` entries.
            // Distances are computed once up front: a comparator that
            // recomputes l2 per comparison turns the sort into
            // O(n log n) full-vector distance evaluations.
            if (links_[l][nb].size() > links) {
                auto& lst = links_[l][nb];
                std::vector<std::pair<double, u32>> scored;
                scored.reserve(lst.size());
                evals += lst.size();
                for (u32 x : lst)
                    scored.push_back({l2(vec(nb), vec(x)), x});
                std::sort(scored.begin(), scored.end(),
                          [](const auto& a, const auto& b) {
                              return a.first < b.first;
                          });
                lst.clear();
                for (u32 t2 = 0; t2 < links; ++t2)
                    lst.push_back(scored[t2].second);
            }
        }
        cur = beam.empty() ? cur : beam.front().id;
        if (l == 0)
            break;
    }

    if (level > max_level_) {
        max_level_ = level;
        entry_ = id;
    }
    WACO_COUNT("hnsw.build_evals", evals);
    return id;
}

std::vector<HnswHit>
Hnsw::searchKnn(const float* q, u32 k, u32 ef) const
{
    if (size() == 0)
        return {};
    u64 evals = 0;
    u32 cur = entry_;
    for (u32 l = max_level_; l > 0; --l)
        cur = greedyAt(q, cur, l, &evals);
    auto beam = beamAt(q, cur, 0, std::max(ef, k), &evals);
    WACO_COUNT("hnsw.l2_evals", evals);
    WACO_COUNT("hnsw.searches", 1);
    if (beam.size() > k)
        beam.resize(k);
    return beam;
}

std::vector<HnswHit>
Hnsw::searchGeneric(const std::function<double(u32)>& score, u32 k, u32 ef,
                    u64* evals) const
{
    // Pointwise scoring is the degenerate batch; share one implementation
    // so the two walks cannot drift apart.
    return searchGenericBatched(
        [&](const u32* ids, u32 count, double* out) {
            for (u32 i = 0; i < count; ++i)
                out[i] = score(ids[i]);
        },
        k, ef, evals);
}

std::vector<HnswHit>
Hnsw::searchGenericBatched(const BatchScoreFn& score, u32 k, u32 ef,
                           u64* evals, const StopFn& should_stop) const
{
    if (size() == 0)
        return {};
    // Start from the global entry point and walk layer 0 under the generic
    // distance with a beam of width ef. Each expansion scores every
    // unvisited neighbor of the popped node in one batch, then replays the
    // scores through the heaps in neighbor order — the same sequence of
    // pushes a pointwise walk performs, so results are identical.
    std::priority_queue<HnswHit, std::vector<HnswHit>, NearFirst> candidates;
    std::priority_queue<HnswHit, std::vector<HnswHit>, FarFirst> results;
    beginVisit();
    std::vector<u32> batch_ids;
    std::vector<double> batch_scores;
    u64 n_evals = 0;
    u32 seed_id = entry_;
    double d0 = 0.0;
    score(&seed_id, 1, &d0);
    ++n_evals;
    candidates.push({entry_, d0});
    results.push({entry_, d0});
    tryVisit(entry_);
    while (!candidates.empty()) {
        // Cooperative cancellation: an expired tuning deadline stops the
        // walk here and the hits collected so far are returned — still a
        // valid (if shallower) candidate set, never garbage.
        if (should_stop && should_stop()) {
            WACO_COUNT("hnsw.search_truncated", 1);
            break;
        }
        HnswHit c = candidates.top();
        candidates.pop();
        if (results.size() >= ef && c.dist > results.top().dist)
            break;
        batch_ids.clear();
        for (u32 nb : links_[0][c.id]) {
            if (tryVisit(nb))
                batch_ids.push_back(nb);
        }
        if (batch_ids.empty())
            continue;
        batch_scores.resize(batch_ids.size());
        score(batch_ids.data(), static_cast<u32>(batch_ids.size()),
              batch_scores.data());
        n_evals += batch_ids.size();
        for (std::size_t i = 0; i < batch_ids.size(); ++i) {
            double d = batch_scores[i];
            if (results.size() < ef || d < results.top().dist) {
                candidates.push({batch_ids[i], d});
                results.push({batch_ids[i], d});
                if (results.size() > ef)
                    results.pop();
            }
        }
    }
    std::vector<HnswHit> out;
    while (!results.empty()) {
        out.push_back(results.top());
        results.pop();
    }
    std::reverse(out.begin(), out.end());
    if (out.size() > k)
        out.resize(k);
    if (evals)
        *evals += n_evals;
    WACO_COUNT("hnsw.cost_evals", n_evals);
    WACO_COUNT("hnsw.searches", 1);
    return out;
}

} // namespace waco
