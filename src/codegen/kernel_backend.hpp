/**
 * @file
 * Kernel execution backends: the seam between "what a lowered nest
 * means" and "how it runs".
 *
 * KernelBackend is the interface both engines implement:
 *
 *  - InterpreterBackend delegates to the generic interpreter in
 *    exec/loopnest_exec.cpp — always available, the semantic reference.
 *  - CompiledBackend JIT-compiles the nest: emitKernelC prints a
 *    warning-free C translation unit behind the fixed waco_kernel ABI,
 *    the system C compiler (discovered at runtime; overridable with
 *    $WACO_CC) builds it as a shared object with
 *    `-O3 -march=native -ffp-contract=off -fPIC -shared -Wall -Wextra
 *    -Werror` (dropping to -O2 when the probe rejects the tuned set;
 *    contraction stays off so FMA fusion can never break bitwise
 *    identity with the interpreter), dlopen resolves the
 *    entrypoint, and the function pointer is memoized in an LRU
 *    KernelCache keyed by the nest's structural identity — compiled-code
 *    equivalent of (algorithm, canonicalKey(schedule), shape-class,
 *    dense layouts). Parallelism stays host-driven: the backend chunks
 *    the top loop over the global ThreadPool exactly like the
 *    interpreter and calls the kernel per chunk, so compiled results
 *    are bitwise identical to interpreted ones, serial and parallel.
 *
 * Failure ladder: no compiler found -> compile/dlopen failure (after
 * maxConsecutiveFailures the compiler is quarantined for this backend
 * instance) -> every rung falls back to the interpreter, counted in
 * stats() and the codegen.* metrics. Execution never fails because
 * compilation did.
 */
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codegen/kernel_cache.hpp"
#include "exec/loopnest_exec.hpp"

namespace waco {

/** One way of executing lowered loop nests. */
class KernelBackend
{
  public:
    virtual ~KernelBackend() = default;
    /** Short name for logs/metrics ("interp", "compiled"). */
    virtual std::string name() const = 0;
    /** Execute @p nest; same contract as executeLoopNest. */
    virtual LoopNestResult execute(const LoopNest& nest,
                                   const LoopNestArgs& args,
                                   const ParallelConfig& par = {1, 128}) = 0;
};

/** The generic interpreter behind the KernelBackend interface. */
class InterpreterBackend final : public KernelBackend
{
  public:
    std::string name() const override { return "interp"; }
    LoopNestResult execute(const LoopNest& nest, const LoopNestArgs& args,
                           const ParallelConfig& par = {1, 128}) override;
};

struct CompiledBackendOptions
{
    /** Compiler command; empty = $WACO_CC, else probe cc, gcc, clang. */
    std::string compiler;
    /** Extra flags appended to kernel compiles only (not the discovery
     *  probe) — lets tests force compile failures past a good probe. */
    std::string extraFlags;
    /** Directory for generated .c/.so files; empty = a per-process dir
     *  under the system temp directory. */
    std::string tempDir;
    std::size_t cacheCapacity = 64;
    /** Quarantine the compiler after this many consecutive failures. */
    u32 maxConsecutiveFailures = 3;
    /** Keep .c/.so artifacts on disk after kernels are released. */
    bool keepArtifacts = false;
    /** Forwarded to KernelEmitOptions::clampSplitTails. */
    bool clampSplitTails = true;
};

/** Monotonic counters of one CompiledBackend (best-effort snapshot). */
struct CompiledBackendStats
{
    u64 compiles = 0;        ///< Successful compile+load cycles.
    u64 compileFailures = 0; ///< Compiler or dlopen/dlsym failures.
    u64 cacheHits = 0;       ///< Executions served by a memoized kernel.
    u64 cacheMisses = 0;     ///< Executions that had to compile first.
    u64 fallbacks = 0;       ///< Executions routed to the interpreter.
    u64 launches = 0;        ///< Executions run through compiled code.
};

/** JIT-compiling backend. Thread-safe; compilation is serialized so
 *  concurrent executions of the same nest compile exactly once. */
class CompiledBackend final : public KernelBackend
{
  public:
    explicit CompiledBackend(CompiledBackendOptions opt = {});
    ~CompiledBackend() override;

    std::string name() const override { return "compiled"; }
    LoopNestResult execute(const LoopNest& nest, const LoopNestArgs& args,
                           const ParallelConfig& par = {1, 128}) override;

    /** Probe (once) and report whether a working compiler exists. */
    bool compilerAvailable();
    /** Resolved compiler command ("" when unavailable). */
    std::string compilerPath();

    /**
     * Compile (or fetch from cache) the kernel for @p nest specialized
     * to the given dense input layouts. Null when no compiler is
     * available or compilation failed — callers fall back to the
     * interpreter.
     */
    std::shared_ptr<CompiledKernel>
    kernelFor(const LoopNest& nest, const std::vector<bool>& inputRowMajor);

    CompiledBackendStats stats() const;
    /** Last compile/load error (compiler stderr or dlerror). */
    std::string lastError() const;
    KernelCache& cache() { return cache_; }

  private:
    bool resolveCompilerLocked();

    CompiledBackendOptions opt_;
    KernelCache cache_;

    std::mutex mu_; ///< Serializes probing + compilation.
    bool probed_ = false;
    std::string compiler_; ///< Empty after a failed probe.
    std::string optFlags_; ///< Probe-accepted optimization flag set.
    std::string tempDir_;
    u32 consecutiveFailures_ = 0;
    u64 fileCounter_ = 0;
    std::string lastError_;

    mutable std::mutex statsMu_;
    CompiledBackendStats stats_;
};

/**
 * Structural cache key of a lowered nest: algorithm, shape extents,
 * splits, level formats/order, every loop node with its locates, the
 * consumer walk and workspace of fused nests, the dense input layouts,
 * and the emitter pass configuration. Schedules with equal
 * canonicalKey() lower to structurally identical nests, so this is the
 * compiled-code identity of (algorithm, canonicalKey(schedule),
 * shape-class, layouts) — including nests assembled via fromRaw that
 * never had a schedule.
 */
std::string kernelCacheKey(const LoopNest& nest,
                           const std::vector<bool>& inputRowMajor,
                           bool clampSplitTails);

/** Row-major flags of the dense input operands actually passed in
 *  @p args, in KernelEmitOptions::inputRowMajor order. */
std::vector<bool> inputLayoutsOf(const LoopNestArgs& args, Algorithm alg);

/** Which backend the *Scheduled / *Hier entry points execute through. */
enum class KernelBackendKind
{
    Interpreter,
    Compiled,
};

/** Parse a CLI-style backend name ("interp", "interpreter", "compiled").
 *  Returns false when nothing matches. */
bool kernelBackendFromName(const std::string& name, KernelBackendKind& out);

/** The process-wide interpreter backend. */
KernelBackend& interpreterBackend();
/** The process-wide compiled backend (shared kernel cache). */
CompiledBackend& compiledBackend();

/** Select the backend behind activeKernelBackend(). Default is the
 *  interpreter: enabling compilation is an explicit opt-in. */
void setActiveKernelBackend(KernelBackendKind kind);
KernelBackendKind activeKernelBackendKind();
KernelBackend& activeKernelBackend();

} // namespace waco
