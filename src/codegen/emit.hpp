/**
 * @file
 * TACO-style C code emission (the paper's Figure 10c shows such generated
 * code). The emitter is deliberately NOT an independent lowering: it
 * pretty-prints the same lowered LoopNest (ir/loopnest.hpp) that the
 * generic interpreter in exec/loopnest_exec.cpp executes and the cost
 * model walks. Every loop, locate step, and parallel annotation in the
 * printed C corresponds one-to-one to a node of that shared IR, so what
 * you read is exactly what runs.
 *
 * Sparse levels reached in storage order print as sequential pos/crd
 * loops; levels whose loop is ordered discordantly print an explicit
 * locate — a direct offset for U levels, a binary search over crd for C
 * levels — mirroring what TACO generates for discordant traversals
 * (Section 3.1).
 */
#pragma once

#include <string>
#include <vector>

#include "ir/loopnest.hpp"

namespace waco {

/** Emit C-like source implementing @p s on @p shape (lowers internally). */
std::string emitC(const SuperSchedule& s, const ProblemShape& shape);

/** Emit C-like source for an already-lowered nest. @p scheduleKey, when
 *  non-empty, is echoed into the header comment for provenance. */
std::string emitC(const LoopNest& nest, u32 numThreads = 48,
                  const std::string& scheduleKey = "");

/** Options for the compilable kernel emitter (emitKernelC). */
struct KernelEmitOptions
{
    /**
     * Row-major flag per dense INPUT operand of the algorithm, in
     * algorithmInfo().denseOperands order with output operands skipped
     * (so SpMM: {B}, SDDMM/MTTKRP: {B, C}, FusedSDDMMSpMM: {B, C, F}).
     * Empty means every input operand's rowMajorDefault. The generated
     * code bakes the resulting strides in as literals, so a kernel is
     * specialized per layout combination (part of the cache key).
     */
    std::vector<bool> inputRowMajor;
    /**
     * Post-emit pass 1 (vector-tail predicate removal): when the
     * later-binding half of a split index is a dense/U loop, clamp that
     * loop's trip count to min(split, extent - outer*split) instead of
     * guarding every leaf visit — full-width iterations for all but the
     * ragged last block, no per-iteration predicate. Indices the pass
     * cannot prove clampable keep the interpreter-equivalent leaf guard.
     */
    bool clampSplitTails = true;
    /** Echoed into the generated header comment for provenance. */
    std::string cacheKey;
};

/**
 * Emit a complete, warning-free (-Wall -Wextra -Werror) C translation
 * unit implementing @p nest behind the fixed C ABI of
 * codegen/kernel_cache.hpp:
 *
 *   void waco_kernel(const waco_args_t* args,
 *                    int64_t begin, int64_t end, float* scratch);
 *
 * [begin, end) is the outermost loop's range in the interpreter's
 * chunking domain (coordinates for Dense/U, absolute crd positions for
 * Compressed), so the host drives parallelism by invoking disjoint
 * ranges from the thread pool — chunk boundaries, and therefore float
 * results, are bitwise identical to exec/loopnest_exec.cpp.
 *
 * Unlike emitC (the pretty-printer, kept verbatim for readability and
 * its golden tests), this emitter applies two DietCode-style post-emit
 * passes: split-tail predicate removal (KernelEmitOptions::
 * clampSplitTails) and workspace hoisting — the fused nests' `float
 * w[J]` VLA becomes the caller-provided heap @p scratch parameter,
 * zero-initialized per scope iteration exactly like the interpreter's
 * per-chunk private workspace.
 */
std::string emitKernelC(const LoopNest& nest,
                        const KernelEmitOptions& opt = {});

} // namespace waco
