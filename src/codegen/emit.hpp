/**
 * @file
 * TACO-style C code emission (the paper's Figure 10c shows such generated
 * code). The emitter is deliberately NOT an independent lowering: it
 * pretty-prints the same lowered LoopNest (ir/loopnest.hpp) that the
 * generic interpreter in exec/loopnest_exec.cpp executes and the cost
 * model walks. Every loop, locate step, and parallel annotation in the
 * printed C corresponds one-to-one to a node of that shared IR, so what
 * you read is exactly what runs.
 *
 * Sparse levels reached in storage order print as sequential pos/crd
 * loops; levels whose loop is ordered discordantly print an explicit
 * locate — a direct offset for U levels, a binary search over crd for C
 * levels — mirroring what TACO generates for discordant traversals
 * (Section 3.1).
 */
#pragma once

#include <string>

#include "ir/loopnest.hpp"

namespace waco {

/** Emit C-like source implementing @p s on @p shape (lowers internally). */
std::string emitC(const SuperSchedule& s, const ProblemShape& shape);

/** Emit C-like source for an already-lowered nest. @p scheduleKey, when
 *  non-empty, is echoed into the header comment for provenance. */
std::string emitC(const LoopNest& nest, u32 numThreads = 48,
                  const std::string& scheduleKey = "");

} // namespace waco
