/**
 * @file
 * TACO-style C code emission for a SuperSchedule (the paper's Figure 10c
 * shows such generated code). WACO executes schedules through the
 * interpreter in src/exec, but emitting the equivalent C loop nest makes
 * the chosen format+schedule inspectable and portable: the output compiles
 * conceptually against pos/crd/vals arrays produced by HierSparseTensor.
 *
 * Sparse levels reached in storage order emit sequential pos/crd loops;
 * levels whose loop is ordered discordantly emit an explicit binary-search
 * locate, mirroring what TACO generates for discordant traversals
 * (Section 3.1).
 */
#pragma once

#include <string>

#include "ir/schedule.hpp"

namespace waco {

/** Emit C-like source implementing @p s on @p shape. */
std::string emitC(const SuperSchedule& s, const ProblemShape& shape);

} // namespace waco
