#include "codegen/kernel_backend.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <dlfcn.h>
#include <unistd.h>

#include "codegen/emit.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace waco {

namespace {

constexpr u32 kMaxAbiLevels = 8; ///< pos/crd slots in WacoKernelArgs.

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * The tuned optimization set kernels are compiled with when the probe
 * accepts it. -march=native widens the vector units the emitted dense
 * loops run on; -ffp-contract=off forbids the FMA contraction that
 * -march=native would otherwise license in C, because a fused
 * multiply-add rounds once where the interpreter rounds twice — the
 * bitwise-identity contract is non-negotiable. Plain wider
 * vectorization of independent float lanes is IEEE-exact, so it stays.
 */
const char* const kTunedOptFlags =
    "-O3 -march=native -ffp-contract=off -mprefer-vector-width=256";
/** Tuned set minus the x86-only vector-width cap (the cap matters on
 *  AVX-512 parts, where 512-bit scalar/vector mixing slows the serial
 *  reduction chains measurably). */
const char* const kPortableTunedFlags = "-O3 -march=native -ffp-contract=off";
/** Conservative fallback when the resolved compiler rejects the tuned
 *  sets (older toolchains, unusual architectures). */
const char* const kBaseOptFlags = "-O2";

/** The compile invocation shared by the probe and real kernels. The
 *  -Werror battery is deliberate: generated code that warns is a bug
 *  (satellite contract), and a warning-free gate catches emitter drift
 *  the moment it happens. */
std::string
compileCommand(const std::string& compiler, const std::string& optFlags,
               const std::string& extraFlags, const std::string& src,
               const std::string& out, const std::string& log)
{
    std::string cmd = compiler;
    if (!optFlags.empty())
        cmd += " " + optFlags;
    cmd += " -fPIC -shared -Wall -Wextra -Werror";
    if (!extraFlags.empty())
        cmd += " " + extraFlags;
    cmd += " -x c \"" + src + "\" -o \"" + out + "\" 2>\"" + log + "\"";
    return cmd;
}

} // namespace

LoopNestResult
InterpreterBackend::execute(const LoopNest& nest, const LoopNestArgs& args,
                            const ParallelConfig& par)
{
    return executeLoopNest(nest, args, par);
}

CompiledBackend::CompiledBackend(CompiledBackendOptions opt)
    : opt_(std::move(opt)), cache_(opt_.cacheCapacity)
{
}

CompiledBackend::~CompiledBackend()
{
    // Kernels unlink their own artifacts as they are released; the
    // per-process directory itself goes away only once it is empty.
    if (!tempDir_.empty() && opt_.tempDir.empty()) {
        std::error_code ec;
        std::filesystem::remove(tempDir_, ec);
    }
}

bool
CompiledBackend::resolveCompilerLocked()
{
    if (probed_)
        return !compiler_.empty();
    probed_ = true;

    if (opt_.tempDir.empty()) {
        std::error_code ec;
        auto dir = std::filesystem::temp_directory_path(ec);
        if (ec)
            dir = "/tmp";
        tempDir_ = (dir / ("waco-kernels-" + std::to_string(getpid())))
                       .string();
    } else {
        tempDir_ = opt_.tempDir;
    }
    {
        std::error_code ec;
        std::filesystem::create_directories(tempDir_, ec);
        if (ec) {
            lastError_ = "cannot create kernel temp dir " + tempDir_;
            return false;
        }
    }

    std::vector<std::string> candidates;
    if (!opt_.compiler.empty()) {
        candidates.push_back(opt_.compiler);
    } else if (const char* env = std::getenv("WACO_CC");
               env != nullptr && env[0] != '\0') {
        // An explicit override is trusted verbatim — a bogus WACO_CC is
        // how the fallback tests force the "no working compiler" rung.
        candidates.push_back(env);
    } else {
        candidates = {"cc", "gcc", "clang"};
    }

    const std::string src = tempDir_ + "/probe.c";
    const std::string so = tempDir_ + "/probe.so";
    const std::string log = tempDir_ + "/probe.log";
    {
        std::ofstream out(src);
        out << "int waco_probe(void) { return 0; }\n";
    }
    // Each candidate is probed with the tuned flag set first; a compiler
    // that rejects it (but works with the conservative set) is still
    // usable, just without the vector-width upside.
    for (const std::string& cand : candidates) {
        bool found = false;
        for (const char* flags :
             {kTunedOptFlags, kPortableTunedFlags, kBaseOptFlags}) {
            int rc = std::system(
                compileCommand(cand, flags, "", src, so, log).c_str());
            if (rc == 0) {
                compiler_ = cand;
                optFlags_ = flags;
                found = true;
                break;
            }
            lastError_ = readFile(log);
        }
        if (found)
            break;
    }
    std::remove(src.c_str());
    std::remove(so.c_str());
    std::remove(log.c_str());
    return !compiler_.empty();
}

bool
CompiledBackend::compilerAvailable()
{
    std::lock_guard<std::mutex> lock(mu_);
    return resolveCompilerLocked();
}

std::string
CompiledBackend::compilerPath()
{
    std::lock_guard<std::mutex> lock(mu_);
    resolveCompilerLocked();
    return compiler_;
}

std::shared_ptr<CompiledKernel>
CompiledBackend::kernelFor(const LoopNest& nest,
                           const std::vector<bool>& inputRowMajor)
{
    if (nest.numLevels() > kMaxAbiLevels)
        return nullptr; // cannot be expressed in the fixed ABI
    const std::string key =
        kernelCacheKey(nest, inputRowMajor, opt_.clampSplitTails);
    if (auto k = cache_.get(key)) {
        std::lock_guard<std::mutex> slock(statsMu_);
        ++stats_.cacheHits;
        return k;
    }
    {
        std::lock_guard<std::mutex> slock(statsMu_);
        ++stats_.cacheMisses;
    }

    // Serialize compilation: a racing execution of the same nest waits
    // here, then finds the freshly inserted kernel instead of invoking
    // the compiler a second time.
    std::lock_guard<std::mutex> lock(mu_);
    if (auto k = cache_.get(key))
        return k;
    if (!resolveCompilerLocked())
        return nullptr;
    if (consecutiveFailures_ >= opt_.maxConsecutiveFailures)
        return nullptr; // compiler quarantined for this backend

    WACO_SPAN("codegen.compile");
    KernelEmitOptions eo;
    eo.inputRowMajor = inputRowMajor;
    eo.clampSplitTails = opt_.clampSplitTails;
    eo.cacheKey = key;
    const std::string source = emitKernelC(nest, eo);

    const std::string stem =
        tempDir_ + "/k" + std::to_string(fileCounter_++);
    const std::string src = stem + ".c";
    const std::string so = stem + ".so";
    const std::string log = stem + ".log";
    {
        std::ofstream out(src);
        out << source;
    }

    auto fail = [&](const std::string& why) -> std::shared_ptr<CompiledKernel> {
        lastError_ = why;
        ++consecutiveFailures_;
        std::remove(so.c_str());
        std::remove(log.c_str());
        if (!opt_.keepArtifacts)
            std::remove(src.c_str());
        {
            std::lock_guard<std::mutex> slock(statsMu_);
            ++stats_.compileFailures;
        }
        WACO_COUNT("codegen.compile_failures", 1);
        return nullptr;
    };

    int rc = std::system(
        compileCommand(compiler_, optFlags_, opt_.extraFlags, src, so, log)
            .c_str());
    if (rc != 0)
        return fail("kernel compile failed:\n" + readFile(log));
    std::remove(log.c_str());

    void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        const char* err = dlerror();
        return fail(std::string("dlopen failed: ") +
                    (err != nullptr ? err : "unknown"));
    }
    void* sym = dlsym(handle, "waco_kernel");
    if (sym == nullptr) {
        dlclose(handle);
        return fail("dlsym: waco_kernel entrypoint missing");
    }

    consecutiveFailures_ = 0;
    {
        std::lock_guard<std::mutex> slock(statsMu_);
        ++stats_.compiles;
    }
    WACO_COUNT("codegen.compiles", 1);
    auto kernel = std::make_shared<CompiledKernel>(
        handle, reinterpret_cast<WacoKernelFn>(sym), so, src,
        opt_.keepArtifacts);
    cache_.put(key, kernel);
    return kernel;
}

LoopNestResult
CompiledBackend::execute(const LoopNest& nest, const LoopNestArgs& args,
                         const ParallelConfig& par)
{
    auto kernel = kernelFor(nest, inputLayoutsOf(args, nest.alg()));
    if (kernel == nullptr) {
        {
            std::lock_guard<std::mutex> slock(statsMu_);
            ++stats_.fallbacks;
        }
        WACO_COUNT("codegen.fallbacks", 1);
        return executeLoopNest(nest, args, par);
    }

    exec_detail::checkLoopNestArgs(nest, args);
    {
        std::lock_guard<std::mutex> slock(statsMu_);
        ++stats_.launches;
    }
    WACO_COUNT("codegen.launches", 1);

    const HierSparseTensor& a = *args.a;
    const auto& ext = nest.shape().indexExtent;

    WacoKernelArgs ka;
    for (u32 l = 0; l < nest.numLevels(); ++l) {
        ka.pos[l] = a.levels()[l].pos.data();
        ka.crd[l] = a.levels()[l].crd.data();
    }
    ka.vals = a.values().data();

    LoopNestResult r;
    std::vector<float> dvals; // SDDMM per-position accumulators
    switch (nest.alg()) {
      case Algorithm::SpMV:
        ka.b = args.vecB->data().data();
        r.vec = DenseVector(ext[0], 0.0f);
        ka.out = r.vec.data().data();
        break;
      case Algorithm::SpMM:
        ka.b = args.matB->data().data();
        r.mat = DenseMatrix(ext[0], ext[2], Layout::RowMajor, 0.0f);
        ka.out = r.mat.data().data();
        break;
      case Algorithm::SDDMM:
        ka.b = args.matB->data().data();
        ka.c = args.matC->data().data();
        dvals.assign(a.storedValues(), 0.0f);
        ka.out = dvals.data();
        break;
      case Algorithm::MTTKRP:
        ka.b = args.matB->data().data();
        ka.c = args.matC->data().data();
        r.mat = DenseMatrix(ext[0], ext[3], Layout::RowMajor, 0.0f);
        ka.out = r.mat.data().data();
        break;
      case Algorithm::FusedSDDMMSpMM:
        ka.b = args.matB->data().data();
        ka.c = args.matC->data().data();
        ka.f = args.matF->data().data();
        r.mat = DenseMatrix(ext[0], ext[3], Layout::RowMajor, 0.0f);
        ka.out = r.mat.data().data();
        break;
    }

    const WacoKernelFn fn = kernel->fn();
    const u32 wsExtent = nest.fused() ? nest.workspace().extent : 0;
    auto runRange = [&](u64 b, u64 e) {
        if (wsExtent > 0) {
            // Chunk-private workspace, exactly like the interpreter's.
            std::vector<float> scratch(wsExtent, 0.0f);
            fn(&ka, static_cast<std::int64_t>(b),
               static_cast<std::int64_t>(e), scratch.data());
        } else {
            fn(&ka, static_cast<std::int64_t>(b),
               static_cast<std::int64_t>(e), nullptr);
        }
    };

    // Mirror the interpreter's chunking decision byte for byte: same
    // domain, same safety rule, same parallelFor chunk boundaries.
    auto dom = exec_detail::topLoopDomain(nest, a);
    if (dom.second > dom.first) {
        u32 threads = std::max<u32>(1, par.threads);
        bool safe = exec_detail::topLoopParallelizable(nest);
        if (threads == 1 || !safe) {
            runRange(dom.first, dom.second);
        } else {
            u64 chunk = std::max<u32>(1, par.chunk);
            globalPool().ensureWorkers(
                std::min(threads, ThreadPool::kMaxWorkers + 1) - 1);
            globalPool().parallelFor(
                dom.second - dom.first, chunk, threads,
                [&](u64 b, u64 e) {
                    runRange(dom.first + b, dom.first + e);
                });
        }
    }

    if (nest.alg() == Algorithm::SDDMM)
        r.sparse = exec_detail::assembleSddmmOutput(a, dvals);
    return r;
}

CompiledBackendStats
CompiledBackend::stats() const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return stats_;
}

std::string
CompiledBackend::lastError() const
{
    // lastError_ is written under mu_; a torn read here would only
    // affect a diagnostic string, but take the lock for cleanliness.
    std::lock_guard<std::mutex> lock(
        const_cast<CompiledBackend*>(this)->mu_);
    return lastError_;
}

std::string
kernelCacheKey(const LoopNest& nest, const std::vector<bool>& inputRowMajor,
               bool clampSplitTails)
{
    std::ostringstream os;
    os << algorithmName(nest.alg()) << "|e";
    for (u32 i = 0; i < 4; ++i)
        os << (i ? "," : "") << nest.shape().indexExtent[i];
    os << "|s";
    for (u32 i = 0; i < 4; ++i)
        os << (i ? "," : "") << nest.splitOf(i);
    os << "|L";
    for (bool rm : inputRowMajor)
        os << (rm ? 'r' : 'c');
    os << "|F";
    for (u32 l = 0; l < nest.numLevels(); ++l)
        os << (nest.levelFormat(l) == LevelFormat::Uncompressed ? 'U' : 'C')
           << nest.levelSlot(l) << (nest.levelConcordant(l) ? 't' : 'd');
    auto walk = [&](const std::vector<LoopNode>& loops) {
        for (const LoopNode& n : loops) {
            os << (n.kind == LoopKind::Dense ? 'D' : 'S') << n.slot << 'x'
               << n.extent << 'l' << n.level;
            for (const LocateStep& ls : n.locates)
                os << "(" << ls.level << "," << ls.slot << ","
                   << (ls.binarySearch ? 'b' : 'u') << ")";
            os << ';';
        }
    };
    os << "|N:";
    walk(nest.loops());
    if (nest.fused()) {
        os << "|C:";
        walk(nest.consumerLoops());
        const WorkspaceDecl& ws = nest.workspace();
        os << "|W" << ws.index << 'x' << ws.extent << '@' << ws.scopeDepth;
    }
    os << "|v" << nest.leaf().vectorIndex;
    if (nest.fused())
        os << "," << nest.consumerLeaf().vectorIndex;
    os << "|p" << (clampSplitTails ? 1 : 0);
    return os.str();
}

std::vector<bool>
inputLayoutsOf(const LoopNestArgs& args, Algorithm alg)
{
    auto rm = [](const DenseMatrix* m) {
        return m == nullptr || m->layout() == Layout::RowMajor;
    };
    switch (alg) {
      case Algorithm::SpMV:
        return {}; // the vector operand has no layout
      case Algorithm::SpMM:
        return {rm(args.matB)};
      case Algorithm::SDDMM:
      case Algorithm::MTTKRP:
        return {rm(args.matB), rm(args.matC)};
      case Algorithm::FusedSDDMMSpMM:
        return {rm(args.matB), rm(args.matC), rm(args.matF)};
    }
    return {};
}

bool
kernelBackendFromName(const std::string& name, KernelBackendKind& out)
{
    if (name == "interp" || name == "interpreter") {
        out = KernelBackendKind::Interpreter;
        return true;
    }
    if (name == "compiled" || name == "jit") {
        out = KernelBackendKind::Compiled;
        return true;
    }
    return false;
}

KernelBackend&
interpreterBackend()
{
    static InterpreterBackend backend;
    return backend;
}

CompiledBackend&
compiledBackend()
{
    static CompiledBackend backend;
    return backend;
}

namespace {
std::atomic<KernelBackendKind> g_active{KernelBackendKind::Interpreter};
} // namespace

void
setActiveKernelBackend(KernelBackendKind kind)
{
    g_active.store(kind, std::memory_order_relaxed);
}

KernelBackendKind
activeKernelBackendKind()
{
    return g_active.load(std::memory_order_relaxed);
}

KernelBackend&
activeKernelBackend()
{
    return activeKernelBackendKind() == KernelBackendKind::Compiled
               ? static_cast<KernelBackend&>(compiledBackend())
               : interpreterBackend();
}

} // namespace waco
