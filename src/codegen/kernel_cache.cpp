#include "codegen/kernel_cache.hpp"

#include <cstdio>

#include <dlfcn.h>

#include "util/metrics.hpp"

namespace waco {

CompiledKernel::CompiledKernel(void* handle, WacoKernelFn fn,
                               std::string soPath, std::string srcPath,
                               bool keepArtifacts)
    : handle_(handle), fn_(fn), soPath_(std::move(soPath)),
      srcPath_(std::move(srcPath)), keepArtifacts_(keepArtifacts)
{
}

CompiledKernel::~CompiledKernel()
{
    if (handle_ != nullptr)
        dlclose(handle_);
    if (!keepArtifacts_) {
        if (!soPath_.empty())
            std::remove(soPath_.c_str());
        if (!srcPath_.empty())
            std::remove(srcPath_.c_str());
    }
}

std::shared_ptr<CompiledKernel>
CompiledKernel::forTesting(WacoKernelFn fn)
{
    return std::make_shared<CompiledKernel>(nullptr, fn, "", "", true);
}

KernelCache::KernelCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<CompiledKernel>
KernelCache::get(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        WACO_COUNT("codegen.cache_misses", 1);
        return nullptr;
    }
    ++stats_.hits;
    WACO_COUNT("codegen.cache_hits", 1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void
KernelCache::put(const std::string& key,
                 std::shared_ptr<CompiledKernel> kernel)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second->second = std::move(kernel);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(kernel));
    map_[key] = lru_.begin();
    ++stats_.insertions;
    evictOverCapacityLocked();
}

std::size_t
KernelCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::size_t
KernelCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

void
KernelCache::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    evictOverCapacityLocked();
}

void
KernelCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
}

KernelCacheStats
KernelCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
KernelCache::evictOverCapacityLocked()
{
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
        WACO_COUNT("codegen.evictions", 1);
    }
}

} // namespace waco
