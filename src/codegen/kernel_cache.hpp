/**
 * @file
 * Memoization store for JIT-compiled loop-nest kernels.
 *
 * A CompiledKernel owns one dlopen'd shared object holding the C-ABI
 * entrypoint the kernel emitter generated for a single lowered nest
 * (see emitKernelC in codegen/emit.hpp for the ABI). The KernelCache is
 * a thread-safe LRU map from the nest's structural cache key — the
 * compiled-code identity of (algorithm, canonicalKey(schedule),
 * shape-class, dense-operand layouts) — to a shared_ptr<CompiledKernel>,
 * so HNSW top-k measurement and service-layer repeat queries pay the
 * compiler exactly once per distinct kernel and hit warm function
 * pointers afterwards.
 *
 * Entries are handed out as shared_ptr: an evicted kernel stays mapped
 * (and its .so stays loaded) until the last in-flight execution drops
 * its reference, so eviction can never unmap code under a running call.
 */
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/common.hpp"

namespace waco {

/**
 * C-ABI argument block passed to every generated kernel. One fixed
 * layout for all five algorithms: unused members stay null. pos/crd are
 * indexed by storage level of A (at most 8 levels, matching the
 * interpreter's kMaxLevels).
 */
struct WacoKernelArgs
{
    const u64* pos[8] = {};
    const u32* crd[8] = {};
    const float* vals = nullptr; ///< A's stored values.
    const float* b = nullptr;    ///< Dense operand B (vector or matrix).
    const float* c = nullptr;    ///< Dense operand C.
    const float* f = nullptr;    ///< Dense operand F (fused kernel only).
    float* out = nullptr; ///< Output buffer (dvals for SDDMM).
};

/**
 * Generated entrypoint: execute the nest for top-loop range
 * [begin, end) — coordinates for a Dense/U outermost loop, absolute crd
 * positions for a Compressed one, exactly the interpreter's chunking
 * domain. The host drives parallelism by calling disjoint ranges from
 * the thread pool; @p scratch is that chunk's private workspace for
 * fused nests (null otherwise).
 */
using WacoKernelFn = void (*)(const WacoKernelArgs* args, std::int64_t begin,
                              std::int64_t end, float* scratch);

/**
 * One loaded kernel: the dlopen handle, the resolved entrypoint, and the
 * on-disk artifacts. Closing the handle and deleting the artifacts
 * happens at destruction (i.e. once the cache slot AND every in-flight
 * execution released the shared_ptr).
 */
class CompiledKernel
{
  public:
    CompiledKernel(void* handle, WacoKernelFn fn, std::string soPath,
                   std::string srcPath, bool keepArtifacts);
    ~CompiledKernel();

    CompiledKernel(const CompiledKernel&) = delete;
    CompiledKernel& operator=(const CompiledKernel&) = delete;

    WacoKernelFn fn() const { return fn_; }
    const std::string& sourcePath() const { return srcPath_; }
    const std::string& objectPath() const { return soPath_; }

    /** Cache-unit-test hook: an entry with no dlopen handle behind it. */
    static std::shared_ptr<CompiledKernel> forTesting(WacoKernelFn fn);

  private:
    void* handle_ = nullptr;
    WacoKernelFn fn_ = nullptr;
    std::string soPath_;
    std::string srcPath_;
    bool keepArtifacts_ = false;
};

/** Monotonic counters of one KernelCache (snapshot, not synchronized
 *  with concurrent mutation). */
struct KernelCacheStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0;
    u64 evictions = 0;
};

/**
 * Thread-safe LRU cache of compiled kernels. get() promotes to
 * most-recently-used; put() evicts the least-recently-used entry once
 * size exceeds capacity. Capacity 0 degenerates to "never retain"
 * (every put is immediately evicted), which the fallback tests use.
 */
class KernelCache
{
  public:
    explicit KernelCache(std::size_t capacity = 64);

    /** Look up @p key; null on miss. Hits move the entry to MRU. */
    std::shared_ptr<CompiledKernel> get(const std::string& key);
    /** Insert (or replace) @p key, evicting LRU entries over capacity. */
    void put(const std::string& key, std::shared_ptr<CompiledKernel> kernel);

    std::size_t size() const;
    std::size_t capacity() const;
    /** Shrink/grow the capacity, evicting LRU entries as needed. */
    void setCapacity(std::size_t capacity);
    void clear();

    KernelCacheStats stats() const;

  private:
    void evictOverCapacityLocked();

    mutable std::mutex mu_;
    std::size_t capacity_;
    /** MRU-first recency list; map values point into it. */
    std::list<std::pair<std::string, std::shared_ptr<CompiledKernel>>> lru_;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string,
                            std::shared_ptr<CompiledKernel>>>::iterator>
        map_;
    KernelCacheStats stats_;
};

} // namespace waco
