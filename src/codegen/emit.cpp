#include "codegen/emit.hpp"

#include <sstream>

namespace waco {

namespace {

/** Human-readable loop variable for a slot ("i1", "k0", or "i" when the
 *  index is unsplit). */
std::string
slotVar(const AlgorithmInfo& info, const SuperSchedule& s, u32 slot)
{
    std::string base = info.indexNames[slotIndex(slot)];
    if (s.splits[slotIndex(slot)] == 1)
        return base;
    return base + (slotIsInner(slot) ? "0" : "1");
}

/** The compute statement of each kernel, in terms of full index names. */
std::string
computeStatement(Algorithm alg)
{
    switch (alg) {
      case Algorithm::SpMV:
        return "C[i] += A_vals[pA] * B[k];";
      case Algorithm::SpMM:
        return "C[i * J + j] += A_vals[pA] * B[k * J + j];";
      case Algorithm::SDDMM:
        return "D_vals[pA] += A_vals[pA] * B[i * K + k] * C[k * J + j];";
      case Algorithm::MTTKRP:
        return "D[i * J + j] += A_vals[pA] * B[k * J + j] * C[l * J + j];";
    }
    panic("unknown algorithm");
}

} // namespace

std::string
emitC(const SuperSchedule& s, const ProblemShape& shape)
{
    const auto& info = algorithmInfo(s.alg);
    validateSchedule(s, shape);
    std::ostringstream os;

    auto fmt = formatOf(s, shape);
    auto level_order = activeSparseLevelOrder(s);
    auto level_fmts = activeSparseLevelFormats(s);
    auto loops = activeLoopOrder(s);

    os << "// " << algorithmName(s.alg) << ": " << info.einsum << "\n";
    os << "// A stored as " << fmt.name() << "; "
       << "generated for a SuperSchedule with key\n";
    os << "//   " << s.key() << "\n";

    // Reconstruction of full indices from split halves.
    std::string reconstruct;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        u32 split = std::min(s.splits[idx], shape.indexExtent[idx]);
        if (split > 1) {
            reconstruct += "int " + std::string(info.indexNames[idx]) +
                           " = " + info.indexNames[idx] + "1 * " +
                           std::to_string(split) + " + " +
                           info.indexNames[idx] + "0;";
        }
    }

    // Map each sparse slot to its format-level position.
    auto level_of = [&](u32 slot) -> int {
        for (std::size_t l = 0; l < level_order.size(); ++l) {
            if (level_order[l] == slot)
                return static_cast<int>(l);
        }
        return -1;
    };

    std::string indent;
    std::vector<bool> level_open(level_order.size(), false);
    u32 emitted_levels = 0;

    for (std::size_t pos = 0; pos < loops.size(); ++pos) {
        u32 slot = loops[pos];
        u32 idx = slotIndex(slot);
        std::string var = slotVar(info, s, slot);
        u32 extent = slotExtent(s, shape, slot);

        if (slot == s.parallelSlot) {
            os << indent << "#pragma omp parallel for schedule(dynamic, "
               << s.ompChunk << ") num_threads(" << s.numThreads << ")\n";
        }

        int level = info.sparseDim[idx] >= 0 ? level_of(slot) : -1;
        if (level < 0) {
            // Dense loop (dense-only index, or a sparse index's slot that
            // degenerated out of the format — not possible for active
            // slots, so this is the dense-operand case).
            os << indent << "for (int " << var << " = 0; " << var << " < "
               << extent << "; " << var << "++) {\n";
        } else if (static_cast<u32>(level) == emitted_levels) {
            // Concordant: this is the next storage level of A.
            if (level_fmts[level] == LevelFormat::Uncompressed) {
                os << indent << "for (int " << var << " = 0; " << var
                   << " < " << extent << "; " << var << "++) {"
                   << "  // A level " << level << ": U\n";
            } else {
                std::string parent =
                    level == 0 ? "0 .. 1" : "pA_" + std::to_string(level - 1);
                os << indent << "for (int p" << level << " = A" << level
                   << "_pos[" << (level == 0 ? "0" : parent) << "]; p"
                   << level << " < A" << level << "_pos["
                   << (level == 0 ? "1" : parent + " + 1") << "]; p" << level
                   << "++) {  // A level " << level << ": C\n";
                os << indent << "    int " << var << " = A" << level
                   << "_crd[p" << level << "];\n";
            }
            level_open[level] = true;
            ++emitted_levels;
            // Any deeper levels whose loops were already opened above us
            // (discordant) can now be located.
            while (emitted_levels < level_order.size() &&
                   [&] {
                       for (std::size_t q = 0; q < pos; ++q) {
                           if (loops[q] == level_order[emitted_levels])
                               return true;
                       }
                       return false;
                   }()) {
                u32 dslot = level_order[emitted_levels];
                os << indent << "    // discordant: locate "
                   << slotVar(info, s, dslot) << " in A level "
                   << emitted_levels
                   << (level_fmts[emitted_levels] == LevelFormat::Compressed
                           ? " via binary search over A_crd\n"
                           : " via direct offset\n");
                ++emitted_levels;
            }
        } else {
            // Discordant: loop over the full coordinate range now; the
            // matching storage position is located when the format levels
            // above it have been traversed.
            os << indent << "for (int " << var << " = 0; " << var << " < "
               << extent << "; " << var
               << "++) {  // discordant with A's level order\n";
        }
        indent += "    ";
    }

    os << indent << "// pA: position of the current A value\n";
    if (!reconstruct.empty())
        os << indent << reconstruct << "\n";
    os << indent << computeStatement(s.alg) << "\n";
    for (std::size_t pos = loops.size(); pos-- > 0;) {
        indent.resize(indent.size() - 4);
        os << indent << "}\n";
    }
    return os.str();
}

} // namespace waco
