#include "codegen/emit.hpp"

#include <sstream>

#include "analysis/loopnest_verifier.hpp"

namespace waco {

namespace {

/** The compute statement of each kernel, in terms of full index names. */
std::string
computeStatement(Algorithm alg)
{
    switch (alg) {
      case Algorithm::SpMV:
        return "C[i] += A_vals[pA] * B[k];";
      case Algorithm::SpMM:
        return "C[i * J + j] += A_vals[pA] * B[k * J + j];";
      case Algorithm::SDDMM:
        return "D_vals[pA] += A_vals[pA] * B[i * K + k] * C[k * J + j];";
      case Algorithm::MTTKRP:
        return "D[i * J + j] += A_vals[pA] * B[k * J + j] * C[l * J + j];";
      case Algorithm::FusedSDDMMSpMM:
        break; // fused nests print two phase statements, not one
    }
    panic("unknown algorithm");
}

std::string
posVar(u32 level)
{
    return "p" + std::to_string(level);
}

/** Position expression of the level above @p level ("0" for the root). */
std::string
parentPos(u32 level)
{
    return level == 0 ? "0" : posVar(level - 1);
}

/** Coordinate extent of storage level @p level. */
u32
levelExtent(const LoopNest& nest, u32 level)
{
    u32 slot = nest.levelSlot(level);
    u32 idx = slotIndex(slot);
    u32 split = nest.splitOf(idx);
    return slotIsInner(slot)
               ? split
               : ceilDiv(nest.shape().indexExtent[idx], split);
}

/** `pL = parent * extent + coord` for U levels (level 0 has no parent). */
std::string
uPosExpr(const LoopNest& nest, u32 level, const std::string& coord)
{
    if (level == 0)
        return coord;
    return parentPos(level) + " * " + std::to_string(levelExtent(nest, level)) +
           " + " + coord;
}

} // namespace

std::string
emitC(const LoopNest& nest, u32 numThreads, const std::string& scheduleKey)
{
#ifndef NDEBUG
    // The emitter prints whatever nest it is handed; make sure a fromRaw
    // nest cannot turn into plausible-looking C that would mis-execute.
    {
        auto diags = analysis::verifyLoopNest(nest);
        fatalIf(diags.hasErrors(),
                "emitC: invalid loop nest:\n" + diags.format());
    }
#endif
    const auto& info = algorithmInfo(nest.alg());
    std::ostringstream os;

    os << "// " << algorithmName(nest.alg()) << ": " << info.einsum << "\n";
    os << "// A stored as ";
    for (u32 l = 0; l < nest.numLevels(); ++l)
        os << (nest.levelFormat(l) == LevelFormat::Uncompressed ? 'U' : 'C');
    os << "(";
    for (u32 l = 0; l < nest.numLevels(); ++l)
        os << (l ? "," : "") << nest.slotVarName(nest.levelSlot(l));
    os << ")\n";
    if (!scheduleKey.empty()) {
        os << "// generated for a SuperSchedule with key\n";
        os << "//   " << scheduleKey << "\n";
    }

    std::string indent;

    // One loop header (+ position bookkeeping and locate drains), shared by
    // the single-expression path and both phases of a fused nest.
    auto emit_loop = [&](const LoopNode& n) {
        std::string var = nest.slotVarName(n.slot);

        if (n.parallel) {
            os << indent << "#pragma omp parallel for schedule(dynamic, "
               << n.chunk << ") num_threads(" << numThreads << ")\n";
        }

        if (n.kind == LoopKind::Dense) {
            os << indent << "for (int " << var << " = 0; " << var << " < "
               << n.extent << "; " << var << "++) {";
            if (n.level >= 0)
                os << "  // discordant with A's level order";
            os << "\n";
        } else if (nest.levelFormat(n.level) ==
                   LevelFormat::Uncompressed) {
            u32 lv = static_cast<u32>(n.level);
            os << indent << "for (int " << var << " = 0; " << var << " < "
               << n.extent << "; " << var << "++) {"
               << "  // A level " << lv << ": U\n";
            os << indent << "    int " << posVar(lv) << " = "
               << uPosExpr(nest, lv, var) << ";\n";
        } else {
            u32 lv = static_cast<u32>(n.level);
            std::string L = std::to_string(lv);
            std::string p = posVar(lv);
            os << indent << "for (int " << p << " = A" << L << "_pos["
               << (lv == 0 ? "0" : parentPos(lv)) << "]; " << p << " < A"
               << L << "_pos["
               << (lv == 0 ? "1" : parentPos(lv) + " + 1") << "]; " << p
               << "++) {  // A level " << L << ": C\n";
            os << indent << "    int " << var << " = A" << L << "_crd[" << p
               << "];\n";
        }

        for (const LocateStep& ls : n.locates) {
            std::string L = std::to_string(ls.level);
            std::string p = posVar(ls.level);
            std::string lvar = nest.slotVarName(ls.slot);
            if (ls.binarySearch) {
                os << indent << "    // discordant: locate " << lvar
                   << " in A level " << L
                   << " via binary search over A" << L << "_crd\n";
                os << indent << "    int " << p << " = waco_search(A" << L
                   << "_crd, A" << L << "_pos[" << parentPos(ls.level)
                   << "], A" << L << "_pos[" << parentPos(ls.level)
                   << " + 1], " << lvar << ");\n";
                os << indent << "    if (" << p << " < 0) continue;\n";
            } else {
                os << indent << "    // discordant: locate " << lvar
                   << " in A level " << L << " via direct offset\n";
                os << indent << "    int " << p << " = "
                   << uPosExpr(nest, ls.level, lvar) << ";\n";
            }
        }
        indent += "    ";
    };

    auto close_loops = [&](std::size_t count) {
        while (count-- > 0) {
            indent.resize(indent.size() - 4);
            os << indent << "}\n";
        }
    };

    // Recombine split coordinates for the indices selected by @p wanted.
    auto emit_splits = [&](const std::array<bool, 4>& wanted) {
        for (u32 idx = 0; idx < info.numIndices; ++idx) {
            u32 split = nest.splitOf(idx);
            if (wanted[idx] && split > 1) {
                os << indent << "int " << info.indexNames[idx] << " = "
                   << info.indexNames[idx] << "1 * " << split << " + "
                   << info.indexNames[idx] << "0;\n";
            }
        }
    };

    auto emit_pa = [&]() {
        os << indent << "int pA = " << posVar(nest.numLevels() - 1)
           << ";  // position of the current A value\n";
    };

    if (!nest.fused()) {
        for (const LoopNode& n : nest.loops())
            emit_loop(n);
        emit_splits({true, true, true, true});
        emit_pa();
        os << indent << computeStatement(nest.alg()) << "\n";
        close_loops(nest.loops().size());
        return os.str();
    }

    // Fused workspace nest: scope prefix, then `init; producer; consumer`
    // as three statements/blocks inside each scope iteration.
    const WorkspaceDecl& ws = nest.workspace();
    const std::size_t scope = ws.scopeDepth;
    std::array<bool, 4> producer_only = info.producerIndex;
    std::array<bool, 4> consumer_only = info.consumerIndex;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        producer_only[idx] = producer_only[idx] && !info.scopeIndex[idx];
        consumer_only[idx] = consumer_only[idx] && !info.scopeIndex[idx];
    }

    for (std::size_t d = 0; d < scope; ++d)
        emit_loop(nest.loops()[d]);
    emit_splits(info.scopeIndex);

    os << indent << "// workspace over '" << info.indexNames[ws.index]
       << "': init phase\n";
    os << indent << "float w[" << ws.extent << "];\n";
    os << indent << "for (int _w = 0; _w < " << ws.extent
       << "; _w++) w[_w] = 0.0f;\n";

    os << indent << "// producer phase: accumulate the dense inner product\n";
    for (std::size_t d = scope; d < nest.loops().size(); ++d)
        emit_loop(nest.loops()[d]);
    emit_splits(producer_only);
    os << indent << "w[j] += B[i * K + k] * C[k * J + j];\n";
    close_loops(nest.loops().size() - scope);

    os << indent << "// consumer phase: scale by A and expand along m\n";
    for (const LoopNode& n : nest.consumerLoops())
        emit_loop(n);
    emit_splits(consumer_only);
    emit_pa();
    os << indent << "E[i * M + m] += A_vals[pA] * w[j] * F[j * M + m];\n";
    close_loops(nest.consumerLoops().size());

    close_loops(scope);
    return os.str();
}

std::string
emitC(const SuperSchedule& s, const ProblemShape& shape)
{
    return emitC(lower(s, shape), s.numThreads, s.key());
}

// ==== Compilable kernel emitter (the JIT backend's frontend) ============
//
// emitC above pretty-prints the nest for humans; emitKernelC prints the
// same nest as a self-contained C translation unit behind the fixed
// waco_kernel ABI. Both walk the identical IR, but the kernel emitter
// additionally (a) mirrors the interpreter's floating-point operation
// order in every leaf so compiled results are bitwise identical, (b)
// guards ceil-division split padding the way the interpreter's inBounds
// does — or removes the guard entirely by clamping the ragged tail loop
// (pass 1), and (c) replaces the fused nests' stack VLA workspace with
// the caller-provided heap scratch parameter (pass 2).

namespace {

/** Row/column strides of one dense input operand under a fixed layout. */
struct OpStrides
{
    u64 row = 0;
    u64 col = 0;
};

/** How one split index's padding overshoot is handled in a given walk. */
enum class GuardKind : unsigned char
{
    None,      ///< No overshoot (or handled by an enclosing walk).
    Predicate, ///< Interpreter-equivalent leaf guard: if (i >= E) continue;
    Clamp,     ///< Ragged-tail loop limit: min(split, E - outer*split).
};

struct WalkPlan
{
    std::array<GuardKind, 4> guard = {GuardKind::None, GuardKind::None,
                                      GuardKind::None, GuardKind::None};
    /** Walk position of the loop whose trip count is clamped. */
    std::array<std::size_t, 4> clampAt = {0, 0, 0, 0};
};

class KernelEmitter
{
  public:
    KernelEmitter(const LoopNest& nest, const KernelEmitOptions& opt)
        : nest_(nest), info_(algorithmInfo(nest.alg())), opt_(opt)
    {
        const auto& ext = nest_.shape().indexExtent;
        std::size_t in = 0;
        for (const DenseOperand& op : info_.denseOperands) {
            if (op.isOutput)
                continue;
            bool rm = in < opt_.inputRowMajor.size()
                          ? static_cast<bool>(opt_.inputRowMajor[in])
                          : op.rowMajorDefault;
            OpStrides s;
            if (op.indices.size() == 2) {
                u64 rows = ext[op.indices[0]];
                u64 cols = ext[op.indices[1]];
                s = rm ? OpStrides{cols, 1} : OpStrides{1, rows};
            }
            strides_.push_back(s);
            ++in;
        }
    }

    std::string emit();

  private:
    // -- small formatting helpers -------------------------------------
    void line(const std::string& text) { os_ << ind_ << text << "\n"; }
    void open() { ind_ += "    "; }
    void close()
    {
        ind_.resize(ind_.size() - 4);
        line("}");
    }
    static std::string str(u64 v) { return std::to_string(v); }
    /** `var * stride`, folding `* 1` away. */
    static std::string mul(const std::string& var, u64 stride)
    {
        return stride == 1 ? var : var + " * " + str(stride);
    }
    /** Two-index address `r*rs + c*cs`. */
    static std::string addr(const std::string& r, u64 rs,
                            const std::string& c, u64 cs)
    {
        return mul(r, rs) + " + " + mul(c, cs);
    }
    std::string idx(u32 i) const { return info_.indexNames[i]; }
    /** Extent of index @p i. */
    u64 extOf(u32 i) const { return nest_.shape().indexExtent[i]; }
    const OpStrides& opStride(std::size_t in) const { return strides_[in]; }

    // -- nest walking --------------------------------------------------
    bool overshoots(u32 i) const
    {
        u32 s = nest_.splitOf(i);
        return s > 1 && static_cast<u64>(ceilDiv(
                            nest_.shape().indexExtent[i], s)) *
                                s !=
                            nest_.shape().indexExtent[i];
    }
    WalkPlan planWalk(const std::vector<LoopNode>& walk, std::size_t from,
                      std::size_t to, bool hostTop,
                      std::size_t tailCut) const;
    /** Position-var liveness of one walk emission: which levels' pos
     *  bindings are consumed later. Null walk = everything is needed
     *  (the scope prefix, whose bindings feed the nested phases). */
    struct PosUse
    {
        const std::vector<LoopNode>* walk = nullptr;
        std::size_t to = 0;
        bool leafUsesPos = true; ///< False for the producer phase.
    };
    /** True when posVar(lv) bound at depth @p d has a consumer: a
     *  traversal/locate of level lv+1 deeper in the walk, or the phase
     *  leaf's pA when lv is the last level. A U-level consumer only
     *  counts if its own (conditional) binding is emitted — hence the
     *  recursion; a C traversal or binary search always reads pos. */
    bool posNeeded(const PosUse& pu, std::size_t d, u32 lv) const
    {
        if (pu.walk == nullptr)
            return true;
        if (pu.leafUsesPos && lv + 1 == nest_.numLevels())
            return true;
        for (std::size_t k = d; k < pu.to; ++k) {
            const LoopNode& n = (*pu.walk)[k];
            if (k > d && n.kind == LoopKind::Sparse &&
                static_cast<u32>(n.level) == lv + 1) {
                if (nest_.levelFormat(n.level) == LevelFormat::Compressed)
                    return true;
                return posNeeded(pu, k, lv + 1);
            }
            for (const LocateStep& ls : n.locates) {
                if (ls.level != lv + 1)
                    continue;
                if (ls.binarySearch)
                    return true;
                return posNeeded(pu, k, lv + 1);
            }
        }
        return false;
    }
    void emitNode(const LoopNode& n, bool hostTop, bool clamped,
                  const PosUse& pu, std::size_t d);
    void emitWalkLoops(const std::vector<LoopNode>& walk, std::size_t from,
                       std::size_t to, bool hostTop, const WalkPlan& plan,
                       const PosUse& pu);
    std::string guardCondition(const WalkPlan& plan) const;
    void emitGuard(const WalkPlan& plan);
    void emitValuePos();

    // -- leaves (each mirrors the interpreter leaf of the same name) ---
    void emitScalarLeaf();
    void emitTailLeaf();
    void emitProducerScalar();
    void emitProducerTail();
    void emitConsumerScalar();
    void emitConsumerTail();

    const LoopNest& nest_;
    const AlgorithmInfo& info_;
    KernelEmitOptions opt_;
    std::ostringstream os_;
    std::string ind_;
    std::vector<OpStrides> strides_;
    std::array<bool, 8> slotBound_ = {};
    std::array<bool, 4> combinedDone_ = {};
};

WalkPlan
KernelEmitter::planWalk(const std::vector<LoopNode>& walk, std::size_t from,
                        std::size_t to, bool hostTop,
                        std::size_t tailCut) const
{
    WalkPlan plan;
    for (u32 i = 0; i < info_.numIndices; ++i) {
        if (!overshoots(i))
            continue;
        std::size_t dOut = to, dIn = to;
        for (std::size_t d = from; d < to; ++d) {
            if (walk[d].slot == outerSlot(i))
                dOut = d;
            if (walk[d].slot == innerSlot(i))
                dIn = d;
        }
        if (dOut == to && dIn == to)
            continue; // bound entirely by an enclosing walk
        plan.guard[i] = GuardKind::Predicate;
        // Pass 1: clamp the ragged tail instead of predicating every
        // leaf visit — legal when the inner (later-binding) half is a
        // plain coordinate loop we may shorten. Compressed traversals
        // iterate stored positions, not coordinates, so they keep the
        // predicate; so does a host-ranged top loop (the chunk range is
        // the caller's contract).
        if (!opt_.clampSplitTails || dIn == to || (dOut != to && dOut > dIn))
            continue;
        const LoopNode& n = walk[dIn];
        bool coordLoop =
            n.kind == LoopKind::Dense ||
            nest_.levelFormat(n.level) == LevelFormat::Uncompressed;
        if (!coordLoop || (hostTop && dIn == from) || dIn >= tailCut)
            continue;
        plan.guard[i] = GuardKind::Clamp;
        plan.clampAt[i] = dIn;
    }
    return plan;
}

/** One loop header + its position/coordinate bookkeeping and locates. */
void
KernelEmitter::emitNode(const LoopNode& n, bool hostTop, bool clamped,
                        const PosUse& pu, std::size_t d)
{
    std::string var = nest_.slotVarName(n.slot);
    std::string lo = hostTop ? "waco_begin" : "0";
    std::string hi = hostTop ? "waco_end"
                     : clamped ? var + "_lim"
                               : str(n.extent);

    if (clamped) {
        u32 i = slotIndex(n.slot);
        u64 s = nest_.splitOf(i);
        std::string rem = str(extOf(i)) + " - " +
                          mul(nest_.slotVarName(outerSlot(i)), s);
        line("const int64_t " + var + "_lim = (" + rem + ") < " + str(s) +
             " ? (" + rem + ") : " + str(s) + ";");
    }

    if (n.kind == LoopKind::Dense) {
        line("for (int64_t " + var + " = " + lo + "; " + var + " < " + hi +
             "; " + var + "++) {");
        open();
    } else if (nest_.levelFormat(n.level) == LevelFormat::Uncompressed) {
        u32 lv = static_cast<u32>(n.level);
        line("for (int64_t " + var + " = " + lo + "; " + var + " < " + hi +
             "; " + var + "++) {");
        open();
        if (posNeeded(pu, d, lv)) {
            line("const int64_t " + posVar(lv) + " = " +
                 (lv == 0 ? var
                          : mul(parentPos(lv), levelExtent(nest_, lv)) +
                                " + " + var) +
                 ";");
        }
    } else {
        u32 lv = static_cast<u32>(n.level);
        std::string L = std::to_string(lv);
        std::string p = posVar(lv);
        if (hostTop) {
            line("for (int64_t " + p + " = waco_begin; " + p +
                 " < waco_end; " + p + "++) {");
        } else {
            std::string par = lv == 0 ? "0" : parentPos(lv);
            line("for (int64_t " + p + " = (int64_t)pos" + L + "[" + par +
                 "]; " + p + " < (int64_t)pos" + L + "[" + par + " + 1]; " +
                 p + "++) {");
        }
        open();
        line("const int64_t " + var + " = (int64_t)crd" + L + "[" + p +
             "];");
    }
    slotBound_[n.slot] = true;

    for (const LocateStep& ls : n.locates) {
        u32 lv = ls.level;
        std::string L = std::to_string(lv);
        std::string p = posVar(lv);
        std::string lvar = nest_.slotVarName(ls.slot);
        std::string par = lv == 0 ? "0" : parentPos(lv);
        if (ls.binarySearch) {
            line("const int64_t " + p + " = waco_search(crd" + L +
                 ", (int64_t)pos" + L + "[" + par + "], (int64_t)pos" + L +
                 "[" + par + " + 1], " + lvar + ");");
            line("if (" + p + " < 0) continue;");
        } else if (posNeeded(pu, d, lv)) {
            line("const int64_t " + p + " = " +
                 (lv == 0 ? lvar
                          : mul(parentPos(lv), levelExtent(nest_, lv)) +
                                " + " + lvar) +
                 ";");
        }
    }

    // Recombine the split coordinate once both halves are bound.
    u32 i = slotIndex(n.slot);
    if (nest_.splitOf(i) > 1 && !combinedDone_[i] &&
        slotBound_[outerSlot(i)] && slotBound_[innerSlot(i)]) {
        line("const int64_t " + idx(i) + " = " +
             mul(nest_.slotVarName(outerSlot(i)), nest_.splitOf(i)) +
             " + " + nest_.slotVarName(innerSlot(i)) + ";");
        combinedDone_[i] = true;
    }
}

void
KernelEmitter::emitWalkLoops(const std::vector<LoopNode>& walk,
                             std::size_t from, std::size_t to, bool hostTop,
                             const WalkPlan& plan, const PosUse& pu)
{
    for (std::size_t d = from; d < to; ++d) {
        bool clamped = false;
        for (u32 i = 0; i < info_.numIndices; ++i)
            clamped |= plan.guard[i] == GuardKind::Clamp &&
                       plan.clampAt[i] == d;
        emitNode(walk[d], hostTop && d == from, clamped, pu, d);
    }
}

std::string
KernelEmitter::guardCondition(const WalkPlan& plan) const
{
    std::string cond;
    for (u32 i = 0; i < info_.numIndices; ++i) {
        if (plan.guard[i] != GuardKind::Predicate)
            continue;
        if (!cond.empty())
            cond += " || ";
        cond += idx(i) + " >= " + str(extOf(i));
    }
    return cond;
}

void
KernelEmitter::emitGuard(const WalkPlan& plan)
{
    std::string cond = guardCondition(plan);
    if (!cond.empty())
        line("if (" + cond + ") continue;");
}

void
KernelEmitter::emitValuePos()
{
    line("const int64_t pA = " + posVar(nest_.numLevels() - 1) + ";");
}

void
KernelEmitter::emitScalarLeaf()
{
    const auto& ext = nest_.shape().indexExtent;
    switch (nest_.alg()) {
      case Algorithm::SpMV:
        emitValuePos();
        line("out[" + idx(0) + "] += vals[pA] * b[" + idx(1) + "];");
        return;
      case Algorithm::SpMM: {
        const OpStrides& bs = opStride(0);
        emitValuePos();
        line("out[" + addr(idx(0), ext[2], idx(2), 1) + "] += vals[pA] * b[" +
             addr(idx(1), bs.row, idx(2), bs.col) + "];");
        return;
      }
      case Algorithm::SDDMM: {
        const OpStrides& bs = opStride(0);
        const OpStrides& cs = opStride(1);
        emitValuePos();
        line("out[pA] += vals[pA] * b[" +
             addr(idx(0), bs.row, idx(2), bs.col) + "] * c[" +
             addr(idx(2), cs.row, idx(1), cs.col) + "];");
        return;
      }
      case Algorithm::MTTKRP: {
        const OpStrides& bs = opStride(0);
        const OpStrides& cs = opStride(1);
        emitValuePos();
        line("out[" + addr(idx(0), ext[3], idx(3), 1) + "] += vals[pA] * b[" +
             addr(idx(1), bs.row, idx(3), bs.col) + "] * c[" +
             addr(idx(2), cs.row, idx(3), cs.col) + "];");
        return;
      }
      case Algorithm::FusedSDDMMSpMM:
        break;
    }
    panic("emitKernelC: fused nests emit per-phase leaves");
}

/** The fused innermost dense loop, matching the interpreter tail()s'
 *  accumulation order float-op for float-op. */
void
KernelEmitter::emitTailLeaf()
{
    const auto& ext = nest_.shape().indexExtent;
    switch (nest_.alg()) {
      case Algorithm::SpMM: {
        const OpStrides& bs = opStride(0);
        u64 J = ext[2];
        emitValuePos();
        line("const float v = vals[pA];");
        line("const float* const bp = b + " + mul(idx(1), bs.row) + ";");
        line("float* const cp = out + " + mul(idx(0), J) + ";");
        line("for (int64_t " + idx(2) + " = 0; " + idx(2) + " < " + str(J) +
             "; " + idx(2) + "++)");
        line("    cp[" + idx(2) + "] += v * bp[" + mul(idx(2), bs.col) +
             "];");
        return;
      }
      case Algorithm::SDDMM: {
        const OpStrides& bs = opStride(0);
        const OpStrides& cs = opStride(1);
        u64 K = ext[2];
        emitValuePos();
        line("const float v = vals[pA];");
        line("if (v != 0.0f) {"); // dense-block padding carries zeros
        open();
        line("const float* const bp = b + " + mul(idx(0), bs.row) + ";");
        line("const float* const cp = c + " + mul(idx(1), cs.col) + ";");
        line("float dot = 0.0f;");
        line("for (int64_t " + idx(2) + " = 0; " + idx(2) + " < " + str(K) +
             "; " + idx(2) + "++)");
        line("    dot += bp[" + mul(idx(2), bs.col) + "] * cp[" +
             mul(idx(2), cs.row) + "];");
        line("out[pA] += v * dot;");
        close();
        return;
      }
      case Algorithm::MTTKRP: {
        const OpStrides& bs = opStride(0);
        const OpStrides& cs = opStride(1);
        u64 J = ext[3];
        emitValuePos();
        line("const float v = vals[pA];");
        line("const float* const bp = b + " + mul(idx(1), bs.row) + ";");
        line("const float* const cp = c + " + mul(idx(2), cs.row) + ";");
        line("float* const dp = out + " + mul(idx(0), J) + ";");
        line("for (int64_t " + idx(3) + " = 0; " + idx(3) + " < " + str(J) +
             "; " + idx(3) + "++)");
        line("    dp[" + idx(3) + "] += v * bp[" + mul(idx(3), bs.col) +
             "] * cp[" + mul(idx(3), cs.col) + "];");
        return;
      }
      case Algorithm::SpMV:
      case Algorithm::FusedSDDMMSpMM:
        break;
    }
    panic("emitKernelC: no vector tail for this walk");
}

void
KernelEmitter::emitProducerScalar()
{
    const OpStrides& bs = opStride(0);
    const OpStrides& cs = opStride(1);
    line("waco_ws[" + idx(1) + "] += b[" +
         addr(idx(0), bs.row, idx(2), bs.col) + "] * c[" +
         addr(idx(2), cs.row, idx(1), cs.col) + "];");
}

void
KernelEmitter::emitProducerTail()
{
    const OpStrides& bs = opStride(0);
    const OpStrides& cs = opStride(1);
    u64 K = nest_.shape().indexExtent[2];
    line("const float* const bp = b + " + mul(idx(0), bs.row) + ";");
    line("const float* const cp = c + " + mul(idx(1), cs.col) + ";");
    line("float dot = 0.0f;");
    line("for (int64_t " + idx(2) + " = 0; " + idx(2) + " < " + str(K) +
         "; " + idx(2) + "++)");
    line("    dot += bp[" + mul(idx(2), bs.col) + "] * cp[" +
         mul(idx(2), cs.row) + "];");
    line("waco_ws[" + idx(1) + "] += dot;");
}

void
KernelEmitter::emitConsumerScalar()
{
    const OpStrides& fs = opStride(2);
    u64 M = nest_.shape().indexExtent[3];
    emitValuePos();
    line("out[" + addr(idx(0), M, idx(3), 1) + "] += vals[pA] * waco_ws[" +
         idx(1) + "] * f[" + addr(idx(1), fs.row, idx(3), fs.col) + "];");
}

void
KernelEmitter::emitConsumerTail()
{
    const OpStrides& fs = opStride(2);
    u64 M = nest_.shape().indexExtent[3];
    emitValuePos();
    line("const float v = vals[pA] * waco_ws[" + idx(1) + "];");
    line("const float* const fp = f + " + mul(idx(1), fs.row) + ";");
    line("float* const ep = out + " + mul(idx(0), M) + ";");
    line("for (int64_t " + idx(3) + " = 0; " + idx(3) + " < " + str(M) +
         "; " + idx(3) + "++)");
    line("    ep[" + idx(3) + "] += v * fp[" + mul(idx(3), fs.col) + "];");
}

std::string
KernelEmitter::emit()
{
    const std::vector<LoopNode>& loops = nest_.loops();
    const std::size_t numLoops = loops.size();

    // Header comment: what this kernel is and where it came from.
    os_ << "/* WACO compiled kernel\n";
    os_ << " * " << algorithmName(nest_.alg()) << ": " << info_.einsum
        << "\n";
    os_ << " * A stored as ";
    for (u32 l = 0; l < nest_.numLevels(); ++l)
        os_ << (nest_.levelFormat(l) == LevelFormat::Uncompressed ? 'U'
                                                                  : 'C');
    os_ << "(";
    for (u32 l = 0; l < nest_.numLevels(); ++l)
        os_ << (l ? "," : "") << nest_.slotVarName(nest_.levelSlot(l));
    os_ << ")\n";
    if (!opt_.cacheKey.empty())
        os_ << " * cache key: " << opt_.cacheKey << "\n";
    os_ << " */\n";
    os_ << "#include <stdint.h>\n\n";

    // Binary-search locate helper, only when some locate needs it.
    bool needSearch = false;
    auto scanLocates = [&](const std::vector<LoopNode>& ls) {
        for (const LoopNode& n : ls)
            for (const LocateStep& s : n.locates)
                needSearch |= s.binarySearch;
    };
    scanLocates(loops);
    scanLocates(nest_.consumerLoops());
    if (needSearch) {
        os_ << "static int64_t\n"
               "waco_search(const uint32_t* crd, int64_t lo, int64_t hi,\n"
               "            int64_t target)\n"
               "{\n"
               "    const int64_t end = hi;\n"
               "    while (lo < hi) {\n"
               "        const int64_t mid = lo + (hi - lo) / 2;\n"
               "        if ((int64_t)crd[mid] < target)\n"
               "            lo = mid + 1;\n"
               "        else\n"
               "            hi = mid;\n"
               "    }\n"
               "    return (lo < end && (int64_t)crd[lo] == target) ? lo\n"
               "                                                    : -1;\n"
               "}\n\n";
    }

    // The argument block: must stay layout-identical to WacoKernelArgs.
    os_ << "typedef struct {\n"
           "    const uint64_t* pos[8];\n"
           "    const uint32_t* crd[8];\n"
           "    const float* vals;\n"
           "    const float* b;\n"
           "    const float* c;\n"
           "    const float* f;\n"
           "    float* out;\n"
           "} waco_args_t;\n\n";

    os_ << "void\n"
           "waco_kernel(const waco_args_t* args, int64_t waco_begin,\n"
           "            int64_t waco_end, float* waco_ws)\n"
           "{\n";
    const std::string head = os_.str();
    os_.str("");
    os_.clear();
    ind_ = "    ";

    // The body is rendered first; the unpack block is assembled
    // afterwards with exactly the members the body references, so the
    // unit survives -Werror=unused-variable (e.g. a host-ranged top
    // Compressed loop never reads its own pos array).
    auto finish = [&]() {
        os_ << "}\n";
        const std::string body = os_.str();
        auto uses = [&](const std::string& name) {
            return body.find(name) != std::string::npos;
        };
        std::ostringstream decl;
        const char* ind = "    ";
        decl << ind << "const float* const vals = args->vals;\n";
        decl << ind << "const float* const b = args->b;\n";
        if (strides_.size() >= 2)
            decl << ind << "const float* const c = args->c;\n";
        if (strides_.size() >= 3)
            decl << ind << "const float* const f = args->f;\n";
        decl << ind << "float* const out = args->out;\n";
        for (u32 l = 0; l < nest_.numLevels(); ++l) {
            if (nest_.levelFormat(l) != LevelFormat::Compressed)
                continue;
            std::string L = std::to_string(l);
            if (uses("pos" + L))
                decl << ind << "const uint64_t* const pos" << L
                     << " = args->pos[" << L << "];\n";
            if (uses("crd" + L))
                decl << ind << "const uint32_t* const crd" << L
                     << " = args->crd[" << L << "];\n";
        }
        if (!nest_.fused())
            decl << ind << "(void)waco_ws;\n";
        return head + decl.str() + "\n" + body;
    };

    if (!nest_.fused()) {
        bool tail = nest_.leaf().vectorIndex >= 0 && numLoops >= 2;
        std::size_t cut = tail ? numLoops - 1 : numLoops;
        WalkPlan plan = planWalk(loops, 0, cut, true, cut);
        PosUse pu{&loops, cut, true};
        emitWalkLoops(loops, 0, cut, true, plan, pu);
        emitGuard(plan);
        if (tail)
            emitTailLeaf();
        else
            emitScalarLeaf();
        for (std::size_t d = 0; d < cut; ++d)
            close();
        return finish();
    }

    // Fused workspace nest: host-chunked scope prefix, then per scope
    // iteration `init; producer; consumer` — the workspace lives in the
    // hoisted waco_ws scratch instead of emitC's stack VLA (pass 2).
    const WorkspaceDecl& ws = nest_.workspace();
    const std::size_t scope = ws.scopeDepth;

    // Prefix bindings feed the nested phases, so they are always live.
    WalkPlan prefixPlan = planWalk(loops, 0, scope, true, scope);
    emitWalkLoops(loops, 0, scope, true, prefixPlan, PosUse{});
    emitGuard(prefixPlan);

    line("for (int64_t waco_wi = 0; waco_wi < " + str(ws.extent) +
         "; waco_wi++)");
    line("    waco_ws[waco_wi] = 0.0f;");

    auto savedSlots = slotBound_;
    auto savedCombined = combinedDone_;

    { // producer phase
        bool tail = nest_.leaf().vectorIndex >= 0 && numLoops - scope >= 2;
        std::size_t cut = tail ? numLoops - 1 : numLoops;
        WalkPlan plan = planWalk(loops, scope, cut, false, cut);
        line("{");
        open();
        // The producer leaf never reads pA: bindings of A's levels are
        // live only while deeper traversals/locates consume them.
        emitWalkLoops(loops, scope, cut, false, plan,
                      PosUse{&loops, cut, false});
        emitGuard(plan);
        if (tail)
            emitProducerTail();
        else
            emitProducerScalar();
        for (std::size_t d = scope; d < cut; ++d)
            close();
        close(); // phase block
    }

    slotBound_ = savedSlots;
    combinedDone_ = savedCombined;

    { // consumer phase
        const std::vector<LoopNode>& cons = nest_.consumerLoops();
        bool tail =
            nest_.consumerLeaf().vectorIndex >= 0 && cons.size() >= 2;
        std::size_t cut = tail ? cons.size() - 1 : cons.size();
        WalkPlan plan = planWalk(cons, 0, cut, false, cut);
        line("{");
        open();
        emitWalkLoops(cons, 0, cut, false, plan, PosUse{&cons, cut, true});
        emitGuard(plan);
        if (tail)
            emitConsumerTail();
        else
            emitConsumerScalar();
        for (std::size_t d = 0; d < cut; ++d)
            close();
        close(); // phase block
    }

    for (std::size_t d = 0; d < scope; ++d)
        close();
    return finish();
}

} // namespace

std::string
emitKernelC(const LoopNest& nest, const KernelEmitOptions& opt)
{
#ifndef NDEBUG
    {
        auto diags = analysis::verifyLoopNest(nest);
        fatalIf(diags.hasErrors(),
                "emitKernelC: invalid loop nest:\n" + diags.format());
    }
#endif
    return KernelEmitter(nest, opt).emit();
}

} // namespace waco
