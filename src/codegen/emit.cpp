#include "codegen/emit.hpp"

#include <sstream>

#include "analysis/loopnest_verifier.hpp"

namespace waco {

namespace {

/** The compute statement of each kernel, in terms of full index names. */
std::string
computeStatement(Algorithm alg)
{
    switch (alg) {
      case Algorithm::SpMV:
        return "C[i] += A_vals[pA] * B[k];";
      case Algorithm::SpMM:
        return "C[i * J + j] += A_vals[pA] * B[k * J + j];";
      case Algorithm::SDDMM:
        return "D_vals[pA] += A_vals[pA] * B[i * K + k] * C[k * J + j];";
      case Algorithm::MTTKRP:
        return "D[i * J + j] += A_vals[pA] * B[k * J + j] * C[l * J + j];";
      case Algorithm::FusedSDDMMSpMM:
        break; // fused nests print two phase statements, not one
    }
    panic("unknown algorithm");
}

std::string
posVar(u32 level)
{
    return "p" + std::to_string(level);
}

/** Position expression of the level above @p level ("0" for the root). */
std::string
parentPos(u32 level)
{
    return level == 0 ? "0" : posVar(level - 1);
}

/** Coordinate extent of storage level @p level. */
u32
levelExtent(const LoopNest& nest, u32 level)
{
    u32 slot = nest.levelSlot(level);
    u32 idx = slotIndex(slot);
    u32 split = nest.splitOf(idx);
    return slotIsInner(slot)
               ? split
               : ceilDiv(nest.shape().indexExtent[idx], split);
}

/** `pL = parent * extent + coord` for U levels (level 0 has no parent). */
std::string
uPosExpr(const LoopNest& nest, u32 level, const std::string& coord)
{
    if (level == 0)
        return coord;
    return parentPos(level) + " * " + std::to_string(levelExtent(nest, level)) +
           " + " + coord;
}

} // namespace

std::string
emitC(const LoopNest& nest, u32 numThreads, const std::string& scheduleKey)
{
#ifndef NDEBUG
    // The emitter prints whatever nest it is handed; make sure a fromRaw
    // nest cannot turn into plausible-looking C that would mis-execute.
    {
        auto diags = analysis::verifyLoopNest(nest);
        fatalIf(diags.hasErrors(),
                "emitC: invalid loop nest:\n" + diags.format());
    }
#endif
    const auto& info = algorithmInfo(nest.alg());
    std::ostringstream os;

    os << "// " << algorithmName(nest.alg()) << ": " << info.einsum << "\n";
    os << "// A stored as ";
    for (u32 l = 0; l < nest.numLevels(); ++l)
        os << (nest.levelFormat(l) == LevelFormat::Uncompressed ? 'U' : 'C');
    os << "(";
    for (u32 l = 0; l < nest.numLevels(); ++l)
        os << (l ? "," : "") << nest.slotVarName(nest.levelSlot(l));
    os << ")\n";
    if (!scheduleKey.empty()) {
        os << "// generated for a SuperSchedule with key\n";
        os << "//   " << scheduleKey << "\n";
    }

    std::string indent;

    // One loop header (+ position bookkeeping and locate drains), shared by
    // the single-expression path and both phases of a fused nest.
    auto emit_loop = [&](const LoopNode& n) {
        std::string var = nest.slotVarName(n.slot);

        if (n.parallel) {
            os << indent << "#pragma omp parallel for schedule(dynamic, "
               << n.chunk << ") num_threads(" << numThreads << ")\n";
        }

        if (n.kind == LoopKind::Dense) {
            os << indent << "for (int " << var << " = 0; " << var << " < "
               << n.extent << "; " << var << "++) {";
            if (n.level >= 0)
                os << "  // discordant with A's level order";
            os << "\n";
        } else if (nest.levelFormat(n.level) ==
                   LevelFormat::Uncompressed) {
            u32 lv = static_cast<u32>(n.level);
            os << indent << "for (int " << var << " = 0; " << var << " < "
               << n.extent << "; " << var << "++) {"
               << "  // A level " << lv << ": U\n";
            os << indent << "    int " << posVar(lv) << " = "
               << uPosExpr(nest, lv, var) << ";\n";
        } else {
            u32 lv = static_cast<u32>(n.level);
            std::string L = std::to_string(lv);
            std::string p = posVar(lv);
            os << indent << "for (int " << p << " = A" << L << "_pos["
               << (lv == 0 ? "0" : parentPos(lv)) << "]; " << p << " < A"
               << L << "_pos["
               << (lv == 0 ? "1" : parentPos(lv) + " + 1") << "]; " << p
               << "++) {  // A level " << L << ": C\n";
            os << indent << "    int " << var << " = A" << L << "_crd[" << p
               << "];\n";
        }

        for (const LocateStep& ls : n.locates) {
            std::string L = std::to_string(ls.level);
            std::string p = posVar(ls.level);
            std::string lvar = nest.slotVarName(ls.slot);
            if (ls.binarySearch) {
                os << indent << "    // discordant: locate " << lvar
                   << " in A level " << L
                   << " via binary search over A" << L << "_crd\n";
                os << indent << "    int " << p << " = waco_search(A" << L
                   << "_crd, A" << L << "_pos[" << parentPos(ls.level)
                   << "], A" << L << "_pos[" << parentPos(ls.level)
                   << " + 1], " << lvar << ");\n";
                os << indent << "    if (" << p << " < 0) continue;\n";
            } else {
                os << indent << "    // discordant: locate " << lvar
                   << " in A level " << L << " via direct offset\n";
                os << indent << "    int " << p << " = "
                   << uPosExpr(nest, ls.level, lvar) << ";\n";
            }
        }
        indent += "    ";
    };

    auto close_loops = [&](std::size_t count) {
        while (count-- > 0) {
            indent.resize(indent.size() - 4);
            os << indent << "}\n";
        }
    };

    // Recombine split coordinates for the indices selected by @p wanted.
    auto emit_splits = [&](const std::array<bool, 4>& wanted) {
        for (u32 idx = 0; idx < info.numIndices; ++idx) {
            u32 split = nest.splitOf(idx);
            if (wanted[idx] && split > 1) {
                os << indent << "int " << info.indexNames[idx] << " = "
                   << info.indexNames[idx] << "1 * " << split << " + "
                   << info.indexNames[idx] << "0;\n";
            }
        }
    };

    auto emit_pa = [&]() {
        os << indent << "int pA = " << posVar(nest.numLevels() - 1)
           << ";  // position of the current A value\n";
    };

    if (!nest.fused()) {
        for (const LoopNode& n : nest.loops())
            emit_loop(n);
        emit_splits({true, true, true, true});
        emit_pa();
        os << indent << computeStatement(nest.alg()) << "\n";
        close_loops(nest.loops().size());
        return os.str();
    }

    // Fused workspace nest: scope prefix, then `init; producer; consumer`
    // as three statements/blocks inside each scope iteration.
    const WorkspaceDecl& ws = nest.workspace();
    const std::size_t scope = ws.scopeDepth;
    std::array<bool, 4> producer_only = info.producerIndex;
    std::array<bool, 4> consumer_only = info.consumerIndex;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        producer_only[idx] = producer_only[idx] && !info.scopeIndex[idx];
        consumer_only[idx] = consumer_only[idx] && !info.scopeIndex[idx];
    }

    for (std::size_t d = 0; d < scope; ++d)
        emit_loop(nest.loops()[d]);
    emit_splits(info.scopeIndex);

    os << indent << "// workspace over '" << info.indexNames[ws.index]
       << "': init phase\n";
    os << indent << "float w[" << ws.extent << "];\n";
    os << indent << "for (int _w = 0; _w < " << ws.extent
       << "; _w++) w[_w] = 0.0f;\n";

    os << indent << "// producer phase: accumulate the dense inner product\n";
    for (std::size_t d = scope; d < nest.loops().size(); ++d)
        emit_loop(nest.loops()[d]);
    emit_splits(producer_only);
    os << indent << "w[j] += B[i * K + k] * C[k * J + j];\n";
    close_loops(nest.loops().size() - scope);

    os << indent << "// consumer phase: scale by A and expand along m\n";
    for (const LoopNode& n : nest.consumerLoops())
        emit_loop(n);
    emit_splits(consumer_only);
    emit_pa();
    os << indent << "E[i * M + m] += A_vals[pA] * w[j] * F[j * M + m];\n";
    close_loops(nest.consumerLoops().size());

    close_loops(scope);
    return os.str();
}

std::string
emitC(const SuperSchedule& s, const ProblemShape& shape)
{
    return emitC(lower(s, shape), s.numThreads, s.key());
}

} // namespace waco
