#include "perfmodel/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <thread>

#include "util/thread_pool.hpp"

namespace waco {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kLineBytes = 64.0;

/** Nonzero count above which pattern scans fan out over the global pool. */
constexpr u64 kParallelScanNnz = 1ull << 16;

u32
scanThreads()
{
    u32 hw = std::max(1u, std::thread::hardware_concurrency());
    return std::min(hw, 8u);
}

/** Mixing step for coordinate-tuple hashing. */
u64
hashCombine(u64 h, u64 v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

/**
 * Approximate distinct counting via linear counting over a fixed bitmap
 * (Whang et al.): insert hashes, then estimate n ≈ -m * ln(empty/m).
 * Replaces exact hash sets in the hot path of the oracle — the estimate is
 * within a few percent for the cardinalities we see, and the bitmap makes
 * one measurement O(nnz) with a small constant.
 */
class LinearCounter
{
  public:
    LinearCounter() : bits_(kWords, 0) {}

    void
    reset()
    {
        std::fill(bits_.begin(), bits_.end(), 0);
    }

    void
    insert(u64 h)
    {
        u64 bit = mix(h);
        bits_[bit >> 6] |= 1ull << (bit & 63);
    }

    /** Thread-safe insert: OR is commutative, so concurrent insertion is
     *  deterministic regardless of interleaving. */
    void
    insertAtomic(u64 h)
    {
        u64 bit = mix(h);
        __atomic_fetch_or(&bits_[bit >> 6], 1ull << (bit & 63),
                          __ATOMIC_RELAXED);
    }

    double
    estimate() const
    {
        u64 set = 0;
        for (u64 w : bits_)
            set += static_cast<u64>(__builtin_popcountll(w));
        if (set == 0)
            return 0.0;
        if (set >= kBits)
            return static_cast<double>(kBits);
        double m = static_cast<double>(kBits);
        return -m * std::log((m - static_cast<double>(set)) / m);
    }

  private:
    static u64
    mix(u64 h)
    {
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 29;
        return h & (kBits - 1);
    }

    static constexpr u64 kBits = 1ull << 22; // 4M bits = 512 KiB
    static constexpr u64 kWords = kBits / 64;
    std::vector<u64> bits_;
};

/** Per-nonzero coordinate of a slot (outer: c/split, inner: c%split).
 *  Uses the nest's extent-clamped splits. */
u32
slotCoordOf(const LoopNest& nest, const AlgorithmInfo& info, u32 slot,
            const std::array<u32, 3>& coords)
{
    u32 idx = slotIndex(slot);
    int d = info.sparseDim[idx];
    panicIf(d < 0, "slotCoordOf on a dense-only index");
    u32 c = coords[d];
    u32 split = nest.splitOf(idx);
    return slotIsInner(slot) ? c % split : c / split;
}

} // namespace

Measurement
RuntimeOracle::measure(const SparseMatrix& m, const ProblemShape& shape,
                       const SuperSchedule& s) const
{
    ++measurements_;
    Measurement out;
    try {
        LoopNest nest = lower(s, shape); // validates the schedule
        auto fmt = HierSparseTensor::build(formatOf(s, shape), m,
                                           maxFormatBytes_);
        std::vector<std::array<u32, 3>> coords(m.nnz());
        for (u64 n = 0; n < m.nnz(); ++n)
            coords[n] = {m.rowIndices()[n], m.colIndices()[n], 0};
        return measureImpl(coords, m.nnz(), shape, s, nest, fmt);
    } catch (const FatalError& e) {
        out.valid = false;
        out.invalidReason = e.what();
        out.seconds = kInf;
        return out;
    }
}

Measurement
RuntimeOracle::measure(const Sparse3Tensor& t, const ProblemShape& shape,
                       const SuperSchedule& s) const
{
    ++measurements_;
    Measurement out;
    try {
        LoopNest nest = lower(s, shape); // validates the schedule
        auto fmt = HierSparseTensor::build(formatOf(s, shape), t,
                                           maxFormatBytes_);
        std::vector<std::array<u32, 3>> coords(t.nnz());
        for (u64 n = 0; n < t.nnz(); ++n)
            coords[n] = {t.iIndices()[n], t.kIndices()[n], t.lIndices()[n]};
        return measureImpl(coords, t.nnz(), shape, s, nest, fmt);
    } catch (const FatalError& e) {
        out.valid = false;
        out.invalidReason = e.what();
        out.seconds = kInf;
        return out;
    }
}

double
RuntimeOracle::conversionSeconds(u64 nnz, u64 stored_values) const
{
    // Sort-dominated assembly of pos/crd/val arrays, single-threaded as in
    // TACO's pack routine.
    double n = static_cast<double>(nnz);
    double cycles = n * std::log2(std::max(2.0, n)) * 4.0 +
                    static_cast<double>(stored_values) * 2.0;
    return cycles / (machine_.freqGHz * 1e9);
}

Measurement
RuntimeOracle::measureImpl(const std::vector<std::array<u32, 3>>& coords,
                           u64 nnz, const ProblemShape& shape,
                           const SuperSchedule& s, const LoopNest& nest,
                           const HierSparseTensor& fmt) const
{
    const auto& info = algorithmInfo(s.alg);
    const MachineConfig& mc = machine_;
    Measurement out;
    out.storedValues = fmt.storedValues();
    out.formatBytes = fmt.bytes();

    // All loop/level structure comes from the lowered nest — the same IR
    // the interpreter executes and the emitter prints.
    const std::vector<LoopNode>& loops = nest.loops();
    const u32 num_loops = static_cast<u32>(loops.size());
    const u32 num_levels = nest.numLevels();

    auto loop_pos = [&](u32 slot) { return nest.loopPositionOf(slot); };

    auto dense_only = [&](u32 idx) { return info.sparseDim[idx] < 0; };

    // ---- visit multipliers from dense-only loops placed outside ----
    auto dense_mult_before = [&](u32 pos) {
        double m = 1.0;
        for (u32 p = 0; p < pos && p < num_loops; ++p) {
            if (dense_only(slotIndex(loops[p].slot)))
                m *= loops[p].extent;
        }
        return m;
    };

    std::vector<double> level_visits(num_levels, 1.0);
    u32 deepest_sparse_pos = 0;
    for (u32 l = 0; l < num_levels; ++l) {
        u32 p = loop_pos(nest.levelSlot(l));
        level_visits[l] = dense_mult_before(p);
        deepest_sparse_pos = std::max(deepest_sparse_pos, p);
    }
    double leaf_visits_mult = dense_mult_before(deepest_sparse_pos);

    double dense_work_total = 1.0;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        if (dense_only(idx))
            dense_work_total *= shape.indexExtent[idx];
    }
    double inner_dense_work = dense_work_total / leaf_visits_mult;

    const double stored = static_cast<double>(fmt.storedValues());
    const double leaf_visits = stored * leaf_visits_mult;

    // ---- SIMD decision for the innermost loop (Figure 14 cliff) ----
    bool simd = false;
    double simd_factor = 1.0;
    if (num_loops > 0) {
        u32 inner = loops[num_loops - 1].slot;
        u32 inner_idx = slotIndex(inner);
        u32 trip = loops[num_loops - 1].extent;
        bool contiguous = false;
        if (dense_only(inner_idx)) {
            // Vector code needs a dense operand contiguous along this index.
            for (std::size_t op = 0; op < info.denseOperands.size(); ++op) {
                const auto& d = info.denseOperands[op];
                if (d.indices.size() < 2)
                    continue;
                bool row_major = d.layoutFixed ? d.rowMajorDefault
                                               : s.denseRowMajor[op];
                u32 contig = row_major ? d.indices[1] : d.indices[0];
                if (contig == inner_idx)
                    contiguous = true;
            }
        } else {
            // Inner dense block of A (U level): contiguous over the padded
            // values only when it is the last storage level, e.g. the UCU
            // SpMV of Figure 14.
            contiguous = num_levels > 0 &&
                         nest.levelSlot(num_levels - 1) == inner &&
                         fmt.levels()[num_levels - 1].fmt ==
                             LevelFormat::Uncompressed;
        }
        if (contiguous && trip >= mc.simdTripThreshold) {
            simd = true;
            simd_factor = mc.simdWidth * 0.75;
        }
    }
    out.simdUsed = simd;

    // ---- compute cycles ----
    double traversal_cycles = 0.0;
    for (u32 l = 0; l < num_levels; ++l) {
        const BuiltLevel& bl = fmt.levels()[l];
        double per = bl.fmt == LevelFormat::Uncompressed
            ? mc.uncompressedLevelCycles
            : mc.compressedLevelCycles;
        traversal_cycles += level_visits[l] *
                            static_cast<double>(bl.numPositions) * per;
    }

    double fma_per_dense_iter = info.flopsPerNnz / 2.0;
    double loads_per_dense_iter = info.flopsPerNnz; // one load per flop operand
    double per_dense_iter_cycles =
        fma_per_dense_iter * mc.fmaCycles / simd_factor +
        loads_per_dense_iter * mc.scalarLoadCycles /
            (simd ? mc.simdWidth : 1.0);
    double leaf_cycles = leaf_visits * inner_dense_work * per_dense_iter_cycles;

    // ---- discordance: searches over compressed levels (Section 3.1) ----
    double discord_cycles = 0.0;
    for (u32 l1 = 0; l1 < num_levels; ++l1) {
        for (u32 l2 = l1 + 1; l2 < num_levels; ++l2) {
            if (loop_pos(nest.levelSlot(l2)) < loop_pos(nest.levelSlot(l1))) {
                const BuiltLevel& deeper = fmt.levels()[l2];
                double parent = std::max<double>(
                    1.0, static_cast<double>(
                             l2 ? fmt.levels()[l2 - 1].numPositions : 1));
                double fanout = std::max(
                    2.0, static_cast<double>(deeper.numPositions) / parent);
                double probes = deeper.fmt == LevelFormat::Compressed
                    ? std::log2(fanout) * mc.searchCyclesPerProbe
                    : mc.uncompressedLevelCycles;
                discord_cycles += leaf_visits * probes;
            }
        }
    }

    // ---- fused workspace nests: phase-split compute costs ----
    double workspace_cycles = 0.0;
    if (nest.fused()) {
        const WorkspaceDecl& wsd = nest.workspace();
        const auto& cons = nest.consumerLoops();

        // The generic leaf term charges the product of ALL dense-only
        // extents (K·M) per stored point; the fused nest does K work in the
        // producer and M in the consumer per stored point instead.
        double prod_dense = 1.0;
        double cons_dense = 1.0;
        for (u32 idx = 0; idx < info.numIndices; ++idx) {
            if (!dense_only(idx))
                continue;
            if (info.producerIndex[idx])
                prod_dense *= shape.indexExtent[idx];
            if (info.consumerIndex[idx])
                cons_dense *= shape.indexExtent[idx];
        }
        leaf_cycles =
            leaf_visits * (prod_dense / leaf_visits_mult) *
                per_dense_iter_cycles +
            stored * cons_dense * per_dense_iter_cycles;

        // The consumer phase re-traverses A's below-scope levels and
        // re-fires their locate drains, once per enclosing dense iteration
        // of the consumer walk.
        double cons_mult = 1.0;
        for (const LoopNode& n : cons) {
            if (n.kind == LoopKind::Sparse) {
                const BuiltLevel& bl = fmt.levels()[n.level];
                double per = bl.fmt == LevelFormat::Uncompressed
                    ? mc.uncompressedLevelCycles
                    : mc.compressedLevelCycles;
                traversal_cycles +=
                    cons_mult * level_visits[n.level] *
                    static_cast<double>(bl.numPositions) * per;
            } else if (dense_only(slotIndex(n.slot))) {
                cons_mult *= n.extent;
            }
            for (const LocateStep& ls : n.locates) {
                const BuiltLevel& bl = fmt.levels()[ls.level];
                double parent = std::max<double>(
                    1.0, static_cast<double>(
                             ls.level ? fmt.levels()[ls.level - 1].numPositions
                                      : 1));
                double fanout = std::max(
                    2.0, static_cast<double>(bl.numPositions) / parent);
                double probes = bl.fmt == LevelFormat::Compressed
                    ? std::log2(fanout) * mc.searchCyclesPerProbe
                    : mc.uncompressedLevelCycles;
                discord_cycles += stored * cons_mult * probes;
            }
        }

        // Workspace init: a dense J-vector zeroed once per scope iteration.
        // (The accumulate/consume accesses ride in the leaf terms, and at
        // 4·J bytes the vector is cache-resident — no miss traffic.)
        double ws_iters = 1.0;
        for (u32 d = 0; d < wsd.scopeDepth && d < num_loops; ++d) {
            const LoopNode& n = loops[d];
            if (n.kind == LoopKind::Sparse) {
                // numPositions already includes outer fan-out.
                ws_iters = static_cast<double>(
                    fmt.levels()[n.level].numPositions);
            } else {
                ws_iters *= n.extent;
            }
        }
        workspace_cycles =
            ws_iters * static_cast<double>(wsd.extent) * mc.scalarLoadCycles;
    }

    // ---- memory traffic ----
    double llc = mc.llcBytes;
    double v_max = leaf_visits_mult;
    for (double v : level_visits)
        v_max = std::max(v_max, v);
    double a_bytes = static_cast<double>(fmt.bytes());
    double a_miss = a_bytes;
    if (v_max > 1.0 && a_bytes > llc)
        a_miss += (v_max - 1.0) * a_bytes;
    // The consumer phase of a fused nest walks A's below-scope levels a
    // second time; an LLC-resident tensor is free, a larger one pays again.
    if (nest.fused() && a_bytes > llc)
        a_miss += a_bytes;

    double dense_miss = 0.0;
    for (std::size_t op = 0; op < info.denseOperands.size(); ++op) {
        const auto& d = info.denseOperands[op];
        bool row_major = d.layoutFixed ? d.rowMajorDefault
                                       : s.denseRowMajor[op];
        // Identify the non-contiguous ("row") index and the contiguous one.
        u32 r_idx, contig_idx;
        bool has_contig;
        if (d.indices.size() == 1) {
            r_idx = d.indices[0];
            contig_idx = 0;
            has_contig = false;
        } else {
            r_idx = row_major ? d.indices[0] : d.indices[1];
            contig_idx = row_major ? d.indices[1] : d.indices[0];
            has_contig = true;
        }

        if (dense_only(r_idx)) {
            // Pathological layout: the strided index is a dense loop, so
            // every access strides through memory. Charge a line per access
            // unless the whole operand is LLC-resident.
            double op_bytes = 4.0;
            for (u32 ix : d.indices)
                op_bytes *= shape.indexExtent[ix];
            double accesses = leaf_visits * inner_dense_work;
            dense_miss += op_bytes <= llc
                ? op_bytes * std::max(1.0, v_max)
                : accesses * kLineBytes * 0.5;
            continue;
        }

        // Bytes fetched per distinct row visit: the contiguous-index slots
        // executing inside the row's deepest loop.
        u32 boundary = loop_pos(
            loop_pos(outerSlot(r_idx)) > loop_pos(innerSlot(r_idx))
                ? outerSlot(r_idx) : innerSlot(r_idx));
        double fetch_bytes = 4.0;
        double dense_outer_mult = 1.0;
        if (has_contig && dense_only(contig_idx)) {
            double inner_extent = 1.0;
            for (u32 p = boundary + 1; p < num_loops; ++p) {
                if (slotIndex(loops[p].slot) == contig_idx)
                    inner_extent *= loops[p].extent;
            }
            // Consumer-only contiguous indices (fused m) loop inside the
            // consumer phase, not in loops(): whole rows are fetched.
            for (const LoopNode& cn : nest.consumerLoops()) {
                if (slotIndex(cn.slot) == contig_idx)
                    inner_extent *= cn.extent;
            }
            fetch_bytes = 4.0 * std::max(1.0, inner_extent);
            dense_outer_mult = shape.indexExtent[contig_idx] /
                               std::max(1.0, inner_extent);
        } else if (has_contig) {
            // Contiguous along another sparse index (e.g. SDDMM's
            // column-major C is contiguous along dense k): fetch whole rows.
            fetch_bytes = 4.0 * shape.indexExtent[contig_idx];
        }
        // Dense-only loops of indices not appearing in this operand re-run
        // the whole access stream when placed outside the row boundary.
        for (u32 p = 0; p < boundary && p < num_loops; ++p) {
            u32 ix = slotIndex(loops[p].slot);
            bool in_op = false;
            for (u32 di : d.indices)
                in_op |= (di == ix);
            if (dense_only(ix) && !in_op)
                dense_outer_mult *= loops[p].extent;
        }

        // Key slots: sparse slots running outside the row boundary,
        // outermost first. Slots of the row index itself are redundant for
        // counting (the row determines them) but essential as cell
        // boundaries in the working-set analysis — e.g. UUC's outer k1
        // chunk is what makes per-chunk row reuse fit the LLC.
        std::vector<u32> key_slots;
        for (u32 p = 0; p < boundary && p < num_loops; ++p) {
            u32 slot = loops[p].slot;
            if (!dense_only(slotIndex(slot)))
                key_slots.push_back(slot);
        }

        // Line-granular row id for thin rows.
        u32 line_div = 1;
        if (fetch_bytes < kLineBytes)
            line_div = static_cast<u32>(kLineBytes / fetch_bytes);
        int rd = info.sparseDim[r_idx];
        panicIf(rd < 0, "sparse row index without sparse dim");

        static thread_local LinearCounter counter;
        auto count_distinct = [&](u32 prefix_len, bool with_row) {
            counter.reset();
            auto hash_of = [&](u64 n) {
                u64 h = 0x12345;
                for (u32 kq = 0; kq < prefix_len; ++kq) {
                    h = hashCombine(h, slotCoordOf(nest, info, key_slots[kq],
                                                   coords[n]));
                }
                if (with_row)
                    h = hashCombine(h, coords[n][rd] / line_div);
                return h;
            };
            if (nnz >= kParallelScanNnz) {
                // Bitmap OR is order-independent, so the estimate is
                // deterministic no matter how the scan is chunked.
                u32 threads = scanThreads();
                globalPool().ensureWorkers(threads - 1);
                globalPool().parallelFor(
                    nnz, 1u << 13, threads, [&](u64 b, u64 e) {
                        for (u64 n = b; n < e; ++n)
                            counter.insertAtomic(hash_of(n));
                    });
            } else {
                for (u64 n = 0; n < nnz; ++n)
                    counter.insert(hash_of(n));
            }
            return counter.estimate();
        };

        // Hierarchical working-set analysis: starting from the finest
        // partition, merge away inner key slots whenever the coarser cell's
        // row working set still fits in the LLC (split-induced tiling).
        u32 p_len = static_cast<u32>(key_slots.size());
        double distinct_rows = count_distinct(p_len, true);
        while (p_len > 0) {
            double coarser_rows = count_distinct(p_len - 1, true);
            double coarser_cells =
                p_len - 1 == 0 ? 1.0 : count_distinct(p_len - 1, false);
            double ws = coarser_rows / std::max(1.0, coarser_cells) *
                        std::max(fetch_bytes, kLineBytes);
            if (ws <= llc) {
                distinct_rows = coarser_rows;
                --p_len;
            } else {
                break;
            }
        }
        // Compulsory footprint of the whole operand vs the per-outer-pass
        // working set: a cache-resident operand costs its footprint once;
        // an operand whose per-pass slice fits (e.g. j-blocked SpMM) costs
        // one slice per outer pass; otherwise the distinct-row estimate
        // with outer repetition applies.
        double distinct_rows_all = count_distinct(0, true);
        double row_full_bytes = std::max(
            has_contig ? 4.0 * shape.indexExtent[contig_idx] : 4.0,
            kLineBytes);
        double full_op_bytes = distinct_rows_all * row_full_bytes;
        double per_pass_bytes =
            distinct_rows_all * std::max(fetch_bytes, kLineBytes);
        double op_miss;
        if (full_op_bytes <= llc) {
            op_miss = full_op_bytes;
        } else if (per_pass_bytes <= llc) {
            op_miss = std::max(full_op_bytes,
                               per_pass_bytes * dense_outer_mult);
        } else {
            op_miss = distinct_rows * std::max(fetch_bytes, kLineBytes) *
                      dense_outer_mult;
        }
        if (d.isOutput)
            op_miss *= 2.0; // write-allocate + writeback
        dense_miss += op_miss;
    }

    double miss_bytes = a_miss + dense_miss;
    out.missBytes = miss_bytes;
    double miss_cycles = miss_bytes / kLineBytes * mc.missLatencyCycles *
                         mc.missOverlapFactor;

    double total_cycles = traversal_cycles + leaf_cycles + discord_cycles +
                          workspace_cycles + miss_cycles;

    // ---- parallel decomposition ----
    u32 p_slot = s.parallelSlot;
    bool p_degenerate = slotDegenerate(s, p_slot);
    if (!p_degenerate && nest.fused()) {
        // A consumer-phase parallel slot is not in loops(): its pragma sits
        // inside the scope loop (R002) and buys nothing — model it serial.
        bool in_producer_walk = false;
        for (const LoopNode& n : loops)
            in_producer_walk |= (n.slot == p_slot);
        p_degenerate = p_degenerate || !in_producer_walk;
    }
    u32 p_pos = p_degenerate ? num_loops : loop_pos(p_slot);
    u32 p_extent = p_degenerate ? 1 : slotExtent(s, shape, p_slot);

    // Work outside the parallel loop runs serially.
    double outside_cycles = 0.0;
    for (u32 l = 0; l < num_levels; ++l) {
        if (loop_pos(nest.levelSlot(l)) < p_pos) {
            const BuiltLevel& bl = fmt.levels()[l];
            double per = bl.fmt == LevelFormat::Uncompressed
                ? mc.uncompressedLevelCycles
                : mc.compressedLevelCycles;
            outside_cycles += level_visits[l] *
                              static_cast<double>(bl.numPositions) * per;
        }
    }
    if (p_degenerate)
        outside_cycles = total_cycles;
    double inside_cycles = std::max(0.0, total_cycles - outside_cycles);

    // Parallel region relaunches for every outer-loop iteration.
    double launches = dense_mult_before(p_pos);
    double deepest_outside_positions = 1.0;
    for (u32 l = 0; l < num_levels; ++l) {
        if (loop_pos(nest.levelSlot(l)) < p_pos) {
            deepest_outside_positions = std::max(
                deepest_outside_positions,
                static_cast<double>(fmt.levels()[l].numPositions));
        }
    }
    launches *= deepest_outside_positions;
    double launch_cycles = launches * mc.parallelLaunchCycles;

    // Per-parallel-iteration work histogram from the actual pattern.
    double makespan = inside_cycles;
    double t_eff = mc.effectiveThreads(s.numThreads);
    out.imbalance = 1.0;
    if (!p_degenerate && p_extent > 1 && inside_cycles > 0.0) {
        std::vector<double> hist(p_extent, 0.0);
        u32 p_idx = slotIndex(p_slot);
        if (dense_only(p_idx)) {
            for (auto& h : hist)
                h = 1.0 / p_extent;
        } else {
            for (u64 n = 0; n < nnz; ++n)
                hist[slotCoordOf(nest, info, p_slot, coords[n])] += 1.0;
            double total_w = static_cast<double>(nnz);
            for (auto& h : hist)
                h /= total_w;
        }
        u32 chunk = std::max<u32>(1, s.ompChunk);
        u32 num_chunks = ceilDiv(p_extent, chunk);
        u32 t = std::max<u32>(1, static_cast<u32>(std::lround(t_eff)));
        std::priority_queue<double, std::vector<double>,
                            std::greater<double>> threads;
        for (u32 q = 0; q < t; ++q)
            threads.push(0.0);
        for (u32 c = 0; c < num_chunks; ++c) {
            double w = 0.0;
            for (u32 e = c * chunk; e < std::min(p_extent, (c + 1) * chunk); ++e)
                w += hist[e];
            double start = threads.top();
            threads.pop();
            threads.push(start + w * inside_cycles + mc.chunkDispatchCycles);
        }
        while (threads.size() > 1)
            threads.pop();
        makespan = threads.top();
        double ideal = inside_cycles / t_eff;
        out.imbalance = ideal > 0.0 ? makespan / ideal : 1.0;
    } else if (!p_degenerate) {
        makespan = inside_cycles; // extent-1 parallel loop: all serial
    }

    double critical_cycles = outside_cycles + launch_cycles + makespan;
    double compute_seconds = critical_cycles / (mc.freqGHz * 1e9);
    double memory_seconds = miss_bytes / (mc.memBwGBs * 1e9);

    out.computeSeconds = compute_seconds;
    out.memorySeconds = memory_seconds;
    out.serialSeconds = (outside_cycles + launch_cycles) / (mc.freqGHz * 1e9);
    out.seconds = std::max(compute_seconds, memory_seconds) +
                  mc.kernelLaunchSeconds;
    return out;
}

} // namespace waco
