#include "perfmodel/robust_measure.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "util/common.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace waco {

RobustMeasurer::RobustMeasurer(const MeasurementBackend& backend,
                               RetryPolicy policy)
    : backend_(backend), policy_(policy), jitterRng_(policy.backoffSeed)
{
    fatalIf(policy_.maxAttempts == 0, "RetryPolicy.maxAttempts must be >= 1");
    fatalIf(policy_.medianOf == 0, "RetryPolicy.medianOf must be >= 1");
    fatalIf(policy_.backoffBase < 0.0 || policy_.backoffJitter < 0.0 ||
                policy_.backoffJitter >= 1.0 ||
                policy_.backoffUnitSeconds < 0.0,
            "RetryPolicy backoff knobs must satisfy base >= 0, "
            "0 <= jitter < 1, unitSeconds >= 0");
}

Measurement
RobustMeasurer::measureRobust(
    const std::function<Measurement()>& attempt) const
{
    WACO_SPAN("measure.call");
    ++stats_.calls;
    WACO_COUNT("measure.calls", 1);
    std::vector<Measurement> samples;
    Measurement last_failure;
    last_failure.seconds = std::numeric_limits<double>::infinity();
    last_failure.valid = false;
    last_failure.invalidReason = "no attempt made";

    for (u32 sample = 0; sample < policy_.medianOf; ++sample) {
        bool got_sample = false;
        for (u32 try_n = 0; try_n < policy_.maxAttempts; ++try_n) {
            if (try_n > 0) {
                ++stats_.retries;
                WACO_COUNT("measure.retries", 1);
                // Exponential backoff with multiplicative jitter: the
                // scheduled 1, 2, 4, ... units are always accounted; the
                // jittered amount is slept only when the policy prices a
                // unit in wall-clock seconds.
                stats_.backoffUnits += 1ull << (try_n - 1);
                double scheduled = policy_.backoffBase *
                                   static_cast<double>(1ull << (try_n - 1));
                double jitter =
                    policy_.backoffJitter > 0.0
                        ? jitterRng_.uniformReal(1.0 - policy_.backoffJitter,
                                                 1.0 + policy_.backoffJitter)
                        : 1.0;
                double accrued = scheduled * jitter;
                stats_.backoffAccrued += accrued;
                if (policy_.backoffUnitSeconds > 0.0) {
                    WACO_COUNT("measure.backoff_sleeps", 1);
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            accrued * policy_.backoffUnitSeconds));
                }
            }
            ++stats_.attempts;
            WACO_COUNT("measure.attempts", 1);
            Measurement m;
            try {
                m = attempt();
            } catch (const MeasurementError& e) {
                ++stats_.faults;
                WACO_COUNT("measure.faults", 1);
                last_failure.invalidReason = e.what();
                continue;
            }
            if (!m.valid) {
                if (m.invalidReason == "timeout") {
                    ++stats_.timeouts;
                    WACO_COUNT("measure.timeouts", 1);
                } else {
                    ++stats_.invalid;
                    WACO_COUNT("measure.invalid", 1);
                }
                last_failure = m;
                continue;
            }
            samples.push_back(std::move(m));
            got_sample = true;
            break;
        }
        // One exhausted sample means the backend is persistently failing
        // for this schedule; taking more samples would not help.
        if (!got_sample)
            break;
    }

    if (samples.empty()) {
        ++stats_.discarded;
        WACO_COUNT("measure.discarded", 1);
        return last_failure;
    }

    // Median-of-k denoising: report the sample with the median runtime so
    // the diagnostic breakdown stays internally consistent, but pin the
    // headline seconds to the exact median (mean of middles when even).
    std::sort(samples.begin(), samples.end(),
              [](const Measurement& a, const Measurement& b) {
                  return a.seconds < b.seconds;
              });
    Measurement out = samples[(samples.size() - 1) / 2];
    if (samples.size() % 2 == 0) {
        out.seconds = 0.5 * (samples[samples.size() / 2 - 1].seconds +
                             samples[samples.size() / 2].seconds);
    }
    return out;
}

Measurement
RobustMeasurer::measure(const SparseMatrix& m, const ProblemShape& shape,
                        const SuperSchedule& s) const
{
    return measureRobust([&] { return backend_.measure(m, shape, s); });
}

Measurement
RobustMeasurer::measure(const Sparse3Tensor& t, const ProblemShape& shape,
                        const SuperSchedule& s) const
{
    return measureRobust([&] { return backend_.measure(t, shape, s); });
}

} // namespace waco
