/**
 * @file
 * FaultyOracle: a MeasurementBackend decorator that makes the deterministic
 * RuntimeOracle behave like real hardware — noisy, occasionally failing,
 * and subject to a measurement-time budget (the paper drops schedules that
 * run for over a minute). Every fault is drawn from an explicitly seeded
 * Rng, so fault sequences are reproducible run-to-run and tests can assert
 * exact retry statistics.
 *
 * Fault model, applied per measure() call in this order:
 *  1. transient failure with probability failProb — alternating (by a
 *     seeded coin) between throwing MeasurementError and returning an
 *     invalid Measurement with reason "transient",
 *  2. multiplicative log-normal noise: seconds *= exp(sigma * N(0,1)),
 *  3. timeout: if the (noisy) runtime exceeds timeoutSeconds, the result is
 *     invalidated with reason "timeout" and its seconds clamped to the
 *     budget (the wall clock the harness actually burned before killing
 *     the over-budget run), keeping aggregate timing stats finite.
 */
#pragma once

#include <limits>

#include "perfmodel/cost_model.hpp"
#include "util/rng.hpp"

namespace waco {

/** Knobs of the injected fault distribution. */
struct FaultConfig
{
    /** Probability a call fails transiently (throw or invalid result). */
    double failProb = 0.0;
    /** Sigma of the multiplicative log-normal runtime noise (0 = exact). */
    double noiseSigma = 0.0;
    /** Measurements whose noisy runtime exceeds this are killed as
     *  timeouts (seconds clamped to the budget, valid=false). */
    double timeoutSeconds = std::numeric_limits<double>::infinity();
    /** Seed of the fault stream (independent of the measured workload). */
    u64 seed = 0x5eed;
};

/** Counters describing what a FaultyOracle actually injected. */
struct FaultStats
{
    u64 calls = 0;     ///< measure() invocations.
    u64 thrown = 0;    ///< Transient failures raised as MeasurementError.
    u64 invalid = 0;   ///< Transient failures returned as invalid results.
    u64 timeouts = 0;  ///< Results killed by the timeout budget.

    u64 faults() const { return thrown + invalid; }
};

/** Seeded fault-injecting decorator around any MeasurementBackend. */
class FaultyOracle : public MeasurementBackend
{
  public:
    /** @param inner backend whose results are corrupted; must outlive this. */
    FaultyOracle(const MeasurementBackend& inner, FaultConfig cfg)
        : inner_(inner), cfg_(cfg), rng_(cfg.seed)
    {}

    const FaultConfig& config() const { return cfg_; }
    const FaultStats& stats() const { return stats_; }

    Measurement measure(const SparseMatrix& m, const ProblemShape& shape,
                        const SuperSchedule& s) const override;
    Measurement measure(const Sparse3Tensor& t, const ProblemShape& shape,
                        const SuperSchedule& s) const override;
    u64 measurementCount() const override { return stats_.calls; }

  private:
    Measurement corrupt(Measurement m) const;

    const MeasurementBackend& inner_;
    FaultConfig cfg_;
    mutable Rng rng_;
    mutable FaultStats stats_;
};

} // namespace waco
