/**
 * @file
 * WallclockMeasurer: a MeasurementBackend that actually RUNS the lowered
 * nest and reports elapsed wall time, instead of estimating it like the
 * analytical RuntimeOracle.
 *
 * Each measure() call builds the input in the schedule's format (over the
 * storage budget -> invalid Measurement, exactly like the oracle),
 * lowers the schedule, synthesizes deterministic dense operands with the
 * layouts the schedule picked, and executes the nest through an injected
 * KernelBackend — the interpreter, or the JIT'd CompiledBackend, which is
 * what `tune_cli --backend compiled` wires up. One warm-up run pays
 * compilation/caching up front; the reported time is the median of the
 * timed rounds. Only the `seconds`/`valid`/storage fields of Measurement
 * are populated — the analytical breakdown diagnostics stay zero.
 */
#pragma once

#include <atomic>

#include "codegen/kernel_backend.hpp"
#include "perfmodel/cost_model.hpp"

namespace waco {

/** Tuning knobs of one WallclockMeasurer. */
struct WallclockOptions
{
    u32 rounds = 3; ///< Timed executions per measure(); median reported.
    /** Thread cap applied to the schedule's annotation; 0 = the host's
     *  hardware concurrency. The paper's 24/48-thread annotations would
     *  oversubscribe small CI machines into pure noise otherwise. */
    u32 maxThreads = 0;
    u64 maxFormatBytes = 512ull * 1024 * 1024;
};

/** Measures (input, shape, schedule) triples by executing them. */
class WallclockMeasurer final : public MeasurementBackend
{
  public:
    explicit WallclockMeasurer(KernelBackend& exec, WallclockOptions opt = {})
        : exec_(exec), opt_(opt)
    {}

    Measurement measure(const SparseMatrix& m, const ProblemShape& shape,
                        const SuperSchedule& s) const override;
    Measurement measure(const Sparse3Tensor& t, const ProblemShape& shape,
                        const SuperSchedule& s) const override;

    u64 measurementCount() const override { return measurements_.load(); }

    /** The execution engine measurements run through. */
    KernelBackend& engine() const { return exec_; }

  private:
    Measurement run(const HierSparseTensor& t, const ProblemShape& shape,
                    const SuperSchedule& s) const;

    KernelBackend& exec_;
    WallclockOptions opt_;
    mutable std::atomic<u64> measurements_{0};
};

} // namespace waco
