#include "perfmodel/faulty_oracle.hpp"

#include <cmath>

namespace waco {

Measurement
FaultyOracle::corrupt(Measurement m) const
{
    ++stats_.calls;

    // 1. Transient failure: the run crashed or the harness lost it. Drawn
    //    before the noise draw so the Rng stream is identical whether or
    //    not the inner measurement was valid.
    if (cfg_.failProb > 0.0 && rng_.bernoulli(cfg_.failProb)) {
        if (rng_.bernoulli(0.5)) {
            ++stats_.thrown;
            throw MeasurementError("injected transient measurement failure");
        }
        ++stats_.invalid;
        Measurement bad;
        bad.seconds = std::numeric_limits<double>::infinity();
        bad.valid = false;
        bad.invalidReason = "transient";
        return bad;
    }

    // 2. Log-normal multiplicative noise on the runtime.
    if (cfg_.noiseSigma > 0.0 && m.valid)
        m.seconds *= std::exp(rng_.normal(0.0, cfg_.noiseSigma));

    // 3. Timeout budget: over-budget runs are killed, not reported. The
    //    reported time is clamped to the budget — the harness observed
    //    exactly timeoutSeconds of wall clock before killing the run, so
    //    aggregate timing stats and latency histograms stay finite.
    if (m.valid && m.seconds > cfg_.timeoutSeconds) {
        ++stats_.timeouts;
        m.seconds = cfg_.timeoutSeconds;
        m.valid = false;
        m.invalidReason = "timeout";
    }
    return m;
}

Measurement
FaultyOracle::measure(const SparseMatrix& m, const ProblemShape& shape,
                      const SuperSchedule& s) const
{
    return corrupt(inner_.measure(m, shape, s));
}

Measurement
FaultyOracle::measure(const Sparse3Tensor& t, const ProblemShape& shape,
                      const SuperSchedule& s) const
{
    return corrupt(inner_.measure(t, shape, s));
}

} // namespace waco
