#include "perfmodel/wallclock_backend.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace waco {

namespace {

/** Deterministic integer-valued fill: measurements must not depend on
 *  which measure() call happened first. */
void
fillDeterministic(std::vector<float>& data, u64 seed)
{
    Rng rng(seed);
    for (auto& x : data)
        x = static_cast<float>(rng.uniformInt(1, 3));
}

DenseMatrix
makeOperand(u64 rows, u64 cols, bool rowMajor, u64 seed)
{
    DenseMatrix m(rows, cols,
                  rowMajor ? Layout::RowMajor : Layout::ColMajor);
    fillDeterministic(m.data(), seed);
    return m;
}

/** The layout the schedule chose for dense operand @p op (paper-fixed
 *  layouts override the schedule bit, matching the cost model). */
bool
operandRowMajor(const AlgorithmInfo& info, const SuperSchedule& s,
                std::size_t op)
{
    const DenseOperand& d = info.denseOperands[op];
    if (d.layoutFixed || s.denseRowMajor.size() <= op)
        return d.rowMajorDefault;
    return s.denseRowMajor[op];
}

Measurement
invalid(const std::string& why)
{
    Measurement r;
    r.valid = false;
    r.seconds = std::numeric_limits<double>::infinity();
    r.invalidReason = why;
    return r;
}

} // namespace

Measurement
WallclockMeasurer::run(const HierSparseTensor& t, const ProblemShape& shape,
                       const SuperSchedule& s) const
{
    const AlgorithmInfo& info = algorithmInfo(s.alg);
    const auto& ext = shape.indexExtent;
    LoopNest nest = lower(s, shape);

    // Dense operands, sized by the einsum and laid out as scheduled.
    LoopNestArgs args;
    args.a = &t;
    DenseVector vecB;
    DenseMatrix matB, matC, matF;
    switch (s.alg) {
      case Algorithm::SpMV:
        vecB = DenseVector(ext[1]);
        fillDeterministic(vecB.data(), 1);
        args.vecB = &vecB;
        break;
      case Algorithm::SpMM:
        matB = makeOperand(ext[1], ext[2], operandRowMajor(info, s, 0), 1);
        args.matB = &matB;
        break;
      case Algorithm::SDDMM:
        matB = makeOperand(ext[0], ext[2], operandRowMajor(info, s, 0), 1);
        matC = makeOperand(ext[2], ext[1], operandRowMajor(info, s, 1), 2);
        args.matB = &matB;
        args.matC = &matC;
        break;
      case Algorithm::MTTKRP:
        matB = makeOperand(ext[1], ext[3], operandRowMajor(info, s, 0), 1);
        matC = makeOperand(ext[2], ext[3], operandRowMajor(info, s, 1), 2);
        args.matB = &matB;
        args.matC = &matC;
        break;
      case Algorithm::FusedSDDMMSpMM:
        matB = makeOperand(ext[0], ext[2], operandRowMajor(info, s, 0), 1);
        matC = makeOperand(ext[2], ext[1], operandRowMajor(info, s, 1), 2);
        matF = makeOperand(ext[1], ext[3], operandRowMajor(info, s, 2), 3);
        args.matB = &matB;
        args.matC = &matC;
        args.matF = &matF;
        break;
    }

    u32 cap = opt_.maxThreads != 0
                  ? opt_.maxThreads
                  : std::max(1u, std::thread::hardware_concurrency());
    ParallelConfig par{std::min(std::max(1u, s.numThreads), cap),
                       std::max(1u, s.ompChunk)};

    // Warm-up run: pays JIT compilation / cache population and faults the
    // operands in, so the timed rounds measure steady-state execution.
    exec_.execute(nest, args, par);

    std::vector<double> rounds;
    rounds.reserve(std::max(1u, opt_.rounds));
    for (u32 r = 0; r < std::max(1u, opt_.rounds); ++r) {
        auto t0 = std::chrono::steady_clock::now();
        exec_.execute(nest, args, par);
        auto t1 = std::chrono::steady_clock::now();
        rounds.push_back(std::chrono::duration<double>(t1 - t0).count());
    }
    std::sort(rounds.begin(), rounds.end());

    Measurement r;
    r.seconds = rounds[rounds.size() / 2];
    r.storedValues = t.storedValues();
    r.formatBytes = t.bytes();
    WACO_COUNT("wallclock.measurements", 1);
    return r;
}

Measurement
WallclockMeasurer::measure(const SparseMatrix& m, const ProblemShape& shape,
                           const SuperSchedule& s) const
{
    measurements_.fetch_add(1);
    try {
        auto t = HierSparseTensor::build(formatOf(s, shape), m,
                                         opt_.maxFormatBytes);
        return run(t, shape, s);
    } catch (const FormatTooLarge& e) {
        return invalid(e.what());
    }
}

Measurement
WallclockMeasurer::measure(const Sparse3Tensor& t3, const ProblemShape& shape,
                           const SuperSchedule& s) const
{
    measurements_.fetch_add(1);
    try {
        auto t = HierSparseTensor::build(formatOf(s, shape), t3,
                                         opt_.maxFormatBytes);
        return run(t, shape, s);
    } catch (const FormatTooLarge& e) {
        return invalid(e.what());
    }
}

} // namespace waco
