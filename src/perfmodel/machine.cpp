#include "perfmodel/machine.hpp"

namespace waco {

MachineConfig
MachineConfig::intel24()
{
    MachineConfig m;
    m.name = "intel24";
    m.cores = 24;
    m.maxThreads = 48;
    m.smtYield = 1.25;
    m.freqGHz = 2.5;
    m.simdWidth = 8;
    m.simdTripThreshold = 16; // icc's heuristic (Figure 14)
    // 30 MB per socket; with interleaved NUMA the effective capacity a
    // streaming kernel can count on is one socket's LLC.
    m.llcBytes = 30.0 * 1024 * 1024;
    m.memBwGBs = 68.0;
    return m;
}

MachineConfig
MachineConfig::amd8()
{
    MachineConfig m;
    m.name = "amd8";
    m.cores = 8;
    m.maxThreads = 16;
    m.smtYield = 1.2;
    m.freqGHz = 3.0;
    m.simdWidth = 8;
    m.simdTripThreshold = 8; // gcc vectorizes shorter known trip counts
    m.llcBytes = 16.0 * 1024 * 1024;
    m.memBwGBs = 38.0;
    m.chunkDispatchCycles = 500.0;
    return m;
}

} // namespace waco
