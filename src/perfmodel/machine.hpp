/**
 * @file
 * Parametric description of the simulated target machine.
 *
 * The paper measures on real hardware (a dual-socket 24-core Xeon E5-2680v3
 * with icc, and for Table 7 an 8-core AMD EPYC 7R32 with gcc). This repo has
 * neither, so the runtime oracle evaluates schedules against this analytical
 * machine model instead (see DESIGN.md, substitution table). Two presets
 * reproduce the paper's two platforms, including the icc-vs-gcc
 * vectorization-threshold difference that Figure 14 hinges on.
 */
#pragma once

#include <algorithm>
#include <string>

#include "util/common.hpp"

namespace waco {

/** Analytical machine parameters used by the runtime oracle. */
struct MachineConfig
{
    std::string name;

    u32 cores = 24;            ///< Physical cores.
    u32 maxThreads = 48;       ///< With SMT.
    double smtYield = 1.25;    ///< Throughput factor when using all SMT threads.
    double freqGHz = 2.5;      ///< Clock frequency.

    u32 simdWidth = 8;         ///< Floats per vector (AVX2).
    /**
     * Minimum known trip count at which the compiler emits vector code for
     * an innermost dense loop. Figure 14 shows icc switching to
     * vfmadd213ps at b = 16; gcc vectorizes shorter loops.
     */
    u32 simdTripThreshold = 16;

    double llcBytes = 60.0 * 1024 * 1024;  ///< Shared last-level cache.
    double memBwGBs = 68.0;                ///< DRAM bandwidth.
    double missLatencyCycles = 90.0;       ///< Partially-overlapped DRAM miss cost.
    double missOverlapFactor = 0.25;       ///< Fraction of miss latency exposed.

    double uncompressedLevelCycles = 1.0;  ///< Loop overhead per U position.
    double compressedLevelCycles = 3.0;    ///< pos/crd loads + branch per C position.
    double searchCyclesPerProbe = 4.0;     ///< Per binary-search probe (discordant).
    double fmaCycles = 1.0;                ///< Scalar fused multiply-add.
    double scalarLoadCycles = 0.5;         ///< Amortized L1 load per operand access.

    double chunkDispatchCycles = 600.0;    ///< Dynamic-scheduling cost per chunk.
    double parallelLaunchCycles = 12000.0; ///< Cost of opening a parallel region.
    double kernelLaunchSeconds = 3e-6;     ///< Fixed per-invocation overhead.

    /** Usable compute threads for a requested thread count. */
    double
    effectiveThreads(u32 requested) const
    {
        if (requested <= cores)
            return static_cast<double>(requested);
        double over = static_cast<double>(std::min(requested, maxThreads)) /
                      static_cast<double>(cores);
        // SMT gives smtYield at full oversubscription, linear in between.
        return cores * (1.0 + (smtYield - 1.0) * (over - 1.0));
    }

    /** Dual-socket Xeon E5-2680 v3 + icc, the paper's main platform. */
    static MachineConfig intel24();

    /** 8-core AMD EPYC 7R32 + gcc, the paper's Table 7 platform. */
    static MachineConfig amd8();
};

} // namespace waco
