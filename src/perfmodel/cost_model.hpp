/**
 * @file
 * The runtime oracle: a deterministic analytical performance model that
 * plays the role of the paper's hardware measurements.
 *
 * Given a sparse input, a ProblemShape and a SuperSchedule, the oracle
 * materializes the schedule's format and estimates the execution time of the
 * TACO-style loop nest on a MachineConfig. The model captures the couplings
 * the paper identifies as performance-critical:
 *
 *  - traversal cost per level format (U loop overhead vs C pos/crd loads),
 *  - dense-block padding compute and the compiler SIMD cliff (Figure 14),
 *  - discordant loop orders needing searches over compressed levels,
 *  - cache reuse of dense operands under split-induced tiling (hierarchical
 *    working-set analysis over the actual nonzero pattern),
 *  - OpenMP dynamic load balance simulated chunk-by-chunk from the actual
 *    per-iteration work histogram (chunk size / thread count effects),
 *  - a global memory-bandwidth bound.
 *
 * Everything is a deterministic function of (pattern, format, schedule,
 * machine), so "measurements" are reproducible and the learned cost model
 * has a well-defined target. The oracle walks the same lowered LoopNest
 * (ir/loopnest.hpp) the interpreter executes, and its pattern scans fan
 * out over the persistent thread pool for large inputs (the bitmap-OR
 * distinct counting is order-independent, so parallelism does not change
 * any estimate).
 */
#pragma once

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/loopnest.hpp"
#include "ir/schedule.hpp"
#include "perfmodel/machine.hpp"
#include "tensor/coo.hpp"
#include "tensor/format.hpp"

namespace waco {

/** One oracle measurement with a diagnostic breakdown. */
struct Measurement
{
    /** Estimated kernel runtime in seconds; +inf when invalid. */
    double seconds = 0.0;
    /** False when the format exceeded the storage budget (the analogue of
     *  the paper dropping schedules that run for over a minute). */
    bool valid = true;
    std::string invalidReason;

    // --- diagnostics (used by Table 6 attribution and tests) ---
    double computeSeconds = 0.0;   ///< Critical-path compute component.
    double memorySeconds = 0.0;    ///< Bandwidth-bound component.
    double serialSeconds = 0.0;    ///< Work outside the parallel loop.
    double imbalance = 1.0;        ///< Makespan / ideal parallel time.
    double missBytes = 0.0;        ///< Estimated DRAM traffic.
    bool simdUsed = false;         ///< Innermost loop vectorized.
    u64 storedValues = 0;          ///< Values incl. dense-block padding.
    u64 formatBytes = 0;           ///< Storage footprint of the format.
};

/**
 * Thrown by measurement backends for *transient* failures (the analogue of
 * a hardware run crashing or being evicted): callers that care about
 * robustness catch it and retry; everything else treats it as fatal.
 */
class MeasurementError : public std::runtime_error
{
  public:
    explicit MeasurementError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Anything that can "run" a (input, shape, schedule) triple and report a
 * runtime: the deterministic RuntimeOracle, a FaultyOracle decorator that
 * injects noise/failures, or a RobustMeasurer that retries another backend.
 * Implementations may throw MeasurementError for transient failures.
 */
class MeasurementBackend
{
  public:
    virtual ~MeasurementBackend() = default;

    /** Measure a 2D kernel (SpMV / SpMM / SDDMM). */
    virtual Measurement measure(const SparseMatrix& m,
                                const ProblemShape& shape,
                                const SuperSchedule& s) const = 0;

    /** Measure MTTKRP on a 3D tensor. */
    virtual Measurement measure(const Sparse3Tensor& t,
                                const ProblemShape& shape,
                                const SuperSchedule& s) const = 0;

    /** Total measurement count so far (tuning-cost accounting, Fig. 17). */
    virtual u64 measurementCount() const = 0;
};

/** Deterministic stand-in for running the generated kernel on hardware. */
class RuntimeOracle : public MeasurementBackend
{
  public:
    explicit RuntimeOracle(MachineConfig machine,
                           u64 max_format_bytes = 512ull * 1024 * 1024)
        : machine_(std::move(machine)), maxFormatBytes_(max_format_bytes)
    {}

    const MachineConfig& machine() const { return machine_; }

    /** Measure a 2D kernel (SpMV / SpMM / SDDMM). */
    Measurement measure(const SparseMatrix& m, const ProblemShape& shape,
                        const SuperSchedule& s) const override;

    /** Measure MTTKRP on a 3D tensor. */
    Measurement measure(const Sparse3Tensor& t, const ProblemShape& shape,
                        const SuperSchedule& s) const override;

    /**
     * Estimated cost of converting canonical COO into the schedule's format
     * (the T_formatconvert term of Section 5.6).
     */
    double conversionSeconds(u64 nnz, u64 stored_values) const;

    /** Total measurement count so far (tuning-cost accounting, Fig. 17). */
    u64 measurementCount() const override { return measurements_; }

  private:
    /** The analytical model proper. Walks the lowered @p nest for all loop
     *  and level structure (positions, extents, discordance) — the same IR
     *  the interpreter executes — instead of re-deriving it from @p s. */
    Measurement measureImpl(const std::vector<std::array<u32, 3>>& coords,
                            u64 nnz, const ProblemShape& shape,
                            const SuperSchedule& s, const LoopNest& nest,
                            const HierSparseTensor& fmt) const;

    MachineConfig machine_;
    u64 maxFormatBytes_;
    mutable u64 measurements_ = 0;
};

} // namespace waco
