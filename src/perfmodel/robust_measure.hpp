/**
 * @file
 * RobustMeasurer: bounded-retry + median-of-k denoising on top of any
 * MeasurementBackend, so one flaky or noisy measurement never poisons a
 * label or a tuning decision.
 *
 * Per logical measurement it takes up to `medianOf` samples; each sample is
 * retried up to `maxAttempts` times on transient failures (MeasurementError
 * throws or invalid results). Consecutive retries back off exponentially
 * (1, 2, 4, ... units) with seeded multiplicative jitter; by default the
 * backoff is *accounted* in MeasureStats rather than slept, so tests of the
 * retry path stay fast while the policy is still observable — a positive
 * RetryPolicy::backoffUnitSeconds prices units in wall-clock sleeps for
 * real deployments. If every attempt of every sample fails, the call is
 * *discarded*: it returns an invalid Measurement carrying the last failure
 * reason, and the caller decides how to degrade (the dataset builder skips
 * the schedule, the tuner falls back to the CSR default).
 */
#pragma once

#include <functional>

#include "perfmodel/cost_model.hpp"
#include "util/rng.hpp"

namespace waco {

/** Retry/denoise policy of a RobustMeasurer. */
struct RetryPolicy
{
    /** Attempts per sample before it is abandoned (>= 1). */
    u32 maxAttempts = 3;
    /** Valid samples collected per call; the median is reported (>= 1).
     *  1 = no remeasurement, matching the raw backend call-for-call. */
    u32 medianOf = 1;

    // --- backoff schedule between retry attempts -------------------------
    // The n-th consecutive retry of a sample backs off
    //   backoffBase * 2^(n-1) * U   units, with U ~ Uniform[1 - backoffJitter,
    //                                                      1 + backoffJitter)
    // drawn from a stream seeded by backoffSeed, so the schedule is
    // reproducible run-to-run and jitter decorrelates retry storms from
    // concurrent requests hammering the same flaky backend. Units are
    // *accounted* in MeasureStats always; they are only *slept* when
    // backoffUnitSeconds > 0, keeping retry-path tests instant by default.

    /** Backoff units before the first retry (doubles per retry). */
    double backoffBase = 1.0;
    /** Jitter fraction in [0, 1); 0 = the exact 1, 2, 4, ... schedule. */
    double backoffJitter = 0.0;
    /** Seed of the jitter stream. */
    u64 backoffSeed = 0xb0ff;
    /** Wall-clock seconds per backoff unit (0 = account, never sleep). */
    double backoffUnitSeconds = 0.0;
};

/** Cumulative outcome statistics across all calls of one RobustMeasurer. */
struct MeasureStats
{
    u64 calls = 0;        ///< Logical measure() calls.
    u64 attempts = 0;     ///< Backend invocations (incl. retries).
    u64 retries = 0;      ///< Attempts that were re-issued after a failure.
    u64 faults = 0;       ///< MeasurementError throws absorbed.
    u64 invalid = 0;      ///< Invalid results seen (non-timeout).
    u64 timeouts = 0;     ///< Invalid results with reason "timeout".
    u64 discarded = 0;    ///< Calls whose every attempt failed.
    u64 backoffUnits = 0; ///< Scheduled backoff units (1, 2, 4, ... sums).
    /** Backoff actually accrued after jitter, in units; equals
     *  backoffUnits * backoffBase when backoffJitter == 0. */
    double backoffAccrued = 0.0;
};

/** Retrying, denoising wrapper around a MeasurementBackend. */
class RobustMeasurer : public MeasurementBackend
{
  public:
    /** @param backend the possibly flaky backend; must outlive this. */
    explicit RobustMeasurer(const MeasurementBackend& backend,
                            RetryPolicy policy = {});

    const RetryPolicy& policy() const { return policy_; }
    const MeasureStats& stats() const { return stats_; }
    void resetStats() const { stats_ = {}; }

    Measurement measure(const SparseMatrix& m, const ProblemShape& shape,
                        const SuperSchedule& s) const override;
    Measurement measure(const Sparse3Tensor& t, const ProblemShape& shape,
                        const SuperSchedule& s) const override;
    u64 measurementCount() const override { return stats_.calls; }

  private:
    Measurement measureRobust(
        const std::function<Measurement()>& attempt) const;

    const MeasurementBackend& backend_;
    RetryPolicy policy_;
    mutable Rng jitterRng_; ///< Seeded by policy_.backoffSeed.
    mutable MeasureStats stats_;
};

} // namespace waco
