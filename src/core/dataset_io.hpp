/**
 * @file
 * Binary (de)serialization of labeled cost datasets, so the expensive
 * oracle-labeling pass (Figure 1a) runs once and every bench/tool reuses
 * it. The format is versioned and self-describing enough to reject
 * mismatched files loudly instead of mis-parsing them.
 */
#pragma once

#include <string>

#include "core/dataset.hpp"

namespace waco {

/** Serialize a dataset (matrices/tensors + labeled schedules) to @p path.
 *  Files are versioned and end in a checksum footer, so truncation or
 *  corruption is detected at load time instead of silently mis-parsed. */
void saveDataset(const CostDataset& ds, const std::string& path);

/** Load a dataset saved by saveDataset.
 *  @throws FatalError on I/O errors, format mismatch, truncation, trailing
 *  bytes, or checksum mismatch. */
CostDataset loadDataset(const std::string& path);

/**
 * A partially-labeled corpus: the first @p completed corpus items have been
 * processed (labeled or dropped) and their surviving entries are in
 * @p partial. Periodically flushed to disk by buildDatasetResumable so a
 * killed labeling run loses at most one flush interval of oracle work.
 */
struct LabelCheckpoint
{
    /** Number of corpus items fully processed (not entries — items with
     *  too few valid schedules are processed but dropped). */
    u32 completed = 0;
    /** Labeled entries of the completed prefix; train/val ids unset. */
    CostDataset partial;
};

/** Write a labeling checkpoint (same checksum-footer protection as
 *  saveDataset). @p corpus_fingerprint ties the checkpoint to one exact
 *  (corpus, options) pair. */
void saveLabelCheckpoint(const LabelCheckpoint& ckpt, u64 corpus_fingerprint,
                         const std::string& path);

/**
 * Load a labeling checkpoint into @p out.
 * @return false when @p path does not exist (fresh start).
 * @throws FatalError when the file exists but is corrupt, truncated, or was
 * written for a different corpus/options fingerprint.
 */
bool tryLoadLabelCheckpoint(const std::string& path, u64 corpus_fingerprint,
                            LabelCheckpoint* out);

/** Serialize one SuperSchedule to a compact binary blob (also used by the
 *  dataset format). */
void writeSchedule(std::ostream& out, const SuperSchedule& s);

/** Inverse of writeSchedule. */
SuperSchedule readSchedule(std::istream& in);

} // namespace waco
