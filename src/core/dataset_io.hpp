/**
 * @file
 * Binary (de)serialization of labeled cost datasets, so the expensive
 * oracle-labeling pass (Figure 1a) runs once and every bench/tool reuses
 * it. The format is versioned and self-describing enough to reject
 * mismatched files loudly instead of mis-parsing them.
 */
#pragma once

#include <string>

#include "core/dataset.hpp"

namespace waco {

/** Serialize a dataset (matrices/tensors + labeled schedules) to @p path. */
void saveDataset(const CostDataset& ds, const std::string& path);

/** Load a dataset saved by saveDataset.
 *  @throws FatalError on I/O errors or format mismatch. */
CostDataset loadDataset(const std::string& path);

/** Serialize one SuperSchedule to a compact binary blob (also used by the
 *  dataset format). */
void writeSchedule(std::ostream& out, const SuperSchedule& s);

/** Inverse of writeSchedule. */
SuperSchedule readSchedule(std::istream& in);

} // namespace waco
