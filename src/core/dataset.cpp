#include "core/dataset.hpp"

#include <unordered_set>

#include "util/logging.hpp"

namespace waco {

namespace {

void
splitTrainVal(CostDataset& ds, Rng& rng)
{
    std::vector<u32> ids(ds.entries.size());
    for (u32 i = 0; i < ids.size(); ++i)
        ids[i] = i;
    rng.shuffle(ids);
    // 80:20 split as in the paper; keep at least one validation entry.
    std::size_t n_train =
        std::max<std::size_t>(1, ids.size() * 8 / 10);
    if (n_train == ids.size() && ids.size() > 1)
        --n_train;
    ds.trainIds.assign(ids.begin(), ids.begin() + n_train);
    ds.valIds.assign(ids.begin() + n_train, ids.end());
}

void
sampleEntry(DatasetEntry& e, Algorithm alg, const RuntimeOracle& oracle,
            u32 schedules_per_matrix, Rng& rng)
{
    SuperScheduleSpace space(alg, e.shape);
    std::unordered_set<std::string> seen;

    auto add = [&](const SuperSchedule& s) {
        if (!seen.insert(s.key()).second)
            return;
        Measurement m = e.is3d ? oracle.measure(e.tensor, e.shape, s)
                               : oracle.measure(e.matrix, e.shape, s);
        if (m.valid) // invalid = excluded, like the paper's >1min timeouts
            e.samples.push_back({s, m.seconds});
    };

    // Anchor schedules: the defaults plus the classic format families and
    // an OpenMP chunk sweep. The paper's 100-random-samples-per-matrix over
    // 21k matrices covers these corners by volume; at our reduced scale we
    // include them explicitly so the KNN graph contains the known-good
    // neighborhoods.
    for (u32 chunk = 1; chunk <= 256; chunk *= 4)
        add(defaultSchedule(e.shape, chunk));
    {
        auto s24 = defaultSchedule(e.shape);
        s24.numThreads = 24;
        add(s24);
    }
    if (!e.is3d) {
        for (const auto& s : wellKnownFormatSchedules(e.shape)) {
            add(s);
            auto fine = s;
            fine.ompChunk = 4;
            add(fine);
        }
    }

    // Random exploration on top of the anchors (the paper's uniform
    // sampling), so every matrix gets schedules_per_matrix random draws.
    std::size_t target = e.samples.size() + schedules_per_matrix;
    u32 attempts = 0;
    while (e.samples.size() < target && attempts < schedules_per_matrix * 4) {
        ++attempts;
        add(space.sample(rng));
    }
}

} // namespace

std::vector<SuperSchedule>
CostDataset::allSchedules() const
{
    std::vector<SuperSchedule> out;
    std::unordered_set<std::string> seen;
    for (const auto& e : entries) {
        for (const auto& s : e.samples) {
            if (seen.insert(s.schedule.key()).second)
                out.push_back(s.schedule);
        }
    }
    return out;
}

CostDataset
buildDataset(Algorithm alg, const std::vector<SparseMatrix>& corpus,
             const RuntimeOracle& oracle, u32 schedules_per_matrix, u64 seed)
{
    fatalIf(algorithmInfo(alg).sparseOrder != 2,
            "buildDataset requires a matrix algorithm");
    Rng rng(seed);
    CostDataset ds;
    ds.alg = alg;
    for (const auto& m : corpus) {
        DatasetEntry e;
        e.name = m.name();
        e.matrix = m;
        e.shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
        e.pattern = PatternInput::fromMatrix(m);
        sampleEntry(e, alg, oracle, schedules_per_matrix, rng);
        if (e.samples.size() >= 2)
            ds.entries.push_back(std::move(e));
        else
            logWarn("dropping matrix with too few valid schedules: " + m.name());
    }
    fatalIf(ds.entries.empty(), "dataset has no usable entries");
    splitTrainVal(ds, rng);
    return ds;
}

CostDataset
buildDataset3d(Algorithm alg, const std::vector<Sparse3Tensor>& corpus,
               const RuntimeOracle& oracle, u32 schedules_per_matrix, u64 seed)
{
    fatalIf(algorithmInfo(alg).sparseOrder != 3,
            "buildDataset3d requires a 3D algorithm");
    Rng rng(seed);
    CostDataset ds;
    ds.alg = alg;
    for (const auto& t : corpus) {
        DatasetEntry e;
        e.name = t.name();
        e.is3d = true;
        e.tensor = t;
        e.shape = ProblemShape::forTensor3(alg, t.dimI(), t.dimK(), t.dimL());
        e.pattern = PatternInput::fromTensor3(t);
        sampleEntry(e, alg, oracle, schedules_per_matrix, rng);
        if (e.samples.size() >= 2)
            ds.entries.push_back(std::move(e));
    }
    fatalIf(ds.entries.empty(), "dataset has no usable entries");
    splitTrainVal(ds, rng);
    return ds;
}

} // namespace waco
