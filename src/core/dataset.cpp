#include "core/dataset.hpp"

#include <unordered_set>

#include "analysis/schedule_verifier.hpp"
#include "core/dataset_io.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace waco {

namespace {

void
splitTrainVal(CostDataset& ds, Rng& rng)
{
    std::vector<u32> ids(ds.entries.size());
    for (u32 i = 0; i < ids.size(); ++i)
        ids[i] = i;
    rng.shuffle(ids);
    // 80:20 split as in the paper; keep at least one validation entry.
    std::size_t n_train =
        std::max<std::size_t>(1, ids.size() * 8 / 10);
    if (n_train == ids.size() && ids.size() > 1)
        --n_train;
    ds.trainIds.assign(ids.begin(), ids.begin() + n_train);
    ds.valIds.assign(ids.begin() + n_train, ids.end());
}

void
sampleEntry(DatasetEntry& e, Algorithm alg, const MeasurementBackend& oracle,
            u32 schedules_per_matrix, Rng& rng)
{
    SuperScheduleSpace space(alg, e.shape);
    std::unordered_set<std::string> seen;

    auto add = [&](const SuperSchedule& s) {
        if (!seen.insert(s.key()).second)
            return;
        // Static legality gate before paying for a measurement. Sampled
        // and anchor schedules always pass; this protects labeling runs
        // fed from checkpoints or hand-written schedule lists.
        if (analysis::verifySchedule(s, e.shape).hasErrors()) {
            WACO_COUNT("analysis.rejected", 1);
            return;
        }
        Measurement m;
        try {
            m = e.is3d ? oracle.measure(e.tensor, e.shape, s)
                       : oracle.measure(e.matrix, e.shape, s);
        } catch (const MeasurementError&) {
            // A transient backend failure drops this schedule, never the
            // labeling run (wrap the backend in a RobustMeasurer to retry
            // instead of dropping).
            return;
        }
        if (m.valid) // invalid = excluded, like the paper's >1min timeouts
            e.samples.push_back({s, m.seconds});
    };

    // Anchor schedules: the defaults plus the classic format families and
    // an OpenMP chunk sweep. The paper's 100-random-samples-per-matrix over
    // 21k matrices covers these corners by volume; at our reduced scale we
    // include them explicitly so the KNN graph contains the known-good
    // neighborhoods.
    for (u32 chunk = 1; chunk <= 256; chunk *= 4)
        add(defaultSchedule(e.shape, chunk));
    {
        auto s24 = defaultSchedule(e.shape);
        s24.numThreads = 24;
        add(s24);
    }
    if (!e.is3d) {
        for (const auto& s : wellKnownFormatSchedules(e.shape)) {
            add(s);
            auto fine = s;
            fine.ompChunk = 4;
            add(fine);
        }
    }

    // Random exploration on top of the anchors (the paper's uniform
    // sampling), so every matrix gets schedules_per_matrix random draws.
    std::size_t target = e.samples.size() + schedules_per_matrix;
    u32 attempts = 0;
    while (e.samples.size() < target && attempts < schedules_per_matrix * 4) {
        ++attempts;
        add(space.sample(rng));
    }
}

} // namespace

std::vector<SuperSchedule>
CostDataset::allSchedules() const
{
    std::vector<SuperSchedule> out;
    std::unordered_set<std::string> seen;
    for (const auto& e : entries) {
        for (const auto& s : e.samples) {
            if (seen.insert(s.schedule.key()).second)
                out.push_back(s.schedule);
        }
    }
    return out;
}

CostDataset
buildDataset(Algorithm alg, const std::vector<SparseMatrix>& corpus,
             const MeasurementBackend& oracle, u32 schedules_per_matrix,
             u64 seed)
{
    fatalIf(algorithmInfo(alg).sparseOrder != 2,
            "buildDataset requires a matrix algorithm");
    Rng rng(seed);
    CostDataset ds;
    ds.alg = alg;
    for (const auto& m : corpus) {
        DatasetEntry e;
        e.name = m.name();
        e.matrix = m;
        e.shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
        e.pattern = PatternInput::fromMatrix(m);
        sampleEntry(e, alg, oracle, schedules_per_matrix, rng);
        if (e.samples.size() >= 2)
            ds.entries.push_back(std::move(e));
        else
            logWarn("dropping matrix with too few valid schedules: " + m.name());
    }
    fatalIf(ds.entries.empty(), "dataset has no usable entries");
    splitTrainVal(ds, rng);
    return ds;
}

CostDataset
buildDataset3d(Algorithm alg, const std::vector<Sparse3Tensor>& corpus,
               const MeasurementBackend& oracle, u32 schedules_per_matrix,
               u64 seed)
{
    fatalIf(algorithmInfo(alg).sparseOrder != 3,
            "buildDataset3d requires a 3D algorithm");
    Rng rng(seed);
    CostDataset ds;
    ds.alg = alg;
    for (const auto& t : corpus) {
        DatasetEntry e;
        e.name = t.name();
        e.is3d = true;
        e.tensor = t;
        e.shape = ProblemShape::forTensor3(alg, t.dimI(), t.dimK(), t.dimL());
        e.pattern = PatternInput::fromTensor3(t);
        sampleEntry(e, alg, oracle, schedules_per_matrix, rng);
        if (e.samples.size() >= 2)
            ds.entries.push_back(std::move(e));
    }
    fatalIf(ds.entries.empty(), "dataset has no usable entries");
    splitTrainVal(ds, rng);
    return ds;
}

namespace {

/** splitmix64-style mixer for deriving independent per-item seeds. */
u64
mixSeed(u64 seed, u64 salt)
{
    u64 z = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

u64
hashCombine(u64 h, u64 v)
{
    return mixSeed(h ^ v, v);
}

} // namespace

u64
corpusFingerprint(Algorithm alg, const std::vector<SparseMatrix>& corpus,
                  u32 schedules_per_matrix, u64 seed)
{
    u64 h = 0x5741434f; // "WACO"
    h = hashCombine(h, static_cast<u64>(alg));
    h = hashCombine(h, schedules_per_matrix);
    h = hashCombine(h, seed);
    h = hashCombine(h, corpus.size());
    for (const auto& m : corpus) {
        for (char c : m.name())
            h = hashCombine(h, static_cast<unsigned char>(c));
        h = hashCombine(h, m.rows());
        h = hashCombine(h, m.cols());
        h = hashCombine(h, m.nnz());
    }
    return h;
}

CostDataset
buildDatasetResumable(Algorithm alg, const std::vector<SparseMatrix>& corpus,
                      const MeasurementBackend& oracle,
                      const LabelingOptions& opt)
{
    fatalIf(algorithmInfo(alg).sparseOrder != 2,
            "buildDatasetResumable requires a matrix algorithm");
    fatalIf(opt.flushEvery == 0, "LabelingOptions.flushEvery must be >= 1");

    u64 fingerprint =
        corpusFingerprint(alg, corpus, opt.schedulesPerMatrix, opt.seed);
    LabelCheckpoint ckpt;
    ckpt.partial.alg = alg;
    if (!opt.checkpointPath.empty() &&
        tryLoadLabelCheckpoint(opt.checkpointPath, fingerprint, &ckpt)) {
        logInfo("resuming corpus labeling from " + opt.checkpointPath +
                " (" + std::to_string(ckpt.completed) + "/" +
                std::to_string(corpus.size()) + " items done)");
    }
    fatalIf(ckpt.completed > corpus.size(),
            "labeling checkpoint covers more items than the corpus");

    for (u32 i = ckpt.completed; i < corpus.size(); ++i) {
        const auto& m = corpus[i];
        // Independent per-item seed: the labels of item i do not depend on
        // how many items ran before it in this process, which is what
        // makes interrupted-and-resumed runs bit-identical.
        Rng rng(mixSeed(opt.seed, i));
        DatasetEntry e;
        e.name = m.name();
        e.matrix = m;
        e.shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
        e.pattern = PatternInput::fromMatrix(m);
        sampleEntry(e, alg, oracle, opt.schedulesPerMatrix, rng);
        if (e.samples.size() >= 2)
            ckpt.partial.entries.push_back(std::move(e));
        else
            logWarn("dropping matrix with too few valid schedules: " +
                    m.name());
        ckpt.completed = i + 1;
        bool flush_due = (i + 1) % opt.flushEvery == 0;
        if (!opt.checkpointPath.empty() &&
            (flush_due || i + 1 == corpus.size()))
            saveLabelCheckpoint(ckpt, fingerprint, opt.checkpointPath);
    }

    CostDataset ds = std::move(ckpt.partial);
    fatalIf(ds.entries.empty(), "dataset has no usable entries");
    Rng split_rng(mixSeed(opt.seed, 0xfeedface));
    splitTrainVal(ds, split_rng);
    return ds;
}

} // namespace waco
