#include "core/waco_tuner.hpp"

#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>

#include "analysis/asymptotic_cost.hpp"
#include "analysis/schedule_verifier.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace waco {

WacoTuner::WacoTuner(Algorithm alg, MachineConfig machine, WacoOptions opt)
    : alg_(alg), oracle_(std::move(machine)), opt_(std::move(opt))
{
    model_ = std::make_unique<WacoCostModel>(alg_, opt_.extractor,
                                             opt_.extractorConfig, opt_.seed);
    // Warm the persistent pool once up front: labeling and tuning issue
    // thousands of small oracle scans and kernel invocations, and the first
    // one should not pay worker-thread creation.
    u32 hw = std::max(1u, std::thread::hardware_concurrency());
    globalPool().ensureWorkers(std::min(hw > 1 ? hw - 1 : 0, 8u));
}

std::vector<EpochStats>
WacoTuner::train(const std::vector<SparseMatrix>& corpus)
{
    logInfo("building " + algorithmName(alg_) + " dataset from " +
            std::to_string(corpus.size()) + " matrices");
    RobustMeasurer robust(backend(), opt_.retry);
    {
        WACO_SPAN("train.label");
        dataset_ = buildDataset(alg_, corpus, robust, opt_.schedulesPerMatrix,
                                opt_.seed);
    }
    return trainOnDataset(dataset_);
}

std::vector<EpochStats>
WacoTuner::train3d(const std::vector<Sparse3Tensor>& corpus)
{
    RobustMeasurer robust(backend(), opt_.retry);
    {
        WACO_SPAN("train.label");
        dataset_ = buildDataset3d(alg_, corpus, robust,
                                  opt_.schedulesPerMatrix, opt_.seed);
    }
    return trainOnDataset(dataset_);
}

std::vector<EpochStats>
WacoTuner::trainOnDataset(const CostDataset& dataset)
{
    if (&dataset != &dataset_)
        dataset_ = dataset;
    std::vector<EpochStats> stats;
    {
        WACO_SPAN("train.fit");
        stats = trainCostModel(*model_, dataset_, opt_.train,
                               [&](const EpochStats& e) {
            LogLine(LogLevel::Info)
                << algorithmName(alg_) << " epoch " << e.epoch << " train "
                << e.trainLoss << " val " << e.valLoss << " acc "
                << e.valOrderAccuracy;
        });
    }
    buildGraph();
    return stats;
}

void
WacoTuner::attachDataset(const CostDataset& dataset)
{
    dataset_ = dataset;
    buildGraph();
}

void
WacoTuner::buildGraph()
{
    WACO_SPAN("train.build_graph");
    nodes_ = dataset_.allSchedules();
    if (opt_.pruneCandidates) {
        // Graph nodes span entries with different problem shapes, so only
        // the structure-only verification applies here; shape-aware checks
        // run again per query in the remeasurement pass. Sampled schedules
        // always pass — this guards datasets loaded from disk or built by
        // external tools.
        std::size_t kept = 0;
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            if (analysis::verifySchedule(nodes_[n]).hasErrors()) {
                WACO_COUNT("analysis.rejected", 1);
                continue;
            }
            if (kept != n)
                nodes_[kept] = std::move(nodes_[n]);
            ++kept;
        }
        if (kept != nodes_.size()) {
            logWarn("static verifier dropped " +
                    std::to_string(nodes_.size() - kept) +
                    " malformed schedules from the KNN graph");
            nodes_.resize(kept);
        }
    }
    fatalIf(nodes_.empty(), "cannot build a KNN graph with no schedules");
    // Embed in chunks to bound peak memory.
    node_embeddings_ = nn::Mat(static_cast<u32>(nodes_.size()),
                               model_->embeddingDim());
    constexpr u32 kChunk = 256;
    for (u32 base = 0; base < nodes_.size(); base += kChunk) {
        u32 end = std::min<u32>(static_cast<u32>(nodes_.size()), base + kChunk);
        std::vector<SuperSchedule> chunk(nodes_.begin() + base,
                                         nodes_.begin() + end);
        nn::Mat emb = model_->programEmbeddings(chunk);
        for (u32 n = 0; n < emb.rows; ++n) {
            std::copy(emb.row(n), emb.row(n) + emb.cols,
                      node_embeddings_.row(base + n));
        }
    }
    graph_ = std::make_unique<Hnsw>(model_->embeddingDim(), opt_.hnswM,
                                    opt_.efConstruction, opt_.seed);
    for (u32 n = 0; n < node_embeddings_.rows; ++n)
        graph_->add(node_embeddings_.row(n));
    logInfo("KNN graph built over " + std::to_string(nodes_.size()) +
            " SuperSchedules");
}

TuneOutcome
WacoTuner::tuneImpl(
    const PatternInput& pattern, const ProblemShape& shape,
    const std::function<Measurement(const SuperSchedule&)>& measure,
    const TuneControl& ctl)
{
    fatalIf(!graph_, "WacoTuner::tune called before train()");
    WACO_SPAN("tune");
    WACO_COUNT("tune.calls", 1);
    TuneOutcome out;

    // Cooperative cancellation poll: token (deadline or client cancel)
    // ORed with the test-injectable hook.
    auto stop = [&ctl] {
        return (ctl.cancel && ctl.cancel->stopRequested()) ||
               (ctl.stopHook && ctl.stopHook());
    };
    if (stop())
        throw CancelledError("tune cancelled before feature extraction");

    // Phase 1 (Fig 16b): run the feature extractor once for this input.
    Timer feature_timer;
    nn::Mat feature;
    {
        WACO_SPAN("tune.extract");
        feature = model_->extractFeature(pattern);
    }
    out.featureSeconds = feature_timer.seconds();
    // An expired deadline here means no candidate exists yet: nothing to
    // degrade to except the caller's own default-schedule rung.
    if (stop())
        throw CancelledError("tune cancelled after feature extraction");

    // Phase 2: ANNS over the KNN graph; only the predictor head runs. The
    // feature's first-layer partial product is hoisted once per query, and
    // every frontier expansion scores its whole neighbor set through one
    // batched GEMM against the precomputed node embeddings.
    Timer search_timer;
    std::vector<HnswHit> hits;
    {
        WACO_SPAN("tune.search");
        auto query = model_->beginQuery(feature);
        Hnsw::BatchScoreFn score = [&](const u32* ids, u32 count,
                                       double* dst) {
            nn::Mat pred = model_->scoreEmbeddings(query, node_embeddings_,
                                                   ids, count);
            for (u32 i = 0; i < count; ++i)
                dst[i] = static_cast<double>(pred.at(i, 0));
        };
        hits = graph_->searchGenericBatched(
            score, opt_.topK, std::max(opt_.efSearch, opt_.topK),
            &out.costEvaluations, stop);
    }
    out.searchSeconds = search_timer.seconds();
    WACO_COUNT("tune.cost_evals", out.costEvaluations);
    if (stop()) {
        // The walk returned a truncated (but valid) candidate prefix.
        out.truncated = true;
        WACO_COUNT("tune.truncated", 1);
    }
    if (hits.empty())
        throw CancelledError("tune cancelled before any candidate scored");

    // Model-only selection: the best verifier-clean hit by predicted cost,
    // reported unmeasured. Used by the skipMeasure rung (circuit breaker
    // open) and as the last in-tuner rung when a deadline expires before
    // any candidate measured validly.
    auto pick_by_model = [&]() {
        out.modelOnly = true;
        WACO_COUNT("tune.model_only", 1);
        for (const auto& hit : hits) {
            const SuperSchedule& s = nodes_[hit.id];
            if (opt_.pruneCandidates &&
                analysis::verifySchedule(s, shape).hasErrors()) {
                ++out.verifierRejected;
                WACO_COUNT("analysis.rejected", 1);
                continue;
            }
            out.best = s;
            out.bestMeasured = Measurement{};
            out.bestMeasured.seconds = hit.dist; // predicted, not measured
            out.bestMeasured.valid = false;
            out.bestMeasured.invalidReason = "model-only";
            return;
        }
        // Every hit is structurally illegal for this shape: degrade to the
        // known-safe default, still without touching the backend.
        out.fellBack = true;
        WACO_COUNT("tune.fallbacks", 1);
        out.best = defaultSchedule(shape);
        out.bestMeasured = Measurement{};
        out.bestMeasured.seconds = std::numeric_limits<double>::infinity();
        out.bestMeasured.valid = false;
        out.bestMeasured.invalidReason = "model-only";
    };

    if (ctl.skipMeasure) {
        pick_by_model();
        out.convertSeconds = oracle_.conversionSeconds(
            pattern.coords.size(), out.bestMeasured.storedValues);
        return out;
    }

    // Stage 0 of the pruning pipeline: drop top-k candidates that an
    // already-kept EARLIER candidate asymptotically prunes (dominates,
    // and the candidate's own bounds are tight — loose-bounded profiles
    // may overshoot their actual cost and always survive to measurement),
    // before any of them reaches the backend. Order matters for winner
    // preservation: a kept candidate is never retroactively removed when
    // a later arrival dominates it (the later one measures too and wins
    // on its own merits), and incomparable candidates all survive — a
    // Pareto filter, never a total-order sort. Structurally illegal
    // candidates pass through untouched so the measurement loop's
    // verifier keeps rejecting (and counting) them exactly as before.
    std::vector<HnswHit> cands;
    if (opt_.pruneCandidates && opt_.asymFilter) {
        WACO_SPAN("tune.asym_filter");
        std::vector<analysis::AsymptoticBounds> kept;
        cands.reserve(hits.size());
        for (const auto& hit : hits) {
            const SuperSchedule& s = nodes_[hit.id];
            if (analysis::verifySchedule(s, shape).hasErrors()) {
                cands.push_back(hit);
                continue;
            }
            analysis::AsymptoticBounds b =
                analysis::asymptoticBounds(s, shape);
            bool dominated = false;
            for (const auto& k : kept) {
                if (analysis::prunes(k, b)) {
                    dominated = true;
                    logDebug("asym filter dropped candidate: " +
                             analysis::explainDomination(k, b));
                    break;
                }
            }
            if (dominated) {
                ++out.asymRejected;
                WACO_COUNT("analysis.asym_rejected", 1);
                continue;
            }
            kept.push_back(std::move(b));
            ++out.asymKept;
            WACO_COUNT("analysis.asym_kept", 1);
            cands.push_back(hit);
        }
    } else {
        cands.assign(hits.begin(), hits.end());
    }

    // Phase 3: re-measure the top-k on the "hardware" and keep the fastest
    // (the paper's Section 5.2 protocol).
    Timer measure_timer;
    {
        WACO_SPAN("tune.measure");
        double best = std::numeric_limits<double>::infinity();
        // Canonical-key cache: measurement-equivalent candidates (identical
        // up to degenerate-slot bookkeeping) measure once and reuse the
        // result. Safe because lower() and the oracle only see the active
        // orders, which canonicalization preserves exactly.
        std::unordered_map<std::string, Measurement> measured;
        for (const auto& hit : cands) {
            // Between-measurement cancellation point: keep whatever top-k
            // prefix is already measured instead of hogging the backend
            // past the deadline.
            if (stop()) {
                out.truncated = true;
                WACO_COUNT("tune.truncated_measure", 1);
                break;
            }
            const SuperSchedule& s = nodes_[hit.id];
            Measurement m;
            if (opt_.pruneCandidates) {
                auto diags = analysis::verifySchedule(s, shape);
                if (diags.hasErrors()) {
                    ++out.verifierRejected;
                    WACO_COUNT("analysis.rejected", 1);
                    logWarn("verifier rejected top-k candidate:\n" +
                            diags.format());
                    continue;
                }
                std::string ck = analysis::canonicalKey(s);
                if (ck != s.key()) {
                    ++out.candidatesCanonicalized;
                    WACO_COUNT("analysis.canonicalized", 1);
                }
                auto it = measured.find(ck);
                if (it != measured.end()) {
                    ++out.measurementsReused;
                    WACO_COUNT("analysis.measurements_reused", 1);
                    m = it->second;
                } else {
                    m = measure(s);
                    measured.emplace(std::move(ck), m);
                }
            } else {
                m = measure(s);
            }
            out.topK.push_back(s);
            out.topKMeasured.push_back(m);
            if (m.valid && m.seconds < best) {
                best = m.seconds;
                out.best = s;
                out.bestMeasured = m;
            }
        }
        out.remeasureSeconds = measure_timer.seconds();
        if (!std::isfinite(best)) {
            if (stop()) {
                // The deadline expired before any candidate measured
                // validly; measuring more (even the default) would blow
                // further past it. Fall down to the model-score rung.
                pick_by_model();
            } else {
                // Every candidate came back invalid or faulted: degrade to
                // the known-safe CSR-row-parallel default rather than
                // returning an invalid winner.
                out.fellBack = true;
                WACO_COUNT("tune.fallbacks", 1);
                out.best = defaultSchedule(shape);
                out.bestMeasured = measure(out.best);
                logWarn("all top-" + std::to_string(out.topK.size()) +
                        " remeasurements invalid; falling back to the "
                        "default CSR schedule");
            }
        }
    }
    out.convertSeconds = oracle_.conversionSeconds(
        pattern.coords.size(), out.bestMeasured.storedValues);
    return out;
}

TuneOutcome
WacoTuner::tune(const SparseMatrix& m, const TuneControl& ctl)
{
    auto shape = ProblemShape::forMatrix(alg_, m.rows(), m.cols());
    auto pattern = PatternInput::fromMatrix(m);
    RobustMeasurer robust(backend(), opt_.retry);
    auto out = tuneImpl(pattern, shape, [&](const SuperSchedule& s) {
        return robust.measure(m, shape, s);
    }, ctl);
    out.remeasureStats = robust.stats();
    return out;
}

TuneOutcome
WacoTuner::tune3d(const Sparse3Tensor& t, const TuneControl& ctl)
{
    auto shape = ProblemShape::forTensor3(alg_, t.dimI(), t.dimK(), t.dimL());
    auto pattern = PatternInput::fromTensor3(t);
    RobustMeasurer robust(backend(), opt_.retry);
    auto out = tuneImpl(pattern, shape, [&](const SuperSchedule& s) {
        return robust.measure(t, shape, s);
    }, ctl);
    out.remeasureStats = robust.stats();
    return out;
}

} // namespace waco
