#include "core/dataset_io.hpp"

#include <fstream>
#include <sstream>

namespace waco {

namespace {

constexpr u32 kMagic = 0x57444154;     // "WDAT"
constexpr u32 kCkptMagic = 0x57434b50; // "WCKP"
constexpr u32 kFooterMagic = 0x57454e44; // "WEND"
constexpr u32 kVersion = 3;

template <typename T>
void
writePod(std::ostream& out, const T& v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream& in)
{
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    fatalIf(!in, "truncated dataset stream");
    return v;
}

void
writeString(std::ostream& out, const std::string& s)
{
    writePod<u32>(out, static_cast<u32>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream& in)
{
    u32 n = readPod<u32>(in);
    fatalIf(n > (1u << 20), "implausible string length in dataset");
    std::string s(n, '\0');
    in.read(s.data(), n);
    fatalIf(!in, "truncated dataset stream");
    return s;
}

template <typename T>
void
writeVec(std::ostream& out, const std::vector<T>& v)
{
    writePod<u64>(out, v.size());
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::istream& in)
{
    u64 n = readPod<u64>(in);
    fatalIf(n > (1ull << 32), "implausible vector length in dataset");
    std::vector<T> v(n);
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    fatalIf(!in, "truncated dataset stream");
    return v;
}

void
writeEntry(std::ostream& out, const DatasetEntry& e)
{
    writeString(out, e.name);
    writePod<unsigned char>(out, e.is3d ? 1 : 0);
    if (e.is3d) {
        writePod<u32>(out, e.tensor.dimI());
        writePod<u32>(out, e.tensor.dimK());
        writePod<u32>(out, e.tensor.dimL());
        writeVec(out, e.tensor.iIndices());
        writeVec(out, e.tensor.kIndices());
        writeVec(out, e.tensor.lIndices());
        writeVec(out, e.tensor.values());
    } else {
        writePod<u32>(out, e.matrix.rows());
        writePod<u32>(out, e.matrix.cols());
        writeVec(out, e.matrix.rowIndices());
        writeVec(out, e.matrix.colIndices());
        writeVec(out, e.matrix.values());
    }
    writePod<u64>(out, e.samples.size());
    for (const auto& s : e.samples) {
        writeSchedule(out, s.schedule);
        writePod<double>(out, s.runtime);
    }
}

DatasetEntry
readEntry(std::istream& in, Algorithm alg)
{
    DatasetEntry e;
    e.name = readString(in);
    e.is3d = readPod<unsigned char>(in) != 0;
    if (e.is3d) {
        u32 di = readPod<u32>(in);
        u32 dk = readPod<u32>(in);
        u32 dl = readPod<u32>(in);
        auto is = readVec<u32>(in);
        auto ks = readVec<u32>(in);
        auto ls = readVec<u32>(in);
        auto vs = readVec<float>(in);
        std::vector<Quad> q(is.size());
        for (std::size_t x = 0; x < is.size(); ++x)
            q[x] = {is[x], ks[x], ls[x], vs[x]};
        e.tensor = Sparse3Tensor(di, dk, dl, std::move(q), e.name);
        e.shape = ProblemShape::forTensor3(alg, di, dk, dl);
        e.pattern = PatternInput::fromTensor3(e.tensor);
    } else {
        u32 rows = readPod<u32>(in);
        u32 cols = readPod<u32>(in);
        auto ri = readVec<u32>(in);
        auto ci = readVec<u32>(in);
        auto vs = readVec<float>(in);
        std::vector<Triplet> t(ri.size());
        for (std::size_t x = 0; x < ri.size(); ++x)
            t[x] = {ri[x], ci[x], vs[x]};
        e.matrix = SparseMatrix(rows, cols, std::move(t), e.name);
        e.shape = ProblemShape::forMatrix(alg, rows, cols);
        e.pattern = PatternInput::fromMatrix(e.matrix);
    }
    u64 n_samples = readPod<u64>(in);
    fatalIf(n_samples > (1u << 24), "implausible sample count");
    for (u64 x = 0; x < n_samples; ++x) {
        ScheduleSample s;
        s.schedule = readSchedule(in);
        s.runtime = readPod<double>(in);
        e.samples.push_back(std::move(s));
    }
    return e;
}

/** FNV-1a over a byte range; the footer checksum. */
u64
fnv1a(const char* data, std::size_t n)
{
    u64 h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

constexpr std::size_t kFooterBytes = sizeof(u32) + sizeof(u64);

/** Atomically-ish write payload + checksum footer to @p path. */
void
writeChecksummed(const std::string& payload, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open for writing: " + path);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    writePod(out, kFooterMagic);
    writePod(out, fnv1a(payload.data(), payload.size()));
    fatalIf(!out, "write failed: " + path);
}

/** Read a whole checksummed file, verify the footer, return the payload. */
std::string
readChecksummed(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open for reading: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    fatalIf(!in && !in.eof(), "read failed: " + path);
    std::string all = buf.str();
    fatalIf(all.size() < kFooterBytes,
            "truncated dataset file (no footer): " + path);
    std::size_t payload_size = all.size() - kFooterBytes;
    std::istringstream foot(all.substr(payload_size));
    fatalIf(readPod<u32>(foot) != kFooterMagic,
            "truncated or corrupt dataset file (bad footer): " + path);
    u64 want = readPod<u64>(foot);
    fatalIf(fnv1a(all.data(), payload_size) != want,
            "dataset file checksum mismatch (corrupt): " + path);
    all.resize(payload_size);
    return all;
}

/** After parsing, every payload byte must have been consumed. */
void
checkFullyConsumed(std::istream& in, std::size_t payload_size,
                   const std::string& path)
{
    auto pos = in.tellg();
    fatalIf(pos < 0 ||
                static_cast<std::size_t>(pos) != payload_size,
            "trailing bytes in dataset file: " + path);
}

} // namespace

void
writeSchedule(std::ostream& out, const SuperSchedule& s)
{
    writePod<u32>(out, static_cast<u32>(s.alg));
    for (u32 sp : s.splits)
        writePod<u32>(out, sp);
    writeVec(out, s.loopOrder);
    writePod<u32>(out, s.parallelSlot);
    writePod<u32>(out, s.numThreads);
    writePod<u32>(out, s.ompChunk);
    writeVec(out, s.sparseLevelOrder);
    std::vector<unsigned char> fmts;
    for (auto f : s.sparseLevelFormats)
        fmts.push_back(static_cast<unsigned char>(f));
    writeVec(out, fmts);
    std::vector<unsigned char> layouts;
    for (bool rm : s.denseRowMajor)
        layouts.push_back(rm ? 1 : 0);
    writeVec(out, layouts);
}

SuperSchedule
readSchedule(std::istream& in)
{
    SuperSchedule s;
    s.alg = static_cast<Algorithm>(readPod<u32>(in));
    for (auto& sp : s.splits)
        sp = readPod<u32>(in);
    s.loopOrder = readVec<u32>(in);
    s.parallelSlot = readPod<u32>(in);
    s.numThreads = readPod<u32>(in);
    s.ompChunk = readPod<u32>(in);
    s.sparseLevelOrder = readVec<u32>(in);
    auto fmts = readVec<unsigned char>(in);
    s.sparseLevelFormats.clear();
    for (unsigned char f : fmts)
        s.sparseLevelFormats.push_back(static_cast<LevelFormat>(f));
    auto layouts = readVec<unsigned char>(in);
    s.denseRowMajor.clear();
    for (unsigned char rm : layouts)
        s.denseRowMajor.push_back(rm != 0);
    return s;
}

void
saveDataset(const CostDataset& ds, const std::string& path)
{
    std::ostringstream out(std::ios::binary);
    writePod(out, kMagic);
    writePod(out, kVersion);
    writePod<u32>(out, static_cast<u32>(ds.alg));
    writePod<u64>(out, ds.entries.size());
    for (const auto& e : ds.entries)
        writeEntry(out, e);
    writeVec(out, ds.trainIds);
    writeVec(out, ds.valIds);
    writeChecksummed(out.str(), path);
}

CostDataset
loadDataset(const std::string& path)
{
    std::string payload = readChecksummed(path);
    std::istringstream in(payload, std::ios::binary);
    fatalIf(readPod<u32>(in) != kMagic, "not a WACO dataset: " + path);
    fatalIf(readPod<u32>(in) != kVersion,
            "dataset version mismatch: " + path);
    CostDataset ds;
    ds.alg = static_cast<Algorithm>(readPod<u32>(in));
    u64 n_entries = readPod<u64>(in);
    fatalIf(n_entries > (1u << 24), "implausible dataset entry count");
    for (u64 n = 0; n < n_entries; ++n)
        ds.entries.push_back(readEntry(in, ds.alg));
    ds.trainIds = readVec<u32>(in);
    ds.valIds = readVec<u32>(in);
    checkFullyConsumed(in, payload.size(), path);
    return ds;
}

void
saveLabelCheckpoint(const LabelCheckpoint& ckpt, u64 corpus_fingerprint,
                    const std::string& path)
{
    std::ostringstream out(std::ios::binary);
    writePod(out, kCkptMagic);
    writePod(out, kVersion);
    writePod<u64>(out, corpus_fingerprint);
    writePod<u32>(out, ckpt.completed);
    writePod<u32>(out, static_cast<u32>(ckpt.partial.alg));
    writePod<u64>(out, ckpt.partial.entries.size());
    for (const auto& e : ckpt.partial.entries)
        writeEntry(out, e);
    writeChecksummed(out.str(), path);
}

bool
tryLoadLabelCheckpoint(const std::string& path, u64 corpus_fingerprint,
                       LabelCheckpoint* out)
{
    {
        std::ifstream probe(path, std::ios::binary);
        if (!probe)
            return false; // no checkpoint yet: fresh start
    }
    std::string payload = readChecksummed(path);
    std::istringstream in(payload, std::ios::binary);
    fatalIf(readPod<u32>(in) != kCkptMagic,
            "not a WACO labeling checkpoint: " + path);
    fatalIf(readPod<u32>(in) != kVersion,
            "labeling checkpoint version mismatch: " + path);
    fatalIf(readPod<u64>(in) != corpus_fingerprint,
            "labeling checkpoint was written for a different corpus or "
            "options: " + path);
    LabelCheckpoint ckpt;
    ckpt.completed = readPod<u32>(in);
    ckpt.partial.alg = static_cast<Algorithm>(readPod<u32>(in));
    u64 n_entries = readPod<u64>(in);
    fatalIf(n_entries > (1u << 24), "implausible checkpoint entry count");
    for (u64 n = 0; n < n_entries; ++n)
        ckpt.partial.entries.push_back(readEntry(in, ckpt.partial.alg));
    checkFullyConsumed(in, payload.size(), path);
    fatalIf(ckpt.partial.entries.size() > ckpt.completed,
            "labeling checkpoint has more entries than completed items: " +
                path);
    *out = std::move(ckpt);
    return true;
}

} // namespace waco
