#include "core/trainer.hpp"

#include <cmath>
#include <limits>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace waco {

namespace {

/** Draw a batch of (schedule, runtime) pairs from an entry. */
void
drawBatch(const DatasetEntry& e, u32 batch, Rng& rng,
          std::vector<SuperSchedule>& schedules, std::vector<double>& runtimes)
{
    schedules.clear();
    runtimes.clear();
    u32 n = std::min<u32>(batch, static_cast<u32>(e.samples.size()));
    auto perm = rng.permutation(static_cast<u32>(e.samples.size()));
    for (u32 i = 0; i < n; ++i) {
        schedules.push_back(e.samples[perm[i]].schedule);
        runtimes.push_back(e.samples[perm[i]].runtime);
    }
}

} // namespace

std::vector<EpochStats>
trainCostModel(WacoCostModel& model, const CostDataset& dataset,
               const TrainOptions& opt,
               const std::function<void(const EpochStats&)>& on_epoch)
{
    Rng rng(opt.seed);
    std::vector<EpochStats> history;
    std::vector<SuperSchedule> schedules;
    std::vector<double> runtimes;

    // Best-epoch tracking for checkpointing and divergence rollback. The
    // in-memory snapshot is authoritative; checkpointPath additionally
    // persists it through nn::saveParams so interrupted runs can reload.
    double best_metric = std::numeric_limits<double>::infinity();
    std::vector<std::vector<float>> best_params;

    auto rollback = [&] {
        if (best_params.empty())
            return;
        if (!opt.checkpointPath.empty())
            model.load(opt.checkpointPath);
        else
            model.restoreParams(best_params);
    };

    for (u32 epoch = 0; epoch < opt.epochs; ++epoch) {
        WACO_SPAN("train.epoch");
        Timer timer;
        EpochStats stats;
        stats.epoch = epoch;

        auto order = dataset.trainIds;
        rng.shuffle(order);
        double train_loss = 0.0;
        for (u32 id : order) {
            drawBatch(dataset.entries[id], opt.batchSchedules, rng, schedules,
                      runtimes);
            auto step = model.trainStepGuarded(dataset.entries[id].pattern,
                                               schedules, runtimes, opt.useL2,
                                               opt.clipNorm);
            if (step.applied) {
                train_loss += step.loss;
            } else {
                ++stats.skippedSteps;
                logWarn("skipping non-finite training step (matrix " +
                        dataset.entries[id].name + ", epoch " +
                        std::to_string(epoch) + ")");
            }
        }
        u32 applied = static_cast<u32>(order.size()) - stats.skippedSteps;
        stats.trainLoss = applied == 0 ? 0.0 : train_loss / applied;
        WACO_COUNT("train.steps", applied);
        WACO_COUNT("train.skipped_steps", stats.skippedSteps);

        double val_loss = 0.0, val_acc = 0.0;
        Rng val_rng(opt.seed + 1); // fixed batches across epochs
        for (u32 id : dataset.valIds) {
            drawBatch(dataset.entries[id], opt.batchSchedules, val_rng,
                      schedules, runtimes);
            val_loss += model.evalLoss(dataset.entries[id].pattern, schedules,
                                       runtimes, opt.useL2);
            val_acc += model.evalOrderAccuracy(dataset.entries[id].pattern,
                                               schedules, runtimes);
        }
        if (!dataset.valIds.empty()) {
            val_loss /= dataset.valIds.size();
            val_acc /= dataset.valIds.size();
        }
        stats.valLoss = val_loss;
        stats.valOrderAccuracy = val_acc;
        WACO_GAUGE("train.loss", stats.trainLoss);
        WACO_GAUGE("train.val_loss", stats.valLoss);
        WACO_GAUGE("train.val_order_accuracy", stats.valOrderAccuracy);

        // Val loss is the checkpoint metric; fall back to train loss for
        // datasets too small to hold out a validation split.
        double metric = dataset.valIds.empty() ? stats.trainLoss : val_loss;
        bool diverged =
            !std::isfinite(metric) ||
            (opt.divergeFactor > 0.0 && std::isfinite(best_metric) &&
             metric > opt.divergeFactor * best_metric);
        if (!diverged && metric <= best_metric) {
            best_metric = metric;
            best_params = model.snapshotParams();
            if (!opt.checkpointPath.empty())
                model.save(opt.checkpointPath);
        }

        stats.seconds = timer.seconds();
        if (diverged && opt.divergeFactor > 0.0) {
            stats.rolledBack = true;
            WACO_COUNT("train.rollbacks", 1);
            logWarn("divergence at epoch " + std::to_string(epoch) +
                    " (val loss " + std::to_string(val_loss) +
                    "); rolling back to best checkpoint");
            rollback();
            history.push_back(stats);
            if (on_epoch)
                on_epoch(stats);
            break;
        }
        history.push_back(stats);
        if (on_epoch)
            on_epoch(stats);
    }
    if (opt.restoreBest && !history.empty() && !history.back().rolledBack)
        rollback();
    return history;
}

} // namespace waco
