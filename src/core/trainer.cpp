#include "core/trainer.hpp"

#include "util/timer.hpp"

namespace waco {

namespace {

/** Draw a batch of (schedule, runtime) pairs from an entry. */
void
drawBatch(const DatasetEntry& e, u32 batch, Rng& rng,
          std::vector<SuperSchedule>& schedules, std::vector<double>& runtimes)
{
    schedules.clear();
    runtimes.clear();
    u32 n = std::min<u32>(batch, static_cast<u32>(e.samples.size()));
    auto perm = rng.permutation(static_cast<u32>(e.samples.size()));
    for (u32 i = 0; i < n; ++i) {
        schedules.push_back(e.samples[perm[i]].schedule);
        runtimes.push_back(e.samples[perm[i]].runtime);
    }
}

} // namespace

std::vector<EpochStats>
trainCostModel(WacoCostModel& model, const CostDataset& dataset,
               const TrainOptions& opt,
               const std::function<void(const EpochStats&)>& on_epoch)
{
    Rng rng(opt.seed);
    std::vector<EpochStats> history;
    std::vector<SuperSchedule> schedules;
    std::vector<double> runtimes;

    for (u32 epoch = 0; epoch < opt.epochs; ++epoch) {
        Timer timer;
        EpochStats stats;
        stats.epoch = epoch;

        auto order = dataset.trainIds;
        rng.shuffle(order);
        double train_loss = 0.0;
        for (u32 id : order) {
            drawBatch(dataset.entries[id], opt.batchSchedules, rng, schedules,
                      runtimes);
            train_loss += model.trainStep(dataset.entries[id].pattern,
                                          schedules, runtimes, opt.useL2);
        }
        stats.trainLoss = order.empty() ? 0.0 : train_loss / order.size();

        double val_loss = 0.0, val_acc = 0.0;
        Rng val_rng(opt.seed + 1); // fixed batches across epochs
        for (u32 id : dataset.valIds) {
            drawBatch(dataset.entries[id], opt.batchSchedules, val_rng,
                      schedules, runtimes);
            val_loss += model.evalLoss(dataset.entries[id].pattern, schedules,
                                       runtimes, opt.useL2);
            val_acc += model.evalOrderAccuracy(dataset.entries[id].pattern,
                                               schedules, runtimes);
        }
        if (!dataset.valIds.empty()) {
            val_loss /= dataset.valIds.size();
            val_acc /= dataset.valIds.size();
        }
        stats.valLoss = val_loss;
        stats.valOrderAccuracy = val_acc;
        stats.seconds = timer.seconds();
        history.push_back(stats);
        if (on_epoch)
            on_epoch(stats);
    }
    return history;
}

} // namespace waco
