/**
 * @file
 * Training-data pipeline (Section 4.1.3): for each input pattern, sample
 * random SuperSchedules and label them with the runtime oracle, producing
 * the (Sparse Matrix, SuperSchedule, Ground Truth Runtime) tuples of
 * Figure 1a. Schedules whose formats blow the storage budget are excluded,
 * mirroring the paper's exclusion of >1-minute configurations. Entries are
 * split 80:20 into train and validation sets.
 */
#pragma once

#include <vector>

#include "model/feature_extractor.hpp"
#include "perfmodel/cost_model.hpp"

namespace waco {

/** One labeled (schedule, runtime) pair. */
struct ScheduleSample
{
    SuperSchedule schedule;
    double runtime;
};

/** One input pattern with its labeled schedules. */
struct DatasetEntry
{
    std::string name;
    bool is3d = false;
    SparseMatrix matrix;     ///< Valid when !is3d.
    Sparse3Tensor tensor;    ///< Valid when is3d.
    ProblemShape shape;
    PatternInput pattern;
    std::vector<ScheduleSample> samples;
};

/** A full cost-model training set for one algorithm. */
struct CostDataset
{
    Algorithm alg = Algorithm::SpMV;
    std::vector<DatasetEntry> entries;
    std::vector<u32> trainIds;
    std::vector<u32> valIds;

    /** All distinct schedules in the dataset (KNN-graph node set). */
    std::vector<SuperSchedule> allSchedules() const;
};

/** Label a 2D corpus (SpMV / SpMM / SDDMM). */
CostDataset buildDataset(Algorithm alg,
                         const std::vector<SparseMatrix>& corpus,
                         const RuntimeOracle& oracle, u32 schedules_per_matrix,
                         u64 seed);

/** Label a 3D corpus (MTTKRP). */
CostDataset buildDataset3d(Algorithm alg,
                           const std::vector<Sparse3Tensor>& corpus,
                           const RuntimeOracle& oracle,
                           u32 schedules_per_matrix, u64 seed);

} // namespace waco
