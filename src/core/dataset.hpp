/**
 * @file
 * Training-data pipeline (Section 4.1.3): for each input pattern, sample
 * random SuperSchedules and label them with the runtime oracle, producing
 * the (Sparse Matrix, SuperSchedule, Ground Truth Runtime) tuples of
 * Figure 1a. Schedules whose formats blow the storage budget are excluded,
 * mirroring the paper's exclusion of >1-minute configurations. Entries are
 * split 80:20 into train and validation sets.
 */
#pragma once

#include <string>
#include <vector>

#include "model/feature_extractor.hpp"
#include "perfmodel/cost_model.hpp"

namespace waco {

/** One labeled (schedule, runtime) pair. */
struct ScheduleSample
{
    SuperSchedule schedule;
    double runtime;
};

/** One input pattern with its labeled schedules. */
struct DatasetEntry
{
    std::string name;
    bool is3d = false;
    SparseMatrix matrix;     ///< Valid when !is3d.
    Sparse3Tensor tensor;    ///< Valid when is3d.
    ProblemShape shape;
    PatternInput pattern;
    std::vector<ScheduleSample> samples;
};

/** A full cost-model training set for one algorithm. */
struct CostDataset
{
    Algorithm alg = Algorithm::SpMV;
    std::vector<DatasetEntry> entries;
    std::vector<u32> trainIds;
    std::vector<u32> valIds;

    /** All distinct schedules in the dataset (KNN-graph node set). */
    std::vector<SuperSchedule> allSchedules() const;
};

/** Label a 2D corpus (SpMV / SpMM / SDDMM). Transient measurement
 *  failures (MeasurementError) and invalid results skip that schedule. */
CostDataset buildDataset(Algorithm alg,
                         const std::vector<SparseMatrix>& corpus,
                         const MeasurementBackend& oracle,
                         u32 schedules_per_matrix, u64 seed);

/** Label a 3D corpus (MTTKRP). */
CostDataset buildDataset3d(Algorithm alg,
                           const std::vector<Sparse3Tensor>& corpus,
                           const MeasurementBackend& oracle,
                           u32 schedules_per_matrix, u64 seed);

/** Knobs of the fault-tolerant, checkpointed labeling pass. */
struct LabelingOptions
{
    u32 schedulesPerMatrix = 40;
    u64 seed = 42;
    /** Checkpoint file; "" disables checkpointing (but the per-matrix
     *  seeding below still makes the result independent of interruption). */
    std::string checkpointPath;
    /** Flush the checkpoint after this many newly labeled corpus items. */
    u32 flushEvery = 1;
};

/**
 * Fingerprint of one exact labeling job: algorithm, options, and the
 * corpus itself (names, dims, nnz). Checkpoints carry it so a resume
 * against a different corpus or configuration fails loudly.
 */
u64 corpusFingerprint(Algorithm alg, const std::vector<SparseMatrix>& corpus,
                      u32 schedules_per_matrix, u64 seed);

/**
 * Checkpointed, resumable version of buildDataset: every matrix is labeled
 * under a seed derived from (seed, corpus index) — not a running stream —
 * so a run killed halfway and resumed from its checkpoint produces a
 * bit-identical CostDataset to an uninterrupted run.
 */
CostDataset buildDatasetResumable(Algorithm alg,
                                  const std::vector<SparseMatrix>& corpus,
                                  const MeasurementBackend& oracle,
                                  const LabelingOptions& opt);

} // namespace waco
