/**
 * @file
 * WacoTuner — the end-to-end system of Figure 1 and the library's main
 * public API.
 *
 *  (a) train(): label a corpus with the runtime oracle and fit the cost
 *      model (WACONet + program embedder + predictor, ranking loss).
 *  (b) buildGraph(): embed every training SuperSchedule and build the HNSW
 *      KNN graph over the program embeddings (l2 metric).
 *  (c) tune(): for a new matrix, extract the sparsity feature once, walk
 *      the graph under the predicted-cost metric (ANNS), re-measure the
 *      top-k candidates on the "hardware" (oracle), and return the winner —
 *      exactly the paper's evaluation protocol (Section 5.2 reports the
 *      fastest of the top-10).
 */
#pragma once

#include <functional>
#include <memory>

#include "annsearch/hnsw.hpp"
#include "core/dataset.hpp"
#include "core/trainer.hpp"
#include "model/waco_model.hpp"
#include "perfmodel/cost_model.hpp"
#include "perfmodel/robust_measure.hpp"
#include "util/cancel.hpp"

namespace waco {

/** Knobs for the whole pipeline (paper defaults, shrinkable for tests). */
struct WacoOptions
{
    std::string extractor = "waconet";
    ExtractorConfig extractorConfig = {};
    u32 schedulesPerMatrix = 40; ///< Paper samples 100 per matrix.
    TrainOptions train = {};
    u32 hnswM = 16;
    u32 efConstruction = 60;
    u32 efSearch = 40;
    u32 topK = 10;               ///< Re-measured candidates (Section 5.2).
    /**
     * Run the static verifier over search candidates: graph nodes with
     * structural errors are dropped at build time, and the top-k
     * remeasurement pass rejects illegal candidates and dedupes
     * measurement-equivalent ones by canonical key (degenerate-slot
     * permutations lower to the same nest), reusing the first
     * measurement. Never changes which schedule wins — only how many
     * candidates are measured. OFF reproduces the unpruned protocol.
     */
    bool pruneCandidates = true;
    /**
     * Stage 0 of pruneCandidates: before any top-k candidate is measured,
     * discard candidates asymptotically pruned by an already-kept one
     * (analysis::prunes — every bound <=, at least one strictly, and the
     * candidate's own bounds tight; a Pareto filter, never a total-order
     * sort, so incomparable or loose-bounded candidates all survive).
     * Whenever the backend respects asymptotic dominance on the measured
     * shape this cannot change the winner — only how many candidates are
     * measured. OFF (or pruneCandidates OFF) reproduces the unfiltered
     * protocol exactly (tune_cli --no-asym-filter).
     */
    bool asymFilter = true;
    u64 seed = 42;
    /** Retry/denoise policy for every measurement (labeling + top-k
     *  remeasurement). The default (1 sample, 3 attempts) is a no-op on a
     *  healthy backend; raise medianOf when the backend is noisy. */
    RetryPolicy retry = {};
};

/**
 * Per-call controls threaded through tune()'s extract/search/measure
 * phases. All default-constructed fields reproduce the uncontrolled
 * protocol exactly (same code path, bitwise-identical results).
 */
struct TuneControl
{
    /** Cooperative cancel/deadline token, polled at phase boundaries, HNSW
     *  frontier steps, and between top-k measurements. When it fires
     *  before any candidate exists, tune() throws CancelledError; once
     *  candidates exist, tune() degrades instead (truncated / modelOnly
     *  flags in the outcome). Null = never cancelled. */
    const CancelToken* cancel = nullptr;
    /** Extra stop predicate ORed with the token — lets tests fire a
     *  deterministic cancellation at the Nth checkpoint. */
    std::function<bool()> stopHook;
    /** Skip the measurement phase entirely and rank by model score alone
     *  (the service's circuit-breaker-open rung): the winner is the best
     *  verifier-clean hit, reported unmeasured with its predicted cost. */
    bool skipMeasure = false;
};

/** Result of tuning one input. */
struct TuneOutcome
{
    SuperSchedule best;
    Measurement bestMeasured;
    std::vector<SuperSchedule> topK;
    std::vector<Measurement> topKMeasured;

    double featureSeconds = 0.0;    ///< Feature-extractor part (Fig 16b).
    double searchSeconds = 0.0;     ///< ANNS walk part (Fig 16b).
    double remeasureSeconds = 0.0;  ///< Top-k validation on "hardware".
    double convertSeconds = 0.0;    ///< COO -> chosen format conversion.
    u64 costEvaluations = 0;        ///< Predictor-head calls during ANNS.

    /** Retry/fault/timeout counters of the top-k remeasurement pass. */
    MeasureStats remeasureStats;
    /** Top-k candidates rejected by the static verifier (pruning on). */
    u64 verifierRejected = 0;
    /** Top-k candidates whose canonical form differs from their raw form
     *  (degenerate-slot bookkeeping only; measurement-equivalent). */
    u64 candidatesCanonicalized = 0;
    /** Measurements served from a canonical-duplicate's earlier result
     *  instead of a fresh oracle call (pruning on). */
    u64 measurementsReused = 0;
    /** Top-k candidates discarded unmeasured by the stage-0 asymptotic
     *  dominance filter (pruning + asymFilter on). */
    u64 asymRejected = 0;
    /** Candidates that survived the stage-0 filter — the Pareto-kept set
     *  the measurement loop actually runs (pruning + asymFilter on). */
    u64 asymKept = 0;
    /** True when every top-k candidate came back invalid or faulted and
     *  the tuner degraded to the CSR-row-parallel default schedule. */
    bool fellBack = false;
    /** True when cancellation truncated the search walk or the top-k
     *  measurement loop (the winner is valid but saw fewer candidates). */
    bool truncated = false;
    /** True when the winner was chosen by model score without measurement
     *  (TuneControl::skipMeasure, or a deadline that expired before any
     *  candidate measured validly). bestMeasured is then invalid with
     *  reason "model-only" and seconds = the predicted cost. */
    bool modelOnly = false;

    /** Total tuning overhead T_tuning of Section 5.6. */
    double
    tuningSeconds() const
    {
        return featureSeconds + searchSeconds + remeasureSeconds;
    }
};

/** Workload-aware co-optimizer for one algorithm on one machine. */
class WacoTuner
{
  public:
    WacoTuner(Algorithm alg, MachineConfig machine, WacoOptions opt = {});

    Algorithm algorithm() const { return alg_; }
    const RuntimeOracle& oracle() const { return oracle_; }
    WacoCostModel& model() { return *model_; }

    /**
     * Route all measurements (corpus labeling and top-k remeasurement)
     * through @p backend instead of the built-in deterministic oracle —
     * e.g. a FaultyOracle for fault-injection testing, or a real hardware
     * harness. @p backend must outlive this tuner. Measurements are always
     * wrapped in a RobustMeasurer configured by WacoOptions::retry.
     */
    void setMeasurementBackend(const MeasurementBackend& backend)
    {
        backend_ = &backend;
    }

    /** The active measurement backend (defaults to the built-in oracle). */
    const MeasurementBackend& backend() const
    {
        return backend_ ? *backend_ : oracle_;
    }

    /** Build dataset from a 2D corpus, train the model, build the graph. */
    std::vector<EpochStats> train(const std::vector<SparseMatrix>& corpus);

    /** Same for a 3D corpus (MTTKRP). */
    std::vector<EpochStats> train3d(const std::vector<Sparse3Tensor>& corpus);

    /** Train on a pre-built dataset (lets benches share datasets). */
    std::vector<EpochStats> trainOnDataset(const CostDataset& dataset);

    /**
     * Attach a dataset and build the KNN graph WITHOUT training — for use
     * after loading pre-trained model parameters from disk. The dataset
     * must be the one the loaded model was trained on (rebuilding it is
     * cheap and deterministic).
     */
    void attachDataset(const CostDataset& dataset);

    /** Co-optimize the format and schedule for a new matrix. */
    TuneOutcome tune(const SparseMatrix& m) { return tune(m, {}); }

    /** tune() with cancellation/degradation controls (see TuneControl). */
    TuneOutcome tune(const SparseMatrix& m, const TuneControl& ctl);

    /** Co-optimize for a new 3D tensor. */
    TuneOutcome tune3d(const Sparse3Tensor& t) { return tune3d(t, {}); }

    /** tune3d() with cancellation/degradation controls. */
    TuneOutcome tune3d(const Sparse3Tensor& t, const TuneControl& ctl);

    /** Schedules indexed by the KNN graph (exposed for benches/tests). */
    const std::vector<SuperSchedule>& graphSchedules() const { return nodes_; }

    /** Precomputed program embeddings of the graph nodes, row n = node n
     *  (embedded once after training, reused by every tune query). */
    const nn::Mat& nodeEmbeddings() const { return node_embeddings_; }

    /** The KNN graph itself (exposed for benches/tests). */
    const Hnsw& graph() const { return *graph_; }

    /** The labeled dataset from the last train() call. */
    const CostDataset& dataset() const { return dataset_; }

  private:
    void buildGraph();
    TuneOutcome tuneImpl(const PatternInput& pattern,
                         const ProblemShape& shape,
                         const std::function<Measurement(
                             const SuperSchedule&)>& measure,
                         const TuneControl& ctl);

    Algorithm alg_;
    RuntimeOracle oracle_;
    const MeasurementBackend* backend_ = nullptr; ///< null = oracle_.
    WacoOptions opt_;
    std::unique_ptr<WacoCostModel> model_;
    CostDataset dataset_;
    std::vector<SuperSchedule> nodes_;
    nn::Mat node_embeddings_;
    std::unique_ptr<Hnsw> graph_;
};

} // namespace waco
