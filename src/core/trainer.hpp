/**
 * @file
 * Cost-model training loop (Section 4.1.3): per matrix, batches of
 * SuperSchedules are ranked with the pairwise hinge loss and optimized with
 * Adam. Reports per-epoch train/validation losses (the Figure 15 curves).
 */
#pragma once

#include <functional>
#include <vector>

#include "core/dataset.hpp"
#include "model/waco_model.hpp"

namespace waco {

/** Loss trajectory of one epoch. */
struct EpochStats
{
    u32 epoch = 0;
    double trainLoss = 0.0;
    double valLoss = 0.0;
    double valOrderAccuracy = 0.0;
    double seconds = 0.0;
};

/** Training options. */
struct TrainOptions
{
    u32 epochs = 12;
    u32 batchSchedules = 16; ///< Schedules ranked together per matrix step.
    bool useL2 = false;      ///< Ablation: L2 regression instead of ranking.
    u64 seed = 7;
};

/**
 * Train @p model on @p dataset.
 * @param on_epoch optional progress callback.
 * @return one EpochStats per epoch.
 */
std::vector<EpochStats> trainCostModel(
    WacoCostModel& model, const CostDataset& dataset, const TrainOptions& opt,
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

} // namespace waco
