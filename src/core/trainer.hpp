/**
 * @file
 * Cost-model training loop (Section 4.1.3): per matrix, batches of
 * SuperSchedules are ranked with the pairwise hinge loss and optimized with
 * Adam. Reports per-epoch train/validation losses (the Figure 15 curves).
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "model/waco_model.hpp"

namespace waco {

/** Loss trajectory of one epoch. */
struct EpochStats
{
    u32 epoch = 0;
    double trainLoss = 0.0;
    double valLoss = 0.0;
    double valOrderAccuracy = 0.0;
    double seconds = 0.0;

    // --- fault-tolerance diagnostics ---
    /** Steps vetoed because the loss or gradients were non-finite. */
    u32 skippedSteps = 0;
    /** True when this epoch triggered a divergence rollback (training
     *  restored the best-epoch parameters and stopped). */
    bool rolledBack = false;
};

/** Training options. */
struct TrainOptions
{
    u32 epochs = 12;
    u32 batchSchedules = 16; ///< Schedules ranked together per matrix step.
    bool useL2 = false;      ///< Ablation: L2 regression instead of ranking.
    u64 seed = 7;

    // --- fault tolerance (non-finite steps are always skipped) ---
    /** Global gradient-norm clip; 0 disables clipping. */
    double clipNorm = 0.0;
    /** Divergence trigger: rollback + stop when the epoch's validation
     *  loss is non-finite or exceeds divergeFactor * best-so-far val loss.
     *  0 disables divergence detection. */
    double divergeFactor = 0.0;
    /** When non-empty, the best-val-loss parameters are checkpointed here
     *  (nn::saveParams format) every time they improve, and rollback
     *  restores from this file (nn::loadParams). */
    std::string checkpointPath;
    /** Restore the best-epoch parameters after the last epoch even without
     *  a divergence (early-stopping-style best-checkpoint training). */
    bool restoreBest = false;
};

/**
 * Train @p model on @p dataset.
 * @param on_epoch optional progress callback.
 * @return one EpochStats per epoch.
 */
std::vector<EpochStats> trainCostModel(
    WacoCostModel& model, const CostDataset& dataset, const TrainOptions& opt,
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

} // namespace waco
