#include "ir/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/schedule_verifier.hpp"

namespace waco {

std::string
SuperSchedule::key() const
{
    std::ostringstream os;
    os << algorithmName(alg) << "|s=";
    const auto& info = algorithmInfo(alg);
    for (u32 idx = 0; idx < info.numIndices; ++idx)
        os << (idx ? "," : "") << splits[idx];
    os << "|lo=";
    for (std::size_t i = 0; i < loopOrder.size(); ++i)
        os << (i ? "," : "") << loopOrder[i];
    os << "|p=" << parallelSlot << ":" << numThreads << ":" << ompChunk;
    os << "|slo=";
    for (std::size_t i = 0; i < sparseLevelOrder.size(); ++i)
        os << (i ? "," : "") << sparseLevelOrder[i];
    os << "|lf=";
    for (LevelFormat f : sparseLevelFormats)
        os << (f == LevelFormat::Uncompressed ? 'U' : 'C');
    os << "|dl=";
    for (bool rm : denseRowMajor)
        os << (rm ? 'r' : 'c');
    return os.str();
}

SuperSchedule
SuperSchedule::parseKey(const std::string& key)
{
    // Grammar (the exact key() output):
    //   <alg>|s=<u32>,..|lo=<u32>,..|p=<u32>:<u32>:<u32>|slo=<u32>,..
    //        |lf=[UC]*|dl=[rc]*
    auto fail = [&](const std::string& why) -> void {
        throw FatalError("parseKey: " + why + " in '" + key + "'");
    };
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        std::size_t bar = key.find('|', start);
        parts.push_back(key.substr(start, bar - start));
        if (bar == std::string::npos)
            break;
        start = bar + 1;
    }
    if (parts.size() != 7)
        fail("expected 7 '|'-separated fields");

    auto expect_prefix = [&](const std::string& part,
                             const std::string& prefix) {
        if (part.rfind(prefix, 0) != 0)
            fail("expected field '" + prefix + "...'");
        return part.substr(prefix.size());
    };
    auto parse_u32 = [&](const std::string& tok) -> u32 {
        if (tok.empty() ||
            tok.find_first_not_of("0123456789") != std::string::npos)
            fail("expected a number, got '" + tok + "'");
        unsigned long v = std::stoul(tok);
        if (v > 0xfffffffful)
            fail("number out of range: '" + tok + "'");
        return static_cast<u32>(v);
    };
    auto parse_list = [&](const std::string& body, char sep) {
        std::vector<u32> out;
        if (body.empty())
            return out;
        std::size_t pos = 0;
        while (true) {
            std::size_t next = body.find(sep, pos);
            out.push_back(parse_u32(body.substr(pos, next - pos)));
            if (next == std::string::npos)
                break;
            pos = next + 1;
        }
        return out;
    };

    SuperSchedule s;
    bool alg_found = false;
    for (Algorithm alg : allAlgorithms()) {
        if (algorithmName(alg) == parts[0]) {
            s.alg = alg;
            alg_found = true;
        }
    }
    if (!alg_found)
        fail("unknown algorithm '" + parts[0] + "'");
    const auto& info = algorithmInfo(s.alg);

    auto splits = parse_list(expect_prefix(parts[1], "s="), ',');
    if (splits.size() != info.numIndices)
        fail("wrong split count");
    for (u32 idx = 0; idx < info.numIndices; ++idx)
        s.splits[idx] = splits[idx];

    auto lo = parse_list(expect_prefix(parts[2], "lo="), ',');
    s.loopOrder.assign(lo.begin(), lo.end());

    auto p = parse_list(expect_prefix(parts[3], "p="), ':');
    if (p.size() != 3)
        fail("expected p=<slot>:<threads>:<chunk>");
    s.parallelSlot = p[0];
    s.numThreads = p[1];
    s.ompChunk = p[2];

    auto slo = parse_list(expect_prefix(parts[4], "slo="), ',');
    s.sparseLevelOrder.assign(slo.begin(), slo.end());

    for (char c : expect_prefix(parts[5], "lf=")) {
        if (c != 'U' && c != 'C')
            fail("level format must be 'U' or 'C'");
        s.sparseLevelFormats.push_back(c == 'U' ? LevelFormat::Uncompressed
                                                : LevelFormat::Compressed);
    }
    for (char c : expect_prefix(parts[6], "dl=")) {
        if (c != 'r' && c != 'c')
            fail("dense layout must be 'r' or 'c'");
        s.denseRowMajor.push_back(c == 'r');
    }
    return s;
}

std::string
SuperSchedule::describe() const
{
    const auto& info = algorithmInfo(alg);
    auto slot_name = [&](u32 slot) {
        std::string n = info.indexNames[slotIndex(slot)];
        n += slotIsInner(slot) ? "0" : "1";
        return n;
    };
    std::ostringstream os;
    os << algorithmName(alg) << " " << info.einsum << "\n";
    os << "  split:";
    for (u32 idx = 0; idx < info.numIndices; ++idx)
        os << " " << info.indexNames[idx] << "=" << splits[idx];
    os << "\n  loop order:";
    for (u32 slot : activeLoopOrder(*this))
        os << " " << slot_name(slot);
    os << "\n  parallelize: " << slot_name(parallelSlot) << " threads="
       << numThreads << " chunk=" << ompChunk;
    os << "\n  A levels:";
    auto fmts = activeSparseLevelFormats(*this);
    auto order = activeSparseLevelOrder(*this);
    for (std::size_t l = 0; l < order.size(); ++l) {
        os << " " << slot_name(order[l]) << ":"
           << (fmts[l] == LevelFormat::Uncompressed ? 'U' : 'C');
    }
    os << "\n";
    return os.str();
}

ProblemShape
ProblemShape::forMatrix(Algorithm alg, u32 rows, u32 cols, u32 dense_extent)
{
    const auto& info = algorithmInfo(alg);
    fatalIf(info.sparseOrder != 2, "forMatrix on a non-matrix algorithm");
    ProblemShape shape;
    shape.alg = alg;
    shape.indexExtent[info.indexOfSparseDim(0)] = rows;
    shape.indexExtent[info.indexOfSparseDim(1)] = cols;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        if (info.sparseDim[idx] < 0) {
            shape.indexExtent[idx] =
                dense_extent ? dense_extent : info.denseExtent[idx];
        }
    }
    return shape;
}

ProblemShape
ProblemShape::forTensor3(Algorithm alg, u32 di, u32 dk, u32 dl,
                         u32 dense_extent)
{
    const auto& info = algorithmInfo(alg);
    fatalIf(info.sparseOrder != 3, "forTensor3 on a non-3D algorithm");
    ProblemShape shape;
    shape.alg = alg;
    shape.indexExtent[info.indexOfSparseDim(0)] = di;
    shape.indexExtent[info.indexOfSparseDim(1)] = dk;
    shape.indexExtent[info.indexOfSparseDim(2)] = dl;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        if (info.sparseDim[idx] < 0) {
            shape.indexExtent[idx] =
                dense_extent ? dense_extent : info.denseExtent[idx];
        }
    }
    return shape;
}

u32
slotExtent(const SuperSchedule& s, const ProblemShape& shape, u32 slot)
{
    u32 idx = slotIndex(slot);
    u32 extent = shape.indexExtent[idx];
    u32 split = std::min(s.splits[idx], extent);
    return slotIsInner(slot) ? split : ceilDiv(extent, split);
}

bool
slotDegenerate(const SuperSchedule& s, u32 slot)
{
    return slotIsInner(slot) && s.splits[slotIndex(slot)] == 1;
}

std::vector<u32>
activeLoopOrder(const SuperSchedule& s)
{
    std::vector<u32> out;
    out.reserve(s.loopOrder.size());
    for (u32 slot : s.loopOrder) {
        if (!slotDegenerate(s, slot))
            out.push_back(slot);
    }
    return out;
}

std::vector<u32>
activeSparseLevelOrder(const SuperSchedule& s)
{
    std::vector<u32> out;
    out.reserve(s.sparseLevelOrder.size());
    for (u32 slot : s.sparseLevelOrder) {
        if (!slotDegenerate(s, slot))
            out.push_back(slot);
    }
    return out;
}

std::vector<LevelFormat>
activeSparseLevelFormats(const SuperSchedule& s)
{
    std::vector<LevelFormat> out;
    for (std::size_t l = 0; l < s.sparseLevelOrder.size(); ++l) {
        if (!slotDegenerate(s, s.sparseLevelOrder[l]))
            out.push_back(s.sparseLevelFormats[l]);
    }
    return out;
}

FormatDescriptor
formatOf(const SuperSchedule& s, const ProblemShape& shape)
{
    const auto& info = algorithmInfo(s.alg);
    std::array<u32, 3> dims = {0, 0, 0};
    std::array<u32, 3> splits = {1, 1, 1};
    for (u32 d = 0; d < info.sparseOrder; ++d) {
        u32 idx = info.indexOfSparseDim(d);
        dims[d] = shape.indexExtent[idx];
        splits[d] = std::min(s.splits[idx], dims[d]);
    }
    std::vector<LevelSpec> levels;
    auto order = activeSparseLevelOrder(s);
    auto fmts = activeSparseLevelFormats(s);
    for (std::size_t l = 0; l < order.size(); ++l) {
        u32 idx = slotIndex(order[l]);
        int d = info.sparseDim[idx];
        panicIf(d < 0, "sparse level order references a dense-only index");
        LevelPart part;
        if (splits[d] == 1) {
            part = LevelPart::Full;
        } else {
            part = slotIsInner(order[l]) ? LevelPart::Inner : LevelPart::Outer;
        }
        levels.push_back({static_cast<u32>(d), part, fmts[l]});
    }
    return FormatDescriptor(info.sparseOrder, dims, splits, levels);
}

double
concordance(const SuperSchedule& s)
{
    auto level_order = activeSparseLevelOrder(s);
    if (level_order.size() < 2)
        return 1.0;
    auto loop_order = activeLoopOrder(s);
    auto loop_pos = [&](u32 slot) {
        for (std::size_t i = 0; i < loop_order.size(); ++i) {
            if (loop_order[i] == slot)
                return i;
        }
        panic("slot missing from loop order");
    };
    u64 consistent = 0, total = 0;
    for (std::size_t a = 0; a < level_order.size(); ++a) {
        for (std::size_t b = a + 1; b < level_order.size(); ++b) {
            ++total;
            if (loop_pos(level_order[a]) < loop_pos(level_order[b]))
                ++consistent;
        }
    }
    return static_cast<double>(consistent) / static_cast<double>(total);
}

void
validateSchedule(const SuperSchedule& s, const ProblemShape& shape)
{
    // Thin wrapper over the static verifier (src/analysis): callers that
    // want the individual findings instead of an exception should call
    // analysis::verifySchedule directly.
    analysis::verifySchedule(s, shape).throwIfErrors("validateSchedule");
}

SuperScheduleSpace::SuperScheduleSpace(Algorithm alg, const ProblemShape& shape)
    : alg_(alg), shape_(shape)
{
    const auto& info = algorithmInfo(alg);
    num_indices_ = info.numIndices;
    for (u32 idx = 0; idx < num_indices_; ++idx) {
        u32 extent = shape.indexExtent[idx];
        fatalIf(extent == 0, "SuperScheduleSpace with zero-extent index");
        for (u32 sp = 1; sp <= std::min<u32>(32768, extent); sp *= 2)
            split_options_[idx].push_back(sp);
    }
    for (u32 idx = 0; idx < num_indices_; ++idx) {
        if (!info.isReduction[idx]) {
            parallel_options_.push_back(outerSlot(idx));
            parallel_options_.push_back(innerSlot(idx));
        }
    }
    thread_options_ = {24, 48};
    for (u32 c = 1; c <= 256; c *= 2)
        chunk_options_.push_back(c);
    for (u32 op = 0; op < info.denseOperands.size(); ++op) {
        if (!info.denseOperands[op].layoutFixed)
            free_layout_ops_.push_back(op);
    }
}

SuperSchedule
SuperScheduleSpace::sample(Rng& rng) const
{
    const auto& info = algorithmInfo(alg_);
    SuperSchedule s;
    s.alg = alg_;
    for (u32 idx = 0; idx < num_indices_; ++idx)
        s.splits[idx] = rng.pick(split_options_[idx]);
    auto perm = rng.permutation(numSlots());
    s.loopOrder.assign(perm.begin(), perm.end());
    // Workspace kernels constrain the order (S015): the scope loops must
    // enclose both phases. Partition them to the front, keeping the
    // sampled relative order within each group.
    if (info.usesWorkspace) {
        std::stable_partition(s.loopOrder.begin(), s.loopOrder.end(),
                              [&](u32 slot) {
                                  return info.scopeIndex[slotIndex(slot)];
                              });
    }
    s.parallelSlot = rng.pick(parallel_options_);
    s.numThreads = rng.pick(thread_options_);
    s.ompChunk = rng.pick(chunk_options_);
    auto sparse_perm = rng.permutation(2 * info.sparseOrder);
    s.sparseLevelOrder.clear();
    for (u32 p : sparse_perm) {
        u32 idx = info.indexOfSparseDim(p / 2);
        s.sparseLevelOrder.push_back(p % 2 ? innerSlot(idx) : outerSlot(idx));
    }
    s.sparseLevelFormats.clear();
    for (std::size_t l = 0; l < s.sparseLevelOrder.size(); ++l) {
        s.sparseLevelFormats.push_back(rng.bernoulli(0.5)
                                           ? LevelFormat::Compressed
                                           : LevelFormat::Uncompressed);
    }
    s.denseRowMajor.clear();
    for (const auto& op : info.denseOperands) {
        s.denseRowMajor.push_back(op.layoutFixed ? op.rowMajorDefault
                                                 : rng.bernoulli(0.5));
    }
    return s;
}

SuperSchedule
SuperScheduleSpace::mutate(const SuperSchedule& s, Rng& rng) const
{
    SuperSchedule out = s;
    switch (rng.uniformInt(0, 7)) {
      case 0: { // change one split size
        u32 idx = static_cast<u32>(rng.index(num_indices_));
        out.splits[idx] = rng.pick(split_options_[idx]);
        break;
      }
      case 1: { // swap two loops
        std::size_t a = rng.index(out.loopOrder.size());
        std::size_t b = rng.index(out.loopOrder.size());
        std::swap(out.loopOrder[a], out.loopOrder[b]);
        // Restore the workspace-scope constraint (S015) after the swap.
        const auto& info = algorithmInfo(alg_);
        if (info.usesWorkspace) {
            std::stable_partition(out.loopOrder.begin(), out.loopOrder.end(),
                                  [&](u32 slot) {
                                      return info.scopeIndex[slotIndex(slot)];
                                  });
        }
        break;
      }
      case 2:
        out.parallelSlot = rng.pick(parallel_options_);
        break;
      case 3:
        out.numThreads = rng.pick(thread_options_);
        break;
      case 4:
        out.ompChunk = rng.pick(chunk_options_);
        break;
      case 5: { // swap two format levels (order and format move together)
        std::size_t a = rng.index(out.sparseLevelOrder.size());
        std::size_t b = rng.index(out.sparseLevelOrder.size());
        std::swap(out.sparseLevelOrder[a], out.sparseLevelOrder[b]);
        break;
      }
      case 6: { // flip one level format
        std::size_t a = rng.index(out.sparseLevelFormats.size());
        out.sparseLevelFormats[a] =
            out.sparseLevelFormats[a] == LevelFormat::Uncompressed
                ? LevelFormat::Compressed
                : LevelFormat::Uncompressed;
        break;
      }
      default: { // flip one free dense layout
        if (!free_layout_ops_.empty()) {
            u32 op = rng.pick(free_layout_ops_);
            out.denseRowMajor[op] = !out.denseRowMajor[op];
        }
        break;
      }
    }
    return out;
}

double
SuperScheduleSpace::log10Size() const
{
    const auto& info = algorithmInfo(alg_);
    double log_size = 0.0;
    for (u32 idx = 0; idx < num_indices_; ++idx)
        log_size += std::log10(static_cast<double>(split_options_[idx].size()));
    auto log_fact = [](u32 n) {
        double s = 0.0;
        for (u32 i = 2; i <= n; ++i)
            s += std::log10(static_cast<double>(i));
        return s;
    };
    log_size += log_fact(numSlots());
    log_size += std::log10(static_cast<double>(parallel_options_.size()));
    log_size += std::log10(static_cast<double>(thread_options_.size()));
    log_size += std::log10(static_cast<double>(chunk_options_.size()));
    log_size += log_fact(2 * info.sparseOrder);
    log_size += 2 * info.sparseOrder * std::log10(2.0);
    log_size += free_layout_ops_.size() * std::log10(2.0);
    return log_size;
}

SuperSchedule
defaultSchedule(const ProblemShape& shape, u32 chunk)
{
    const auto& info = algorithmInfo(shape.alg);
    SuperSchedule s;
    s.alg = shape.alg;
    s.splits = {1, 1, 1, 1};
    // Canonical concordant order: every index contributes (outer, inner)
    // in declaration order, which degenerates to i, k(, l)(, j).
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        s.loopOrder.push_back(outerSlot(idx));
        s.loopOrder.push_back(innerSlot(idx));
    }
    s.parallelSlot = outerSlot(0);
    s.numThreads = 48;
    s.ompChunk = chunk ? chunk : (shape.alg == Algorithm::SpMV ? 128 : 32);
    for (u32 d = 0; d < info.sparseOrder; ++d) {
        u32 idx = info.indexOfSparseDim(d);
        s.sparseLevelOrder.push_back(outerSlot(idx));
        s.sparseLevelOrder.push_back(innerSlot(idx));
    }
    for (std::size_t l = 0; l < s.sparseLevelOrder.size(); ++l) {
        bool first_dim = slotIndex(s.sparseLevelOrder[l]) ==
                         info.indexOfSparseDim(0);
        // CSR = UC for matrices; CSF = CCC for the 3D tensor.
        LevelFormat f = (info.sparseOrder == 3)
            ? LevelFormat::Compressed
            : (first_dim ? LevelFormat::Uncompressed : LevelFormat::Compressed);
        s.sparseLevelFormats.push_back(f);
    }
    for (const auto& op : info.denseOperands)
        s.denseRowMajor.push_back(op.rowMajorDefault);
    validateSchedule(s, shape);
    return s;
}

std::vector<SuperSchedule>
wellKnownFormatSchedules(const ProblemShape& shape)
{
    const auto& info = algorithmInfo(shape.alg);
    fatalIf(info.sparseOrder != 2,
            "wellKnownFormatSchedules covers 2D algorithms only");
    u32 row_idx = info.indexOfSparseDim(0);
    u32 col_idx = info.indexOfSparseDim(1);
    std::vector<SuperSchedule> out;

    auto dense_tail = [&](std::vector<u32>& lo) {
        for (u32 idx = 0; idx < info.numIndices; ++idx) {
            if (idx != row_idx && idx != col_idx) {
                lo.push_back(outerSlot(idx));
                lo.push_back(innerSlot(idx));
            }
        }
    };

    // 1. CSR — the default.
    out.push_back(defaultSchedule(shape));

    // 2. CSC — column-major storage with a concordant traversal.
    {
        auto s = defaultSchedule(shape);
        s.sparseLevelOrder = {outerSlot(col_idx), innerSlot(col_idx),
                              outerSlot(row_idx), innerSlot(row_idx)};
        s.sparseLevelFormats = {LevelFormat::Uncompressed,
                                LevelFormat::Compressed,
                                LevelFormat::Compressed,
                                LevelFormat::Compressed};
        std::vector<u32> lo = {outerSlot(col_idx), innerSlot(col_idx),
                               outerSlot(row_idx), innerSlot(row_idx)};
        dense_tail(lo);
        s.loopOrder = lo;
        s.parallelSlot = info.isReduction[col_idx] ? outerSlot(row_idx)
                                                   : outerSlot(col_idx);
        out.push_back(s);
    }

    // 3. BCSR 4x4 (UCUU).
    {
        auto s = defaultSchedule(shape);
        s.splits[row_idx] = 4;
        s.splits[col_idx] = 4;
        s.sparseLevelOrder = {outerSlot(row_idx), outerSlot(col_idx),
                              innerSlot(row_idx), innerSlot(col_idx)};
        s.sparseLevelFormats = {LevelFormat::Uncompressed,
                                LevelFormat::Compressed,
                                LevelFormat::Uncompressed,
                                LevelFormat::Uncompressed};
        std::vector<u32> lo = {outerSlot(row_idx), outerSlot(col_idx),
                               innerSlot(row_idx), innerSlot(col_idx)};
        dense_tail(lo);
        s.loopOrder = lo;
        out.push_back(s);
    }

    // 4. One-dimensional dense blocks UCU-16 (the Figure 14 format).
    {
        auto s = defaultSchedule(shape);
        s.splits[col_idx] = 16;
        s.sparseLevelOrder = {outerSlot(row_idx), innerSlot(row_idx),
                              outerSlot(col_idx), innerSlot(col_idx)};
        s.sparseLevelFormats = {LevelFormat::Uncompressed,
                                LevelFormat::Compressed,
                                LevelFormat::Compressed,
                                LevelFormat::Uncompressed};
        out.push_back(s);
    }

    // 5. Sparse blocks UUC (cache tiling over the column dimension).
    {
        auto s = defaultSchedule(shape);
        u32 extent = shape.indexExtent[col_idx];
        u32 target = std::min<u32>(16384, std::max<u32>(2, extent / 4));
        u32 sp = 1;
        while (sp * 2 <= target)
            sp *= 2;
        s.splits[col_idx] = sp;
        s.sparseLevelOrder = {outerSlot(col_idx), outerSlot(row_idx),
                              innerSlot(row_idx), innerSlot(col_idx)};
        s.sparseLevelFormats = {LevelFormat::Uncompressed,
                                LevelFormat::Uncompressed,
                                LevelFormat::Compressed,
                                LevelFormat::Compressed};
        std::vector<u32> lo = {outerSlot(col_idx), outerSlot(row_idx),
                               innerSlot(row_idx), innerSlot(col_idx)};
        dense_tail(lo);
        s.loopOrder = lo;
        out.push_back(s);
    }
    // Workspace kernels: the CSC/UUC entries lead with column slots, which
    // S015 forbids (the scope loops must enclose both phases). Keep the
    // format half — the traversal just turns discordant.
    if (info.usesWorkspace) {
        for (auto& s : out) {
            std::stable_partition(s.loopOrder.begin(), s.loopOrder.end(),
                                  [&](u32 slot) {
                                      return info.scopeIndex[slotIndex(slot)];
                                  });
        }
    }
    for (const auto& s : out)
        validateSchedule(s, shape);
    return out;
}

} // namespace waco
