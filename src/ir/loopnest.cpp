#include "ir/loopnest.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/loopnest_verifier.hpp"
#include "analysis/schedule_verifier.hpp"

namespace waco {

LoopNest
LoopNest::fromRaw(Algorithm alg, const ProblemShape& shape,
                  const std::array<u32, 4>& splits,
                  std::vector<LoopNode> loops, ComputeLeaf leaf,
                  std::vector<u32> levelSlots,
                  std::vector<LevelFormat> levelFormats,
                  std::vector<bool> levelConcordant)
{
    LoopNest nest;
    nest.alg_ = alg;
    nest.shape_ = shape;
    nest.splits_ = splits;
    nest.loops_ = std::move(loops);
    nest.leaf_ = leaf;
    nest.levelSlots_ = std::move(levelSlots);
    nest.levelFormats_ = std::move(levelFormats);
    nest.levelConcordant_ = std::move(levelConcordant);
    return nest;
}

LoopNest
LoopNest::fromRawFused(Algorithm alg, const ProblemShape& shape,
                       const std::array<u32, 4>& splits,
                       std::vector<LoopNode> loops, ComputeLeaf leaf,
                       std::vector<u32> levelSlots,
                       std::vector<LevelFormat> levelFormats,
                       std::vector<bool> levelConcordant,
                       std::vector<LoopNode> consumerLoops,
                       ComputeLeaf consumerLeaf, WorkspaceDecl workspace)
{
    LoopNest nest = fromRaw(alg, shape, splits, std::move(loops), leaf,
                            std::move(levelSlots), std::move(levelFormats),
                            std::move(levelConcordant));
    nest.consumerLoops_ = std::move(consumerLoops);
    nest.consumerLeaf_ = consumerLeaf;
    nest.workspace_ = workspace;
    return nest;
}

u32
LoopNest::loopPositionOf(u32 slot) const
{
    for (u32 p = 0; p < loops_.size(); ++p) {
        if (loops_[p].slot == slot)
            return p;
    }
    // Degenerate inner slot: executes at its outer half's position.
    u32 outer = outerSlot(slotIndex(slot));
    if (outer != slot) {
        for (u32 p = 0; p < loops_.size(); ++p) {
            if (loops_[p].slot == outer)
                return p;
        }
    }
    panic("slot not found in lowered loop nest");
}

std::string
LoopNest::slotVarName(u32 slot) const
{
    const auto& info = algorithmInfo(alg_);
    std::string base = info.indexNames[slotIndex(slot)];
    if (splits_[slotIndex(slot)] == 1)
        return base;
    return base + (slotIsInner(slot) ? "0" : "1");
}

std::string
LoopNest::varName(u32 depth) const
{
    return slotVarName(loops_[depth].slot);
}

std::string
LoopNest::describe() const
{
    std::ostringstream os;
    os << algorithmName(alg_) << " loop nest (" << loops_.size()
       << " loops, " << numLevels() << " A levels):\n";
    std::string indent;
    for (u32 d = 0; d < loops_.size(); ++d) {
        const LoopNode& n = loops_[d];
        os << indent;
        if (n.parallel)
            os << "parallel(chunk=" << n.chunk << ") ";
        if (n.kind == LoopKind::Sparse) {
            os << "sparse " << varName(d) << " over A level " << n.level
               << " ("
               << (levelFormats_[n.level] == LevelFormat::Uncompressed ? 'U'
                                                                       : 'C')
               << ")";
        } else {
            os << "dense " << varName(d) << " < " << n.extent;
            if (n.level >= 0)
                os << " (discordant with A level " << n.level << ")";
        }
        for (const LocateStep& loc : n.locates) {
            os << "; locate " << slotVarName(loc.slot) << " in level "
               << loc.level
               << (loc.binarySearch ? " (binary search)" : " (offset)");
        }
        os << "\n";
        indent += "  ";
    }
    os << indent << "compute " << algorithmInfo(alg_).einsum;
    if (leaf_.vectorIndex >= 0) {
        os << "  [vector tail over "
           << algorithmInfo(alg_).indexNames[leaf_.vectorIndex] << "]";
    }
    os << "\n";
    if (fused()) {
        const auto& info = algorithmInfo(alg_);
        os << "workspace w[" << info.indexNames[workspace_.index]
           << "] extent " << workspace_.extent << " at scope depth "
           << workspace_.scopeDepth << "; consumer phase:\n";
        std::string cind(2 * workspace_.scopeDepth, ' ');
        for (const LoopNode& n : consumerLoops_) {
            os << cind;
            if (n.parallel)
                os << "parallel(chunk=" << n.chunk << ") ";
            if (n.kind == LoopKind::Sparse) {
                os << "sparse " << slotVarName(n.slot) << " over A level "
                   << n.level;
            } else {
                os << "dense " << slotVarName(n.slot) << " < " << n.extent;
            }
            for (const LocateStep& loc : n.locates) {
                os << "; locate " << slotVarName(loc.slot) << " in level "
                   << loc.level
                   << (loc.binarySearch ? " (binary search)" : " (offset)");
            }
            os << "\n";
            cind += "  ";
        }
        os << cind << "consume E[i,m] += A * w * F";
        if (consumerLeaf_.vectorIndex >= 0) {
            os << "  [vector tail over "
               << info.indexNames[consumerLeaf_.vectorIndex] << "]";
        }
        os << "\n";
    }
    return os.str();
}

LoopNest
lower(const SuperSchedule& s, const ProblemShape& shape)
{
    // Front-door verification: all structural errors at once, not just the
    // first (the thrown message lists every WACO-S0xx finding).
    analysis::verifySchedule(s, shape).throwIfErrors("lower");
    const auto& info = algorithmInfo(s.alg);

    LoopNest nest;
    nest.alg_ = s.alg;
    nest.shape_ = shape;
    for (u32 idx = 0; idx < info.numIndices; ++idx)
        nest.splits_[idx] = std::min(s.splits[idx], shape.indexExtent[idx]);

    const auto active = activeLoopOrder(s);
    nest.levelSlots_ = activeSparseLevelOrder(s);
    nest.levelFormats_ = activeSparseLevelFormats(s);
    const u32 num_levels = static_cast<u32>(nest.levelSlots_.size());

    auto level_of_slot = [&](u32 slot) -> int {
        for (u32 l = 0; l < num_levels; ++l) {
            if (nest.levelSlots_[l] == slot)
                return static_cast<int>(l);
        }
        return -1;
    };

    // Walk one compute loop order, resolving A's storage levels in level
    // order. A level whose slot-loop opens while an earlier level is still
    // unresolved becomes a full-coordinate Dense loop; it is located (by
    // offset or binary search) once the levels above it have been
    // traversed. Fused nests run this walk once per phase (the phases see
    // the same level-slot order, so their concordance bookkeeping agrees).
    struct Walk
    {
        std::vector<LoopNode> loops;
        std::vector<bool> concordant;
        int vectorIndex = -1;
    };
    auto build = [&](const std::vector<u32>& loops) {
        Walk w;
        w.concordant.assign(num_levels, true);
        u32 next_level = 0;
        for (std::size_t pos = 0; pos < loops.size(); ++pos) {
            u32 slot = loops[pos];
            LoopNode node;
            node.slot = slot;
            node.extent = slotExtent(s, shape, slot);
            if (slot == s.parallelSlot) {
                node.parallel = true;
                node.chunk = s.ompChunk;
            }
            int level = level_of_slot(slot);
            if (level >= 0 && static_cast<u32>(level) == next_level) {
                node.kind = LoopKind::Sparse;
                node.level = level;
                ++next_level;
                // Deeper levels whose loops already ran further out are
                // resolved here, in level order.
                while (next_level < num_levels) {
                    u32 dslot = nest.levelSlots_[next_level];
                    bool opened_above = false;
                    for (std::size_t q = 0; q < pos; ++q)
                        opened_above |= (loops[q] == dslot);
                    if (!opened_above)
                        break;
                    node.locates.push_back(
                        {next_level, dslot,
                         nest.levelFormats_[next_level] ==
                             LevelFormat::Compressed});
                    w.concordant[next_level] = false;
                    ++next_level;
                }
            } else {
                node.kind = LoopKind::Dense;
                node.level = level; // -1 for dense-only indices
            }
            w.loops.push_back(std::move(node));
        }
        panicIf(next_level != num_levels,
                "lowering left storage levels unresolved");
        if (!w.loops.empty()) {
            const LoopNode& last = w.loops.back();
            u32 idx = slotIndex(last.slot);
            if (last.kind == LoopKind::Dense && last.level < 0 &&
                nest.splits_[idx] == 1) {
                w.vectorIndex = static_cast<int>(idx);
            }
        }
        return w;
    };

    nest.leaf_.alg = s.alg;
    if (!info.usesWorkspace) {
        Walk w = build(active);
        nest.loops_ = std::move(w.loops);
        nest.levelConcordant_ = std::move(w.concordant);
        nest.leaf_.vectorIndex = w.vectorIndex;
    } else {
        // Fused lowering: each phase walks the active loop order with the
        // other phase's private slots removed. S015 guarantees the scope
        // loops lead, so the two walks share an identical prefix — the
        // loops [0, scopeDepth) the workspace is declared under.
        std::vector<u32> producer_order, consumer_order;
        u32 scope_depth = 0;
        for (u32 slot : active) {
            u32 idx = slotIndex(slot);
            if (info.producerIndex[idx])
                producer_order.push_back(slot);
            if (info.consumerIndex[idx])
                consumer_order.push_back(slot);
        }
        while (scope_depth < producer_order.size() &&
               info.scopeIndex[slotIndex(producer_order[scope_depth])])
            ++scope_depth;

        Walk prod = build(producer_order);
        Walk cons = build(consumer_order);
        panicIf(prod.concordant != cons.concordant,
                "fused phases disagree on level concordance");
        for (u32 d = 0; d < scope_depth; ++d) {
            panicIf(prod.loops[d].slot != cons.loops[d].slot,
                    "fused phases disagree on the scope prefix");
        }
        nest.loops_ = std::move(prod.loops);
        nest.levelConcordant_ = std::move(prod.concordant);
        nest.leaf_.vectorIndex = prod.vectorIndex;
        nest.consumerLoops_.assign(cons.loops.begin() + scope_depth,
                                   cons.loops.end());
        nest.consumerLeaf_.alg = s.alg;
        nest.consumerLeaf_.vectorIndex = cons.vectorIndex;
        nest.workspace_.present = true;
        nest.workspace_.index = info.workspaceIndex;
        nest.workspace_.extent = shape.indexExtent[info.workspaceIndex];
        nest.workspace_.scopeDepth = scope_depth;
    }
#ifndef NDEBUG
    // Lowering self-check: a verified schedule must lower to a nest that
    // satisfies every structural invariant. A failure here is a lowering
    // bug, not a user error.
    {
        auto diags = analysis::verifyLoopNest(nest);
        panicIf(diags.hasErrors(),
                "lower produced an invalid loop nest:\n" + diags.format());
    }
#endif
    return nest;
}

ProblemShape
shapeForFormat(Algorithm alg, const FormatDescriptor& desc, u32 dense_extent)
{
    const auto& info = algorithmInfo(alg);
    fatalIf(desc.order() != info.sparseOrder,
            "format order does not match the algorithm's sparse tensor");
    if (info.sparseOrder == 3) {
        return ProblemShape::forTensor3(alg, desc.dims()[0], desc.dims()[1],
                                        desc.dims()[2], dense_extent);
    }
    return ProblemShape::forMatrix(alg, desc.dims()[0], desc.dims()[1],
                                   dense_extent);
}

SuperSchedule
storageOrderSchedule(Algorithm alg, const FormatDescriptor& desc)
{
    const auto& info = algorithmInfo(alg);
    fatalIf(desc.order() != info.sparseOrder,
            "format order does not match the algorithm's sparse tensor");

    SuperSchedule s;
    s.alg = alg;
    s.splits = {1, 1, 1, 1};
    for (u32 d = 0; d < desc.order(); ++d)
        s.splits[info.indexOfSparseDim(d)] = desc.splits()[d];

    // Format half: the descriptor's levels verbatim, with the degenerate
    // inner slots of unsplit dimensions appended (validateSchedule requires
    // a full permutation; activeSparseLevelOrder strips them again).
    for (const LevelSpec& lv : desc.levels()) {
        u32 idx = info.indexOfSparseDim(lv.dim);
        s.sparseLevelOrder.push_back(
            lv.part == LevelPart::Inner ? innerSlot(idx) : outerSlot(idx));
        s.sparseLevelFormats.push_back(lv.fmt);
    }
    for (u32 d = 0; d < desc.order(); ++d) {
        if (desc.splits()[d] == 1) {
            s.sparseLevelOrder.push_back(
                innerSlot(info.indexOfSparseDim(d)));
            s.sparseLevelFormats.push_back(LevelFormat::Uncompressed);
        }
    }

    // Compute half: traverse storage concordantly, dense-only loops
    // innermost (where the per-nonzero dense work runs), degenerate slots
    // wherever (they are elided).
    std::vector<bool> placed(2 * info.numIndices, false);
    auto push = [&](u32 slot) {
        if (!placed[slot]) {
            s.loopOrder.push_back(slot);
            placed[slot] = true;
        }
    };
    for (const LevelSpec& lv : desc.levels()) {
        u32 idx = info.indexOfSparseDim(lv.dim);
        push(lv.part == LevelPart::Inner ? innerSlot(idx) : outerSlot(idx));
    }
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        if (info.sparseDim[idx] < 0) {
            push(outerSlot(idx));
            push(innerSlot(idx));
        }
    }
    for (u32 slot = 0; slot < 2 * info.numIndices; ++slot)
        push(slot);

    // Workspace kernels need the scope loops outermost (S015): the
    // workspace is private per scope iteration, so no phase loop may run
    // outside it. Storage orders that lead with another dimension (e.g.
    // CSC's column level) then traverse discordantly, via locates.
    if (info.usesWorkspace) {
        std::stable_partition(s.loopOrder.begin(), s.loopOrder.end(),
                              [&](u32 slot) {
                                  return info.scopeIndex[slotIndex(slot)];
                              });
    }

    // Parallel annotation: the outermost non-reduction slot (the executor
    // decides at run time whether the top loop is actually chunked).
    s.parallelSlot = 0;
    for (u32 slot : s.loopOrder) {
        if (!info.isReduction[slotIndex(slot)] && !slotDegenerate(s, slot)) {
            s.parallelSlot = slot;
            break;
        }
    }
    s.numThreads = 48;
    s.ompChunk = 32;
    for (const auto& op : info.denseOperands)
        s.denseRowMajor.push_back(op.rowMajorDefault);
    return s;
}

void
forEachLoop(const LoopNest& nest,
            const std::function<void(const LoopNode&, u32 depth,
                                     NestPhase phase)>& fn)
{
    const auto& loops = nest.loops();
    for (u32 d = 0; d < loops.size(); ++d)
        fn(loops[d], d, NestPhase::Producer);
    if (!nest.fused())
        return;
    const auto& consumer = nest.consumerLoops();
    u32 base = nest.scopePrefixDepth();
    for (u32 d = 0; d < consumer.size(); ++d)
        fn(consumer[d], base + d, NestPhase::Consumer);
}

LoopNest
lowerStorageOrder(Algorithm alg, const FormatDescriptor& desc,
                  u32 dense_extent)
{
    ProblemShape shape = shapeForFormat(alg, desc, dense_extent);
    SuperSchedule s = storageOrderSchedule(alg, desc);
    LoopNest nest = lower(s, shape);
    panicIf(!(formatOf(s, shape) == desc),
            "storage-order schedule does not reproduce the format");
    return nest;
}

} // namespace waco
