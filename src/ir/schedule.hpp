/**
 * @file
 * SuperSchedule: the paper's unified template that defines the format and
 * the schedule of a sparse tensor program together (Section 4.1.2, Table 3).
 *
 * Every index variable of the algorithm is split exactly once into an outer
 * and an inner loop ("slot"); choosing a split size of 1 degenerates the
 * split away, which is how SuperSchedule covers all less-split schedules.
 * The compute schedule is a permutation of all slots plus a parallelization
 * choice (slot, thread count, OpenMP-dynamic chunk size). The format
 * schedule is a permutation of the sparse tensor's slots plus a U/C level
 * format per level, and a row-/column-major choice for each dense operand
 * whose layout the paper does not fix.
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ir/algorithm.hpp"
#include "tensor/format.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace waco {

/** Slot id helpers: slot 2*idx is the outer half of index idx, 2*idx+1 the inner. */
constexpr u32 outerSlot(u32 idx) { return 2 * idx; }
constexpr u32 innerSlot(u32 idx) { return 2 * idx + 1; }
constexpr u32 slotIndex(u32 slot) { return slot / 2; }
constexpr bool slotIsInner(u32 slot) { return (slot & 1) != 0; }

/** A complete point in the co-optimization search space. */
struct SuperSchedule
{
    Algorithm alg = Algorithm::SpMV;

    /** Split size per index variable (1 = degenerate / unsplit). */
    std::array<u32, 4> splits = {1, 1, 1, 1};

    /** Compute schedule: permutation of all 2*numIndices slots, outermost first. */
    std::vector<u32> loopOrder;

    /** Parallelized slot (must reference a non-reduction index). */
    u32 parallelSlot = 0;
    /** Simulated thread count (paper: 24 or 48). */
    u32 numThreads = 48;
    /** OpenMP dynamic-scheduling chunk size (paper: powers of two, 1..256). */
    u32 ompChunk = 32;

    /** Format schedule: permutation of the sparse tensor's slots. */
    std::vector<u32> sparseLevelOrder;
    /** Level format per entry of sparseLevelOrder. */
    std::vector<LevelFormat> sparseLevelFormats;
    /** Row-major flag per dense operand (entries with fixed layout are
     *  forced back to the paper's choice). */
    std::vector<bool> denseRowMajor;

    /** Compact unique string key (used for dedup and hashing). */
    std::string key() const;

    /**
     * Parse a key() string back into a schedule (exact inverse:
     * parse(k).key() == k). Throws FatalError on malformed input. The
     * result is NOT legality-checked — feed it to analysis::verifySchedule
     * (what `tune_cli --verify-only --schedule KEY` does).
     */
    static SuperSchedule parseKey(const std::string& key);

    /** Human-readable multi-line description. */
    std::string describe() const;

    bool operator==(const SuperSchedule& o) const { return key() == o.key(); }
};

/**
 * The per-problem geometry a schedule is applied to: extent of every index
 * variable (sparse dims from the input tensor, dense-only dims from the
 * algorithm defaults unless overridden).
 */
struct ProblemShape
{
    Algorithm alg = Algorithm::SpMV;
    std::array<u32, 4> indexExtent = {0, 0, 0, 0};

    /** Shape for a 2D sparse input (SpMV / SpMM / SDDMM). */
    static ProblemShape forMatrix(Algorithm alg, u32 rows, u32 cols,
                                  u32 dense_extent = 0);
    /** Shape for a 3D sparse input (MTTKRP). */
    static ProblemShape forTensor3(Algorithm alg, u32 di, u32 dk, u32 dl,
                                   u32 dense_extent = 0);
};

/** Extent of a slot's loop under a schedule (outer: ceil(n/split), inner: split). */
u32 slotExtent(const SuperSchedule& s, const ProblemShape& shape, u32 slot);

/** True when the slot is degenerate (its index is unsplit and it is the
 *  inner half, i.e. a loop of extent 1 that TACO would elide). */
bool slotDegenerate(const SuperSchedule& s, u32 slot);

/** Loop order with degenerate slots removed (what actually executes). */
std::vector<u32> activeLoopOrder(const SuperSchedule& s);

/** Sparse level order with degenerate slots removed. */
std::vector<u32> activeSparseLevelOrder(const SuperSchedule& s);

/** Level formats aligned with activeSparseLevelOrder(). */
std::vector<LevelFormat> activeSparseLevelFormats(const SuperSchedule& s);

/** Build the FormatDescriptor the schedule's format half describes. */
FormatDescriptor formatOf(const SuperSchedule& s, const ProblemShape& shape);

/**
 * Degree of concordance between the compute loop order and the sparse level
 * order: 1.0 when the sparse levels appear in the same relative order in the
 * loop nest (cheap co-iteration), lower when the loop order is discordant
 * and traversal needs searches over compressed levels (Section 3.1).
 */
double concordance(const SuperSchedule& s);

/**
 * Validate internal consistency; throws FatalError listing every
 * structural error when malformed. Thin wrapper over the diagnostics-based
 * analysis::verifySchedule (src/analysis/schedule_verifier.hpp) — prefer
 * that API when you want findings instead of an exception.
 */
void validateSchedule(const SuperSchedule& s, const ProblemShape& shape);

/**
 * The enumerable parameter space of SuperSchedules for one algorithm
 * (Table 3). Used by the random sampler, the black-box tuners, and the
 * program embedder's categorical vocabularies.
 */
class SuperScheduleSpace
{
  public:
    SuperScheduleSpace(Algorithm alg, const ProblemShape& shape);

    Algorithm alg() const { return alg_; }
    const ProblemShape& shape() const { return shape_; }
    u32 numIndices() const { return num_indices_; }
    u32 numSlots() const { return 2 * num_indices_; }

    /** Allowed split sizes (powers of two) for index @p idx. */
    const std::vector<u32>& splitOptions(u32 idx) const { return split_options_[idx]; }
    /** Slots legal to parallelize (non-reduction indices). */
    const std::vector<u32>& parallelOptions() const { return parallel_options_; }
    const std::vector<u32>& threadOptions() const { return thread_options_; }
    const std::vector<u32>& chunkOptions() const { return chunk_options_; }
    /** Indices of dense operands whose layout is free. */
    const std::vector<u32>& freeLayoutOperands() const { return free_layout_ops_; }

    /** Uniformly sample a valid SuperSchedule. */
    SuperSchedule sample(Rng& rng) const;

    /** Randomly mutate one parameter group of @p s (for local tuners). */
    SuperSchedule mutate(const SuperSchedule& s, Rng& rng) const;

    /** Total log10 cardinality of the space, for reporting. */
    double log10Size() const;

  private:
    Algorithm alg_;
    ProblemShape shape_;
    u32 num_indices_ = 0;
    std::array<std::vector<u32>, 4> split_options_;
    std::vector<u32> parallel_options_;
    std::vector<u32> thread_options_;
    std::vector<u32> chunk_options_;
    std::vector<u32> free_layout_ops_;
};

/** The fixed baseline schedule: CSR (CSF for MTTKRP) with TACO's default
 *  concordant loop order, parallelized outermost loop.
 *  @param chunk paper's FixedCSR chunk sizes: 128 for SpMV, 32 otherwise. */
SuperSchedule defaultSchedule(const ProblemShape& shape, u32 chunk = 0);

/**
 * The five classic format families expressed as concordant SuperSchedules:
 * CSR, CSC, BCSR 4x4 (UCUU), one-dimensional dense blocks (UCU-16) and
 * sparse blocks (UUC with a large column split). These are both the
 * BestFormat baseline's candidate set (the five most frequent winners in
 * WACO-style searches, Section 5.1) and anchor points mixed into training
 * datasets so the KNN graph contains the known-good format corners.
 * 2D algorithms only.
 */
std::vector<SuperSchedule> wellKnownFormatSchedules(const ProblemShape& shape);

} // namespace waco
