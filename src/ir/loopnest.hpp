/**
 * @file
 * Lowered loop-nest IR: the single shared representation of what a
 * SuperSchedule *means* operationally.
 *
 * lower(SuperSchedule, ProblemShape) turns the schedule's declarative
 * parameters (splits, loop order, format level order/formats, parallel
 * annotation) into an explicit nest of typed loop nodes:
 *
 *  - Dense:  a full-coordinate loop over one slot — either a dense-only
 *            index of the algorithm, or a sparse slot whose loop is ordered
 *            *discordantly* with A's storage level order (its storage level
 *            is resolved later by a locate step).
 *  - Sparse: a concordant traversal of the next storage level of A
 *            (0..extent for an Uncompressed level, pos/crd iteration for a
 *            Compressed one).
 *
 * A Sparse node carries the locate steps that fire once its level binds:
 * every deeper level whose loop ran further out (discordant) is resolved
 * there — by direct offset for U levels, by binary search over crd for C
 * levels (Section 3.1's discordant-traversal cost made explicit).
 *
 * Exactly one compute leaf per algorithm sits under the innermost loop.
 *
 * Workspace kernels (Algorithm::FusedSDDMMSpMM) lower to a FUSED nest: a
 * shared scope prefix (the loops of the algorithm's scope indices), a
 * dense workspace temporary declared at the fission point, and two phase
 * bodies under it. loops() holds prefix + producer phase with leaf() its
 * accumulate statement (w[j] += ...); consumerLoops() holds the consumer
 * phase (depths scopeDepth..) with consumerLeaf() its statement (E +=
 * A*w[j]*F). Each scope iteration zero-initializes the workspace, runs
 * the producer, then the consumer — init/accumulate/consume phases with
 * an explicit scope level (Kjolstad et al., workspaces).
 *
 * Three consumers share this IR so they can never drift apart:
 *  - exec/loopnest_exec.cpp interprets it (the real execution engine),
 *  - codegen/emit.cpp pretty-prints it as TACO-style C,
 *  - perfmodel/cost_model.cpp walks it for traversal/locality terms.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/schedule.hpp"

namespace waco {

/** Kind of one loop node in the lowered nest. */
enum class LoopKind : unsigned char
{
    Dense,  ///< Full coordinate loop over one slot.
    Sparse, ///< Concordant traversal of one storage level of A.
};

/** Resolve a storage level whose loop ran discordantly further out. */
struct LocateStep
{
    u32 level;         ///< Storage level of A being resolved.
    u32 slot;          ///< Slot whose already-bound coordinate is located.
    bool binarySearch; ///< C level: search crd; U level: direct offset.
};

/** One loop of the lowered nest, outermost first. */
struct LoopNode
{
    LoopKind kind = LoopKind::Dense;
    u32 slot = 0;   ///< Slot this loop iterates.
    u32 extent = 0; ///< Trip count (coordinate range; C levels vary per run).
    /** Storage level of A: the traversed level for Sparse nodes, the level
     *  this slot belongs to for discordant Dense nodes, -1 for dense-only
     *  indices. */
    int level = -1;
    bool parallel = false; ///< Schedule's parallel annotation.
    u32 chunk = 0;         ///< Annotated OpenMP-dynamic chunk size.
    /** Levels resolved right after each iteration of this loop binds. */
    std::vector<LocateStep> locates;
};

/**
 * Dense workspace temporary of a fused nest: a scratch vector indexed by
 * one index variable, private to each iteration of the scope prefix
 * (loops [0, scopeDepth)). Executors allocate one per parallel chunk and
 * zero it at the top of every scope iteration (the init phase).
 */
struct WorkspaceDecl
{
    bool present = false;
    u32 index = 0;      ///< Index variable the workspace is indexed by.
    u32 extent = 0;     ///< Coordinate extent (shape.indexExtent[index]).
    u32 scopeDepth = 0; ///< Declared under loops [0, scopeDepth).
};

/** The single compute statement under the innermost loop. */
struct ComputeLeaf
{
    Algorithm alg = Algorithm::SpMV;
    /**
     * Dense-only index whose full, unsplit loop is the innermost node of
     * the nest, or -1. Executor leaves may fuse that loop into a tight
     * (vectorizable) tail instead of recursing per element; the emitter
     * still prints it as an ordinary loop.
     */
    int vectorIndex = -1;
};

/**
 * A fully lowered sparse tensor program: an ordered nest of loop nodes over
 * the storage levels of A plus one compute leaf. Immutable after lower().
 */
class LoopNest
{
  public:
    Algorithm alg() const { return alg_; }
    const ProblemShape& shape() const { return shape_; }
    /** Every loop of a single-expression nest; scope prefix + producer
     *  phase of a fused one. */
    const std::vector<LoopNode>& loops() const { return loops_; }
    /** Compute statement of the (producer) nest. */
    const ComputeLeaf& leaf() const { return leaf_; }

    /** True for a fused workspace nest (consumer phase present). */
    bool fused() const { return workspace_.present; }
    /** Workspace temporary (present only for fused nests). */
    const WorkspaceDecl& workspace() const { return workspace_; }
    /** Consumer-phase loops, starting at depth workspace().scopeDepth. */
    const std::vector<LoopNode>& consumerLoops() const
    {
        return consumerLoops_;
    }
    /** Compute statement of the consumer phase. */
    const ComputeLeaf& consumerLeaf() const { return consumerLeaf_; }

    /** Number of storage levels of A (== formatOf(...).numLevels()). */
    u32 numLevels() const { return static_cast<u32>(levelSlots_.size()); }
    /** Slot traversed/located at storage level @p l. */
    u32 levelSlot(u32 l) const { return levelSlots_[l]; }
    /** Level format of storage level @p l. */
    LevelFormat levelFormat(u32 l) const { return levelFormats_[l]; }
    /** True when level @p l is traversed by a Sparse node (concordant),
     *  false when a LocateStep resolves it. */
    bool levelConcordant(u32 l) const { return levelConcordant_[l]; }

    /** Effective (extent-clamped) split size of index @p idx. */
    u32 splitOf(u32 idx) const { return splits_[idx]; }

    /** Number of loops every phase shares: the scope prefix of a fused
     *  nest (== workspace().scopeDepth), 0 for single-expression nests
     *  (which have exactly one phase). */
    u32 scopePrefixDepth() const
    {
        return workspace_.present ? workspace_.scopeDepth : 0;
    }

    /**
     * Position of @p slot in the nest, outermost = 0. Degenerate inner
     * slots (split 1) execute "at" their outer half's position, matching
     * how TACO elides extent-1 loops.
     */
    u32 loopPositionOf(u32 slot) const;

    /** Loop variable name of the node at @p depth ("i", "k0", ...). */
    std::string varName(u32 depth) const;
    /** Loop variable name for an arbitrary slot. */
    std::string slotVarName(u32 slot) const;

    /** Multi-line human-readable dump (debugging / logging). */
    std::string describe() const;

    /**
     * Assemble a nest directly from its parts, bypassing lower(). NO
     * validation happens here — the result may violate every nest
     * invariant. This is the entry point for alternative frontends and
     * for the analysis tests, which corrupt nests deliberately; run
     * analysis::verifyLoopNest() before executing or emitting one.
     */
    static LoopNest fromRaw(Algorithm alg, const ProblemShape& shape,
                            const std::array<u32, 4>& splits,
                            std::vector<LoopNode> loops, ComputeLeaf leaf,
                            std::vector<u32> levelSlots,
                            std::vector<LevelFormat> levelFormats,
                            std::vector<bool> levelConcordant);

    /** fromRaw for fused nests: additionally installs the consumer phase
     *  and the workspace declaration. Same no-validation contract. */
    static LoopNest fromRawFused(Algorithm alg, const ProblemShape& shape,
                                 const std::array<u32, 4>& splits,
                                 std::vector<LoopNode> loops,
                                 ComputeLeaf leaf,
                                 std::vector<u32> levelSlots,
                                 std::vector<LevelFormat> levelFormats,
                                 std::vector<bool> levelConcordant,
                                 std::vector<LoopNode> consumerLoops,
                                 ComputeLeaf consumerLeaf,
                                 WorkspaceDecl workspace);

  private:
    friend LoopNest lower(const SuperSchedule& s, const ProblemShape& shape);

    Algorithm alg_ = Algorithm::SpMV;
    ProblemShape shape_;
    std::array<u32, 4> splits_ = {1, 1, 1, 1};
    std::vector<LoopNode> loops_;
    ComputeLeaf leaf_;
    std::vector<u32> levelSlots_;
    std::vector<LevelFormat> levelFormats_;
    std::vector<bool> levelConcordant_;
    // Fused-nest extension (empty / absent for single-expression nests).
    std::vector<LoopNode> consumerLoops_;
    ComputeLeaf consumerLeaf_;
    WorkspaceDecl workspace_;
};

/** Phase a loop belongs to when walking a (possibly fused) nest. */
enum class NestPhase : unsigned char
{
    Producer, ///< Scope prefix + producer chain (every loop of loops()).
    Consumer, ///< Consumer chain of a fused nest (consumerLoops()).
};

/**
 * Visit every loop of @p nest in execution order with its global depth and
 * phase: first loops() at depths 0.., then — fused nests only — the
 * consumer chain re-entered at depth workspace().scopeDepth. Analysis
 * passes that must price both phases (cost model, asymptotic bounds) walk
 * through this so the fused-nest shape lives in exactly one place.
 */
void forEachLoop(const LoopNest& nest,
                 const std::function<void(const LoopNode&, u32 depth,
                                          NestPhase phase)>& fn);

/**
 * Lower a SuperSchedule to its loop nest. Validates the schedule; throws
 * FatalError for malformed schedules (same contract as validateSchedule).
 */
LoopNest lower(const SuperSchedule& s, const ProblemShape& shape);

/**
 * The concordant SuperSchedule that describes iterating a tensor exactly in
 * the storage order of @p desc, with the algorithm's dense-only loops
 * innermost — what the format-generic kernels execute for an arbitrary
 * pre-built HierSparseTensor. formatOf(result, shape) reproduces @p desc.
 */
SuperSchedule storageOrderSchedule(Algorithm alg, const FormatDescriptor& desc);

/** ProblemShape matching @p desc's dimensions, with @p dense_extent (or the
 *  algorithm default when 0) for dense-only indices. */
ProblemShape shapeForFormat(Algorithm alg, const FormatDescriptor& desc,
                            u32 dense_extent = 0);

/** Convenience: lower the storage-order schedule of @p desc. */
LoopNest lowerStorageOrder(Algorithm alg, const FormatDescriptor& desc,
                           u32 dense_extent = 0);

} // namespace waco
