#include "ir/algorithm.hpp"

#include <cctype>

namespace waco {

std::string
algorithmName(Algorithm alg)
{
    switch (alg) {
      case Algorithm::SpMV: return "SpMV";
      case Algorithm::SpMM: return "SpMM";
      case Algorithm::SDDMM: return "SDDMM";
      case Algorithm::MTTKRP: return "MTTKRP";
      case Algorithm::FusedSDDMMSpMM: return "FusedSDDMMSpMM";
    }
    panic("unknown algorithm");
}

const std::vector<Algorithm>&
allAlgorithms()
{
    static const std::vector<Algorithm> all = {
        Algorithm::SpMV, Algorithm::SpMM, Algorithm::SDDMM, Algorithm::MTTKRP,
        Algorithm::FusedSDDMMSpMM};
    return all;
}

bool
algorithmFromName(const std::string& name, Algorithm& out)
{
    auto fold = [](const std::string& s) {
        std::string f;
        for (char c : s) {
            if (c == '_')
                continue;
            f.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        }
        return f;
    };
    const std::string want = fold(name);
    for (Algorithm alg : allAlgorithms()) {
        if (fold(algorithmName(alg)) == want) {
            out = alg;
            return true;
        }
    }
    return false;
}

u32
AlgorithmInfo::indexOfSparseDim(u32 d) const
{
    for (u32 idx = 0; idx < numIndices; ++idx) {
        if (sparseDim[idx] == static_cast<int>(d))
            return idx;
    }
    panic("sparse dimension has no index variable");
}

namespace {

AlgorithmInfo
makeSpMV()
{
    AlgorithmInfo info;
    info.alg = Algorithm::SpMV;
    info.einsum = "C[i] = A[i,k] * B[k]";
    info.numIndices = 2;
    info.indexNames = {"i", "k", "", ""};
    info.sparseDim = {0, 1, -1, -1};
    info.sparseOrder = 2;
    info.isReduction = {false, true, false, false};
    info.denseExtent = {0, 0, 0, 0};
    info.denseOperands = {
        {"B", {1}, false, true, false},
        {"C", {0}, false, true, true},
    };
    return info;
}

AlgorithmInfo
makeSpMM()
{
    AlgorithmInfo info;
    info.alg = Algorithm::SpMM;
    info.einsum = "C[i,j] = A[i,k] * B[k,j]";
    info.numIndices = 3;
    info.indexNames = {"i", "k", "j", ""};
    info.sparseDim = {0, 1, -1, -1};
    info.sparseOrder = 2;
    info.isReduction = {false, true, false, false};
    info.denseExtent = {0, 0, 256, 0};
    // The paper forces both dense matrices to row-major for SpMM.
    info.denseOperands = {
        {"B", {1, 2}, true, true, false},
        {"C", {0, 2}, true, true, true},
    };
    return info;
}

AlgorithmInfo
makeSDDMM()
{
    AlgorithmInfo info;
    info.alg = Algorithm::SDDMM;
    info.einsum = "D[i,j] = A[i,j] * B[i,k] * C[k,j]";
    info.numIndices = 3;
    info.indexNames = {"i", "j", "k", ""};
    info.sparseDim = {0, 1, -1, -1};
    info.sparseOrder = 2;
    // k reduces into D[i,j]; i and j are both safe to parallelize
    // (Section 5.2.1 highlights SDDMM's column parallelism).
    info.isReduction = {false, false, true, false};
    info.denseExtent = {0, 0, 256, 0};
    // Paper fixes B row-major and C column-major.
    info.denseOperands = {
        {"B", {0, 2}, true, true, false},
        {"C", {2, 1}, true, false, false},
        {"D", {0, 1}, true, true, true},
    };
    info.flopsPerNnz = 3.0;
    return info;
}

AlgorithmInfo
makeMTTKRP()
{
    AlgorithmInfo info;
    info.alg = Algorithm::MTTKRP;
    info.einsum = "D[i,j] = A[i,k,l] * B[k,j] * C[l,j]";
    info.numIndices = 4;
    info.indexNames = {"i", "k", "l", "j"};
    info.sparseDim = {0, 1, 2, -1};
    info.sparseOrder = 3;
    info.isReduction = {false, true, true, false};
    info.denseExtent = {0, 0, 0, 16};
    // Paper fixes both dense matrices to row-major for MTTKRP.
    info.denseOperands = {
        {"B", {1, 3}, true, true, false},
        {"C", {2, 3}, true, true, false},
        {"D", {0, 3}, true, true, true},
    };
    info.flopsPerNnz = 3.0;
    return info;
}

AlgorithmInfo
makeFusedSDDMMSpMM()
{
    AlgorithmInfo info;
    info.alg = Algorithm::FusedSDDMMSpMM;
    info.einsum = "E[i,m] = A[i,j] * (B[i,k].C[k,j]) * F[j,m] via w[j]";
    info.numIndices = 4;
    info.indexNames = {"i", "j", "k", "m"};
    info.sparseDim = {0, 1, -1, -1};
    info.sparseOrder = 2;
    // j and k both reduce (j into E[i,m] through the workspace, k into
    // w[j]); i and m are safe to parallelize.
    info.isReduction = {false, true, true, false};
    info.denseExtent = {0, 0, 256, 256};
    // SDDMM's fixed layouts for B/C carry over; F and the output E are
    // row-major so the consumer streams along m.
    info.denseOperands = {
        {"B", {0, 2}, true, true, false},
        {"C", {2, 1}, true, false, false},
        {"F", {1, 3}, true, true, false},
        {"E", {0, 3}, true, true, true},
    };
    info.flopsPerNnz = 2.0;
    // Workspace w[j] lives under the shared i loops; the producer phase
    // covers {i,j,k}, the consumer phase {i,j,m}.
    info.usesWorkspace = true;
    info.workspaceIndex = 1;
    info.scopeIndex = {true, false, false, false};
    info.producerIndex = {true, true, true, false};
    info.consumerIndex = {true, true, false, true};
    return info;
}

} // namespace

const AlgorithmInfo&
algorithmInfo(Algorithm alg)
{
    static const AlgorithmInfo spmv = makeSpMV();
    static const AlgorithmInfo spmm = makeSpMM();
    static const AlgorithmInfo sddmm = makeSDDMM();
    static const AlgorithmInfo mttkrp = makeMTTKRP();
    static const AlgorithmInfo fused = makeFusedSDDMMSpMM();
    switch (alg) {
      case Algorithm::SpMV: return spmv;
      case Algorithm::SpMM: return spmm;
      case Algorithm::SDDMM: return sddmm;
      case Algorithm::MTTKRP: return mttkrp;
      case Algorithm::FusedSDDMMSpMM: return fused;
    }
    panic("unknown algorithm");
}

} // namespace waco
