/**
 * @file
 * Einsum-level descriptions of the kernels the tuner co-optimizes — the
 * four single-expression kernels the paper evaluates plus one fused
 * workspace kernel (the GNN attention pattern):
 *
 *   SpMV           : C[i]    = A[i,k]   * B[k]
 *   SpMM           : C[i,j]  = A[i,k]   * B[k,j]
 *   SDDMM          : D[i,j]  = A[i,j]   * B[i,k] * C[k,j]
 *   MTTKRP         : D[i,j]  = A[i,k,l] * B[k,j] * C[l,j]
 *   FusedSDDMMSpMM : E[i,m]  = sum_j A[i,j] * (sum_k B[i,k]*C[k,j]) * F[j,m]
 *
 * Each algorithm names its index variables, says which of them index the
 * sparse tensor A, which are reduction indices (unsafe/inefficient to
 * parallelize, Section 5.2.1), and the default extents of the dense-only
 * indices used in the paper's evaluation (|j|=256 for SpMM, |k|=256 for
 * SDDMM, |j|=16 for MTTKRP).
 *
 * FusedSDDMMSpMM additionally declares a dense workspace temporary
 * (Kjolstad et al., "Sparse Tensor Algebra Optimizations with Workspaces"):
 * the SDDMM partial w[j] = sum_k B[i,k]*C[k,j] is produced and consumed
 * under a shared i-loop prefix, splitting the nest into a producer phase
 * (accumulate into w over j,k) and a consumer phase (E[i,m] +=
 * A[i,j]*w[j]*F[j,m] over j,m) without materializing the sparse SDDMM
 * result.
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace waco {

/** The co-optimized sparse kernels (four from the paper + fused). */
enum class Algorithm { SpMV, SpMM, SDDMM, MTTKRP, FusedSDDMMSpMM };

/** Printable name ("SpMV", ...). */
std::string algorithmName(Algorithm alg);

/** All algorithms, for sweeps. */
const std::vector<Algorithm>& allAlgorithms();

/**
 * Parse a CLI-style algorithm name ("spmv", "SDDMM", "fused_sddmm_spmm").
 * Matching is case-insensitive and ignores underscores, so both the
 * printable name and the snake_case spelling resolve. Returns false when
 * nothing matches.
 */
bool algorithmFromName(const std::string& name, Algorithm& out);

/** A dense operand of a kernel (e.g. B[k,j] in SpMM). */
struct DenseOperand
{
    std::string name;            ///< "B", "C", "D"...
    std::vector<u32> indices;    ///< Index-variable ids, row index first.
    bool layoutFixed = false;    ///< Paper fixes some layouts (Section 5.1).
    bool rowMajorDefault = true; ///< Layout when fixed / default.
    bool isOutput = false;       ///< Written (no reuse of stale values).
};

/** Static description of one algorithm's iteration space. */
struct AlgorithmInfo
{
    Algorithm alg;
    std::string einsum;                 ///< Human-readable algebra string.
    u32 numIndices = 0;                 ///< Total index variables.
    std::array<std::string, 4> indexNames;
    /** Maps index id -> dimension of the sparse tensor A, or -1. */
    std::array<int, 4> sparseDim = {-1, -1, -1, -1};
    u32 sparseOrder = 0;                ///< Number of sparse dimensions of A.
    /** True for indices that reduce into the output (unsafe to parallelize). */
    std::array<bool, 4> isReduction = {false, false, false, false};
    /** Default extent of each dense-only index (0 for sparse indices). */
    std::array<u32, 4> denseExtent = {0, 0, 0, 0};
    std::vector<DenseOperand> denseOperands;
    /** Multiply-accumulates per sparse nonzero per unit of dense-only work. */
    double flopsPerNnz = 2.0;

    // Workspace/fused-nest metadata (FusedSDDMMSpMM only). A workspace
    // kernel lowers to two expressions sharing the loops of the scope
    // indices: a producer that accumulates into a dense scratch vector
    // indexed by workspaceIndex, and a consumer that reads it back.
    bool usesWorkspace = false;
    u32 workspaceIndex = 0; ///< Index variable the workspace is indexed by.
    /** Indices whose loops must enclose both phases (the workspace scope). */
    std::array<bool, 4> scopeIndex = {false, false, false, false};
    /** Indices traversed by the producer phase (includes scope indices). */
    std::array<bool, 4> producerIndex = {false, false, false, false};
    /** Indices traversed by the consumer phase (includes scope indices). */
    std::array<bool, 4> consumerIndex = {false, false, false, false};

    /** Index id of the sparse tensor's dimension d. */
    u32 indexOfSparseDim(u32 d) const;
};

/** Lookup the static description of @p alg. */
const AlgorithmInfo& algorithmInfo(Algorithm alg);

} // namespace waco
