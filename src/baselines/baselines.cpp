#include "baselines/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "nn/optimizer.hpp"
#include "util/timer.hpp"

namespace waco {

namespace {

/** Measure a schedule and package it as a baseline result. */
BaselineResult
measureAs(const RuntimeOracle& oracle, const SparseMatrix& m,
          const ProblemShape& shape, const SuperSchedule& s)
{
    BaselineResult r;
    r.schedule = s;
    r.measured = oracle.measure(m, shape, s);
    return r;
}

} // namespace

BaselineResult
fixedCsr(const RuntimeOracle& oracle, const SparseMatrix& m, Algorithm alg)
{
    auto shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
    auto r = measureAs(oracle, m, shape, defaultSchedule(shape));
    r.convertSeconds =
        oracle.conversionSeconds(m.nnz(), r.measured.storedValues);
    return r;
}

BaselineResult
fixedCsf(const RuntimeOracle& oracle, const Sparse3Tensor& t)
{
    auto shape = ProblemShape::forTensor3(Algorithm::MTTKRP, t.dimI(),
                                          t.dimK(), t.dimL());
    BaselineResult r;
    r.schedule = defaultSchedule(shape);
    r.measured = oracle.measure(t, shape, r.schedule);
    r.convertSeconds =
        oracle.conversionSeconds(t.nnz(), r.measured.storedValues);
    return r;
}

BaselineResult
MklLike::tune(const SparseMatrix& m, Algorithm alg) const
{
    fatalIf(!supports(alg), "MKL baseline supports SpMV/SpMM only");
    auto shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
    BaselineResult best;
    best.measured.seconds = std::numeric_limits<double>::infinity();
    double tuning = 0.0;
    // Inspector: run schedule-only trials on the fixed CSR format. The
    // trials themselves are the tuning cost (they execute on "hardware").
    for (u32 threads : {24u, 48u}) {
        for (u32 chunk = 1; chunk <= 256; chunk *= 4) {
            auto s = defaultSchedule(shape, chunk);
            s.numThreads = threads;
            auto r = measureAs(oracle_, m, shape, s);
            if (r.measured.valid)
                tuning += r.measured.seconds;
            if (r.measured.valid && r.measured.seconds < best.measured.seconds)
                best = r;
        }
    }
    best.tuningSeconds = tuning;
    best.convertSeconds = 0.0; // format is pinned: no conversion charged
    return best;
}

BaselineResult
MklLike::naive(const SparseMatrix& m, Algorithm alg) const
{
    auto shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
    // Inspector disabled: static-ish partitioning of rows across threads.
    u32 chunk = std::max<u32>(1, m.rows() / 48);
    chunk = std::min<u32>(256, chunk);
    auto s = defaultSchedule(shape, chunk);
    return measureAs(oracle_, m, shape, s);
}

BestFormat::BestFormat(const RuntimeOracle& oracle)
    : oracle_(oracle)
{
}

std::vector<SuperSchedule>
BestFormat::candidates(const ProblemShape& shape) const
{
    // The five most frequent format families (Section 5.1), shared with
    // the dataset anchors: CSR, CSC, BCSR 4x4, UCU-16, UUC.
    return wellKnownFormatSchedules(shape);
}

void
BestFormat::train(Algorithm alg, const std::vector<SparseMatrix>& corpus,
                  u64 seed)
{
    alg_ = alg;
    Rng rng(seed);
    // Label: best candidate per matrix under the oracle.
    std::vector<std::vector<float>> features;
    std::vector<u32> labels;
    u32 n_classes = 0;
    for (const auto& m : corpus) {
        auto shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());
        auto cands = candidates(shape);
        n_classes = static_cast<u32>(cands.size());
        double best = std::numeric_limits<double>::infinity();
        u32 best_c = 0;
        for (u32 c = 0; c < cands.size(); ++c) {
            auto r = oracle_.measure(m, shape, cands[c]);
            if (r.valid && r.seconds < best) {
                best = r.seconds;
                best_c = c;
            }
        }
        features.push_back(computePatternStats(m).toFeatureVector());
        labels.push_back(best_c);
    }
    fatalIf(features.empty(), "BestFormat::train needs a corpus");
    u32 fdim = static_cast<u32>(features.front().size());
    classifier_ = nn::Linear(fdim, n_classes, rng);
    std::vector<nn::Param*> params;
    classifier_.collectParams(params);
    nn::Adam opt(params, 5e-2);
    // Softmax cross-entropy over the whole corpus per epoch.
    nn::Mat x(static_cast<u32>(features.size()), fdim);
    for (u32 r = 0; r < x.rows; ++r)
        std::copy(features[r].begin(), features[r].end(), x.row(r));
    for (u32 epoch = 0; epoch < 200; ++epoch) {
        nn::Mat logits = classifier_.forward(x);
        nn::Mat d(logits.rows, logits.cols);
        for (u32 r = 0; r < logits.rows; ++r) {
            float mx = *std::max_element(logits.row(r),
                                         logits.row(r) + logits.cols);
            float denom = 0.0f;
            for (u32 c = 0; c < logits.cols; ++c)
                denom += std::exp(logits.at(r, c) - mx);
            for (u32 c = 0; c < logits.cols; ++c) {
                float p = std::exp(logits.at(r, c) - mx) / denom;
                d.at(r, c) = (p - (c == labels[r] ? 1.0f : 0.0f)) /
                             static_cast<float>(logits.rows);
            }
        }
        classifier_.backward(d);
        opt.step();
    }
    trained_ = true;
}

u32
BestFormat::predictClass(const SparseMatrix& m) const
{
    fatalIf(!trained_, "BestFormat used before train()");
    auto f = computePatternStats(m).toFeatureVector();
    nn::Mat x(1, static_cast<u32>(f.size()));
    std::copy(f.begin(), f.end(), x.row(0));
    // const_cast is safe: Linear::forward only caches its input.
    nn::Mat logits = const_cast<nn::Linear&>(classifier_).forward(x);
    u32 best = 0;
    for (u32 c = 1; c < logits.cols; ++c) {
        if (logits.at(0, c) > logits.at(0, best))
            best = c;
    }
    return best;
}

BaselineResult
BestFormat::tune(const SparseMatrix& m) const
{
    auto shape = ProblemShape::forMatrix(alg_, m.rows(), m.cols());
    Timer t;
    u32 cls = predictClass(m);
    auto cands = candidates(shape);
    auto r = measureAs(oracle_, m, shape, cands[cls]);
    if (!r.measured.valid) {
        // Classifier picked an infeasible format for this shape: fall back.
        r = measureAs(oracle_, m, shape, cands[0]);
    }
    r.tuningSeconds = t.seconds() +
                      oracle_.conversionSeconds(m.nnz(), m.nnz()) * 0.1;
    r.convertSeconds =
        oracle_.conversionSeconds(m.nnz(), r.measured.storedValues);
    return r;
}

std::vector<SuperSchedule>
BestFormat3d::candidates(const ProblemShape& shape) const
{
    const auto& info = algorithmInfo(Algorithm::MTTKRP);
    u32 i_idx = info.indexOfSparseDim(0);
    u32 k_idx = info.indexOfSparseDim(1);
    u32 l_idx = info.indexOfSparseDim(2);
    std::vector<SuperSchedule> out;

    auto with_order = [&](std::array<u32, 3> dims, bool dense_top) {
        auto s = defaultSchedule(shape);
        s.sparseLevelOrder.clear();
        s.sparseLevelFormats.clear();
        std::vector<u32> lo;
        for (u32 d : dims) {
            u32 idx = d == 0 ? i_idx : (d == 1 ? k_idx : l_idx);
            s.sparseLevelOrder.push_back(outerSlot(idx));
            s.sparseLevelOrder.push_back(innerSlot(idx));
            lo.push_back(outerSlot(idx));
            lo.push_back(innerSlot(idx));
        }
        for (std::size_t l = 0; l < s.sparseLevelOrder.size(); ++l) {
            bool top = l < 2 && dense_top;
            s.sparseLevelFormats.push_back(top ? LevelFormat::Uncompressed
                                               : LevelFormat::Compressed);
        }
        // Dense j innermost, concordant traversal; parallelize the
        // outermost non-reduction loop if possible, else i.
        for (u32 idx = 0; idx < info.numIndices; ++idx) {
            if (info.sparseDim[idx] < 0) {
                lo.push_back(outerSlot(idx));
                lo.push_back(innerSlot(idx));
            }
        }
        s.loopOrder = lo;
        s.parallelSlot = outerSlot(i_idx);
        return s;
    };

    out.push_back(with_order({0, 1, 2}, false)); // CSF i->k->l
    out.push_back(with_order({0, 2, 1}, false)); // CSF i->l->k
    out.push_back(with_order({1, 0, 2}, false)); // CSF k->i->l (discord-ish)
    out.push_back(with_order({0, 1, 2}, true));  // dense-top UCC hybrid
    out.push_back(with_order({0, 2, 1}, true));  // dense-top UCC hybrid
    return out;
}

std::vector<float>
BestFormat3d::features(const Sparse3Tensor& t)
{
    std::unordered_set<u64> ik, il, kl;
    for (u64 n = 0; n < t.nnz(); ++n) {
        u64 i = t.iIndices()[n], k = t.kIndices()[n], l = t.lIndices()[n];
        ik.insert(i << 32 | k);
        il.insert(i << 32 | l);
        kl.insert(k << 32 | l);
    }
    double nnz = static_cast<double>(std::max<u64>(1, t.nnz()));
    std::vector<float> f;
    f.push_back(std::log1p(static_cast<float>(t.dimI())));
    f.push_back(std::log1p(static_cast<float>(t.dimK())));
    f.push_back(std::log1p(static_cast<float>(t.dimL())));
    f.push_back(std::log1p(static_cast<float>(t.nnz())));
    f.push_back(static_cast<float>(ik.size() / nnz)); // l-fiber density
    f.push_back(static_cast<float>(il.size() / nnz));
    f.push_back(static_cast<float>(kl.size() / nnz));
    return f;
}

void
BestFormat3d::train(const std::vector<Sparse3Tensor>& corpus, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> xs;
    std::vector<u32> labels;
    u32 n_classes = 0;
    for (const auto& t : corpus) {
        auto shape = ProblemShape::forTensor3(Algorithm::MTTKRP, t.dimI(),
                                              t.dimK(), t.dimL());
        auto cands = candidates(shape);
        n_classes = static_cast<u32>(cands.size());
        double best = std::numeric_limits<double>::infinity();
        u32 best_c = 0;
        for (u32 c = 0; c < cands.size(); ++c) {
            auto r = oracle_.measure(t, shape, cands[c]);
            if (r.valid && r.seconds < best) {
                best = r.seconds;
                best_c = c;
            }
        }
        xs.push_back(features(t));
        labels.push_back(best_c);
    }
    fatalIf(xs.empty(), "BestFormat3d::train needs a corpus");
    u32 fdim = static_cast<u32>(xs.front().size());
    classifier_ = nn::Linear(fdim, n_classes, rng);
    std::vector<nn::Param*> params;
    classifier_.collectParams(params);
    nn::Adam opt(params, 5e-2);
    nn::Mat x(static_cast<u32>(xs.size()), fdim);
    for (u32 r = 0; r < x.rows; ++r)
        std::copy(xs[r].begin(), xs[r].end(), x.row(r));
    for (u32 epoch = 0; epoch < 200; ++epoch) {
        nn::Mat logits = classifier_.forward(x);
        nn::Mat d(logits.rows, logits.cols);
        for (u32 r = 0; r < logits.rows; ++r) {
            float mx = *std::max_element(logits.row(r),
                                         logits.row(r) + logits.cols);
            float denom = 0.0f;
            for (u32 c = 0; c < logits.cols; ++c)
                denom += std::exp(logits.at(r, c) - mx);
            for (u32 c = 0; c < logits.cols; ++c) {
                float p = std::exp(logits.at(r, c) - mx) / denom;
                d.at(r, c) = (p - (c == labels[r] ? 1.0f : 0.0f)) /
                             static_cast<float>(logits.rows);
            }
        }
        classifier_.backward(d);
        opt.step();
    }
    trained_ = true;
}

BaselineResult
BestFormat3d::tune(const Sparse3Tensor& t) const
{
    fatalIf(!trained_, "BestFormat3d used before train()");
    auto shape = ProblemShape::forTensor3(Algorithm::MTTKRP, t.dimI(),
                                          t.dimK(), t.dimL());
    Timer timer;
    auto f = features(t);
    nn::Mat x(1, static_cast<u32>(f.size()));
    std::copy(f.begin(), f.end(), x.row(0));
    nn::Mat logits = const_cast<nn::Linear&>(classifier_).forward(x);
    u32 best = 0;
    for (u32 c = 1; c < logits.cols; ++c) {
        if (logits.at(0, c) > logits.at(0, best))
            best = c;
    }
    auto cands = candidates(shape);
    BaselineResult r;
    r.schedule = cands[best];
    r.measured = oracle_.measure(t, shape, r.schedule);
    if (!r.measured.valid) {
        r.schedule = cands[0];
        r.measured = oracle_.measure(t, shape, r.schedule);
    }
    r.tuningSeconds = timer.seconds();
    r.convertSeconds =
        oracle_.conversionSeconds(t.nnz(), r.measured.storedValues);
    return r;
}

BaselineResult
Aspt::tune(const SparseMatrix& m, Algorithm alg) const
{
    fatalIf(!supports(alg), "ASpT baseline supports SpMM/SDDMM only");
    auto shape = ProblemShape::forMatrix(alg, m.rows(), m.cols());

    // --- Inspector: reorder rows by column-block signature so similar rows
    // land in the same panel, then split columns into dense/sparse parts.
    constexpr u32 kPanel = 64;    // rows per tile panel
    constexpr double kDenseFrac = 0.4;

    std::vector<u32> order(m.rows());
    for (u32 r = 0; r < m.rows(); ++r)
        order[r] = r;
    // Signature: the first few 256-wide column blocks a row touches.
    auto row_counts = m.rowNnz();
    std::vector<u64> signature(m.rows(), 0);
    for (u64 n = 0; n < m.nnz(); ++n) {
        u32 blk = std::min<u32>(63, m.colIndices()[n] / 256);
        signature[m.rowIndices()[n]] |= 1ull << blk;
    }
    std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
        if (signature[a] != signature[b])
            return signature[a] > signature[b];
        return row_counts[a] > row_counts[b];
    });
    std::vector<u32> new_row(m.rows());
    for (u32 p = 0; p < m.rows(); ++p)
        new_row[order[p]] = p;

    // Panel-wise dense-column detection.
    std::vector<Triplet> dense_part, sparse_part;
    std::map<std::pair<u32, u32>, u32> panel_col_count;
    for (u64 n = 0; n < m.nnz(); ++n) {
        u32 panel = new_row[m.rowIndices()[n]] / kPanel;
        ++panel_col_count[{panel, m.colIndices()[n]}];
    }
    for (u64 n = 0; n < m.nnz(); ++n) {
        u32 r = new_row[m.rowIndices()[n]];
        u32 panel = r / kPanel;
        Triplet t{r, m.colIndices()[n], m.values()[n]};
        bool dense = panel_col_count[{panel, t.col}] >=
                     static_cast<u32>(kDenseFrac * kPanel);
        (dense ? dense_part : sparse_part).push_back(t);
    }

    BaselineResult out;
    double total = 0.0;
    u64 stored = 0;
    // --- Executor: dense tiles run as a blocked (UCUU) kernel with SIMD;
    // the remainder runs as plain CSR. Two phases, summed.
    if (!dense_part.empty()) {
        SparseMatrix md(m.rows(), m.cols(), dense_part);
        auto s = defaultSchedule(shape);
        const auto& info = algorithmInfo(alg);
        u32 row_idx = info.indexOfSparseDim(0);
        u32 col_idx = info.indexOfSparseDim(1);
        s.splits[row_idx] = kPanel;
        s.splits[col_idx] = 16;
        s.sparseLevelOrder = {outerSlot(row_idx), outerSlot(col_idx),
                              innerSlot(row_idx), innerSlot(col_idx)};
        s.sparseLevelFormats = {LevelFormat::Uncompressed,
                                LevelFormat::Compressed,
                                LevelFormat::Uncompressed,
                                LevelFormat::Uncompressed};
        std::vector<u32> lo = {outerSlot(row_idx), outerSlot(col_idx),
                               innerSlot(row_idx), innerSlot(col_idx)};
        for (u32 idx = 0; idx < info.numIndices; ++idx) {
            if (idx != row_idx && idx != col_idx) {
                lo.push_back(outerSlot(idx));
                lo.push_back(innerSlot(idx));
            }
        }
        s.loopOrder = lo;
        auto r = oracle_.measure(md, shape, s);
        if (r.valid) {
            total += r.seconds;
            stored += r.storedValues;
            out.schedule = s;
        }
    }
    if (!sparse_part.empty()) {
        SparseMatrix ms(m.rows(), m.cols(), sparse_part);
        auto r = oracle_.measure(ms, shape, defaultSchedule(shape));
        if (r.valid) {
            total += r.seconds;
            stored += r.storedValues;
            if (dense_part.empty())
                out.schedule = defaultSchedule(shape);
        }
    }
    out.measured.valid = true;
    out.measured.seconds = total;
    out.measured.storedValues = stored;
    // Inspection (reorder + tiling) is roughly two packs over the data.
    out.tuningSeconds = oracle_.conversionSeconds(m.nnz(), m.nnz()) * 2.0;
    out.convertSeconds = oracle_.conversionSeconds(m.nnz(), stored);
    return out;
}

} // namespace waco
