/**
 * @file
 * The four baselines of Section 5.1, reimplemented against the same runtime
 * oracle so comparisons are apples-to-apples:
 *
 *  - FixedCsr  — TACO's default: CSR (CSF for MTTKRP), concordant loops,
 *                chunk 128 for SpMV / 32 otherwise. No tuning.
 *  - MklLike   — inspector-executor in MKL's style [34]: the format is
 *                pinned to CSR and only the schedule (chunk, threads) is
 *                tuned by running trials; supports SpMV and SpMM only.
 *  - BestFormat— format-only selection among a handful of candidate
 *                formats via a learned classifier over pattern statistics
 *                [42, 48]; the schedule stays concordant-default.
 *  - ASpT      — adaptive sparse tiling [19]: reorder rows by column-block
 *                similarity, split each row panel into dense tiles and a
 *                sparse remainder; SpMM and SDDMM only.
 */
#pragma once

#include <vector>

#include "ir/schedule.hpp"
#include "nn/layers.hpp"
#include "perfmodel/cost_model.hpp"
#include "tensor/pattern_stats.hpp"

namespace waco {

/** Common result for a baseline applied to one input. */
struct BaselineResult
{
    SuperSchedule schedule;
    Measurement measured;
    double tuningSeconds = 0.0;  ///< Inspector/classifier overhead.
    double convertSeconds = 0.0; ///< Format conversion (0 when reusing CSR).
};

/** TACO default (Fixed CSR / Fixed CSF). */
BaselineResult fixedCsr(const RuntimeOracle& oracle, const SparseMatrix& m,
                        Algorithm alg);
BaselineResult fixedCsf(const RuntimeOracle& oracle, const Sparse3Tensor& t);

/** MKL-style inspector-executor: schedule-only tuning on CSR. */
class MklLike
{
  public:
    explicit MklLike(const RuntimeOracle& oracle) : oracle_(oracle) {}

    /** SpMV / SpMM only, as in the paper. */
    bool supports(Algorithm alg) const
    {
        return alg == Algorithm::SpMV || alg == Algorithm::SpMM;
    }

    BaselineResult tune(const SparseMatrix& m, Algorithm alg) const;

    /** Naive MKL (inspector disabled): plain CSR defaults. The x-axis unit
     *  of Figure 17 / Table 8. */
    BaselineResult naive(const SparseMatrix& m, Algorithm alg) const;

  private:
    const RuntimeOracle& oracle_;
};

/** Format-only auto-tuner with a learned classifier. */
class BestFormat
{
  public:
    explicit BestFormat(const RuntimeOracle& oracle);

    /** The five candidate format schedules for @p alg on a given shape
     *  (the most frequent winners in WACO-style searches: CSR, CSC,
     *  BCSR 4x4, dense-block UCU-16, sparse-block UUC). */
    std::vector<SuperSchedule> candidates(const ProblemShape& shape) const;

    /** Fit the classifier: label each corpus matrix with its best
     *  candidate under the oracle, then train multinomial logistic
     *  regression on the pattern statistics. */
    void train(Algorithm alg, const std::vector<SparseMatrix>& corpus,
               u64 seed = 5);

    /** Pick a format for a new matrix and measure it. */
    BaselineResult tune(const SparseMatrix& m) const;

    /** Classifier-chosen candidate index (for tests). */
    u32 predictClass(const SparseMatrix& m) const;

  private:
    const RuntimeOracle& oracle_;
    Algorithm alg_ = Algorithm::SpMM;
    nn::Linear classifier_;
    bool trained_ = false;
};

/** Format-only selection for 3D tensors (SpTFS-style [42]): choose among
 *  CSF mode orders / hybrid level formats with a classifier over per-mode
 *  fiber statistics. */
class BestFormat3d
{
  public:
    explicit BestFormat3d(const RuntimeOracle& oracle) : oracle_(oracle) {}

    /** Candidate format schedules: CSF in three mode orders + two hybrids. */
    std::vector<SuperSchedule> candidates(const ProblemShape& shape) const;

    /** Per-mode fiber statistics used as classifier features. */
    static std::vector<float> features(const Sparse3Tensor& t);

    void train(const std::vector<Sparse3Tensor>& corpus, u64 seed = 6);

    BaselineResult tune(const Sparse3Tensor& t) const;

  private:
    const RuntimeOracle& oracle_;
    nn::Linear classifier_;
    bool trained_ = false;
};

/** ASpT-style adaptive sparse tiling (SpMM / SDDMM). */
class Aspt
{
  public:
    explicit Aspt(const RuntimeOracle& oracle) : oracle_(oracle) {}

    bool supports(Algorithm alg) const
    {
        return alg == Algorithm::SpMM || alg == Algorithm::SDDMM;
    }

    BaselineResult tune(const SparseMatrix& m, Algorithm alg) const;

  private:
    const RuntimeOracle& oracle_;
};

} // namespace waco
