/**
 * @file
 * Shared diagnostics engine of the static-analysis subsystem.
 *
 * Every verifier pass (ScheduleVerifier, LoopNestVerifier, the race-hazard
 * analysis) reports findings as Diagnostics collected into a DiagnosticBag
 * instead of aborting on the first problem — a compiler-style design: one
 * run surfaces *all* defects of a candidate, callers decide whether errors
 * are fatal, and tools (tune_cli --verify-only, the fuzz differential
 * oracle) consume the machine-readable form.
 *
 * Diagnostic codes are STABLE: a code never changes meaning and is never
 * renumbered, only appended. The namespaces are
 *
 *   WACO-S0xx  SuperSchedule structural / capability errors
 *   WACO-S1xx  SuperSchedule warnings (legal but suspicious)
 *   WACO-S2xx  performance notes (legal but slow, Section 3.1 costs)
 *   WACO-S3xx  asymptotic-dominance perf notes (two-stage search, §14)
 *   WACO-L0xx  LoopNest IR structural invariant violations
 *   WACO-R0xx  parallel-hazard (race / vectorization) findings
 *
 * JSON export follows the util/metrics flat style so downstream tooling can
 * parse both with one reader.
 */
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace waco::analysis {

/** How bad a finding is. Only Error makes a candidate illegal. */
enum class Severity : unsigned char
{
    Error,    ///< Candidate is malformed / would mis-execute; reject it.
    Warning,  ///< Legal but suspicious (e.g. out-of-space parameter).
    PerfNote, ///< Legal but predictably slow (discordance, no SIMD).
};

/** Stable diagnostic codes (see file header for the namespace scheme). */
enum class DiagCode : unsigned short
{
    // --- WACO-S0xx: SuperSchedule errors -------------------------------
    S001_LoopOrderSize = 1,      ///< loopOrder does not cover all slots.
    S002_SlotOutOfRange = 2,     ///< loopOrder slot id out of range.
    S003_DuplicateSlot = 3,      ///< loopOrder repeats a slot.
    S004_LevelOrderSize = 4,     ///< sparseLevelOrder wrong length.
    S005_LevelOrderDenseIndex = 5, ///< level order names a dense-only index.
    S006_LevelOrderDuplicate = 6,  ///< level order repeats a slot.
    S007_LevelFormatMisaligned = 7, ///< formats not aligned with level order.
    S008_ParallelSlotRange = 8,  ///< parallel slot out of range.
    S009_ParallelReduction = 9,  ///< parallelized reduction index.
    S010_SplitZero = 10,         ///< split size of 0.
    S011_ShapeExtentZero = 11,   ///< problem shape has a zero extent.
    S012_DenseLayoutMisaligned = 12, ///< layout flags wrong length.
    S013_CompressedRandomInsert = 13, ///< random insert into a C level.
    S014_AlgorithmMismatch = 14, ///< schedule and shape disagree on alg.
    S015_WorkspaceScopeOrder = 15, ///< fused: scope loops not outermost.

    // --- WACO-S1xx: SuperSchedule warnings -----------------------------
    S101_SplitNotPow2 = 101,     ///< split outside the paper's pow2 space.
    S102_SplitExceedsExtent = 102, ///< split larger than the index extent.
    S103_ParallelDegenerate = 103, ///< parallel slot is an elided loop.

    // --- WACO-S2xx: performance notes ----------------------------------
    S201_DiscordantBinarySearch = 201, ///< C level resolved by search.
    S202_InnerLoopNotVectorizable = 202, ///< innermost loop is compressed.
    S203_StridedVectorAccess = 203, ///< vector tail strides an operand.

    // --- WACO-L0xx: LoopNest structural invariants ---------------------
    L001_SlotBoundTwice = 301,   ///< two loops bind the same slot.
    L002_ActiveSlotUnbound = 302, ///< an active slot has no loop.
    L003_LevelUnresolved = 303,  ///< storage level never traversed/located.
    L004_SparseParentNotDominated = 304, ///< level touched before parent.
    L005_LocateSlotUnbound = 305, ///< locate consumes an unbound slot.
    L006_SplitReconstruction = 306, ///< loop extents break coord rebuild.
    L007_LevelResolvedTwice = 307, ///< level traversed/located twice.
    L008_LocateKindMismatch = 308, ///< binarySearch flag contradicts format.
    L009_VectorLeafMismatch = 309, ///< leaf metadata contradicts the nest.
    L010_LevelSlotMismatch = 310, ///< node/level slot bookkeeping broken.
    L011_WorkspaceScopeInvalid = 311, ///< workspace scope/extent broken.
    L012_WorkspaceInitBeforeUse = 312, ///< producer/consumer phase missing.

    // --- WACO-R0xx: parallel-hazard analysis ---------------------------
    R001_ParallelReductionRace = 401, ///< parallel loop carries a reduction.
    R002_NestedParallelIgnored = 402, ///< parallel annotation not outermost.
    R003_ParallelChunkZero = 403, ///< parallel loop without a chunk size.
    R004_ParallelWorkspaceWrite = 404, ///< producer accumulates w in parallel.
    R005_ParallelWorkspaceConsume = 405, ///< consumer reads shared w across
                                         ///< threads without a phase barrier.

    // --- WACO-S3xx: asymptotic-dominance perf notes --------------------
    // (encoded at 500+ so the S0xx/S1xx/S2xx values stay untouched)
    S301_AsymptoticallyDominated = 501, ///< default schedule dominates this.
    S302_AsymIterationBound = 502, ///< iteration bound above the default's.
    S303_AsymTrafficBound = 503,   ///< operand traffic above the default's.
    S304_AsymSearchBound = 504,    ///< locate/search bound above default's.
};

/** Stable printable code, e.g. "WACO-S009". */
std::string diagCodeName(DiagCode code);

/** The severity class a code always reports at. */
Severity diagSeverity(DiagCode code);

/** Printable severity ("error" / "warning" / "perf-note"). */
std::string severityName(Severity sev);

/** One finding of a verifier pass. */
struct Diagnostic
{
    DiagCode code;
    Severity severity;
    std::string message;
    /** Offending index variable (algorithm index id), or -1. */
    int index = -1;
    /** Offending storage level / loop depth, or -1. */
    int level = -1;
};

/** An ordered collection of findings from one or more passes. */
class DiagnosticBag
{
  public:
    /** Append a finding; severity comes from the code's fixed class. */
    void add(DiagCode code, std::string message, int index = -1,
             int level = -1);

    /** Append every finding of @p other (pass pipelining). */
    void merge(const DiagnosticBag& other);

    const std::vector<Diagnostic>& all() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }

    bool hasErrors() const { return errors_ > 0; }
    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    std::size_t noteCount() const { return notes_; }

    /** True when any finding carries @p code. */
    bool has(DiagCode code) const;

    /** First finding with severity Error, or nullptr. */
    const Diagnostic* firstError() const;

    /** Human-readable one-line-per-finding dump. */
    std::string format() const;

    /** JSON export (util/metrics style):
     *  {"errors":N,"warnings":N,"notes":N,"diagnostics":[...]} */
    std::string exportJson() const;

    /** Throw FatalError listing every error when hasErrors(). @p context
     *  prefixes the message ("validateSchedule", "lower", ...). */
    void throwIfErrors(const std::string& context) const;

  private:
    std::vector<Diagnostic> diags_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t notes_ = 0;
};

/** Write @p bag.exportJson() to @p path (FatalError on I/O failure). */
void writeDiagnosticsJson(const DiagnosticBag& bag, const std::string& path);

} // namespace waco::analysis
