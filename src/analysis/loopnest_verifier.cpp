#include "analysis/loopnest_verifier.hpp"

#include "analysis/schedule_verifier.hpp"

namespace waco::analysis {

namespace {

std::string
str(u64 v)
{
    return std::to_string(v);
}

/** Depth of the loop binding @p slot, or -1. */
int
depthOf(const LoopNest& nest, u32 slot)
{
    const auto& loops = nest.loops();
    for (std::size_t d = 0; d < loops.size(); ++d) {
        if (loops[d].slot == slot)
            return static_cast<int>(d);
    }
    return -1;
}

void
checkBindings(const LoopNest& nest, DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(nest.alg());
    const u32 num_slots = 2 * info.numIndices;
    std::vector<u32> bound(num_slots, 0);
    for (const LoopNode& n : nest.loops()) {
        if (n.slot >= num_slots) {
            bag.add(DiagCode::L010_LevelSlotMismatch,
                    "loop binds slot " + str(n.slot) + " out of range [0, " +
                        str(num_slots) + ")");
            continue;
        }
        if (++bound[n.slot] == 2) {
            bag.add(DiagCode::L001_SlotBoundTwice,
                    "slot " + str(n.slot) + " ('" +
                        nest.slotVarName(n.slot) + "') is bound by two loops",
                    static_cast<int>(slotIndex(n.slot)));
        }
    }
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        // The outer half always executes; the inner half must execute
        // whenever the (extent-clamped) split keeps it non-degenerate.
        if (!bound[outerSlot(idx)]) {
            bag.add(DiagCode::L002_ActiveSlotUnbound,
                    "outer slot of index '" + info.indexNames[idx] +
                        "' has no loop",
                    static_cast<int>(idx));
        }
        if (nest.splitOf(idx) > 1 && !bound[innerSlot(idx)]) {
            bag.add(DiagCode::L002_ActiveSlotUnbound,
                    "index '" + info.indexNames[idx] + "' is split " +
                        str(nest.splitOf(idx)) +
                        "-way but its inner slot has no loop",
                    static_cast<int>(idx));
        }
    }
}

void
checkLevelResolution(const LoopNest& nest, DiagnosticBag& bag)
{
    const u32 num_levels = nest.numLevels();
    const auto& loops = nest.loops();

    // Walk outermost->innermost recording the order levels resolve in:
    // a Sparse node resolves its own level, then fires its locates.
    std::vector<int> resolved_at(num_levels, -1);
    std::vector<u32> resolution_order;
    for (std::size_t d = 0; d < loops.size(); ++d) {
        const LoopNode& n = loops[d];
        auto resolve = [&](u32 level, bool concordant) {
            if (level >= num_levels) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "loop at depth " + str(d) + " references level " +
                            str(level) + " of a " + str(num_levels) +
                            "-level format",
                        -1, static_cast<int>(level));
                return;
            }
            if (resolved_at[level] >= 0) {
                bag.add(DiagCode::L007_LevelResolvedTwice,
                        "storage level " + str(level) +
                            " is resolved more than once",
                        -1, static_cast<int>(level));
                return;
            }
            resolved_at[level] = static_cast<int>(d);
            resolution_order.push_back(level);
            if (nest.levelConcordant(level) != concordant) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "level " + str(level) + " is marked " +
                            (nest.levelConcordant(level) ? "concordant"
                                                         : "discordant") +
                            " but is resolved by a " +
                            (concordant ? "sparse traversal" : "locate step"),
                        -1, static_cast<int>(level));
            }
        };
        if (n.kind == LoopKind::Sparse) {
            if (n.level < 0) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "sparse loop at depth " + str(d) +
                            " carries no storage level");
            } else {
                if (static_cast<u32>(n.level) < num_levels &&
                    nest.levelSlot(n.level) != n.slot) {
                    bag.add(DiagCode::L010_LevelSlotMismatch,
                            "sparse loop at depth " + str(d) +
                                " binds slot " + str(n.slot) +
                                " but its level " + str(n.level) +
                                " stores slot " +
                                str(nest.levelSlot(n.level)),
                            static_cast<int>(slotIndex(n.slot)), n.level);
                }
                resolve(static_cast<u32>(n.level), /*concordant=*/true);
            }
        } else if (n.level >= 0) {
            // Discordant Dense loop over a level slot: the level itself
            // must be resolved by a locate somewhere (checked via L003),
            // but the bookkeeping must agree on the slot.
            if (static_cast<u32>(n.level) < num_levels &&
                nest.levelSlot(n.level) != n.slot) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "dense loop at depth " + str(d) + " binds slot " +
                            str(n.slot) + " but claims level " +
                            str(n.level) + " which stores slot " +
                            str(nest.levelSlot(n.level)),
                        static_cast<int>(slotIndex(n.slot)), n.level);
            }
        }
        for (const LocateStep& loc : n.locates) {
            if (n.kind != LoopKind::Sparse) {
                bag.add(DiagCode::L004_SparseParentNotDominated,
                        "locate step at depth " + str(d) +
                            " hangs off a dense loop; locates resolve "
                            "relative to a traversed sparse level",
                        -1, static_cast<int>(loc.level));
            }
            if (loc.level < num_levels &&
                nest.levelSlot(loc.level) != loc.slot) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "locate at depth " + str(d) + " resolves level " +
                            str(loc.level) + " with slot " + str(loc.slot) +
                            " but that level stores slot " +
                            str(nest.levelSlot(loc.level)),
                        static_cast<int>(slotIndex(loc.slot)),
                        static_cast<int>(loc.level));
            }
            int bound_depth = depthOf(nest, loc.slot);
            if (bound_depth < 0 || bound_depth > static_cast<int>(d)) {
                bag.add(DiagCode::L005_LocateSlotUnbound,
                        "locate at depth " + str(d) + " consumes slot " +
                            str(loc.slot) +
                            " whose coordinate is not yet bound",
                        static_cast<int>(slotIndex(loc.slot)),
                        static_cast<int>(loc.level));
            }
            if (loc.level < num_levels) {
                bool want_search =
                    !levelSupportsDirectLocate(nest.levelFormat(loc.level));
                if (loc.binarySearch != want_search) {
                    bag.add(DiagCode::L008_LocateKindMismatch,
                            "locate into level " + str(loc.level) +
                                (want_search
                                     ? " must binary-search (Compressed)"
                                     : " must use a direct offset "
                                       "(Uncompressed)"),
                            static_cast<int>(slotIndex(loc.slot)),
                            static_cast<int>(loc.level));
                }
                resolve(loc.level, /*concordant=*/false);
            }
        }
    }

    for (u32 l = 0; l < num_levels; ++l) {
        if (resolved_at[l] < 0) {
            bag.add(DiagCode::L003_LevelUnresolved,
                    "storage level " + str(l) + " ('" +
                        nest.slotVarName(nest.levelSlot(l)) +
                        "') is never traversed or located",
                    static_cast<int>(slotIndex(nest.levelSlot(l))),
                    static_cast<int>(l));
        }
    }
    // Position-parent domination: levels must resolve in level order — a
    // child level's position space is defined by its parent's position.
    for (std::size_t i = 1; i < resolution_order.size(); ++i) {
        if (resolution_order[i] < resolution_order[i - 1]) {
            bag.add(DiagCode::L004_SparseParentNotDominated,
                    "storage level " + str(resolution_order[i]) +
                        " resolves before its parent level " +
                        str(resolution_order[i - 1]),
                    -1, static_cast<int>(resolution_order[i]));
        }
    }
}

void
checkExtents(const LoopNest& nest, DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(nest.alg());
    for (std::size_t d = 0; d < nest.loops().size(); ++d) {
        const LoopNode& n = nest.loops()[d];
        u32 idx = slotIndex(n.slot);
        if (idx >= info.numIndices)
            continue; // already an L010 above
        u32 split = nest.splitOf(idx);
        u32 extent = nest.shape().indexExtent[idx];
        u32 want = slotIsInner(n.slot) ? split : ceilDiv(extent, split);
        if (n.extent != want) {
            bag.add(DiagCode::L006_SplitReconstruction,
                    "loop at depth " + str(d) + " over '" +
                        nest.slotVarName(n.slot) + "' has extent " +
                        str(n.extent) + "; reconstructing coordinates of '" +
                        info.indexNames[idx] + "' (extent " + str(extent) +
                        ", split " + str(split) + ") requires " + str(want),
                    static_cast<int>(idx));
        }
    }
}

void
checkLeaf(const LoopNest& nest, DiagnosticBag& bag)
{
    const ComputeLeaf& leaf = nest.leaf();
    if (leaf.alg != nest.alg()) {
        bag.add(DiagCode::L009_VectorLeafMismatch,
                "compute leaf is for " + algorithmName(leaf.alg) +
                    " inside a " + algorithmName(nest.alg()) + " nest");
        return;
    }
    if (leaf.vectorIndex < 0)
        return; // no fused tail claimed: always sound, possibly slower
    const auto& info = algorithmInfo(nest.alg());
    if (static_cast<u32>(leaf.vectorIndex) >= info.numIndices) {
        bag.add(DiagCode::L009_VectorLeafMismatch,
                "vector index " + str(leaf.vectorIndex) + " out of range");
        return;
    }
    bool ok = !nest.loops().empty();
    if (ok) {
        const LoopNode& last = nest.loops().back();
        ok = last.kind == LoopKind::Dense && last.level < 0 &&
             slotIndex(last.slot) == static_cast<u32>(leaf.vectorIndex) &&
             nest.splitOf(slotIndex(last.slot)) == 1;
    }
    if (!ok) {
        bag.add(DiagCode::L009_VectorLeafMismatch,
                "leaf claims a vector tail over '" +
                    info.indexNames[leaf.vectorIndex] +
                    "' but the innermost loop is not that index's full "
                    "unsplit dense loop",
                leaf.vectorIndex);
    }
}

/**
 * Parallel-hazard pass. The interpreter chunks the outermost loop iff its
 * index is non-reducing (it ignores the annotations entirely), so these
 * hazards describe the emitted OpenMP C, where the annotation becomes a
 * real `#pragma omp parallel for`.
 */
void
checkParallelHazards(const LoopNest& nest, DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(nest.alg());
    for (std::size_t d = 0; d < nest.loops().size(); ++d) {
        const LoopNode& n = nest.loops()[d];
        if (!n.parallel)
            continue;
        u32 idx = slotIndex(n.slot);
        if (idx < info.numIndices && info.isReduction[idx]) {
            bag.add(DiagCode::R001_ParallelReductionRace,
                    "parallel loop over reduction index '" +
                        info.indexNames[idx] +
                        "': concurrent += into the output without atomics "
                        "or privatization",
                    static_cast<int>(idx));
        } else if (d > 0) {
            // Any parallel loop under a serial ancestor: every inner index
            // reached from distinct outer iterations writes disjoint or
            // reduction slots; the interpreter ignores the annotation and
            // the emitted C would open a nested parallel region per outer
            // iteration.
            bag.add(DiagCode::R002_NestedParallelIgnored,
                    "parallel annotation at depth " + str(d) +
                        " is not outermost; the runtime parallelizes only "
                        "the outermost loop",
                    static_cast<int>(idx));
        }
        if (n.chunk == 0) {
            bag.add(DiagCode::R003_ParallelChunkZero,
                    "parallel loop over '" + nest.slotVarName(n.slot) +
                        "' has no chunk size (schedule(dynamic, 0))",
                    static_cast<int>(idx));
        }
    }
}

} // namespace

DiagnosticBag
verifyLoopNest(const LoopNest& nest)
{
    DiagnosticBag bag;
    checkBindings(nest, bag);
    checkLevelResolution(nest, bag);
    checkExtents(nest, bag);
    checkLeaf(nest, bag);
    checkParallelHazards(nest, bag);
    return bag;
}

DiagnosticBag
verifyLowered(const SuperSchedule& s, const ProblemShape& shape)
{
    DiagnosticBag bag = verifySchedule(s, shape);
    if (bag.hasErrors())
        return bag;
    bag.merge(verifyLoopNest(lower(s, shape)));
    return bag;
}

} // namespace waco::analysis
