#include "analysis/loopnest_verifier.hpp"

#include <algorithm>

#include "analysis/schedule_verifier.hpp"

namespace waco::analysis {

namespace {

std::string
str(u64 v)
{
    return std::to_string(v);
}

/** Depth of the loop binding @p slot in @p loops, or -1. */
int
depthOf(const std::vector<LoopNode>& loops, u32 slot)
{
    for (std::size_t d = 0; d < loops.size(); ++d) {
        if (loops[d].slot == slot)
            return static_cast<int>(d);
    }
    return -1;
}

/**
 * Slot-binding invariants over one phase walk. @p relevant masks the
 * index variables this walk must bind: all of them for a
 * single-expression nest, the phase's indices for a fused one (the
 * producer never binds consumer-only indices and vice versa).
 */
void
checkBindings(const LoopNest& nest, const std::vector<LoopNode>& loops,
              const std::array<bool, 4>& relevant, DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(nest.alg());
    const u32 num_slots = 2 * info.numIndices;
    std::vector<u32> bound(num_slots, 0);
    for (const LoopNode& n : loops) {
        if (n.slot >= num_slots) {
            bag.add(DiagCode::L010_LevelSlotMismatch,
                    "loop binds slot " + str(n.slot) + " out of range [0, " +
                        str(num_slots) + ")");
            continue;
        }
        if (++bound[n.slot] == 2) {
            bag.add(DiagCode::L001_SlotBoundTwice,
                    "slot " + str(n.slot) + " ('" +
                        nest.slotVarName(n.slot) + "') is bound by two loops",
                    static_cast<int>(slotIndex(n.slot)));
        }
    }
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        if (!relevant[idx])
            continue;
        // The outer half always executes; the inner half must execute
        // whenever the (extent-clamped) split keeps it non-degenerate.
        if (!bound[outerSlot(idx)]) {
            bag.add(DiagCode::L002_ActiveSlotUnbound,
                    "outer slot of index '" + info.indexNames[idx] +
                        "' has no loop",
                    static_cast<int>(idx));
        }
        if (nest.splitOf(idx) > 1 && !bound[innerSlot(idx)]) {
            bag.add(DiagCode::L002_ActiveSlotUnbound,
                    "index '" + info.indexNames[idx] + "' is split " +
                        str(nest.splitOf(idx)) +
                        "-way but its inner slot has no loop",
                    static_cast<int>(idx));
        }
    }
}

void
checkLevelResolution(const LoopNest& nest, const std::vector<LoopNode>& loops,
                     DiagnosticBag& bag)
{
    const u32 num_levels = nest.numLevels();

    // Walk outermost->innermost recording the order levels resolve in:
    // a Sparse node resolves its own level, then fires its locates.
    std::vector<int> resolved_at(num_levels, -1);
    std::vector<u32> resolution_order;
    for (std::size_t d = 0; d < loops.size(); ++d) {
        const LoopNode& n = loops[d];
        auto resolve = [&](u32 level, bool concordant) {
            if (level >= num_levels) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "loop at depth " + str(d) + " references level " +
                            str(level) + " of a " + str(num_levels) +
                            "-level format",
                        -1, static_cast<int>(level));
                return;
            }
            if (resolved_at[level] >= 0) {
                bag.add(DiagCode::L007_LevelResolvedTwice,
                        "storage level " + str(level) +
                            " is resolved more than once",
                        -1, static_cast<int>(level));
                return;
            }
            resolved_at[level] = static_cast<int>(d);
            resolution_order.push_back(level);
            if (nest.levelConcordant(level) != concordant) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "level " + str(level) + " is marked " +
                            (nest.levelConcordant(level) ? "concordant"
                                                         : "discordant") +
                            " but is resolved by a " +
                            (concordant ? "sparse traversal" : "locate step"),
                        -1, static_cast<int>(level));
            }
        };
        if (n.kind == LoopKind::Sparse) {
            if (n.level < 0) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "sparse loop at depth " + str(d) +
                            " carries no storage level");
            } else {
                if (static_cast<u32>(n.level) < num_levels &&
                    nest.levelSlot(n.level) != n.slot) {
                    bag.add(DiagCode::L010_LevelSlotMismatch,
                            "sparse loop at depth " + str(d) +
                                " binds slot " + str(n.slot) +
                                " but its level " + str(n.level) +
                                " stores slot " +
                                str(nest.levelSlot(n.level)),
                            static_cast<int>(slotIndex(n.slot)), n.level);
                }
                resolve(static_cast<u32>(n.level), /*concordant=*/true);
            }
        } else if (n.level >= 0) {
            // Discordant Dense loop over a level slot: the level itself
            // must be resolved by a locate somewhere (checked via L003),
            // but the bookkeeping must agree on the slot.
            if (static_cast<u32>(n.level) < num_levels &&
                nest.levelSlot(n.level) != n.slot) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "dense loop at depth " + str(d) + " binds slot " +
                            str(n.slot) + " but claims level " +
                            str(n.level) + " which stores slot " +
                            str(nest.levelSlot(n.level)),
                        static_cast<int>(slotIndex(n.slot)), n.level);
            }
        }
        for (const LocateStep& loc : n.locates) {
            if (n.kind != LoopKind::Sparse) {
                bag.add(DiagCode::L004_SparseParentNotDominated,
                        "locate step at depth " + str(d) +
                            " hangs off a dense loop; locates resolve "
                            "relative to a traversed sparse level",
                        -1, static_cast<int>(loc.level));
            }
            if (loc.level < num_levels &&
                nest.levelSlot(loc.level) != loc.slot) {
                bag.add(DiagCode::L010_LevelSlotMismatch,
                        "locate at depth " + str(d) + " resolves level " +
                            str(loc.level) + " with slot " + str(loc.slot) +
                            " but that level stores slot " +
                            str(nest.levelSlot(loc.level)),
                        static_cast<int>(slotIndex(loc.slot)),
                        static_cast<int>(loc.level));
            }
            int bound_depth = depthOf(loops, loc.slot);
            if (bound_depth < 0 || bound_depth > static_cast<int>(d)) {
                bag.add(DiagCode::L005_LocateSlotUnbound,
                        "locate at depth " + str(d) + " consumes slot " +
                            str(loc.slot) +
                            " whose coordinate is not yet bound",
                        static_cast<int>(slotIndex(loc.slot)),
                        static_cast<int>(loc.level));
            }
            if (loc.level < num_levels) {
                bool want_search =
                    !levelSupportsDirectLocate(nest.levelFormat(loc.level));
                if (loc.binarySearch != want_search) {
                    bag.add(DiagCode::L008_LocateKindMismatch,
                            "locate into level " + str(loc.level) +
                                (want_search
                                     ? " must binary-search (Compressed)"
                                     : " must use a direct offset "
                                       "(Uncompressed)"),
                            static_cast<int>(slotIndex(loc.slot)),
                            static_cast<int>(loc.level));
                }
                resolve(loc.level, /*concordant=*/false);
            }
        }
    }

    for (u32 l = 0; l < num_levels; ++l) {
        if (resolved_at[l] < 0) {
            bag.add(DiagCode::L003_LevelUnresolved,
                    "storage level " + str(l) + " ('" +
                        nest.slotVarName(nest.levelSlot(l)) +
                        "') is never traversed or located",
                    static_cast<int>(slotIndex(nest.levelSlot(l))),
                    static_cast<int>(l));
        }
    }
    // Position-parent domination: levels must resolve in level order — a
    // child level's position space is defined by its parent's position.
    for (std::size_t i = 1; i < resolution_order.size(); ++i) {
        if (resolution_order[i] < resolution_order[i - 1]) {
            bag.add(DiagCode::L004_SparseParentNotDominated,
                    "storage level " + str(resolution_order[i]) +
                        " resolves before its parent level " +
                        str(resolution_order[i - 1]),
                    -1, static_cast<int>(resolution_order[i]));
        }
    }
}

void
checkExtents(const LoopNest& nest, const std::vector<LoopNode>& loops,
             DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(nest.alg());
    for (std::size_t d = 0; d < loops.size(); ++d) {
        const LoopNode& n = loops[d];
        u32 idx = slotIndex(n.slot);
        if (idx >= info.numIndices)
            continue; // already an L010 above
        u32 split = nest.splitOf(idx);
        u32 extent = nest.shape().indexExtent[idx];
        u32 want = slotIsInner(n.slot) ? split : ceilDiv(extent, split);
        if (n.extent != want) {
            bag.add(DiagCode::L006_SplitReconstruction,
                    "loop at depth " + str(d) + " over '" +
                        nest.slotVarName(n.slot) + "' has extent " +
                        str(n.extent) + "; reconstructing coordinates of '" +
                        info.indexNames[idx] + "' (extent " + str(extent) +
                        ", split " + str(split) + ") requires " + str(want),
                    static_cast<int>(idx));
        }
    }
}

void
checkLeaf(const LoopNest& nest, const ComputeLeaf& leaf,
          const std::vector<LoopNode>& loops, DiagnosticBag& bag)
{
    if (leaf.alg != nest.alg()) {
        bag.add(DiagCode::L009_VectorLeafMismatch,
                "compute leaf is for " + algorithmName(leaf.alg) +
                    " inside a " + algorithmName(nest.alg()) + " nest");
        return;
    }
    if (leaf.vectorIndex < 0)
        return; // no fused tail claimed: always sound, possibly slower
    const auto& info = algorithmInfo(nest.alg());
    if (static_cast<u32>(leaf.vectorIndex) >= info.numIndices) {
        bag.add(DiagCode::L009_VectorLeafMismatch,
                "vector index " + str(leaf.vectorIndex) + " out of range");
        return;
    }
    bool ok = !loops.empty();
    if (ok) {
        const LoopNode& last = loops.back();
        ok = last.kind == LoopKind::Dense && last.level < 0 &&
             slotIndex(last.slot) == static_cast<u32>(leaf.vectorIndex) &&
             nest.splitOf(slotIndex(last.slot)) == 1;
    }
    if (!ok) {
        bag.add(DiagCode::L009_VectorLeafMismatch,
                "leaf claims a vector tail over '" +
                    info.indexNames[leaf.vectorIndex] +
                    "' but the innermost loop is not that index's full "
                    "unsplit dense loop",
                leaf.vectorIndex);
    }
}

/**
 * Parallel-hazard pass. The interpreter chunks the outermost loop iff its
 * index is non-reducing (it ignores the annotations entirely), so these
 * hazards describe the emitted OpenMP C, where the annotation becomes a
 * real `#pragma omp parallel for`.
 */
void
checkParallelHazards(const LoopNest& nest, const std::vector<LoopNode>& loops,
                     std::size_t depth_offset, DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(nest.alg());
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const LoopNode& n = loops[i];
        const std::size_t d = depth_offset + i;
        if (!n.parallel)
            continue;
        u32 idx = slotIndex(n.slot);
        if (idx < info.numIndices && info.isReduction[idx]) {
            bag.add(DiagCode::R001_ParallelReductionRace,
                    "parallel loop over reduction index '" +
                        info.indexNames[idx] +
                        "': concurrent += into the output without atomics "
                        "or privatization",
                    static_cast<int>(idx));
        } else if (d > 0) {
            // Any parallel loop under a serial ancestor: every inner index
            // reached from distinct outer iterations writes disjoint or
            // reduction slots; the interpreter ignores the annotation and
            // the emitted C would open a nested parallel region per outer
            // iteration.
            bag.add(DiagCode::R002_NestedParallelIgnored,
                    "parallel annotation at depth " + str(d) +
                        " is not outermost; the runtime parallelizes only "
                        "the outermost loop",
                    static_cast<int>(idx));
        }
        if (n.chunk == 0) {
            bag.add(DiagCode::R003_ParallelChunkZero,
                    "parallel loop over '" + nest.slotVarName(n.slot) +
                        "' has no chunk size (schedule(dynamic, 0))",
                    static_cast<int>(idx));
        }
    }
}

/**
 * Workspace pass (fused nests): scope/extent structure (L011),
 * init-before-use phase completeness (L012), and the cross-phase parallel
 * hazards (R004/R005). A workspace at scopeDepth is private to each
 * iteration of loops [0, scopeDepth); parallelizing anything at or below
 * that depth shares one scratch vector across threads.
 */
void
checkWorkspace(const LoopNest& nest, DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(nest.alg());
    const WorkspaceDecl& ws = nest.workspace();

    if (!info.usesWorkspace) {
        if (ws.present || !nest.consumerLoops().empty()) {
            bag.add(DiagCode::L012_WorkspaceInitBeforeUse,
                    algorithmName(nest.alg()) +
                        " is a single-expression kernel but the nest "
                        "declares a workspace / consumer phase");
        }
        return;
    }
    if (!ws.present) {
        bag.add(DiagCode::L012_WorkspaceInitBeforeUse,
                algorithmName(nest.alg()) +
                    " lowers through a workspace but the nest declares "
                    "none");
        return;
    }

    if (ws.index >= info.numIndices || ws.index != info.workspaceIndex) {
        bag.add(DiagCode::L011_WorkspaceScopeInvalid,
                "workspace is indexed by index " + str(ws.index) +
                    " but " + algorithmName(nest.alg()) +
                    "'s workspace variable is '" +
                    info.indexNames[info.workspaceIndex] + "'",
                static_cast<int>(info.workspaceIndex));
    } else if (ws.extent != nest.shape().indexExtent[ws.index]) {
        bag.add(DiagCode::L011_WorkspaceScopeInvalid,
                "workspace extent " + str(ws.extent) +
                    " does not cover index '" + info.indexNames[ws.index] +
                    "' (extent " +
                    str(nest.shape().indexExtent[ws.index]) + ")",
                static_cast<int>(ws.index));
    }

    const auto& loops = nest.loops();
    if (ws.scopeDepth > loops.size()) {
        bag.add(DiagCode::L011_WorkspaceScopeInvalid,
                "workspace scope depth " + str(ws.scopeDepth) +
                    " exceeds the " + str(loops.size()) + "-loop nest");
    }
    const std::size_t prefix =
        std::min<std::size_t>(ws.scopeDepth, loops.size());

    // Init-before-use: a scope iteration must zero-init, accumulate, then
    // consume. Either phase missing breaks that protocol.
    if (prefix >= loops.size()) {
        bag.add(DiagCode::L012_WorkspaceInitBeforeUse,
                "producer phase is empty: the workspace is consumed but "
                "never accumulated into");
    }
    if (nest.consumerLoops().empty()) {
        bag.add(DiagCode::L012_WorkspaceInitBeforeUse,
                "consumer phase is empty: the workspace is accumulated "
                "but never consumed");
    }

    // Scope structure: the prefix holds exactly the scope-index loops.
    const auto scope_loop = [&](const LoopNode& n) {
        u32 idx = slotIndex(n.slot);
        return idx < info.numIndices && info.scopeIndex[idx];
    };
    for (std::size_t d = 0; d < prefix; ++d) {
        if (!scope_loop(loops[d])) {
            bag.add(DiagCode::L011_WorkspaceScopeInvalid,
                    "loop at depth " + str(d) +
                        " sits inside the workspace scope but binds "
                        "non-scope slot " + str(loops[d].slot),
                    static_cast<int>(slotIndex(loops[d].slot)));
        }
    }
    for (std::size_t d = prefix; d < loops.size(); ++d) {
        if (scope_loop(loops[d])) {
            bag.add(DiagCode::L011_WorkspaceScopeInvalid,
                    "scope loop over slot " + str(loops[d].slot) +
                        " runs below the workspace scope; its iterations "
                        "share one scratch vector",
                    static_cast<int>(slotIndex(loops[d].slot)));
        }
    }
    for (const LoopNode& n : nest.consumerLoops()) {
        if (scope_loop(n)) {
            bag.add(DiagCode::L011_WorkspaceScopeInvalid,
                    "consumer phase re-binds scope slot " + str(n.slot),
                    static_cast<int>(slotIndex(n.slot)));
        }
    }

    // Cross-phase parallel hazards. Below the declared scope the workspace
    // is shared: a parallel producer loop races its own accumulations
    // (R004); a parallel loop that dominates both phases (a scope-index
    // loop at or below the declared scope) hands each thread the same
    // scratch vector, so one chunk's producer writes race another's
    // consumer reads (R005).
    for (std::size_t d = prefix; d < loops.size(); ++d) {
        const LoopNode& n = loops[d];
        if (!n.parallel)
            continue;
        if (scope_loop(n)) {
            bag.add(DiagCode::R005_ParallelWorkspaceConsume,
                    "parallel loop at depth " + str(d) +
                        " runs both phases below the workspace scope: "
                        "producer writes race consumer reads of the shared "
                        "scratch vector",
                    static_cast<int>(slotIndex(n.slot)));
        } else {
            bag.add(DiagCode::R004_ParallelWorkspaceWrite,
                    "parallel producer loop at depth " + str(d) +
                        " accumulates into the scope-shared workspace "
                        "concurrently",
                    static_cast<int>(slotIndex(n.slot)));
        }
    }
}

} // namespace

DiagnosticBag
verifyLoopNest(const LoopNest& nest)
{
    const auto& info = algorithmInfo(nest.alg());
    const bool fused = info.usesWorkspace && nest.fused();
    const std::array<bool, 4> all_indices = {true, true, true, true};

    DiagnosticBag bag;
    checkBindings(nest, nest.loops(),
                  fused ? info.producerIndex : all_indices, bag);
    checkLevelResolution(nest, nest.loops(), bag);
    checkExtents(nest, nest.loops(), bag);
    checkLeaf(nest, nest.leaf(), nest.loops(), bag);
    checkParallelHazards(nest, nest.loops(), 0, bag);
    checkWorkspace(nest, bag);
    if (fused) {
        // The consumer phase re-runs the binding/resolution machinery over
        // its full walk: the shared scope prefix + the consumer loops.
        const std::size_t prefix = std::min<std::size_t>(
            nest.workspace().scopeDepth, nest.loops().size());
        std::vector<LoopNode> consumer_walk(nest.loops().begin(),
                                            nest.loops().begin() +
                                                static_cast<long>(prefix));
        consumer_walk.insert(consumer_walk.end(),
                             nest.consumerLoops().begin(),
                             nest.consumerLoops().end());
        checkBindings(nest, consumer_walk, info.consumerIndex, bag);
        checkLevelResolution(nest, consumer_walk, bag);
        checkExtents(nest, nest.consumerLoops(), bag);
        checkLeaf(nest, nest.consumerLeaf(), consumer_walk, bag);
        checkParallelHazards(nest, nest.consumerLoops(), prefix, bag);
    }
    return bag;
}

DiagnosticBag
verifyLowered(const SuperSchedule& s, const ProblemShape& shape)
{
    DiagnosticBag bag = verifySchedule(s, shape);
    if (bag.hasErrors())
        return bag;
    bag.merge(verifyLoopNest(lower(s, shape)));
    return bag;
}

} // namespace waco::analysis
