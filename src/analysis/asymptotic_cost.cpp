#include "analysis/asymptotic_cost.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/schedule_verifier.hpp"

namespace waco::analysis {

namespace {

using Mono = AsymTerm;

constexpr std::size_t kN = static_cast<std::size_t>(AsymSym::N);
constexpr std::size_t kM = static_cast<std::size_t>(AsymSym::M);
constexpr std::size_t kL = static_cast<std::size_t>(AsymSym::L);
constexpr std::size_t kK = static_cast<std::size_t>(AsymSym::K);
constexpr std::size_t kR = static_cast<std::size_t>(AsymSym::NnzRow);
constexpr std::size_t kLog = static_cast<std::size_t>(AsymSym::Log);

Mono
monoOne()
{
    return Mono{};
}

Mono
monoSym(AsymSym s)
{
    Mono m;
    m.exp[static_cast<std::size_t>(s)] = 1;
    return m;
}

Mono
monoNnz()
{
    Mono m;
    m.exp[kN] = 1;
    m.exp[kR] = 1;
    return m;
}

Mono
monoMul(Mono a, const Mono& b)
{
    for (std::size_t i = 0; i < kNumAsymSyms; ++i)
        a.exp[i] += b.exp[i];
    return a;
}

Mono
monoDiv(Mono a, const Mono& b)
{
    for (std::size_t i = 0; i < kNumAsymSyms; ++i)
        a.exp[i] -= b.exp[i];
    return a;
}

/**
 * Monomial order under the side conditions: every symbol >= 1 and
 * nnz_row <= M (2D) / nnz_row <= M*L (3D). a <= b iff substituting the
 * excess nnz_row powers of a by M (or M*L) makes a's exponent vector
 * componentwise <= b's. Taking the minimal substitution count d is
 * optimal (more substitutions only inflate M/L), which makes the check
 * exact and — because substitution counts compose additively — the
 * relation transitive.
 */
bool
monoLeq(const Mono& a, const Mono& b, bool threeD)
{
    int d = a.exp[kR] - b.exp[kR];
    if (d < 0)
        d = 0;
    if (a.exp[kN] > b.exp[kN] || a.exp[kK] > b.exp[kK] ||
        a.exp[kLog] > b.exp[kLog])
        return false;
    if (threeD)
        return a.exp[kM] + d <= b.exp[kM] && a.exp[kL] + d <= b.exp[kL];
    return a.exp[kL] <= b.exp[kL] && a.exp[kM] + d <= b.exp[kM];
}

/** The smaller of two comparable monomials; prefers @p a (the coordinate
 *  product) when they are incomparable — a sound over-approximation, but
 *  a potentially loose one, reported through @p loose so the profile can
 *  drop its tightness claim. */
Mono
monoMinPrefer(const Mono& a, const Mono& b, bool threeD, bool* loose)
{
    if (monoLeq(b, a, threeD))
        return b;
    if (!monoLeq(a, b, threeD))
        *loose = true; // Incomparable: the kept product may overshoot.
    return a;
}

/** Deterministic total order for term storage/printing only (NOT the
 *  dominance order): by total degree descending, then lexicographic. */
bool
termDisplayLess(const Mono& a, const Mono& b)
{
    int da = 0, db = 0;
    for (std::size_t i = 0; i < kNumAsymSyms; ++i) {
        da += a.exp[i];
        db += b.exp[i];
    }
    if (da != db)
        return da > db;
    return a.exp > b.exp;
}

std::string
monoStr(const Mono& m)
{
    // Print N * nnz_row pairs as nnz; remaining symbols by name.
    int e[kNumAsymSyms];
    for (std::size_t i = 0; i < kNumAsymSyms; ++i)
        e[i] = m.exp[i];
    int nnz = 0;
    if (e[kN] > 0 && e[kR] > 0) {
        nnz = std::min(e[kN], e[kR]);
        e[kN] -= nnz;
        e[kR] -= nnz;
    }
    static const char* const names[kNumAsymSyms] = {"N",       "M",  "L",
                                                    "K",       "nnz_row",
                                                    "log"};
    std::string num, den;
    auto factor = [](const char* name, int power) {
        std::string f = name;
        if (power != 1)
            f += "^" + std::to_string(power);
        return f;
    };
    if (nnz > 0)
        num = factor("nnz", nnz);
    for (std::size_t i = 0; i < kNumAsymSyms; ++i) {
        if (e[i] > 0) {
            if (!num.empty())
                num += " * ";
            num += factor(names[i], e[i]);
        } else if (e[i] < 0) {
            if (!den.empty())
                den += " / ";
            den += factor(names[i], -e[i]);
        }
    }
    if (num.empty())
        num = "1";
    if (!den.empty())
        num += " / " + den;
    return num;
}

} // namespace

AsymPoly
AsymPoly::one()
{
    AsymPoly p;
    p.addTerm(monoOne());
    return p;
}

AsymPoly
AsymPoly::sym(AsymSym s, int power)
{
    Mono m;
    m.exp[static_cast<std::size_t>(s)] = power;
    AsymPoly p;
    p.addTerm(m);
    return p;
}

AsymPoly
AsymPoly::nnz()
{
    AsymPoly p;
    p.addTerm(monoNnz());
    return p;
}

void
AsymPoly::addTerm(const AsymTerm& t)
{
    for (const AsymTerm& have : terms_) {
        if (have == t)
            return; // Coefficients are dropped: x + x is still O(x).
    }
    terms_.push_back(t);
}

AsymPoly&
AsymPoly::operator+=(const AsymPoly& o)
{
    for (const AsymTerm& t : o.terms_)
        addTerm(t);
    return *this;
}

AsymPoly
AsymPoly::operator+(const AsymPoly& o) const
{
    AsymPoly p = *this;
    p += o;
    return p;
}

AsymPoly
AsymPoly::operator*(const AsymPoly& o) const
{
    AsymPoly p;
    for (const AsymTerm& a : terms_) {
        for (const AsymTerm& b : o.terms_)
            p.addTerm(monoMul(a, b));
    }
    return p;
}

void
AsymPoly::normalize(bool threeD)
{
    // Keep only maximal monomials: a term absorbed by another contributes
    // nothing to the big-O class. Mutual absorption implies identical
    // exponent vectors (already merged), so one survivor always remains.
    std::vector<AsymTerm> keep;
    for (std::size_t i = 0; i < terms_.size(); ++i) {
        bool absorbed = false;
        for (std::size_t j = 0; j < terms_.size(); ++j) {
            if (i != j && monoLeq(terms_[i], terms_[j], threeD) &&
                !monoLeq(terms_[j], terms_[i], threeD)) {
                absorbed = true;
                break;
            }
        }
        if (!absorbed)
            keep.push_back(terms_[i]);
    }
    terms_ = std::move(keep);
    std::sort(terms_.begin(), terms_.end(), termDisplayLess);
}

std::string
AsymPoly::str() const
{
    if (terms_.empty())
        return "0";
    std::vector<AsymTerm> sorted = terms_;
    std::sort(sorted.begin(), sorted.end(), termDisplayLess);
    std::string out;
    for (const AsymTerm& t : sorted) {
        if (!out.empty())
            out += " + ";
        out += monoStr(t);
    }
    return out;
}

bool
polyLeq(const AsymPoly& a, const AsymPoly& b, bool threeD)
{
    // Sum vs sum: every monomial of a must be bounded by some monomial of
    // b (a finite sum is Theta of its maximal terms). Vacuously true for
    // the zero polynomial.
    for (const AsymTerm& ta : a.terms()) {
        bool bounded = false;
        for (const AsymTerm& tb : b.terms()) {
            if (monoLeq(ta, tb, threeD)) {
                bounded = true;
                break;
            }
        }
        if (!bounded)
            return false;
    }
    return true;
}

PolyOrder
comparePoly(const AsymPoly& a, const AsymPoly& b, bool threeD)
{
    bool ab = polyLeq(a, b, threeD);
    bool ba = polyLeq(b, a, threeD);
    if (ab && ba)
        return PolyOrder::Equal;
    if (ab)
        return PolyOrder::Less;
    if (ba)
        return PolyOrder::Greater;
    return PolyOrder::Incomparable;
}

namespace {

/** Symbol standing for the coordinate extent of index @p idx. */
AsymSym
symOfIndex(const AlgorithmInfo& info, u32 idx)
{
    switch (info.sparseDim[idx]) {
      case 0:
        return AsymSym::N;
      case 1:
        return AsymSym::M;
      case 2:
        return AsymSym::L;
      default:
        return AsymSym::K;
    }
}

/**
 * Coordinate range of one slot's loop as a monomial. Split sizes are
 * constants, so the half that carries the dimension gets the symbol and
 * the other half collapses to 1. When the (clamped) split swallowed the
 * whole extent, the INNER half carries the dimension and the outer loop
 * runs once.
 */
Mono
slotExtentMono(const LoopNest& nest, const AlgorithmInfo& info, u32 slot)
{
    u32 idx = slotIndex(slot);
    bool full = nest.splitOf(idx) >= nest.shape().indexExtent[idx];
    if (slotIsInner(slot) == full)
        return monoSym(symOfIndex(info, idx));
    return monoOne();
}

/** Mutable state of one phase chain during the bound walk. */
struct ChainState
{
    Mono entries = monoOne(); ///< Loop-body entries of the current depth.
    Mono lastPos = monoOne(); ///< Positions of the last traversed level.
};

/** Entries recorded after each loop, tagged with the index it binds. */
struct BoundLoop
{
    u32 index;
    Mono entries;
};

} // namespace

AsymptoticBounds
asymptoticBounds(const LoopNest& nest)
{
    const AlgorithmInfo& info = algorithmInfo(nest.alg());
    bool threeD = info.sparseOrder == 3;

    // Position-count estimate per storage level: the running coordinate
    // product, clamped to nnz whenever a Compressed level materializes
    // only stored prefixes. Incomparable clamps (e.g. M vs nnz for CSC's
    // leading column level) keep the coordinate product — a sound
    // over-approximation either way, but a loose one: it marks the whole
    // profile non-tight, which bars it from justifying a prune.
    bool loose = false;
    std::vector<Mono> posAt(nest.numLevels());
    {
        Mono pos = monoOne();
        for (u32 l = 0; l < nest.numLevels(); ++l) {
            pos = monoMul(pos, slotExtentMono(nest, info, nest.levelSlot(l)));
            if (nest.levelFormat(l) == LevelFormat::Compressed)
                pos = monoMinPrefer(pos, monoNnz(), threeD, &loose);
            posAt[l] = pos;
        }
    }

    auto polyOfMono = [](const Mono& t) {
        AsymPoly p = AsymPoly::one();
        for (std::size_t i = 0; i < kNumAsymSyms; ++i) {
            if (t.exp[i] != 0)
                p = p * AsymPoly::sym(static_cast<AsymSym>(i), t.exp[i]);
        }
        return p;
    };

    AsymPoly iterations, search, trafficA;
    std::vector<BoundLoop> prodAt, consAt;
    ChainState prod, cons;
    Mono prefixEntries = monoOne();
    u32 prefixDepth = nest.scopePrefixDepth();
    bool consStarted = false;

    forEachLoop(nest, [&](const LoopNode& node, u32 depth, NestPhase phase) {
        ChainState* st;
        std::vector<BoundLoop>* rec;
        if (phase == NestPhase::Producer) {
            st = &prod;
            rec = &prodAt;
        } else {
            if (!consStarted) {
                // The consumer chain re-enters at the scope prefix depth:
                // it inherits the prefix's entry count and traversal
                // position, not the producer leaf's.
                consStarted = true;
                cons.entries = prefixEntries;
                cons.lastPos = monoOne();
                for (u32 d = 0; d < prefixDepth; ++d) {
                    const LoopNode& p = nest.loops()[d];
                    if (p.kind == LoopKind::Sparse)
                        cons.lastPos = posAt[static_cast<u32>(p.level)];
                }
            }
            st = &cons;
            rec = &consAt;
        }
        Mono trip;
        if (node.kind == LoopKind::Sparse) {
            // Concordant traversal: per-parent trip is the ratio of this
            // level's positions to the last traversed level's.
            const Mono& pos = posAt[static_cast<u32>(node.level)];
            trip = monoDiv(pos, st->lastPos);
            st->lastPos = pos;
        } else {
            // Full coordinate loop (dense-only index or discordant slot).
            trip = slotExtentMono(nest, info, node.slot);
        }
        st->entries = monoMul(st->entries, trip);

        AsymPoly entriesNow = polyOfMono(st->entries);
        iterations += entriesNow;
        if (node.kind == LoopKind::Sparse)
            trafficA += entriesNow;
        for (const LocateStep& loc : node.locates) {
            AsymPoly cost = entriesNow;
            if (loc.binarySearch)
                cost = cost * AsymPoly::sym(AsymSym::Log);
            search += cost;
            trafficA += entriesNow;
        }
        rec->push_back(BoundLoop{slotIndex(node.slot), st->entries});
        if (phase == NestPhase::Producer && depth + 1 == prefixDepth)
            prefixEntries = st->entries;
    });

    // Workspace init phase: each scope iteration zeroes the full scratch
    // vector before the producer runs.
    AsymPoly trafficW;
    if (nest.fused()) {
        const WorkspaceDecl& ws = nest.workspace();
        AsymPoly init = polyOfMono(prefixEntries) *
                        AsymPoly::sym(symOfIndex(info, ws.index));
        iterations += init;
        trafficW += init;
        // Producer writes and consumer reads of w: the deepest loop of
        // each phase that binds the workspace index.
        for (const auto* list : {&prodAt, &consAt}) {
            for (auto it = list->rbegin(); it != list->rend(); ++it) {
                if (it->index == ws.index) {
                    trafficW += polyOfMono(it->entries);
                    break;
                }
            }
        }
    }

    AsymptoticBounds out;
    out.alg = nest.alg();
    out.threeD = threeD;
    out.tight = !loose;
    out.names.push_back("iterations");
    out.bounds.push_back(iterations);
    out.names.push_back("search");
    out.bounds.push_back(search);

    // Memory traffic of the sparse tensor (pos/crd/val touches while
    // traversing and locating), then of every dense operand: the entry
    // count of the deepest loop in its phase that binds one of its
    // indices (address changes upper bound; shallower loops only revisit).
    out.names.push_back("traffic:A");
    out.bounds.push_back(trafficA);
    for (const DenseOperand& op : info.denseOperands) {
        bool inProducer = true;
        bool inConsumer = true;
        for (u32 idx : op.indices) {
            if (info.usesWorkspace) {
                inProducer = inProducer && info.producerIndex[idx];
                inConsumer = inConsumer && info.consumerIndex[idx];
            }
        }
        const std::vector<BoundLoop>& list =
            (nest.fused() && !inProducer && inConsumer) ? consAt : prodAt;
        AsymPoly traffic;
        bool found = false;
        for (auto it = list.rbegin(); it != list.rend(); ++it) {
            bool binds = false;
            for (u32 idx : op.indices)
                binds = binds || it->index == idx;
            if (binds) {
                traffic = polyOfMono(it->entries);
                found = true;
                break;
            }
        }
        if (!found)
            traffic = AsymPoly::one();
        out.names.push_back("traffic:" + op.name);
        out.bounds.push_back(traffic);
    }
    if (nest.fused()) {
        out.names.push_back("traffic:w");
        out.bounds.push_back(trafficW);
    }
    for (AsymPoly& p : out.bounds)
        p.normalize(threeD);
    return out;
}

AsymptoticBounds
asymptoticBounds(const SuperSchedule& s, const ProblemShape& shape)
{
    return asymptoticBounds(lower(s, shape));
}

std::string
AsymptoticBounds::describe() const
{
    std::ostringstream os;
    os << algorithmName(alg) << " asymptotic bounds:\n";
    for (std::size_t i = 0; i < bounds.size(); ++i)
        os << "  " << names[i] << ": O(" << bounds[i].str() << ")\n";
    if (!tight)
        os << "  (loose: position estimates may overshoot; "
              "never pruned on these bounds)\n";
    return os.str();
}

bool
dominates(const AsymptoticBounds& a, const AsymptoticBounds& b)
{
    if (a.alg != b.alg || a.bounds.size() != b.bounds.size())
        return false;
    bool strict = false;
    for (std::size_t i = 0; i < a.bounds.size(); ++i) {
        if (!polyLeq(a.bounds[i], b.bounds[i], a.threeD))
            return false;
        if (!polyLeq(b.bounds[i], a.bounds[i], a.threeD))
            strict = true;
    }
    return strict;
}

bool
prunes(const AsymptoticBounds& a, const AsymptoticBounds& b)
{
    return b.tight && dominates(a, b);
}

std::string
explainDomination(const AsymptoticBounds& a, const AsymptoticBounds& b)
{
    if (!dominates(a, b))
        return "";
    std::string out;
    for (std::size_t i = 0; i < a.bounds.size(); ++i) {
        if (polyLeq(b.bounds[i], a.bounds[i], a.threeD))
            continue; // Equal in this bound.
        if (!out.empty())
            out += "; ";
        out += a.names[i] + ": O(" + a.bounds[i].str() + ") < O(" +
               b.bounds[i].str() + ")";
    }
    return out;
}

std::vector<std::size_t>
paretoFilter(const std::vector<AsymptoticBounds>& all)
{
    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < all.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < all.size(); ++j) {
            if (j != i && dominates(all[j], all[i])) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            kept.push_back(i);
    }
    return kept;
}

void
asymptoticPerfNotes(const SuperSchedule& s, const ProblemShape& shape,
                    DiagnosticBag& bag)
{
    if (verifySchedule(s, shape).hasErrors())
        return; // Bounds of an illegal schedule are meaningless.
    AsymptoticBounds mine = asymptoticBounds(s, shape);
    AsymptoticBounds base = asymptoticBounds(defaultSchedule(shape), shape);
    for (std::size_t i = 0; i < mine.bounds.size(); ++i) {
        PolyOrder ord =
            comparePoly(mine.bounds[i], base.bounds[i], mine.threeD);
        if (ord != PolyOrder::Greater)
            continue;
        DiagCode code = DiagCode::S303_AsymTrafficBound;
        if (i == 0)
            code = DiagCode::S302_AsymIterationBound;
        else if (i == 1)
            code = DiagCode::S304_AsymSearchBound;
        bag.add(code, mine.names[i] + " bound O(" + mine.bounds[i].str() +
                          ") exceeds the default schedule's O(" +
                          base.bounds[i].str() + ")");
    }
    // The dominated-outright note mirrors the filter relation: only a
    // tight profile would actually be pruned on these bounds.
    if (prunes(base, mine)) {
        bag.add(DiagCode::S301_AsymptoticallyDominated,
                "asymptotically dominated by the default schedule: " +
                    explainDomination(base, mine));
    }
}

} // namespace waco::analysis
