#include "analysis/diagnostics.hpp"

#include <cstdio>
#include <sstream>

namespace waco::analysis {

std::string
diagCodeName(DiagCode code)
{
    // The enum value encodes the namespace: S0xx-S2xx codes live below 300,
    // L-codes in [300, 400) shifted by 300, R-codes in [400, 500) shifted
    // by 400, and the later S3xx block in [500, 600) shifted by 200 (the
    // S-codes below 300 were full when it was appended).
    unsigned v = static_cast<unsigned>(code);
    char buf[16];
    if (v < 300)
        std::snprintf(buf, sizeof buf, "WACO-S%03u", v);
    else if (v < 400)
        std::snprintf(buf, sizeof buf, "WACO-L%03u", v - 300);
    else if (v < 500)
        std::snprintf(buf, sizeof buf, "WACO-R%03u", v - 400);
    else
        std::snprintf(buf, sizeof buf, "WACO-S%03u", v - 200);
    return buf;
}

Severity
diagSeverity(DiagCode code)
{
    unsigned v = static_cast<unsigned>(code);
    if (v < 100)
        return Severity::Error; // S0xx
    if (v < 200)
        return Severity::Warning; // S1xx
    if (v < 300)
        return Severity::PerfNote; // S2xx
    if (v < 400)
        return Severity::Error; // L0xx
    if (v >= 500)
        return Severity::PerfNote; // S3xx (asymptotic dominance)
    // R0xx: the reduction race and both workspace races are actual
    // mis-executions (a runtime honoring the annotation would corrupt the
    // output or the scratch vector); the other hazards describe
    // annotations the executor provably ignores.
    switch (code) {
      case DiagCode::R001_ParallelReductionRace:
      case DiagCode::R004_ParallelWorkspaceWrite:
      case DiagCode::R005_ParallelWorkspaceConsume:
        return Severity::Error;
      default:
        return Severity::Warning;
    }
}

std::string
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      default:
        return "perf-note";
    }
}

void
DiagnosticBag::add(DiagCode code, std::string message, int index, int level)
{
    Diagnostic d;
    d.code = code;
    d.severity = diagSeverity(code);
    d.message = std::move(message);
    d.index = index;
    d.level = level;
    switch (d.severity) {
      case Severity::Error:
        ++errors_;
        break;
      case Severity::Warning:
        ++warnings_;
        break;
      default:
        ++notes_;
        break;
    }
    diags_.push_back(std::move(d));
}

void
DiagnosticBag::merge(const DiagnosticBag& other)
{
    for (const Diagnostic& d : other.diags_)
        diags_.push_back(d);
    errors_ += other.errors_;
    warnings_ += other.warnings_;
    notes_ += other.notes_;
}

bool
DiagnosticBag::has(DiagCode code) const
{
    for (const Diagnostic& d : diags_) {
        if (d.code == code)
            return true;
    }
    return false;
}

const Diagnostic*
DiagnosticBag::firstError() const
{
    for (const Diagnostic& d : diags_) {
        if (d.severity == Severity::Error)
            return &d;
    }
    return nullptr;
}

std::string
DiagnosticBag::format() const
{
    std::ostringstream os;
    for (const Diagnostic& d : diags_) {
        os << diagCodeName(d.code) << " [" << severityName(d.severity)
           << "] " << d.message;
        if (d.index >= 0)
            os << " (index " << d.index << ")";
        if (d.level >= 0)
            os << " (level " << d.level << ")";
        os << "\n";
    }
    return os.str();
}

namespace {

/** Minimal JSON string escaping (same subset metrics names need). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
DiagnosticBag::exportJson() const
{
    std::ostringstream os;
    os << "{\"errors\":" << errors_ << ",\"warnings\":" << warnings_
       << ",\"notes\":" << notes_ << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic& d = diags_[i];
        if (i)
            os << ",";
        os << "{\"code\":\"" << diagCodeName(d.code) << "\",\"severity\":\""
           << severityName(d.severity) << "\",\"message\":\""
           << jsonEscape(d.message) << "\",\"index\":" << d.index
           << ",\"level\":" << d.level << "}";
    }
    os << "]}";
    return os.str();
}

void
DiagnosticBag::throwIfErrors(const std::string& context) const
{
    if (!hasErrors())
        return;
    std::ostringstream os;
    os << context << ": " << errors_ << " error(s)\n";
    for (const Diagnostic& d : diags_) {
        if (d.severity == Severity::Error)
            os << "  " << diagCodeName(d.code) << ": " << d.message << "\n";
    }
    throw FatalError(os.str());
}

void
writeDiagnosticsJson(const DiagnosticBag& bag, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    fatalIf(!f, "cannot open diagnostics output file: " + path);
    std::string json = bag.exportJson();
    std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
    int rc = std::fclose(f);
    fatalIf(n != json.size() || rc != 0,
            "short write to diagnostics output file: " + path);
}

} // namespace waco::analysis
