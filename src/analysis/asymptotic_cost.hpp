/**
 * @file
 * Asymptotic cost bounds and schedule dominance — stage 0 of the two-stage
 * search (Ahrens & Kjolstad's asymptotic cost model, adapted to the
 * SuperSchedule space).
 *
 * asymptoticBounds() walks a lowered LoopNest (including fused
 * producer/consumer phases and the workspace init loop) and derives, per
 * schedule, a vector of symbolic big-O bounds:
 *
 *   iterations   total loop-body entries across every phase,
 *   search       discordant locate cost (binary probes weighted by log),
 *   traffic:X    memory touches per operand (A, each dense operand, w).
 *
 * Bounds are polynomials over the abstract problem-size symbols
 *
 *   N, M, L   coordinate extents of the sparse tensor's dimensions,
 *   K         extent of any dense-only index,
 *   nnz_row   average nonzeros per row (nnz == N * nnz_row by definition),
 *   log       a binary-search factor, incomparable to everything else.
 *
 * Coefficients and constant factors (split sizes, SIMD width, thread
 * counts) are deliberately dropped: two schedules differing only in
 * constants must come out Equal/incomparable, never dominated, because
 * the analytic pass cannot see which constant wins on real hardware.
 *
 * Comparison is a PARTIAL order. polyLeq(a, b) holds iff every monomial
 * of a is bounded by some monomial of b under the side conditions that
 * every symbol is >= 1 and nnz_row <= M (2D; nnz <= N*M) or
 * nnz_row <= M*L (3D). dominates(a, b) holds iff every bound of a is <=
 * the corresponding bound of b and at least one is strictly smaller —
 * a strict partial order (irreflexive, antisymmetric, transitive), which
 * tests/test_asymptotic.cpp proves by property over sampled schedules.
 *
 * Bounds are UPPER bounds, and position-count estimates can overshoot
 * for scrambled storage orders (when the coordinate product and nnz are
 * incomparable the estimate keeps the product, which may exceed the true
 * stored-position count by a dimension factor). Dropping a candidate is
 * only justified when its own bound is attained up to constants — the
 * soundness chain is b_actual ~ b_bound >= a_bound >= a_actual — so each
 * profile carries a `tight` flag (no incomparable clamp fired) and
 * prunes(a, b) = dominates(a, b) && b.tight is the filter relation.
 *
 * The tuner uses prunes() as a Pareto filter over the top-k candidate
 * list: a candidate is discarded only when an already-kept candidate
 * dominates it AND its own bounds are tight, so incomparable or
 * loose-bounded candidates all survive and there is never a total-order
 * sort. asymptoticPerfNotes() surfaces the same comparison against the
 * default CSR/CSF schedule as WACO-S3xx perf-note diagnostics
 * (tune_cli --verify-only).
 */
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "ir/loopnest.hpp"

namespace waco::analysis {

/** Abstract problem-size symbols of the bound polynomials. */
enum class AsymSym : unsigned char
{
    N = 0,      ///< Extent of sparse dimension 0 (rows).
    M = 1,      ///< Extent of sparse dimension 1 (cols).
    L = 2,      ///< Extent of sparse dimension 2 (3D tensors only).
    K = 3,      ///< Extent of any dense-only index.
    NnzRow = 4, ///< nnz / N; nnz itself is the monomial N * nnz_row.
    Log = 5,    ///< Binary-search factor, incomparable to the others.
};

constexpr std::size_t kNumAsymSyms = 6;

/** One monomial: a product of integer powers of the six symbols. The
 *  coefficient is intentionally absent — bounds are big-O classes. */
struct AsymTerm
{
    std::array<int, kNumAsymSyms> exp = {0, 0, 0, 0, 0, 0};

    bool operator==(const AsymTerm& o) const { return exp == o.exp; }
};

/**
 * A sum of monomials (duplicates merged, coefficients dropped). The empty
 * polynomial is the zero bound (e.g. the search cost of a fully concordant
 * nest); zero is <= everything.
 */
class AsymPoly
{
  public:
    AsymPoly() = default; ///< Zero.

    static AsymPoly one();
    static AsymPoly sym(AsymSym s, int power = 1);
    /** The nnz monomial, N * nnz_row. */
    static AsymPoly nnz();

    bool isZero() const { return terms_.empty(); }
    const std::vector<AsymTerm>& terms() const { return terms_; }

    AsymPoly& operator+=(const AsymPoly& o);
    AsymPoly operator+(const AsymPoly& o) const;
    AsymPoly operator*(const AsymPoly& o) const;

    /** Drop monomials absorbed by another monomial of the same polynomial
     *  under the threeD side condition (nnz_row <= M or <= M*L): purely a
     *  readability normalization, comparisons are unaffected. */
    void normalize(bool threeD);

    /** "nnz * K + N", with N * nnz_row pairs printed as nnz. "0" when
     *  zero. Deterministic term order. */
    std::string str() const;

  private:
    void addTerm(const AsymTerm& t);

    std::vector<AsymTerm> terms_;
};

/** Outcome of comparing two bounds in the dominance partial order. */
enum class PolyOrder : unsigned char
{
    Equal,        ///< a <= b and b <= a (same big-O class).
    Less,         ///< a <= b and not b <= a.
    Greater,      ///< b <= a and not a <= b.
    Incomparable, ///< Neither direction holds.
};

/**
 * True when @p a is asymptotically bounded by @p b under: all symbols
 * >= 1, and nnz_row <= M (2D) or nnz_row <= M * L (@p threeD). A
 * reflexive, transitive relation (preorder).
 */
bool polyLeq(const AsymPoly& a, const AsymPoly& b, bool threeD);

/** Classify the pair (two polyLeq probes). */
PolyOrder comparePoly(const AsymPoly& a, const AsymPoly& b, bool threeD);

/**
 * The asymptotic cost profile of one lowered schedule: a fixed-length
 * vector of named bounds ([0] iterations, [1] search, then traffic per
 * operand). Two profiles are comparable only for the same algorithm.
 */
struct AsymptoticBounds
{
    Algorithm alg = Algorithm::SpMV;
    bool threeD = false; ///< Selects the nnz_row side condition.
    /** False when a position estimate took the incomparable-clamp branch
     *  (coordinate product vs nnz): the bounds are still sound upper
     *  bounds but may overshoot the actual cost, so they must not
     *  justify pruning this schedule (see prunes()). */
    bool tight = true;
    std::vector<std::string> names;
    std::vector<AsymPoly> bounds;

    const AsymPoly& iterations() const { return bounds[0]; }
    const AsymPoly& searchCost() const { return bounds[1]; }

    /** One line per bound: "iterations: O(nnz + N)". */
    std::string describe() const;
};

/** Derive the bound profile by walking @p nest (both phases + workspace
 *  init for fused nests). */
AsymptoticBounds asymptoticBounds(const LoopNest& nest);

/** Convenience: lower (validating) and derive. Throws FatalError for
 *  schedules that do not lower; run verifySchedule first. */
AsymptoticBounds asymptoticBounds(const SuperSchedule& s,
                                  const ProblemShape& shape);

/**
 * Strict dominance: every bound of @p a is <= the matching bound of
 * @p b and at least one is strictly smaller. False for profiles of
 * different algorithms. A strict partial order.
 */
bool dominates(const AsymptoticBounds& a, const AsymptoticBounds& b);

/**
 * The filter relation: dominates(a, b) AND b.tight. Discarding b
 * unmeasured is justified only when b's bounds are attained up to
 * shape-independent constants (b_actual ~ b_bound >= a_bound >= a_actual);
 * a loose-bounded b may be far cheaper than its bounds suggest and must
 * survive to measurement. Irreflexive and antisymmetric like dominates();
 * transitivity over a kept set holds because keeping decisions only ever
 * remove candidates dominated by a KEPT (earlier) one.
 */
bool prunes(const AsymptoticBounds& a, const AsymptoticBounds& b);

/** Human-readable reason, e.g. "iterations: O(nnz) < O(N * M); ..."
 *  listing every strictly-smaller bound. Empty when !dominates(a, b). */
std::string explainDomination(const AsymptoticBounds& a,
                              const AsymptoticBounds& b);

/**
 * Pareto filter: indices (ascending) of every profile not dominated by
 * any other profile in @p all. Never a total-order sort: incomparable
 * profiles all survive, and every dropped index is dominated by some
 * kept index.
 */
std::vector<std::size_t>
paretoFilter(const std::vector<AsymptoticBounds>& all);

/**
 * WACO-S3xx perf notes: compare @p s against the default CSR/CSF
 * schedule on @p shape and report every strictly-worse bound (S302
 * iterations, S303 traffic, S304 search) plus S301 when the default
 * dominates @p s outright. Emits nothing for schedules the verifier
 * rejects (bounds of an illegal schedule are meaningless).
 */
void asymptoticPerfNotes(const SuperSchedule& s, const ProblemShape& shape,
                         DiagnosticBag& bag);

} // namespace waco::analysis
