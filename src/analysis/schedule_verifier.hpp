/**
 * @file
 * ScheduleVerifier: the first pass of the static-analysis pipeline.
 *
 * Checks a SuperSchedule for structural legality (WACO-S0xx errors:
 * permutation well-formedness, split legality, parallel-slot constraints,
 * level-format capability per the Chou et al. format abstraction),
 * suspicious-but-legal parameters (WACO-S1xx warnings: out-of-space split
 * sizes, degenerate parallel annotations), and predictable slowness
 * (WACO-S2xx perf notes: discordant binary-search locates, unvectorizable
 * or strided inner loops — the Section 3.1 costs surfaced statically).
 *
 * The shape-free overload checks everything derivable from the schedule
 * alone and is what the tuner uses to filter graph candidates that span
 * many problem shapes; the shape-aware overload adds extent checks and is
 * the contract behind validateSchedule().
 *
 * canonicalizeSchedule() maps a verified schedule to the representative of
 * its measurement-equivalence class: degenerate (split-1 inner) slots are
 * elided from every active order before lowering, so two schedules that
 * differ only in where those slots sit (or what stripped format letter
 * they carry) lower to the same nest and measure identically. The tuner
 * dedupes top-k candidates by canonicalKey() and reuses measurements.
 */
#pragma once

#include "analysis/diagnostics.hpp"
#include "ir/schedule.hpp"

namespace waco::analysis {

/** Full verification of @p s against @p shape (S0xx/S1xx/S2xx). */
DiagnosticBag verifySchedule(const SuperSchedule& s,
                             const ProblemShape& shape);

/** Structure-only verification (skips the shape-dependent checks
 *  S011/S014/S102). */
DiagnosticBag verifySchedule(const SuperSchedule& s);

/**
 * What a kernel needs from the sparse tensor's storage. Derived from the
 * algorithm today (requiredAccess), but callers composing new kernels can
 * state requirements directly.
 */
struct AccessRequirements
{
    /** Writes at positions not present in A's pattern (needs U levels). */
    bool randomInsert = false;
    /** Coordinate lookup into levels traversed discordantly. */
    bool locate = false;
};

/**
 * Access the four paper kernels need from A. None of them random-inserts:
 * A is a read-only input to SpMV/SpMM/MTTKRP, and SDDMM's output D shares
 * A's pattern exactly, so writes are position-aligned appends. Locate is
 * required whenever the loop order is discordant (checked per-schedule).
 */
AccessRequirements requiredAccess(Algorithm alg);

/**
 * Check @p s's level formats against @p req (WACO-S013 errors when a
 * Compressed level would need random insert). Split out from
 * verifySchedule so synthetic requirements are testable even though no
 * current algorithm random-inserts.
 */
void checkAccessCapabilities(const SuperSchedule& s,
                             const AccessRequirements& req,
                             DiagnosticBag& bag);

/**
 * Representative of @p s's measurement-equivalence class. Requires an
 * error-free schedule (returns @p s unchanged otherwise). Only degenerate
 * bookkeeping moves: degenerate inner slots reorder to sit right after
 * their outer half in loopOrder, sink to the end of sparseLevelOrder
 * (sorted by slot) with their stripped format normalized to Uncompressed.
 * Everything observable — activeLoopOrder, activeSparseLevelOrder/Formats,
 * splits, parallel annotation, layouts — is untouched, so lower() and the
 * cost model cannot tell the difference.
 */
SuperSchedule canonicalizeSchedule(const SuperSchedule& s);

/** key() of the canonical representative (the tuner's dedup key). */
std::string canonicalKey(const SuperSchedule& s);

} // namespace waco::analysis
