/**
 * @file
 * LoopNestVerifier: the second pass of the static-analysis pipeline, over
 * the lowered LoopNest IR.
 *
 * Structural invariants (WACO-L0xx): every slot is bound by at most one
 * loop and every active slot by exactly one; every storage level of A is
 * resolved exactly once (by a concordant Sparse loop or by a LocateStep),
 * in level order, with each level's resolution dominated by its position
 * parent; locate steps only consume already-bound coordinates and their
 * search kind matches the level format; loop extents reconstruct the
 * original coordinates from the split (inner extent == split, outer ==
 * ceil(extent/split)); the vector-tail leaf metadata matches the nest.
 *
 * Parallel-hazard analysis (WACO-R0xx): a parallel annotation on a loop
 * whose index reduces into the output is a data race in the emitted
 * OpenMP C (no atomics/privatization in the TACO-style statement) —
 * error. Annotations the interpreter provably ignores (non-outermost
 * parallel loops) and chunk-0 annotations are warnings.
 *
 * lower() always produces nests that verify clean (enforced by a debug
 * self-check); the pass exists for nests built by other frontends —
 * LoopNest::fromRaw — and as the fuzz tests' differential oracle.
 */
#pragma once

#include "analysis/diagnostics.hpp"
#include "ir/loopnest.hpp"

namespace waco::analysis {

/** Verify structural invariants and parallel hazards of @p nest. */
DiagnosticBag verifyLoopNest(const LoopNest& nest);

/**
 * Whole-pipeline verification: verify @p s against @p shape, and when it
 * is error-free also lower it and verify the resulting nest. The returned
 * bag merges both passes' findings.
 */
DiagnosticBag verifyLowered(const SuperSchedule& s, const ProblemShape& shape);

} // namespace waco::analysis
