#include "analysis/schedule_verifier.hpp"

#include <algorithm>
#include <sstream>

namespace waco::analysis {

namespace {

std::string
str(u64 v)
{
    return std::to_string(v);
}

/**
 * Structural error checks (S0xx). Every later phase indexes arrays by slot
 * and index id, so it only runs once this phase reports no errors.
 */
void
checkStructure(const SuperSchedule& s, const ProblemShape* shape,
               DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(s.alg);
    const u32 num_slots = 2 * info.numIndices;

    if (shape && shape->alg != s.alg) {
        bag.add(DiagCode::S014_AlgorithmMismatch,
                "schedule is for " + algorithmName(s.alg) +
                    " but the problem shape is for " +
                    algorithmName(shape->alg));
    }

    if (s.loopOrder.size() != num_slots) {
        bag.add(DiagCode::S001_LoopOrderSize,
                "loop order has " + str(s.loopOrder.size()) +
                    " slots, expected " + str(num_slots));
    }
    std::vector<bool> seen(num_slots, false);
    for (u32 slot : s.loopOrder) {
        if (slot >= num_slots) {
            bag.add(DiagCode::S002_SlotOutOfRange,
                    "loop order slot " + str(slot) + " out of range [0, " +
                        str(num_slots) + ")");
            continue;
        }
        if (seen[slot]) {
            bag.add(DiagCode::S003_DuplicateSlot,
                    "slot " + str(slot) + " appears twice in the loop order",
                    static_cast<int>(slotIndex(slot)));
        }
        seen[slot] = true;
    }

    if (s.sparseLevelOrder.size() != 2 * info.sparseOrder) {
        bag.add(DiagCode::S004_LevelOrderSize,
                "sparse level order has " + str(s.sparseLevelOrder.size()) +
                    " slots, expected " + str(2 * info.sparseOrder));
    }
    std::vector<bool> level_seen(num_slots, false);
    for (std::size_t l = 0; l < s.sparseLevelOrder.size(); ++l) {
        u32 slot = s.sparseLevelOrder[l];
        if (slot >= num_slots) {
            bag.add(DiagCode::S002_SlotOutOfRange,
                    "sparse level order slot " + str(slot) +
                        " out of range [0, " + str(num_slots) + ")",
                    -1, static_cast<int>(l));
            continue;
        }
        if (info.sparseDim[slotIndex(slot)] < 0) {
            bag.add(DiagCode::S005_LevelOrderDenseIndex,
                    "sparse level order references dense-only index '" +
                        info.indexNames[slotIndex(slot)] + "'",
                    static_cast<int>(slotIndex(slot)),
                    static_cast<int>(l));
        }
        if (level_seen[slot]) {
            bag.add(DiagCode::S006_LevelOrderDuplicate,
                    "slot " + str(slot) +
                        " appears twice in the sparse level order",
                    static_cast<int>(slotIndex(slot)),
                    static_cast<int>(l));
        }
        level_seen[slot] = true;
    }
    if (s.sparseLevelFormats.size() != s.sparseLevelOrder.size()) {
        bag.add(DiagCode::S007_LevelFormatMisaligned,
                "level formats have " + str(s.sparseLevelFormats.size()) +
                    " entries for " + str(s.sparseLevelOrder.size()) +
                    " level-order slots");
    }

    u32 pidx = slotIndex(s.parallelSlot);
    if (pidx >= info.numIndices) {
        bag.add(DiagCode::S008_ParallelSlotRange,
                "parallel slot " + str(s.parallelSlot) +
                    " out of range [0, " + str(num_slots) + ")");
    } else if (info.isReduction[pidx]) {
        bag.add(DiagCode::S009_ParallelReduction,
                "parallelized slot belongs to reduction index '" +
                    info.indexNames[pidx] + "'",
                static_cast<int>(pidx));
    }

    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        if (s.splits[idx] == 0) {
            bag.add(DiagCode::S010_SplitZero,
                    "index '" + info.indexNames[idx] + "' has split size 0",
                    static_cast<int>(idx));
        }
        if (shape && shape->indexExtent[idx] == 0) {
            bag.add(DiagCode::S011_ShapeExtentZero,
                    "index '" + info.indexNames[idx] +
                        "' has extent 0 in the problem shape",
                    static_cast<int>(idx));
        }
    }

    if (s.denseRowMajor.size() != info.denseOperands.size()) {
        bag.add(DiagCode::S012_DenseLayoutMisaligned,
                "dense layout flags have " + str(s.denseRowMajor.size()) +
                    " entries for " + str(info.denseOperands.size()) +
                    " dense operands");
    }
}

/**
 * Workspace-scope order (S015): a workspace kernel's scratch tensor is
 * private per iteration of the scope loops, so every active scope slot
 * must precede every other active slot — a phase loop outside the scope
 * would mix workspace contents across scope iterations. Runs only on
 * structurally valid schedules (needs a well-formed loop order).
 */
void
checkWorkspaceOrder(const SuperSchedule& s, DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(s.alg);
    if (!info.usesWorkspace)
        return;
    bool phase_seen = false;
    for (u32 slot : activeLoopOrder(s)) {
        u32 idx = slotIndex(slot);
        if (!info.scopeIndex[idx]) {
            phase_seen = true;
        } else if (phase_seen) {
            bag.add(DiagCode::S015_WorkspaceScopeOrder,
                    "scope loop '" + info.indexNames[idx] +
                        "' runs inside a phase loop; workspace scope loops "
                        "must be outermost",
                    static_cast<int>(idx));
        }
    }
}

/** Warnings (S1xx) — only called on structurally valid schedules. */
void
checkWarnings(const SuperSchedule& s, const ProblemShape* shape,
              DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(s.alg);
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        if (!isPow2(s.splits[idx])) {
            bag.add(DiagCode::S101_SplitNotPow2,
                    "split " + str(s.splits[idx]) + " of index '" +
                        info.indexNames[idx] +
                        "' is outside the paper's power-of-two space",
                    static_cast<int>(idx));
        }
        if (shape && s.splits[idx] > shape->indexExtent[idx]) {
            bag.add(DiagCode::S102_SplitExceedsExtent,
                    "split " + str(s.splits[idx]) + " of index '" +
                        info.indexNames[idx] + "' exceeds its extent " +
                        str(shape->indexExtent[idx]) +
                        " (will be clamped on lowering)",
                    static_cast<int>(idx));
        }
    }
    if (slotDegenerate(s, s.parallelSlot)) {
        bag.add(DiagCode::S103_ParallelDegenerate,
                "parallel annotation sits on the elided split-1 inner slot "
                "of index '" +
                    info.indexNames[slotIndex(s.parallelSlot)] +
                    "'; the program runs serial",
                static_cast<int>(slotIndex(s.parallelSlot)));
    }
}

/** Perf notes (S2xx) — only called on structurally valid schedules. */
void
checkPerfNotes(const SuperSchedule& s, DiagnosticBag& bag)
{
    const auto& info = algorithmInfo(s.alg);
    const auto loops = activeLoopOrder(s);
    const auto levels = activeSparseLevelOrder(s);
    const auto fmts = activeSparseLevelFormats(s);

    auto loop_pos = [&](u32 slot) -> std::size_t {
        for (std::size_t p = 0; p < loops.size(); ++p) {
            if (loops[p] == slot)
                return p;
        }
        return loops.size();
    };

    // Replay lower()'s level-resolution walk to find the discordant levels:
    // a level whose loop opens while an earlier level is still untraversed
    // is resolved later by a locate — a binary search when Compressed
    // (Section 3.1's discordant-traversal cost).
    std::size_t next = 0;
    for (std::size_t pos = 0; pos < loops.size(); ++pos) {
        if (next >= levels.size() || loops[pos] != levels[next])
            continue;
        ++next;
        while (next < levels.size() && loop_pos(levels[next]) < pos) {
            if (fmts[next] == LevelFormat::Compressed) {
                bag.add(DiagCode::S201_DiscordantBinarySearch,
                        "compressed level " + str(next) + " ('" +
                            info.indexNames[slotIndex(levels[next])] +
                            "') is traversed discordantly and will be "
                            "resolved by binary search per iteration",
                        static_cast<int>(slotIndex(levels[next])),
                        static_cast<int>(next));
            }
            ++next;
        }
    }

    if (!loops.empty()) {
        u32 last = loops.back();
        // Innermost loop over a compressed level: the pos/crd indirection
        // defeats vectorization of the compute statement.
        for (std::size_t l = 0; l < levels.size(); ++l) {
            if (levels[l] == last && fmts[l] == LevelFormat::Compressed) {
                bag.add(DiagCode::S202_InnerLoopNotVectorizable,
                        "innermost loop iterates compressed level " +
                            str(l) + "; the compute statement cannot be "
                            "vectorized",
                        static_cast<int>(slotIndex(last)),
                        static_cast<int>(l));
            }
        }
        // Vectorizable dense tail whose access into a dense operand is
        // strided by the operand's layout choice.
        u32 idx = slotIndex(last);
        bool dense_tail = info.sparseDim[idx] < 0 && s.splits[idx] == 1;
        if (dense_tail && s.denseRowMajor.size() == info.denseOperands.size()) {
            for (std::size_t op = 0; op < info.denseOperands.size(); ++op) {
                const auto& operand = info.denseOperands[op];
                const auto& ops_idx = operand.indices;
                bool uses = std::find(ops_idx.begin(), ops_idx.end(), idx) !=
                            ops_idx.end();
                if (!uses || ops_idx.size() < 2)
                    continue;
                // Effective layout: fixed operands always use the paper's
                // choice, whatever the schedule flag says (the cost model
                // applies the same override).
                bool row_major = operand.layoutFixed ? operand.rowMajorDefault
                                                     : s.denseRowMajor[op];
                bool contiguous = row_major ? ops_idx.back() == idx
                                            : ops_idx.front() == idx;
                if (!contiguous) {
                    bag.add(DiagCode::S203_StridedVectorAccess,
                            "vector tail over '" + info.indexNames[idx] +
                                "' strides operand " + operand.name +
                                " under its " +
                                (row_major ? "row" : "column") +
                                "-major layout",
                            static_cast<int>(idx));
                }
            }
        }
    }
}

DiagnosticBag
verifyImpl(const SuperSchedule& s, const ProblemShape* shape)
{
    DiagnosticBag bag;
    checkStructure(s, shape, bag);
    if (bag.hasErrors())
        return bag; // malformed arrays make the deeper walks unsafe
    checkWorkspaceOrder(s, bag);
    if (bag.hasErrors())
        return bag; // fused lowering depends on the scope prefix
    checkAccessCapabilities(s, requiredAccess(s.alg), bag);
    checkWarnings(s, shape, bag);
    checkPerfNotes(s, bag);
    return bag;
}

} // namespace

DiagnosticBag
verifySchedule(const SuperSchedule& s, const ProblemShape& shape)
{
    return verifyImpl(s, &shape);
}

DiagnosticBag
verifySchedule(const SuperSchedule& s)
{
    return verifyImpl(s, nullptr);
}

AccessRequirements
requiredAccess(Algorithm alg)
{
    (void)alg;
    // See the header: A is read-only for SpMV/SpMM/MTTKRP and SDDMM's
    // output writes are aligned with A's pattern, so no current kernel
    // random-inserts. FusedSDDMMSpMM reads A's pattern twice (producer and
    // consumer phase) but its workspace and output are dense, so it adds
    // no format capability either. Locate needs are schedule-dependent
    // (discordance), not algorithm-dependent, and both level formats
    // support locate (offset for U, binary search for C).
    return {};
}

void
checkAccessCapabilities(const SuperSchedule& s, const AccessRequirements& req,
                        DiagnosticBag& bag)
{
    if (!req.randomInsert)
        return;
    const auto& info = algorithmInfo(s.alg);
    const auto levels = activeSparseLevelOrder(s);
    const auto fmts = activeSparseLevelFormats(s);
    for (std::size_t l = 0; l < levels.size(); ++l) {
        if (!levelSupportsRandomInsert(fmts[l])) {
            bag.add(DiagCode::S013_CompressedRandomInsert,
                    "kernel requires random insert but level " + str(l) +
                        " ('" + info.indexNames[slotIndex(levels[l])] +
                        "') is Compressed (append-only)",
                    static_cast<int>(slotIndex(levels[l])),
                    static_cast<int>(l));
        }
    }
}

SuperSchedule
canonicalizeSchedule(const SuperSchedule& s)
{
    if (verifySchedule(s).hasErrors())
        return s;
    const auto& info = algorithmInfo(s.alg);
    SuperSchedule out = s;

    // Compute half: each degenerate inner slot moves directly after its
    // outer half. activeLoopOrder() strips them either way, so the lowered
    // nest is identical; only the serialized key changes.
    out.loopOrder.clear();
    for (u32 slot : s.loopOrder) {
        if (slotDegenerate(s, slot))
            continue;
        out.loopOrder.push_back(slot);
        if (!slotIsInner(slot) && s.splits[slotIndex(slot)] == 1)
            out.loopOrder.push_back(innerSlot(slotIndex(slot)));
    }

    // Format half: degenerate slots sink to the end in slot order, and
    // their stripped format letter is normalized to Uncompressed.
    out.sparseLevelOrder.clear();
    out.sparseLevelFormats.clear();
    for (std::size_t l = 0; l < s.sparseLevelOrder.size(); ++l) {
        if (slotDegenerate(s, s.sparseLevelOrder[l]))
            continue;
        out.sparseLevelOrder.push_back(s.sparseLevelOrder[l]);
        out.sparseLevelFormats.push_back(s.sparseLevelFormats[l]);
    }
    std::vector<u32> degenerate;
    for (u32 slot : s.sparseLevelOrder) {
        if (slotDegenerate(s, slot))
            degenerate.push_back(slot);
    }
    std::sort(degenerate.begin(), degenerate.end());
    for (u32 slot : degenerate) {
        out.sparseLevelOrder.push_back(slot);
        out.sparseLevelFormats.push_back(LevelFormat::Uncompressed);
    }

    // Dense operands with a fixed layout always carry the paper's choice
    // in the key, whatever a mutated flag says: consumers force it back.
    for (std::size_t op = 0; op < info.denseOperands.size() &&
                             op < out.denseRowMajor.size();
         ++op) {
        if (info.denseOperands[op].layoutFixed)
            out.denseRowMajor[op] = info.denseOperands[op].rowMajorDefault;
    }
    return out;
}

std::string
canonicalKey(const SuperSchedule& s)
{
    return canonicalizeSchedule(s).key();
}

} // namespace waco::analysis
