#include "nn/sparse_conv.hpp"

#include <atomic>

#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace waco::nn {

namespace {

/** Hash a D-dimensional integer coordinate. */
struct CoordHash
{
    std::size_t
    operator()(const std::array<i32, 3>& c) const
    {
        u64 h = 0xcbf29ce484222325ull;
        for (i32 x : c) {
            h ^= static_cast<u64>(static_cast<u32>(x));
            h *= 0x100000001b3ull;
            h ^= h >> 31;
        }
        return static_cast<std::size_t>(h);
    }
};

using CoordMap = std::unordered_map<std::array<i32, 3>, u32, CoordHash>;

std::atomic<bool> g_rulebook_cache_enabled{true};

/** Work threshold before the execute step engages the ThreadPool. */
constexpr u64 kParallelPairFlops = u64(1) << 20;

/** Gather pairs per ThreadPool chunk (before output-site alignment). */
constexpr u64 kPairChunk = 4096;

} // namespace

void
setRulebookCacheEnabled(bool enabled)
{
    g_rulebook_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool
rulebookCacheEnabled()
{
    return g_rulebook_cache_enabled.load(std::memory_order_relaxed);
}

SparseConv::SparseConv(u32 dim, u32 kernel, u32 stride, u32 in_ch, u32 out_ch,
                       Rng& rng)
    : dim_(dim), kernel_(kernel), stride_(stride), inCh_(in_ch), outCh_(out_ch)
{
    fatalIf(kernel % 2 == 0, "sparse conv kernel must be odd");
    fatalIf(stride != 1 && stride != 2, "sparse conv stride must be 1 or 2");
    i32 half = static_cast<i32>(kernel) / 2;
    std::array<i32, 3> off = {0, 0, 0};
    // Enumerate the D-dimensional offset cube.
    std::vector<std::array<i32, 3>> offsets;
    auto enumerate = [&](auto&& self, u32 d) -> void {
        if (d == dim) {
            offsets.push_back(off);
            return;
        }
        for (i32 x = -half; x <= half; ++x) {
            off[d] = x;
            self(self, d + 1);
        }
    };
    enumerate(enumerate, 0);
    offsets_ = std::move(offsets);
    u32 fan_in = in_ch * static_cast<u32>(offsets_.size());
    for (std::size_t o = 0; o < offsets_.size(); ++o) {
        w_.emplace_back(in_ch, out_ch);
        w_.back().init(rng, fan_in);
    }
    b_ = Param(1, out_ch);
    b_.init(rng, fan_in);
}

Rulebook
SparseConv::buildRulebook(const std::vector<std::array<i32, 3>>& coords) const
{
    Rulebook rb;
    rb.inSites = static_cast<u32>(coords.size());

    CoordMap out_index;
    out_index.reserve(coords.size() * 2);

    if (stride_ == 1) {
        // Submanifold: output sites == input sites.
        rb.outCoords = coords;
        for (u32 i = 0; i < rb.inSites; ++i)
            out_index.emplace(coords[i], i);
    } else {
        // Strided (MinkowskiEngine semantics): output sites live on the
        // coarse grid at floor(p / stride), so each layer strictly
        // coarsens the coordinate space.
        auto floor_div = [](i32 x, i32 s) {
            return x >= 0 ? x / s : -((-x + s - 1) / s);
        };
        for (u32 i = 0; i < rb.inSites; ++i) {
            std::array<i32, 3> t = {0, 0, 0};
            for (u32 d = 0; d < dim_; ++d)
                t[d] = floor_div(coords[i][d], static_cast<i32>(stride_));
            if (out_index.emplace(t, static_cast<u32>(rb.outCoords.size()))
                    .second) {
                rb.outCoords.push_back(t);
            }
        }
    }

    // Gather pair lists per offset: input p contributes to output q when
    // p == q*stride + off. Iterating q outer keeps each per-offset list
    // sorted by output site, which the execute step relies on for
    // conflict-free parallel scatter.
    rb.pairs.assign(offsets_.size(), {});
    CoordMap in_index;
    in_index.reserve(coords.size() * 2);
    for (u32 i = 0; i < rb.inSites; ++i)
        in_index.emplace(coords[i], i);

    for (u32 q = 0; q < rb.outCoords.size(); ++q) {
        for (std::size_t o = 0; o < offsets_.size(); ++o) {
            std::array<i32, 3> p = {0, 0, 0};
            for (u32 d = 0; d < dim_; ++d) {
                p[d] = rb.outCoords[q][d] * static_cast<i32>(stride_) +
                       offsets_[o][d];
            }
            auto it = in_index.find(p);
            if (it != in_index.end())
                rb.pairs[o].push_back({it->second, q});
        }
    }
    return rb;
}

SparseMap
SparseConv::forward(const SparseMap& in, const Rulebook& rb)
{
    panicIf(in.feats.cols != inCh_, "sparse conv channel mismatch");
    panicIf(rb.inSites != in.numSites() || rb.pairs.size() != offsets_.size(),
            "rulebook does not match this layer/input");
    in_feats_ = in.feats;
    active_ = &rb;

    SparseMap out;
    out.dim = in.dim;
    out.coords = rb.outCoords;
    out.feats = Mat(static_cast<u32>(rb.outCoords.size()), outCh_);
    for (u32 q = 0; q < out.feats.rows; ++q) {
        float* orow = out.feats.row(q);
        for (u32 c = 0; c < outCh_; ++c)
            orow[c] = b_.w.at(0, c);
    }

    if (gemmKind() == GemmKind::Naive) {
        // The pre-optimization execute: one saxpy per (pair, input channel)
        // with a zero-skip branch, kept callable for old-vs-new benches.
        for (std::size_t o = 0; o < offsets_.size(); ++o) {
            const Mat& w = w_[o].w;
            for (const auto& [pi, qi] : rb.pairs[o]) {
                const float* irow = in_feats_.row(pi);
                float* orow = out.feats.row(qi);
                for (u32 ci = 0; ci < inCh_; ++ci) {
                    float x = irow[ci];
                    if (x == 0.0f)
                        continue;
                    const float* wrow = w.row(ci);
                    for (u32 co = 0; co < outCh_; ++co)
                        orow[co] += x * wrow[co];
                }
            }
        }
        return out;
    }

    // Gather -> GEMM -> scatter per offset. Chunks of the pair list are
    // extended to output-site boundaries (lists are sorted by output site),
    // so each chunk's scatter rows are disjoint: workers accumulate into
    // private gather/result buffers and write back conflict-free.
    for (std::size_t o = 0; o < offsets_.size(); ++o) {
        const auto& pairs = rb.pairs[o];
        if (pairs.empty())
            continue;
        const Mat& w = w_[o].w;
        auto execute = [&](u64 begin, u64 end) {
            // Shift both ends forward past any run of the previous chunk's
            // trailing output site; the same rule on both sides yields an
            // exact partition of the list.
            while (begin > 0 && begin < pairs.size() &&
                   pairs[begin].second == pairs[begin - 1].second)
                ++begin;
            while (end < pairs.size() &&
                   pairs[end].second == pairs[end - 1].second)
                ++end;
            if (begin >= end)
                return;
            u32 n = static_cast<u32>(end - begin);
            Mat gather(n, inCh_);
            for (u32 r = 0; r < n; ++r) {
                const float* src = in_feats_.row(pairs[begin + r].first);
                std::copy(src, src + inCh_, gather.row(r));
            }
            Mat partial(n, outCh_);
            matmulAccSerial(gather, w, partial);
            for (u32 r = 0; r < n; ++r) {
                float* orow = out.feats.row(pairs[begin + r].second);
                const float* prow = partial.row(r);
                for (u32 co = 0; co < outCh_; ++co)
                    orow[co] += prow[co];
            }
        };
        u64 flops = u64(pairs.size()) * inCh_ * outCh_;
        if (flops >= kParallelPairFlops && globalPool().workers() > 0 &&
            pairs.size() > kPairChunk) {
            globalPool().parallelFor(pairs.size(), kPairChunk,
                                     globalPool().workers() + 1, execute);
        } else {
            execute(0, pairs.size());
        }
    }
    return out;
}

SparseMap
SparseConv::forward(const SparseMap& in)
{
    own_ = buildRulebook(in.coords);
    return forward(in, own_);
}

Mat
SparseConv::backward(const Mat& d_out)
{
    panicIf(!active_, "SparseConv::backward without a forward");
    const Rulebook& rb = *active_;
    Mat d_in(rb.inSites, inCh_);
    for (u32 q = 0; q < d_out.rows; ++q) {
        const float* drow = d_out.row(q);
        for (u32 c = 0; c < outCh_; ++c)
            b_.g.at(0, c) += drow[c];
    }
    for (std::size_t o = 0; o < offsets_.size(); ++o) {
        const Mat& w = w_[o].w;
        Mat& gw = w_[o].g;
        for (const auto& [pi, qi] : rb.pairs[o]) {
            const float* irow = in_feats_.row(pi);
            const float* drow = d_out.row(qi);
            float* dirow = d_in.row(pi);
            for (u32 ci = 0; ci < inCh_; ++ci) {
                const float* wrow = w.row(ci);
                float* gwrow = gw.row(ci);
                float x = irow[ci];
                float acc = 0.0f;
                for (u32 co = 0; co < outCh_; ++co) {
                    acc += drow[co] * wrow[co];
                    gwrow[co] += x * drow[co];
                }
                dirow[ci] += acc;
            }
        }
    }
    return d_in;
}

void
SparseConv::collectParams(std::vector<Param*>& out)
{
    for (auto& w : w_)
        out.push_back(&w);
    out.push_back(&b_);
}

u64
RulebookCache::fingerprint(const std::vector<std::array<i32, 3>>& coords)
{
    u64 h = 0xcbf29ce484222325ull ^ coords.size();
    for (const auto& c : coords) {
        for (i32 x : c) {
            h ^= static_cast<u64>(static_cast<u32>(x));
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

const std::vector<Rulebook>&
RulebookCache::chain(const std::vector<std::array<i32, 3>>& coords,
                     std::vector<SparseConv>& convs)
{
    auto build = [&](std::vector<Rulebook>& out) {
        out.clear();
        out.reserve(convs.size());
        const std::vector<std::array<i32, 3>>* cur = &coords;
        for (auto& conv : convs) {
            out.push_back(conv.buildRulebook(*cur));
            cur = &out.back().outCoords;
        }
    };

    if (!rulebookCacheEnabled()) {
        ++misses_;
        WACO_COUNT("rulebook.misses", 1);
        build(scratch_);
        return scratch_;
    }

    u64 key = fingerprint(coords);
    if (auto it = index_.find(key); it != index_.end()) {
        ++hits_;
        WACO_COUNT("rulebook.hits", 1);
        lru_.splice(lru_.begin(), lru_, it->second);
        return lru_.front().chain;
    }

    ++misses_;
    WACO_COUNT("rulebook.misses", 1);
    Entry e;
    e.key = key;
    build(e.chain);
    for (const auto& rb : e.chain)
        e.pairEntries += rb.pairCount();
    totalPairs_ += e.pairEntries;
    lru_.push_front(std::move(e));
    index_[key] = lru_.begin();
    while (totalPairs_ > pairBudget_ && lru_.size() > 1) {
        totalPairs_ -= lru_.back().pairEntries;
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
        WACO_COUNT("rulebook.evictions", 1);
    }
    return lru_.front().chain;
}

void
RulebookCache::clear()
{
    lru_.clear();
    index_.clear();
    scratch_.clear();
    totalPairs_ = 0;
}

Mat
GlobalAvgPool::forward(const SparseMap& in)
{
    sites_ = in.numSites();
    channels_ = in.feats.cols;
    Mat out(1, channels_);
    if (sites_ == 0)
        return out;
    for (u32 r = 0; r < sites_; ++r) {
        const float* row = in.feats.row(r);
        for (u32 c = 0; c < channels_; ++c)
            out.at(0, c) += row[c];
    }
    for (u32 c = 0; c < channels_; ++c)
        out.at(0, c) /= static_cast<float>(sites_);
    return out;
}

Mat
GlobalAvgPool::backward(const Mat& d_out)
{
    Mat d_in(sites_, channels_);
    if (sites_ == 0)
        return d_in;
    for (u32 r = 0; r < sites_; ++r) {
        float* row = d_in.row(r);
        for (u32 c = 0; c < channels_; ++c)
            row[c] = d_out.at(0, c) / static_cast<float>(sites_);
    }
    return d_in;
}

} // namespace waco::nn
