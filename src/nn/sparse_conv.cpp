#include "nn/sparse_conv.hpp"

namespace waco::nn {

namespace {

/** Hash a D-dimensional integer coordinate. */
struct CoordHash
{
    std::size_t
    operator()(const std::array<i32, 3>& c) const
    {
        u64 h = 0xcbf29ce484222325ull;
        for (i32 x : c) {
            h ^= static_cast<u64>(static_cast<u32>(x));
            h *= 0x100000001b3ull;
            h ^= h >> 31;
        }
        return static_cast<std::size_t>(h);
    }
};

using CoordMap = std::unordered_map<std::array<i32, 3>, u32, CoordHash>;

} // namespace

SparseConv::SparseConv(u32 dim, u32 kernel, u32 stride, u32 in_ch, u32 out_ch,
                       Rng& rng)
    : dim_(dim), kernel_(kernel), stride_(stride), inCh_(in_ch), outCh_(out_ch)
{
    fatalIf(kernel % 2 == 0, "sparse conv kernel must be odd");
    fatalIf(stride != 1 && stride != 2, "sparse conv stride must be 1 or 2");
    i32 half = static_cast<i32>(kernel) / 2;
    std::array<i32, 3> off = {0, 0, 0};
    // Enumerate the D-dimensional offset cube.
    std::vector<std::array<i32, 3>> offsets;
    auto enumerate = [&](auto&& self, u32 d) -> void {
        if (d == dim) {
            offsets.push_back(off);
            return;
        }
        for (i32 x = -half; x <= half; ++x) {
            off[d] = x;
            self(self, d + 1);
        }
    };
    enumerate(enumerate, 0);
    offsets_ = std::move(offsets);
    u32 fan_in = in_ch * static_cast<u32>(offsets_.size());
    for (std::size_t o = 0; o < offsets_.size(); ++o) {
        w_.emplace_back(in_ch, out_ch);
        w_.back().init(rng, fan_in);
    }
    b_ = Param(1, out_ch);
    b_.init(rng, fan_in);
}

SparseMap
SparseConv::forward(const SparseMap& in)
{
    panicIf(in.feats.cols != inCh_, "sparse conv channel mismatch");
    in_feats_ = in.feats;
    in_sites_ = in.numSites();

    SparseMap out;
    out.dim = in.dim;

    CoordMap out_index;
    out_index.reserve(in.numSites() * 2);

    if (stride_ == 1) {
        // Submanifold: output sites == input sites.
        out.coords = in.coords;
        for (u32 i = 0; i < in.numSites(); ++i)
            out_index.emplace(in.coords[i], i);
    } else {
        // Strided (MinkowskiEngine semantics): output sites live on the
        // coarse grid at floor(p / stride), so each layer strictly
        // coarsens the coordinate space.
        auto floor_div = [](i32 x, i32 s) {
            return x >= 0 ? x / s : -((-x + s - 1) / s);
        };
        for (u32 i = 0; i < in.numSites(); ++i) {
            std::array<i32, 3> t = {0, 0, 0};
            for (u32 d = 0; d < dim_; ++d)
                t[d] = floor_div(in.coords[i][d], static_cast<i32>(stride_));
            if (out_index.emplace(t, static_cast<u32>(out.coords.size()))
                    .second) {
                out.coords.push_back(t);
            }
        }
    }

    // Gather pair lists per offset: input p contributes to output q when
    // p == q*stride + off.
    pairs_.assign(offsets_.size(), {});
    CoordMap in_index;
    in_index.reserve(in.numSites() * 2);
    for (u32 i = 0; i < in.numSites(); ++i)
        in_index.emplace(in.coords[i], i);

    for (u32 q = 0; q < out.coords.size(); ++q) {
        for (std::size_t o = 0; o < offsets_.size(); ++o) {
            std::array<i32, 3> p = {0, 0, 0};
            for (u32 d = 0; d < dim_; ++d) {
                p[d] = out.coords[q][d] * static_cast<i32>(stride_) +
                       offsets_[o][d];
            }
            auto it = in_index.find(p);
            if (it != in_index.end())
                pairs_[o].push_back({it->second, q});
        }
    }

    out.feats = Mat(static_cast<u32>(out.coords.size()), outCh_);
    for (u32 q = 0; q < out.feats.rows; ++q) {
        float* orow = out.feats.row(q);
        for (u32 c = 0; c < outCh_; ++c)
            orow[c] = b_.w.at(0, c);
    }
    for (std::size_t o = 0; o < offsets_.size(); ++o) {
        const Mat& w = w_[o].w;
        for (const auto& [pi, qi] : pairs_[o]) {
            const float* irow = in_feats_.row(pi);
            float* orow = out.feats.row(qi);
            for (u32 ci = 0; ci < inCh_; ++ci) {
                float x = irow[ci];
                if (x == 0.0f)
                    continue;
                const float* wrow = w.row(ci);
                for (u32 co = 0; co < outCh_; ++co)
                    orow[co] += x * wrow[co];
            }
        }
    }
    return out;
}

Mat
SparseConv::backward(const Mat& d_out)
{
    Mat d_in(in_sites_, inCh_);
    for (u32 q = 0; q < d_out.rows; ++q) {
        const float* drow = d_out.row(q);
        for (u32 c = 0; c < outCh_; ++c)
            b_.g.at(0, c) += drow[c];
    }
    for (std::size_t o = 0; o < offsets_.size(); ++o) {
        const Mat& w = w_[o].w;
        Mat& gw = w_[o].g;
        for (const auto& [pi, qi] : pairs_[o]) {
            const float* irow = in_feats_.row(pi);
            const float* drow = d_out.row(qi);
            float* dirow = d_in.row(pi);
            for (u32 ci = 0; ci < inCh_; ++ci) {
                const float* wrow = w.row(ci);
                float* gwrow = gw.row(ci);
                float x = irow[ci];
                float acc = 0.0f;
                for (u32 co = 0; co < outCh_; ++co) {
                    acc += drow[co] * wrow[co];
                    gwrow[co] += x * drow[co];
                }
                dirow[ci] += acc;
            }
        }
    }
    return d_in;
}

void
SparseConv::collectParams(std::vector<Param*>& out)
{
    for (auto& w : w_)
        out.push_back(&w);
    out.push_back(&b_);
}

Mat
GlobalAvgPool::forward(const SparseMap& in)
{
    sites_ = in.numSites();
    channels_ = in.feats.cols;
    Mat out(1, channels_);
    if (sites_ == 0)
        return out;
    for (u32 r = 0; r < sites_; ++r) {
        const float* row = in.feats.row(r);
        for (u32 c = 0; c < channels_; ++c)
            out.at(0, c) += row[c];
    }
    for (u32 c = 0; c < channels_; ++c)
        out.at(0, c) /= static_cast<float>(sites_);
    return out;
}

Mat
GlobalAvgPool::backward(const Mat& d_out)
{
    Mat d_in(sites_, channels_);
    if (sites_ == 0)
        return d_in;
    for (u32 r = 0; r < sites_; ++r) {
        float* row = d_in.row(r);
        for (u32 c = 0; c < channels_; ++c)
            row[c] = d_out.at(0, c) / static_cast<float>(sites_);
    }
    return d_in;
}

} // namespace waco::nn
