/**
 * @file
 * Binary (de)serialization of model parameters, so trained cost models can
 * be saved once and reused by examples and benches.
 */
#pragma once

#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace waco::nn {

/** Write all parameter tensors to @p path. Format: magic, count, then
 *  (rows, cols, floats) per parameter in registration order. */
void saveParams(const std::vector<Param*>& params, const std::string& path);

/** Load parameters saved by saveParams into an identically-shaped model.
 *  @throws FatalError on shape or magic mismatch. */
void loadParams(const std::vector<Param*>& params, const std::string& path);

} // namespace waco::nn
