/**
 * @file
 * Dense neural-network building blocks with explicit forward/backward
 * (no autograd): Param, Linear, ReLU, MLP, and embedding lookup tables.
 * Every layer caches the activations of its most recent forward, so one
 * forward must be followed by at most one backward.
 */
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "nn/mat.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace waco::nn {

/** A learnable tensor with its gradient accumulator. */
struct Param
{
    Mat w;
    Mat g;

    Param() = default;
    Param(u32 rows, u32 cols) : w(rows, cols), g(rows, cols) {}

    /** Kaiming-uniform style init scaled by fan-in. */
    void
    init(Rng& rng, u32 fan_in)
    {
        float bound = fan_in ? 1.0f / std::sqrt(static_cast<float>(fan_in))
                             : 0.1f;
        for (auto& x : w.v)
            x = static_cast<float>(rng.uniformReal(-bound, bound));
        g.zero();
    }

    void zeroGrad() { g.zero(); }
};

/** y = x W^T + b, with x of shape [N, in]. */
class Linear
{
  public:
    Linear() = default;
    Linear(u32 in, u32 out, Rng& rng) : w_(out, in), b_(1, out)
    {
        w_.init(rng, in);
        b_.init(rng, in);
    }

    u32 inDim() const { return w_.w.cols; }
    u32 outDim() const { return w_.w.rows; }

    /** Forward pass; caches x for backward. */
    Mat forward(const Mat& x);

    /** Forward without caching activations — inference only, const, no
     *  backward possible afterwards. */
    Mat inference(const Mat& x) const;

    /** Backward pass: accumulates dW/db and returns dx. */
    Mat backward(const Mat& dy);

    const Mat& weight() const { return w_.w; } ///< [out x in].
    const Mat& bias() const { return b_.w; }   ///< [1 x out].

    void
    collectParams(std::vector<Param*>& out)
    {
        out.push_back(&w_);
        out.push_back(&b_);
    }

  private:
    Param w_;
    Param b_;
    Mat x_; // cached input
};

/** Elementwise max(0, x). */
class ReLU
{
  public:
    Mat forward(const Mat& x);
    Mat backward(const Mat& dy);

  private:
    Mat x_;
};

/** Linear-ReLU stack with a linear final layer. */
class MLP
{
  public:
    MLP() = default;
    /** @param dims layer widths, e.g. {448, 128, 128} -> two linears. */
    MLP(const std::vector<u32>& dims, Rng& rng);

    Mat forward(const Mat& x);
    Mat backward(const Mat& dy);

    /** Forward without caching activations (inference only, const). */
    Mat inference(const Mat& x) const;

    /**
     * Inference given the FIRST layer's pre-activation (x W0^T + b0)
     * already computed: applies the first ReLU then the remaining layers.
     * Lets callers that know part of x is constant (the broadcast feature
     * row of the runtime predictor) hoist its W0 partial product out of
     * the per-batch work.
     */
    Mat inferenceFromFirstPreact(Mat y1) const;

    u32 outDim() const { return layers_.back().outDim(); }
    const Linear& firstLayer() const { return layers_.front(); }
    void collectParams(std::vector<Param*>& out);

  private:
    std::vector<Linear> layers_;
    std::vector<ReLU> relus_;
};

/** Learnable lookup table mapping categorical ids to embedding vectors
 *  (the green boxes of Figure 11). */
class Embedding
{
  public:
    Embedding() = default;
    Embedding(u32 vocab, u32 dim, Rng& rng) : table_(vocab, dim)
    {
        table_.init(rng, dim);
    }

    u32 dim() const { return table_.w.cols; }

    /** Gather rows for a batch of ids. */
    Mat forward(const std::vector<u32>& ids);

    /** Scatter-accumulate gradients into the table. */
    void backward(const Mat& dy);

    void collectParams(std::vector<Param*>& out) { out.push_back(&table_); }

  private:
    Param table_;
    std::vector<u32> ids_;
};

} // namespace waco::nn
