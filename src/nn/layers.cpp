#include "nn/layers.hpp"

namespace waco::nn {

Mat
Linear::forward(const Mat& x)
{
    panicIf(x.cols != w_.w.cols, "Linear input width mismatch");
    x_ = x;
    Mat y;
    matmulNT(x, w_.w, y);
    for (u32 r = 0; r < y.rows; ++r) {
        float* yr = y.row(r);
        for (u32 c = 0; c < y.cols; ++c)
            yr[c] += b_.w.at(0, c);
    }
    return y;
}

Mat
Linear::inference(const Mat& x) const
{
    panicIf(x.cols != w_.w.cols, "Linear input width mismatch");
    Mat y;
    matmulNT(x, w_.w, y);
    for (u32 r = 0; r < y.rows; ++r) {
        float* yr = y.row(r);
        for (u32 c = 0; c < y.cols; ++c)
            yr[c] += b_.w.at(0, c);
    }
    return y;
}

Mat
Linear::backward(const Mat& dy)
{
    panicIf(dy.cols != w_.w.rows || dy.rows != x_.rows,
            "Linear backward shape mismatch");
    // dW += dy^T x ; db += colsum(dy); dx = dy W
    Mat dw;
    matmulTN(dy, x_, dw);
    for (std::size_t i = 0; i < dw.v.size(); ++i)
        w_.g.v[i] += dw.v[i];
    for (u32 r = 0; r < dy.rows; ++r)
        for (u32 c = 0; c < dy.cols; ++c)
            b_.g.at(0, c) += dy.at(r, c);
    Mat dx;
    matmul(dy, w_.w, dx);
    return dx;
}

Mat
ReLU::forward(const Mat& x)
{
    x_ = x;
    Mat y = x;
    for (auto& v : y.v)
        v = v > 0.0f ? v : 0.0f;
    return y;
}

Mat
ReLU::backward(const Mat& dy)
{
    Mat dx = dy;
    for (std::size_t i = 0; i < dx.v.size(); ++i) {
        if (x_.v[i] <= 0.0f)
            dx.v[i] = 0.0f;
    }
    return dx;
}

MLP::MLP(const std::vector<u32>& dims, Rng& rng)
{
    fatalIf(dims.size() < 2, "MLP needs at least one layer");
    for (std::size_t l = 0; l + 1 < dims.size(); ++l)
        layers_.emplace_back(dims[l], dims[l + 1], rng);
    relus_.resize(layers_.size() - 1);
}

Mat
MLP::forward(const Mat& x)
{
    Mat h = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        h = layers_[l].forward(h);
        if (l + 1 < layers_.size())
            h = relus_[l].forward(h);
    }
    return h;
}

Mat
MLP::inference(const Mat& x) const
{
    Mat h = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        h = layers_[l].inference(h);
        if (l + 1 < layers_.size()) {
            for (auto& v : h.v)
                v = v > 0.0f ? v : 0.0f;
        }
    }
    return h;
}

Mat
MLP::inferenceFromFirstPreact(Mat y1) const
{
    panicIf(y1.cols != layers_.front().outDim(),
            "first-layer preactivation width mismatch");
    if (layers_.size() > 1) {
        for (auto& v : y1.v)
            v = v > 0.0f ? v : 0.0f;
    }
    Mat h = std::move(y1);
    for (std::size_t l = 1; l < layers_.size(); ++l) {
        h = layers_[l].inference(h);
        if (l + 1 < layers_.size()) {
            for (auto& v : h.v)
                v = v > 0.0f ? v : 0.0f;
        }
    }
    return h;
}

Mat
MLP::backward(const Mat& dy)
{
    Mat d = dy;
    for (std::size_t l = layers_.size(); l-- > 0;) {
        if (l + 1 < layers_.size())
            d = relus_[l].backward(d);
        d = layers_[l].backward(d);
    }
    return d;
}

void
MLP::collectParams(std::vector<Param*>& out)
{
    for (auto& l : layers_)
        l.collectParams(out);
}

Mat
Embedding::forward(const std::vector<u32>& ids)
{
    ids_ = ids;
    Mat y(static_cast<u32>(ids.size()), table_.w.cols);
    for (u32 r = 0; r < y.rows; ++r) {
        panicIf(ids[r] >= table_.w.rows, "embedding id out of range");
        const float* src = table_.w.row(ids[r]);
        std::copy(src, src + table_.w.cols, y.row(r));
    }
    return y;
}

void
Embedding::backward(const Mat& dy)
{
    panicIf(dy.rows != static_cast<u32>(ids_.size()) ||
                dy.cols != table_.w.cols,
            "embedding backward shape mismatch");
    for (u32 r = 0; r < dy.rows; ++r) {
        float* grow = table_.g.row(ids_[r]);
        const float* drow = dy.row(r);
        for (u32 c = 0; c < dy.cols; ++c)
            grow[c] += drow[c];
    }
}

} // namespace waco::nn
