#include "nn/mat.hpp"

#include <atomic>

#include "util/thread_pool.hpp"

namespace waco::nn {

namespace naive {

void
matmul(const Mat& a, const Mat& b, Mat& c)
{
    c = Mat(a.rows, b.cols);
    naive::matmulAcc(a, b, c);
}

void
matmulAcc(const Mat& a, const Mat& b, Mat& c)
{
    panicIf(a.cols != b.rows || c.rows != a.rows || c.cols != b.cols,
            "matmul shape mismatch");
    for (u32 i = 0; i < a.rows; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (u32 k = 0; k < a.cols; ++k) {
            float av = arow[k];
            if (av == 0.0f)
                continue;
            const float* brow = b.row(k);
            for (u32 j = 0; j < b.cols; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulTN(const Mat& a, const Mat& b, Mat& c)
{
    panicIf(a.rows != b.rows, "matmulTN shape mismatch");
    c = Mat(a.cols, b.cols);
    for (u32 k = 0; k < a.rows; ++k) {
        const float* arow = a.row(k);
        const float* brow = b.row(k);
        for (u32 i = 0; i < a.cols; ++i) {
            float av = arow[i];
            if (av == 0.0f)
                continue;
            float* crow = c.row(i);
            for (u32 j = 0; j < b.cols; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulNT(const Mat& a, const Mat& b, Mat& c)
{
    panicIf(a.cols != b.cols, "matmulNT shape mismatch");
    c = Mat(a.rows, b.rows);
    for (u32 i = 0; i < a.rows; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (u32 j = 0; j < b.rows; ++j) {
            const float* brow = b.row(j);
            float acc = 0.0f;
            for (u32 k = 0; k < a.cols; ++k)
                acc += arow[k] * brow[k];
            crow[j] = acc;
        }
    }
}

} // namespace naive

namespace {

std::atomic<GemmKind> g_gemm_kind{GemmKind::Blocked};

/** Minimum multiply-adds before a kernel considers ThreadPool panels: tiny
 *  GEMMs (predictor heads, single schedules) must not pay hand-off cost. */
constexpr u64 kParallelFlopThreshold = u64(1) << 21;

/** Rows per ThreadPool chunk for panel-parallel kernels. */
constexpr u64 kPanelRows = 64;

u32
panelThreads()
{
    return globalPool().workers() + 1;
}

/**
 * Saxpy micro-kernel: C[i0..i0+mr) += A[i0..i0+mr) * B over the full k/j
 * extent. mr is 4 (register block) with a remainder path. The j-loops are
 * branch-free contiguous updates, the form the vectorizer handles; each
 * B row is streamed once per 4 output rows instead of once per row.
 */
void
accPanel(const Mat& a, const Mat& b, Mat& c, u32 row_begin, u32 row_end)
{
    const u32 kk = a.cols;
    const u32 nn = b.cols;
    u32 i = row_begin;
    for (; i + 4 <= row_end; i += 4) {
        const float* a0 = a.row(i);
        const float* a1 = a.row(i + 1);
        const float* a2 = a.row(i + 2);
        const float* a3 = a.row(i + 3);
        float* c0 = c.row(i);
        float* c1 = c.row(i + 1);
        float* c2 = c.row(i + 2);
        float* c3 = c.row(i + 3);
        for (u32 k = 0; k < kk; ++k) {
            const float* brow = b.row(k);
            float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
            for (u32 j = 0; j < nn; ++j) {
                float bj = brow[j];
                c0[j] += v0 * bj;
                c1[j] += v1 * bj;
                c2[j] += v2 * bj;
                c3[j] += v3 * bj;
            }
        }
    }
    for (; i < row_end; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (u32 k = 0; k < kk; ++k) {
            const float* brow = b.row(k);
            float v = arow[k];
            for (u32 j = 0; j < nn; ++j)
                crow[j] += v * brow[j];
        }
    }
}

/**
 * Pack B (given as [n x k], i.e. the transpose of the right operand) into a
 * thread-local [k x n] scratch so C = A * B^T can run through the saxpy
 * kernel. Dot-product NT kernels force a horizontal reduction per element,
 * which the vectorizer handles far worse than the saxpy form's contiguous
 * j-updates; the O(k*n) pack amortizes against the O(m*k*n) multiply. The
 * saxpy kernel accumulates every C element in ascending-k order no matter
 * how rows are blocked, so NT results are bitwise-identical across batch
 * splits — the property batched-vs-scalar search identity rests on.
 */
const Mat&
packTransposed(const Mat& bt)
{
    static thread_local Mat pack;
    if (pack.rows != bt.cols || pack.cols != bt.rows)
        pack = Mat(bt.cols, bt.rows);
    for (u32 j = 0; j < bt.rows; ++j) {
        const float* src = bt.row(j);
        for (u32 k = 0; k < bt.cols; ++k)
            pack.at(k, j) = src[k];
    }
    return pack;
}

/** Rank-block micro-kernel for C += A^T * B over a C-row (A-column) panel. */
void
tnPanel(const Mat& a, const Mat& b, Mat& c, u32 row_begin, u32 row_end)
{
    const u32 kk = a.rows;
    const u32 nn = b.cols;
    u32 i = row_begin;
    for (; i + 4 <= row_end; i += 4) {
        float* c0 = c.row(i);
        float* c1 = c.row(i + 1);
        float* c2 = c.row(i + 2);
        float* c3 = c.row(i + 3);
        for (u32 k = 0; k < kk; ++k) {
            const float* arow = a.row(k);
            const float* brow = b.row(k);
            float v0 = arow[i], v1 = arow[i + 1];
            float v2 = arow[i + 2], v3 = arow[i + 3];
            for (u32 j = 0; j < nn; ++j) {
                float bj = brow[j];
                c0[j] += v0 * bj;
                c1[j] += v1 * bj;
                c2[j] += v2 * bj;
                c3[j] += v3 * bj;
            }
        }
    }
    for (; i < row_end; ++i) {
        float* crow = c.row(i);
        for (u32 k = 0; k < kk; ++k) {
            float v = a.at(k, i);
            const float* brow = b.row(k);
            for (u32 j = 0; j < nn; ++j)
                crow[j] += v * brow[j];
        }
    }
}

/** Run @p panel over C's rows, through the pool when the job is big. */
template <typename Panel>
void
runPanels(u32 rows, u64 flops, bool allow_parallel, Panel&& panel)
{
    if (allow_parallel && flops >= kParallelFlopThreshold &&
        globalPool().workers() > 0 && rows > kPanelRows) {
        globalPool().parallelFor(rows, kPanelRows, panelThreads(),
                                 [&](u64 begin, u64 end) {
            panel(static_cast<u32>(begin), static_cast<u32>(end));
        });
    } else {
        panel(0, rows);
    }
}

void
accImpl(const Mat& a, const Mat& b, Mat& c, bool allow_parallel)
{
    panicIf(a.cols != b.rows || c.rows != a.rows || c.cols != b.cols,
            "matmul shape mismatch");
    u64 flops = u64(a.rows) * a.cols * b.cols;
    runPanels(a.rows, flops, allow_parallel, [&](u32 lo, u32 hi) {
        accPanel(a, b, c, lo, hi);
    });
}

} // namespace

void
setGemmKind(GemmKind kind)
{
    g_gemm_kind.store(kind, std::memory_order_relaxed);
}

GemmKind
gemmKind()
{
    return g_gemm_kind.load(std::memory_order_relaxed);
}

void
matmul(const Mat& a, const Mat& b, Mat& c)
{
    if (gemmKind() == GemmKind::Naive) {
        naive::matmul(a, b, c);
        return;
    }
    c = Mat(a.rows, b.cols);
    accImpl(a, b, c, /*allow_parallel=*/true);
}

void
matmulAcc(const Mat& a, const Mat& b, Mat& c)
{
    if (gemmKind() == GemmKind::Naive) {
        naive::matmulAcc(a, b, c);
        return;
    }
    accImpl(a, b, c, /*allow_parallel=*/true);
}

void
matmulAccSerial(const Mat& a, const Mat& b, Mat& c)
{
    if (gemmKind() == GemmKind::Naive) {
        naive::matmulAcc(a, b, c);
        return;
    }
    accImpl(a, b, c, /*allow_parallel=*/false);
}

void
matmulTN(const Mat& a, const Mat& b, Mat& c)
{
    if (gemmKind() == GemmKind::Naive) {
        naive::matmulTN(a, b, c);
        return;
    }
    panicIf(a.rows != b.rows, "matmulTN shape mismatch");
    c = Mat(a.cols, b.cols);
    u64 flops = u64(a.rows) * a.cols * b.cols;
    runPanels(a.cols, flops, /*allow_parallel=*/true, [&](u32 lo, u32 hi) {
        tnPanel(a, b, c, lo, hi);
    });
}

void
matmulNT(const Mat& a, const Mat& b, Mat& c)
{
    if (gemmKind() == GemmKind::Naive) {
        naive::matmulNT(a, b, c);
        return;
    }
    panicIf(a.cols != b.cols, "matmulNT shape mismatch");
    c = Mat(a.rows, b.rows);
    const Mat& packed = packTransposed(b);
    u64 flops = u64(a.rows) * a.cols * b.rows;
    runPanels(a.rows, flops, /*allow_parallel=*/true, [&](u32 lo, u32 hi) {
        accPanel(a, packed, c, lo, hi);
    });
}

} // namespace waco::nn
