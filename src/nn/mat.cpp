#include "nn/mat.hpp"

namespace waco::nn {

void
matmul(const Mat& a, const Mat& b, Mat& c)
{
    c = Mat(a.rows, b.cols);
    matmulAcc(a, b, c);
}

void
matmulAcc(const Mat& a, const Mat& b, Mat& c)
{
    panicIf(a.cols != b.rows || c.rows != a.rows || c.cols != b.cols,
            "matmul shape mismatch");
    for (u32 i = 0; i < a.rows; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (u32 k = 0; k < a.cols; ++k) {
            float av = arow[k];
            if (av == 0.0f)
                continue;
            const float* brow = b.row(k);
            for (u32 j = 0; j < b.cols; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulTN(const Mat& a, const Mat& b, Mat& c)
{
    panicIf(a.rows != b.rows, "matmulTN shape mismatch");
    c = Mat(a.cols, b.cols);
    for (u32 k = 0; k < a.rows; ++k) {
        const float* arow = a.row(k);
        const float* brow = b.row(k);
        for (u32 i = 0; i < a.cols; ++i) {
            float av = arow[i];
            if (av == 0.0f)
                continue;
            float* crow = c.row(i);
            for (u32 j = 0; j < b.cols; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulNT(const Mat& a, const Mat& b, Mat& c)
{
    panicIf(a.cols != b.cols, "matmulNT shape mismatch");
    c = Mat(a.rows, b.rows);
    for (u32 i = 0; i < a.rows; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (u32 j = 0; j < b.rows; ++j) {
            const float* brow = b.row(j);
            float acc = 0.0f;
            for (u32 k = 0; k < a.cols; ++k)
                acc += arow[k] * brow[k];
            crow[j] = acc;
        }
    }
}

} // namespace waco::nn
