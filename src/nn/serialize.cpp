#include "nn/serialize.hpp"

#include <cstdio>
#include <fstream>

#include "util/common.hpp"

namespace waco::nn {

namespace {
constexpr u32 kMagic = 0x57414321; // "WAC!"
}

void
saveParams(const std::vector<Param*>& params, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open for writing: " + path);
    u32 count = static_cast<u32>(params.size());
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Param* p : params) {
        out.write(reinterpret_cast<const char*>(&p->w.rows), sizeof(u32));
        out.write(reinterpret_cast<const char*>(&p->w.cols), sizeof(u32));
        out.write(reinterpret_cast<const char*>(p->w.v.data()),
                  static_cast<std::streamsize>(p->w.v.size() * sizeof(float)));
    }
    fatalIf(!out, "write failed: " + path);
}

void
loadParams(const std::vector<Param*>& params, const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open for reading: " + path);
    u32 magic = 0, count = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    fatalIf(magic != kMagic, "bad model file magic: " + path);
    fatalIf(count != params.size(), "parameter count mismatch: " + path);
    for (Param* p : params) {
        u32 rows = 0, cols = 0;
        in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
        in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
        fatalIf(!in, "truncated model file: " + path);
        fatalIf(rows != p->w.rows || cols != p->w.cols,
                "parameter shape mismatch: " + path);
        in.read(reinterpret_cast<char*>(p->w.v.data()),
                static_cast<std::streamsize>(p->w.v.size() * sizeof(float)));
        fatalIf(!in || in.gcount() != static_cast<std::streamsize>(
                                          p->w.v.size() * sizeof(float)),
                "truncated model file: " + path);
    }
    // A file longer than the model it claims to hold is just as corrupt as
    // a truncated one: it would silently load a partially-garbage model if
    // the caller's parameter list were shorter than the writer's.
    in.peek();
    fatalIf(!in.eof(), "trailing bytes in model file: " + path);
}

} // namespace waco::nn
