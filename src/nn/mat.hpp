/**
 * @file
 * Minimal dense row-major float matrix used by the neural-network stack.
 * Deliberately separate from tensor/dense.hpp: kernels there model the
 * *workload*; this type is plumbing for the cost model's own math.
 */
#pragma once

#include <algorithm>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace waco::nn {

/** Row-major float matrix. */
struct Mat
{
    u32 rows = 0;
    u32 cols = 0;
    std::vector<float> v;

    Mat() = default;
    Mat(u32 r, u32 c, float fill = 0.0f) : rows(r), cols(c), v(static_cast<std::size_t>(r) * c, fill) {}

    float& at(u32 r, u32 c) { return v[static_cast<std::size_t>(r) * cols + c]; }
    float at(u32 r, u32 c) const { return v[static_cast<std::size_t>(r) * cols + c]; }
    float* row(u32 r) { return v.data() + static_cast<std::size_t>(r) * cols; }
    const float* row(u32 r) const { return v.data() + static_cast<std::size_t>(r) * cols; }

    void zero() { std::fill(v.begin(), v.end(), 0.0f); }
};

/** C = A * B (rows_a x cols_b). */
void matmul(const Mat& a, const Mat& b, Mat& c);

/** C = A^T * B. */
void matmulTN(const Mat& a, const Mat& b, Mat& c);

/** C = A * B^T. */
void matmulNT(const Mat& a, const Mat& b, Mat& c);

/** C += A * B. */
void matmulAcc(const Mat& a, const Mat& b, Mat& c);

} // namespace waco::nn
