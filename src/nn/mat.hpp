/**
 * @file
 * Minimal dense row-major float matrix used by the neural-network stack.
 * Deliberately separate from tensor/dense.hpp: kernels there model the
 * *workload*; this type is plumbing for the cost model's own math.
 *
 * The matmul family dispatches to register-blocked, cache-friendly kernels
 * whose inner loops are written for autovectorization (contiguous j-loops
 * for the saxpy forms, explicit float lanes for the dot-product form).
 * Large row panels are farmed out to the process-wide ThreadPool. The
 * original scalar implementations are kept verbatim under nn::naive as
 * differential-test references, and setGemmKind(GemmKind::Naive) routes
 * every call through them so benches can measure old-vs-new on identical
 * call sites.
 *
 * Summation order differs between the blocked and naive kernels, so results
 * agree exactly only when products and partial sums are exactly
 * representable (e.g. integer-valued floats — what the differential tests
 * use) and to rounding error otherwise.
 */
#pragma once

#include <algorithm>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace waco::nn {

/** Row-major float matrix. */
struct Mat
{
    u32 rows = 0;
    u32 cols = 0;
    std::vector<float> v;

    Mat() = default;
    Mat(u32 r, u32 c, float fill = 0.0f) : rows(r), cols(c), v(static_cast<std::size_t>(r) * c, fill) {}

    float& at(u32 r, u32 c) { return v[static_cast<std::size_t>(r) * cols + c]; }
    float at(u32 r, u32 c) const { return v[static_cast<std::size_t>(r) * cols + c]; }
    float* row(u32 r) { return v.data() + static_cast<std::size_t>(r) * cols; }
    const float* row(u32 r) const { return v.data() + static_cast<std::size_t>(r) * cols; }

    void zero() { std::fill(v.begin(), v.end(), 0.0f); }
};

/** C = A * B (rows_a x cols_b). */
void matmul(const Mat& a, const Mat& b, Mat& c);

/** C = A^T * B. */
void matmulTN(const Mat& a, const Mat& b, Mat& c);

/** C = A * B^T. */
void matmulNT(const Mat& a, const Mat& b, Mat& c);

/** C += A * B. */
void matmulAcc(const Mat& a, const Mat& b, Mat& c);

/**
 * C += A * B, never using the ThreadPool. Required inside
 * ThreadPool::parallelFor bodies: parallelFor is not reentrant, so a
 * worker spawning a nested parallel matmul would deadlock on the caller
 * mutex.
 */
void matmulAccSerial(const Mat& a, const Mat& b, Mat& c);

/** Which kernel family the matmul entry points dispatch to. */
enum class GemmKind
{
    Blocked, ///< Register-blocked + ThreadPool panels (default).
    Naive,   ///< The original scalar loops (nn::naive), for benches.
};

/** Process-wide kernel selection (benches flip it for old-vs-new rows). */
void setGemmKind(GemmKind kind);
GemmKind gemmKind();

/** The pre-optimization scalar kernels, kept as differential references. */
namespace naive {
void matmul(const Mat& a, const Mat& b, Mat& c);
void matmulTN(const Mat& a, const Mat& b, Mat& c);
void matmulNT(const Mat& a, const Mat& b, Mat& c);
void matmulAcc(const Mat& a, const Mat& b, Mat& c);
} // namespace naive

} // namespace waco::nn
