/**
 * @file
 * Pairwise ranking losses for cost-model training (Section 4.1.3).
 *
 * The cost model learns the *ranking* of SuperSchedules for a matrix, not
 * the absolute runtime:
 *   L = sum_{(j,k)} sign(y_j - y_k) * phi(yhat_j - yhat_k),
 * with phi the hinge max(0, 1 - x) as adopted by the paper. An L2 loss is
 * also provided for the ablation bench.
 */
#pragma once

#include <vector>

#include "nn/mat.hpp"

namespace waco::nn {

/** Loss value and gradient w.r.t. the predictions. */
struct LossResult
{
    double loss = 0.0;
    Mat dPred; ///< Same shape as the prediction column.
};

/**
 * Pairwise hinge ranking loss over a batch of predictions for the SAME
 * matrix. @p pred and @p truth are [N x 1]; all N*(N-1)/2 pairs contribute.
 */
LossResult pairwiseHingeLoss(const Mat& pred, const std::vector<double>& truth);

/** Mean squared error against log-runtimes, for the loss ablation. */
LossResult l2LogLoss(const Mat& pred, const std::vector<double>& truth);

/**
 * Ranking accuracy: fraction of pairs ordered correctly by @p pred.
 * A perfect cost model scores 1.0; random scores ~0.5.
 */
double pairwiseOrderAccuracy(const Mat& pred,
                             const std::vector<double>& truth);

} // namespace waco::nn
