/**
 * @file
 * Adam optimizer (Kingma & Ba [24]), the paper's choice with lr = 1e-4.
 */
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace waco::nn {

/** Adam over a fixed set of registered parameters. */
class Adam
{
  public:
    explicit Adam(std::vector<Param*> params, double lr = 1e-4,
                  double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8);

    /** Apply one update from the accumulated gradients, then zero them. */
    void step();

    /** Zero all gradients without updating. */
    void zeroGrad();

    /** Global L2 norm over all accumulated gradients. NaN/Inf gradients
     *  make the result non-finite, which is how poisoned steps are
     *  detected before they reach the weights. */
    double gradNorm() const;

    /** Scale all gradients so their global norm is at most @p max_norm
     *  (no-op when already within bounds or max_norm <= 0).
     *  @return the pre-clip norm. */
    double clipGradNorm(double max_norm);

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

  private:
    std::vector<Param*> params_;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
    double lr_, beta1_, beta2_, eps_;
    u64 t_ = 0;
};

} // namespace waco::nn
