#include "nn/loss.hpp"

#include <cmath>

#include "util/common.hpp"

namespace waco::nn {

LossResult
pairwiseHingeLoss(const Mat& pred, const std::vector<double>& truth)
{
    panicIf(pred.cols != 1 || pred.rows != truth.size(),
            "pairwiseHingeLoss shape mismatch");
    LossResult out;
    out.dPred = Mat(pred.rows, 1);
    u64 pairs = 0;
    for (u32 j = 0; j < pred.rows; ++j) {
        for (u32 k = j + 1; k < pred.rows; ++k) {
            if (truth[j] == truth[k])
                continue;
            ++pairs;
            // sign(y_j - y_k): +1 when j is slower, so the model should
            // predict yhat_j > yhat_k; hinge on the margin.
            double sign = truth[j] > truth[k] ? 1.0 : -1.0;
            double margin = sign * (pred.at(j, 0) - pred.at(k, 0));
            double h = 1.0 - margin;
            if (h > 0.0) {
                out.loss += h;
                out.dPred.at(j, 0) += static_cast<float>(-sign);
                out.dPred.at(k, 0) += static_cast<float>(sign);
            }
        }
    }
    if (pairs > 0) {
        out.loss /= static_cast<double>(pairs);
        for (auto& g : out.dPred.v)
            g /= static_cast<float>(pairs);
    }
    return out;
}

LossResult
l2LogLoss(const Mat& pred, const std::vector<double>& truth)
{
    panicIf(pred.cols != 1 || pred.rows != truth.size(),
            "l2LogLoss shape mismatch");
    LossResult out;
    out.dPred = Mat(pred.rows, 1);
    for (u32 j = 0; j < pred.rows; ++j) {
        double target = std::log(std::max(1e-12, truth[j]));
        double diff = pred.at(j, 0) - target;
        out.loss += diff * diff;
        out.dPred.at(j, 0) = static_cast<float>(2.0 * diff / pred.rows);
    }
    out.loss /= pred.rows;
    return out;
}

double
pairwiseOrderAccuracy(const Mat& pred, const std::vector<double>& truth)
{
    panicIf(pred.cols != 1 || pred.rows != truth.size(),
            "pairwiseOrderAccuracy shape mismatch");
    u64 pairs = 0, correct = 0;
    for (u32 j = 0; j < pred.rows; ++j) {
        for (u32 k = j + 1; k < pred.rows; ++k) {
            if (truth[j] == truth[k])
                continue;
            ++pairs;
            bool want = truth[j] > truth[k];
            bool got = pred.at(j, 0) > pred.at(k, 0);
            correct += (want == got);
        }
    }
    return pairs ? static_cast<double>(correct) / pairs : 1.0;
}

} // namespace waco::nn
