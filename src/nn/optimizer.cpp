#include "nn/optimizer.hpp"

#include <cmath>

namespace waco::nn {

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps)
{
    for (Param* p : params_) {
        m_.emplace_back(p->w.v.size(), 0.0f);
        v_.emplace_back(p->w.v.size(), 0.0f);
    }
}

void
Adam::step()
{
    ++t_;
    double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Param* p = params_[i];
        for (std::size_t j = 0; j < p->w.v.size(); ++j) {
            double g = p->g.v[j];
            m_[i][j] = static_cast<float>(beta1_ * m_[i][j] + (1 - beta1_) * g);
            v_[i][j] = static_cast<float>(beta2_ * v_[i][j] +
                                          (1 - beta2_) * g * g);
            double mh = m_[i][j] / bc1;
            double vh = v_[i][j] / bc2;
            p->w.v[j] -= static_cast<float>(lr_ * mh / (std::sqrt(vh) + eps_));
        }
        p->zeroGrad();
    }
}

void
Adam::zeroGrad()
{
    for (Param* p : params_)
        p->zeroGrad();
}

double
Adam::gradNorm() const
{
    double sq = 0.0;
    for (const Param* p : params_) {
        for (float g : p->g.v)
            sq += static_cast<double>(g) * g;
    }
    return std::sqrt(sq);
}

double
Adam::clipGradNorm(double max_norm)
{
    double norm = gradNorm();
    if (max_norm <= 0.0 || !(norm > max_norm))
        return norm; // also leaves non-finite norms for the caller to veto
    double scale = max_norm / norm;
    for (Param* p : params_) {
        for (float& g : p->g.v)
            g = static_cast<float>(g * scale);
    }
    return norm;
}

} // namespace waco::nn
