/**
 * @file
 * Sparse (submanifold) convolution layers, the core of WACONet.
 *
 * A SparseMap is a set of active coordinate sites with a feature row per
 * site — exactly the representation MinkowskiEngine uses. Two layer modes:
 *
 *  - stride 1 (submanifold, Graham & van der Maaten [17]): output sites are
 *    the input sites; the filter only fires where its *center* lands on an
 *    active site, so activations never densify (Figure 7).
 *  - stride 2: output sites live on the coarsened grid; stacked strided
 *    layers force the receptive field to grow so distant nonzeros can
 *    communicate (Figure 8), the key architectural idea of WACONet.
 *
 * Coordinates are D-dimensional (D = 2 for matrices, 3 for MTTKRP tensors);
 * the same layer code serves both, as the paper notes WACONet extends to
 * higher-order tensors by changing the filter dimension.
 */
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "nn/layers.hpp"
#include "nn/mat.hpp"

namespace waco::nn {

/** Active sites + features of a sparse feature map. */
struct SparseMap
{
    u32 dim = 2;                              ///< Spatial dimensionality.
    std::vector<std::array<i32, 3>> coords;   ///< One entry per active site.
    Mat feats;                                ///< [numSites x channels].

    u32 numSites() const { return static_cast<u32>(coords.size()); }
};

/** Sparse convolution with square/cubic kernels and stride 1 or 2. */
class SparseConv
{
  public:
    SparseConv() = default;

    /**
     * @param dim spatial dimensionality (2 or 3)
     * @param kernel filter edge length (odd; 3 or 5)
     * @param stride 1 (submanifold) or 2 (downsampling)
     */
    SparseConv(u32 dim, u32 kernel, u32 stride, u32 in_ch, u32 out_ch,
               Rng& rng);

    u32 inChannels() const { return inCh_; }
    u32 outChannels() const { return outCh_; }

    /** Forward pass; caches the gather/scatter pairs for backward. */
    SparseMap forward(const SparseMap& in);

    /** Backward from d(out feats); accumulates dW/db, returns d(in feats). */
    Mat backward(const Mat& d_out);

    void collectParams(std::vector<Param*>& out);

  private:
    u32 dim_ = 2;
    u32 kernel_ = 3;
    u32 stride_ = 1;
    u32 inCh_ = 0;
    u32 outCh_ = 0;
    std::vector<std::array<i32, 3>> offsets_;
    std::vector<Param> w_; ///< One [inCh x outCh] filter per offset.
    Param b_;              ///< [1 x outCh].

    // Cached from forward: per-offset (input site, output site) pairs.
    std::vector<std::vector<std::pair<u32, u32>>> pairs_;
    Mat in_feats_;
    u32 in_sites_ = 0;
};

/** Mean over all sites -> a [1 x C] row (per-layer pooling in Figure 9). */
class GlobalAvgPool
{
  public:
    Mat forward(const SparseMap& in);
    /** Returns d(in feats) given d(pooled). */
    Mat backward(const Mat& d_out);

  private:
    u32 sites_ = 0;
    u32 channels_ = 0;
};

/** ReLU over a sparse map's features. */
class SparseReLU
{
  public:
    SparseMap
    forward(const SparseMap& in)
    {
        SparseMap out = in;
        out.feats = relu_.forward(in.feats);
        return out;
    }

    Mat backward(const Mat& dy) { return relu_.backward(dy); }

  private:
    ReLU relu_;
};

} // namespace waco::nn
