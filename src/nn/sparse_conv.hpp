/**
 * @file
 * Sparse (submanifold) convolution layers, the core of WACONet.
 *
 * A SparseMap is a set of active coordinate sites with a feature row per
 * site — exactly the representation MinkowskiEngine uses. Two layer modes:
 *
 *  - stride 1 (submanifold, Graham & van der Maaten [17]): output sites are
 *    the input sites; the filter only fires where its *center* lands on an
 *    active site, so activations never densify (Figure 7).
 *  - stride 2: output sites live on the coarsened grid; stacked strided
 *    layers force the receptive field to grow so distant nonzeros can
 *    communicate (Figure 8), the key architectural idea of WACONet.
 *
 * Coordinates are D-dimensional (D = 2 for matrices, 3 for MTTKRP tensors);
 * the same layer code serves both, as the paper notes WACONet extends to
 * higher-order tensors by changing the filter dimension.
 *
 * The forward pass is split into two phases:
 *
 *  1. buildRulebook(): coordinate hash maps -> output sites + per-offset
 *     (input site, output site) pair lists. This depends only on the input
 *     coordinates, never on features or weights, so a RulebookCache reuses
 *     it across every forward over the same pattern — all epochs of
 *     training and every tuner query re-walking the same conv stack.
 *  2. forward(in, rulebook): gather -> GEMM -> scatter per offset. Pair
 *     lists are sorted by output site, so the execute step can split them
 *     at output-site boundaries and scatter from per-thread accumulators
 *     without write conflicts.
 */
#pragma once

#include <algorithm>
#include <array>
#include <list>
#include <unordered_map>
#include <vector>

#include "nn/layers.hpp"
#include "nn/mat.hpp"

namespace waco::nn {

/** Active sites + features of a sparse feature map. */
struct SparseMap
{
    u32 dim = 2;                              ///< Spatial dimensionality.
    std::vector<std::array<i32, 3>> coords;   ///< One entry per active site.
    Mat feats;                                ///< [numSites x channels].

    u32 numSites() const { return static_cast<u32>(coords.size()); }
};

/**
 * The geometry of one conv layer applied to one coordinate set: output
 * sites plus, per filter offset, the (input site, output site) gather
 * pairs, each list sorted by output site. Built once per input pattern and
 * reused by every forward/backward over that pattern.
 */
struct Rulebook
{
    std::vector<std::array<i32, 3>> outCoords;
    u32 inSites = 0;
    /** [offset] -> (input row, output row), ascending in output row. */
    std::vector<std::vector<std::pair<u32, u32>>> pairs;

    /** Total gather pairs across all offsets (cache accounting). */
    u64
    pairCount() const
    {
        u64 n = 0;
        for (const auto& p : pairs)
            n += p.size();
        return n;
    }
};

/** Sparse convolution with square/cubic kernels and stride 1 or 2. */
class SparseConv
{
  public:
    SparseConv() = default;

    /**
     * @param dim spatial dimensionality (2 or 3)
     * @param kernel filter edge length (odd; 3 or 5)
     * @param stride 1 (submanifold) or 2 (downsampling)
     */
    SparseConv(u32 dim, u32 kernel, u32 stride, u32 in_ch, u32 out_ch,
               Rng& rng);

    u32 inChannels() const { return inCh_; }
    u32 outChannels() const { return outCh_; }

    /** Build the gather/scatter geometry for an input coordinate set. */
    Rulebook buildRulebook(const std::vector<std::array<i32, 3>>& coords) const;

    /**
     * Forward through a prebuilt rulebook (must have been built from
     * in.coords by this layer). @p rb must stay alive until the matching
     * backward() returns; caches the features for backward.
     */
    SparseMap forward(const SparseMap& in, const Rulebook& rb);

    /** Forward building a fresh rulebook (owned by the layer). */
    SparseMap forward(const SparseMap& in);

    /** Backward from d(out feats); accumulates dW/db, returns d(in feats). */
    Mat backward(const Mat& d_out);

    void collectParams(std::vector<Param*>& out);

  private:
    u32 dim_ = 2;
    u32 kernel_ = 3;
    u32 stride_ = 1;
    u32 inCh_ = 0;
    u32 outCh_ = 0;
    std::vector<std::array<i32, 3>> offsets_;
    std::vector<Param> w_; ///< One [inCh x outCh] filter per offset.
    Param b_;              ///< [1 x outCh].

    // Cached from forward, consumed by backward.
    Rulebook own_;               ///< Used by the fresh-rulebook forward.
    const Rulebook* active_ = nullptr;
    Mat in_feats_;
};

/**
 * Cache of rulebook *chains*: the per-layer rulebooks a conv stack builds
 * for one input coordinate set. Keyed by a coordinate fingerprint, evicted
 * LRU under a total gather-pair budget so one huge pattern cannot pin
 * unbounded memory. Enabled process-wide by default; benches flip
 * setRulebookCacheEnabled(false) to measure the rebuild-every-forward
 * pre-optimization path.
 */
class RulebookCache
{
  public:
    /** 64-bit FNV fingerprint of a coordinate set. */
    static u64 fingerprint(const std::vector<std::array<i32, 3>>& coords);

    /**
     * The rulebook chain for @p convs applied to @p coords: chain[l] is
     * convs[l]'s rulebook, each layer consuming the previous layer's
     * output sites. Built (and cached) on miss. The returned reference is
     * valid until the next chain() call on this cache.
     */
    const std::vector<Rulebook>& chain(
        const std::vector<std::array<i32, 3>>& coords,
        std::vector<SparseConv>& convs);

    void clear();

    /** Cache hits/misses/evictions since construction. The same events
     *  also feed the process-wide MetricsRegistry counters
     *  "rulebook.hits" / "rulebook.misses" / "rulebook.evictions". */
    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    u64 evictions() const { return evictions_; }

    /** Default gather-pair budget across all cached chains. */
    static constexpr u64 kMaxPairEntries = u64(8) << 20;

    /** Override the gather-pair budget (tests shrink it to force
     *  eviction). Takes effect on the next chain() insertion. */
    void setPairBudget(u64 budget) { pairBudget_ = std::max<u64>(1, budget); }
    u64 pairBudget() const { return pairBudget_; }

  private:
    struct Entry
    {
        u64 key = 0;
        u64 pairEntries = 0;
        std::vector<Rulebook> chain;
    };

    std::list<Entry> lru_; ///< Front = most recent.
    std::unordered_map<u64, std::list<Entry>::iterator> index_;
    std::vector<Rulebook> scratch_; ///< Rebuilt-per-call path when disabled.
    u64 totalPairs_ = 0;
    u64 pairBudget_ = kMaxPairEntries;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 evictions_ = 0;
};

/** Process-wide toggle for every RulebookCache (bench/test knob). */
void setRulebookCacheEnabled(bool enabled);
bool rulebookCacheEnabled();

/** Mean over all sites -> a [1 x C] row (per-layer pooling in Figure 9). */
class GlobalAvgPool
{
  public:
    Mat forward(const SparseMap& in);
    /** Returns d(in feats) given d(pooled). */
    Mat backward(const Mat& d_out);

  private:
    u32 sites_ = 0;
    u32 channels_ = 0;
};

/** ReLU over a sparse map's features. */
class SparseReLU
{
  public:
    SparseMap
    forward(const SparseMap& in)
    {
        SparseMap out = in;
        out.feats = relu_.forward(in.feats);
        return out;
    }

    Mat backward(const Mat& dy) { return relu_.backward(dy); }

  private:
    ReLU relu_;
};

} // namespace waco::nn
