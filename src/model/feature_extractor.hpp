/**
 * @file
 * Sparsity-pattern feature extractors (Section 4.1.1 and the Figure 15
 * comparison):
 *
 *  - WacoNet        — the paper's contribution: a 5x5 stride-1 submanifold
 *                     conv followed by 13 3x3 stride-2 sparse convs
 *                     (32 channels), with the global-average-pooled outputs
 *                     of all 14 layers concatenated into the feature.
 *  - MinkowskiNet   — sparse CNN baseline: same sparse convolutions but
 *                     without the aggressive striding / multi-layer
 *                     concatenation (receptive field stalls on distant
 *                     nonzeros, Figure 8a).
 *  - DenseConv      — downsample the matrix to a fixed grid of nonzero
 *                     counts, then a conventional CNN [48].
 *  - HumanFeature   — (#rows, #cols, #nnz) through an MLP [27, 40].
 *
 * All extractors output a fixed-width feature row so the rest of the cost
 * model is extractor-agnostic.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/sparse_conv.hpp"
#include "tensor/coo.hpp"

namespace waco {

/** Extractor-agnostic view of a sparsity pattern. */
struct PatternInput
{
    u32 dim = 2;                             ///< 2 for matrices, 3 for tensors.
    std::array<u32, 3> shape = {0, 0, 0};    ///< Dimension sizes.
    std::vector<std::array<i32, 3>> coords;  ///< Nonzero coordinates.

    static PatternInput fromMatrix(const SparseMatrix& m);
    static PatternInput fromTensor3(const Sparse3Tensor& t);
};

/** Interface all four extractors implement. */
class FeatureExtractor
{
  public:
    virtual ~FeatureExtractor() = default;

    /** Feature row [1 x featureDim()] for a pattern; caches for backward. */
    virtual nn::Mat forward(const PatternInput& in) = 0;

    /** Backpropagate d(feature) into the extractor's parameters. */
    virtual void backward(const nn::Mat& d_feat) = 0;

    virtual void collectParams(std::vector<nn::Param*>& out) = 0;
    virtual u32 featureDim() const = 0;
    virtual std::string name() const = 0;
};

/** Configuration shared by the convolutional extractors. */
struct ExtractorConfig
{
    u32 channels = 32;    ///< Paper: 32 (kept small to fit big inputs).
    u32 numLayers = 14;   ///< Paper: 14 (1 submanifold + 13 strided).
    u32 featureDim = 128; ///< Output feature width.
};

/** Build one of the four extractors by name:
 *  "waconet", "minkowski", "denseconv", "human". */
std::unique_ptr<FeatureExtractor> makeFeatureExtractor(
    const std::string& kind, u32 pattern_dim, const ExtractorConfig& cfg,
    Rng& rng);

} // namespace waco
