#include "model/program_embedder.hpp"

namespace waco {

using nn::Embedding;
using nn::Mat;
using nn::MLP;
using nn::Param;

namespace {

/** log2 of a power-of-two parameter value (split or chunk size). */
u32
exponentOf(u32 v)
{
    panicIf(!isPow2(v), "schedule parameter is not a power of two");
    return log2Floor(v);
}

constexpr u32 kSplitVocab = 16; // split in {2^0 .. 2^15} (Table 3)
constexpr u32 kChunkVocab = 9;  // chunk in {2^0 .. 2^8}
constexpr u32 kPermHidden = 32;
constexpr u32 kPermDim = 16;

} // namespace

ProgramEmbedder::ProgramEmbedder(Algorithm alg, Rng& rng, u32 cat_dim,
                                 u32 out_dim)
    : alg_(alg), cat_dim_(cat_dim), out_dim_(out_dim)
{
    const auto& info = algorithmInfo(alg);
    num_indices_ = info.numIndices;
    num_slots_ = 2 * num_indices_;
    num_sparse_slots_ = 2 * info.sparseOrder;

    // Table order: splits | parallel slot | threads | chunk | level formats
    // | free dense layouts. Vocabulary sizes per Table 3.
    for (u32 idx = 0; idx < num_indices_; ++idx)
        table_vocab_.push_back(kSplitVocab);
    table_vocab_.push_back(num_slots_); // parallelized slot
    table_vocab_.push_back(2);          // threads: 24 or 48
    table_vocab_.push_back(kChunkVocab);
    for (u32 l = 0; l < num_sparse_slots_; ++l)
        table_vocab_.push_back(2); // U or C
    for (const auto& op : info.denseOperands) {
        if (!op.layoutFixed)
            table_vocab_.push_back(2); // row- or column-major
    }
    for (u32 v : table_vocab_)
        tables_.emplace_back(v, cat_dim_, rng);

    loop_perm_mlp_ = MLP({num_slots_ * num_slots_, kPermHidden, kPermDim}, rng);
    level_perm_mlp_ =
        MLP({num_sparse_slots_ * num_sparse_slots_, kPermHidden, kPermDim},
            rng);

    u32 concat = static_cast<u32>(tables_.size()) * cat_dim_ + 2 * kPermDim;
    head_ = MLP({concat, 128, out_dim_}, rng);
}

std::vector<u32>
ProgramEmbedder::categoricalIds(const SuperSchedule& s) const
{
    const auto& info = algorithmInfo(alg_);
    std::vector<u32> ids;
    for (u32 idx = 0; idx < num_indices_; ++idx)
        ids.push_back(std::min(kSplitVocab - 1, exponentOf(s.splits[idx])));
    ids.push_back(s.parallelSlot);
    ids.push_back(s.numThreads >= 48 ? 1 : 0);
    ids.push_back(std::min(kChunkVocab - 1, exponentOf(s.ompChunk)));
    for (u32 l = 0; l < num_sparse_slots_; ++l) {
        ids.push_back(s.sparseLevelFormats[l] == LevelFormat::Compressed ? 1
                                                                         : 0);
    }
    for (std::size_t op = 0; op < info.denseOperands.size(); ++op) {
        if (!info.denseOperands[op].layoutFixed)
            ids.push_back(s.denseRowMajor[op] ? 0 : 1);
    }
    panicIf(ids.size() != tables_.size(), "categorical id count mismatch");
    return ids;
}

Mat
ProgramEmbedder::forward(const std::vector<SuperSchedule>& batch)
{
    const auto& info = algorithmInfo(alg_);
    batch_size_ = static_cast<u32>(batch.size());

    // Gather categorical ids column-wise.
    std::vector<std::vector<u32>> ids_per_table(tables_.size());
    for (const auto& s : batch) {
        auto ids = categoricalIds(s);
        for (std::size_t t = 0; t < tables_.size(); ++t)
            ids_per_table[t].push_back(ids[t]);
    }

    // Permutation matrices, flattened per schedule.
    Mat loop_perm(batch_size_, num_slots_ * num_slots_);
    Mat level_perm(batch_size_, num_sparse_slots_ * num_sparse_slots_);
    for (u32 n = 0; n < batch_size_; ++n) {
        const auto& s = batch[n];
        for (u32 p = 0; p < num_slots_; ++p)
            loop_perm.at(n, p * num_slots_ + s.loopOrder[p]) = 1.0f;
        for (u32 p = 0; p < num_sparse_slots_; ++p) {
            u32 slot = s.sparseLevelOrder[p];
            u32 d = static_cast<u32>(info.sparseDim[slotIndex(slot)]);
            u32 apos = 2 * d + (slotIsInner(slot) ? 1 : 0);
            level_perm.at(n, p * num_sparse_slots_ + apos) = 1.0f;
        }
    }

    // Concatenate table embeddings + permutation embeddings.
    Mat loop_emb = loop_perm_mlp_.forward(loop_perm);
    Mat level_emb = level_perm_mlp_.forward(level_perm);
    u32 concat_dim = static_cast<u32>(tables_.size()) * cat_dim_ +
                     2 * kPermDim;
    Mat concat(batch_size_, concat_dim);
    u32 col = 0;
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        Mat e = tables_[t].forward(ids_per_table[t]);
        for (u32 n = 0; n < batch_size_; ++n) {
            std::copy(e.row(n), e.row(n) + cat_dim_,
                      concat.row(n) + col);
        }
        col += cat_dim_;
    }
    for (u32 n = 0; n < batch_size_; ++n) {
        std::copy(loop_emb.row(n), loop_emb.row(n) + kPermDim,
                  concat.row(n) + col);
        std::copy(level_emb.row(n), level_emb.row(n) + kPermDim,
                  concat.row(n) + col + kPermDim);
    }
    return head_.forward(concat);
}

void
ProgramEmbedder::backward(const Mat& d_out)
{
    Mat d_concat = head_.backward(d_out);
    u32 col = 0;
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        Mat d(batch_size_, cat_dim_);
        for (u32 n = 0; n < batch_size_; ++n) {
            std::copy(d_concat.row(n) + col, d_concat.row(n) + col + cat_dim_,
                      d.row(n));
        }
        tables_[t].backward(d);
        col += cat_dim_;
    }
    Mat d_loop(batch_size_, kPermDim);
    Mat d_level(batch_size_, kPermDim);
    for (u32 n = 0; n < batch_size_; ++n) {
        std::copy(d_concat.row(n) + col, d_concat.row(n) + col + kPermDim,
                  d_loop.row(n));
        std::copy(d_concat.row(n) + col + kPermDim,
                  d_concat.row(n) + col + 2 * kPermDim, d_level.row(n));
    }
    loop_perm_mlp_.backward(d_loop);
    level_perm_mlp_.backward(d_level);
}

void
ProgramEmbedder::collectParams(std::vector<Param*>& out)
{
    for (auto& t : tables_)
        t.collectParams(out);
    loop_perm_mlp_.collectParams(out);
    level_perm_mlp_.collectParams(out);
    head_.collectParams(out);
}

} // namespace waco
