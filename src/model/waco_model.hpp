/**
 * @file
 * The full WACO cost model (Figure 6): feature extractor + program embedder
 * + runtime predictor, trained with the pairwise ranking loss.
 *
 * The three-part split mirrors how the model is *used* at search time
 * (Figure 1c / Section 5.4): the sparsity-pattern feature is extracted once
 * per input matrix, KNN-graph nodes memoize their program embeddings, and
 * the graph walk only re-runs the cheap runtime-predictor head.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/feature_extractor.hpp"
#include "model/program_embedder.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace waco {

/** End-to-end learned cost model for one algorithm. */
class WacoCostModel
{
  public:
    /**
     * @param alg algorithm whose schedules are scored
     * @param extractor_kind "waconet" | "minkowski" | "denseconv" | "human"
     * @param cfg network widths (paper defaults; shrink for unit tests)
     * @param seed parameter-init seed
     * @param lr Adam learning rate (paper: 1e-4)
     */
    WacoCostModel(Algorithm alg, const std::string& extractor_kind,
                  const ExtractorConfig& cfg, u64 seed, double lr = 1e-4);

    Algorithm algorithm() const { return alg_; }
    const std::string& extractorName() const { return extractor_kind_; }
    u32 embeddingDim() const { return embedder_->outDim(); }

    /** Run the feature extractor once for an input pattern. */
    nn::Mat extractFeature(const PatternInput& in);

    /** Program embeddings for a batch of schedules (KNN-graph nodes). */
    nn::Mat programEmbeddings(const std::vector<SuperSchedule>& batch);

    /** Predicted relative cost for schedules, given a cached feature. */
    nn::Mat predict(const nn::Mat& feature,
                    const std::vector<SuperSchedule>& batch);

    /**
     * Search-time fast path: score pre-computed program embeddings against
     * a cached feature using only the predictor head.
     */
    nn::Mat predictFromEmbeddings(const nn::Mat& feature,
                                  const nn::Mat& embeddings);

    /**
     * Per-query state for the batched inference engine: the feature row's
     * partial product through the predictor's first layer, hoisted so the
     * search loop never re-multiplies (or even re-copies) the broadcast
     * feature, plus the first layer's embedding-column block.
     */
    struct PredictorQuery
    {
        nn::Mat featPreact; ///< [1 x H0]: feature . W0_feat^T + b0.
        nn::Mat wEmb;       ///< [H0 x E]: W0 columns for the embedding half.
    };

    /** Hoist one query feature through the predictor's first layer. */
    PredictorQuery beginQuery(const nn::Mat& feature) const;

    /**
     * Inference-only batched scoring: predictions for @p count rows of
     * @p embeddings selected by @p ids (or rows [0, count) when @p ids is
     * null), as a [count x 1] column. Up to rounding (the feature partial
     * is pre-reduced), equals predictFromEmbeddings on the same rows, and
     * is bitwise-identical across batch splits: scoring ids one at a time
     * gives exactly the same column as one call — what makes batched and
     * scalar graph walks return identical hits.
     */
    nn::Mat scoreEmbeddings(const PredictorQuery& q,
                            const nn::Mat& embeddings, const u32* ids,
                            u32 count) const;

    /** Outcome of one guarded optimizer step. */
    struct StepOutcome
    {
        double loss = 0.0;
        /** Pre-clip global gradient norm (NaN/Inf when poisoned). */
        double gradNorm = 0.0;
        /** False when the update was vetoed (non-finite loss/gradients). */
        bool applied = true;
    };

    /**
     * One optimizer step on a (matrix, schedule batch) group: forward,
     * pairwise hinge loss (or L2 for the ablation), backward, Adam update.
     * @return the batch loss before the update.
     */
    double trainStep(const PatternInput& in,
                     const std::vector<SuperSchedule>& batch,
                     const std::vector<double>& runtimes,
                     bool use_l2 = false);

    /**
     * trainStep with fault guards: a non-finite loss or gradient norm
     * skips the Adam update entirely (gradients are zeroed, weights and
     * optimizer moments untouched), and when @p clip_norm > 0 the global
     * gradient norm is clipped before the update.
     */
    StepOutcome trainStepGuarded(const PatternInput& in,
                                 const std::vector<SuperSchedule>& batch,
                                 const std::vector<double>& runtimes,
                                 bool use_l2, double clip_norm);

    /** Copy of every parameter tensor, for in-memory rollback. */
    std::vector<std::vector<float>> snapshotParams();

    /** Restore a snapshotParams() copy (shapes must match). */
    void restoreParams(const std::vector<std::vector<float>>& snap);

    /** True when every weight is finite. */
    bool paramsFinite();

    /** Loss without any update (validation). */
    double evalLoss(const PatternInput& in,
                    const std::vector<SuperSchedule>& batch,
                    const std::vector<double>& runtimes, bool use_l2 = false);

    /** Ranking accuracy on a batch (fraction of pairs ordered correctly). */
    double evalOrderAccuracy(const PatternInput& in,
                             const std::vector<SuperSchedule>& batch,
                             const std::vector<double>& runtimes);

    void save(const std::string& path);
    void load(const std::string& path);

  private:
    struct ForwardState
    {
        nn::Mat pred;
        u32 batch = 0;
    };

    ForwardState forwardFull(const PatternInput& in,
                             const std::vector<SuperSchedule>& batch);
    void backwardFull(const nn::Mat& d_pred);

    Algorithm alg_;
    std::string extractor_kind_;
    std::unique_ptr<FeatureExtractor> extractor_;
    std::unique_ptr<ProgramEmbedder> embedder_;
    nn::MLP predictor_;
    std::unique_ptr<nn::Adam> opt_;
    u32 feature_dim_ = 0;
};

} // namespace waco
