#include "model/feature_extractor.hpp"

#include <cmath>
#include <unordered_map>

#include "nn/layers.hpp"

namespace waco {

using nn::GlobalAvgPool;
using nn::Mat;
using nn::MLP;
using nn::Param;
using nn::SparseConv;
using nn::SparseMap;
using nn::SparseReLU;

PatternInput
PatternInput::fromMatrix(const SparseMatrix& m)
{
    PatternInput in;
    in.dim = 2;
    in.shape = {m.rows(), m.cols(), 0};
    in.coords.reserve(m.nnz());
    for (u64 n = 0; n < m.nnz(); ++n) {
        in.coords.push_back({static_cast<i32>(m.rowIndices()[n]),
                             static_cast<i32>(m.colIndices()[n]), 0});
    }
    return in;
}

PatternInput
PatternInput::fromTensor3(const Sparse3Tensor& t)
{
    PatternInput in;
    in.dim = 3;
    in.shape = t.dims();
    in.coords.reserve(t.nnz());
    for (u64 n = 0; n < t.nnz(); ++n) {
        in.coords.push_back({static_cast<i32>(t.iIndices()[n]),
                             static_cast<i32>(t.kIndices()[n]),
                             static_cast<i32>(t.lIndices()[n])});
    }
    return in;
}

namespace {

/**
 * WACONet (Figure 9): one 5x5 stride-1 submanifold layer then strided 3x3
 * layers, with every layer's pooled output concatenated into the feature.
 */
class WacoNet final : public FeatureExtractor
{
  public:
    WacoNet(u32 dim, const ExtractorConfig& cfg, Rng& rng)
        : dim_(dim), cfg_(cfg)
    {
        convs_.reserve(cfg.numLayers);
        convs_.emplace_back(dim, 5, 1, 1, cfg.channels, rng);
        for (u32 l = 1; l < cfg.numLayers; ++l)
            convs_.emplace_back(dim, 3, 2, cfg.channels, cfg.channels, rng);
        relus_.resize(cfg.numLayers);
        pools_.resize(cfg.numLayers);
        head_ = MLP({cfg.numLayers * cfg.channels, cfg.featureDim,
                     cfg.featureDim},
                    rng);
    }

    Mat
    forward(const PatternInput& in) override
    {
        SparseMap map;
        map.dim = dim_;
        map.coords = in.coords;
        map.feats = Mat(map.numSites(), 1, 1.0f);
        // The rulebook chain depends only on the coordinates, so repeated
        // forwards over one pattern (training epochs, tuner queries) reuse
        // the cached gather geometry across every layer.
        const auto& chain = rulebooks_.chain(in.coords, convs_);
        Mat concat(1, cfg_.numLayers * cfg_.channels);
        site_counts_.clear();
        for (u32 l = 0; l < cfg_.numLayers; ++l) {
            map = convs_[l].forward(map, chain[l]);
            map = relus_[l].forward(map);
            Mat pooled = pools_[l].forward(map);
            std::copy(pooled.v.begin(), pooled.v.end(),
                      concat.v.begin() + static_cast<long>(l) * cfg_.channels);
            site_counts_.push_back(map.numSites());
        }
        return head_.forward(concat);
    }

    void
    backward(const Mat& d_feat) override
    {
        Mat d_concat = head_.backward(d_feat);
        // Reverse through the conv stack, merging each layer's pooled
        // gradient with the gradient arriving from the layer above.
        Mat d_map; // gradient w.r.t. the current layer's output features
        for (u32 l = cfg_.numLayers; l-- > 0;) {
            Mat d_pool(1, cfg_.channels);
            std::copy(d_concat.v.begin() + static_cast<long>(l) * cfg_.channels,
                      d_concat.v.begin() +
                          static_cast<long>(l + 1) * cfg_.channels,
                      d_pool.v.begin());
            Mat d_from_pool = pools_[l].backward(d_pool);
            if (d_map.rows == 0) {
                d_map = d_from_pool;
            } else {
                for (std::size_t i = 0; i < d_map.v.size(); ++i)
                    d_map.v[i] += d_from_pool.v[i];
            }
            d_map = relus_[l].backward(d_map);
            d_map = convs_[l].backward(d_map);
        }
    }

    void
    collectParams(std::vector<Param*>& out) override
    {
        for (auto& c : convs_)
            c.collectParams(out);
        head_.collectParams(out);
    }

    u32 featureDim() const override { return cfg_.featureDim; }
    std::string name() const override { return "WACONet"; }

  private:
    u32 dim_;
    ExtractorConfig cfg_;
    std::vector<SparseConv> convs_;
    std::vector<SparseReLU> relus_;
    std::vector<GlobalAvgPool> pools_;
    std::vector<u32> site_counts_;
    nn::RulebookCache rulebooks_;
    MLP head_;
};

/**
 * MinkowskiNet-style baseline: submanifold stride-1 stack (no receptive
 * field growth across distant nonzeros) and only the final layer pooled.
 */
class MinkowskiNetExtractor final : public FeatureExtractor
{
  public:
    MinkowskiNetExtractor(u32 dim, const ExtractorConfig& cfg, Rng& rng)
        : dim_(dim), cfg_(cfg)
    {
        u32 layers = std::max<u32>(2, cfg.numLayers / 2);
        convs_.emplace_back(dim, 5, 1, 1, cfg.channels, rng);
        for (u32 l = 1; l < layers; ++l)
            convs_.emplace_back(dim, 3, 1, cfg.channels, cfg.channels, rng);
        relus_.resize(layers);
        head_ = MLP({cfg.channels, cfg.featureDim, cfg.featureDim}, rng);
    }

    Mat
    forward(const PatternInput& in) override
    {
        SparseMap map;
        map.dim = dim_;
        map.coords = in.coords;
        map.feats = Mat(map.numSites(), 1, 1.0f);
        const auto& chain = rulebooks_.chain(in.coords, convs_);
        for (std::size_t l = 0; l < convs_.size(); ++l) {
            map = convs_[l].forward(map, chain[l]);
            map = relus_[l].forward(map);
        }
        Mat pooled = pool_.forward(map);
        return head_.forward(pooled);
    }

    void
    backward(const Mat& d_feat) override
    {
        Mat d = head_.backward(d_feat);
        d = pool_.backward(d);
        for (std::size_t l = convs_.size(); l-- > 0;) {
            d = relus_[l].backward(d);
            d = convs_[l].backward(d);
        }
    }

    void
    collectParams(std::vector<Param*>& out) override
    {
        for (auto& c : convs_)
            c.collectParams(out);
        head_.collectParams(out);
    }

    u32 featureDim() const override { return cfg_.featureDim; }
    std::string name() const override { return "MinkowskiNet"; }

  private:
    u32 dim_;
    ExtractorConfig cfg_;
    std::vector<SparseConv> convs_;
    std::vector<SparseReLU> relus_;
    nn::RulebookCache rulebooks_;
    GlobalAvgPool pool_;
    MLP head_;
};

/**
 * DenseConv baseline [48]: downsample to a fixed grid of log-nonzero
 * counts (Figure 5) and run a conventional strided CNN over the dense grid.
 */
class DenseConvExtractor final : public FeatureExtractor
{
  public:
    static constexpr u32 kGrid = 64; // paper uses 128-256; scaled to CPU

    DenseConvExtractor(u32 dim, const ExtractorConfig& cfg, Rng& rng)
        : dim_(dim), cfg_(cfg)
    {
        u32 layers = 4;
        u32 ch = std::min<u32>(16, cfg.channels);
        convs_.emplace_back(dim, 3, 2, 1, ch, rng);
        for (u32 l = 1; l < layers; ++l)
            convs_.emplace_back(dim, 3, 2, ch, ch, rng);
        relus_.resize(layers);
        head_ = MLP({ch, cfg.featureDim, cfg.featureDim}, rng);
    }

    Mat
    forward(const PatternInput& in) override
    {
        // Downsample: count nonzeros per grid cell (all cells active ->
        // the sparse machinery degenerates to a dense convolution).
        u32 g = dim_ == 2 ? kGrid : 16;
        std::unordered_map<u64, float> counts;
        for (const auto& c : in.coords) {
            u64 key = 0;
            for (u32 d = 0; d < dim_; ++d) {
                u64 cell = static_cast<u64>(c[d]) * g /
                           std::max<u32>(1, in.shape[d]);
                key = key * g + cell;
            }
            counts[key] += 1.0f;
        }
        SparseMap map;
        map.dim = dim_;
        u64 total = 1;
        for (u32 d = 0; d < dim_; ++d)
            total *= g;
        map.coords.reserve(total);
        map.feats = Mat(static_cast<u32>(total), 1);
        for (u64 cell = 0; cell < total; ++cell) {
            std::array<i32, 3> coord = {0, 0, 0};
            u64 rest = cell;
            for (u32 d = dim_; d-- > 0;) {
                coord[d] = static_cast<i32>(rest % g);
                rest /= g;
            }
            map.coords.push_back(coord);
            auto it = counts.find(cell);
            map.feats.at(static_cast<u32>(cell), 0) =
                it == counts.end() ? 0.0f : std::log1p(it->second);
        }
        // The grid coordinate set is identical for every input, so the
        // rulebook chain is built exactly once per extractor.
        const auto& chain = rulebooks_.chain(map.coords, convs_);
        for (std::size_t l = 0; l < convs_.size(); ++l) {
            map = convs_[l].forward(map, chain[l]);
            map = relus_[l].forward(map);
        }
        Mat pooled = pool_.forward(map);
        return head_.forward(pooled);
    }

    void
    backward(const Mat& d_feat) override
    {
        Mat d = head_.backward(d_feat);
        d = pool_.backward(d);
        for (std::size_t l = convs_.size(); l-- > 0;) {
            d = relus_[l].backward(d);
            d = convs_[l].backward(d);
        }
    }

    void
    collectParams(std::vector<Param*>& out) override
    {
        for (auto& c : convs_)
            c.collectParams(out);
        head_.collectParams(out);
    }

    u32 featureDim() const override { return cfg_.featureDim; }
    std::string name() const override { return "DenseConv"; }

  private:
    u32 dim_;
    ExtractorConfig cfg_;
    std::vector<SparseConv> convs_;
    std::vector<SparseReLU> relus_;
    nn::RulebookCache rulebooks_;
    GlobalAvgPool pool_;
    MLP head_;
};

/** HumanFeature baseline: (#rows, #cols, #nnz) through an MLP. */
class HumanFeatureExtractor final : public FeatureExtractor
{
  public:
    HumanFeatureExtractor(u32 dim, const ExtractorConfig& cfg, Rng& rng)
        : dim_(dim), cfg_(cfg),
          head_(MLP({3, 64, cfg.featureDim}, rng))
    {}

    Mat
    forward(const PatternInput& in) override
    {
        Mat x(1, 3);
        x.at(0, 0) = std::log1p(static_cast<float>(in.shape[0]));
        x.at(0, 1) = std::log1p(static_cast<float>(in.shape[dim_ - 1]));
        x.at(0, 2) = std::log1p(static_cast<float>(in.coords.size()));
        return head_.forward(x);
    }

    void backward(const Mat& d_feat) override { head_.backward(d_feat); }

    void
    collectParams(std::vector<Param*>& out) override
    {
        head_.collectParams(out);
    }

    u32 featureDim() const override { return cfg_.featureDim; }
    std::string name() const override { return "HumanFeature"; }

  private:
    u32 dim_;
    ExtractorConfig cfg_;
    MLP head_;
};

} // namespace

std::unique_ptr<FeatureExtractor>
makeFeatureExtractor(const std::string& kind, u32 pattern_dim,
                     const ExtractorConfig& cfg, Rng& rng)
{
    if (kind == "waconet")
        return std::make_unique<WacoNet>(pattern_dim, cfg, rng);
    if (kind == "minkowski")
        return std::make_unique<MinkowskiNetExtractor>(pattern_dim, cfg, rng);
    if (kind == "denseconv")
        return std::make_unique<DenseConvExtractor>(pattern_dim, cfg, rng);
    if (kind == "human")
        return std::make_unique<HumanFeatureExtractor>(pattern_dim, cfg, rng);
    fatal("unknown feature extractor: " + kind);
}

} // namespace waco
