/**
 * @file
 * Program embedder (Section 4.1.2, Figure 11): maps a SuperSchedule's
 * parameters to a real-valued embedding.
 *
 * Categorical parameters (split sizes, parallelization, chunk size, level
 * formats, dense layouts) pass through learnable lookup tables; permutation
 * parameters (compute-loop order, format level order) are converted to
 * permutation matrices and pass through linear-ReLU stacks. Everything is
 * concatenated and fed through a final MLP into the program embedding that
 * both the runtime predictor and the KNN graph operate on.
 */
#pragma once

#include <vector>

#include "ir/schedule.hpp"
#include "nn/layers.hpp"

namespace waco {

/** Batched program embedder for one algorithm's SuperSchedule space. */
class ProgramEmbedder
{
  public:
    /**
     * @param alg algorithm whose template is embedded
     * @param rng initializer
     * @param cat_dim width of each categorical embedding
     * @param out_dim width of the final program embedding
     */
    ProgramEmbedder(Algorithm alg, Rng& rng, u32 cat_dim = 8,
                    u32 out_dim = 64);

    u32 outDim() const { return out_dim_; }
    Algorithm algorithm() const { return alg_; }

    /** Embed a batch of schedules -> [N x outDim]. */
    nn::Mat forward(const std::vector<SuperSchedule>& batch);

    /** Backpropagate d(embedding) into all tables and MLPs. */
    void backward(const nn::Mat& d_out);

    void collectParams(std::vector<nn::Param*>& out);

  private:
    /** Categorical ids of one schedule, in fixed table order. */
    std::vector<u32> categoricalIds(const SuperSchedule& s) const;

    Algorithm alg_;
    u32 num_indices_;
    u32 num_slots_;
    u32 num_sparse_slots_;
    u32 cat_dim_;
    u32 out_dim_;

    std::vector<nn::Embedding> tables_;
    std::vector<u32> table_vocab_;
    nn::MLP loop_perm_mlp_;
    nn::MLP level_perm_mlp_;
    nn::MLP head_;

    // Cached forward state for backward.
    u32 batch_size_ = 0;
};

} // namespace waco
