#include "model/waco_model.hpp"

#include <cmath>

#include "nn/serialize.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace waco {

using nn::Mat;

WacoCostModel::WacoCostModel(Algorithm alg, const std::string& extractor_kind,
                             const ExtractorConfig& cfg, u64 seed, double lr)
    : alg_(alg), extractor_kind_(extractor_kind)
{
    Rng rng(seed);
    u32 pattern_dim = algorithmInfo(alg).sparseOrder == 3 ? 3 : 2;
    extractor_ = makeFeatureExtractor(extractor_kind, pattern_dim, cfg, rng);
    embedder_ = std::make_unique<ProgramEmbedder>(alg, rng);
    feature_dim_ = extractor_->featureDim();
    predictor_ = nn::MLP(
        {feature_dim_ + embedder_->outDim(), 128, 64, 1}, rng);
    std::vector<nn::Param*> params;
    extractor_->collectParams(params);
    embedder_->collectParams(params);
    predictor_.collectParams(params);
    opt_ = std::make_unique<nn::Adam>(params, lr);
}

Mat
WacoCostModel::extractFeature(const PatternInput& in)
{
    WACO_SPAN("model.extract");
    WACO_COUNT("model.features_extracted", 1);
    return extractor_->forward(in);
}

Mat
WacoCostModel::programEmbeddings(const std::vector<SuperSchedule>& batch)
{
    WACO_SPAN("model.embed");
    WACO_COUNT("model.schedules_embedded", batch.size());
    return embedder_->forward(batch);
}

Mat
WacoCostModel::predictFromEmbeddings(const Mat& feature, const Mat& embeddings)
{
    panicIf(feature.rows != 1 || feature.cols != feature_dim_,
            "feature shape mismatch");
    Mat x(embeddings.rows, feature_dim_ + embeddings.cols);
    for (u32 n = 0; n < embeddings.rows; ++n) {
        std::copy(feature.row(0), feature.row(0) + feature_dim_, x.row(n));
        std::copy(embeddings.row(n), embeddings.row(n) + embeddings.cols,
                  x.row(n) + feature_dim_);
    }
    return predictor_.forward(x);
}

WacoCostModel::PredictorQuery
WacoCostModel::beginQuery(const Mat& feature) const
{
    panicIf(feature.rows != 1 || feature.cols != feature_dim_,
            "feature shape mismatch");
    const nn::Linear& l0 = predictor_.firstLayer();
    const Mat& w0 = l0.weight(); // [H0 x (F + E)]
    u32 h0 = w0.rows;
    u32 emb_dim = w0.cols - feature_dim_;
    PredictorQuery q;
    q.featPreact = Mat(1, h0);
    q.wEmb = Mat(h0, emb_dim);
    const float* f = feature.row(0);
    for (u32 h = 0; h < h0; ++h) {
        const float* wrow = w0.row(h);
        float acc = l0.bias().at(0, h);
        for (u32 c = 0; c < feature_dim_; ++c)
            acc += f[c] * wrow[c];
        q.featPreact.at(0, h) = acc;
        std::copy(wrow + feature_dim_, wrow + w0.cols, q.wEmb.row(h));
    }
    return q;
}

Mat
WacoCostModel::scoreEmbeddings(const PredictorQuery& q, const Mat& embeddings,
                               const u32* ids, u32 count) const
{
    u32 emb_dim = q.wEmb.cols;
    panicIf(embeddings.cols != emb_dim, "embedding width mismatch");
    WACO_COUNT("model.embeddings_scored", count);
    Mat batch(count, emb_dim);
    for (u32 n = 0; n < count; ++n) {
        u32 row = ids ? ids[n] : n;
        std::copy(embeddings.row(row), embeddings.row(row) + emb_dim,
                  batch.row(n));
    }
    // First-layer pre-activation: the hoisted feature partial plus the
    // embedding block's GEMM — one real matrix multiply per batch instead
    // of a broadcast copy and a batch-of-1 forward per candidate.
    Mat y1;
    nn::matmulNT(batch, q.wEmb, y1);
    for (u32 n = 0; n < count; ++n) {
        float* row = y1.row(n);
        const float* fp = q.featPreact.row(0);
        for (u32 h = 0; h < y1.cols; ++h)
            row[h] += fp[h];
    }
    return predictor_.inferenceFromFirstPreact(std::move(y1));
}

Mat
WacoCostModel::predict(const Mat& feature,
                       const std::vector<SuperSchedule>& batch)
{
    Mat emb = embedder_->forward(batch);
    return predictFromEmbeddings(feature, emb);
}

WacoCostModel::ForwardState
WacoCostModel::forwardFull(const PatternInput& in,
                           const std::vector<SuperSchedule>& batch)
{
    ForwardState st;
    st.batch = static_cast<u32>(batch.size());
    Mat feature = extractor_->forward(in);
    st.pred = predict(feature, batch);
    return st;
}

void
WacoCostModel::backwardFull(const Mat& d_pred)
{
    Mat dx = predictor_.backward(d_pred);
    // Split gradient: feature part sums over the batch (the feature row was
    // broadcast), embedding part goes row-wise to the embedder.
    Mat d_feat(1, feature_dim_);
    Mat d_emb(dx.rows, embedder_->outDim());
    for (u32 n = 0; n < dx.rows; ++n) {
        for (u32 c = 0; c < feature_dim_; ++c)
            d_feat.at(0, c) += dx.at(n, c);
        std::copy(dx.row(n) + feature_dim_, dx.row(n) + dx.cols, d_emb.row(n));
    }
    embedder_->backward(d_emb);
    extractor_->backward(d_feat);
}

double
WacoCostModel::trainStep(const PatternInput& in,
                         const std::vector<SuperSchedule>& batch,
                         const std::vector<double>& runtimes, bool use_l2)
{
    return trainStepGuarded(in, batch, runtimes, use_l2, 0.0).loss;
}

WacoCostModel::StepOutcome
WacoCostModel::trainStepGuarded(const PatternInput& in,
                                const std::vector<SuperSchedule>& batch,
                                const std::vector<double>& runtimes,
                                bool use_l2, double clip_norm)
{
    auto st = forwardFull(in, batch);
    auto loss = use_l2 ? nn::l2LogLoss(st.pred, runtimes)
                       : nn::pairwiseHingeLoss(st.pred, runtimes);
    StepOutcome out;
    out.loss = loss.loss;
    if (!std::isfinite(loss.loss)) {
        // Poisoned label or diverged forward pass: no backward, no update.
        opt_->zeroGrad();
        out.applied = false;
        return out;
    }
    backwardFull(loss.dPred);
    out.gradNorm = opt_->gradNorm();
    if (!std::isfinite(out.gradNorm)) {
        opt_->zeroGrad();
        out.applied = false;
        return out;
    }
    if (clip_norm > 0.0)
        opt_->clipGradNorm(clip_norm);
    opt_->step();
    return out;
}

std::vector<std::vector<float>>
WacoCostModel::snapshotParams()
{
    std::vector<nn::Param*> params;
    extractor_->collectParams(params);
    embedder_->collectParams(params);
    predictor_.collectParams(params);
    std::vector<std::vector<float>> snap;
    snap.reserve(params.size());
    for (const nn::Param* p : params)
        snap.push_back(p->w.v);
    return snap;
}

void
WacoCostModel::restoreParams(const std::vector<std::vector<float>>& snap)
{
    std::vector<nn::Param*> params;
    extractor_->collectParams(params);
    embedder_->collectParams(params);
    predictor_.collectParams(params);
    panicIf(snap.size() != params.size(),
            "parameter snapshot count mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
        panicIf(snap[i].size() != params[i]->w.v.size(),
                "parameter snapshot shape mismatch");
        params[i]->w.v = snap[i];
    }
}

bool
WacoCostModel::paramsFinite()
{
    std::vector<nn::Param*> params;
    extractor_->collectParams(params);
    embedder_->collectParams(params);
    predictor_.collectParams(params);
    for (const nn::Param* p : params) {
        for (float x : p->w.v) {
            if (!std::isfinite(x))
                return false;
        }
    }
    return true;
}

double
WacoCostModel::evalLoss(const PatternInput& in,
                        const std::vector<SuperSchedule>& batch,
                        const std::vector<double>& runtimes, bool use_l2)
{
    auto st = forwardFull(in, batch);
    auto loss = use_l2 ? nn::l2LogLoss(st.pred, runtimes)
                       : nn::pairwiseHingeLoss(st.pred, runtimes);
    return loss.loss;
}

double
WacoCostModel::evalOrderAccuracy(const PatternInput& in,
                                 const std::vector<SuperSchedule>& batch,
                                 const std::vector<double>& runtimes)
{
    auto st = forwardFull(in, batch);
    return nn::pairwiseOrderAccuracy(st.pred, runtimes);
}

void
WacoCostModel::save(const std::string& path)
{
    std::vector<nn::Param*> params;
    extractor_->collectParams(params);
    embedder_->collectParams(params);
    predictor_.collectParams(params);
    nn::saveParams(params, path);
}

void
WacoCostModel::load(const std::string& path)
{
    std::vector<nn::Param*> params;
    extractor_->collectParams(params);
    embedder_->collectParams(params);
    predictor_.collectParams(params);
    nn::loadParams(params, path);
}

} // namespace waco
