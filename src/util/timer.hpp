/**
 * @file
 * Wall-clock timing helper for the real-execution engine and for reporting
 * tuning overheads.
 */
#pragma once

#include <chrono>

namespace waco {

/** Simple steady-clock stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        auto d = Clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace waco
