/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in WACO (dataset generation, schedule sampling,
 * NN initialization, search) draws from an explicitly seeded Rng so that
 * experiments are reproducible run-to-run.
 */
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/common.hpp"

namespace waco {

/** Seedable pseudo-random generator with the sampling helpers WACO needs. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x5eed) : engine_(seed) {}

    /** Reseed the generator. */
    void seed(u64 s) { engine_.seed(s); }

    /** Uniform integer in [lo, hi] inclusive. */
    i64
    uniformInt(i64 lo, i64 hi)
    {
        std::uniform_int_distribution<i64> d(lo, hi);
        return d(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine_);
    }

    /** Standard normal sample scaled by @p stddev around @p mean. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        std::normal_distribution<double> d(mean, stddev);
        return d(engine_);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool bernoulli(double p) { return uniformReal() < p; }

    /** Pick a uniformly random element index of a container of size n. */
    std::size_t
    index(std::size_t n)
    {
        panicIf(n == 0, "Rng::index on empty range");
        return static_cast<std::size_t>(uniformInt(0, static_cast<i64>(n) - 1));
    }

    /** Pick a random element from a vector (by const reference). */
    template <typename T>
    const T&
    pick(const std::vector<T>& v)
    {
        return v[index(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = index(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** A uniformly random permutation of {0, .., n-1}. */
    std::vector<u32>
    permutation(u32 n)
    {
        std::vector<u32> p(n);
        for (u32 i = 0; i < n; ++i)
            p[i] = i;
        shuffle(p);
        return p;
    }

    /** Sample an index according to non-negative weights (roulette wheel). */
    std::size_t
    weightedIndex(const std::vector<double>& weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        panicIf(total <= 0.0, "weightedIndex with non-positive total weight");
        double r = uniformReal(0.0, total);
        double acc = 0.0;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            acc += weights[i];
            if (r < acc)
                return i;
        }
        return weights.size() - 1;
    }

    /** Underlying engine, for std distributions not wrapped here. */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace waco
