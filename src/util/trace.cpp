#include "util/trace.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

namespace waco::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

/**
 * Per-thread span state. The owning thread touches stack/adopted without
 * locks; `spans` is the only cross-thread surface and is guarded by
 * `mutex` (uncontended except while a snapshot is being taken). `depth`
 * mirrors stack.size() atomically so activeSpanCount() can read it from
 * other threads race-free.
 */
struct Shard
{
    u32 tid = 0;
    std::vector<u64> stack;
    u64 adopted = 0;
    std::atomic<u32> depth{0};
    std::mutex mutex;
    std::vector<SpanRecord> spans;
};

} // namespace detail

namespace {

using detail::Shard;

std::atomic<u64> g_next_span_id{1};
std::atomic<u32> g_next_tid{0};

struct ShardRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<Shard>> shards;
};

/** Leaked on purpose: ThreadPool workers may record spans during static
 *  destruction, after main()'s statics are gone. */
ShardRegistry&
shardRegistry()
{
    static ShardRegistry* r = new ShardRegistry;
    return *r;
}

Shard*
localShard()
{
    thread_local std::shared_ptr<Shard> shard = [] {
        auto s = std::make_shared<Shard>();
        s->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
        auto& reg = shardRegistry();
        std::lock_guard<std::mutex> l(reg.mutex);
        reg.shards.push_back(s);
        return s;
    }();
    return shard.get();
}

i64
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
appendJsonEscaped(std::string& out, const std::string& s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
}

} // namespace

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
Span::begin(const char* name)
{
    shard_ = localShard();
    name_ = name;
    id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_ = shard_->stack.empty() ? shard_->adopted : shard_->stack.back();
    shard_->stack.push_back(id_);
    shard_->depth.store(static_cast<u32>(shard_->stack.size()),
                        std::memory_order_relaxed);
    start_ = nowNs();
}

void
Span::end()
{
    // RAII guarantees this span is the top of its thread's stack.
    shard_->stack.pop_back();
    shard_->depth.store(static_cast<u32>(shard_->stack.size()),
                        std::memory_order_relaxed);
    SpanRecord r;
    r.id = id_;
    r.parent = parent_;
    r.name = name_;
    r.tid = shard_->tid;
    r.startNs = start_;
    r.endNs = nowNs();
    std::lock_guard<std::mutex> l(shard_->mutex);
    shard_->spans.push_back(std::move(r));
}

void
ScopedParent::adopt(u64 parent)
{
    shard_ = localShard();
    saved_ = shard_->adopted;
    shard_->adopted = parent;
}

void
ScopedParent::restore()
{
    shard_->adopted = saved_;
}

u64
currentSpan()
{
    if (!enabled())
        return 0;
    Shard* s = localShard();
    return s->stack.empty() ? s->adopted : s->stack.back();
}

u32
currentThreadId()
{
    return localShard()->tid;
}

u64
activeSpanCount()
{
    auto& reg = shardRegistry();
    std::lock_guard<std::mutex> l(reg.mutex);
    u64 n = 0;
    for (const auto& s : reg.shards)
        n += s->depth.load(std::memory_order_relaxed);
    return n;
}

std::vector<SpanRecord>
snapshot()
{
    std::vector<SpanRecord> out;
    auto& reg = shardRegistry();
    std::lock_guard<std::mutex> l(reg.mutex);
    for (const auto& s : reg.shards) {
        std::lock_guard<std::mutex> l2(s->mutex);
        out.insert(out.end(), s->spans.begin(), s->spans.end());
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.startNs != b.startNs ? a.startNs < b.startNs
                                                : a.id < b.id;
              });
    return out;
}

void
clear()
{
    auto& reg = shardRegistry();
    std::lock_guard<std::mutex> l(reg.mutex);
    for (const auto& s : reg.shards) {
        std::lock_guard<std::mutex> l2(s->mutex);
        s->spans.clear();
    }
}

std::string
serializeChromeTrace(const std::vector<SpanRecord>& spans)
{
    std::vector<SpanRecord> sorted = spans;
    std::sort(sorted.begin(), sorted.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.startNs != b.startNs ? a.startNs < b.startNs
                                                : a.id < b.id;
              });
    i64 base = sorted.empty() ? 0 : sorted.front().startNs;
    for (const auto& s : sorted)
        base = std::min(base, s.startNs);

    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    char buf[160];
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const SpanRecord& s = sorted[i];
        out += "{\"name\":\"";
        appendJsonEscaped(out, s.name);
        out += "\",\"cat\":\"waco\",\"ph\":\"X\",\"pid\":1";
        std::snprintf(buf, sizeof buf,
                      ",\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                      s.tid, static_cast<double>(s.startNs - base) / 1e3,
                      static_cast<double>(s.endNs - s.startNs) / 1e3);
        out += buf;
        std::snprintf(buf, sizeof buf,
                      ",\"args\":{\"id\":%llu,\"parent\":%llu}}",
                      static_cast<unsigned long long>(s.id),
                      static_cast<unsigned long long>(s.parent));
        out += buf;
        out += i + 1 < sorted.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

namespace {

/** Tiny cursor-based scanner for the exact JSON this module emits. */
struct TraceParser
{
    const std::string& s;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string& why) const
    {
        fatal("malformed trace JSON at byte " + std::to_string(pos) + ": " +
              why);
    }

    void
    expect(const std::string& tok)
    {
        skipWs();
        if (s.compare(pos, tok.size(), tok) != 0)
            fail("expected '" + tok + "'");
        pos += tok.size();
    }

    bool
    tryConsume(const std::string& tok)
    {
        skipWs();
        if (s.compare(pos, tok.size(), tok) != 0)
            return false;
        pos += tok.size();
        return true;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    std::string
    parseString()
    {
        expect("\"");
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    fail("truncated escape");
            }
            out.push_back(s[pos++]);
        }
        if (pos >= s.size())
            fail("unterminated string");
        ++pos;
        return out;
    }

    double
    parseNumber()
    {
        skipWs();
        std::size_t end = pos;
        while (end < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[end])) ||
                s[end] == '-' || s[end] == '+' || s[end] == '.' ||
                s[end] == 'e' || s[end] == 'E')) {
            ++end;
        }
        if (end == pos)
            fail("expected a number");
        double v = std::stod(s.substr(pos, end - pos));
        pos = end;
        return v;
    }
};

} // namespace

std::vector<SpanRecord>
parseChromeTrace(const std::string& json)
{
    TraceParser p{json};
    p.expect("{");
    p.expect("\"displayTimeUnit\"");
    p.expect(":");
    p.parseString();
    p.expect(",");
    p.expect("\"traceEvents\"");
    p.expect(":");
    p.expect("[");

    std::vector<SpanRecord> out;
    if (!p.tryConsume("]")) {
        do {
            p.expect("{");
            SpanRecord r;
            p.expect("\"name\"");
            p.expect(":");
            r.name = p.parseString();
            p.expect(",");
            p.expect("\"cat\"");
            p.expect(":");
            p.parseString();
            p.expect(",");
            p.expect("\"ph\"");
            p.expect(":");
            if (p.parseString() != "X")
                p.fail("only ph:\"X\" events are emitted");
            p.expect(",");
            p.expect("\"pid\"");
            p.expect(":");
            p.parseNumber();
            p.expect(",");
            p.expect("\"tid\"");
            p.expect(":");
            r.tid = static_cast<u32>(p.parseNumber());
            p.expect(",");
            p.expect("\"ts\"");
            p.expect(":");
            double ts = p.parseNumber();
            p.expect(",");
            p.expect("\"dur\"");
            p.expect(":");
            double dur = p.parseNumber();
            p.expect(",");
            p.expect("\"args\"");
            p.expect(":");
            p.expect("{");
            p.expect("\"id\"");
            p.expect(":");
            r.id = static_cast<u64>(p.parseNumber());
            p.expect(",");
            p.expect("\"parent\"");
            p.expect(":");
            r.parent = static_cast<u64>(p.parseNumber());
            p.expect("}");
            p.expect("}");
            // %.3f microseconds round-trips exactly to integer nanoseconds.
            r.startNs = static_cast<i64>(std::llround(ts * 1e3));
            r.endNs = r.startNs + static_cast<i64>(std::llround(dur * 1e3));
            out.push_back(std::move(r));
        } while (p.tryConsume(","));
        p.expect("]");
    }
    p.expect("}");
    return out;
}

void
writeChromeTrace(const std::string& path)
{
    std::string doc = serializeChromeTrace(snapshot());
    FILE* f = std::fopen(path.c_str(), "w");
    fatalIf(!f, "cannot open trace output file '" + path + "'");
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace waco::trace
