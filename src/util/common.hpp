/**
 * @file
 * Shared primitive aliases and error-reporting helpers used across WACO.
 *
 * Follows the gem5 convention of separating unrecoverable internal errors
 * (panic) from user/configuration errors (fatal).
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace waco {

using i32 = std::int32_t;
using u32 = std::uint32_t;
using i64 = std::int64_t;
using u64 = std::uint64_t;

/** Error thrown for invalid user input or configuration (recoverable by the caller). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Error thrown for internal invariant violations (a WACO bug, not a user error). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg) : std::logic_error(msg) {}
};

/** Raise a FatalError. Use for bad user input / impossible configurations. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

/** Raise a PanicError. Use when an internal invariant is broken. */
[[noreturn]] inline void
panic(const std::string& msg)
{
    throw PanicError("internal error: " + msg);
}

/** Check a condition that indicates user error when false. */
inline void
fatalIf(bool cond, const std::string& msg)
{
    if (cond)
        fatal(msg);
}

/** Check an internal invariant. */
inline void
panicIf(bool cond, const std::string& msg)
{
    if (cond)
        panic(msg);
}

/** Integer ceiling division for non-negative values. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** True when @p x is a power of two (and non-zero). */
constexpr bool
isPow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2 for positive values. */
constexpr u32
log2Floor(u64 x)
{
    u32 r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

} // namespace waco
