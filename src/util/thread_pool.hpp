/**
 * @file
 * Persistent worker thread pool with OpenMP-style dynamic chunking.
 *
 * The auto-tuner's hot path runs thousands of small kernel invocations and
 * oracle measurements; spawning and joining std::threads per call (the old
 * pattern in exec/scheduled.cpp and exec/kernels.cpp) pays thread-creation
 * cost every time. This pool keeps a fixed set of workers parked on a
 * condition variable and hands them one parallelFor job at a time: workers
 * atomically claim chunks of the iteration space, exactly like
 * `#pragma omp parallel for schedule(dynamic, chunk)`.
 *
 * The number of participating workers is capped at the number of available
 * chunks, so a 3-chunk job never wakes 48 threads (the old dynamicTopLevel
 * oversubscription bug). The calling thread always participates, so a job
 * makes progress even with an empty pool.
 *
 * globalPool() is the process-wide instance; it starts empty and grows on
 * demand up to the largest ParallelConfig-style request seen (bounded by
 * kMaxWorkers), so the pool is sized by actual use, not guessed up front.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace waco {

/** Fixed-worker pool running dynamically-chunked parallel loops. */
class ThreadPool
{
  public:
    /** @param workers resident worker threads (0 = start empty and rely on
     *  ensureWorkers / the calling thread). */
    explicit ThreadPool(u32 workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Resident worker threads (excluding callers). */
    u32 workers() const;

    /** Grow (never shrink) the pool to at least @p n workers. */
    void ensureWorkers(u32 n);

    /**
     * Run @p body over [0, total) in dynamic chunks of @p chunk iterations:
     * body(begin, end) per claimed chunk. Uses at most @p maxThreads
     * threads including the caller, further capped by the number of chunks
     * and the pool size. Blocks until every chunk has run. Serial execution
     * (one participant) degenerates to a single body(0, total) call.
     * Concurrent parallelFor calls from different threads are serialized.
     */
    void parallelFor(u64 total, u64 chunk, u32 maxThreads,
                     const std::function<void(u64, u64)>& body);

    /** Hard cap on resident workers of the global pool. */
    static constexpr u32 kMaxWorkers = 64;

  private:
    struct Job
    {
        std::atomic<u64> next{0};
        u64 total = 0;
        u64 chunk = 1;
        const std::function<void(u64, u64)>* body = nullptr;
        std::atomic<u32> pending{0}; ///< Workers still inside the job.
        u64 traceParent = 0; ///< Caller's span, adopted by the workers.
    };

    void workerLoop(u32 id);
    static void runChunks(Job& job);

    std::atomic<u32> waiting_{0};       ///< Callers queued on callerMutex_.
    mutable std::mutex mutex_;          ///< Guards job hand-off + threads_.
    std::condition_variable wake_;      ///< Workers park here.
    std::condition_variable done_;      ///< parallelFor waits here.
    std::mutex callerMutex_;            ///< Serializes parallelFor calls.
    std::vector<std::thread> threads_;
    Job* job_ = nullptr;
    u64 generation_ = 0;
    u32 invited_ = 0; ///< Workers that may join the current generation.
    bool stop_ = false;
};

/** The process-wide pool shared by the executor and the oracle. */
ThreadPool& globalPool();

} // namespace waco
