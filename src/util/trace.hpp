/**
 * @file
 * Tracing spans: RAII scopes with nesting, thread attribution, and a
 * Chrome trace_event exporter.
 *
 * Every `Span` records a (name, thread, start, end, parent) tuple into a
 * per-thread shard; `snapshot()` merges the shards into one list sorted by
 * start time, and `serializeChromeTrace()` turns that list into a JSON
 * timeline chrome://tracing and Perfetto can open directly. Nesting is
 * tracked with a thread-local span stack; work handed to another thread
 * (the ThreadPool's workers) keeps its logical parent through
 * `ScopedParent`, so a tune() timeline shows pool chunks nested under the
 * phase that spawned them.
 *
 * Cost model:
 *  - compiled out: `-DWACO_OBSERVABILITY=0` turns every WACO_* macro into
 *    `((void)0)`; no instrumentation code is emitted at call sites.
 *  - compiled in, disabled (the default at runtime): one relaxed atomic
 *    load + branch per macro — bench/bench_trace_overhead.cpp pins this
 *    under 2% on a ~µs-granularity workload.
 *  - enabled: span begin/end is a thread-local stack push/pop plus one
 *    record append under an uncontended per-thread mutex.
 *
 * Toggling tracing on mid-span is benign: spans opened while disabled are
 * simply never recorded, and spans opened while enabled are recorded even
 * if tracing is switched off before they close.
 */
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "util/common.hpp"

/** Compile-time master switch for all observability macros. */
#ifndef WACO_OBSERVABILITY
#define WACO_OBSERVABILITY 1
#endif

namespace waco::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
struct Shard;
} // namespace detail

/** True when spans are being recorded (runtime toggle; default off). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Flip span recording on or off at runtime. */
void setEnabled(bool on);

/** One completed span, as returned by snapshot() / parseChromeTrace(). */
struct SpanRecord
{
    u64 id = 0;       ///< Unique per span, never 0.
    u64 parent = 0;   ///< Enclosing span's id; 0 = root.
    std::string name; ///< Scope label ("tune.search", "pool.worker", ...).
    u32 tid = 0;      ///< Dense per-thread index (0 = first tracing thread).
    i64 startNs = 0;  ///< Steady-clock nanoseconds.
    i64 endNs = 0;
};

/** RAII tracing scope. @p name must have static storage duration. */
class Span
{
  public:
    explicit Span(const char* name)
    {
        if (enabled())
            begin(name);
    }

    ~Span()
    {
        if (shard_)
            end();
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /** This span's id, or 0 when tracing was disabled at construction. */
    u64 id() const { return id_; }

  private:
    void begin(const char* name);
    void end();

    detail::Shard* shard_ = nullptr;
    const char* name_ = nullptr;
    u64 id_ = 0;
    u64 parent_ = 0;
    i64 start_ = 0;
};

/**
 * Adopt @p parent as the logical parent of every root span opened on this
 * thread while the object is alive. This is the cross-thread handoff: a
 * ThreadPool worker adopts the submitting caller's current span so its
 * own spans attach to the caller's subtree instead of floating free.
 */
class ScopedParent
{
  public:
    explicit ScopedParent(u64 parent)
    {
        if (enabled() && parent != 0)
            adopt(parent);
    }

    ~ScopedParent()
    {
        if (shard_)
            restore();
    }

    ScopedParent(const ScopedParent&) = delete;
    ScopedParent& operator=(const ScopedParent&) = delete;

  private:
    void adopt(u64 parent);
    void restore();

    detail::Shard* shard_ = nullptr;
    u64 saved_ = 0;
};

/** Innermost active span id on this thread (0 = none or disabled). */
u64 currentSpan();

/** Dense tracing thread index of the calling thread. */
u32 currentThreadId();

/** Number of spans currently open across all threads (test invariant). */
u64 activeSpanCount();

/** All completed spans so far, sorted by (startNs, id). */
std::vector<SpanRecord> snapshot();

/** Drop all completed spans (active spans are unaffected). */
void clear();

/**
 * Chrome trace_event JSON for @p spans: one "X" (complete) event per span,
 * timestamps rebased to the earliest start and printed as microseconds
 * with fixed 3-decimal precision. Deterministic for a given span list:
 * serialize(parseChromeTrace(s)) == s byte-for-byte.
 */
std::string serializeChromeTrace(const std::vector<SpanRecord>& spans);

/** Parse a serializeChromeTrace() document back into span records. */
std::vector<SpanRecord> parseChromeTrace(const std::string& json);

/** Write serializeChromeTrace(snapshot()) to @p path. */
void writeChromeTrace(const std::string& path);

} // namespace waco::trace

#if WACO_OBSERVABILITY
#define WACO_OBS_CONCAT2(a, b) a##b
#define WACO_OBS_CONCAT(a, b) WACO_OBS_CONCAT2(a, b)
/** Open a tracing span covering the rest of the enclosing scope. */
#define WACO_SPAN(name) \
    ::waco::trace::Span WACO_OBS_CONCAT(waco_span_, __LINE__){name}
/** The calling thread's innermost span id (0 when disabled). */
#define WACO_CURRENT_SPAN() ::waco::trace::currentSpan()
/** Adopt @p parent for root spans opened in the enclosing scope. */
#define WACO_ADOPT_PARENT(parent) \
    ::waco::trace::ScopedParent WACO_OBS_CONCAT(waco_adopt_, __LINE__){parent}
#else
#define WACO_SPAN(name) ((void)0)
#define WACO_CURRENT_SPAN() (::waco::u64{0})
#define WACO_ADOPT_PARENT(parent) ((void)0)
#endif
