#include "util/logging.hpp"

#include <cstdio>
#include <mutex>

namespace waco {

namespace {

LogLevel g_level = LogLevel::Info;
std::mutex g_mutex;

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      default: return "?";
    }
}

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level) || g_level == LogLevel::Off)
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[waco:%s] %s\n", levelName(level), msg.c_str());
}

} // namespace waco
