/**
 * @file
 * Cooperative cancellation: a CancelToken combines an explicit client
 * cancel flag with an absolute deadline, and long-running phases poll it at
 * their natural checkpoints (tuner phase boundaries, HNSW frontier steps,
 * between top-k measurements). Polling is two relaxed atomic loads plus a
 * clock read only when a deadline is armed, so threading a token through a
 * hot loop is free when nobody cancels.
 *
 * Lives in util (not service) because the core tuner and the ANN search
 * honor tokens without depending on the service layer.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/common.hpp"

namespace waco {

/**
 * Thrown by cancellation-aware code when a token fired at a point where no
 * partial result exists yet (e.g. before feature extraction finished).
 * Deliberately NOT a FatalError: callers that installed the token catch it
 * and degrade; nobody else should swallow it by accident.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/** Shared cancel/deadline state; safe to poll and fire from any thread. */
class CancelToken
{
  public:
    /** Explicit client-side cancellation (idempotent). */
    void cancel() { cancelled_.store(true, std::memory_order_release); }

    /** Arm the deadline @p seconds from now (monotonic clock). */
    void
    setDeadline(double seconds)
    {
        if (!std::isfinite(seconds)) {
            clearDeadline();
            return;
        }
        auto now = std::chrono::steady_clock::now().time_since_epoch();
        i64 now_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
        deadline_ns_.store(now_ns + static_cast<i64>(seconds * 1e9),
                           std::memory_order_release);
    }

    void
    clearDeadline()
    {
        deadline_ns_.store(std::numeric_limits<i64>::max(),
                           std::memory_order_release);
    }

    /** True after cancel() (deadline expiry does not set this). */
    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

    /** True once the armed deadline has passed. */
    bool
    expired() const
    {
        i64 dl = deadline_ns_.load(std::memory_order_acquire);
        if (dl == std::numeric_limits<i64>::max())
            return false;
        auto now = std::chrono::steady_clock::now().time_since_epoch();
        return std::chrono::duration_cast<std::chrono::nanoseconds>(now)
                   .count() >= dl;
    }

    /** The poll: cancelled or past deadline. */
    bool stopRequested() const { return cancelled() || expired(); }

    /** Seconds until the deadline; +inf when unarmed, <= 0 when expired. */
    double
    remainingSeconds() const
    {
        i64 dl = deadline_ns_.load(std::memory_order_acquire);
        if (dl == std::numeric_limits<i64>::max())
            return std::numeric_limits<double>::infinity();
        auto now = std::chrono::steady_clock::now().time_since_epoch();
        i64 now_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
        return static_cast<double>(dl - now_ns) * 1e-9;
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<i64> deadline_ns_{std::numeric_limits<i64>::max()};
};

} // namespace waco
