#include "util/metrics.hpp"

#include <cstdio>

namespace waco::metrics {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {
std::atomic<u32> g_next_slot{0};
} // namespace

u32
threadSlot()
{
    thread_local u32 slot =
        g_next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::read() const
{
    HistogramSnapshot out;
    u64 min = ~u64{0};
    for (const auto& s : shards_) {
        out.count += s.count.load(std::memory_order_relaxed);
        out.sum += s.sum.load(std::memory_order_relaxed);
        min = std::min(min, s.min.load(std::memory_order_relaxed));
        out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
        for (u32 b = 0; b < kHistBuckets; ++b)
            out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    out.min = out.count == 0 ? 0 : min;
    return out;
}

void
Histogram::reset()
{
    for (auto& s : shards_) {
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
        s.min.store(~u64{0}, std::memory_order_relaxed);
        s.max.store(0, std::memory_order_relaxed);
        for (auto& b : s.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

MetricsRegistry&
MetricsRegistry::instance()
{
    // Leaked on purpose: pool workers may update metrics during static
    // destruction, after main()'s statics are gone.
    static MetricsRegistry* r = new MetricsRegistry;
    return *r;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> l(mutex_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> l(mutex_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>(name);
    return *slot;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> l(mutex_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(name);
    return *slot;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> l(mutex_);
    for (auto& [_, c] : counters_)
        c->reset();
    for (auto& [_, g] : gauges_)
        g->reset();
    for (auto& [_, h] : histograms_)
        h->reset();
}

std::map<std::string, u64>
MetricsRegistry::counters() const
{
    std::lock_guard<std::mutex> l(mutex_);
    std::map<std::string, u64> out;
    for (const auto& [name, c] : counters_)
        out[name] = c->total();
    return out;
}

std::map<std::string, double>
MetricsRegistry::gauges() const
{
    std::lock_guard<std::mutex> l(mutex_);
    std::map<std::string, double> out;
    for (const auto& [name, g] : gauges_)
        out[name] = g->value();
    return out;
}

std::map<std::string, HistogramSnapshot>
MetricsRegistry::histograms() const
{
    std::lock_guard<std::mutex> l(mutex_);
    std::map<std::string, HistogramSnapshot> out;
    for (const auto& [name, h] : histograms_)
        out[name] = h->read();
    return out;
}

std::string
MetricsRegistry::exportJson() const
{
    auto cs = counters();
    auto gs = gauges();
    auto hs = histograms();

    std::string out = "{\n  \"counters\": {";
    char buf[96];
    bool first = true;
    for (const auto& [name, v] : cs) {
        std::snprintf(buf, sizeof buf, "%s\n    \"%s\": %llu",
                      first ? "" : ",", name.c_str(),
                      static_cast<unsigned long long>(v));
        out += buf;
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, v] : gs) {
        std::snprintf(buf, sizeof buf, "%s\n    \"%s\": %.17g",
                      first ? "" : ",", name.c_str(), v);
        out += buf;
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : hs) {
        std::snprintf(
            buf, sizeof buf,
            "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, "
            "\"min\": %llu, \"max\": %llu, \"buckets\": [",
            first ? "" : ",", name.c_str(),
            static_cast<unsigned long long>(h.count),
            static_cast<unsigned long long>(h.sum),
            static_cast<unsigned long long>(h.min),
            static_cast<unsigned long long>(h.max));
        out += buf;
        bool bfirst = true;
        for (u32 b = 0; b < kHistBuckets; ++b) {
            if (h.buckets[b] == 0)
                continue;
            std::snprintf(buf, sizeof buf, "%s[%u, %llu]",
                          bfirst ? "" : ", ", b,
                          static_cast<unsigned long long>(h.buckets[b]));
            out += buf;
            bfirst = false;
        }
        out += "]}";
        first = false;
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

void
writeMetricsJson(const std::string& path)
{
    std::string doc = MetricsRegistry::instance().exportJson();
    FILE* f = std::fopen(path.c_str(), "w");
    fatalIf(!f, "cannot open metrics output file '" + path + "'");
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace waco::metrics
