/**
 * @file
 * Minimal leveled logging to stderr. Benches print their tables to stdout;
 * logging is for progress/diagnostics only and can be silenced globally.
 */
#pragma once

#include <sstream>
#include <string>

namespace waco {

/** Severity levels in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

/** Global log-level accessor. */
LogLevel logLevel();

/** Set the global log level (e.g. LogLevel::Off in unit tests). */
void setLogLevel(LogLevel level);

/** Emit one log line at @p level if enabled. */
void logMessage(LogLevel level, const std::string& msg);

/** Convenience wrappers. */
inline void logDebug(const std::string& m) { logMessage(LogLevel::Debug, m); }
inline void logInfo(const std::string& m) { logMessage(LogLevel::Info, m); }
inline void logWarn(const std::string& m) { logMessage(LogLevel::Warn, m); }

/** Stream-style builder: LogLine(LogLevel::Info) << "x=" << x; emits on destruction. */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}
    ~LogLine() { logMessage(level_, os_.str()); }

    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine&
    operator<<(const T& v)
    {
        os_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream os_;
};

} // namespace waco
