#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace waco {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
variance(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        fatalIf(x <= 0.0, "geomean requires positive inputs");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    fatalIf(xs.empty(), "percentile of empty range");
    fatalIf(p < 0.0 || p > 100.0, "percentile p out of [0,100]");
    std::sort(xs.begin(), xs.end());
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
gini(std::vector<double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double cum = 0.0, weighted = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        cum += xs[i];
        weighted += xs[i] * static_cast<double>(i + 1);
    }
    if (cum <= 0.0)
        return 0.0;
    double n = static_cast<double>(xs.size());
    return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

} // namespace waco
