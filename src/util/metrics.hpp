/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and power-of-two
 * histograms with a lock-free fast path.
 *
 * Every metric stripes its state across `kShards` cache-line-aligned
 * shards; a thread picks a shard once (a thread-local slot index) and then
 * updates it with relaxed atomics only — no locks, no contention between
 * pool workers on different shards, and exact merged totals once writers
 * quiesce. Handles returned by MetricsRegistry live for the whole process,
 * so call sites cache them in a function-local static (what the WACO_COUNT
 * / WACO_GAUGE / WACO_HIST macros do).
 *
 * Like tracing (util/trace.hpp), collection is off by default: the macro
 * fast path is one relaxed load + branch when disabled, and the macros
 * compile to nothing under -DWACO_OBSERVABILITY=0.
 */
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/trace.hpp" // WACO_OBSERVABILITY

namespace waco::metrics {

namespace detail {
extern std::atomic<bool> g_enabled;
/** Thread's shard index (assigned round-robin on first use). */
u32 threadSlot();
} // namespace detail

/** True when metric updates are being applied (runtime toggle). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Flip metric collection on or off at runtime. */
void setEnabled(bool on);

/** Shards per metric; more than the ThreadPool's worker cap would ever
 *  keep busy at once, so slot collisions are rare (and harmless). */
constexpr u32 kShards = 64;

/** log2 histogram buckets: bucket 0 holds value 0, bucket b >= 1 holds
 *  values in [2^(b-1), 2^b); the last bucket absorbs everything above. */
constexpr u32 kHistBuckets = 48;

/** Monotonically increasing event count. */
class Counter
{
  public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void
    add(u64 n = 1)
    {
        shards_[detail::threadSlot()].v.fetch_add(n,
                                                  std::memory_order_relaxed);
    }

    /** Sum across shards (exact once writers quiesce). */
    u64
    total() const
    {
        u64 t = 0;
        for (const auto& s : shards_)
            t += s.v.load(std::memory_order_relaxed);
        return t;
    }

    void
    reset()
    {
        for (auto& s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

    const std::string& name() const { return name_; }

  private:
    struct alignas(64) Shard
    {
        std::atomic<u64> v{0};
    };

    std::string name_;
    std::array<Shard, kShards> shards_{};
};

/** Last-write-wins double value (queue depths, losses, pool size). */
class Gauge
{
  public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    void
    set(double v)
    {
        u64 bits;
        std::memcpy(&bits, &v, sizeof bits);
        bits_.store(bits, std::memory_order_relaxed);
    }

    double
    value() const
    {
        u64 bits = bits_.load(std::memory_order_relaxed);
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    void reset() { bits_.store(0, std::memory_order_relaxed); }

    const std::string& name() const { return name_; }

  private:
    std::string name_;
    std::atomic<u64> bits_{0};
};

/** Merged histogram state. */
struct HistogramSnapshot
{
    u64 count = 0;
    u64 sum = 0;
    u64 min = 0; ///< 0 when count == 0.
    u64 max = 0;
    std::array<u64, kHistBuckets> buckets{};
};

/** log2-bucketed distribution of non-negative integer samples. */
class Histogram
{
  public:
    explicit Histogram(std::string name) : name_(std::move(name)) {}

    /** Bucket index a value lands in. */
    static u32
    bucketOf(u64 v)
    {
        return v == 0 ? 0 : std::min(kHistBuckets - 1, log2Floor(v) + 1);
    }

    void
    record(u64 v)
    {
        Shard& s = shards_[detail::threadSlot()];
        s.count.fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
        s.buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        u64 cur = s.min.load(std::memory_order_relaxed);
        while (v < cur &&
               !s.min.compare_exchange_weak(cur, v,
                                            std::memory_order_relaxed)) {
        }
        cur = s.max.load(std::memory_order_relaxed);
        while (v > cur &&
               !s.max.compare_exchange_weak(cur, v,
                                            std::memory_order_relaxed)) {
        }
    }

    HistogramSnapshot read() const;
    void reset();

    const std::string& name() const { return name_; }

  private:
    struct alignas(64) Shard
    {
        std::atomic<u64> count{0};
        std::atomic<u64> sum{0};
        std::atomic<u64> min{~u64{0}};
        std::atomic<u64> max{0};
        std::array<std::atomic<u64>, kHistBuckets> buckets{};
    };

    std::string name_;
    std::array<Shard, kShards> shards_{};
};

/**
 * The process-wide registry. Metric handles are created on first lookup
 * and never destroyed, so references stay valid for the process lifetime;
 * reset() zeroes values without invalidating handles.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry& instance();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Zero every registered metric (handles stay valid). */
    void reset();

    /** Merged values, for tests and structured consumers. */
    std::map<std::string, u64> counters() const;
    std::map<std::string, double> gauges() const;
    std::map<std::string, HistogramSnapshot> histograms() const;

    /** Flat metrics JSON: {"counters":{...},"gauges":{...},
     *  "histograms":{...}} with names sorted. */
    std::string exportJson() const;

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_; ///< Guards the name maps, not the values.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Write MetricsRegistry::instance().exportJson() to @p path. */
void writeMetricsJson(const std::string& path);

} // namespace waco::metrics

#if WACO_OBSERVABILITY
/** Add @p n to counter @p name (evaluates @p n only when enabled). */
#define WACO_COUNT(name, n)                                                  \
    do {                                                                     \
        if (::waco::metrics::enabled()) {                                    \
            static ::waco::metrics::Counter& waco_c_ =                       \
                ::waco::metrics::MetricsRegistry::instance().counter(name);  \
            waco_c_.add(n);                                                  \
        }                                                                    \
    } while (0)
/** Set gauge @p name to @p v. */
#define WACO_GAUGE(name, v)                                                  \
    do {                                                                     \
        if (::waco::metrics::enabled()) {                                    \
            static ::waco::metrics::Gauge& waco_g_ =                         \
                ::waco::metrics::MetricsRegistry::instance().gauge(name);    \
            waco_g_.set(static_cast<double>(v));                             \
        }                                                                    \
    } while (0)
/** Record sample @p v in histogram @p name. */
#define WACO_HIST(name, v)                                                   \
    do {                                                                     \
        if (::waco::metrics::enabled()) {                                    \
            static ::waco::metrics::Histogram& waco_h_ =                     \
                ::waco::metrics::MetricsRegistry::instance().histogram(      \
                    name);                                                   \
            waco_h_.record(static_cast<::waco::u64>(v));                     \
        }                                                                    \
    } while (0)
#else
#define WACO_COUNT(name, n) ((void)0)
#define WACO_GAUGE(name, v) ((void)0)
#define WACO_HIST(name, v) ((void)0)
#endif
