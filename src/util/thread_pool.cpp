#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace waco {

ThreadPool::ThreadPool(u32 workers)
{
    ensureWorkers(workers);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> l(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : threads_)
        t.join();
}

u32
ThreadPool::workers() const
{
    std::lock_guard<std::mutex> l(mutex_);
    return static_cast<u32>(threads_.size());
}

void
ThreadPool::ensureWorkers(u32 n)
{
    std::lock_guard<std::mutex> l(mutex_);
    n = std::min(n, kMaxWorkers);
    while (threads_.size() < n)
        threads_.emplace_back([this, id = static_cast<u32>(threads_.size())] {
            workerLoop(id);
        });
    WACO_GAUGE("pool.workers", threads_.size());
}

void
ThreadPool::runChunks(Job& job)
{
    for (;;) {
        u64 begin = job.next.fetch_add(job.chunk);
        if (begin >= job.total)
            return;
        (*job.body)(begin, std::min(job.total, begin + job.chunk));
    }
}

void
ThreadPool::workerLoop(u32 id)
{
    u64 seen = 0;
    for (;;) {
        Job* job = nullptr;
        {
            std::unique_lock<std::mutex> l(mutex_);
            wake_.wait(l, [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            if (id < invited_)
                job = job_;
        }
        if (job) {
            {
                // Attribute this worker's share of the job to the span the
                // submitting caller was in (cross-thread parent handoff).
                WACO_ADOPT_PARENT(job->traceParent);
                WACO_SPAN("pool.worker");
                runChunks(*job);
            }
            if (job->pending.fetch_sub(1) == 1) {
                // Lock so the notify cannot slip between the waiter's
                // predicate check and its wait.
                std::lock_guard<std::mutex> l(mutex_);
                done_.notify_all();
            }
        }
    }
}

void
ThreadPool::parallelFor(u64 total, u64 chunk, u32 maxThreads,
                        const std::function<void(u64, u64)>& body)
{
    if (total == 0)
        return;
    chunk = std::max<u64>(1, chunk);
    maxThreads = std::max<u32>(1, maxThreads);
    // Cap participants at the number of available chunks: a 3-chunk job
    // uses at most 3 threads no matter how many were requested.
    u64 num_chunks = ceilDiv(total, chunk);
    u32 participants = static_cast<u32>(
        std::min<u64>(maxThreads, std::min<u64>(num_chunks, kMaxWorkers + 1)));

    // Queue depth: callers (from different threads) serialized behind the
    // in-flight job. Updated around the lock so the gauge reflects actual
    // waiting time, not hold time.
    u32 depth = waiting_.fetch_add(1, std::memory_order_relaxed) + 1;
    WACO_GAUGE("pool.queue_depth", depth);
    std::lock_guard<std::mutex> caller_lock(callerMutex_);
    depth = waiting_.fetch_sub(1, std::memory_order_relaxed) - 1;
    WACO_GAUGE("pool.queue_depth", depth);
    (void)depth;
    u32 helpers = std::min(participants - 1, workers());
    if (helpers == 0) {
        body(0, total);
        return;
    }

    WACO_SPAN("pool.job");
    WACO_COUNT("pool.jobs", 1);
    WACO_HIST("pool.participants", helpers + 1);
    Job job;
    job.total = total;
    job.chunk = chunk;
    job.body = &body;
    job.traceParent = WACO_CURRENT_SPAN();
    job.pending.store(helpers);
    {
        std::lock_guard<std::mutex> l(mutex_);
        job_ = &job;
        invited_ = helpers;
        ++generation_;
    }
    wake_.notify_all();
    runChunks(job); // the caller is always a participant
    {
        std::unique_lock<std::mutex> l(mutex_);
        done_.wait(l, [&] { return job.pending.load() == 0; });
        job_ = nullptr;
    }
}

ThreadPool&
globalPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace waco
