/**
 * @file
 * Small statistics helpers used by the evaluation harness (geomean speedups,
 * distribution summaries of per-row nonzero counts, ...).
 */
#pragma once

#include <vector>

#include "util/common.hpp"

namespace waco {

/** Arithmetic mean; 0 for an empty range. */
double mean(const std::vector<double>& xs);

/** Population variance; 0 for fewer than two samples. */
double variance(const std::vector<double>& xs);

/** Geometric mean; requires strictly positive inputs. */
double geomean(const std::vector<double>& xs);

/** p-th percentile (0..100) using nearest-rank on a sorted copy. */
double percentile(std::vector<double> xs, double p);

/** Median (50th percentile). */
double median(std::vector<double> xs);

/** Gini coefficient of a non-negative distribution — used to quantify
 *  row-load skew for load-balancing analysis. Returns 0 for uniform data. */
double gini(std::vector<double> xs);

/** Incremental summary of a stream of samples. */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_ || n_ == 1)
            min_ = x;
        if (x > max_ || n_ == 1)
            max_ = x;
    }

    u64 count() const { return n_; }
    double mean() const { return mean_; }
    double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    u64 n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace waco
