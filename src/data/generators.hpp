/**
 * @file
 * Synthetic sparsity-pattern generators standing in for the SuiteSparse
 * collection (no network access in this environment; see DESIGN.md).
 *
 * The families cover the pattern axes the paper's analysis says matter:
 * dense blocks (BCSR/UCU wins), row skew (chunk-size wins), scattered
 * uniform patterns (sparse-block / cache-tiling wins), bands (FEM),
 * power-law graphs, and Kronecker self-similarity. makeCorpus() mixes them
 * with randomized shapes, mirroring the paper's resize augmentation.
 * Named stand-ins for the three motivation matrices (pli,
 * TSOPF_RS_b2052_c1, sparsine in Figure 2) are provided for Tables 1-2.
 */
#pragma once

#include <string>
#include <vector>

#include "tensor/coo.hpp"
#include "util/rng.hpp"

namespace waco {

/** Uniformly scattered nonzeros. */
SparseMatrix genUniform(u32 rows, u32 cols, u64 nnz, Rng& rng);

/** Power-law (Zipf) distributed nonzeros per row — heavy skew.
 *  @param scatter permute rows so heavy rows spread out (true) or keep
 *         them adjacent so coarse chunks trap them together (false). */
SparseMatrix genPowerLawRows(u32 rows, u32 cols, u64 nnz, double alpha,
                             Rng& rng, bool scatter = true);

/** Banded matrix with partial fill inside the band (FEM-style). */
SparseMatrix genBanded(u32 rows, u32 cols, u32 bandwidth, double fill,
                       Rng& rng);

/** Dense b x b blocks scattered over the matrix (TSOPF-style). */
SparseMatrix genDenseBlocks(u32 rows, u32 cols, u32 block, u32 num_blocks,
                            double block_fill, Rng& rng);

/** Block-diagonal with fully dense blocks. */
SparseMatrix genBlockDiagonal(u32 rows, u32 block, Rng& rng);

/** Kronecker-power graph pattern (scale-free-ish, self-similar). */
SparseMatrix genKronecker(u32 levels, Rng& rng);

/** Diagonal plus random off-diagonal perturbations. */
SparseMatrix genDiagonalish(u32 rows, u32 extra_per_row, Rng& rng);

/** Columns with a few hot (nearly dense) columns — clustered reuse. */
SparseMatrix genHotColumns(u32 rows, u32 cols, u64 nnz, u32 hot, Rng& rng);

/** A random 3D tensor with clustered fibers, for MTTKRP. */
Sparse3Tensor genTensor3(u32 di, u32 dk, u32 dl, u64 nnz, Rng& rng);

/** Options for corpus synthesis. */
struct CorpusOptions
{
    u32 count = 32;       ///< Number of matrices.
    u32 minDim = 512;     ///< Smallest rows/cols.
    u32 maxDim = 8192;    ///< Largest rows/cols.
    u64 minNnz = 2000;
    u64 maxNnz = 40000;
};

/** Mixed-family corpus with randomized shapes (one matrix per draw). */
std::vector<SparseMatrix> makeCorpus(const CorpusOptions& opt, u64 seed);

/** Mixed corpus of 3D tensors for MTTKRP. */
std::vector<Sparse3Tensor> makeCorpus3d(const CorpusOptions& opt, u64 seed);

/** Stand-in for "pli" (unstructured, moderate density). */
SparseMatrix pliLike(u64 seed = 101);
/** Stand-in for "TSOPF_RS_b2052_c1" (dense row blocks). */
SparseMatrix tsopfLike(u64 seed = 102);
/** Stand-in for "sparsine" (large, scattered, cache-hostile). */
SparseMatrix sparsineLike(u64 seed = 103);
/** Stand-in for "bcsstk29" used by the Figure 16 search study. */
SparseMatrix bcsstk29Like(u64 seed = 104);

} // namespace waco
