#include "data/generators.hpp"

#include <algorithm>
#include <cmath>

namespace waco {

SparseMatrix
genUniform(u32 rows, u32 cols, u64 nnz, Rng& rng)
{
    std::vector<Triplet> t;
    t.reserve(nnz);
    for (u64 n = 0; n < nnz; ++n) {
        t.push_back({static_cast<u32>(rng.index(rows)),
                     static_cast<u32>(rng.index(cols)),
                     static_cast<float>(rng.uniformReal(0.1, 1.0))});
    }
    return SparseMatrix(rows, cols, std::move(t), "uniform");
}

SparseMatrix
genPowerLawRows(u32 rows, u32 cols, u64 nnz, double alpha, Rng& rng,
                bool scatter)
{
    // Zipf row weights: row r gets weight (r+1)^-alpha, optionally under a
    // random permutation so the heavy rows are scattered.
    std::vector<double> weights(rows);
    for (u32 r = 0; r < rows; ++r)
        weights[r] = std::pow(static_cast<double>(r + 1), -alpha);
    std::vector<u32> perm;
    if (scatter) {
        perm = rng.permutation(rows);
    } else {
        perm.resize(rows);
        for (u32 r = 0; r < rows; ++r)
            perm[r] = r;
    }
    std::vector<Triplet> t;
    t.reserve(nnz);
    // Sample rows by inverse-CDF over the Zipf weights.
    std::vector<double> cdf(rows);
    double acc = 0.0;
    for (u32 r = 0; r < rows; ++r) {
        acc += weights[r];
        cdf[r] = acc;
    }
    for (u64 n = 0; n < nnz; ++n) {
        double u = rng.uniformReal(0.0, acc);
        u32 r = static_cast<u32>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        r = std::min(r, rows - 1);
        t.push_back({perm[r], static_cast<u32>(rng.index(cols)),
                     static_cast<float>(rng.uniformReal(0.1, 1.0))});
    }
    return SparseMatrix(rows, cols, std::move(t), "powerlaw");
}

SparseMatrix
genBanded(u32 rows, u32 cols, u32 bandwidth, double fill, Rng& rng)
{
    std::vector<Triplet> t;
    for (u32 r = 0; r < rows; ++r) {
        i64 center = static_cast<i64>(r) * cols / rows;
        i64 lo = std::max<i64>(0, center - bandwidth);
        i64 hi = std::min<i64>(cols - 1, center + bandwidth);
        for (i64 c = lo; c <= hi; ++c) {
            if (rng.bernoulli(fill)) {
                t.push_back({r, static_cast<u32>(c),
                             static_cast<float>(rng.uniformReal(0.1, 1.0))});
            }
        }
    }
    if (t.empty())
        t.push_back({0, 0, 1.0f});
    return SparseMatrix(rows, cols, std::move(t), "banded");
}

SparseMatrix
genDenseBlocks(u32 rows, u32 cols, u32 block, u32 num_blocks, double block_fill,
               Rng& rng)
{
    std::vector<Triplet> t;
    u32 brs = std::max<u32>(1, rows / block);
    u32 bcs = std::max<u32>(1, cols / block);
    for (u32 b = 0; b < num_blocks; ++b) {
        u32 br = static_cast<u32>(rng.index(brs));
        u32 bc = static_cast<u32>(rng.index(bcs));
        for (u32 r = 0; r < block; ++r) {
            for (u32 c = 0; c < block; ++c) {
                u32 rr = br * block + r, cc = bc * block + c;
                if (rr < rows && cc < cols && rng.bernoulli(block_fill)) {
                    t.push_back({rr, cc,
                                 static_cast<float>(rng.uniformReal(0.1, 1.0))});
                }
            }
        }
    }
    if (t.empty())
        t.push_back({0, 0, 1.0f});
    return SparseMatrix(rows, cols, std::move(t), "denseblocks");
}

SparseMatrix
genBlockDiagonal(u32 rows, u32 block, Rng& rng)
{
    std::vector<Triplet> t;
    for (u32 r = 0; r < rows; ++r) {
        u32 blk = r / block;
        for (u32 c = blk * block; c < std::min(rows, (blk + 1) * block); ++c)
            t.push_back({r, c, static_cast<float>(rng.uniformReal(0.1, 1.0))});
    }
    return SparseMatrix(rows, rows, std::move(t), "blockdiag");
}

SparseMatrix
genKronecker(u32 levels, Rng& rng)
{
    // 2x2 stochastic Kronecker with the classic R-MAT probabilities.
    const double p[2][2] = {{0.57, 0.19}, {0.19, 0.05}};
    u32 dim = 1u << levels;
    u64 nnz = static_cast<u64>(dim) * 8;
    std::vector<Triplet> t;
    t.reserve(nnz);
    for (u64 n = 0; n < nnz; ++n) {
        u32 r = 0, c = 0;
        for (u32 l = 0; l < levels; ++l) {
            double u = rng.uniformReal();
            u32 qr, qc;
            if (u < p[0][0]) {
                qr = 0; qc = 0;
            } else if (u < p[0][0] + p[0][1]) {
                qr = 0; qc = 1;
            } else if (u < p[0][0] + p[0][1] + p[1][0]) {
                qr = 1; qc = 0;
            } else {
                qr = 1; qc = 1;
            }
            r = 2 * r + qr;
            c = 2 * c + qc;
        }
        t.push_back({r, c, static_cast<float>(rng.uniformReal(0.1, 1.0))});
    }
    return SparseMatrix(dim, dim, std::move(t), "kronecker");
}

SparseMatrix
genDiagonalish(u32 rows, u32 extra_per_row, Rng& rng)
{
    std::vector<Triplet> t;
    for (u32 r = 0; r < rows; ++r) {
        t.push_back({r, r, 1.0f});
        for (u32 e = 0; e < extra_per_row; ++e) {
            i64 c = static_cast<i64>(r) +
                    rng.uniformInt(-8, 8) * static_cast<i64>(e + 1);
            if (c >= 0 && c < rows) {
                t.push_back({r, static_cast<u32>(c),
                             static_cast<float>(rng.uniformReal(0.1, 1.0))});
            }
        }
    }
    return SparseMatrix(rows, rows, std::move(t), "diagonalish");
}

SparseMatrix
genHotColumns(u32 rows, u32 cols, u64 nnz, u32 hot, Rng& rng)
{
    std::vector<Triplet> t;
    t.reserve(nnz);
    for (u64 n = 0; n < nnz; ++n) {
        u32 c = rng.bernoulli(0.5)
            ? static_cast<u32>(rng.index(std::max<u32>(1, hot)))
            : static_cast<u32>(rng.index(cols));
        t.push_back({static_cast<u32>(rng.index(rows)), c,
                     static_cast<float>(rng.uniformReal(0.1, 1.0))});
    }
    return SparseMatrix(rows, cols, std::move(t), "hotcols");
}

Sparse3Tensor
genTensor3(u32 di, u32 dk, u32 dl, u64 nnz, Rng& rng)
{
    std::vector<Quad> q;
    q.reserve(nnz);
    // Half clustered fibers (same (i,k), many l), half scattered.
    for (u64 n = 0; n < nnz; ++n) {
        if (rng.bernoulli(0.5)) {
            u32 i = static_cast<u32>(rng.index(di));
            u32 k = static_cast<u32>(rng.index(dk));
            for (u32 f = 0; f < 4 && q.size() < nnz; ++f) {
                q.push_back({i, k, static_cast<u32>(rng.index(dl)),
                             static_cast<float>(rng.uniformReal(0.1, 1.0))});
            }
        } else {
            q.push_back({static_cast<u32>(rng.index(di)),
                         static_cast<u32>(rng.index(dk)),
                         static_cast<u32>(rng.index(dl)),
                         static_cast<float>(rng.uniformReal(0.1, 1.0))});
        }
    }
    return Sparse3Tensor(di, dk, dl, std::move(q), "tensor3");
}

std::vector<SparseMatrix>
makeCorpus(const CorpusOptions& opt, u64 seed)
{
    Rng rng(seed);
    std::vector<SparseMatrix> out;
    out.reserve(opt.count);
    for (u32 n = 0; n < opt.count; ++n) {
        u32 rows = static_cast<u32>(
            rng.uniformInt(opt.minDim, opt.maxDim));
        u32 cols = rng.bernoulli(0.7)
            ? rows
            : static_cast<u32>(rng.uniformInt(opt.minDim, opt.maxDim));
        u64 nnz = static_cast<u64>(rng.uniformInt(
            static_cast<i64>(opt.minNnz), static_cast<i64>(opt.maxNnz)));
        SparseMatrix m;
        switch (n % 8) {
          case 0: m = genUniform(rows, cols, nnz, rng); break;
          case 1: m = genPowerLawRows(rows, cols, nnz, 1.2, rng); break;
          case 2:
            m = genBanded(rows, cols,
                          static_cast<u32>(rng.uniformInt(2, 32)), 0.4, rng);
            break;
          case 3: {
            u32 b = static_cast<u32>(1u << rng.uniformInt(2, 5));
            u32 blocks = static_cast<u32>(
                std::max<u64>(1, nnz / (b * b)));
            m = genDenseBlocks(rows, cols, b, blocks, 0.9, rng);
            break;
          }
          case 4:
            m = genBlockDiagonal(std::min(rows, 4096u),
                                 static_cast<u32>(1u << rng.uniformInt(2, 5)),
                                 rng);
            break;
          case 5: {
            u32 levels = std::min<u32>(13, log2Floor(rows));
            m = genKronecker(levels, rng);
            break;
          }
          case 6:
            m = genDiagonalish(rows,
                               static_cast<u32>(rng.uniformInt(1, 4)), rng);
            break;
          default:
            m = genHotColumns(rows, cols, nnz,
                              std::max<u32>(1, cols / 64), rng);
            break;
        }
        m.setName(m.name() + "_" + std::to_string(n));
        out.push_back(std::move(m));
    }
    return out;
}

std::vector<Sparse3Tensor>
makeCorpus3d(const CorpusOptions& opt, u64 seed)
{
    Rng rng(seed);
    std::vector<Sparse3Tensor> out;
    out.reserve(opt.count);
    for (u32 n = 0; n < opt.count; ++n) {
        u32 di = static_cast<u32>(rng.uniformInt(opt.minDim / 4, opt.maxDim / 4));
        u32 dk = static_cast<u32>(rng.uniformInt(opt.minDim / 4, opt.maxDim / 4));
        u32 dl = static_cast<u32>(rng.uniformInt(opt.minDim / 4, opt.maxDim / 4));
        u64 nnz = static_cast<u64>(rng.uniformInt(
            static_cast<i64>(opt.minNnz), static_cast<i64>(opt.maxNnz)));
        out.push_back(genTensor3(di, dk, dl, nnz, rng));
    }
    return out;
}

SparseMatrix
pliLike(u64 seed)
{
    // pli: 22,695^2, 1.35M nnz, 0.26% — unstructured with mild banding.
    // Sized so the SpMM dense operand is LLC-resident (as for the real pli
    // on the paper's Xeon), leaving only modest tuning headroom.
    Rng rng(seed);
    auto m = genBanded(32768, 32768, 24, 0.45, rng);
    auto extra = genPowerLawRows(32768, 32768, 700000, 0.8, rng,
                                 /*scatter=*/false);
    std::vector<Triplet> t;
    for (u64 n = 0; n < m.nnz(); ++n)
        t.push_back({m.rowIndices()[n], m.colIndices()[n], m.values()[n]});
    for (u64 n = 0; n < extra.nnz(); ++n)
        t.push_back({extra.rowIndices()[n], extra.colIndices()[n],
                     extra.values()[n]});
    SparseMatrix out(32768, 32768, std::move(t), "pli-like");
    return out;
}

SparseMatrix
tsopfLike(u64 seed)
{
    // TSOPF_RS_b2052_c1: power-flow matrix dominated by dense row blocks.
    // Sized past the LLC so blocked formats pay off through operand reuse.
    Rng rng(seed);
    auto m = genDenseBlocks(131072, 131072, 16, 8000, 0.95, rng);
    m.setName("tsopf-like");
    return m;
}

SparseMatrix
sparsineLike(u64 seed)
{
    // sparsine: 50,000^2, 0.06% — scattered, cache-hostile columns; the
    // dense operand misses the LLC so sparse-block (UUC) tiling wins.
    Rng rng(seed);
    auto m = genUniform(65536, 65536, 1300000, rng);
    m.setName("sparsine-like");
    return m;
}

SparseMatrix
bcsstk29Like(u64 seed)
{
    // bcsstk29: a mid-size FEM stiffness matrix (banded, blocky).
    Rng rng(seed);
    auto m = genBanded(4096, 4096, 24, 0.5, rng);
    m.setName("bcsstk29-like");
    return m;
}

} // namespace waco
