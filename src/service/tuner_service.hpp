/**
 * @file
 * TunerService — fault-tolerant tuning-as-a-service over a WacoTuner.
 *
 * The tuner itself is single-query (the HNSW visited-epoch scratch is not
 * safe for concurrent walks), so the service runs ONE worker thread that
 * owns the tuner and serializes searches, and gets its resilience from
 * everything around that thread:
 *
 *  - Admission control: a bounded queue (load shedding with a typed Shed
 *    response, never an unbounded backlog) and a per-tenant in-flight cap
 *    so one noisy client cannot starve the rest.
 *  - Deadlines + cancellation: every request carries a CancelToken (client
 *    deadline and/or explicit cancel()) that the tuner polls at phase
 *    boundaries, HNSW frontier steps, and between top-k measurements.
 *  - Circuit breaker: consecutive tunes whose measurements ALL failed trip
 *    the breaker; while open, requests skip the measurement phase and are
 *    ranked by model score alone, with a deterministic half-open probe.
 *  - Degradation ladder, best rung first:
 *        FullSearch -> CacheHit -> ModelOnly -> DefaultSchedule
 *    Every response records the rung it was served from, so a client can
 *    tell a co-optimized answer from a safe fallback.
 *  - Crash-safe result cache: (pattern fingerprint, algorithm) -> winning
 *    schedule, persisted via an append-only checksummed journal that
 *    recovers across restarts (service/result_cache.hpp).
 *
 * Every response is typed and every degraded answer is still a *valid*
 * schedule (worst rung = the CSR-row-parallel default); the service never
 * returns garbage and never throws across the API boundary.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/waco_tuner.hpp"
#include "service/circuit_breaker.hpp"
#include "service/result_cache.hpp"
#include "util/cancel.hpp"
#include "util/common.hpp"

namespace waco::service {

/** Final disposition of one request. */
enum class ServiceStatus : u32 {
    Accepted,         ///< Queued; not a final status.
    Ok,               ///< Served from the requested quality (full or cache).
    Shed,             ///< Rejected at admission (queue/tenant cap).
    DeadlineExceeded, ///< Deadline fired before any usable result existed.
    Cancelled,        ///< Client cancelled the ticket.
    Degraded,         ///< Served, but from a lower ladder rung.
    Failed,           ///< Internal error; response carries the default key.
};

const char* serviceStatusName(ServiceStatus s);

/** Which ladder rung produced the response's schedule. */
enum class DegradationRung : u32 {
    FullSearch,      ///< ANNS walk + top-k re-measurement (the paper path).
    CacheHit,        ///< Cross-request result cache.
    ModelOnly,       ///< Best verifier-clean hit by model score, unmeasured.
    DefaultSchedule, ///< CSR-row-parallel fallback; always valid.
};

const char* rungName(DegradationRung r);

/** Service policy knobs. */
struct ServiceConfig
{
    /** Max requests waiting in the queue; submits beyond this are Shed. */
    u32 maxQueue = 16;
    /** Max queued+running requests per tenant; beyond this, Shed. */
    u32 maxInflightPerTenant = 4;
    /** Deadline applied when submit() passes none (+inf = none). */
    double defaultDeadlineSeconds =
        std::numeric_limits<double>::infinity();
    /** Measurement-backend circuit breaker policy. */
    BreakerConfig breaker = {};
    /** Result-cache journal path; empty = in-memory cache only. */
    std::string cacheJournalPath;
};

/** What the client gets back. */
struct TuneResponse
{
    ServiceStatus status = ServiceStatus::Failed;
    DegradationRung rung = DegradationRung::DefaultSchedule;
    /** SuperSchedule::key() of the answer — parseable, verifier-checkable,
     *  and never empty for a completed (non-Shed) request. */
    std::string scheduleKey;
    /** Measured runtime when @ref measured, else predicted cost (ModelOnly)
     *  or +inf (nothing was scored). */
    double expectedSeconds = std::numeric_limits<double>::infinity();
    /** True when expectedSeconds came from a real measurement. */
    bool measured = false;
    /** Submit-to-completion wall time. */
    double latencySeconds = 0.0;
    /** Human-readable detail (cancel reason, error message, ...). */
    std::string detail;
};

/**
 * Handle to one submitted request. Shed and cache-hit tickets complete
 * synchronously inside submit(); the rest complete on the worker thread.
 * Thread-safe; keep the shared_ptr alive until you are done with wait().
 */
class TuneTicket
{
  public:
    /** Submit-time disposition: Accepted, Shed, or Ok (cache hit). */
    ServiceStatus admission() const;

    /** Request client-side cancellation (idempotent, races allowed). */
    void cancel();

    bool done() const;

    /** Block until the response is ready and return it. */
    const TuneResponse& wait();

  private:
    friend class TunerService;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
    ServiceStatus admission_ = ServiceStatus::Accepted;
    TuneResponse response_;

    // Request payload (owned; the client's matrix may go away).
    SparseMatrix matrix_;
    std::string tenant_;
    bool enqueued_ = false; ///< Holds a tenant in-flight slot until finish.
    u64 fingerprint_ = 0;
    CancelToken cancelToken_;
    std::chrono::steady_clock::time_point submitTime_;
};

using TicketPtr = std::shared_ptr<TuneTicket>;

/** Aggregate service counters (see also the global metrics registry). */
struct ServiceStats
{
    u64 submitted = 0;
    u64 completed = 0; ///< Final non-Shed responses delivered.
    u64 shed = 0;
    u64 ok = 0;
    u64 degraded = 0;
    u64 cancelled = 0;
    u64 deadlineExceeded = 0;
    u64 failed = 0;
    u64 cacheHits = 0;
    u64 cacheMisses = 0;
    u64 rungCounts[4] = {0, 0, 0, 0}; ///< Indexed by DegradationRung.
    u64 breakerOpened = 0;
    u64 breakerClosed = 0;
    u64 breakerHalfOpened = 0;
    double latencyP50 = 0.0;
    double latencyP99 = 0.0;

    std::string toJson() const;
};

/** The server. Owns a worker thread; construction starts it. */
class TunerService
{
  public:
    /** @param tuner a trained tuner (train() + graph built). Must outlive
     *  the service; the service serializes all access to it. */
    explicit TunerService(WacoTuner& tuner, ServiceConfig cfg = {});
    ~TunerService();

    TunerService(const TunerService&) = delete;
    TunerService& operator=(const TunerService&) = delete;

    /**
     * Submit one matrix for tuning. Never blocks on tuning work and never
     * throws: overload is reported as a Shed ticket, and a cross-request
     * cache hit completes immediately (status Ok, rung CacheHit).
     * @param deadline_seconds relative deadline; NaN = use the config
     *        default; +inf = none.
     */
    TicketPtr submit(const SparseMatrix& m,
                     const std::string& tenant = "default",
                     double deadline_seconds =
                         std::numeric_limits<double>::quiet_NaN());

    /** Stop the worker; queued requests complete as Cancelled. Idempotent
     *  (also run by the destructor). */
    void shutdown();

    /** Pause/resume the worker between requests (deterministic tests:
     *  pause(), fill the queue, assert shedding, resume()). */
    void pause();
    void resume();

    /** Requests currently waiting (excludes the one being processed). */
    u64 queueDepth() const;

    ServiceStats stats() const;
    /** Write stats().toJson() to @p path. */
    void writeStatsJson(const std::string& path) const;

    const ResultCache& cache() const { return cache_; }
    const CircuitBreaker& breaker() const { return breaker_; }

  private:
    void workerLoop();
    void process(const TicketPtr& t);
    /** Fill and deliver the response; updates counters and latency. */
    void finish(const TicketPtr& t, TuneResponse&& r);
    std::string defaultKeyFor(const SparseMatrix& m) const;

    WacoTuner& tuner_;
    ServiceConfig cfg_;
    ResultCache cache_;
    CircuitBreaker breaker_;

    mutable std::mutex mutex_; ///< Guards queue/tenant/stat state below.
    std::condition_variable cv_;
    std::deque<TicketPtr> queue_;
    std::unordered_map<std::string, u32> tenantInflight_;
    bool stopping_ = false;
    bool paused_ = false;
    ServiceStats stats_;
    std::vector<double> latencies_;

    std::thread worker_; ///< Started last; owns all tuner access.
};

} // namespace waco::service
