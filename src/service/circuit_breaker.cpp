#include "service/circuit_breaker.hpp"

#include "util/metrics.hpp"

namespace waco::service {

const char*
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig cfg) : cfg_(cfg)
{
    fatalIf(cfg_.failureThreshold == 0,
            "BreakerConfig.failureThreshold must be >= 1");
    fatalIf(cfg_.probeAfter == 0, "BreakerConfig.probeAfter must be >= 1");
}

BreakerState
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

bool
CircuitBreaker::allowMeasure()
{
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case BreakerState::Closed:
        return true;
      case BreakerState::Open:
        if (++degradedSinceOpen_ >= cfg_.probeAfter) {
            state_ = BreakerState::HalfOpen;
            ++halfOpened_;
            WACO_COUNT("service.breaker.half_opened", 1);
            return true; // this request is the probe
        }
        return false;
      case BreakerState::HalfOpen:
        return false; // probe already in flight
    }
    return true;
}

void
CircuitBreaker::recordSuccess()
{
    std::lock_guard<std::mutex> lock(mutex_);
    consecutiveFailures_ = 0;
    if (state_ != BreakerState::Closed) {
        state_ = BreakerState::Closed;
        ++closed_;
        WACO_COUNT("service.breaker.closed", 1);
    }
}

void
CircuitBreaker::recordFailure()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++consecutiveFailures_;
    if (state_ == BreakerState::HalfOpen ||
        (state_ == BreakerState::Closed &&
         consecutiveFailures_ >= cfg_.failureThreshold)) {
        state_ = BreakerState::Open;
        degradedSinceOpen_ = 0;
        ++opened_;
        WACO_COUNT("service.breaker.opened", 1);
    }
}

u64
CircuitBreaker::timesOpened() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return opened_;
}

u64
CircuitBreaker::timesClosed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

u64
CircuitBreaker::timesHalfOpened() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return halfOpened_;
}

} // namespace waco::service
