#include "service/journal.hpp"

#include <cstring>
#include <filesystem>
#include <iterator>

namespace waco::service {

namespace {

constexpr u32 kRecordMagic = 0x574a5231; // "WJR1"
constexpr std::size_t kHeaderBytes = sizeof(u32) + sizeof(u32);
constexpr std::size_t kTrailerBytes = sizeof(u64);
/** Sanity cap on one record; a cache entry is a few hundred bytes. */
constexpr u32 kMaxPayloadBytes = 1u << 24;

template <typename T>
T
loadPod(const char* p)
{
    T v{};
    std::memcpy(&v, p, sizeof(T));
    return v;
}

} // namespace

u64
fnv1aHash(const char* data, std::size_t n)
{
    u64 h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

JournalRecovery
recoverJournal(const std::string& path, bool truncate_torn_tail)
{
    JournalRecovery rec;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return rec; // no journal yet: empty recovery
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::size_t pos = 0;
    while (pos + kHeaderBytes <= all.size()) {
        u32 magic = loadPod<u32>(all.data() + pos);
        if (magic != kRecordMagic)
            break; // garbage where a header should be: torn tail
        u32 len = loadPod<u32>(all.data() + pos + sizeof(u32));
        if (len > kMaxPayloadBytes)
            break;
        std::size_t end = pos + kHeaderBytes + len + kTrailerBytes;
        if (end > all.size())
            break; // record body or checksum did not finish writing
        const char* payload = all.data() + pos + kHeaderBytes;
        u64 want = loadPod<u64>(all.data() + pos + kHeaderBytes + len);
        if (fnv1aHash(payload, len) != want)
            break; // payload bytes landed but are corrupt
        rec.records.emplace_back(payload, len);
        pos = end;
    }
    rec.validBytes = pos;
    rec.droppedBytes = all.size() - pos;
    if (truncate_torn_tail && rec.droppedBytes > 0) {
        in.close();
        std::error_code ec;
        std::filesystem::resize_file(path, rec.validBytes, ec);
        fatalIf(static_cast<bool>(ec),
                "cannot truncate torn journal tail: " + path);
    }
    return rec;
}

JournalRecovery
JournalWriter::open(const std::string& path)
{
    close();
    JournalRecovery rec = recoverJournal(path, /*truncate_torn_tail=*/true);
    out_.open(path, std::ios::binary | std::ios::app);
    fatalIf(!out_, "cannot open journal for append: " + path);
    path_ = path;
    appended_ = 0;
    return rec;
}

void
JournalWriter::append(const std::string& payload)
{
    fatalIf(!out_.is_open(), "JournalWriter::append before open()");
    fatalIf(payload.size() > kMaxPayloadBytes, "journal record too large");
    u32 magic = kRecordMagic;
    u32 len = static_cast<u32>(payload.size());
    u64 sum = fnv1aHash(payload.data(), payload.size());
    out_.write(reinterpret_cast<const char*>(&magic), sizeof magic);
    out_.write(reinterpret_cast<const char*>(&len), sizeof len);
    out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out_.write(reinterpret_cast<const char*>(&sum), sizeof sum);
    // Flush to the OS per record: a crashed *process* loses at most the
    // torn tail of the final append, which recovery drops by design.
    out_.flush();
    fatalIf(!out_, "journal append failed: " + path_);
    ++appended_;
}

void
JournalWriter::close()
{
    if (out_.is_open())
        out_.close();
    path_.clear();
}

} // namespace waco::service
