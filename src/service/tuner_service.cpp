#include "service/tuner_service.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "tensor/pattern_stats.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

namespace waco::service {

namespace {

double
elapsedSince(std::chrono::steady_clock::time_point t0)
{
    auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

} // namespace

const char*
serviceStatusName(ServiceStatus s)
{
    switch (s) {
      case ServiceStatus::Accepted: return "accepted";
      case ServiceStatus::Ok: return "ok";
      case ServiceStatus::Shed: return "shed";
      case ServiceStatus::DeadlineExceeded: return "deadline-exceeded";
      case ServiceStatus::Cancelled: return "cancelled";
      case ServiceStatus::Degraded: return "degraded";
      case ServiceStatus::Failed: return "failed";
    }
    return "?";
}

const char*
rungName(DegradationRung r)
{
    switch (r) {
      case DegradationRung::FullSearch: return "full-search";
      case DegradationRung::CacheHit: return "cache-hit";
      case DegradationRung::ModelOnly: return "model-only";
      case DegradationRung::DefaultSchedule: return "default-schedule";
    }
    return "?";
}

// ---------------------------------------------------------------- TuneTicket

ServiceStatus
TuneTicket::admission() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return admission_;
}

void
TuneTicket::cancel()
{
    cancelToken_.cancel();
}

bool
TuneTicket::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

const TuneResponse&
TuneTicket::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return done_; });
    return response_;
}

// --------------------------------------------------------------- ServiceStats

std::string
ServiceStats::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"submitted\": " << submitted << ",\n";
    os << "  \"completed\": " << completed << ",\n";
    os << "  \"shed\": " << shed << ",\n";
    os << "  \"ok\": " << ok << ",\n";
    os << "  \"degraded\": " << degraded << ",\n";
    os << "  \"cancelled\": " << cancelled << ",\n";
    os << "  \"deadline_exceeded\": " << deadlineExceeded << ",\n";
    os << "  \"failed\": " << failed << ",\n";
    os << "  \"cache_hits\": " << cacheHits << ",\n";
    os << "  \"cache_misses\": " << cacheMisses << ",\n";
    os << "  \"rungs\": {";
    for (u32 r = 0; r < 4; ++r) {
        os << (r ? ", " : "") << '"'
           << rungName(static_cast<DegradationRung>(r)) << "\": "
           << rungCounts[r];
    }
    os << "},\n";
    os << "  \"breaker\": {\"opened\": " << breakerOpened
       << ", \"half_opened\": " << breakerHalfOpened
       << ", \"closed\": " << breakerClosed << "},\n";
    os << "  \"latency_p50_ms\": " << latencyP50 * 1e3 << ",\n";
    os << "  \"latency_p99_ms\": " << latencyP99 * 1e3 << "\n";
    os << "}\n";
    return os.str();
}

// --------------------------------------------------------------- TunerService

TunerService::TunerService(WacoTuner& tuner, ServiceConfig cfg)
    : tuner_(tuner), cfg_(std::move(cfg)), cache_(cfg_.cacheJournalPath),
      breaker_(cfg_.breaker)
{
    fatalIf(cfg_.maxInflightPerTenant == 0,
            "ServiceConfig.maxInflightPerTenant must be >= 1");
    worker_ = std::thread([this] { workerLoop(); });
}

TunerService::~TunerService()
{
    shutdown();
}

std::string
TunerService::defaultKeyFor(const SparseMatrix& m) const
{
    ProblemShape shape =
        ProblemShape::forMatrix(tuner_.algorithm(), m.rows(), m.cols());
    return defaultSchedule(shape).key();
}

TicketPtr
TunerService::submit(const SparseMatrix& m, const std::string& tenant,
                     double deadline_seconds)
{
    WACO_SPAN("service.submit");
    auto t = std::make_shared<TuneTicket>();
    t->matrix_ = m;
    t->tenant_ = tenant;
    t->submitTime_ = std::chrono::steady_clock::now();
    t->fingerprint_ = patternFingerprint(computePatternStats(m));
    if (std::isnan(deadline_seconds))
        deadline_seconds = cfg_.defaultDeadlineSeconds;
    t->cancelToken_.setDeadline(deadline_seconds);

    WACO_COUNT("service.requests", 1);

    // Fast path: a byte-identical pattern was already co-optimized — answer
    // from the cache without touching the queue or the tuner.
    CachedResult hit;
    if (cache_.lookup(t->fingerprint_, tuner_.algorithm(), &hit)) {
        WACO_COUNT("service.cache.hits", 1);
        TuneResponse r;
        r.status = ServiceStatus::Ok;
        r.rung = DegradationRung::CacheHit;
        r.scheduleKey = hit.scheduleKey;
        r.expectedSeconds = hit.seconds;
        r.measured = true;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.submitted;
            ++stats_.cacheHits;
        }
        {
            std::lock_guard<std::mutex> tlock(t->mutex_);
            t->admission_ = ServiceStatus::Ok;
        }
        finish(t, std::move(r));
        return t;
    }
    WACO_COUNT("service.cache.misses", 1);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.submitted;
        ++stats_.cacheMisses;
        bool queue_full = queue_.size() >= cfg_.maxQueue;
        bool tenant_full =
            tenantInflight_[tenant] >= cfg_.maxInflightPerTenant;
        if (stopping_ || queue_full || tenant_full) {
            ++stats_.shed;
            WACO_COUNT("service.shed", 1);
            TuneResponse r;
            r.status = ServiceStatus::Shed;
            r.detail = stopping_          ? "service shutting down"
                       : queue_full       ? "queue full"
                                          : "tenant in-flight cap";
            std::lock_guard<std::mutex> tlock(t->mutex_);
            t->admission_ = ServiceStatus::Shed;
            t->response_ = std::move(r);
            t->done_ = true;
            t->cv_.notify_all();
            return t;
        }
        ++tenantInflight_[tenant];
        t->enqueued_ = true;
        queue_.push_back(t);
        WACO_GAUGE("service.queue_depth", static_cast<double>(queue_.size()));
    }
    cv_.notify_one();
    return t;
}

void
TunerService::finish(const TicketPtr& t, TuneResponse&& r)
{
    r.latencySeconds = elapsedSince(t->submitTime_);
    WACO_HIST("service.latency_us", r.latencySeconds * 1e6);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.completed;
        ++stats_.rungCounts[static_cast<u32>(r.rung)];
        switch (r.status) {
          case ServiceStatus::Ok: ++stats_.ok; break;
          case ServiceStatus::Degraded:
            ++stats_.degraded;
            WACO_COUNT("service.degraded", 1);
            break;
          case ServiceStatus::Cancelled:
            ++stats_.cancelled;
            WACO_COUNT("service.cancelled", 1);
            break;
          case ServiceStatus::DeadlineExceeded:
            ++stats_.deadlineExceeded;
            WACO_COUNT("service.deadline_exceeded", 1);
            break;
          case ServiceStatus::Failed:
            ++stats_.failed;
            WACO_COUNT("service.failed", 1);
            break;
          default: break;
        }
        latencies_.push_back(r.latencySeconds);
        if (t->enqueued_) {
            auto it = tenantInflight_.find(t->tenant_);
            if (it != tenantInflight_.end() && it->second > 0)
                --it->second;
        }
    }
    std::lock_guard<std::mutex> tlock(t->mutex_);
    t->response_ = std::move(r);
    t->done_ = true;
    t->cv_.notify_all();
}

void
TunerService::process(const TicketPtr& t)
{
    WACO_SPAN("service.request");
    TuneResponse r;
    r.scheduleKey = defaultKeyFor(t->matrix_); // safe floor; overwritten

    // Queued long enough for the deadline to fire (or the client cancelled
    // while we waited)? Answer with the typed floor response immediately.
    if (t->cancelToken_.stopRequested()) {
        r.status = t->cancelToken_.cancelled() ? ServiceStatus::Cancelled
                                               : ServiceStatus::DeadlineExceeded;
        r.rung = DegradationRung::DefaultSchedule;
        r.detail = "expired while queued";
        finish(t, std::move(r));
        return;
    }

    // A duplicate may have been queued behind the request that populated
    // the cache — re-check before paying for a search.
    CachedResult hit;
    if (cache_.lookup(t->fingerprint_, tuner_.algorithm(), &hit)) {
        WACO_COUNT("service.cache.hits", 1);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.cacheHits;
            --stats_.cacheMisses; // submit() charged a miss prematurely
        }
        r.status = ServiceStatus::Ok;
        r.rung = DegradationRung::CacheHit;
        r.scheduleKey = hit.scheduleKey;
        r.expectedSeconds = hit.seconds;
        r.measured = true;
        finish(t, std::move(r));
        return;
    }

    TuneControl ctl;
    ctl.cancel = &t->cancelToken_;
    bool measure_allowed = breaker_.allowMeasure();
    ctl.skipMeasure = !measure_allowed;

    try {
        TuneOutcome out = tuner_.tune(t->matrix_, ctl);

        // Feed the breaker from what the measurement phase actually saw:
        // "every call discarded" is the signature of a dead backend, and a
        // single clean measurement heals it.
        if (measure_allowed && out.remeasureStats.calls > 0) {
            if (out.remeasureStats.discarded == out.remeasureStats.calls)
                breaker_.recordFailure();
            else
                breaker_.recordSuccess();
        }

        r.scheduleKey = out.best.key();
        r.expectedSeconds = out.bestMeasured.seconds;
        r.measured = out.bestMeasured.valid;
        if (out.fellBack) {
            r.status = ServiceStatus::Degraded;
            r.rung = DegradationRung::DefaultSchedule;
            r.detail = "all top-k candidates invalid";
        } else if (out.modelOnly) {
            r.status = ServiceStatus::Degraded;
            r.rung = DegradationRung::ModelOnly;
            r.detail = measure_allowed ? "deadline hit before a valid "
                                         "measurement"
                                       : "circuit breaker open";
        } else if (out.truncated) {
            r.status = ServiceStatus::Degraded;
            r.rung = DegradationRung::FullSearch;
            r.detail = "search/measure truncated by deadline";
        } else {
            r.status = ServiceStatus::Ok;
            r.rung = DegradationRung::FullSearch;
            // Only un-degraded, measured winners enter the cache: a cache
            // hit must be as good as the full protocol's answer.
            if (r.measured)
                cache_.put(t->fingerprint_, tuner_.algorithm(),
                           {r.scheduleKey, r.expectedSeconds});
        }
    } catch (const CancelledError& e) {
        r.status = t->cancelToken_.cancelled() ? ServiceStatus::Cancelled
                                               : ServiceStatus::DeadlineExceeded;
        r.rung = DegradationRung::DefaultSchedule;
        r.scheduleKey = defaultKeyFor(t->matrix_);
        r.expectedSeconds = std::numeric_limits<double>::infinity();
        r.measured = false;
        r.detail = e.what();
    } catch (const std::exception& e) {
        logWarn(std::string("service: tune failed: ") + e.what());
        r.status = ServiceStatus::Failed;
        r.rung = DegradationRung::DefaultSchedule;
        r.scheduleKey = defaultKeyFor(t->matrix_);
        r.expectedSeconds = std::numeric_limits<double>::infinity();
        r.measured = false;
        r.detail = e.what();
    }
    finish(t, std::move(r));
}

void
TunerService::workerLoop()
{
    for (;;) {
        TicketPtr t;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return stopping_ || (!paused_ && !queue_.empty());
            });
            if (stopping_)
                return; // shutdown() drains the queue itself
            t = queue_.front();
            queue_.pop_front();
            WACO_GAUGE("service.queue_depth",
                       static_cast<double>(queue_.size()));
        }
        process(t);
    }
}

void
TunerService::shutdown()
{
    std::deque<TicketPtr> drained;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && !worker_.joinable() && queue_.empty())
            return;
        stopping_ = true;
        drained.swap(queue_);
    }
    cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    for (const TicketPtr& t : drained) {
        TuneResponse r;
        r.status = ServiceStatus::Cancelled;
        r.rung = DegradationRung::DefaultSchedule;
        r.scheduleKey = defaultKeyFor(t->matrix_);
        r.detail = "service shutdown";
        finish(t, std::move(r));
    }
}

void
TunerService::pause()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void
TunerService::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    cv_.notify_all();
}

u64
TunerService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

ServiceStats
TunerService::stats() const
{
    ServiceStats s;
    std::vector<double> lat;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s = stats_;
        lat = latencies_;
    }
    s.breakerOpened = breaker_.timesOpened();
    s.breakerClosed = breaker_.timesClosed();
    s.breakerHalfOpened = breaker_.timesHalfOpened();
    if (!lat.empty()) {
        s.latencyP50 = percentile(lat, 50.0);
        s.latencyP99 = percentile(lat, 99.0);
    }
    return s;
}

void
TunerService::writeStatsJson(const std::string& path) const
{
    std::ofstream out(path);
    fatalIf(!out, "cannot write service stats: " + path);
    out << stats().toJson();
}

} // namespace waco::service
