/**
 * @file
 * Cross-request tuning result cache with optional crash-safe persistence.
 *
 * Keyed by (pattern fingerprint, algorithm): a repeated matrix — byte-wise
 * the same sparsity pattern — skips extraction, search, and every oracle
 * measurement, and is served the previously co-optimized schedule
 * immediately. Entries store the winning schedule's key() string (compact,
 * parseable, verifier-checkable) plus its measured runtime.
 *
 * Persistence is an append-only checksummed journal (service/journal.hpp):
 * every put() appends one record, recovery replays all complete records
 * and drops a torn tail, so a restarted server keeps its learned answers
 * without any save/flush protocol beyond the per-record flush. Duplicate
 * keys in the journal are legal — a re-tuned pattern appends a fresh
 * record and last-writer-wins on replay, keeping appends O(1).
 */
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>

#include "ir/algorithm.hpp"
#include "service/journal.hpp"
#include "util/common.hpp"

namespace waco::service {

/** One cached co-optimization result. */
struct CachedResult
{
    std::string scheduleKey; ///< SuperSchedule::key() of the winner.
    double seconds = 0.0;    ///< Its measured runtime when cached.
};

/** Thread-safe (fingerprint, algorithm) -> best-schedule cache. */
class ResultCache
{
  public:
    /** @param journal_path persistence journal; empty = in-memory only.
     *  Opening recovers every complete record and truncates a torn tail. */
    explicit ResultCache(const std::string& journal_path = "");

    /** True when a persistence journal is attached. */
    bool persistent() const { return writer_.isOpen(); }

    /** Entries currently cached. */
    u64 size() const;

    /** Records replayed from the journal at construction. */
    u64 recoveredRecords() const { return recovered_; }
    /** Torn tail bytes dropped at construction. */
    u64 droppedBytes() const { return dropped_; }

    /** Look up a fingerprint; true and fills @p out on a hit. */
    bool lookup(u64 fingerprint, Algorithm alg, CachedResult* out) const;

    /** Insert/overwrite and (when persistent) append to the journal. */
    void put(u64 fingerprint, Algorithm alg, const CachedResult& result);

  private:
    static std::string packRecord(u64 fingerprint, Algorithm alg,
                                  const CachedResult& r);
    /** Parse one journal payload; false on a malformed (yet checksummed —
     *  i.e. foreign or version-skewed) record, which is skipped. */
    static bool unpackRecord(const std::string& payload, u64* fingerprint,
                             Algorithm* alg, CachedResult* r);

    static u64
    keyOf(u64 fingerprint, Algorithm alg)
    {
        // Splittable mix of the fingerprint and the algorithm id.
        return fingerprint ^ (0x9e3779b97f4a7c15ull *
                              (static_cast<u64>(alg) + 1));
    }

    mutable std::mutex mutex_;
    std::unordered_map<u64, CachedResult> map_;
    JournalWriter writer_;
    u64 recovered_ = 0;
    u64 dropped_ = 0;
};

} // namespace waco::service
