/**
 * @file
 * Circuit breaker around the measurement backend.
 *
 * A long-lived tuner server cannot let a dead or flapping measurement
 * harness stall every request in retry loops: after `failureThreshold`
 * consecutive tunes whose every measurement failed (visible in
 * RobustMeasurer stats: discarded == calls), the breaker OPENS and
 * requests degrade to model-score-only ranking — bounded-quality answers
 * with zero backend traffic. After `probeAfter` degraded requests the
 * breaker goes HALF-OPEN and lets exactly one probe request measure; a
 * healthy probe CLOSES the breaker, a failed one re-opens it and the
 * count starts over.
 *
 * Deliberately request-counted, not wall-clock-timed: the cooldown is a
 * deterministic function of traffic, so tests can assert exact transition
 * sequences and a quiet server does not probe a dead backend on a timer.
 */
#pragma once

#include <mutex>

#include "util/common.hpp"

namespace waco::service {

enum class BreakerState : u32 { Closed, Open, HalfOpen };

const char* breakerStateName(BreakerState s);

/** Breaker policy knobs. */
struct BreakerConfig
{
    /** Consecutive all-measurements-failed tunes that open the breaker. */
    u32 failureThreshold = 3;
    /** Degraded requests served while open before a half-open probe. */
    u32 probeAfter = 8;
};

/** Thread-safe three-state breaker (Closed -> Open -> HalfOpen -> ...). */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(BreakerConfig cfg = {});

    BreakerState state() const;

    /**
     * Admission check for one request's measurement phase. Returns true
     * when the request may measure: always while Closed, and for the
     * single probe request once `probeAfter` degraded requests have been
     * served while Open (the call that flips Open -> HalfOpen *is* the
     * probe). Returns false — degrade to model-only — otherwise, including
     * while a probe is already in flight.
     */
    bool allowMeasure();

    /** Report the measurement outcome of a request that was allowed. */
    void recordSuccess();
    void recordFailure();

    /** Lifetime transition counters (for stats/tests). */
    u64 timesOpened() const;
    u64 timesClosed() const;
    u64 timesHalfOpened() const;

  private:
    BreakerConfig cfg_;
    mutable std::mutex mutex_;
    BreakerState state_ = BreakerState::Closed;
    u32 consecutiveFailures_ = 0;
    u32 degradedSinceOpen_ = 0;
    u64 opened_ = 0;
    u64 closed_ = 0;
    u64 halfOpened_ = 0;
};

} // namespace waco::service
