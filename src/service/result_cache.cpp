#include "service/result_cache.hpp"

#include <cstring>
#include <sstream>

#include "util/metrics.hpp"

namespace waco::service {

namespace {

constexpr u32 kRecordVersion = 1;

template <typename T>
void
putPod(std::string& out, const T& v)
{
    const char* p = reinterpret_cast<const char*>(&v);
    out.append(p, sizeof(T));
}

template <typename T>
bool
getPod(const std::string& in, std::size_t* pos, T* v)
{
    if (*pos + sizeof(T) > in.size())
        return false;
    std::memcpy(v, in.data() + *pos, sizeof(T));
    *pos += sizeof(T);
    return true;
}

} // namespace

std::string
ResultCache::packRecord(u64 fingerprint, Algorithm alg, const CachedResult& r)
{
    std::string out;
    putPod<u32>(out, kRecordVersion);
    putPod<u64>(out, fingerprint);
    putPod<u32>(out, static_cast<u32>(alg));
    putPod<double>(out, r.seconds);
    putPod<u32>(out, static_cast<u32>(r.scheduleKey.size()));
    out.append(r.scheduleKey);
    return out;
}

bool
ResultCache::unpackRecord(const std::string& payload, u64* fingerprint,
                          Algorithm* alg, CachedResult* r)
{
    std::size_t pos = 0;
    u32 version = 0, alg_raw = 0, key_len = 0;
    if (!getPod(payload, &pos, &version) || version != kRecordVersion)
        return false;
    if (!getPod(payload, &pos, fingerprint) ||
        !getPod(payload, &pos, &alg_raw) ||
        !getPod(payload, &pos, &r->seconds) ||
        !getPod(payload, &pos, &key_len))
        return false;
    if (pos + key_len != payload.size())
        return false;
    *alg = static_cast<Algorithm>(alg_raw);
    r->scheduleKey.assign(payload, pos, key_len);
    return true;
}

ResultCache::ResultCache(const std::string& journal_path)
{
    if (journal_path.empty())
        return;
    JournalRecovery rec = writer_.open(journal_path);
    dropped_ = rec.droppedBytes;
    for (const std::string& payload : rec.records) {
        u64 fp = 0;
        Algorithm alg{};
        CachedResult r;
        if (!unpackRecord(payload, &fp, &alg, &r)) {
            // Checksummed but unparseable: a record from a different
            // version. Skip it rather than poison the cache.
            WACO_COUNT("service.cache.skipped_records", 1);
            continue;
        }
        map_[keyOf(fp, alg)] = std::move(r); // last writer wins on replay
        ++recovered_;
    }
    WACO_COUNT("service.cache.recovered", recovered_);
}

u64
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

bool
ResultCache::lookup(u64 fingerprint, Algorithm alg, CachedResult* out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(keyOf(fingerprint, alg));
    if (it == map_.end())
        return false;
    *out = it->second;
    return true;
}

void
ResultCache::put(u64 fingerprint, Algorithm alg, const CachedResult& result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_[keyOf(fingerprint, alg)] = result;
    if (writer_.isOpen())
        writer_.append(packRecord(fingerprint, alg, result));
}

} // namespace waco::service
