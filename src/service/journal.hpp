/**
 * @file
 * Crash-safe append-only journal: the persistence primitive under the
 * service's cross-request result cache.
 *
 * Layout is a sequence of self-delimiting records
 *
 *   u32 magic "WJR1" | u32 payloadBytes | payload | u64 fnv1a(payload)
 *
 * with no global header or footer, so a writer can die at ANY byte offset
 * (power loss mid-append, SIGKILL between write and flush) and recovery
 * still keeps every record whose checksum closes: recoverJournal() scans
 * from the front, stops at the first record that is short, has a bad
 * magic, or fails its checksum, and truncates the file back to the last
 * complete record so subsequent appends extend a clean prefix instead of
 * garbage. This is the same checksummed-file idiom as the dataset
 * checkpoint (core/dataset_io), adapted from whole-file-atomic to
 * per-record-atomic because a long-lived server appends continuously.
 */
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace waco::service {

/** FNV-1a of a byte range (journal record checksums). */
u64 fnv1aHash(const char* data, std::size_t n);

/** Outcome of scanning a journal file. */
struct JournalRecovery
{
    /** Payloads of every complete record, in append order. */
    std::vector<std::string> records;
    /** File size consumed by complete records. */
    u64 validBytes = 0;
    /** Torn/corrupt tail bytes dropped (0 = file was clean). */
    u64 droppedBytes = 0;
};

/**
 * Scan @p path and return every complete record. A missing file recovers
 * to zero records. When @p truncate_torn_tail is set (the writer's mode),
 * the file is truncated back to validBytes so future appends are clean.
 */
JournalRecovery recoverJournal(const std::string& path,
                               bool truncate_torn_tail = false);

/** Appending writer; open() recovers first, so the tail is always clean. */
class JournalWriter
{
  public:
    JournalWriter() = default;

    /** Recover @p path (truncating any torn tail), then open for append.
     *  Returns the recovery result so the owner can replay records. */
    JournalRecovery open(const std::string& path);

    bool isOpen() const { return out_.is_open(); }
    const std::string& path() const { return path_; }
    u64 appended() const { return appended_; }

    /** Append one record and flush it to the OS. FatalError on I/O error. */
    void append(const std::string& payload);

    void close();

  private:
    std::string path_;
    std::ofstream out_;
    u64 appended_ = 0;
};

} // namespace waco::service
