#include "exec/kernels.hpp"

#include <algorithm>
#include <vector>

#include "codegen/kernel_backend.hpp"
#include "exec/loopnest_exec.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace waco {

// The format-generic kernels are serial storage-order executions of the
// shared loop-nest IR: lower the tensor's own level order and interpret it.

DenseVector
spmvHier(const HierSparseTensor& a, const DenseVector& b)
{
    fatalIf(a.descriptor().order() != 2, "spmvHier needs a 2D tensor");
    LoopNestArgs args;
    args.a = &a;
    args.vecB = &b;
    return activeKernelBackend().execute(lowerStorageOrder(Algorithm::SpMV, a.descriptor()),
                           args)
        .vec;
}

DenseMatrix
spmmHier(const HierSparseTensor& a, const DenseMatrix& b)
{
    fatalIf(a.descriptor().order() != 2, "spmmHier needs a 2D tensor");
    LoopNestArgs args;
    args.a = &a;
    args.matB = &b;
    return activeKernelBackend().execute(lowerStorageOrder(Algorithm::SpMM, a.descriptor(),
                                             static_cast<u32>(b.cols())),
                           args)
        .mat;
}

SparseMatrix
sddmmHier(const HierSparseTensor& a, const DenseMatrix& b,
          const DenseMatrix& c)
{
    fatalIf(a.descriptor().order() != 2, "sddmmHier needs a 2D tensor");
    LoopNestArgs args;
    args.a = &a;
    args.matB = &b;
    args.matC = &c;
    return activeKernelBackend().execute(lowerStorageOrder(Algorithm::SDDMM, a.descriptor(),
                                             static_cast<u32>(b.cols())),
                           args)
        .sparse;
}

DenseMatrix
mttkrpHier(const HierSparseTensor& a, const DenseMatrix& b,
           const DenseMatrix& c)
{
    fatalIf(a.descriptor().order() != 3, "mttkrpHier needs a 3D tensor");
    fatalIf(b.cols() != c.cols(), "MTTKRP operand shape mismatch");
    LoopNestArgs args;
    args.a = &a;
    args.matB = &b;
    args.matC = &c;
    return activeKernelBackend().execute(lowerStorageOrder(Algorithm::MTTKRP,
                                             a.descriptor(),
                                             static_cast<u32>(b.cols())),
                           args)
        .mat;
}

DenseMatrix
fusedSddmmSpmmHier(const HierSparseTensor& a, const DenseMatrix& b,
                   const DenseMatrix& c, const DenseMatrix& f)
{
    fatalIf(a.descriptor().order() != 2,
            "fusedSddmmSpmmHier needs a 2D tensor");
    // K (= b.cols()) and M (= f.cols()) may differ, so the shape is patched
    // rather than lowered from a single dense-extent default.
    SuperSchedule s =
        storageOrderSchedule(Algorithm::FusedSDDMMSpMM, a.descriptor());
    ProblemShape shape =
        shapeForFormat(Algorithm::FusedSDDMMSpMM, a.descriptor(),
                       static_cast<u32>(b.cols()));
    shape.indexExtent[3] = static_cast<u32>(f.cols());
    LoopNestArgs args;
    args.a = &a;
    args.matB = &b;
    args.matC = &c;
    args.matF = &f;
    return activeKernelBackend().execute(lower(s, shape), args).mat;
}

namespace {

/**
 * Run fn(row) for rows [0, rows) with OpenMP-style dynamic chunking over
 * the persistent global pool (no per-call thread spawn).
 */
template <typename Fn>
void
dynamicFor(u32 rows, const ParallelConfig& par, Fn&& fn)
{
    u32 threads = std::max<u32>(1, par.threads);
    u64 chunk = std::max<u32>(1, par.chunk);
    if (threads == 1) {
        for (u32 r = 0; r < rows; ++r)
            fn(r);
        return;
    }
    globalPool().ensureWorkers(
        std::min(threads, ThreadPool::kMaxWorkers + 1) - 1);
    globalPool().parallelFor(rows, chunk, threads, [&](u64 begin, u64 end) {
        for (u64 r = begin; r < end; ++r)
            fn(static_cast<u32>(r));
    });
}

} // namespace

DenseVector
spmvCsr(const Csr& a, const DenseVector& b, const ParallelConfig& par)
{
    fatalIf(b.size() != a.cols(), "SpMV operand size mismatch");
    DenseVector c(a.rows(), 0.0f);
    const auto& rp = a.rowPtr();
    const auto& ci = a.colIdx();
    const auto& av = a.values();
    dynamicFor(a.rows(), par, [&](u32 i) {
        float acc = 0.0f;
        for (u64 n = rp[i]; n < rp[i + 1]; ++n)
            acc += av[n] * b[ci[n]];
        c[i] = acc;
    });
    return c;
}

DenseMatrix
spmmCsr(const Csr& a, const DenseMatrix& b, const ParallelConfig& par)
{
    fatalIf(b.rows() != a.cols(), "SpMM operand shape mismatch");
    DenseMatrix c(a.rows(), b.cols(), Layout::RowMajor, 0.0f);
    const auto& rp = a.rowPtr();
    const auto& ci = a.colIdx();
    const auto& av = a.values();
    const u64 jd = b.cols();
    dynamicFor(a.rows(), par, [&](u32 i) {
        float* crow = &c.data()[c.offset(i, 0)];
        for (u64 n = rp[i]; n < rp[i + 1]; ++n) {
            float v = av[n];
            const float* brow = &b.data()[b.offset(ci[n], 0)];
            for (u64 j = 0; j < jd; ++j)
                crow[j] += v * brow[j];
        }
    });
    return c;
}

SparseMatrix
sddmmCsr(const SparseMatrix& a, const DenseMatrix& b, const DenseMatrix& c,
         const ParallelConfig& par)
{
    fatalIf(b.rows() != a.rows() || c.cols() != a.cols() ||
                b.cols() != c.rows(),
            "SDDMM operand shape mismatch");
    Csr csr(a);
    const u64 kd = b.cols();
    std::vector<float> out_vals(a.nnz(), 0.0f);
    const auto& rp = csr.rowPtr();
    const auto& ci = csr.colIdx();
    const auto& av = csr.values();
    dynamicFor(a.rows(), par, [&](u32 i) {
        for (u64 n = rp[i]; n < rp[i + 1]; ++n) {
            u32 j = ci[n];
            float dot = 0.0f;
            for (u64 k = 0; k < kd; ++k)
                dot += b.at(i, k) * c.at(k, j);
            out_vals[n] = av[n] * dot;
        }
    });
    std::vector<Triplet> t;
    t.reserve(a.nnz());
    u64 n = 0;
    for (u32 i = 0; i < a.rows(); ++i)
        for (u64 p = rp[i]; p < rp[i + 1]; ++p, ++n)
            t.push_back({i, ci[p], out_vals[p]});
    return SparseMatrix(a.rows(), a.cols(), std::move(t));
}

DenseMatrix
mttkrpCsf(const Sparse3Tensor& a, const DenseMatrix& b, const DenseMatrix& c,
          const ParallelConfig& par)
{
    fatalIf(b.rows() != a.dimK() || c.rows() != a.dimL() ||
                b.cols() != c.cols(),
            "MTTKRP operand shape mismatch");
    DenseMatrix d(a.dimI(), b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    // Fiber starts: COO is sorted by i, so each i's entries are contiguous.
    std::vector<u64> start(a.dimI() + 1, 0);
    for (u64 n = 0; n < a.nnz(); ++n)
        ++start[a.iIndices()[n] + 1];
    for (u32 i = 0; i < a.dimI(); ++i)
        start[i + 1] += start[i];
    dynamicFor(a.dimI(), par, [&](u32 i) {
        float* drow = &d.data()[d.offset(i, 0)];
        for (u64 n = start[i]; n < start[i + 1]; ++n) {
            float v = a.values()[n];
            const float* brow = &b.data()[b.offset(a.kIndices()[n], 0)];
            const float* crow = &c.data()[c.offset(a.lIndices()[n], 0)];
            for (u64 j = 0; j < jd; ++j)
                drow[j] += v * brow[j] * crow[j];
        }
    });
    return d;
}

double
measureHierKernel(Algorithm alg, const HierSparseTensor& a, u32 dense_extent,
                  u32 rounds)
{
    const auto& dims = a.descriptor().dims();
    Rng rng(0xbeef);
    std::vector<double> times;
    times.reserve(rounds);
    u32 extent = dense_extent;
    if (extent == 0) {
        const auto& info = algorithmInfo(alg);
        for (u32 idx = 0; idx < info.numIndices; ++idx)
            extent = std::max(extent, info.denseExtent[idx]);
        if (extent == 0)
            extent = 1;
    }
    switch (alg) {
      case Algorithm::SpMV: {
        DenseVector b(dims[1]);
        b.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto c = spmvHier(a, b);
            times.push_back(t.seconds());
            (void)c;
        }
        break;
      }
      case Algorithm::SpMM: {
        DenseMatrix b(dims[1], extent);
        b.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto c = spmmHier(a, b);
            times.push_back(t.seconds());
            (void)c;
        }
        break;
      }
      case Algorithm::SDDMM: {
        DenseMatrix b(dims[0], extent);
        DenseMatrix c(extent, dims[1], Layout::ColMajor);
        b.randomize(rng);
        c.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto d = sddmmHier(a, b, c);
            times.push_back(t.seconds());
            (void)d;
        }
        break;
      }
      case Algorithm::MTTKRP: {
        DenseMatrix b(dims[1], extent);
        DenseMatrix c(dims[2], extent);
        b.randomize(rng);
        c.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto d = mttkrpHier(a, b, c);
            times.push_back(t.seconds());
            (void)d;
        }
        break;
      }
      case Algorithm::FusedSDDMMSpMM: {
        DenseMatrix b(dims[0], extent);
        DenseMatrix c(extent, dims[1], Layout::ColMajor);
        DenseMatrix f(dims[1], extent);
        b.randomize(rng);
        c.randomize(rng);
        f.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto e = fusedSddmmSpmmHier(a, b, c, f);
            times.push_back(t.seconds());
            (void)e;
        }
        break;
      }
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

} // namespace waco
