#include "exec/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace waco {

DenseVector
spmvHier(const HierSparseTensor& a, const DenseVector& b)
{
    fatalIf(a.descriptor().order() != 2, "spmvHier needs a 2D tensor");
    fatalIf(b.size() != a.descriptor().dims()[1], "SpMV operand size mismatch");
    DenseVector c(a.descriptor().dims()[0], 0.0f);
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (ok)
            c[x[0]] += v * b[x[1]];
    });
    return c;
}

DenseMatrix
spmmHier(const HierSparseTensor& a, const DenseMatrix& b)
{
    fatalIf(a.descriptor().order() != 2, "spmmHier needs a 2D tensor");
    fatalIf(b.rows() != a.descriptor().dims()[1], "SpMM operand shape mismatch");
    DenseMatrix c(a.descriptor().dims()[0], b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (!ok)
            return;
        for (u64 j = 0; j < jd; ++j)
            c.at(x[0], j) += v * b.at(x[1], j);
    });
    return c;
}

SparseMatrix
sddmmHier(const HierSparseTensor& a, const DenseMatrix& b,
          const DenseMatrix& c)
{
    fatalIf(a.descriptor().order() != 2, "sddmmHier needs a 2D tensor");
    fatalIf(b.rows() != a.descriptor().dims()[0] ||
                c.cols() != a.descriptor().dims()[1] ||
                b.cols() != c.rows(),
            "SDDMM operand shape mismatch");
    const u64 kd = b.cols();
    std::vector<Triplet> out;
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (!ok || v == 0.0f)
            return;
        float dot = 0.0f;
        for (u64 k = 0; k < kd; ++k)
            dot += b.at(x[0], k) * c.at(k, x[1]);
        out.push_back({x[0], x[1], v * dot});
    });
    return SparseMatrix(a.descriptor().dims()[0], a.descriptor().dims()[1],
                        std::move(out));
}

DenseMatrix
mttkrpHier(const HierSparseTensor& a, const DenseMatrix& b,
           const DenseMatrix& c)
{
    fatalIf(a.descriptor().order() != 3, "mttkrpHier needs a 3D tensor");
    fatalIf(b.rows() != a.descriptor().dims()[1] ||
                c.rows() != a.descriptor().dims()[2] ||
                b.cols() != c.cols(),
            "MTTKRP operand shape mismatch");
    DenseMatrix d(a.descriptor().dims()[0], b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (!ok)
            return;
        for (u64 j = 0; j < jd; ++j)
            d.at(x[0], j) += v * b.at(x[1], j) * c.at(x[2], j);
    });
    return d;
}

namespace {

/**
 * Run fn(row) for rows [0, rows) across threads with OpenMP-style dynamic
 * chunking: threads atomically claim the next chunk of @p chunk rows.
 */
template <typename Fn>
void
dynamicFor(u32 rows, const ParallelConfig& par, Fn&& fn)
{
    u32 threads = std::max<u32>(1, par.threads);
    u32 chunk = std::max<u32>(1, par.chunk);
    if (threads == 1) {
        for (u32 r = 0; r < rows; ++r)
            fn(r);
        return;
    }
    std::atomic<u32> next{0};
    auto worker = [&]() {
        for (;;) {
            u32 begin = next.fetch_add(chunk);
            if (begin >= rows)
                return;
            u32 end = std::min(rows, begin + chunk);
            for (u32 r = begin; r < end; ++r)
                fn(r);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();
}

} // namespace

DenseVector
spmvCsr(const Csr& a, const DenseVector& b, const ParallelConfig& par)
{
    fatalIf(b.size() != a.cols(), "SpMV operand size mismatch");
    DenseVector c(a.rows(), 0.0f);
    const auto& rp = a.rowPtr();
    const auto& ci = a.colIdx();
    const auto& av = a.values();
    dynamicFor(a.rows(), par, [&](u32 i) {
        float acc = 0.0f;
        for (u64 n = rp[i]; n < rp[i + 1]; ++n)
            acc += av[n] * b[ci[n]];
        c[i] = acc;
    });
    return c;
}

DenseMatrix
spmmCsr(const Csr& a, const DenseMatrix& b, const ParallelConfig& par)
{
    fatalIf(b.rows() != a.cols(), "SpMM operand shape mismatch");
    DenseMatrix c(a.rows(), b.cols(), Layout::RowMajor, 0.0f);
    const auto& rp = a.rowPtr();
    const auto& ci = a.colIdx();
    const auto& av = a.values();
    const u64 jd = b.cols();
    dynamicFor(a.rows(), par, [&](u32 i) {
        float* crow = &c.data()[c.offset(i, 0)];
        for (u64 n = rp[i]; n < rp[i + 1]; ++n) {
            float v = av[n];
            const float* brow = &b.data()[b.offset(ci[n], 0)];
            for (u64 j = 0; j < jd; ++j)
                crow[j] += v * brow[j];
        }
    });
    return c;
}

SparseMatrix
sddmmCsr(const SparseMatrix& a, const DenseMatrix& b, const DenseMatrix& c,
         const ParallelConfig& par)
{
    fatalIf(b.rows() != a.rows() || c.cols() != a.cols() ||
                b.cols() != c.rows(),
            "SDDMM operand shape mismatch");
    Csr csr(a);
    const u64 kd = b.cols();
    std::vector<float> out_vals(a.nnz(), 0.0f);
    const auto& rp = csr.rowPtr();
    const auto& ci = csr.colIdx();
    const auto& av = csr.values();
    dynamicFor(a.rows(), par, [&](u32 i) {
        for (u64 n = rp[i]; n < rp[i + 1]; ++n) {
            u32 j = ci[n];
            float dot = 0.0f;
            for (u64 k = 0; k < kd; ++k)
                dot += b.at(i, k) * c.at(k, j);
            out_vals[n] = av[n] * dot;
        }
    });
    std::vector<Triplet> t;
    t.reserve(a.nnz());
    u64 n = 0;
    for (u32 i = 0; i < a.rows(); ++i)
        for (u64 p = rp[i]; p < rp[i + 1]; ++p, ++n)
            t.push_back({i, ci[p], out_vals[p]});
    return SparseMatrix(a.rows(), a.cols(), std::move(t));
}

DenseMatrix
mttkrpCsf(const Sparse3Tensor& a, const DenseMatrix& b, const DenseMatrix& c,
          const ParallelConfig& par)
{
    fatalIf(b.rows() != a.dimK() || c.rows() != a.dimL() ||
                b.cols() != c.cols(),
            "MTTKRP operand shape mismatch");
    DenseMatrix d(a.dimI(), b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    // Fiber starts: COO is sorted by i, so each i's entries are contiguous.
    std::vector<u64> start(a.dimI() + 1, 0);
    for (u64 n = 0; n < a.nnz(); ++n)
        ++start[a.iIndices()[n] + 1];
    for (u32 i = 0; i < a.dimI(); ++i)
        start[i + 1] += start[i];
    dynamicFor(a.dimI(), par, [&](u32 i) {
        float* drow = &d.data()[d.offset(i, 0)];
        for (u64 n = start[i]; n < start[i + 1]; ++n) {
            float v = a.values()[n];
            const float* brow = &b.data()[b.offset(a.kIndices()[n], 0)];
            const float* crow = &c.data()[c.offset(a.lIndices()[n], 0)];
            for (u64 j = 0; j < jd; ++j)
                drow[j] += v * brow[j] * crow[j];
        }
    });
    return d;
}

double
measureHierKernel(Algorithm alg, const HierSparseTensor& a, u32 dense_extent,
                  u32 rounds)
{
    const auto& dims = a.descriptor().dims();
    Rng rng(0xbeef);
    std::vector<double> times;
    times.reserve(rounds);
    u32 extent = dense_extent;
    if (extent == 0) {
        const auto& info = algorithmInfo(alg);
        for (u32 idx = 0; idx < info.numIndices; ++idx)
            extent = std::max(extent, info.denseExtent[idx]);
        if (extent == 0)
            extent = 1;
    }
    switch (alg) {
      case Algorithm::SpMV: {
        DenseVector b(dims[1]);
        b.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto c = spmvHier(a, b);
            times.push_back(t.seconds());
            (void)c;
        }
        break;
      }
      case Algorithm::SpMM: {
        DenseMatrix b(dims[1], extent);
        b.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto c = spmmHier(a, b);
            times.push_back(t.seconds());
            (void)c;
        }
        break;
      }
      case Algorithm::SDDMM: {
        DenseMatrix b(dims[0], extent);
        DenseMatrix c(extent, dims[1], Layout::ColMajor);
        b.randomize(rng);
        c.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto d = sddmmHier(a, b, c);
            times.push_back(t.seconds());
            (void)d;
        }
        break;
      }
      case Algorithm::MTTKRP: {
        DenseMatrix b(dims[1], extent);
        DenseMatrix c(dims[2], extent);
        b.randomize(rng);
        c.randomize(rng);
        for (u32 r = 0; r < rounds; ++r) {
            Timer t;
            auto d = mttkrpHier(a, b, c);
            times.push_back(t.seconds());
            (void)d;
        }
        break;
      }
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

} // namespace waco
