/**
 * @file
 * The single generic executor: interprets a lowered LoopNest against a
 * HierSparseTensor and dense operands. All five algorithms (SpMV, SpMM,
 * SDDMM, MTTKRP, FusedSDDMMSpMM) dispatch through executeLoopNest — there
 * are no per-kernel hand-written traversals anymore; the `*Hier` /
 * `*Scheduled` entry points in kernels.hpp / scheduled.hpp are thin
 * wrappers that lower the tensor's storage order and call this.
 *
 * The interpreter walks the nest's typed nodes: Dense nodes iterate full
 * coordinate ranges, Sparse nodes traverse A's pos/crd (or padded U)
 * levels, and locate steps resolve discordantly-ordered levels by direct
 * offset (U) or binary search over crd (C) — so discordant schedules
 * execute with exactly the cost structure the paper describes (§3.1).
 * Compute leaves are template-specialized per algorithm so the innermost
 * loops stay tight; an unsplit dense-only innermost loop is fused into the
 * leaf as a vectorizable tail.
 *
 * Parallelism: the outermost loop is chunked over the persistent global
 * ThreadPool (util/thread_pool.hpp) whenever its index variable is not a
 * reduction index — each chunk then writes a disjoint slice of the output
 * (disjoint rows/columns, or disjoint A value positions for SDDMM).
 * Reduction-major nests run serially, which is also what a legal TACO
 * schedule would be forced to do.
 *
 * Fused workspace nests run through a scope driver: the shared scope
 * prefix executes once, and at the fission point each scope iteration
 * zero-initializes a dense workspace, runs the producer phase (w[j] +=
 * B*C), then the consumer phase (E += A*w*F). Each parallel chunk owns a
 * private workspace vector, so chunks of the (non-reducing) scope index
 * never share scratch state.
 */
#pragma once

#include <utility>
#include <vector>

#include "exec/kernels.hpp"
#include "ir/loopnest.hpp"

namespace waco {

/** Operands of one executeLoopNest call; only the algorithm's inputs are
 *  read (`a` always, `vecB` for SpMV, `matB`/`matC` per einsum). */
struct LoopNestArgs
{
    const HierSparseTensor* a = nullptr;
    const DenseVector* vecB = nullptr; ///< SpMV B.
    const DenseMatrix* matB = nullptr; ///< SpMM / SDDMM / MTTKRP / fused B.
    const DenseMatrix* matC = nullptr; ///< SDDMM / MTTKRP / fused C.
    const DenseMatrix* matF = nullptr; ///< FusedSDDMMSpMM F.
};

/** Result of one executeLoopNest call; the algorithm determines which
 *  member is populated. */
struct LoopNestResult
{
    DenseVector vec;     ///< SpMV output C.
    DenseMatrix mat;     ///< SpMM output C / MTTKRP output D / fused E.
    SparseMatrix sparse; ///< SDDMM output D (A's sparsity pattern).
};

/**
 * Execute @p nest over the given operands. The tensor must be stored in
 * the format the nest was lowered for (formatOf of the lowered schedule).
 */
LoopNestResult executeLoopNest(const LoopNest& nest, const LoopNestArgs& args,
                               const ParallelConfig& par = {1, 128});

/** Process-wide count of executeLoopNest invocations — lets tests assert
 *  that every kernel entry point dispatches through the generic executor. */
u64 loopNestExecutionCount();

// Pieces of the interpreter that any alternative execution engine (the
// JIT'd CompiledBackend in codegen/kernel_backend.hpp) must share so its
// argument contract, chunking domain, and output assembly can never
// drift from the interpreter's.
namespace exec_detail {

/** Validate that @p args carries the operands @p nest's algorithm needs
 *  with matching shapes, and that the tensor physically realizes the
 *  nest's format half. Fatal/panic on mismatch (executeLoopNest's exact
 *  contract). */
void checkLoopNestArgs(const LoopNest& nest, const LoopNestArgs& args);

/** Chunking domain of the outermost loop: coordinates for a Dense/U top
 *  node, absolute crd positions for a Compressed one. */
std::pair<u64, u64> topLoopDomain(const LoopNest& nest,
                                  const HierSparseTensor& a);

/** True when chunks of the top loop write disjoint output slices (the
 *  top index is not a reduction index; fused nests always qualify). */
bool topLoopParallelizable(const LoopNest& nest);

/** Serial storage-order pass assembling SDDMM's sparse output on A's
 *  pattern from per-stored-position accumulators (padding and explicit
 *  stored zeros dropped). */
SparseMatrix assembleSddmmOutput(const HierSparseTensor& a,
                                 const std::vector<float>& dvals);

} // namespace exec_detail

} // namespace waco
