#include "exec/scheduled.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace waco {

bool
parallelizableTopLevel(Algorithm alg, const HierSparseTensor& a)
{
    const auto& info = algorithmInfo(alg);
    u32 top_dim = a.descriptor().levels().front().dim;
    u32 idx = info.indexOfSparseDim(top_dim);
    return !info.isReduction[idx];
}

namespace {

/** Run fn(top_begin, top_end) over dynamic chunks of the first level. */
template <typename Fn>
void
dynamicTopLevel(const HierSparseTensor& a, const ParallelConfig& par, Fn&& fn)
{
    u64 total = a.topLevelSize();
    u32 threads = std::max<u32>(1, par.threads);
    u64 chunk = std::max<u32>(1, par.chunk);
    if (threads == 1) {
        fn(0, total);
        return;
    }
    std::atomic<u64> next{0};
    auto worker = [&]() {
        for (;;) {
            u64 begin = next.fetch_add(chunk);
            if (begin >= total)
                return;
            fn(begin, std::min(total, begin + chunk));
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();
}

} // namespace

DenseVector
spmvScheduled(const HierSparseTensor& a, const DenseVector& b,
              const ParallelConfig& par)
{
    fatalIf(a.descriptor().order() != 2, "spmvScheduled needs a 2D tensor");
    fatalIf(b.size() != a.descriptor().dims()[1],
            "SpMV operand size mismatch");
    if (!parallelizableTopLevel(Algorithm::SpMV, a))
        return spmvHier(a, b); // reduction-major storage: serial fallback
    DenseVector c(a.descriptor().dims()[0], 0.0f);
    dynamicTopLevel(a, par, [&](u64 begin, u64 end) {
        a.forEachStoredInTopRange(
            begin, end, [&](const std::array<u32, 3>& x, float v, bool ok) {
                if (ok)
                    c[x[0]] += v * b[x[1]];
            });
    });
    return c;
}

DenseMatrix
spmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
              const ParallelConfig& par)
{
    fatalIf(a.descriptor().order() != 2, "spmmScheduled needs a 2D tensor");
    fatalIf(b.rows() != a.descriptor().dims()[1],
            "SpMM operand shape mismatch");
    if (!parallelizableTopLevel(Algorithm::SpMM, a))
        return spmmHier(a, b);
    DenseMatrix c(a.descriptor().dims()[0], b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    dynamicTopLevel(a, par, [&](u64 begin, u64 end) {
        a.forEachStoredInTopRange(
            begin, end, [&](const std::array<u32, 3>& x, float v, bool ok) {
                if (!ok)
                    return;
                for (u64 j = 0; j < jd; ++j)
                    c.at(x[0], j) += v * b.at(x[1], j);
            });
    });
    return c;
}

DenseMatrix
mttkrpScheduled(const HierSparseTensor& a, const DenseMatrix& b,
                const DenseMatrix& c, const ParallelConfig& par)
{
    fatalIf(a.descriptor().order() != 3, "mttkrpScheduled needs a 3D tensor");
    fatalIf(b.rows() != a.descriptor().dims()[1] ||
                c.rows() != a.descriptor().dims()[2] ||
                b.cols() != c.cols(),
            "MTTKRP operand shape mismatch");
    if (!parallelizableTopLevel(Algorithm::MTTKRP, a))
        return mttkrpHier(a, b, c);
    DenseMatrix d(a.descriptor().dims()[0], b.cols(), Layout::RowMajor, 0.0f);
    const u64 jd = b.cols();
    dynamicTopLevel(a, par, [&](u64 begin, u64 end) {
        a.forEachStoredInTopRange(
            begin, end, [&](const std::array<u32, 3>& x, float v, bool ok) {
                if (!ok)
                    return;
                for (u64 j = 0; j < jd; ++j)
                    d.at(x[0], j) += v * b.at(x[1], j) * c.at(x[2], j);
            });
    });
    return d;
}

} // namespace waco
