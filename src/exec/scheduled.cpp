#include "exec/scheduled.hpp"

#include "codegen/kernel_backend.hpp"
#include "exec/loopnest_exec.hpp"

namespace waco {

bool
parallelizableTopLevel(Algorithm alg, const HierSparseTensor& a)
{
    const auto& info = algorithmInfo(alg);
    // Workspace kernels always lead with their scope index (S015), whatever
    // the storage level order — chunks own disjoint output rows and private
    // workspaces.
    if (info.usesWorkspace)
        return true;
    u32 top_dim = a.descriptor().levels().front().dim;
    u32 idx = info.indexOfSparseDim(top_dim);
    return !info.isReduction[idx];
}

DenseVector
spmvScheduled(const HierSparseTensor& a, const DenseVector& b,
              const ParallelConfig& par)
{
    fatalIf(a.descriptor().order() != 2, "spmvScheduled needs a 2D tensor");
    LoopNestArgs args;
    args.a = &a;
    args.vecB = &b;
    return activeKernelBackend().execute(lowerStorageOrder(Algorithm::SpMV, a.descriptor()),
                           args, par)
        .vec;
}

DenseMatrix
spmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
              const ParallelConfig& par)
{
    fatalIf(a.descriptor().order() != 2, "spmmScheduled needs a 2D tensor");
    LoopNestArgs args;
    args.a = &a;
    args.matB = &b;
    return activeKernelBackend().execute(lowerStorageOrder(Algorithm::SpMM, a.descriptor(),
                                             static_cast<u32>(b.cols())),
                           args, par)
        .mat;
}

SparseMatrix
sddmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
               const DenseMatrix& c, const ParallelConfig& par)
{
    fatalIf(a.descriptor().order() != 2, "sddmmScheduled needs a 2D tensor");
    LoopNestArgs args;
    args.a = &a;
    args.matB = &b;
    args.matC = &c;
    return activeKernelBackend().execute(lowerStorageOrder(Algorithm::SDDMM, a.descriptor(),
                                             static_cast<u32>(b.cols())),
                           args, par)
        .sparse;
}

DenseMatrix
mttkrpScheduled(const HierSparseTensor& a, const DenseMatrix& b,
                const DenseMatrix& c, const ParallelConfig& par)
{
    fatalIf(a.descriptor().order() != 3, "mttkrpScheduled needs a 3D tensor");
    fatalIf(b.cols() != c.cols(), "MTTKRP operand shape mismatch");
    LoopNestArgs args;
    args.a = &a;
    args.matB = &b;
    args.matC = &c;
    return activeKernelBackend().execute(lowerStorageOrder(Algorithm::MTTKRP,
                                             a.descriptor(),
                                             static_cast<u32>(b.cols())),
                           args, par)
        .mat;
}

DenseMatrix
fusedSddmmSpmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
                        const DenseMatrix& c, const DenseMatrix& f,
                        const ParallelConfig& par)
{
    fatalIf(a.descriptor().order() != 2,
            "fusedSddmmSpmmScheduled needs a 2D tensor");
    SuperSchedule s =
        storageOrderSchedule(Algorithm::FusedSDDMMSpMM, a.descriptor());
    ProblemShape shape =
        shapeForFormat(Algorithm::FusedSDDMMSpMM, a.descriptor(),
                       static_cast<u32>(b.cols()));
    shape.indexExtent[3] = static_cast<u32>(f.cols());
    LoopNestArgs args;
    args.a = &a;
    args.matB = &b;
    args.matC = &c;
    args.matF = &f;
    return activeKernelBackend().execute(lower(s, shape), args, par).mat;
}

} // namespace waco
