#include "exec/reference.hpp"

#include <cmath>

#include "util/common.hpp"

namespace waco {

DenseVector
spmvReference(const SparseMatrix& a, const DenseVector& b)
{
    fatalIf(b.size() != a.cols(), "SpMV operand size mismatch");
    DenseVector c(a.rows(), 0.0f);
    for (u64 n = 0; n < a.nnz(); ++n)
        c[a.rowIndices()[n]] += a.values()[n] * b[a.colIndices()[n]];
    return c;
}

DenseMatrix
spmmReference(const SparseMatrix& a, const DenseMatrix& b)
{
    fatalIf(b.rows() != a.cols(), "SpMM operand shape mismatch");
    DenseMatrix c(a.rows(), b.cols(), Layout::RowMajor, 0.0f);
    for (u64 n = 0; n < a.nnz(); ++n) {
        u32 i = a.rowIndices()[n];
        u32 k = a.colIndices()[n];
        float v = a.values()[n];
        for (u64 j = 0; j < b.cols(); ++j)
            c.at(i, j) += v * b.at(k, j);
    }
    return c;
}

SparseMatrix
sddmmReference(const SparseMatrix& a, const DenseMatrix& b,
               const DenseMatrix& c)
{
    fatalIf(b.rows() != a.rows() || c.cols() != a.cols() ||
                b.cols() != c.rows(),
            "SDDMM operand shape mismatch");
    std::vector<Triplet> out;
    out.reserve(a.nnz());
    for (u64 n = 0; n < a.nnz(); ++n) {
        u32 i = a.rowIndices()[n];
        u32 j = a.colIndices()[n];
        float dot = 0.0f;
        for (u64 k = 0; k < b.cols(); ++k)
            dot += b.at(i, k) * c.at(k, j);
        out.push_back({i, j, a.values()[n] * dot});
    }
    return SparseMatrix(a.rows(), a.cols(), std::move(out));
}

DenseMatrix
mttkrpReference(const Sparse3Tensor& a, const DenseMatrix& b,
                const DenseMatrix& c)
{
    fatalIf(b.rows() != a.dimK() || c.rows() != a.dimL() ||
                b.cols() != c.cols(),
            "MTTKRP operand shape mismatch");
    DenseMatrix d(a.dimI(), b.cols(), Layout::RowMajor, 0.0f);
    for (u64 n = 0; n < a.nnz(); ++n) {
        u32 i = a.iIndices()[n];
        u32 k = a.kIndices()[n];
        u32 l = a.lIndices()[n];
        float v = a.values()[n];
        for (u64 j = 0; j < b.cols(); ++j)
            d.at(i, j) += v * b.at(k, j) * c.at(l, j);
    }
    return d;
}

DenseMatrix
fusedSddmmSpmmReference(const SparseMatrix& a, const DenseMatrix& b,
                        const DenseMatrix& c, const DenseMatrix& f)
{
    fatalIf(b.rows() != a.rows() || c.cols() != a.cols() ||
                b.cols() != c.rows() || f.rows() != a.cols(),
            "FusedSDDMMSpMM operand shape mismatch");
    DenseMatrix e(a.rows(), f.cols(), Layout::RowMajor, 0.0f);
    for (u64 n = 0; n < a.nnz(); ++n) {
        u32 i = a.rowIndices()[n];
        u32 j = a.colIndices()[n];
        float dot = 0.0f;
        for (u64 k = 0; k < b.cols(); ++k)
            dot += b.at(i, k) * c.at(k, j);
        float v = a.values()[n] * dot;
        for (u64 m = 0; m < f.cols(); ++m)
            e.at(i, m) += v * f.at(j, m);
    }
    return e;
}

double
maxAbsDiff(const DenseMatrix& x, const DenseMatrix& y)
{
    panicIf(x.rows() != y.rows() || x.cols() != y.cols(),
            "maxAbsDiff shape mismatch");
    double worst = 0.0;
    for (u64 r = 0; r < x.rows(); ++r)
        for (u64 c = 0; c < x.cols(); ++c)
            worst = std::max(worst,
                             std::abs(static_cast<double>(x.at(r, c)) -
                                      y.at(r, c)));
    return worst;
}

double
maxAbsDiff(const DenseVector& x, const DenseVector& y)
{
    panicIf(x.size() != y.size(), "maxAbsDiff size mismatch");
    double worst = 0.0;
    for (u64 i = 0; i < x.size(); ++i)
        worst = std::max(worst,
                         std::abs(static_cast<double>(x[i]) - y[i]));
    return worst;
}

} // namespace waco
