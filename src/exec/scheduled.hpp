/**
 * @file
 * Scheduled (multi-threaded) execution of the format-generic kernels: the
 * real-machine counterpart of the oracle's OpenMP-dynamic model. All five
 * entry points lower the tensor's storage order to the shared loop-nest IR
 * and run the generic interpreter (exec/loopnest_exec.hpp), which chunks
 * the outermost loop over the persistent thread pool exactly like
 * `#pragma omp parallel for schedule(dynamic, chunk)` in TACO-generated
 * code.
 *
 * Parallel execution is only race-free when the outermost loop binds a
 * dimension that also indexes the output (each chunk then writes a
 * disjoint output slice — for SDDMM, a disjoint range of A's stored value
 * positions). parallelizableTopLevel() checks that; the executor falls
 * back to serial execution otherwise, which is also what a legal TACO
 * schedule would be forced to do.
 */
#pragma once

#include "exec/kernels.hpp"

namespace waco {

/** True when the tensor's first level indexes output dimension(s) so
 *  top-level chunks write disjoint output slices. */
bool parallelizableTopLevel(Algorithm alg, const HierSparseTensor& a);

/** SpMV with dynamic top-level chunking. */
DenseVector spmvScheduled(const HierSparseTensor& a, const DenseVector& b,
                          const ParallelConfig& par);

/** SpMM with dynamic top-level chunking. */
DenseMatrix spmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
                          const ParallelConfig& par);

/** SDDMM with dynamic top-level chunking (disjoint stored-value ranges
 *  make every non-reduction top level parallel-safe). */
SparseMatrix sddmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
                            const DenseMatrix& c, const ParallelConfig& par);

/** MTTKRP with dynamic top-level chunking. */
DenseMatrix mttkrpScheduled(const HierSparseTensor& a, const DenseMatrix& b,
                            const DenseMatrix& c, const ParallelConfig& par);

/** Fused SDDMM→SpMM with dynamic chunking of the scope (row) loop; each
 *  chunk owns a private dense workspace. */
DenseMatrix fusedSddmmSpmmScheduled(const HierSparseTensor& a,
                                    const DenseMatrix& b,
                                    const DenseMatrix& c,
                                    const DenseMatrix& f,
                                    const ParallelConfig& par);

} // namespace waco
