/**
 * @file
 * Scheduled (multi-threaded) execution of the format-generic kernels: the
 * real-machine counterpart of the oracle's OpenMP-dynamic model. The
 * tensor's first storage level is chunked and worker threads claim chunks
 * dynamically, exactly like `#pragma omp parallel for schedule(dynamic,
 * chunk)` over the outer loop of TACO-generated code.
 *
 * Parallel execution is only race-free when the first storage level
 * indexes a dimension that also indexes the output (each subtree then
 * writes a disjoint output slice). parallelizableTopLevel() checks that;
 * the kernels fall back to serial execution otherwise, which is also what
 * a legal TACO schedule would be forced to do.
 */
#pragma once

#include "exec/kernels.hpp"

namespace waco {

/** True when the tensor's first level indexes output dimension(s) so
 *  top-level chunks write disjoint output slices. */
bool parallelizableTopLevel(Algorithm alg, const HierSparseTensor& a);

/** SpMV with dynamic top-level chunking. */
DenseVector spmvScheduled(const HierSparseTensor& a, const DenseVector& b,
                          const ParallelConfig& par);

/** SpMM with dynamic top-level chunking. */
DenseMatrix spmmScheduled(const HierSparseTensor& a, const DenseMatrix& b,
                          const ParallelConfig& par);

/** MTTKRP with dynamic top-level chunking. */
DenseMatrix mttkrpScheduled(const HierSparseTensor& a, const DenseMatrix& b,
                            const DenseMatrix& c, const ParallelConfig& par);

} // namespace waco
