/**
 * @file
 * Real execution engine.
 *
 * Two tiers:
 *  - Format-generic kernels over a HierSparseTensor: run any of the five
 *    algorithms on a tensor stored in *any* format the SuperSchedule can
 *    describe (dense-block padding included, exactly like TACO-generated
 *    code). These are thin wrappers that lower the tensor's storage order
 *    to the shared loop-nest IR and run the generic interpreter
 *    (exec/loopnest_exec.hpp) serially.
 *  - Fast fixed-format kernels (CSR / CSF) with OpenMP-style dynamic
 *    work-sharing over the persistent thread pool, used by the baselines
 *    and examples.
 */
#pragma once

#include "ir/algorithm.hpp"
#include "tensor/coo.hpp"
#include "tensor/csr.hpp"
#include "tensor/dense.hpp"
#include "tensor/format.hpp"

namespace waco {

/** C[i] = A[i,k] * B[k] with A in an arbitrary hierarchy format. */
DenseVector spmvHier(const HierSparseTensor& a, const DenseVector& b);

/** C[i,j] = A[i,k] * B[k,j] with A in an arbitrary hierarchy format. */
DenseMatrix spmmHier(const HierSparseTensor& a, const DenseMatrix& b);

/** D[i,j] = A[i,j] * B[i,k] * C[k,j] with A in an arbitrary hierarchy format. */
SparseMatrix sddmmHier(const HierSparseTensor& a, const DenseMatrix& b,
                       const DenseMatrix& c);

/** D[i,j] = A[i,k,l] * B[k,j] * C[l,j] with A in an arbitrary hierarchy format. */
DenseMatrix mttkrpHier(const HierSparseTensor& a, const DenseMatrix& b,
                       const DenseMatrix& c);

/** E[i,m] = A[i,j] * (B[i,k] * C[k,j]) * F[j,m] with A in an arbitrary
 *  hierarchy format, fused through a dense row workspace (no intermediate
 *  sparse product is materialized). */
DenseMatrix fusedSddmmSpmmHier(const HierSparseTensor& a, const DenseMatrix& b,
                               const DenseMatrix& c, const DenseMatrix& f);

/**
 * OpenMP-style dynamic scheduling parameters for the fast kernels:
 * rows are handed to worker threads in chunks of @p chunk
 * (#pragma omp parallel for schedule(dynamic, chunk)).
 */
struct ParallelConfig
{
    u32 threads = 1;
    u32 chunk = 128;
};

/** CSR SpMV with dynamic row chunking. */
DenseVector spmvCsr(const Csr& a, const DenseVector& b,
                    const ParallelConfig& par = {});

/** CSR SpMM with dynamic row chunking (B and C row-major). */
DenseMatrix spmmCsr(const Csr& a, const DenseMatrix& b,
                    const ParallelConfig& par = {});

/** CSR SDDMM with dynamic row chunking (B row-major, C column-major). */
SparseMatrix sddmmCsr(const SparseMatrix& a, const DenseMatrix& b,
                      const DenseMatrix& c, const ParallelConfig& par = {});

/** CSF-ordered MTTKRP from the sorted COO tensor (B and C row-major). */
DenseMatrix mttkrpCsf(const Sparse3Tensor& a, const DenseMatrix& b,
                      const DenseMatrix& c, const ParallelConfig& par = {});

/**
 * Median wall-clock seconds over @p rounds repetitions of the
 * format-generic kernel for @p alg (the paper's measurement protocol,
 * Section 4.1.3, with fewer rounds by default).
 */
double measureHierKernel(Algorithm alg, const HierSparseTensor& a,
                         u32 dense_extent = 0, u32 rounds = 5);

} // namespace waco
