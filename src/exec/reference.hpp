/**
 * @file
 * Straightforward reference implementations of the five kernels, computed
 * directly from canonical COO. These are the correctness oracles that every
 * format/schedule execution path is tested against.
 */
#pragma once

#include "tensor/coo.hpp"
#include "tensor/dense.hpp"

namespace waco {

/** C[i] = sum_k A[i,k] * B[k]. */
DenseVector spmvReference(const SparseMatrix& a, const DenseVector& b);

/** C[i,j] = sum_k A[i,k] * B[k,j]. */
DenseMatrix spmmReference(const SparseMatrix& a, const DenseMatrix& b);

/** D[i,j] = A[i,j] * sum_k B[i,k] * C[k,j]; D has A's sparsity pattern. */
SparseMatrix sddmmReference(const SparseMatrix& a, const DenseMatrix& b,
                            const DenseMatrix& c);

/** D[i,j] = sum_{k,l} A[i,k,l] * B[k,j] * C[l,j]. */
DenseMatrix mttkrpReference(const Sparse3Tensor& a, const DenseMatrix& b,
                            const DenseMatrix& c);

/** E[i,m] = sum_j A[i,j] * (sum_k B[i,k] * C[k,j]) * F[j,m] — SDDMM fused
 *  into SpMM without materializing the intermediate sparse product. */
DenseMatrix fusedSddmmSpmmReference(const SparseMatrix& a,
                                    const DenseMatrix& b,
                                    const DenseMatrix& c,
                                    const DenseMatrix& f);

/** Max absolute elementwise difference between two dense matrices. */
double maxAbsDiff(const DenseMatrix& x, const DenseMatrix& y);

/** Max absolute elementwise difference between two dense vectors. */
double maxAbsDiff(const DenseVector& x, const DenseVector& y);

} // namespace waco
