#include "exec/loopnest_exec.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "analysis/loopnest_verifier.hpp"
#include "util/thread_pool.hpp"

namespace waco {

namespace {

std::atomic<u64> g_exec_count{0};

constexpr u32 kMaxLevels = 8;

/**
 * Flattened per-invocation interpreter state. Trivially copyable: the
 * parallel path hands each chunk its own copy so loop bindings never race.
 */
struct Ctx
{
    const LoopNode* loops = nullptr;
    const BuiltLevel* levels = nullptr;
    u32 numLoops = 0;
    /** Depth at which the leaf's fused tail runs (numLoops = no tail). */
    u32 tailDepth = 0;
    u32 lastLevel = 0;
    u32 numIndices = 0;
    u32 split[4] = {1, 1, 1, 1};
    u32 bound[4] = {0, 0, 0, 0}; ///< Index extents (padding bounds check).
    u32 slotCoord[8] = {};
    u32 coord[4] = {}; ///< Combined coordinate per index variable.
    u64 posAfter[kMaxLevels] = {};
};

/** Value position of the currently bound storage point. */
inline u64
valuePos(const Ctx& cx)
{
    return cx.posAfter[cx.lastLevel];
}

/** Split indices can overshoot their extent (ceil-division padding); every
 *  leaf visit is guarded the same way TACO guards its tail iterations. */
inline bool
inBounds(const Ctx& cx)
{
    for (u32 idx = 0; idx < cx.numIndices; ++idx) {
        if (cx.coord[idx] >= cx.bound[idx])
            return false;
    }
    return true;
}

inline void
bindSlot(Ctx& cx, u32 slot, u32 c)
{
    cx.slotCoord[slot] = c;
    u32 idx = slotIndex(slot);
    cx.coord[idx] = cx.slotCoord[outerSlot(idx)] * cx.split[idx] +
                    cx.slotCoord[innerSlot(idx)];
}

/** Resolve discordant levels now that this node's level has bound: direct
 *  offset into U levels, binary search over crd for C levels.
 *  @return false when a searched coordinate is absent (skip the point). */
inline bool
runLocates(Ctx& cx, const LoopNode& n)
{
    for (const LocateStep& ls : n.locates) {
        const BuiltLevel& bl = cx.levels[ls.level];
        u64 parent = ls.level == 0 ? 0 : cx.posAfter[ls.level - 1];
        u32 target = cx.slotCoord[ls.slot];
        if (bl.fmt == LevelFormat::Uncompressed) {
            cx.posAfter[ls.level] = parent * bl.extent + target;
        } else {
            const u32* crd = bl.crd.data();
            const u32* first = crd + bl.pos[parent];
            const u32* last = crd + bl.pos[parent + 1];
            const u32* it = std::lower_bound(first, last, target);
            if (it == last || *it != target)
                return false;
            cx.posAfter[ls.level] = static_cast<u64>(it - crd);
        }
    }
    return true;
}

/** Iteration domain of the node at @p depth (its parents already bound):
 *  coordinates for Dense/U nodes, crd positions for C nodes. */
inline std::pair<u64, u64>
nodeDomain(const Ctx& cx, const LoopNode& n)
{
    if (n.kind == LoopKind::Dense)
        return {0, n.extent};
    const BuiltLevel& bl = cx.levels[n.level];
    if (bl.fmt == LevelFormat::Uncompressed)
        return {0, bl.extent};
    u64 parent = n.level == 0 ? 0 : cx.posAfter[n.level - 1];
    return {bl.pos[parent], bl.pos[parent + 1]};
}

template <class Leaf>
void execNode(Ctx& cx, u32 depth, u64 lo, u64 hi, const Leaf& leaf);

template <class Leaf>
inline void
descend(Ctx& cx, u32 depth, const Leaf& leaf)
{
    u32 d = depth + 1;
    if (d >= cx.tailDepth) {
        if (!inBounds(cx))
            return;
        if (d == cx.numLoops)
            leaf.scalar(cx);
        else
            leaf.tail(cx); // fused innermost dense-only loop
        return;
    }
    const LoopNode& n = cx.loops[d];
    auto dom = nodeDomain(cx, n);
    execNode(cx, d, dom.first, dom.second, leaf);
}

template <class Leaf>
void
execNode(Ctx& cx, u32 depth, u64 lo, u64 hi, const Leaf& leaf)
{
    const LoopNode& n = cx.loops[depth];
    if (n.kind == LoopKind::Dense) {
        for (u64 c = lo; c < hi; ++c) {
            bindSlot(cx, n.slot, static_cast<u32>(c));
            descend(cx, depth, leaf);
        }
        return;
    }
    const BuiltLevel& bl = cx.levels[n.level];
    if (bl.fmt == LevelFormat::Uncompressed) {
        u64 parent = n.level == 0 ? 0 : cx.posAfter[n.level - 1];
        u64 base = parent * bl.extent;
        for (u64 c = lo; c < hi; ++c) {
            cx.posAfter[n.level] = base + c;
            bindSlot(cx, n.slot, static_cast<u32>(c));
            if (!n.locates.empty() && !runLocates(cx, n))
                continue;
            descend(cx, depth, leaf);
        }
    } else {
        const u32* crd = bl.crd.data();
        for (u64 p = lo; p < hi; ++p) {
            cx.posAfter[n.level] = p;
            bindSlot(cx, n.slot, crd[p]);
            if (!n.locates.empty() && !runLocates(cx, n))
                continue;
            descend(cx, depth, leaf);
        }
    }
}

/**
 * Execute the whole nest. The outermost loop is chunked over the global
 * pool when its index does not reduce into the output: each chunk then
 * covers disjoint first-level subtrees AND a disjoint output slice (or
 * disjoint A value positions for SDDMM), so parallel execution is
 * race-free and bitwise identical to serial execution. Reduction-major
 * nests run serially, like the legal TACO schedule would.
 */
template <class Leaf>
void
runNest(const LoopNest& nest, const HierSparseTensor& a, const Leaf& leaf,
        const ParallelConfig& par)
{
    const auto& info = algorithmInfo(nest.alg());
    Ctx proto;
    proto.loops = nest.loops().data();
    proto.levels = a.levels().data();
    proto.numLoops = static_cast<u32>(nest.loops().size());
    proto.tailDepth =
        nest.leaf().vectorIndex >= 0 ? proto.numLoops - 1 : proto.numLoops;
    proto.lastLevel = nest.numLevels() - 1;
    proto.numIndices = info.numIndices;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        proto.split[idx] = nest.splitOf(idx);
        proto.bound[idx] = nest.shape().indexExtent[idx];
    }

    const LoopNode& top = nest.loops().front();
    auto dom = nodeDomain(proto, top);
    if (dom.second <= dom.first)
        return;
    u32 threads = std::max<u32>(1, par.threads);
    bool safe = !info.isReduction[slotIndex(top.slot)];
    if (threads == 1 || !safe) {
        Ctx cx = proto;
        execNode(cx, 0, dom.first, dom.second, leaf);
        return;
    }
    u64 chunk = std::max<u32>(1, par.chunk);
    globalPool().ensureWorkers(
        std::min(threads, ThreadPool::kMaxWorkers + 1) - 1);
    globalPool().parallelFor(
        dom.second - dom.first, chunk, threads, [&](u64 b, u64 e) {
            Ctx cx = proto;
            execNode(cx, 0, dom.first + b, dom.first + e, leaf);
        });
}

/** Row/column strides of a dense matrix under its runtime layout. */
struct Strides
{
    u64 row;
    u64 col;
};

inline Strides
stridesOf(const DenseMatrix& m)
{
    if (m.layout() == Layout::RowMajor)
        return {m.cols(), 1};
    return {1, m.rows()};
}

// ---- Per-algorithm compute leaves ------------------------------------
// scalar() runs once per stored point when the innermost loop binds a
// storage level or a split dense index; tail() fuses the full unsplit
// dense-only innermost loop (leaf().vectorIndex) into one tight pass.

struct SpMVLeaf // C[i] = A[i,k] * B[k]
{
    const float* av;
    const float* b;
    float* c;

    void
    scalar(const Ctx& cx) const
    {
        c[cx.coord[0]] += av[valuePos(cx)] * b[cx.coord[1]];
    }
    void
    tail(const Ctx&) const
    {} // SpMV has no dense-only index
};

struct SpMMLeaf // C[i,j] = A[i,k] * B[k,j]
{
    const float* av;
    const float* bd;
    float* cd;
    Strides bs;
    u64 crow; ///< Output is row-major: stride J.
    u64 J;

    void
    scalar(const Ctx& cx) const
    {
        u64 j = cx.coord[2];
        cd[cx.coord[0] * crow + j] +=
            av[valuePos(cx)] * bd[cx.coord[1] * bs.row + j * bs.col];
    }
    void
    tail(const Ctx& cx) const
    {
        float v = av[valuePos(cx)];
        const float* bp = bd + cx.coord[1] * bs.row;
        float* cp = cd + cx.coord[0] * crow;
        if (bs.col == 1) {
            for (u64 j = 0; j < J; ++j)
                cp[j] += v * bp[j];
        } else {
            for (u64 j = 0; j < J; ++j)
                cp[j] += v * bp[j * bs.col];
        }
    }
};

struct SDDMMLeaf // D[i,j] = A[i,j] * B[i,k] * C[k,j]
{
    const float* av;
    const float* bd;
    const float* cd;
    /** Per-stored-position accumulators: chunks of any non-reduction top
     *  loop touch disjoint positions, so the parallel path is race-free
     *  even though D's sparsity pattern is shared. */
    float* dvals;
    Strides bs;
    Strides cs;
    u64 K;

    void
    scalar(const Ctx& cx) const
    {
        u64 p = valuePos(cx);
        u64 k = cx.coord[2];
        dvals[p] += av[p] * bd[cx.coord[0] * bs.row + k * bs.col] *
                    cd[k * cs.row + cx.coord[1] * cs.col];
    }
    void
    tail(const Ctx& cx) const
    {
        u64 p = valuePos(cx);
        float v = av[p];
        if (v == 0.0f)
            return; // dense-block padding
        const float* bp = bd + cx.coord[0] * bs.row;
        const float* cp = cd + cx.coord[1] * cs.col;
        float dot = 0.0f;
        if (bs.col == 1 && cs.row == 1) {
            // B row-major, C column-major (the paper's fixed layouts):
            // both operands walk contiguously in k.
            for (u64 k = 0; k < K; ++k)
                dot += bp[k] * cp[k];
        } else {
            for (u64 k = 0; k < K; ++k)
                dot += bp[k * bs.col] * cp[k * cs.row];
        }
        dvals[p] += v * dot;
    }
};

struct MTTKRPLeaf // D[i,j] = A[i,k,l] * B[k,j] * C[l,j]
{
    const float* av;
    const float* bd;
    const float* cd;
    float* dd;
    Strides bs;
    Strides cs;
    u64 drow; ///< Output is row-major: stride J.
    u64 J;

    void
    scalar(const Ctx& cx) const
    {
        u64 j = cx.coord[3];
        dd[cx.coord[0] * drow + j] += av[valuePos(cx)] *
                                      bd[cx.coord[1] * bs.row + j * bs.col] *
                                      cd[cx.coord[2] * cs.row + j * cs.col];
    }
    void
    tail(const Ctx& cx) const
    {
        float v = av[valuePos(cx)];
        const float* bp = bd + cx.coord[1] * bs.row;
        const float* cp = cd + cx.coord[2] * cs.row;
        float* dp = dd + cx.coord[0] * drow;
        if (bs.col == 1 && cs.col == 1) {
            for (u64 j = 0; j < J; ++j)
                dp[j] += v * bp[j] * cp[j];
        } else {
            for (u64 j = 0; j < J; ++j)
                dp[j] += v * bp[j * bs.col] * cp[j * cs.row];
        }
    }
};

struct FusedProducerLeaf // w[j] += B[i,k] * C[k,j]  (A applied in consumer)
{
    const float* bd;
    const float* cd;
    Strides bs;
    Strides cs;
    u64 K;
    float* ws = nullptr; ///< Chunk-private workspace, set by the driver.

    void
    scalar(const Ctx& cx) const
    {
        u64 k = cx.coord[2];
        ws[cx.coord[1]] += bd[cx.coord[0] * bs.row + k * bs.col] *
                           cd[k * cs.row + cx.coord[1] * cs.col];
    }
    void
    tail(const Ctx& cx) const
    {
        const float* bp = bd + cx.coord[0] * bs.row;
        const float* cp = cd + cx.coord[1] * cs.col;
        float dot = 0.0f;
        if (bs.col == 1 && cs.row == 1) {
            for (u64 k = 0; k < K; ++k)
                dot += bp[k] * cp[k];
        } else {
            for (u64 k = 0; k < K; ++k)
                dot += bp[k * bs.col] * cp[k * cs.row];
        }
        ws[cx.coord[1]] += dot;
    }
};

struct FusedConsumerLeaf // E[i,m] += A[i,j] * w[j] * F[j,m]
{
    const float* av;
    const float* fd;
    float* ed;
    Strides fs;
    u64 erow; ///< Output is row-major: stride M.
    u64 M;
    const float* ws = nullptr; ///< Chunk-private workspace, set by the driver.

    void
    scalar(const Ctx& cx) const
    {
        u64 m = cx.coord[3];
        ed[cx.coord[0] * erow + m] +=
            av[valuePos(cx)] * ws[cx.coord[1]] *
            fd[cx.coord[1] * fs.row + m * fs.col];
    }
    void
    tail(const Ctx& cx) const
    {
        // Padding entries carry av == 0, so they contribute nothing.
        float v = av[valuePos(cx)] * ws[cx.coord[1]];
        const float* fp = fd + cx.coord[1] * fs.row;
        float* ep = ed + cx.coord[0] * erow;
        if (fs.col == 1) {
            for (u64 m = 0; m < M; ++m)
                ep[m] += v * fp[m];
        } else {
            for (u64 m = 0; m < M; ++m)
                ep[m] += v * fp[m * fs.col];
        }
    }
};

/**
 * The compute "leaf" of the scope prefix of a fused nest. Runs once per
 * scope iteration (e.g. per row i): zero-initializes the workspace, then
 * executes the producer subtree and the consumer subtree at the fission
 * depth — the init/accumulate/consume protocol of the workspace temporary.
 * Both phase views share the prefix's bound coordinates and resolved
 * storage positions through the copied Ctx.
 */
struct ScopeLeaf
{
    const LoopNode* prodLoops;
    u32 prodNum;
    u32 prodTail;
    const LoopNode* consLoops;
    u32 consNum;
    u32 consTail;
    u32 scope;
    FusedProducerLeaf prod;
    FusedConsumerLeaf cons;
    float* ws = nullptr;
    u32 wsExtent = 0;

    void
    scalar(const Ctx& cx) const
    {
        std::fill(ws, ws + wsExtent, 0.0f);
        Ctx px = cx;
        px.loops = prodLoops;
        px.numLoops = prodNum;
        px.tailDepth = prodTail;
        auto pd = nodeDomain(px, prodLoops[scope]);
        execNode(px, scope, pd.first, pd.second, prod);
        Ctx qx = cx;
        qx.loops = consLoops;
        qx.numLoops = consNum;
        qx.tailDepth = consTail;
        auto qd = nodeDomain(qx, consLoops[scope]);
        execNode(qx, scope, qd.first, qd.second, cons);
    }
    void
    tail(const Ctx&) const
    {} // the scope prefix never ends in a fused dense tail
};

/**
 * Execute a fused workspace nest: run the scope prefix as its own nest
 * whose leaf is the producer+consumer fission point. The prefix always
 * binds the (non-reducing) scope index, so it chunks exactly like runNest
 * — and each chunk gets a private workspace vector, keeping parallel
 * execution race-free and bitwise identical to serial execution.
 */
void
runFusedNest(const LoopNest& nest, const HierSparseTensor& a,
             const FusedProducerLeaf& pleaf, const FusedConsumerLeaf& cleaf,
             const ParallelConfig& par)
{
    const auto& info = algorithmInfo(nest.alg());
    const WorkspaceDecl& ws = nest.workspace();
    const u32 scope = ws.scopeDepth;
    panicIf(!ws.present || scope == 0 || scope >= nest.loops().size() ||
                nest.consumerLoops().empty(),
            "runFusedNest: malformed workspace scope");

    // Materialize the consumer walk: shared prefix + consumer-phase loops.
    std::vector<LoopNode> cons_walk(nest.loops().begin(),
                                    nest.loops().begin() + scope);
    cons_walk.insert(cons_walk.end(), nest.consumerLoops().begin(),
                     nest.consumerLoops().end());

    Ctx proto;
    proto.loops = nest.loops().data();
    proto.levels = a.levels().data();
    proto.numLoops = scope; // the prefix is the nest; ScopeLeaf is its leaf
    proto.tailDepth = scope;
    proto.lastLevel = nest.numLevels() - 1;
    proto.numIndices = info.numIndices;
    for (u32 idx = 0; idx < info.numIndices; ++idx) {
        proto.split[idx] = nest.splitOf(idx);
        proto.bound[idx] = nest.shape().indexExtent[idx];
    }

    ScopeLeaf proto_leaf;
    proto_leaf.prodLoops = nest.loops().data();
    proto_leaf.prodNum = static_cast<u32>(nest.loops().size());
    proto_leaf.prodTail = nest.leaf().vectorIndex >= 0 ? proto_leaf.prodNum - 1
                                                       : proto_leaf.prodNum;
    proto_leaf.consLoops = cons_walk.data();
    proto_leaf.consNum = static_cast<u32>(cons_walk.size());
    proto_leaf.consTail = nest.consumerLeaf().vectorIndex >= 0
                              ? proto_leaf.consNum - 1
                              : proto_leaf.consNum;
    proto_leaf.scope = scope;
    proto_leaf.prod = pleaf;
    proto_leaf.cons = cleaf;
    proto_leaf.wsExtent = ws.extent;

    const LoopNode& top = nest.loops().front();
    auto dom = nodeDomain(proto, top);
    if (dom.second <= dom.first)
        return;
    auto run_range = [&](u64 b, u64 e) {
        std::vector<float> scratch(ws.extent, 0.0f);
        ScopeLeaf leaf = proto_leaf;
        leaf.ws = scratch.data();
        leaf.prod.ws = scratch.data();
        leaf.cons.ws = scratch.data();
        Ctx cx = proto;
        execNode(cx, 0, b, e, leaf);
    };
    u32 threads = std::max<u32>(1, par.threads);
    if (threads == 1) {
        run_range(dom.first, dom.second);
        return;
    }
    u64 chunk = std::max<u32>(1, par.chunk);
    globalPool().ensureWorkers(
        std::min(threads, ThreadPool::kMaxWorkers + 1) - 1);
    globalPool().parallelFor(
        dom.second - dom.first, chunk, threads,
        [&](u64 b, u64 e) { run_range(dom.first + b, dom.first + e); });
}

/** The tensor must be the physical realization of the nest's format half. */
void
checkTensorMatchesNest(const LoopNest& nest, const HierSparseTensor& a)
{
    panicIf(a.descriptor().numLevels() != nest.numLevels(),
            "executeLoopNest: tensor level count does not match the nest");
    for (u32 l = 0; l < nest.numLevels(); ++l) {
        const BuiltLevel& bl = a.levels()[l];
        u32 slot = nest.levelSlot(l);
        u32 idx = slotIndex(slot);
        u32 split = nest.splitOf(idx);
        u32 expected = slotIsInner(slot)
                           ? split
                           : ceilDiv(nest.shape().indexExtent[idx], split);
        panicIf(bl.fmt != nest.levelFormat(l) || bl.extent != expected,
                "executeLoopNest: tensor level does not match the nest");
    }
}

} // namespace

namespace exec_detail {

void
checkLoopNestArgs(const LoopNest& nest, const LoopNestArgs& args)
{
    fatalIf(args.a == nullptr, "executeLoopNest: missing sparse operand");
    checkTensorMatchesNest(nest, *args.a);
    const auto& ext = nest.shape().indexExtent;
    switch (nest.alg()) {
      case Algorithm::SpMV:
        fatalIf(args.vecB == nullptr || args.vecB->size() != ext[1],
                "SpMV operand size mismatch");
        break;
      case Algorithm::SpMM:
        fatalIf(args.matB == nullptr || args.matB->rows() != ext[1] ||
                    args.matB->cols() != ext[2],
                "SpMM operand shape mismatch");
        break;
      case Algorithm::SDDMM:
        fatalIf(args.matB == nullptr || args.matC == nullptr ||
                    args.matB->rows() != ext[0] ||
                    args.matB->cols() != ext[2] ||
                    args.matC->rows() != ext[2] ||
                    args.matC->cols() != ext[1],
                "SDDMM operand shape mismatch");
        break;
      case Algorithm::MTTKRP:
        fatalIf(args.matB == nullptr || args.matC == nullptr ||
                    args.matB->rows() != ext[1] ||
                    args.matC->rows() != ext[2] ||
                    args.matB->cols() != ext[3] ||
                    args.matC->cols() != ext[3],
                "MTTKRP operand shape mismatch");
        break;
      case Algorithm::FusedSDDMMSpMM:
        fatalIf(args.matB == nullptr || args.matC == nullptr ||
                    args.matF == nullptr || args.matB->rows() != ext[0] ||
                    args.matB->cols() != ext[2] ||
                    args.matC->rows() != ext[2] ||
                    args.matC->cols() != ext[1] ||
                    args.matF->rows() != ext[1] ||
                    args.matF->cols() != ext[3],
                "FusedSDDMMSpMM operand shape mismatch");
        break;
    }
}

std::pair<u64, u64>
topLoopDomain(const LoopNest& nest, const HierSparseTensor& a)
{
    const LoopNode& top = nest.loops().front();
    if (top.kind == LoopKind::Dense)
        return {0, top.extent};
    const BuiltLevel& bl = a.levels()[top.level];
    if (bl.fmt == LevelFormat::Uncompressed)
        return {0, bl.extent};
    return {bl.pos[0], bl.pos[1]}; // top Sparse node is always level 0
}

bool
topLoopParallelizable(const LoopNest& nest)
{
    if (nest.fused())
        return true; // the prefix leads with the (non-reducing) scope index
    const auto& info = algorithmInfo(nest.alg());
    return !info.isReduction[slotIndex(nest.loops().front().slot)];
}

SparseMatrix
assembleSddmmOutput(const HierSparseTensor& a, const std::vector<float>& dvals)
{
    // Out-of-bounds padding and explicit stored zeros are dropped,
    // matching the dense-block semantics of the hierarchy builder.
    std::vector<Triplet> out;
    u64 p = 0;
    a.forEachStored([&](const std::array<u32, 3>& x, float v, bool ok) {
        if (ok && v != 0.0f)
            out.push_back({x[0], x[1], dvals[p]});
        ++p;
    });
    return SparseMatrix(a.descriptor().dims()[0], a.descriptor().dims()[1],
                        std::move(out));
}

} // namespace exec_detail

LoopNestResult
executeLoopNest(const LoopNest& nest, const LoopNestArgs& args,
                const ParallelConfig& par)
{
    g_exec_count.fetch_add(1, std::memory_order_relaxed);
#ifndef NDEBUG
    // Nests from lower() verified at lowering time; this guards nests
    // assembled through LoopNest::fromRaw from reaching the interpreter.
    {
        auto diags = analysis::verifyLoopNest(nest);
        fatalIf(diags.hasErrors(),
                "executeLoopNest: invalid loop nest:\n" + diags.format());
    }
#endif
    exec_detail::checkLoopNestArgs(nest, args);
    const HierSparseTensor& a = *args.a;
    const auto& ext = nest.shape().indexExtent;
    const float* av = a.values().data();

    LoopNestResult r;
    switch (nest.alg()) {
      case Algorithm::SpMV: {
        r.vec = DenseVector(ext[0], 0.0f);
        SpMVLeaf leaf{av, args.vecB->data().data(), r.vec.data().data()};
        runNest(nest, a, leaf, par);
        break;
      }
      case Algorithm::SpMM: {
        r.mat = DenseMatrix(ext[0], ext[2], Layout::RowMajor, 0.0f);
        SpMMLeaf leaf{av,
                      args.matB->data().data(),
                      r.mat.data().data(),
                      stridesOf(*args.matB),
                      r.mat.cols(),
                      ext[2]};
        runNest(nest, a, leaf, par);
        break;
      }
      case Algorithm::SDDMM: {
        std::vector<float> dvals(a.storedValues(), 0.0f);
        SDDMMLeaf leaf{av,
                       args.matB->data().data(),
                       args.matC->data().data(),
                       dvals.data(),
                       stridesOf(*args.matB),
                       stridesOf(*args.matC),
                       ext[2]};
        runNest(nest, a, leaf, par);
        r.sparse = exec_detail::assembleSddmmOutput(a, dvals);
        break;
      }
      case Algorithm::MTTKRP: {
        r.mat = DenseMatrix(ext[0], ext[3], Layout::RowMajor, 0.0f);
        MTTKRPLeaf leaf{av,
                        args.matB->data().data(),
                        args.matC->data().data(),
                        r.mat.data().data(),
                        stridesOf(*args.matB),
                        stridesOf(*args.matC),
                        r.mat.cols(),
                        ext[3]};
        runNest(nest, a, leaf, par);
        break;
      }
      case Algorithm::FusedSDDMMSpMM: {
        // E[i,m] = Σ_j A[i,j] · (Σ_k B[i,k]·C[k,j]) · F[j,m] via w[j].
        r.mat = DenseMatrix(ext[0], ext[3], Layout::RowMajor, 0.0f);
        FusedProducerLeaf pleaf{args.matB->data().data(),
                                args.matC->data().data(),
                                stridesOf(*args.matB),
                                stridesOf(*args.matC),
                                ext[2]};
        FusedConsumerLeaf cleaf{av,
                                args.matF->data().data(),
                                r.mat.data().data(),
                                stridesOf(*args.matF),
                                r.mat.cols(),
                                ext[3]};
        runFusedNest(nest, a, pleaf, cleaf, par);
        break;
      }
    }
    return r;
}

u64
loopNestExecutionCount()
{
    return g_exec_count.load(std::memory_order_relaxed);
}

} // namespace waco
