#include "tensor/mmio.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/common.hpp"

namespace waco {

SparseMatrix
readMatrixMarket(std::istream& in, const std::string& name)
{
    std::string line;
    fatalIf(!std::getline(in, line), "empty MatrixMarket stream");
    std::istringstream header(line);
    std::string banner, object, format, field, symmetry;
    header >> banner >> object >> format >> field >> symmetry;
    fatalIf(banner != "%%MatrixMarket", "missing MatrixMarket banner");
    fatalIf(object != "matrix" || format != "coordinate",
            "only 'matrix coordinate' MatrixMarket files are supported");
    bool pattern = field == "pattern";
    bool symmetric = symmetry == "symmetric";
    fatalIf(field != "real" && field != "integer" && !pattern,
            "unsupported MatrixMarket field: " + field);
    fatalIf(symmetry != "general" && !symmetric,
            "unsupported MatrixMarket symmetry: " + symmetry);

    // Skip comments.
    do {
        fatalIf(!std::getline(in, line), "truncated MatrixMarket header");
    } while (!line.empty() && line[0] == '%');

    std::istringstream sizes(line);
    u64 rows = 0, cols = 0, entries = 0;
    fatalIf(!(sizes >> rows >> cols >> entries),
            "unparseable MatrixMarket size line: '" + line + "'");
    fatalIf(rows == 0 || cols == 0, "bad MatrixMarket size line");
    constexpr u64 kMaxDim = std::numeric_limits<u32>::max();
    fatalIf(rows > kMaxDim || cols > kMaxDim,
            "MatrixMarket dimensions overflow 32-bit indices");

    std::vector<Triplet> t;
    t.reserve(symmetric ? entries * 2 : entries);
    for (u64 n = 0; n < entries; ++n) {
        fatalIf(!std::getline(in, line), "truncated MatrixMarket entries");
        std::istringstream es(line);
        u64 r = 0, c = 0;
        double v = 1.0;
        fatalIf(!(es >> r >> c), "unparseable MatrixMarket entry: '" + line +
                                     "'");
        if (!pattern) {
            fatalIf(!(es >> v),
                    "MatrixMarket entry missing value: '" + line + "'");
            fatalIf(!std::isfinite(v),
                    "non-finite value in MatrixMarket entry: '" + line + "'");
        }
        fatalIf(r == 0 || c == 0 || r > rows || c > cols,
                "MatrixMarket entry out of bounds");
        t.push_back({static_cast<u32>(r - 1), static_cast<u32>(c - 1),
                     static_cast<float>(v)});
        if (symmetric && r != c) {
            t.push_back({static_cast<u32>(c - 1), static_cast<u32>(r - 1),
                         static_cast<float>(v)});
        }
    }
    return SparseMatrix(static_cast<u32>(rows), static_cast<u32>(cols),
                        std::move(t), name);
}

SparseMatrix
readMatrixMarketFile(const std::string& path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open MatrixMarket file: " + path);
    std::string name = path;
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    auto dot = name.find_last_of('.');
    if (dot != std::string::npos)
        name = name.substr(0, dot);
    return readMatrixMarket(in, name);
}

void
writeMatrixMarket(const SparseMatrix& m, std::ostream& out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    for (u64 n = 0; n < m.nnz(); ++n) {
        out << (m.rowIndices()[n] + 1) << " " << (m.colIndices()[n] + 1) << " "
            << m.values()[n] << "\n";
    }
}

void
writeMatrixMarketFile(const SparseMatrix& m, const std::string& path)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open file for writing: " + path);
    writeMatrixMarket(m, out);
}

} // namespace waco
