/**
 * @file
 * Plain CSR view used by the fixed-format baselines (MKL-like
 * inspector-executor, FixedCSR) and by the real-execution engine's fast
 * paths. Equivalent to the UC(d0,d1) hierarchical format but with the
 * conventional flat arrays.
 */
#pragma once

#include <vector>

#include "tensor/coo.hpp"
#include "util/common.hpp"

namespace waco {

/** Compressed sparse row storage. */
class Csr
{
  public:
    Csr() = default;

    /** Convert from canonical COO. */
    explicit Csr(const SparseMatrix& m);

    u32 rows() const { return rows_; }
    u32 cols() const { return cols_; }
    u64 nnz() const { return colIdx_.size(); }

    const std::vector<u64>& rowPtr() const { return rowPtr_; }
    const std::vector<u32>& colIdx() const { return colIdx_; }
    const std::vector<float>& values() const { return vals_; }

    /** Storage footprint in bytes (int32 indices + float values,
     *  matching what MKL/TACO would allocate). */
    u64 bytes() const { return 4 * (rowPtr_.size() + colIdx_.size() + vals_.size()); }

  private:
    u32 rows_ = 0;
    u32 cols_ = 0;
    std::vector<u64> rowPtr_;
    std::vector<u32> colIdx_;
    std::vector<float> vals_;
};

} // namespace waco
