#include "tensor/csr.hpp"

namespace waco {

Csr::Csr(const SparseMatrix& m)
    : rows_(m.rows()), cols_(m.cols())
{
    rowPtr_.assign(rows_ + 1, 0);
    colIdx_.resize(m.nnz());
    vals_.resize(m.nnz());
    for (u64 n = 0; n < m.nnz(); ++n)
        ++rowPtr_[m.rowIndices()[n] + 1];
    for (u32 r = 0; r < rows_; ++r)
        rowPtr_[r + 1] += rowPtr_[r];
    // COO is already sorted (row, col), so a straight copy preserves order.
    for (u64 n = 0; n < m.nnz(); ++n) {
        colIdx_[n] = m.colIndices()[n];
        vals_[n] = m.values()[n];
    }
}

} // namespace waco
